// YCSB example: load the same workload into the LevelDB baseline and
// SEALDB, run YCSB-A against both, and compare simulated throughput —
// a miniature of the paper's Figure 9.
package main

import (
	"fmt"
	"log"
	"time"

	"sealdb"
	"sealdb/internal/ycsb"
)

const (
	records   = 20000
	valueSize = 1024
	ops       = 5000
)

func main() {
	for _, mode := range []sealdb.Mode{sealdb.ModeLevelDB, sealdb.ModeSEALDB} {
		loadRate, runRate, amp := run(mode)
		fmt.Printf("%-8s load %8.0f ops/s   YCSB-A %8.0f ops/s   (WA %.2f, AWA %.3f, MWA %.2f)\n",
			mode, loadRate, runRate, amp.WA, amp.AWA, amp.MWA)
	}
}

func run(mode sealdb.Mode) (loadRate, runRate float64, amp sealdb.Amplification) {
	db, err := sealdb.Open(sealdb.DefaultConfig(mode))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	runner := ycsb.NewRunner(store{db}, valueSize, 1)
	start := busy(db)
	if err := runner.LoadRandom(records); err != nil {
		log.Fatal(err)
	}
	loadRate = float64(records) / (busy(db) - start).Seconds()

	start = busy(db)
	res, err := runner.Run(ycsb.WorkloadA, ops)
	if err != nil {
		log.Fatal(err)
	}
	runRate = float64(res.Ops) / (busy(db) - start).Seconds()
	return loadRate, runRate, db.Amplification()
}

func busy(db *sealdb.DB) time.Duration {
	return db.Device().Disk.Stats().BusyTime
}

type store struct{ db *sealdb.DB }

func (s store) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s store) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s store) ScanN(start []byte, n int) (int, error) {
	kvs, err := s.db.Scan(start, n)
	return len(kvs), err
}
