// Recovery example: demonstrate the durability chain — WAL, MANIFEST,
// and set records — by writing, "crashing" (closing without any
// graceful flush), and reopening the same device. Acknowledged writes
// survive; the set registry and dynamic-band state reconcile.
package main

import (
	"bytes"
	"fmt"
	"log"

	"sealdb"
)

func main() {
	cfg := sealdb.DefaultConfig(sealdb.ModeSEALDB)

	// First life: load enough to build a real tree, then a few
	// writes that never leave the write-ahead log.
	db, err := sealdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	val := bytes.Repeat([]byte("."), 512)
	for i := 0; i < 30000; i++ {
		copy(val, fmt.Appendf(nil, "value%06d", i))
		if err := db.Put(fmt.Appendf(nil, "key%06d", i%20000), val); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		db.Put(fmt.Appendf(nil, "wal-only-%d", i), []byte("in the log, not yet in any SSTable"))
	}
	st := db.Stats()
	fmt.Printf("before crash: %d user writes, %d flushes, %d compactions, seq %d\n",
		st.UserWrites, st.FlushCount, st.CompactionCount, db.Seq())

	// The Device object plays the role of the physical drive: it
	// keeps every byte ever written. Close abandons all in-memory
	// state — the memtable contents only exist in the WAL now.
	device := db.Device()
	seqBefore := db.Seq()
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Second life: recovery replays MANIFEST then WAL.
	db2, err := sealdb.OpenDevice(cfg, device)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("after recovery: seq %d (was %d)\n", db2.Seq(), seqBefore)

	for i := 0; i < 10; i++ {
		k := fmt.Appendf(nil, "wal-only-%d", i)
		if _, err := db2.Get(k); err != nil {
			log.Fatalf("WAL-only write %s lost: %v", k, err)
		}
	}
	probe := []byte("key015000")
	v, err := db2.Get(probe)
	if err != nil {
		log.Fatalf("compacted write lost: %v", err)
	}
	fmt.Printf("probe %s -> %s... (%d bytes)\n", probe, v[:11], len(v))

	if err := db2.VerifyIntegrity(); err != nil {
		log.Fatalf("integrity after recovery: %v", err)
	}
	sp := db2.SetProfile()
	fmt.Printf("integrity ok; %d sets reconstructed (%d live members, %d invalid)\n",
		sp.LiveSets, sp.LiveMembers, sp.InvalidMembers)
	amp := db2.Amplification()
	fmt.Printf("device never read-modify-wrote: AWA %.3f\n", amp.AWA)
}
