// Time-series example: one of the workload classes the paper's
// introduction motivates (large-scale monitoring data on high-density
// storage). Metrics arrive roughly in time order — the friendly case
// for an LSM tree — but with several concurrent streams and late
// arrivals, so compactions still happen; queries are range scans over
// (series, time window).
//
// The example ingests samples into SEALDB, runs window queries, and
// shows that even this nearly sequential workload keeps the SMR drive
// free of auxiliary write amplification.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"time"

	"sealdb"
)

const (
	series     = 64
	samples    = 4000 // per series
	windowSize = 100
)

// sampleKey encodes (series, timestamp) so keys sort by series first,
// then time — the standard time-series layout on an ordered KV store.
func sampleKey(s int, ts uint64) []byte {
	k := make([]byte, 0, 24)
	k = fmt.Appendf(k, "ts/%04d/", s)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], ts)
	return append(k, b[:]...)
}

func main() {
	db, err := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest: time-ordered rounds over all series, with 5% of points
	// arriving late (out of order), batched like a collector would.
	rng := rand.New(rand.NewSource(42))
	batch := sealdb.NewBatch()
	point := make([]byte, 64)
	start := busy(db)
	total := 0
	for t := 0; t < samples; t++ {
		for s := 0; s < series; s++ {
			ts := uint64(t)
			if rng.Intn(20) == 0 && t > 50 {
				ts = uint64(t - rng.Intn(50)) // late arrival
			}
			rng.Read(point)
			batch.Put(sampleKey(s, ts), point)
			total++
			if batch.Len() >= 512 {
				if err := db.Apply(batch); err != nil {
					log.Fatal(err)
				}
				batch.Reset()
			}
		}
	}
	if err := db.Apply(batch); err != nil {
		log.Fatal(err)
	}
	ingest := busy(db) - start
	fmt.Printf("ingested %d samples across %d series in %v simulated (%.0f samples/s)\n",
		total, series, ingest.Round(time.Millisecond), float64(total)/ingest.Seconds())

	// Window queries: scan the most recent windowSize samples of
	// random series.
	start = busy(db)
	const queries = 200
	var returned int
	for q := 0; q < queries; q++ {
		s := rng.Intn(series)
		from := sampleKey(s, uint64(samples-windowSize))
		kvs, err := db.Scan(from, windowSize)
		if err != nil {
			log.Fatal(err)
		}
		returned += len(kvs)
	}
	qt := busy(db) - start
	fmt.Printf("%d window queries returned %d samples in %v simulated (%.1f ms/query)\n",
		queries, returned, qt.Round(time.Millisecond),
		qt.Seconds()*1000/queries)

	amp := db.Amplification()
	st := db.Stats()
	fmt.Printf("WA %.2f, AWA %.3f (no SMR read-modify-write), MWA %.2f; %d flushes, %d compactions (%d trivial moves — time order pays)\n",
		amp.WA, amp.AWA, amp.MWA, st.FlushCount, st.CompactionCount, st.TrivialMoves)
}

func busy(db *sealdb.DB) time.Duration {
	return db.Device().Disk.Stats().BusyTime
}
