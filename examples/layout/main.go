// Layout example: reproduce the contrast between Figure 2 (LevelDB:
// each compaction's SSTables scatter across the disk) and Figure 11
// (SEALDB: each compaction writes one contiguous set) by tracing
// device writes during a random load, then render a coarse ASCII
// scatter of compaction number vs write offset.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sealdb"
)

const (
	records   = 15000
	valueSize = 1024
	plotCols  = 72
	plotRows  = 16
)

func main() {
	for _, mode := range []sealdb.Mode{sealdb.ModeLevelDB, sealdb.ModeSEALDB} {
		trace(mode)
	}
}

func trace(mode sealdb.Mode) {
	db, err := sealdb.Open(sealdb.DefaultConfig(mode))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	disk := db.Device().Disk
	disk.EnableTrace()

	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(records)
	val := make([]byte, valueSize)
	for _, i := range perm {
		rng.Read(val)
		if err := db.Put(fmt.Appendf(nil, "user%09d", i), val); err != nil {
			log.Fatal(err)
		}
	}
	entries := disk.DisableTrace()

	// Collect compaction-attributed writes.
	type pt struct{ comp, off int64 }
	var pts []pt
	var maxComp, maxOff int64
	for _, e := range entries {
		if !e.Write || e.Tag == 0 {
			continue
		}
		pts = append(pts, pt{e.Tag, e.Offset})
		if e.Tag > maxComp {
			maxComp = e.Tag
		}
		if e.Offset > maxOff {
			maxOff = e.Offset
		}
	}
	fmt.Printf("\n=== %s: %d compaction writes across %d compactions, offsets up to %.1f MiB ===\n",
		mode, len(pts), maxComp, float64(maxOff)/(1<<20))

	// ASCII scatter: x = compaction order, y = disk offset.
	grid := make([][]byte, plotRows)
	for r := range grid {
		grid[r] = make([]byte, plotCols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, p := range pts {
		c := int(p.comp * (plotCols - 1) / maxComp)
		r := int(p.off * (plotRows - 1) / (maxOff + 1))
		grid[plotRows-1-r][c] = '*'
	}
	fmt.Printf("offset\n")
	for _, row := range grid {
		fmt.Printf("  |%s|\n", row)
	}
	fmt.Printf("  +%s+  -> compaction order\n", dashes(plotCols))
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
