// Quickstart: open a SEALDB store on an emulated host-managed SMR
// drive, write and read some data, and look at the amplification
// metrics that motivate the paper.
package main

import (
	"fmt"
	"log"

	"sealdb"
)

func main() {
	// DefaultConfig picks the scaled geometry: 256 KiB SSTables and
	// 2.5 MiB dynamic bands on an 8 GiB emulated raw SMR drive.
	db, err := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Point writes and reads.
	if err := db.Put([]byte("city:wuhan"), []byte("WNLO, HUST")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("city:wuhan"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city:wuhan -> %s\n", v)

	// Batched, atomic writes.
	batch := sealdb.NewBatch()
	for i := 0; i < 50000; i++ {
		batch.Put(fmt.Appendf(nil, "key%06d", i), fmt.Appendf(nil, "value-%06d", i))
		if batch.Len() == 1000 {
			if err := db.Apply(batch); err != nil {
				log.Fatal(err)
			}
			batch.Reset()
		}
	}
	if err := db.Apply(batch); err != nil {
		log.Fatal(err)
	}

	// Deletes and range scans.
	if err := db.Delete([]byte("key000003")); err != nil {
		log.Fatal(err)
	}
	kvs, err := db.Scan([]byte("key000000"), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first five keys after deleting key000003:")
	for _, e := range kvs {
		fmt.Printf("  %s = %s\n", e.Key, e.Value)
	}

	// Reverse scans.
	rkvs, err := db.ScanReverse(nil, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("last three keys, descending:")
	for _, e := range rkvs {
		fmt.Printf("  %s\n", e.Key)
	}

	// Snapshot isolation.
	snap := db.NewSnapshot()
	db.Put([]byte("key000000"), []byte("overwritten"))
	old, _ := db.GetAt([]byte("key000000"), snap)
	cur, _ := db.Get([]byte("key000000"))
	fmt.Printf("snapshot sees %q, latest sees %q\n", old, cur)
	snap.Release()

	// The numbers the paper is about: WA from the LSM-tree, AWA from
	// the SMR drive (1.0 by construction for SEALDB), and their
	// product MWA.
	amp := db.Amplification()
	fmt.Printf("WA %.2f x AWA %.3f = MWA %.2f\n", amp.WA, amp.AWA, amp.MWA)
	st := db.Stats()
	fmt.Printf("%d flushes, %d compactions, %d trivial moves\n",
		st.FlushCount, st.CompactionCount, st.TrivialMoves)
	fmt.Printf("device busy (simulated): %v\n",
		db.Device().Disk.Stats().BusyTime.Round(1e6))
}
