// Dynamic-band example: drive the paper's Figure 7 operation
// sequence directly against the dynamic band manager and a raw
// (write-anywhere) SMR drive — appends, a compaction invalidating a
// set, an insert that splits a free region and leaves a guard, a
// second insert into the remainder, and a coalesce — printing the
// on-disk state after each step.
package main

import (
	"fmt"
	"log"

	"sealdb/internal/dband"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

const (
	mb    = 1 << 20
	guard = 4 * mb // the paper's guard region: one 4 MiB SSTable
)

func main() {
	disk := platter.New(platter.DefaultConfig(1 << 30))
	drive := smr.NewRaw(disk, guard)
	mgr := dband.New(disk.Capacity(), 4*mb, guard)

	alloc := func(name string, size int64) dband.Extent {
		ext, inserted, err := mgr.Alloc(size)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := drive.WriteAt(make([]byte, ext.Len), ext.Off); err != nil {
			log.Fatalf("SMR violation writing %s: %v", name, err)
		}
		how := "appended"
		if inserted {
			how = "inserted"
		}
		fmt.Printf("%-28s %s at %v\n", name, how, ext)
		return ext
	}
	free := func(name string, e dband.Extent) {
		mgr.Free(e)
		if err := drive.Free(e.Off, e.Len); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s freed %v\n", name, e)
	}
	show := func(step string) {
		fmt.Printf("  -> bands: %v\n", mgr.Bands())
		fmt.Printf("  -> free:  %v   frontier: %d MiB\n\n", mgr.FreeRegions(), mgr.Frontier()/mb)
		_ = step
	}

	fmt.Println("(1) three sets are appended sequentially")
	set1 := alloc("set 1 (16 MiB)", 16*mb)
	alloc("set 2 (24 MiB)", 24*mb) // stays live throughout
	set3 := alloc("set 3 (20 MiB)", 20*mb)
	show("append")

	fmt.Println("(2) sets 1 and 3 compact: regenerated and appended, old space freed")
	free("set 1 (compacted away)", set1)
	set1b := alloc("set 1' (16 MiB)", 16*mb)
	free("set 3 (compacted away)", set3)
	set3b := alloc("set 3' (20 MiB)", 20*mb)
	_ = set3b
	show("compact")

	fmt.Println("(3) set 4 (12 MiB) inserts into set 1's old 16 MiB hole;")
	fmt.Println("    the remainder is exactly one guard region")
	set4 := alloc("set 4 (12 MiB)", 12*mb)
	if set4.Off != set1.Off {
		log.Fatalf("expected insert into the first hole, got %v", set4)
	}
	show("insert")

	fmt.Println("(4) with a 4 MiB set 4 instead, the remaining region serves set 5 (8 MiB):")
	fmt.Println("    only one gap is needed to protect set 2 downstream")
	free("set 4 (undo for the demo)", set4)
	set4 = alloc("set 4 (4 MiB)", 4*mb)
	set5 := alloc("set 5 (8 MiB)", 8*mb)
	if set5.Off != set4.End() {
		log.Fatalf("set 5 should append right after set 4, got %v", set5)
	}
	show("split")

	fmt.Println("(5) set 1' dies; its space coalesces with the adjacent free region")
	free("set 1'", set1b)
	show("coalesce")

	fmt.Println("stats:")
	st := mgr.Stats()
	fmt.Printf("  appends %d, inserts %d, splits %d, frees %d, coalesces %d\n",
		st.Appends, st.Inserts, st.Splits, st.Frees, st.Coalesces)
	fmt.Printf("  drive: host wrote %d MiB, device wrote %d MiB (AWA %.3f — no auxiliary amplification)\n",
		drive.HostBytesWritten()/mb, disk.Stats().BytesWritten/mb, smr.AWA(drive))
}
