// Package sealdb is a set-aware LSM-tree key-value store for
// host-managed shingled magnetic recording (SMR) drives with dynamic
// bands — a from-scratch reproduction of "A Set-Aware Key-Value Store
// on Shingled Magnetic Recording Drives with Dynamic Band" (Yao et
// al., IPPS 2018).
//
// The store runs on an emulated SMR device with a calibrated service
// time model, so results are deterministic and the full system — from
// skiplist memtable and write-ahead log down to shingled-track damage
// windows — lives in this module with no external dependencies.
//
// Four engine modes reproduce the paper's systems:
//
//   - ModeSEALDB: the paper's contribution. Compactions operate on
//     sets (a victim SSTable plus the next level's overlapping
//     SSTables, stored contiguously), and placement is managed by
//     dynamic bands on a raw write-anywhere drive, eliminating the
//     drive's auxiliary write amplification.
//   - ModeLevelDB: the LevelDB baseline on a fixed-band SMR drive
//     behind an ext4-like allocator.
//   - ModeLevelDBSets: LevelDB plus sets only (the ablation of
//     Figure 14).
//   - ModeSMRDB: the SMRDB baseline (two levels, band-sized SSTables
//     in dedicated bands).
//
// Quick start:
//
//	db, err := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("key"), []byte("value"))
//	v, err := db.Get([]byte("key"))
package sealdb

import (
	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/sstable"
)

// Mode selects which of the paper's systems the engine behaves as.
type Mode = lsm.Mode

// Engine modes; see the package comment.
const (
	ModeLevelDB     = lsm.ModeLevelDB
	ModeLevelDBSets = lsm.ModeLevelDBSets
	ModeSMRDB       = lsm.ModeSMRDB
	ModeSEALDB      = lsm.ModeSEALDB
)

// Config assembles a database: a mode plus a Geometry.
type Config = lsm.Config

// Geometry holds the size parameters (SSTable, band, guard, memtable,
// level targets, disk capacity).
type Geometry = lsm.Geometry

// DefaultConfig returns the scaled default geometry (1/16 of the
// paper's: 256 KiB SSTables, 2.5 MiB bands) for the given mode.
func DefaultConfig(mode Mode) Config { return lsm.DefaultConfig(mode) }

// DefaultGeometry returns the scaled default geometry.
func DefaultGeometry() Geometry { return lsm.DefaultGeometry() }

// PaperGeometry returns the paper's full-scale geometry (4 MiB
// SSTables, 40 MiB bands).
func PaperGeometry() Geometry { return lsm.PaperGeometry() }

// Compression selects the SSTable block encoding.
type Compression = sstable.Compression

// Block encodings: raw (the default, matching the paper's LevelDB
// configuration) or DEFLATE at the fastest setting.
const (
	NoCompression    = sstable.NoCompression
	FlateCompression = sstable.FlateCompression
)

// DB is a key-value store instance.
type DB = lsm.DB

// Batch collects mutations applied atomically via DB.Apply.
type Batch = lsm.Batch

// NewBatch returns an empty batch.
func NewBatch() *Batch { return lsm.NewBatch() }

// Iterator walks live user keys in ascending order; see DB.NewIterator.
type Iterator = lsm.Iterator

// Snapshot pins a point-in-time view; see DB.NewSnapshot.
type Snapshot = lsm.Snapshot

// KV is a key/value pair returned by DB.Scan.
type KV = lsm.KV

// Device is the emulated drive stack a DB runs on. It plays the role
// of the physical disk: it survives DB.Close, and OpenDevice on it
// exercises crash recovery against the bytes actually written.
type Device = lsm.Device

// Stats aggregates engine activity counters.
type Stats = lsm.Stats

// CompactionInfo describes one compaction in the trace.
type CompactionInfo = lsm.CompactionInfo

// Amplification reports the paper's write-amplification metrics:
// WA (LSM-tree), AWA (SMR drive), and their product MWA.
type Amplification = lsm.Amplification

// MetricsSnapshot is a point-in-time copy of every metric the store
// exports — engine counters, latency histograms, and gauges over the
// whole device stack. Obtain one with DB.MetricsSnapshot; the same
// data backs the /metrics endpoint of DB.ObsHandler.
type MetricsSnapshot = obs.Snapshot

// Event is one entry of the store's observability journal (flushes,
// compactions, set migrations, band GC, media-cache cleans), with
// timestamps in simulated device nanoseconds; see DB.Events.
type Event = obs.Event

// Errors returned by DB operations. ErrDegraded wraps every write
// rejected after a permanent device failure moved the store into
// read-only degraded mode; the network layer maps it to a distinct
// wire status so remote clients can tell it from transient failures.
var (
	ErrNotFound = lsm.ErrNotFound
	ErrClosed   = lsm.ErrClosed
	ErrDegraded = lsm.ErrDegraded
)

// Open creates a fresh database on a new emulated device.
func Open(cfg Config) (*DB, error) { return lsm.Open(cfg) }

// OpenDevice opens a database on an existing device, recovering any
// previous instance's state from its MANIFEST and write-ahead log.
func OpenDevice(cfg Config, dev *Device) (*DB, error) { return lsm.OpenDevice(cfg, dev) }

// NewDevice builds the emulated drive stack for a mode without
// opening a database on it.
func NewDevice(cfg Config) *Device { return lsm.NewDevice(cfg) }
