// Package sstable implements the on-disk table format of the store,
// closely following LevelDB: prefix-compressed data blocks with
// restart points and per-block CRCs, an index block of separators, a
// whole-table bloom filter, and a fixed footer. Tables are built in
// memory and written to the device as one sequential extent by the
// storage backend.
package sstable

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sealdb/internal/kv"
)

// restartInterval is the number of entries between restart points.
const restartInterval = 16

// blockBuilder encodes a sequence of key/value entries with shared
// key-prefix compression.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	counter  int
	lastKey  []byte
	entries  int
}

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.entries = 0
}

func (b *blockBuilder) add(key, value []byte) {
	shared := 0
	if b.counter < restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.entries++
}

func (b *blockBuilder) empty() bool { return b.entries == 0 }

// estimatedSize returns the finished size of the block so far.
func (b *blockBuilder) estimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// finish appends the restart array and count and returns the block
// contents (valid until the next reset).
func (b *blockBuilder) finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// block is a decoded (raw) block ready for iteration.
type block struct {
	data     []byte // entries only
	restarts []uint32
}

func decodeBlock(data []byte) (*block, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("sstable: block too short (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[len(data)-4:])
	restartsEnd := len(data) - 4
	restartsStart := restartsEnd - int(n)*4
	if n == 0 || restartsStart < 0 {
		return nil, fmt.Errorf("sstable: bad restart count %d for %d-byte block", n, len(data))
	}
	restarts := make([]uint32, n)
	for i := range restarts {
		restarts[i] = binary.LittleEndian.Uint32(data[restartsStart+4*i:])
		if int(restarts[i]) > restartsStart {
			return nil, fmt.Errorf("sstable: restart %d out of range", restarts[i])
		}
	}
	return &block{data: data[:restartsStart], restarts: restarts}, nil
}

// blockIter iterates a decoded block. It implements kv.Iterator.
type blockIter struct {
	b      *block
	offset int // offset of the current entry in b.data
	next   int // offset just past the current entry
	key    []byte
	value  []byte
	valid  bool
	err    error
}

func newBlockIter(b *block) *blockIter { return &blockIter{b: b} }

func (it *blockIter) Valid() bool         { return it.valid && it.err == nil }
func (it *blockIter) Error() error        { return it.err }
func (it *blockIter) Key() kv.InternalKey { return it.key }
func (it *blockIter) Value() []byte       { return it.value }

func (it *blockIter) SeekToFirst() {
	it.next = 0
	it.key = it.key[:0]
	it.parseNext()
}

func (it *blockIter) Next() {
	it.parseNext()
}

// parseNext decodes the entry at it.next.
func (it *blockIter) parseNext() {
	if it.err != nil {
		it.valid = false
		return
	}
	if it.next >= len(it.b.data) {
		it.valid = false
		return
	}
	it.offset = it.next
	p := it.b.data[it.next:]
	shared, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		it.corrupt("bad shared varint")
		return
	}
	unshared, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		it.corrupt("bad unshared varint")
		return
	}
	vlen, n3 := binary.Uvarint(p[n1+n2:])
	if n3 <= 0 {
		it.corrupt("bad value-length varint")
		return
	}
	h := n1 + n2 + n3
	if int(shared) > len(it.key) || h+int(unshared)+int(vlen) > len(p) {
		it.corrupt("entry overruns block")
		return
	}
	it.key = append(it.key[:shared], p[h:h+int(unshared)]...)
	it.value = p[h+int(unshared) : h+int(unshared)+int(vlen)]
	it.next += h + int(unshared) + int(vlen)
	it.valid = true
}

func (it *blockIter) corrupt(msg string) {
	it.err = fmt.Errorf("sstable: corrupt block entry at %d: %s", it.next, msg)
	it.valid = false
}

// seekToRestart positions parsing at restart point i.
func (it *blockIter) seekToRestart(i int) {
	it.next = int(it.b.restarts[i])
	it.key = it.key[:0]
	it.parseNext()
}

// SeekToLast positions at the final entry of the block.
func (it *blockIter) SeekToLast() {
	if len(it.b.restarts) == 0 {
		it.valid = false
		return
	}
	it.seekToRestart(len(it.b.restarts) - 1)
	for it.Valid() && it.next < len(it.b.data) {
		it.parseNext()
	}
}

// Prev steps to the entry before the current one by re-parsing from
// the governing restart point, LevelDB's approach: prefix compression
// makes blocks forward-only, so backward movement replays a short
// run.
func (it *blockIter) Prev() {
	if !it.Valid() {
		return
	}
	target := it.offset
	if target == 0 {
		it.valid = false
		return
	}
	// Find the last restart strictly before the current entry.
	ri := sort.Search(len(it.b.restarts), func(i int) bool {
		return int(it.b.restarts[i]) >= target
	})
	if ri > 0 {
		ri--
	}
	it.seekToRestart(ri)
	for it.Valid() && it.next < target {
		it.parseNext()
	}
	if it.offset >= target {
		// The restart itself was the current entry's offset and
		// nothing precedes it (corrupt restarts otherwise).
		it.valid = false
	}
}

// Seek positions at the first entry with key >= target.
func (it *blockIter) Seek(target kv.InternalKey) {
	// Binary search the restart points for the last restart whose
	// key is < target.
	i := sort.Search(len(it.b.restarts), func(i int) bool {
		k, ok := it.restartKey(i)
		if !ok {
			return true // treat corruption as >= to stop early
		}
		return kv.CompareInternal(k, target) >= 0
	})
	if i > 0 {
		i--
	}
	it.seekToRestart(i)
	for it.Valid() && kv.CompareInternal(it.key, target) < 0 {
		it.parseNext()
	}
}

// restartKey decodes the full key stored at restart point i (shared
// prefix is always zero at a restart).
func (it *blockIter) restartKey(i int) (kv.InternalKey, bool) {
	p := it.b.data[it.b.restarts[i]:]
	shared, n1 := binary.Uvarint(p)
	if n1 <= 0 || shared != 0 {
		return nil, false
	}
	unshared, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		return nil, false
	}
	_, n3 := binary.Uvarint(p[n1+n2:])
	if n3 <= 0 {
		return nil, false
	}
	h := n1 + n2 + n3
	if h+int(unshared) > len(p) {
		return nil, false
	}
	return kv.InternalKey(p[h : h+int(unshared)]), true
}

var _ kv.Iterator = (*blockIter)(nil)
