package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sealdb/internal/kv"
)

const (
	// targetBlockSize is the uncompressed data-block cut threshold.
	targetBlockSize = 4096
	// blockTrailerLen is 1 type byte (always 0: no compression) plus
	// a CRC-32C of the block contents.
	blockTrailerLen = 5
	// footerLen holds four fixed 8-byte handle fields plus the magic.
	footerLen  = 40
	tableMagic = 0x5ea1db0000000001
)

// Meta describes a finished table.
type Meta struct {
	Smallest kv.InternalKey
	Largest  kv.InternalKey
	Entries  int
	Size     int64
}

// Builder accumulates sorted entries and produces the table bytes.
// Keys must be added in strictly increasing internal-key order.
type Builder struct {
	compression   Compression
	buf           []byte
	data          blockBuilder
	index         blockBuilder
	userKeys      [][]byte // for the table bloom filter
	meta          Meta
	lastKey       kv.InternalKey
	pendingIx     bool   // an index entry is owed for the last finished block
	pendingKey    []byte // separator key for the pending entry
	pendingHandle blockHandle
	err           error
}

type blockHandle struct {
	offset, length uint64
}

func encodeHandle(dst []byte, h blockHandle) []byte {
	dst = binary.AppendUvarint(dst, h.offset)
	return binary.AppendUvarint(dst, h.length)
}

func decodeHandle(p []byte) (blockHandle, int, error) {
	off, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		return blockHandle{}, 0, fmt.Errorf("sstable: bad handle offset")
	}
	length, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		return blockHandle{}, 0, fmt.Errorf("sstable: bad handle length")
	}
	return blockHandle{off, length}, n1 + n2, nil
}

// NewBuilder returns an empty table builder storing blocks raw.
func NewBuilder() *Builder {
	return &Builder{}
}

// SetCompression selects the block encoding for subsequently cut
// blocks (call before the first Add for uniform tables).
func (b *Builder) SetCompression(c Compression) *Builder {
	b.compression = c
	return b
}

// Add appends an entry. Keys must arrive in strictly increasing
// order; violations put the builder in an error state.
func (b *Builder) Add(ik kv.InternalKey, value []byte) {
	if b.err != nil {
		return
	}
	if b.lastKey != nil && kv.CompareInternal(ik, b.lastKey) <= 0 {
		b.err = fmt.Errorf("sstable: keys out of order: %s after %s", ik, b.lastKey)
		return
	}
	if b.meta.Entries == 0 {
		b.meta.Smallest = ik.Clone()
	}
	b.flushPendingIndex(ik)
	b.data.add(ik, value)
	b.lastKey = append(b.lastKey[:0], ik...)
	b.userKeys = append(b.userKeys, append([]byte(nil), ik.UserKey()...))
	b.meta.Entries++
	if b.data.estimatedSize() >= targetBlockSize {
		b.cutBlock()
	}
}

// flushPendingIndex emits the index entry for the previous block once
// the first key of the next block is known, shortening the separator
// on the user-key portion as LevelDB does.
func (b *Builder) flushPendingIndex(next kv.InternalKey) {
	if !b.pendingIx {
		return
	}
	sep := separator(b.pendingKey, next)
	var hbuf [2 * binary.MaxVarintLen64]byte
	b.index.add(sep, encodeHandle(hbuf[:0], b.pendingHandle))
	b.pendingIx = false
}

// separator returns an internal key k with prev <= k < next that is
// as short as possible on the user-key portion.
func separator(prev kv.InternalKey, next kv.InternalKey) kv.InternalKey {
	a, bkey := prev.UserKey(), next.UserKey()
	n := len(a)
	if len(bkey) < n {
		n = len(bkey)
	}
	i := 0
	for i < n && a[i] == bkey[i] {
		i++
	}
	if i < n && a[i] < 0xff && a[i]+1 < bkey[i] {
		// a[:i+1] with its last byte incremented separates: give it
		// the max trailer so it sorts before every real entry for
		// that user key.
		short := append([]byte(nil), a[:i+1]...)
		short[i]++
		return kv.MakeSearchKey(nil, short, kv.MaxSeqNum)
	}
	return prev.Clone()
}

// cutBlock finishes the current data block and records its handle.
func (b *Builder) cutBlock() {
	if b.data.empty() {
		return
	}
	contents := b.data.finish()
	h := b.appendBlock(contents, b.compression)
	b.data.reset()
	b.pendingIx = true
	b.pendingKey = append(b.pendingKey[:0], b.lastKey...)
	b.pendingHandle = h
}

// appendRawBlock writes contents plus the type/CRC trailer to buf,
// without compression (index, bloom).
func (b *Builder) appendRawBlock(contents []byte) blockHandle {
	return b.appendBlock(contents, NoCompression)
}

// appendBlock encodes contents per policy and writes it with its
// type/CRC trailer.
func (b *Builder) appendBlock(contents []byte, policy Compression) blockHandle {
	payload, typ := compressBlock(policy, contents)
	h := blockHandle{offset: uint64(len(b.buf)), length: uint64(len(payload))}
	b.buf = append(b.buf, payload...)
	crc := crc32.Checksum(payload, castagnoliTable)
	crc = crc32.Update(crc, castagnoliTable, []byte{typ})
	b.buf = append(b.buf, typ)
	b.buf = binary.LittleEndian.AppendUint32(b.buf, crc)
	return h
}

var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// EstimatedSize returns the table size if Finish were called now.
func (b *Builder) EstimatedSize() int64 {
	return int64(len(b.buf)) + int64(b.data.estimatedSize()) + int64(b.index.estimatedSize()) + footerLen
}

// Entries returns the number of entries added so far.
func (b *Builder) Entries() int { return b.meta.Entries }

// Empty reports whether nothing has been added.
func (b *Builder) Empty() bool { return b.meta.Entries == 0 }

// Finish completes the table and returns its bytes and metadata. The
// builder cannot be reused afterwards.
func (b *Builder) Finish() ([]byte, Meta, error) {
	if b.err != nil {
		return nil, Meta{}, b.err
	}
	if b.meta.Entries == 0 {
		return nil, Meta{}, fmt.Errorf("sstable: finishing an empty table")
	}
	b.cutBlock()
	// Final index entry: any key >= lastKey works as its own
	// separator at end of table.
	if b.pendingIx {
		var hbuf [2 * binary.MaxVarintLen64]byte
		b.index.add(b.pendingKey, encodeHandle(hbuf[:0], b.pendingHandle))
		b.pendingIx = false
	}

	bloom := buildBloom(b.userKeys)
	bloomHandle := b.appendRawBlock(bloom)
	indexHandle := b.appendRawBlock(b.index.finish())

	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], indexHandle.offset)
	binary.LittleEndian.PutUint64(footer[8:], indexHandle.length)
	binary.LittleEndian.PutUint64(footer[16:], bloomHandle.offset)
	binary.LittleEndian.PutUint64(footer[24:], bloomHandle.length)
	binary.LittleEndian.PutUint64(footer[32:], tableMagic)
	b.buf = append(b.buf, footer[:]...)

	b.meta.Largest = b.lastKey.Clone()
	b.meta.Size = int64(len(b.buf))
	return b.buf, b.meta, nil
}
