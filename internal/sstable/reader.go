package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"sealdb/internal/kv"
)

// ErrCorruptBlock is the sentinel matched by errors.Is for any block
// whose stored CRC did not match its contents — on-media corruption,
// as opposed to structural decode failures (a builder or handle bug).
var ErrCorruptBlock = errors.New("sstable: corrupt block (checksum mismatch)")

// CorruptBlockError pinpoints a CRC failure: which table file and at
// which byte offset within it the damaged block starts. It matches
// ErrCorruptBlock under errors.Is.
type CorruptBlockError struct {
	FileNum uint64
	Offset  uint64
}

func (e *CorruptBlockError) Error() string {
	return fmt.Sprintf("sstable: block checksum mismatch in file %d at %d", e.FileNum, e.Offset)
}

// Is reports whether target is the corruption sentinel.
func (e *CorruptBlockError) Is(target error) bool { return target == ErrCorruptBlock }

// Table reads a finished SSTable through an io.ReaderAt.
type Table struct {
	r       io.ReaderAt
	size    int64
	fileNum uint64
	cache   *Cache

	index *block
	bloom []byte
}

// Open validates the footer and loads the index and bloom blocks.
func Open(r io.ReaderAt, size int64, fileNum uint64, cache *Cache) (*Table, error) {
	if size < footerLen {
		return nil, fmt.Errorf("sstable: file %d too small (%d bytes)", fileNum, size)
	}
	var footer [footerLen]byte
	if _, err := r.ReadAt(footer[:], size-footerLen); err != nil {
		return nil, fmt.Errorf("sstable: reading footer of file %d: %w", fileNum, err)
	}
	if magic := binary.LittleEndian.Uint64(footer[32:]); magic != tableMagic {
		return nil, fmt.Errorf("sstable: bad magic %#x in file %d", magic, fileNum)
	}
	t := &Table{r: r, size: size, fileNum: fileNum, cache: cache}
	indexHandle := blockHandle{
		offset: binary.LittleEndian.Uint64(footer[0:]),
		length: binary.LittleEndian.Uint64(footer[8:]),
	}
	bloomHandle := blockHandle{
		offset: binary.LittleEndian.Uint64(footer[16:]),
		length: binary.LittleEndian.Uint64(footer[24:]),
	}
	raw, err := t.readRaw(bloomHandle)
	if err != nil {
		return nil, err
	}
	t.bloom = raw
	idx, err := t.readBlock(indexHandle)
	if err != nil {
		return nil, err
	}
	t.index = idx
	return t, nil
}

// readRaw fetches and CRC-checks a raw block (no decode).
func (t *Table) readRaw(h blockHandle) ([]byte, error) {
	return t.readRawFrom(t.r, h)
}

func (t *Table) readRawFrom(r io.ReaderAt, h blockHandle) ([]byte, error) {
	if h.offset+h.length+blockTrailerLen > uint64(t.size) {
		return nil, fmt.Errorf("sstable: handle %+v outside file %d", h, t.fileNum)
	}
	buf := make([]byte, h.length+blockTrailerLen)
	if _, err := r.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, fmt.Errorf("sstable: reading block of file %d: %w", t.fileNum, err)
	}
	contents := buf[:h.length]
	typ := buf[h.length]
	wantCRC := binary.LittleEndian.Uint32(buf[h.length+1:])
	crc := crc32.Checksum(contents, castagnoliTable)
	crc = crc32.Update(crc, castagnoliTable, []byte{typ})
	if crc != wantCRC {
		t.cache.noteCorrupt(t.fileNum, h.offset)
		return nil, &CorruptBlockError{FileNum: t.fileNum, Offset: h.offset}
	}
	out, err := decompressBlock(typ, contents)
	if err != nil {
		return nil, fmt.Errorf("sstable: file %d at %d: %w", t.fileNum, h.offset, err)
	}
	return out, nil
}

// readBlock fetches a data/index block through the cache.
func (t *Table) readBlock(h blockHandle) (*block, error) {
	if b := t.cache.get(t.fileNum, h.offset); b != nil {
		return b, nil
	}
	raw, err := t.readRaw(h)
	if err != nil {
		return nil, err
	}
	b, err := decodeBlock(raw)
	if err != nil {
		return nil, fmt.Errorf("sstable: file %d: %w", t.fileNum, err)
	}
	t.cache.put(t.fileNum, h.offset, b)
	return b, nil
}

// Get returns the entry for ukey visible at snapshot seq.
func (t *Table) Get(ukey []byte, seq kv.SeqNum) (value []byte, deleted, ok bool, err error) {
	v, _, kind, ok, err := t.GetEntry(ukey, seq)
	return v, ok && kind == kv.KindDelete, ok, err
}

// GetEntry returns the newest entry for ukey visible at snapshot seq,
// together with its sequence number and kind; callers reading
// overlapped levels compare sequence numbers across tables.
func (t *Table) GetEntry(ukey []byte, seq kv.SeqNum) (value []byte, foundSeq kv.SeqNum, kind kv.Kind, ok bool, err error) {
	if !bloomMayContain(t.bloom, ukey) {
		t.cache.noteBloom(false, false)
		return nil, 0, 0, false, nil
	}
	var buf [64]byte
	search := kv.MakeSearchKey(buf[:0], ukey, seq)
	ixIter := newBlockIter(t.index)
	ixIter.Seek(search)
	if !ixIter.Valid() {
		if ixIter.Error() == nil {
			t.cache.noteBloom(true, false)
		}
		return nil, 0, 0, false, ixIter.Error()
	}
	h, _, err := decodeHandle(ixIter.Value())
	if err != nil {
		return nil, 0, 0, false, err
	}
	b, err := t.readBlock(h)
	if err != nil {
		return nil, 0, 0, false, err
	}
	it := newBlockIter(b)
	it.Seek(search)
	if !it.Valid() {
		if it.Error() == nil {
			t.cache.noteBloom(true, false)
		}
		return nil, 0, 0, false, it.Error()
	}
	ik := it.Key()
	if kv.CompareUser(ik.UserKey(), ukey) != 0 {
		t.cache.noteBloom(true, false)
		return nil, 0, 0, false, nil
	}
	t.cache.noteBloom(true, true)
	if ik.Kind() == kv.KindDelete {
		return nil, ik.Seq(), kv.KindDelete, true, nil
	}
	return append([]byte(nil), it.Value()...), ik.Seq(), ik.Kind(), true, nil
}

// NewIterator returns a two-level iterator over the whole table.
func (t *Table) NewIterator() kv.Iterator {
	return &tableIter{t: t, ix: newBlockIter(t.index)}
}

// NewCompactionIterator returns an iterator for compaction input
// scans: it bypasses the block cache (LevelDB's fill_cache=false)
// and reads through a readahead window of the given size, modeling
// the OS readahead a streaming merge enjoys on each input file.
func (t *Table) NewCompactionIterator(readahead int) kv.Iterator {
	it := &tableIter{t: t, ix: newBlockIter(t.index), nocache: true}
	if readahead > 0 {
		it.src = &readaheadReader{r: t.r, window: readahead}
	}
	return it
}

// readaheadReader serves ReadAt from a single sliding window, hitting
// the underlying reader once per window.
type readaheadReader struct {
	r      io.ReaderAt
	window int
	buf    []byte
	off    int64 // file offset of buf[0]
}

// ReadAt implements io.ReaderAt.
func (ra *readaheadReader) ReadAt(p []byte, off int64) (int, error) {
	if off >= ra.off && off+int64(len(p)) <= ra.off+int64(len(ra.buf)) {
		copy(p, ra.buf[off-ra.off:])
		return len(p), nil
	}
	n := ra.window
	if n < len(p) {
		n = len(p)
	}
	buf := make([]byte, n)
	m, err := ra.r.ReadAt(buf, off)
	if err == io.EOF && m >= len(p) {
		err = nil
	}
	if err != nil && m < len(p) {
		return 0, err
	}
	ra.buf = buf[:m]
	ra.off = off
	copy(p, ra.buf)
	return len(p), nil
}

// tableIter chains the index iterator with per-block data iterators.
type tableIter struct {
	t       *Table
	ix      *blockIter
	data    *blockIter
	err     error
	nocache bool
	src     io.ReaderAt // non-nil: read data blocks through this
}

func (it *tableIter) Valid() bool {
	return it.err == nil && it.data != nil && it.data.Valid()
}

func (it *tableIter) Error() error {
	if it.err != nil {
		return it.err
	}
	if it.data != nil && it.data.Error() != nil {
		return it.data.Error()
	}
	return it.ix.Error()
}

func (it *tableIter) loadBlock() {
	it.data = nil
	if !it.ix.Valid() {
		return
	}
	h, _, err := decodeHandle(it.ix.Value())
	if err != nil {
		it.err = err
		return
	}
	var b *block
	if it.nocache {
		src := it.src
		if src == nil {
			src = it.t.r
		}
		raw, err := it.t.readRawFrom(src, h)
		if err == nil {
			b, err = decodeBlock(raw)
		}
		if err != nil {
			it.err = err
			return
		}
	} else {
		b, err = it.t.readBlock(h)
		if err != nil {
			it.err = err
			return
		}
	}
	it.data = newBlockIter(b)
}

func (it *tableIter) SeekToFirst() {
	it.err = nil
	it.ix.SeekToFirst()
	it.loadBlock()
	if it.data != nil {
		it.data.SeekToFirst()
	}
	it.skipEmptyBlocks()
}

func (it *tableIter) Seek(target kv.InternalKey) {
	it.err = nil
	it.ix.Seek(target)
	it.loadBlock()
	if it.data != nil {
		it.data.Seek(target)
	}
	it.skipEmptyBlocks()
}

func (it *tableIter) SeekToLast() {
	it.err = nil
	it.ix.SeekToLast()
	it.loadBlock()
	if it.data != nil {
		it.data.SeekToLast()
	}
	it.skipEmptyBlocksBackward()
}

func (it *tableIter) Next() {
	it.data.Next()
	it.skipEmptyBlocks()
}

func (it *tableIter) Prev() {
	it.data.Prev()
	it.skipEmptyBlocksBackward()
}

// skipEmptyBlocksBackward retreats to the previous non-exhausted
// data block.
func (it *tableIter) skipEmptyBlocksBackward() {
	for it.err == nil && (it.data == nil || !it.data.Valid()) {
		if it.data != nil && it.data.Error() != nil {
			it.err = it.data.Error()
			return
		}
		if !it.ix.Valid() {
			it.data = nil
			return
		}
		it.ix.Prev()
		it.loadBlock()
		if it.data != nil {
			it.data.SeekToLast()
		}
	}
}

// skipEmptyBlocks advances to the next non-exhausted data block.
func (it *tableIter) skipEmptyBlocks() {
	for it.err == nil && (it.data == nil || !it.data.Valid()) {
		if it.data != nil && it.data.Error() != nil {
			it.err = it.data.Error()
			return
		}
		if !it.ix.Valid() {
			it.data = nil
			return
		}
		it.ix.Next()
		it.loadBlock()
		if it.data != nil {
			it.data.SeekToFirst()
		}
	}
}

func (it *tableIter) Key() kv.InternalKey { return it.data.Key() }
func (it *tableIter) Value() []byte       { return it.data.Value() }

var _ kv.Iterator = (*tableIter)(nil)
