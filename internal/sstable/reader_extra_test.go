package sstable

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"sealdb/internal/kv"
)

// TestIteratorRandomWalkAgainstReference: random SeekToFirst / Seek /
// Next schedules must agree with a sorted in-memory reference.
func TestIteratorRandomWalkAgainstReference(t *testing.T) {
	entries := genEntries(1500, 77)
	data, _ := buildTable(t, entries)
	tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, NewCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	rng := rand.New(rand.NewSource(3))
	it := tbl.NewIterator()
	ref := -1 // current index into keys; -1 = invalid
	for step := 0; step < 5000; step++ {
		switch rng.Intn(6) {
		case 0:
			it.SeekToFirst()
			ref = 0
		case 1:
			it.SeekToLast()
			ref = len(keys) - 1
		case 2:
			target := fmt.Sprintf("key%08d", rng.Intn(16000))
			it.Seek(kv.MakeSearchKey(nil, []byte(target), kv.MaxSeqNum))
			ref = sort.SearchStrings(keys, target)
		case 3:
			if ref >= 0 && ref < len(keys) {
				it.Prev()
				ref--
				if ref < 0 {
					if it.Valid() {
						t.Fatalf("step %d: Prev past start left iterator at %q", step, it.Key().UserKey())
					}
					ref = -1
					continue
				}
			} else {
				continue
			}
		default:
			if ref >= 0 && ref < len(keys) {
				it.Next()
				ref++
			} else {
				continue
			}
		}
		if ref >= len(keys) {
			if it.Valid() {
				t.Fatalf("step %d: iterator valid at %q, reference exhausted", step, it.Key().UserKey())
			}
			ref = -1
			continue
		}
		if !it.Valid() {
			t.Fatalf("step %d: iterator invalid, reference at %q", step, keys[ref])
		}
		if got := string(it.Key().UserKey()); got != keys[ref] {
			t.Fatalf("step %d: iterator at %q, reference at %q", step, got, keys[ref])
		}
		if string(it.Value()) != entries[keys[ref]] {
			t.Fatalf("step %d: value mismatch at %q", step, keys[ref])
		}
	}
}

// TestCompactionIteratorMatchesNormal: the no-cache/readahead iterator
// must yield the identical sequence.
func TestCompactionIteratorMatchesNormal(t *testing.T) {
	entries := genEntries(2000, 88)
	data, _ := buildTable(t, entries)
	tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, NewCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{0, 1, 4096, 128 * 1024, 10 << 20} {
		a := tbl.NewIterator()
		b := tbl.NewCompactionIterator(window)
		a.SeekToFirst()
		b.SeekToFirst()
		for a.Valid() || b.Valid() {
			if a.Valid() != b.Valid() {
				t.Fatalf("window %d: validity diverged", window)
			}
			if kv.CompareInternal(a.Key(), b.Key()) != 0 || !bytes.Equal(a.Value(), b.Value()) {
				t.Fatalf("window %d: entries diverged at %s", window, a.Key())
			}
			a.Next()
			b.Next()
		}
		if b.Error() != nil {
			t.Fatalf("window %d: %v", window, b.Error())
		}
	}
}

// trackingReader counts ReadAt calls to verify readahead batching.
type trackingReader struct {
	r     io.ReaderAt
	calls int
}

func (tr *trackingReader) ReadAt(p []byte, off int64) (int, error) {
	tr.calls++
	return tr.r.ReadAt(p, off)
}

func TestReadaheadReducesUnderlyingReads(t *testing.T) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(data)

	direct := &trackingReader{r: bytes.NewReader(data)}
	buf := make([]byte, 4096)
	for off := int64(0); off+4096 <= int64(len(data)); off += 4096 {
		direct.ReadAt(buf, off)
	}

	tracked := &trackingReader{r: bytes.NewReader(data)}
	ra := &readaheadReader{r: tracked, window: 128 * 1024}
	out := make([]byte, 4096)
	for off := int64(0); off+4096 <= int64(len(data)); off += 4096 {
		if _, err := ra.ReadAt(out, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data[off:off+4096]) {
			t.Fatalf("readahead corrupted data at %d", off)
		}
	}
	if tracked.calls >= direct.calls/16 {
		t.Errorf("readahead made %d underlying reads vs %d direct; window not effective",
			tracked.calls, direct.calls)
	}
}

func TestReadaheadReaderEdgeCases(t *testing.T) {
	data := []byte("0123456789abcdef")
	ra := &readaheadReader{r: bytes.NewReader(data), window: 8}

	// Read crossing EOF within the window: the window shrinks.
	p := make([]byte, 4)
	if _, err := ra.ReadAt(p, 12); err != nil {
		t.Fatal(err)
	}
	if string(p) != "cdef" {
		t.Errorf("tail read %q", p)
	}
	// Request larger than the window.
	big := make([]byte, 12)
	if _, err := ra.ReadAt(big, 0); err != nil {
		t.Fatal(err)
	}
	if string(big) != "0123456789ab" {
		t.Errorf("oversized read %q", big)
	}
	// Backwards read after a forward window.
	if _, err := ra.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if string(p) != "0123" {
		t.Errorf("backward read %q", p)
	}
	// Read fully past EOF errors.
	if _, err := ra.ReadAt(p, 100); err == nil {
		t.Error("read past EOF accepted")
	}
}

func TestTableIteratorSeekToFirstAfterExhaustion(t *testing.T) {
	entries := genEntries(100, 5)
	data, _ := buildTable(t, entries)
	tbl, _ := Open(bytes.NewReader(data), int64(len(data)), 1, nil)
	it := tbl.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
	}
	// Rewind works after exhaustion.
	it.SeekToFirst()
	if !it.Valid() {
		t.Fatal("SeekToFirst after exhaustion invalid")
	}
}
