package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sealdb/internal/kv"
)

func TestCompressBlockRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		payload, typ := compressBlock(FlateCompression, data)
		out, err := decompressBlock(typ, payload)
		if err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressionFallsBackOnIncompressible(t *testing.T) {
	random := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(random)
	payload, typ := compressBlock(FlateCompression, random)
	if typ != byte(NoCompression) {
		t.Errorf("incompressible data stored with type %d", typ)
	}
	if !bytes.Equal(payload, random) {
		t.Error("fallback altered the payload")
	}

	compressible := bytes.Repeat([]byte("abcdefgh"), 512)
	payload, typ = compressBlock(FlateCompression, compressible)
	if typ != byte(FlateCompression) {
		t.Error("highly compressible data not compressed")
	}
	if len(payload) >= len(compressible) {
		t.Error("compression did not shrink the block")
	}
}

func TestNoCompressionPolicyIsRaw(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 1000)
	payload, typ := compressBlock(NoCompression, data)
	if typ != byte(NoCompression) || !bytes.Equal(payload, data) {
		t.Error("NoCompression policy modified the block")
	}
}

func TestDecompressUnknownType(t *testing.T) {
	if _, err := decompressBlock(99, []byte("x")); err == nil {
		t.Error("unknown block type accepted")
	}
}

func TestCompressedTableRoundTrip(t *testing.T) {
	// Build a table with highly compressible values under the flate
	// policy and verify every read path.
	b := NewBuilder().SetCompression(FlateCompression)
	const n = 2000
	want := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		v := fmt.Sprintf("value-%06d-%s", i, bytes.Repeat([]byte("pad"), 40))
		want[k] = v
		b.Add(kv.MakeInternalKey(nil, []byte(k), kv.SeqNum(i+1), kv.KindSet), []byte(v))
	}
	data, meta, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// A same-content uncompressed table must be larger.
	b2 := NewBuilder()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		b2.Add(kv.MakeInternalKey(nil, []byte(k), kv.SeqNum(i+1), kv.KindSet), []byte(want[k]))
	}
	raw, _, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) >= int64(len(raw)) {
		t.Errorf("compressed table %d not smaller than raw %d", len(data), len(raw))
	}

	tbl, err := Open(bytes.NewReader(data), meta.Size, 1, NewCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, _, ok, err := tbl.Get([]byte(k), kv.MaxSeqNum)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q ok=%v err=%v", k, got, ok, err)
		}
	}
	it := tbl.NewIterator()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("iterated %d entries, want %d", count, n)
	}

	// The compaction iterator (no cache, readahead) also decodes
	// compressed blocks.
	cit := tbl.NewCompactionIterator(64 * 1024)
	count = 0
	for cit.SeekToFirst(); cit.Valid(); cit.Next() {
		count++
	}
	if cit.Error() != nil || count != n {
		t.Fatalf("compaction iterator saw %d entries (err %v)", count, cit.Error())
	}
}

func TestCompressedBlockCorruptionDetected(t *testing.T) {
	b := NewBuilder().SetCompression(FlateCompression)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%06d", i)
		b.Add(kv.MakeInternalKey(nil, []byte(k), kv.SeqNum(i+1), kv.KindSet),
			bytes.Repeat([]byte("v"), 200))
	}
	data, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	data[50] ^= 0xff
	tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%06d", i)
		if _, _, _, err := tbl.Get([]byte(k), kv.MaxSeqNum); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("corrupted compressed block never reported")
	}
}

func TestCompressionString(t *testing.T) {
	if NoCompression.String() != "none" || FlateCompression.String() != "flate" {
		t.Error("Compression.String mismatch")
	}
	if Compression(7).String() != "Compression(7)" {
		t.Error("unknown compression string")
	}
}
