package sstable

import "encoding/binary"

// bloomBitsPerKey matches LevelDB's default filter policy (10 bits
// per key, ~1% false positives).
const bloomBitsPerKey = 10

// bloomHash is the hash LevelDB's bloom filter uses (a Murmur-like
// mixing of the key).
func bloomHash(key []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(key))*m
	for len(key) >= 4 {
		h += binary.LittleEndian.Uint32(key)
		h *= m
		h ^= h >> 16
		key = key[4:]
	}
	switch len(key) {
	case 3:
		h += uint32(key[2]) << 16
		fallthrough
	case 2:
		h += uint32(key[1]) << 8
		fallthrough
	case 1:
		h += uint32(key[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// buildBloom creates a filter block over n keys fed through add. The
// last byte stores the probe count.
func buildBloom(keys [][]byte) []byte {
	k := uint8(bloomBitsPerKey * 69 / 100) // bitsPerKey * ln2
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(keys) * bloomBitsPerKey
	if bits < 64 {
		bits = 64
	}
	nbytes := (bits + 7) / 8
	bits = nbytes * 8
	filter := make([]byte, nbytes+1)
	filter[nbytes] = k
	for _, key := range keys {
		h := bloomHash(key)
		delta := h>>17 | h<<15
		for i := uint8(0); i < k; i++ {
			pos := h % uint32(bits)
			filter[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return filter
}

// bloomMayContain tests key against a filter produced by buildBloom.
// An empty or malformed filter conservatively returns true.
func bloomMayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return true
	}
	nbytes := len(filter) - 1
	bits := uint32(nbytes * 8)
	k := filter[nbytes]
	if k > 30 {
		return true // reserved for future encodings
	}
	h := bloomHash(key)
	delta := h>>17 | h<<15
	for i := uint8(0); i < k; i++ {
		pos := h % bits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
