package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sealdb/internal/kv"
)

func benchTable(b *testing.B, n int) (*Table, []string) {
	b.Helper()
	bl := NewBuilder()
	keys := make([]string, n)
	val := make([]byte, 1024)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("key%09d", i)
		bl.Add(kv.MakeInternalKey(nil, []byte(keys[i]), kv.SeqNum(i+1), kv.KindSet), val)
	}
	data, _, err := bl.Finish()
	if err != nil {
		b.Fatal(err)
	}
	t, err := Open(bytes.NewReader(data), int64(len(data)), 1, NewCache(64<<20))
	if err != nil {
		b.Fatal(err)
	}
	return t, keys
}

func BenchmarkBuild(b *testing.B) {
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder()
		for j := 0; j < 1000; j++ {
			bl.Add(kv.MakeInternalKey(nil, fmt.Appendf(nil, "key%09d", j), kv.SeqNum(j+1), kv.KindSet), val)
		}
		if _, _, err := bl.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1000 * 1024)
}

func BenchmarkBuildCompressed(b *testing.B) {
	val := bytes.Repeat([]byte("pad8"), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder().SetCompression(FlateCompression)
		for j := 0; j < 1000; j++ {
			bl.Add(kv.MakeInternalKey(nil, fmt.Appendf(nil, "key%09d", j), kv.SeqNum(j+1), kv.KindSet), val)
		}
		if _, _, err := bl.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1000 * 1024)
}

func BenchmarkTableGet(b *testing.B) {
	t, keys := benchTable(b, 10000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[rng.Intn(len(keys))]
		if _, _, ok, err := t.Get([]byte(k), kv.MaxSeqNum); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkTableGetAbsent(b *testing.B) {
	t, _ := benchTable(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok, _ := t.Get(fmt.Appendf(nil, "nope%09d", i), kv.MaxSeqNum); ok {
			b.Fatal("phantom hit")
		}
	}
}

func BenchmarkTableIterate(b *testing.B) {
	t, _ := benchTable(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := t.NewIterator()
		n := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			n++
		}
		if n != 10000 {
			b.Fatal(n)
		}
	}
	b.SetBytes(10000 * 1024)
}

func BenchmarkBloomBuild(b *testing.B) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "key%09d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildBloom(keys)
	}
}

func BenchmarkBloomQuery(b *testing.B) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "key%09d", i)
	}
	f := buildBloom(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bloomMayContain(f, keys[i%len(keys)])
	}
}
