package sstable

import (
	"container/list"
	"sync"
)

// Cache is a shared LRU cache of decoded blocks, keyed by (file
// number, block offset). One cache serves all tables of a DB, like
// LevelDB's block cache.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[cacheKey]*list.Element

	hits, misses int64

	// Bloom-filter outcome counters for the tables sharing this
	// cache: definite negatives (lookups the filter rejected), true
	// positives (filter passed, key present) and false positives
	// (filter passed, key absent).
	bloomNeg, bloomTruePos, bloomFalsePos int64

	// corrupt counts CRC-failed block reads across the cache's
	// tables. guarded by mu.
	corrupt int64
	// onCorrupt, if set, is invoked (outside mu) once per CRC
	// failure with the damaged block's file number and offset.
	// guarded by mu.
	onCorrupt func(file, offset uint64)
}

type cacheKey struct {
	file   uint64
	offset uint64
}

type cacheEntry struct {
	key   cacheKey
	block *block
	size  int64
}

// NewCache creates a cache bounded to capacity bytes of block data.
// A nil cache is valid and caches nothing.
func NewCache(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

func (c *Cache) get(file, offset uint64) *block {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[cacheKey{file, offset}]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).block
	}
	c.misses++
	return nil
}

func (c *Cache) put(file, offset uint64, b *block) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{file, offset}
	if _, ok := c.items[k]; ok {
		return
	}
	size := int64(len(b.data)) + int64(4*len(b.restarts)) + 64
	e := &cacheEntry{key: k, block: b, size: size}
	c.items[k] = c.ll.PushFront(e)
	c.used += size
	for c.used > c.capacity && c.ll.Len() > 0 {
		last := c.ll.Back()
		ent := last.Value.(*cacheEntry)
		c.ll.Remove(last)
		delete(c.items, ent.key)
		c.used -= ent.size
	}
}

// EvictFile drops every cached block of the given file (called when a
// table is deleted).
func (c *Cache) EvictFile(file uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.file == file {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			c.used -= ent.size
		}
		el = next
	}
}

// HitRate returns the fraction of lookups served from the cache.
func (c *Cache) HitRate() float64 {
	return c.Stats().HitRatio
}

// noteBloom records one bloom-filter outcome for a table sharing this
// cache. Nil-safe (compaction readers run without a cache).
func (c *Cache) noteBloom(passed, found bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case !passed:
		c.bloomNeg++
	case found:
		c.bloomTruePos++
	default:
		c.bloomFalsePos++
	}
}

// SetCorruptObserver installs fn to be called once per detected
// block-CRC failure in any table sharing this cache. Nil-safe.
func (c *Cache) SetCorruptObserver(fn func(file, offset uint64)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onCorrupt = fn
}

// noteCorrupt records one CRC-failed block read and notifies the
// observer. Nil-safe (compaction readers run without a cache).
func (c *Cache) noteCorrupt(file, offset uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.corrupt++
	fn := c.onCorrupt
	c.mu.Unlock()
	if fn != nil {
		fn(file, offset)
	}
}

// CacheStats is a point-in-time copy of the cache and bloom counters.
type CacheStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	// UsedBytes and Entries describe the current residency.
	UsedBytes int64 `json:"used_bytes"`
	Entries   int   `json:"entries"`
	// Bloom-filter effectiveness across the cache's tables.
	BloomNegatives      int64 `json:"bloom_negatives"`
	BloomTruePositives  int64 `json:"bloom_true_positives"`
	BloomFalsePositives int64 `json:"bloom_false_positives"`
	// CorruptBlocks counts block reads that failed their CRC.
	CorruptBlocks int64 `json:"corrupt_blocks"`
}

// Stats returns the cache and bloom counters. A nil cache reports
// zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits: c.hits, Misses: c.misses,
		UsedBytes: c.used, Entries: c.ll.Len(),
		BloomNegatives:      c.bloomNeg,
		BloomTruePositives:  c.bloomTruePos,
		BloomFalsePositives: c.bloomFalsePos,
		CorruptBlocks:       c.corrupt,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRatio = float64(c.hits) / float64(total)
	}
	return s
}
