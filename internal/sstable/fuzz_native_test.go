package sstable

import (
	"bytes"
	"testing"

	"sealdb/internal/kv"
)

// FuzzTableRead drives the table reader and the low-level block
// decoder with fuzzed bytes: whatever the input, Open must either
// reject it or serve reads without panicking. The corpus is seeded
// with a small valid table (so the fuzzer starts from structurally
// interesting bytes) plus a few degenerate shapes.
//
// CI runs this as a smoke pass (go test -fuzz=Fuzz -fuzztime=30s);
// locally it can run for as long as you like. The deterministic
// corruption sweeps in fuzz_robustness_test.go stay the regression
// baseline — this target explores beyond them.
func FuzzTableRead(f *testing.F) {
	b := NewBuilder()
	for i, k := range []string{"alpha", "bravo", "charlie", "delta", "echo"} {
		ik := kv.MakeInternalKey(nil, []byte(k), kv.SeqNum(i+1), kv.KindSet)
		b.Add(ik, bytes.Repeat([]byte{byte('a' + i)}, 16))
	}
	seed, _, err := b.Finish()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, nil)
		if err == nil && tbl != nil {
			tbl.Get([]byte("alpha"), kv.MaxSeqNum)
			tbl.Get([]byte("zulu"), kv.MaxSeqNum)
			it := tbl.NewIterator()
			n := 0
			for it.SeekToFirst(); it.Valid() && n < 100000; it.Next() {
				n++
			}
			it.Seek(kv.MakeInternalKey(nil, []byte("charlie"), kv.MaxSeqNum, kv.KindSet))
		}
		if blk, err := decodeBlock(data); err == nil && blk != nil {
			it := newBlockIter(blk)
			n := 0
			for it.SeekToFirst(); it.Valid() && n < 100000; it.Next() {
				n++
			}
		}
	})
}
