package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sealdb/internal/kv"
)

func buildTable(t *testing.T, entries map[string]string) ([]byte, Meta) {
	t.Helper()
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := NewBuilder()
	for i, k := range keys {
		ik := kv.MakeInternalKey(nil, []byte(k), kv.SeqNum(i+1), kv.KindSet)
		b.Add(ik, []byte(entries[k]))
	}
	data, meta, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return data, meta
}

func genEntries(n int, seed int64) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	m := make(map[string]string, n)
	for len(m) < n {
		k := fmt.Sprintf("key%08d", rng.Intn(10*n))
		m[k] = fmt.Sprintf("value-%d-%d", len(m), rng.Int63())
	}
	return m
}

func TestBuildAndGet(t *testing.T) {
	entries := genEntries(2000, 1)
	data, meta := buildTable(t, entries)
	if meta.Entries != len(entries) {
		t.Fatalf("meta entries %d, want %d", meta.Entries, len(entries))
	}
	tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, NewCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range entries {
		got, deleted, ok, err := tbl.Get([]byte(k), kv.MaxSeqNum)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || deleted || string(got) != v {
			t.Fatalf("Get(%q) = (%q, del=%v, ok=%v), want %q", k, got, deleted, ok, v)
		}
	}
	// Absent keys.
	for _, k := range []string{"", "a", "zzzzzz", "key"} {
		if _, ok := entries[k]; ok {
			continue
		}
		_, _, ok, err := tbl.Get([]byte(k), kv.MaxSeqNum)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("Get(%q) found a nonexistent key", k)
		}
	}
}

func TestSnapshotVisibility(t *testing.T) {
	b := NewBuilder()
	k := []byte("key")
	// Internal order: higher seq first.
	b.Add(kv.MakeInternalKey(nil, k, 30, kv.KindSet), []byte("v30"))
	b.Add(kv.MakeInternalKey(nil, k, 20, kv.KindDelete), nil)
	b.Add(kv.MakeInternalKey(nil, k, 10, kv.KindSet), []byte("v10"))
	data, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		seq  kv.SeqNum
		want string
		del  bool
		ok   bool
	}{
		{5, "", false, false},
		{10, "v10", false, true},
		{15, "v10", false, true},
		{20, "", true, true},
		{25, "", true, true},
		{30, "v30", false, true},
		{kv.MaxSeqNum, "v30", false, true},
	}
	for _, c := range cases {
		v, del, ok, err := tbl.Get(k, c.seq)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.ok || del != c.del || string(v) != c.want {
			t.Errorf("Get@%d = (%q, %v, %v), want (%q, %v, %v)", c.seq, v, del, ok, c.want, c.del, c.ok)
		}
	}
}

func TestIteratorFullScan(t *testing.T) {
	entries := genEntries(3000, 2)
	data, _ := buildTable(t, entries)
	tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, NewCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	it := tbl.NewIterator()
	i := 0
	var prev kv.InternalKey
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key().UserKey()) != keys[i] {
			t.Fatalf("position %d: got %q, want %q", i, it.Key().UserKey(), keys[i])
		}
		if string(it.Value()) != entries[keys[i]] {
			t.Fatalf("value mismatch at %q", keys[i])
		}
		if prev != nil && kv.CompareInternal(prev, it.Key()) >= 0 {
			t.Fatal("iterator order violation")
		}
		prev = it.Key().Clone()
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("scanned %d, want %d", i, len(keys))
	}
}

func TestIteratorSeek(t *testing.T) {
	entries := genEntries(1000, 3)
	data, _ := buildTable(t, entries)
	tbl, _ := Open(bytes.NewReader(data), int64(len(data)), 1, NewCache(1<<20))
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	it := tbl.NewIterator()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		target := fmt.Sprintf("key%08d", rng.Intn(11000))
		it.Seek(kv.MakeSearchKey(nil, []byte(target), kv.MaxSeqNum))
		// Expected: first key >= target.
		want := sort.SearchStrings(keys, target)
		if want == len(keys) {
			if it.Valid() {
				t.Fatalf("seek(%q) should be exhausted, at %q", target, it.Key().UserKey())
			}
			continue
		}
		if !it.Valid() {
			t.Fatalf("seek(%q) invalid, want %q", target, keys[want])
		}
		if string(it.Key().UserKey()) != keys[want] {
			t.Fatalf("seek(%q) landed on %q, want %q", target, it.Key().UserKey(), keys[want])
		}
	}
}

func TestOutOfOrderAddFails(t *testing.T) {
	b := NewBuilder()
	b.Add(kv.MakeInternalKey(nil, []byte("b"), 1, kv.KindSet), nil)
	b.Add(kv.MakeInternalKey(nil, []byte("a"), 2, kv.KindSet), nil)
	if _, _, err := b.Finish(); err == nil {
		t.Error("out-of-order add not detected")
	}
}

func TestEmptyTableFails(t *testing.T) {
	if _, _, err := NewBuilder().Finish(); err == nil {
		t.Error("empty table finished without error")
	}
}

func TestCorruptionDetected(t *testing.T) {
	entries := genEntries(500, 5)
	data, _ := buildTable(t, entries)

	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	if _, err := Open(bytes.NewReader(bad), int64(len(bad)), 1, nil); err == nil {
		t.Error("bad magic accepted")
	}

	// Flipped bit in the first data block: CRC must catch it on read.
	bad2 := append([]byte(nil), data...)
	bad2[10] ^= 0x01
	tbl, err := Open(bytes.NewReader(bad2), int64(len(bad2)), 1, nil)
	if err != nil {
		t.Fatal(err) // index/bloom live at the end; open succeeds
	}
	var sawErr bool
	for k := range entries {
		if _, _, _, err := tbl.Get([]byte(k), kv.MaxSeqNum); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("corrupted data block never reported")
	}

	// Truncated file.
	if _, err := Open(bytes.NewReader(data[:10]), 10, 1, nil); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestBloomFilterSkipsAbsent(t *testing.T) {
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("present%06d", i))
	}
	f := buildBloom(keys)
	for _, k := range keys {
		if !bloomMayContain(f, k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	fp := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if bloomMayContain(f, []byte(fmt.Sprintf("absent%06d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.03 {
		t.Errorf("false positive rate %.3f > 0.03", rate)
	}
}

func TestBloomProperties(t *testing.T) {
	f := func(keys [][]byte) bool {
		filter := buildBloom(keys)
		for _, k := range keys {
			if !bloomMayContain(filter, k) {
				return false // a bloom filter must never have false negatives
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(400) // each 100-byte block costs 168 with overhead
	mk := func(n int) *block { return &block{data: make([]byte, n), restarts: []uint32{0}} }
	c.put(1, 0, mk(100))
	c.put(1, 1, mk(100))
	if c.get(1, 0) == nil {
		t.Fatal("miss on cached block")
	}
	// Inserting a third 100-byte block (each entry ~168 bytes with
	// overhead) evicts the LRU entry, which is (1,1).
	c.put(1, 2, mk(100))
	if c.get(1, 1) != nil {
		t.Error("LRU entry not evicted")
	}
	c.EvictFile(1)
	if c.get(1, 0) != nil || c.get(1, 2) != nil {
		t.Error("EvictFile left blocks behind")
	}
	// nil cache is inert.
	var nc *Cache
	nc.put(1, 0, mk(10))
	if nc.get(1, 0) != nil {
		t.Error("nil cache returned a block")
	}
}

func TestSeparatorProperty(t *testing.T) {
	f := func(a, b []byte, sa, sb uint16) bool {
		ia := kv.MakeInternalKey(nil, a, kv.SeqNum(sa), kv.KindSet)
		ib := kv.MakeInternalKey(nil, b, kv.SeqNum(sb), kv.KindSet)
		if kv.CompareInternal(ia, ib) >= 0 {
			return true // precondition: a < b
		}
		sep := separator(ia, ib)
		return kv.CompareInternal(sep, ia) >= 0 && kv.CompareInternal(sep, ib) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLargeValues(t *testing.T) {
	b := NewBuilder()
	big := bytes.Repeat([]byte("x"), 100000) // much larger than a block
	b.Add(kv.MakeInternalKey(nil, []byte("big"), 1, kv.KindSet), big)
	b.Add(kv.MakeInternalKey(nil, []byte("small"), 2, kv.KindSet), []byte("s"))
	data, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _, ok, err := tbl.Get([]byte("big"), kv.MaxSeqNum)
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("large value lost: ok=%v err=%v len=%d", ok, err, len(v))
	}
	v2, _, ok2, _ := tbl.Get([]byte("small"), kv.MaxSeqNum)
	if !ok2 || string(v2) != "s" {
		t.Error("entry after large value lost")
	}
}
