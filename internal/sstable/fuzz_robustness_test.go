package sstable

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sealdb/internal/kv"
)

// TestOpenNeverPanicsOnGarbage: arbitrary bytes must produce an error,
// never a panic or a successfully "opened" garbage table.
func TestOpenNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Open panicked on %d bytes: %v", len(data), r)
			}
		}()
		tbl, err := Open(bytes.NewReader(data), int64(len(data)), 1, nil)
		if err == nil && tbl != nil {
			// Vanishingly unlikely to be valid; if Open accepted it,
			// reads must still not panic.
			tbl.Get([]byte("probe"), kv.MaxSeqNum)
			it := tbl.NewIterator()
			for it.SeekToFirst(); it.Valid(); it.Next() {
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBitFlipsNeverPanic: flip random bits in a valid table; every
// read path must fail cleanly or return consistent data, never panic.
func TestBitFlipsNeverPanic(t *testing.T) {
	entries := genEntries(500, 21)
	data, _ := buildTable(t, entries)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), data...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			tbl, err := Open(bytes.NewReader(mut), int64(len(mut)), 1, nil)
			if err != nil {
				return
			}
			for k := range entries {
				tbl.Get([]byte(k), kv.MaxSeqNum)
			}
			it := tbl.NewIterator()
			n := 0
			for it.SeekToFirst(); it.Valid() && n < 10000; it.Next() {
				n++
			}
		}()
	}
}

// TestTruncationsNeverPanic: every possible truncation of a valid
// table must be rejected or read cleanly.
func TestTruncationsNeverPanic(t *testing.T) {
	entries := genEntries(100, 23)
	data, _ := buildTable(t, entries)
	for cut := 0; cut < len(data); cut += 37 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d panicked: %v", cut, r)
				}
			}()
			tbl, err := Open(bytes.NewReader(data[:cut]), int64(cut), 1, nil)
			if err != nil {
				return
			}
			tbl.Get([]byte("key00000001"), kv.MaxSeqNum)
		}()
	}
}

// TestDecodeBlockGarbage: the low-level block decoder on arbitrary
// input.
func TestDecodeBlockGarbage(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decodeBlock panicked: %v", r)
			}
		}()
		b, err := decodeBlock(data)
		if err == nil && b != nil {
			it := newBlockIter(b)
			n := 0
			for it.SeekToFirst(); it.Valid() && n < 100000; it.Next() {
				n++
			}
			it.Seek(kv.MakeInternalKey(nil, []byte("x"), 1, kv.KindSet))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
