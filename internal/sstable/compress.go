package sstable

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compression selects the block encoding. LevelDB ships snappy; the
// stdlib equivalent here is DEFLATE at the fastest setting. Blocks
// that do not shrink by at least 1/8 are stored raw, as LevelDB does.
type Compression uint8

const (
	// NoCompression stores blocks raw (type byte 0).
	NoCompression Compression = 0
	// FlateCompression DEFLATEs data blocks (type byte 1).
	FlateCompression Compression = 1
)

func (c Compression) String() string {
	switch c {
	case NoCompression:
		return "none"
	case FlateCompression:
		return "flate"
	}
	return fmt.Sprintf("Compression(%d)", uint8(c))
}

var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// compressBlock encodes contents per the policy and returns the block
// payload plus the type byte actually used (compression falls back to
// raw when it does not pay).
func compressBlock(policy Compression, contents []byte) ([]byte, byte) {
	if policy != FlateCompression {
		return contents, byte(NoCompression)
	}
	var buf bytes.Buffer
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(contents); err == nil {
		if err := w.Close(); err == nil {
			if buf.Len() < len(contents)-len(contents)/8 {
				flateWriters.Put(w)
				return buf.Bytes(), byte(FlateCompression)
			}
		}
	}
	flateWriters.Put(w)
	return contents, byte(NoCompression)
}

// decompressBlock decodes a block payload according to its type byte.
func decompressBlock(typ byte, payload []byte) ([]byte, error) {
	switch Compression(typ) {
	case NoCompression:
		return payload, nil
	case FlateCompression:
		r := flate.NewReader(bytes.NewReader(payload))
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("sstable: inflating block: %w", err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("sstable: unknown block type %d", typ)
}
