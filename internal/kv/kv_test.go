package kv

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInternalKeyRoundTrip(t *testing.T) {
	cases := []struct {
		ukey string
		seq  SeqNum
		kind Kind
	}{
		{"", 0, KindDelete},
		{"a", 1, KindSet},
		{"user-key", 12345678, KindSet},
		{"user-key", uint64MaxSeq(), KindDelete},
		{string([]byte{0, 1, 2, 0xff}), 42, KindSet},
	}
	for _, c := range cases {
		ik := MakeInternalKey(nil, []byte(c.ukey), c.seq, c.kind)
		if got := string(ik.UserKey()); got != c.ukey {
			t.Errorf("UserKey = %q, want %q", got, c.ukey)
		}
		if got := ik.Seq(); got != c.seq {
			t.Errorf("Seq = %d, want %d", got, c.seq)
		}
		if got := ik.Kind(); got != c.kind {
			t.Errorf("Kind = %v, want %v", got, c.kind)
		}
		if !ik.Valid() {
			t.Errorf("key %s unexpectedly invalid", ik)
		}
	}
}

func uint64MaxSeq() SeqNum { return MaxSeqNum }

func TestInternalKeyReusesDst(t *testing.T) {
	dst := make([]byte, 0, 64)
	ik := MakeInternalKey(dst, []byte("abc"), 7, KindSet)
	if &dst[:1][0] != &ik[:1][0] {
		t.Error("MakeInternalKey did not reuse dst storage")
	}
}

func TestCompareInternalOrdering(t *testing.T) {
	mk := func(u string, s SeqNum, k Kind) InternalKey {
		return MakeInternalKey(nil, []byte(u), s, k)
	}

	// Explicit pairwise expectations.
	tests := []struct {
		a, b InternalKey
		want int
	}{
		{mk("a", 1, KindSet), mk("b", 1, KindSet), -1},
		{mk("b", 1, KindSet), mk("a", 1, KindSet), 1},
		{mk("a", 2, KindSet), mk("a", 1, KindSet), -1}, // higher seq first
		{mk("a", 1, KindSet), mk("a", 2, KindSet), 1},
		{mk("a", 1, KindSet), mk("a", 1, KindDelete), -1}, // higher kind first
		{mk("a", 1, KindSet), mk("a", 1, KindSet), 0},
		{mk("", 1, KindSet), mk("a", 1, KindSet), -1},
	}
	for i, tc := range tests {
		if got := CompareInternal(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: CompareInternal(%s, %s) = %d, want %d", i, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSearchKeySortsBeforeEntries(t *testing.T) {
	// A search key at seq S must compare <= every entry for the same
	// user key with seq <= S, and > entries with seq > S.
	ukey := []byte("k")
	search := MakeSearchKey(nil, ukey, 50)
	for seq := SeqNum(0); seq <= 100; seq += 10 {
		for _, kind := range []Kind{KindDelete, KindSet} {
			entry := MakeInternalKey(nil, ukey, seq, kind)
			c := CompareInternal(search, entry)
			if seq <= 50 && c > 0 {
				t.Errorf("search#50 should sort <= entry seq=%d kind=%v, got %d", seq, kind, c)
			}
			if seq > 50 && c <= 0 {
				t.Errorf("search#50 should sort after entry seq=%d kind=%v, got %d", seq, kind, c)
			}
		}
	}
}

func TestCompareInternalAgreesWithUserOrder(t *testing.T) {
	f := func(a, b []byte, sa, sb uint32) bool {
		ia := MakeInternalKey(nil, a, SeqNum(sa), KindSet)
		ib := MakeInternalKey(nil, b, SeqNum(sb), KindSet)
		c := CompareInternal(ia, ib)
		uc := bytes.Compare(a, b)
		if uc != 0 {
			return c == uc
		}
		// Same user key: ordering is by seq desc.
		switch {
		case sa > sb:
			return c == -1
		case sa < sb:
			return c == 1
		}
		return c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	ik := MakeInternalKey(nil, []byte("abc"), 9, KindSet)
	cl := ik.Clone()
	ik[0] = 'z'
	if cl[0] != 'a' {
		t.Error("Clone shares storage with original")
	}
}

func TestCompareInternalTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]InternalKey, 200)
	for i := range keys {
		u := make([]byte, rng.Intn(4))
		rng.Read(u)
		keys[i] = MakeInternalKey(nil, u, SeqNum(rng.Intn(8)), Kind(rng.Intn(2)))
	}
	for i := 0; i < 500; i++ {
		a, b, c := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if CompareInternal(a, b) <= 0 && CompareInternal(b, c) <= 0 {
			if CompareInternal(a, c) > 0 {
				t.Fatalf("transitivity violated: %s <= %s <= %s but a > c", a, b, c)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if KindSet.String() != "SET" || KindDelete.String() != "DEL" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unexpected: %s", Kind(9))
	}
}
