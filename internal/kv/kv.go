// Package kv holds the primitive types shared by every layer of the
// store: user keys and values, internal keys (user key + sequence
// number + kind), the internal-key ordering used by memtables,
// SSTables and compactions, and common size units.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Common byte-size units.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// SeqNum is a monotonically increasing sequence number assigned to
// every mutation. Sequence numbers order mutations of the same user
// key and implement snapshot visibility.
type SeqNum uint64

// MaxSeqNum is the largest representable sequence number. Internal
// keys store the sequence in 56 bits, exactly as LevelDB does.
const MaxSeqNum SeqNum = (1 << 56) - 1

// Kind discriminates the type of a mutation stored in an internal key.
type Kind uint8

const (
	// KindDelete marks a tombstone.
	KindDelete Kind = 0
	// KindSet marks a regular value write.
	KindSet Kind = 1

	maxKind = KindSet
)

func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "DEL"
	case KindSet:
		return "SET"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// InternalKey is a user key followed by an 8-byte trailer encoding
// (seq << 8 | kind) in little-endian order, the LevelDB layout.
type InternalKey []byte

// TrailerLen is the number of bytes appended to a user key to form an
// internal key.
const TrailerLen = 8

// MakeInternalKey appends the trailer for (seq, kind) to ukey,
// reusing dst's storage when possible.
func MakeInternalKey(dst []byte, ukey []byte, seq SeqNum, kind Kind) InternalKey {
	dst = append(dst[:0], ukey...)
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], uint64(seq)<<8|uint64(kind))
	return append(dst, tr[:]...)
}

// MakeSearchKey builds the internal key that sorts immediately before
// every entry for ukey visible at seq. Because internal ordering
// places higher sequence numbers first, a search key uses the given
// sequence with the largest kind.
func MakeSearchKey(dst []byte, ukey []byte, seq SeqNum) InternalKey {
	return MakeInternalKey(dst, ukey, seq, maxKind)
}

// UserKey returns the user-key prefix of an internal key.
func (ik InternalKey) UserKey() []byte {
	return ik[:len(ik)-TrailerLen]
}

// Seq returns the sequence number encoded in the trailer.
func (ik InternalKey) Seq() SeqNum {
	return SeqNum(binary.LittleEndian.Uint64(ik[len(ik)-TrailerLen:]) >> 8)
}

// Kind returns the mutation kind encoded in the trailer.
func (ik InternalKey) Kind() Kind {
	return Kind(ik[len(ik)-TrailerLen] & 0xff)
}

// Valid reports whether ik is long enough to hold a trailer.
func (ik InternalKey) Valid() bool {
	return len(ik) >= TrailerLen
}

// Clone returns a copy of ik that does not share storage.
func (ik InternalKey) Clone() InternalKey {
	return append(InternalKey(nil), ik...)
}

func (ik InternalKey) String() string {
	if !ik.Valid() {
		return fmt.Sprintf("invalid-internal-key(%q)", []byte(ik))
	}
	return fmt.Sprintf("%q#%d,%s", ik.UserKey(), ik.Seq(), ik.Kind())
}

// CompareUser orders user keys bytewise, the only comparator the
// store supports.
func CompareUser(a, b []byte) int {
	return bytes.Compare(a, b)
}

// CompareInternal orders internal keys by user key ascending, then
// sequence number descending, then kind descending, so that the most
// recent mutation of a user key sorts first.
func CompareInternal(a, b InternalKey) int {
	if c := bytes.Compare(a.UserKey(), b.UserKey()); c != 0 {
		return c
	}
	at := binary.LittleEndian.Uint64(a[len(a)-TrailerLen:])
	bt := binary.LittleEndian.Uint64(b[len(b)-TrailerLen:])
	switch {
	case at > bt:
		return -1
	case at < bt:
		return 1
	}
	return 0
}
