package kv

// Iterator is the bidirectional iterator interface shared by
// memtables, SSTables, and merging iterators. Positioning follows the
// LevelDB conventions: an iterator starts invalid; Seek positions at
// the first entry with an internal key >= the target; Key and Value
// are only legal while Valid reports true, and the returned slices
// are only guaranteed until the next positioning call. Next on the
// last entry and Prev on the first entry invalidate the iterator;
// re-position with a seek to continue.
type Iterator interface {
	Valid() bool
	SeekToFirst()
	SeekToLast()
	// Seek positions at the first entry whose internal key is >=
	// target in CompareInternal order.
	Seek(target InternalKey)
	Next()
	Prev()
	Key() InternalKey
	Value() []byte
	// Error reports a corruption or I/O error encountered while
	// iterating; an iterator with a pending error is invalid.
	Error() error
}
