package kv

import (
	"fmt"
	"testing"
)

func BenchmarkCompareInternal(b *testing.B) {
	a := MakeInternalKey(nil, []byte("user000000001234"), 99, KindSet)
	c := MakeInternalKey(nil, []byte("user000000001235"), 98, KindSet)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompareInternal(a, c)
	}
}

func BenchmarkMakeInternalKey(b *testing.B) {
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = MakeInternalKey(buf, fmt.Appendf(nil, "key%09d", i), SeqNum(i), KindSet)
	}
}
