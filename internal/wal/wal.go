// Package wal implements the write-ahead log in LevelDB's log
// format: the stream is cut into 32 KiB blocks, each record is
// written as one FULL fragment or a FIRST/MIDDLE.../LAST chain that
// never crosses a block boundary, and every fragment carries a masked
// CRC-32C over its type and payload. The reader resynchronizes at
// block boundaries after corruption, reporting what it skipped.
//
// A stream may additionally be tagged with the owning file's number
// (NewTaggedWriter / NewTaggedReader): the tag is folded into every
// fragment CRC, so frames left behind by a previous occupant of a
// reused extent fail the checksum instead of replaying into the wrong
// log — the protection LevelDB's recyclable log format gets from its
// log-number header field.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// BlockSize is the log's framing unit.
	BlockSize = 32 * 1024
	// headerSize is checksum (4) + length (2) + type (1).
	headerSize = 7
)

// Fragment types.
const (
	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// mask implements LevelDB's CRC masking so that CRCs stored in the
// stream do not collide with CRCs computed over the stream.
func mask(c uint32) uint32 { return ((c >> 15) | (c << 17)) + 0xa282ead8 }

func fragmentCRC(tag uint64, ftype byte, payload []byte) uint32 {
	var seed [9]byte
	binary.LittleEndian.PutUint64(seed[0:8], tag)
	seed[8] = ftype
	c := crc32.Update(0, castagnoli, seed[:])
	c = crc32.Update(c, castagnoli, payload)
	return mask(c)
}

// Writer appends records to an io.Writer.
type Writer struct {
	w           io.Writer
	tag         uint64
	blockOffset int // position within the current block
	written     int64
	records     int64
}

// NewWriter creates a log writer that starts at a block boundary.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// NewTaggedWriter creates a log writer whose fragment CRCs are bound
// to tag (the owning file's number), so a reader with a different tag
// rejects the frames as corrupt.
func NewTaggedWriter(w io.Writer, tag uint64) *Writer {
	return &Writer{w: w, tag: tag}
}

// NewReopenedWriter creates a writer that continues a log whose
// first offset bytes were written by an earlier writer, so block
// framing stays consistent across reopen (used by the MANIFEST).
// tag must match the original writer's tag (0 for untagged logs).
func NewReopenedWriter(w io.Writer, tag uint64, offset int64) *Writer {
	return &Writer{w: w, tag: tag, blockOffset: int(offset % BlockSize)}
}

// AddRecord appends one record, fragmenting it across blocks as
// needed. Empty records are legal.
func (w *Writer) AddRecord(payload []byte) error {
	w.records++
	begin := true
	for {
		leftover := BlockSize - w.blockOffset
		if leftover < headerSize {
			// Fill the block trailer with zeros.
			if leftover > 0 {
				if err := w.emit(make([]byte, leftover)); err != nil {
					return err
				}
			}
			w.blockOffset = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := payload
		if len(frag) > avail {
			frag = frag[:avail]
		}
		end := len(frag) == len(payload)

		var ftype byte
		switch {
		case begin && end:
			ftype = typeFull
		case begin:
			ftype = typeFirst
		case end:
			ftype = typeLast
		default:
			ftype = typeMiddle
		}
		if err := w.emitFragment(ftype, frag); err != nil {
			return err
		}
		payload = payload[len(frag):]
		begin = false
		if end {
			return nil
		}
	}
}

func (w *Writer) emitFragment(ftype byte, payload []byte) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fragmentCRC(w.tag, ftype, payload))
	binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(payload)))
	hdr[6] = ftype
	if err := w.emit(hdr[:]); err != nil {
		return err
	}
	if err := w.emit(payload); err != nil {
		return err
	}
	w.blockOffset += headerSize + len(payload)
	return nil
}

func (w *Writer) emit(p []byte) error {
	n, err := w.w.Write(p)
	w.written += int64(n)
	if err == nil && n != len(p) {
		err = io.ErrShortWrite
	}
	return err
}

// Size returns the bytes written to the underlying writer.
func (w *Writer) Size() int64 { return w.written }

// Records returns the number of records appended to this writer.
func (w *Writer) Records() int64 { return w.records }

// ErrCorrupt is wrapped by reader errors caused by damaged fragments.
var ErrCorrupt = errors.New("wal: corrupt fragment")

// Reader sequentially decodes records from a log stream.
type Reader struct {
	r         io.Reader
	tag       uint64
	strict    bool
	block     [BlockSize]byte
	buf       []byte // unconsumed bytes of the current block
	eof       bool
	skipped   int64 // bytes dropped due to corruption
	totalRead int64 // bytes consumed from the underlying reader
	recordEnd int64 // stream offset just past the last returned record
}

// NewReader creates a reader over a log stream.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// NewTaggedReader creates a reader that accepts only fragments whose
// CRC was bound to tag by NewTaggedWriter.
func NewTaggedReader(r io.Reader, tag uint64) *Reader {
	return &Reader{r: r, tag: tag}
}

// Strict puts the reader in strict mode: the first corrupt fragment
// ends the stream (ReadRecord returns io.EOF) instead of resyncing at
// the next block. Recovery scans use it so that everything past a
// torn append — including stale frames from a previous occupant of a
// reused extent — is treated as the end of the log. Returns r.
func (r *Reader) Strict() *Reader {
	r.strict = true
	return r
}

// Skipped returns the number of payload bytes dropped while
// resynchronizing after corruption.
func (r *Reader) Skipped() int64 { return r.skipped }

// LastRecordEnd returns the stream offset immediately after the final
// fragment of the last record ReadRecord returned (0 if none). After
// a strict-mode scan this is the tear point: the offset at which a
// reopened writer should resume appending.
func (r *Reader) LastRecordEnd() int64 { return r.recordEnd }

// ReadRecord returns the next record. It returns io.EOF at the clean
// end of the log. Corrupt fragments are skipped (accounted in
// Skipped) and reading continues at the next block — or, in strict
// mode, end the stream.
func (r *Reader) ReadRecord() ([]byte, error) {
	var record []byte
	inFragmented := false
	for {
		ftype, payload, err := r.nextFragment()
		if err == io.EOF {
			if inFragmented {
				// A partially written record at the tail of the log
				// (crash mid-append): drop it silently, as LevelDB
				// recovery does.
				r.skipped += int64(len(record))
				return nil, io.EOF
			}
			return nil, io.EOF
		}
		if err != nil {
			if r.strict {
				// Strict mode: the stream ends at the first damaged
				// fragment; everything after it is unreliable.
				r.skipped += int64(len(record)) + int64(len(r.buf))
				r.buf = nil
				r.eof = true
				return nil, io.EOF
			}
			// Corruption: drop any partial record plus the rest of
			// the damaged block, and resync at the next block.
			r.skipped += int64(len(record)) + int64(len(r.buf))
			record = record[:0]
			inFragmented = false
			r.buf = nil
			continue
		}
		switch ftype {
		case typeFull:
			if inFragmented {
				r.skipped += int64(len(record))
			}
			r.recordEnd = r.totalRead - int64(len(r.buf))
			return payload, nil
		case typeFirst:
			if inFragmented {
				r.skipped += int64(len(record))
			}
			record = append(record[:0], payload...)
			inFragmented = true
		case typeMiddle:
			if !inFragmented {
				r.skipped += int64(len(payload))
				continue
			}
			record = append(record, payload...)
		case typeLast:
			if !inFragmented {
				r.skipped += int64(len(payload))
				continue
			}
			r.recordEnd = r.totalRead - int64(len(r.buf))
			return append(record, payload...), nil
		default:
			r.skipped += int64(len(payload))
		}
	}
}

// nextFragment decodes one fragment, reading a new block as needed.
func (r *Reader) nextFragment() (byte, []byte, error) {
	for {
		if len(r.buf) < headerSize {
			// Trailer or empty: load the next block.
			if r.eof {
				return 0, nil, io.EOF
			}
			n, err := io.ReadFull(r.r, r.block[:])
			r.totalRead += int64(n)
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				r.eof = true
			} else if err != nil {
				return 0, nil, err
			}
			if n == 0 {
				return 0, nil, io.EOF
			}
			r.buf = r.block[:n]
			continue
		}
		hdr := r.buf[:headerSize]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		ftype := hdr[6]
		if ftype == 0 && length == 0 {
			// Zeroed trailer (or preallocated tail): end of block.
			r.buf = nil
			continue
		}
		if headerSize+length > len(r.buf) {
			return 0, nil, fmt.Errorf("%w: fragment length %d exceeds block remainder %d",
				ErrCorrupt, length, len(r.buf)-headerSize)
		}
		payload := r.buf[headerSize : headerSize+length]
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		if fragmentCRC(r.tag, ftype, payload) != wantCRC {
			return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		r.buf = r.buf[headerSize+length:]
		return ftype, payload, nil
	}
}
