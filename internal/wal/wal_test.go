package wal

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, records [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, rec := range records {
		if err := w.AddRecord(rec); err != nil {
			t.Fatalf("AddRecord %d: %v", i, err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range records {
		got, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("ReadRecord %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r.Skipped() != 0 {
		t.Errorf("clean log reported %d skipped bytes", r.Skipped())
	}
}

func TestRoundTripSmall(t *testing.T) {
	roundTrip(t, [][]byte{
		[]byte("hello"),
		[]byte(""),
		[]byte("world"),
		bytes.Repeat([]byte("x"), 100),
	})
}

func TestRoundTripLargeRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var records [][]byte
	for _, size := range []int{
		BlockSize - headerSize,     // exactly one block
		BlockSize - headerSize - 1, // just under
		BlockSize,                  // must fragment
		3*BlockSize + 17,           // first/middle/middle/last
		1,
		0,
	} {
		b := make([]byte, size)
		rng.Read(b)
		records = append(records, b)
	}
	roundTrip(t, records)
}

func TestRoundTripRandom(t *testing.T) {
	f := func(recs [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.AddRecord(r); err != nil {
				return false
			}
		}
		rd := NewReader(bytes.NewReader(buf.Bytes()))
		for _, want := range recs {
			got, err := rd.ReadRecord()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := rd.ReadRecord()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCorruptionResync(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recA := bytes.Repeat([]byte("a"), 1000)
	// recB fills the rest of block 0 exactly, so recC begins at the
	// block-1 boundary where the reader resynchronizes.
	recB := bytes.Repeat([]byte("b"), BlockSize-(headerSize+1000)-headerSize)
	recC := bytes.Repeat([]byte("c"), 500)
	w.AddRecord(recA)
	w.AddRecord(recB)
	w.AddRecord(recC)

	data := buf.Bytes()
	// Corrupt record B's payload (within block 0).
	data[headerSize+1000+headerSize+10] ^= 0xff

	r := NewReader(bytes.NewReader(data))
	got, err := r.ReadRecord()
	if err != nil || !bytes.Equal(got, recA) {
		t.Fatalf("first record damaged by unrelated corruption: %v", err)
	}
	// B is corrupt; the reader should resync and deliver C.
	got, err = r.ReadRecord()
	if err != nil {
		t.Fatalf("resync failed: %v", err)
	}
	if !bytes.Equal(got, recC) {
		t.Fatalf("got %d bytes of %q, want record C", len(got), got[:1])
	}
	if r.Skipped() == 0 {
		t.Error("corruption not accounted in Skipped")
	}
}

func TestTornTailDropped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.AddRecord([]byte("complete"))
	w.AddRecord(bytes.Repeat([]byte("t"), 2*BlockSize)) // fragmented
	data := buf.Bytes()
	// Truncate mid-way through the fragmented record, simulating a
	// crash during append.
	data = data[:BlockSize+100]

	r := NewReader(bytes.NewReader(data))
	got, err := r.ReadRecord()
	if err != nil || string(got) != "complete" {
		t.Fatalf("complete record lost: %v", err)
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Fatalf("torn tail should yield EOF, got %v", err)
	}
}

func TestZeroFilledTailIgnored(t *testing.T) {
	// A preallocated log extent has zero blocks past the last record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.AddRecord([]byte("rec"))
	data := append(buf.Bytes(), make([]byte, 2*BlockSize)...)
	r := NewReader(bytes.NewReader(data))
	if got, err := r.ReadRecord(); err != nil || string(got) != "rec" {
		t.Fatalf("got %q, %v", got, err)
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Fatalf("zero tail should read as EOF, got %v", err)
	}
}

func TestBlockBoundaryTrailer(t *testing.T) {
	// Force a record to start with < headerSize bytes left in the
	// block: the writer must zero-fill and move to the next block.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	first := make([]byte, BlockSize-headerSize-headerSize-3) // leaves 3 bytes
	w.AddRecord(first)
	w.AddRecord([]byte("second"))
	r := NewReader(bytes.NewReader(buf.Bytes()))
	got1, err1 := r.ReadRecord()
	got2, err2 := r.ReadRecord()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(got1) != len(first) || string(got2) != "second" {
		t.Error("trailer handling corrupted records")
	}
}

func TestWriterSize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.AddRecord([]byte("abc"))
	if w.Size() != int64(buf.Len()) {
		t.Errorf("Size %d != buffer %d", w.Size(), buf.Len())
	}
}
