package wal

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// TestStrictStopsAtFirstCorruption: a strict reader must end the
// stream at the first damaged fragment even when later blocks hold
// valid records (which a resyncing reader would recover).
func TestStrictStopsAtFirstCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	big := make([]byte, BlockSize) // spans two blocks
	for i := range big {
		big[i] = byte(i)
	}
	w.AddRecord([]byte("good-one"))
	w.AddRecord(big)
	w.AddRecord([]byte("good-two"))
	data := append([]byte(nil), buf.Bytes()...)
	data[len("good-one")+headerSize+headerSize+3] ^= 0xff // damage the big record's first block

	loose := NewReader(bytes.NewReader(data))
	var looseRecs int
	for {
		if _, err := loose.ReadRecord(); err != nil {
			break
		}
		looseRecs++
	}
	if looseRecs != 2 { // resync recovers good-two
		t.Fatalf("resyncing reader got %d records, want 2", looseRecs)
	}

	strict := NewReader(bytes.NewReader(data)).Strict()
	got, err := strict.ReadRecord()
	if err != nil || string(got) != "good-one" {
		t.Fatalf("first record: %q, %v", got, err)
	}
	if _, err := strict.ReadRecord(); err != io.EOF {
		t.Fatalf("strict reader continued past corruption: %v", err)
	}
	if _, err := strict.ReadRecord(); err != io.EOF {
		t.Fatalf("strict reader did not stay at EOF: %v", err)
	}
	if strict.Skipped() == 0 {
		t.Error("strict reader reported no skipped bytes")
	}
	wantEnd := int64(headerSize + len("good-one"))
	if strict.LastRecordEnd() != wantEnd {
		t.Errorf("LastRecordEnd = %d, want %d", strict.LastRecordEnd(), wantEnd)
	}
}

// TestLastRecordEndResumesWriter: appending at LastRecordEnd with a
// reopened writer after a torn tail must yield a log that reads back
// as the intact prefix plus the new records.
func TestLastRecordEndResumesWriter(t *testing.T) {
	for _, torn := range []int{1, headerSize - 1, headerSize + 5} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want [][]byte
		for i := 0; i < 40; i++ {
			rec := []byte(fmt.Sprintf("rec-%04d-%s", i, string(make([]byte, i*7%200))))
			w.AddRecord(rec)
			want = append(want, rec)
		}
		// Tear the final append: keep a partial fragment.
		data := buf.Bytes()
		partial := append([]byte(nil), data...)
		partial = append(partial, make([]byte, torn)...) // torn garbage header/payload prefix

		r := NewReader(bytes.NewReader(partial)).Strict()
		n := 0
		for {
			if _, err := r.ReadRecord(); err != nil {
				break
			}
			n++
		}
		if n != len(want) {
			t.Fatalf("torn %d: read %d records, want %d", torn, n, len(want))
		}
		end := r.LastRecordEnd()

		resumed := bytes.NewBuffer(partial[:end])
		w2 := NewReopenedWriter(resumed, 0, end)
		w2.AddRecord([]byte("after-tear"))
		want = append(want, []byte("after-tear"))

		r2 := NewReader(bytes.NewReader(resumed.Bytes()))
		for i, wantRec := range want {
			got, err := r2.ReadRecord()
			if err != nil || !bytes.Equal(got, wantRec) {
				t.Fatalf("torn %d: record %d: %q, %v", torn, i, got, err)
			}
		}
	}
}

// TestTaggedStreamsReject: a reader with the wrong tag must treat
// every fragment as corrupt — the stale-extent protection.
func TestTaggedStreamsReject(t *testing.T) {
	var buf bytes.Buffer
	w := NewTaggedWriter(&buf, 7)
	w.AddRecord([]byte("tagged-record"))

	good := NewTaggedReader(bytes.NewReader(buf.Bytes()), 7)
	if rec, err := good.ReadRecord(); err != nil || string(rec) != "tagged-record" {
		t.Fatalf("matching tag: %q, %v", rec, err)
	}

	for _, tag := range []uint64{0, 8} {
		bad := NewTaggedReader(bytes.NewReader(buf.Bytes()), tag).Strict()
		if _, err := bad.ReadRecord(); err != io.EOF {
			t.Fatalf("tag %d accepted a foreign stream: %v", tag, err)
		}
	}
}
