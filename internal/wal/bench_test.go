package wal

import (
	"bytes"
	"io"
	"testing"
)

func BenchmarkAddRecord(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := make([]byte, 1100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AddRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1100)
}

func BenchmarkReadRecord(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := make([]byte, 1100)
	for i := 0; i < 10000; i++ {
		w.AddRecord(rec)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			if _, err := r.ReadRecord(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != 10000 {
			b.Fatal(n)
		}
	}
	b.SetBytes(int64(len(data)))
}
