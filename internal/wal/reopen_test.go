package wal

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// TestReopenedWriterContinuesBlockFraming: records appended by a
// reopened writer mid-block must read back in one pass with the
// originals.
func TestReopenedWriterContinuesBlockFraming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want [][]byte
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("first-phase-%02d", i))
		w.AddRecord(rec)
		want = append(want, rec)
	}
	size := int64(buf.Len())

	// Reopen mid-block (size is nowhere near a 32 KiB boundary).
	w2 := NewReopenedWriter(&buf, 0, size)
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("second-phase-%02d", i))
		w2.AddRecord(rec)
		want = append(want, rec)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, wantRec := range want {
		got, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, wantRec) {
			t.Fatalf("record %d: %q != %q", i, got, wantRec)
		}
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if r.Skipped() != 0 {
		t.Errorf("skipped %d bytes on a clean reopened log", r.Skipped())
	}
}

// TestReopenedWriterAcrossBlockBoundary: reopening exactly at and
// just past block boundaries.
func TestReopenedWriterAcrossBlockBoundary(t *testing.T) {
	for _, pad := range []int{0, 1, headerSize, BlockSize / 2} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		// Fill to an exact point near the boundary.
		fill := make([]byte, BlockSize-headerSize-headerSize-pad)
		w.AddRecord(fill)
		size := int64(buf.Len())

		w2 := NewReopenedWriter(&buf, 0, size)
		w2.AddRecord([]byte("tail-record"))

		r := NewReader(bytes.NewReader(buf.Bytes()))
		got1, err1 := r.ReadRecord()
		if err1 != nil || len(got1) != len(fill) {
			t.Fatalf("pad %d: first record err=%v len=%d", pad, err1, len(got1))
		}
		got2, err2 := r.ReadRecord()
		if err2 != nil || string(got2) != "tail-record" {
			t.Fatalf("pad %d: second record err=%v %q", pad, err2, got2)
		}
	}
}
