package ycsb

import (
	"fmt"
	"math/rand"
)

// Store is the interface a key-value store exposes to the runner.
type Store interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error) // must return nil error on hit
	// ScanN reads up to n records starting at key and returns how
	// many it saw.
	ScanN(start []byte, n int) (int, error)
}

// Distribution names a request-key distribution.
type Distribution int

// Distributions used by the core workloads.
const (
	DistZipfian Distribution = iota
	DistLatest
	DistUniform
)

// Workload is a YCSB core workload definition: an operation mix plus
// a request distribution.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	Dist       Distribution
	MaxScanLen int
}

// The six core workloads, as the paper describes them in Figure 9:
// A = 50% reads / 50% updates, B = 95/5, C = 100% reads, D = 95%
// reads / 5% inserts with the latest distribution, E = 95% scans / 5%
// inserts, F = 50% reads / 50% read-modify-writes.
var (
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: DistZipfian}
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: DistZipfian}
	WorkloadC = Workload{Name: "C", ReadProp: 1.0, Dist: DistZipfian}
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: DistLatest}
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: DistZipfian, MaxScanLen: 100}
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: DistZipfian}
)

// CoreWorkloads returns A–F in order.
func CoreWorkloads() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}
}

// Result summarizes a run.
type Result struct {
	Ops       int
	Reads     int
	Updates   int
	Inserts   int
	Scans     int
	RMWs      int
	NotFound  int
	ScannedKV int
}

// Runner drives a workload against a store.
type Runner struct {
	store       Store
	rng         *rand.Rand
	valueSize   int
	recordCount int64 // records inserted so far
	keyBuf      []byte
	valBuf      []byte
}

// NewRunner creates a runner producing valueSize-byte values.
func NewRunner(store Store, valueSize int, seed int64) *Runner {
	return &Runner{
		store:     store,
		rng:       rand.New(rand.NewSource(seed)),
		valueSize: valueSize,
		valBuf:    make([]byte, valueSize),
	}
}

// Key formats item index i as a YCSB-style key.
func Key(i int64) []byte {
	return []byte(fmt.Sprintf("user%012d", i))
}

func (r *Runner) value() []byte {
	r.rng.Read(r.valBuf)
	return r.valBuf
}

// RecordCount returns how many records have been inserted.
func (r *Runner) RecordCount() int64 { return r.recordCount }

// SetRecordCount seats the runner's record count without loading, for
// runners that share a store another runner already populated (e.g.
// parallel client goroutines in the networked benchmark).
func (r *Runner) SetRecordCount(n int64) { r.recordCount = n }

// Load inserts n records in key order (the YCSB load phase inserts
// hashed keys; order does not matter for the store under test, so the
// simple ascending order keeps loads reproducible).
func (r *Runner) Load(n int64) error {
	for i := int64(0); i < n; i++ {
		if err := r.store.Put(Key(i), r.value()); err != nil {
			return err
		}
	}
	r.recordCount = n
	return nil
}

// LoadRandom inserts n records in uniformly random order, the
// paper's random-load micro-benchmark.
func (r *Runner) LoadRandom(n int64) error {
	perm := r.rng.Perm(int(n))
	for _, i := range perm {
		if err := r.store.Put(Key(int64(i)), r.value()); err != nil {
			return err
		}
	}
	r.recordCount = n
	return nil
}

// Run executes ops operations of the workload against the loaded
// store.
func (r *Runner) Run(w Workload, ops int) (Result, error) {
	var res Result
	var gen Generator
	var latest *Latest
	switch w.Dist {
	case DistZipfian:
		gen = NewScrambledZipfian(r.recordCount)
	case DistLatest:
		latest = NewLatest(r.recordCount)
		gen = latest
	case DistUniform:
		gen = Uniform{N: r.recordCount}
	}

	for i := 0; i < ops; i++ {
		res.Ops++
		p := r.rng.Float64()
		switch {
		case p < w.ReadProp:
			res.Reads++
			if _, err := r.store.Get(Key(gen.Next(r.rng))); err != nil {
				res.NotFound++
			}
		case p < w.ReadProp+w.UpdateProp:
			res.Updates++
			if err := r.store.Put(Key(gen.Next(r.rng)), r.value()); err != nil {
				return res, err
			}
		case p < w.ReadProp+w.UpdateProp+w.InsertProp:
			res.Inserts++
			if err := r.store.Put(Key(r.recordCount), r.value()); err != nil {
				return res, err
			}
			r.recordCount++
			if latest != nil {
				latest.Grow(r.recordCount)
			}
		case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
			res.Scans++
			n := 1
			if w.MaxScanLen > 1 {
				n = 1 + r.rng.Intn(w.MaxScanLen)
			}
			seen, err := r.store.ScanN(Key(gen.Next(r.rng)), n)
			if err != nil {
				return res, err
			}
			res.ScannedKV += seen
		default:
			res.RMWs++
			k := Key(gen.Next(r.rng))
			if _, err := r.store.Get(k); err != nil {
				res.NotFound++
			}
			if err := r.store.Put(k, r.value()); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}
