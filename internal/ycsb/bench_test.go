package ycsb

import (
	"math/rand"
	"testing"
)

func BenchmarkZipfian(b *testing.B) {
	g := NewZipfian(1 << 24)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}

func BenchmarkScrambledZipfian(b *testing.B) {
	g := NewScrambledZipfian(1 << 24)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}

func BenchmarkLatest(b *testing.B) {
	g := NewLatest(1 << 20)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}
