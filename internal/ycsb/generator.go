// Package ycsb reimplements the workload side of the Yahoo! Cloud
// Serving Benchmark: the key-choice distributions (uniform, zipfian,
// scrambled zipfian, latest) and the six core workloads A–F the paper
// evaluates in Figure 9.
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Generator chooses item indexes in [0, n) under some distribution.
type Generator interface {
	// Next returns the next item index using rng.
	Next(rng *rand.Rand) int64
}

// Uniform picks uniformly over [0, N).
type Uniform struct{ N int64 }

// Next implements Generator.
func (u Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.N) }

// zipfianConstant is YCSB's default skew.
const zipfianConstant = 0.99

// Zipfian implements Gray et al.'s incremental zipfian generator, the
// algorithm YCSB uses. Item 0 is the most popular.
type Zipfian struct {
	items          int64
	theta          float64
	zetan          float64
	zeta2theta     float64
	alpha, eta     float64
	countForZeta   int64
	allowItemCount bool
}

// NewZipfian creates a zipfian generator over n items with the YCSB
// default constant 0.99.
func NewZipfian(n int64) *Zipfian {
	z := &Zipfian{items: n, theta: zipfianConstant}
	z.zeta2theta = zetaStatic(2, z.theta)
	z.zetan = zetaStatic(n, z.theta)
	z.countForZeta = n
	z.alpha = 1.0 / (1.0 - z.theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// grow extends the item space (used by the latest distribution as
// inserts happen). Recomputing zeta incrementally per YCSB.
func (z *Zipfian) grow(n int64) {
	if n <= z.countForZeta {
		return
	}
	// Incremental zeta update.
	sum := z.zetan
	for i := z.countForZeta; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), z.theta)
	}
	z.zetan = sum
	z.countForZeta = n
	z.items = n
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// ScrambledZipfian spreads zipfian popularity over the whole keyspace
// by hashing, YCSB's default for workloads A–C and F.
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian creates the generator over n items.
func NewScrambledZipfian(n int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n), n: n}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	v := s.z.Next(rng)
	return int64(fnvHash64(uint64(v)) % uint64(s.n))
}

func fnvHash64(v uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// Latest skews toward recently inserted items (workload D): the
// zipfian offset is taken back from the newest item.
type Latest struct {
	z   *Zipfian
	max int64
}

// NewLatest creates the generator over the current item count.
func NewLatest(n int64) *Latest {
	return &Latest{z: NewZipfian(n), max: n - 1}
}

// Next implements Generator.
func (l *Latest) Next(rng *rand.Rand) int64 {
	off := l.z.Next(rng)
	v := l.max - off
	if v < 0 {
		return 0
	}
	return v
}

// Grow tells the generator new items exist (after an insert).
func (l *Latest) Grow(n int64) {
	l.z.grow(n)
	l.max = n - 1
}
