package ycsb

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Uniform{N: 100}
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := g.Next(rng)
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Roughly uniform: every bucket within 3x of the mean.
	for i, c := range counts {
		if c < 1000/3 || c > 3000 {
			t.Errorf("bucket %d count %d far from uniform mean 1000", i, c)
		}
	}
}

func TestZipfianSkewAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 1000
	g := NewZipfian(n)
	counts := make([]int, n)
	const trials = 200000
	for i := 0; i < trials; i++ {
		v := g.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must dominate; head heavier than tail.
	if counts[0] < trials/20 {
		t.Errorf("item 0 got %d of %d; zipfian head too light", counts[0], trials)
	}
	var head, tail int
	for i := 0; i < n/10; i++ {
		head += counts[i]
	}
	for i := n * 9 / 10; i < n; i++ {
		tail += counts[i]
	}
	if head < 5*tail {
		t.Errorf("head %d not >> tail %d", head, tail)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 1000
	g := NewScrambledZipfian(n)
	counts := map[int64]int{}
	for i := 0; i < 100000; i++ {
		v := g.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Still skewed (few keys dominate) but the hottest keys must not
	// be adjacent indexes.
	type kc struct {
		k int64
		c int
	}
	var all []kc
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	if all[0].c < 3*all[len(all)-1].c {
		t.Error("scrambled zipfian lost its skew")
	}
	adjacent := 0
	for i := 1; i < 10; i++ {
		if d := all[i].k - all[i-1].k; d == 1 || d == -1 {
			adjacent++
		}
	}
	if adjacent > 3 {
		t.Error("hot keys are adjacent; scrambling is not working")
	}
}

func TestLatestPrefersRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewLatest(1000)
	newer, older := 0, 0
	for i := 0; i < 50000; i++ {
		v := g.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		if v >= 900 {
			newer++
		}
		if v < 100 {
			older++
		}
	}
	if newer < 10*older {
		t.Errorf("latest distribution: newest decile %d vs oldest %d", newer, older)
	}
	// Growing keeps bounds and preference.
	g.Grow(2000)
	for i := 0; i < 10000; i++ {
		if v := g.Next(rng); v < 0 || v >= 2000 {
			t.Fatalf("after grow: out of range %d", v)
		}
	}
}

func TestZetaIncrementalMatchesStatic(t *testing.T) {
	z := NewZipfian(1000)
	z.grow(1500)
	want := zetaStatic(1500, zipfianConstant)
	if math.Abs(z.zetan-want) > 1e-9 {
		t.Errorf("incremental zeta %v != static %v", z.zetan, want)
	}
}

// mapStore is an in-memory Store for runner tests.
type mapStore struct {
	m    map[string][]byte
	keys []string // sorted lazily for scans
}

func newMapStore() *mapStore { return &mapStore{m: map[string][]byte{}} }

func (s *mapStore) Put(k, v []byte) error {
	if _, ok := s.m[string(k)]; !ok {
		s.keys = append(s.keys, string(k))
		sort.Strings(s.keys)
	}
	s.m[string(k)] = append([]byte(nil), v...)
	return nil
}

func (s *mapStore) Get(k []byte) ([]byte, error) {
	if v, ok := s.m[string(k)]; ok {
		return v, nil
	}
	return nil, errNotFound
}

var errNotFound = bytes.ErrTooLarge // any sentinel

func (s *mapStore) ScanN(start []byte, n int) (int, error) {
	i := sort.SearchStrings(s.keys, string(start))
	count := 0
	for ; i < len(s.keys) && count < n; i++ {
		count++
	}
	return count, nil
}

func TestRunnerLoadAndMix(t *testing.T) {
	st := newMapStore()
	r := NewRunner(st, 64, 7)
	if err := r.Load(500); err != nil {
		t.Fatal(err)
	}
	if len(st.m) != 500 {
		t.Fatalf("loaded %d records", len(st.m))
	}

	res, err := r.Run(WorkloadA, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Errorf("ops %d", res.Ops)
	}
	// 50/50 split within tolerance.
	if res.Reads < 800 || res.Reads > 1200 || res.Updates < 800 || res.Updates > 1200 {
		t.Errorf("workload A mix off: %+v", res)
	}
	if res.NotFound > 0 {
		t.Errorf("reads missed %d times on a fully loaded store", res.NotFound)
	}
}

func TestRunnerWorkloadDInsertsAreReadable(t *testing.T) {
	st := newMapStore()
	r := NewRunner(st, 16, 9)
	r.Load(200)
	res, err := r.Run(WorkloadD, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts == 0 {
		t.Fatal("workload D never inserted")
	}
	if int64(len(st.m)) != r.RecordCount() {
		t.Errorf("record count %d != store size %d", r.RecordCount(), len(st.m))
	}
	if res.NotFound > res.Reads/10 {
		t.Errorf("too many misses under latest distribution: %+v", res)
	}
}

func TestRunnerWorkloadEScans(t *testing.T) {
	st := newMapStore()
	r := NewRunner(st, 16, 11)
	r.Load(300)
	res, err := r.Run(WorkloadE, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scans == 0 || res.ScannedKV == 0 {
		t.Errorf("workload E did not scan: %+v", res)
	}
	if res.Scans < 400 {
		t.Errorf("scan proportion off: %+v", res)
	}
}

func TestRunnerLoadRandomCoversKeyspace(t *testing.T) {
	st := newMapStore()
	r := NewRunner(st, 16, 13)
	if err := r.LoadRandom(400); err != nil {
		t.Fatal(err)
	}
	if len(st.m) != 400 {
		t.Fatalf("loaded %d", len(st.m))
	}
	for i := int64(0); i < 400; i++ {
		if _, err := st.Get(Key(i)); err != nil {
			t.Fatalf("key %d missing after random load", i)
		}
	}
}

func TestWorkloadProportionsSumToOne(t *testing.T) {
	for _, w := range CoreWorkloads() {
		sum := w.ReadProp + w.UpdateProp + w.InsertProp + w.ScanProp + w.RMWProp
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("workload %s proportions sum to %v", w.Name, sum)
		}
	}
}
