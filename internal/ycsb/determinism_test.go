package ycsb

import (
	"fmt"
	"math/rand"
	"testing"
)

// recordingStore logs every operation the runner issues — kind, key,
// and value bytes — so two runs can be compared event for event.
type recordingStore struct {
	ops []string
}

func (s *recordingStore) Put(key, value []byte) error {
	s.ops = append(s.ops, fmt.Sprintf("put %s %x", key, value))
	return nil
}

func (s *recordingStore) Get(key []byte) ([]byte, error) {
	s.ops = append(s.ops, fmt.Sprintf("get %s", key))
	return nil, nil
}

func (s *recordingStore) ScanN(start []byte, n int) (int, error) {
	s.ops = append(s.ops, fmt.Sprintf("scan %s %d", start, n))
	return n, nil
}

// TestRunnerDeterminism: two runners with the same seed must emit
// byte-identical operation streams across load and every core
// workload. The whole experiment pipeline leans on this — a paper
// figure is reproducible only if the workload driving it is.
func TestRunnerDeterminism(t *testing.T) {
	const seed = 42
	run := func() []string {
		store := &recordingStore{}
		r := NewRunner(store, 32, seed)
		if err := r.Load(200); err != nil {
			t.Fatal(err)
		}
		for _, w := range CoreWorkloads() {
			if _, err := r.Run(w, 300); err != nil {
				t.Fatal(err)
			}
		}
		return store.ops
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d ops", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged:\n  first:  %s\n  second: %s", i, a[i], b[i])
		}
	}
}

// TestRunnerSeedSensitivity: different seeds must actually produce
// different streams, or the determinism test above proves nothing.
func TestRunnerSeedSensitivity(t *testing.T) {
	run := func(seed int64) []string {
		store := &recordingStore{}
		r := NewRunner(store, 32, seed)
		if err := r.Load(50); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(WorkloadA, 200); err != nil {
			t.Fatal(err)
		}
		return store.ops
	}
	a, b := run(1), run(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical operation streams")
	}
}

// TestGeneratorDeterminism: each request-distribution generator must
// be a pure function of its rng stream.
func TestGeneratorDeterminism(t *testing.T) {
	const n = 10_000
	gens := map[string]func() Generator{
		"uniform":           func() Generator { return Uniform{N: n} },
		"zipfian":           func() Generator { return NewZipfian(n) },
		"scrambled_zipfian": func() Generator { return NewScrambledZipfian(n) },
		"latest":            func() Generator { return NewLatest(n) },
	}
	for name, mk := range gens {
		t.Run(name, func(t *testing.T) {
			draw := func() []int64 {
				g := mk()
				rng := rand.New(rand.NewSource(99))
				out := make([]int64, 2000)
				for i := range out {
					out[i] = g.Next(rng)
					if out[i] < 0 || out[i] >= n {
						t.Fatalf("draw %d out of range: %d", i, out[i])
					}
				}
				return out
			}
			a, b := draw(), draw()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("draw %d diverged: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}
