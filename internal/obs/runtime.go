package obs

// Go runtime telemetry bridge: samples runtime/metrics (GC pauses,
// goroutine count, scheduler latency, heap sizes) into sealdb_runtime_*
// gauges on a Registry and serves the raw sample set as the
// /debug/runtime payload. Samples are cached briefly so a /metrics
// scrape evaluating a dozen gauge functions reads the runtime once.

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime metric names sampled by the bridge. Unknown names (an older
// or newer runtime) degrade to zero-valued gauges instead of failing.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/sched/gomaxprocs:threads",
	"/sched/latencies:seconds",
	"/sched/pauses/total/gc:seconds",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/goal:bytes",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
}

// runtimeCacheTTL bounds how stale a cached runtime sample may be.
// One scrape's gauge evaluations share a single read; concurrent
// scrapes at most double it.
const runtimeCacheTTL = 100 * time.Millisecond

// RuntimeSampler reads runtime/metrics with short-lived caching and
// exposes the values as registry gauges and a JSON profile.
type RuntimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample // guarded by mu
	taken   time.Time        // guarded by mu
}

// NewRuntimeSampler creates a sampler over the bridge's metric set.
// The sampler is not shared until this returns, so the seeding writes
// need no lock.
func NewRuntimeSampler() *RuntimeSampler {
	s := &RuntimeSampler{}
	s.samples = make([]metrics.Sample, len(runtimeSampleNames)) //sealvet:allow guardedby
	for i, n := range runtimeSampleNames {
		s.samples[i].Name = n //sealvet:allow guardedby
	}
	return s
}

// refresh re-reads the runtime if the cached sample aged out. Caller
// holds s.mu.
func (s *RuntimeSampler) refreshLocked() {
	if time.Since(s.taken) < runtimeCacheTTL {
		return
	}
	metrics.Read(s.samples)
	s.taken = time.Now()
}

// value returns the named sample as a float64 (counts and bytes), or
// 0 when the runtime does not export it.
func (s *RuntimeSampler) value(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	for i := range s.samples {
		if s.samples[i].Name != name {
			continue
		}
		switch s.samples[i].Value.Kind() {
		case metrics.KindUint64:
			return float64(s.samples[i].Value.Uint64())
		case metrics.KindFloat64:
			return s.samples[i].Value.Float64()
		}
	}
	return 0
}

// quantileNS returns the q-th quantile of the named
// runtime/metrics duration histogram, converted to nanoseconds.
func (s *RuntimeSampler) quantileNS(name string, q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	for i := range s.samples {
		if s.samples[i].Name != name {
			continue
		}
		if s.samples[i].Value.Kind() != metrics.KindFloat64Histogram {
			return 0
		}
		return histQuantileSeconds(s.samples[i].Value.Float64Histogram(), q) * 1e9
	}
	return 0
}

// histQuantileSeconds computes a nearest-rank quantile over a
// runtime/metrics float histogram (bucket boundaries in seconds).
func histQuantileSeconds(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the upper
			// edge, clamping the open-ended tails to the finite edge.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, +1) {
				ub = h.Buckets[i]
			}
			if math.IsInf(ub, -1) {
				ub = 0
			}
			return ub
		}
	}
	return 0
}

// Register wires the sampler's gauges into reg. Gauge functions read
// the shared cached sample, so one snapshot costs one runtime read.
func (s *RuntimeSampler) Register(reg *Registry) {
	reg.GaugeFunc("sealdb_runtime_goroutines", func() float64 { return s.value("/sched/goroutines:goroutines") })
	reg.GaugeFunc("sealdb_runtime_gomaxprocs", func() float64 { return s.value("/sched/gomaxprocs:threads") })
	reg.GaugeFunc("sealdb_runtime_gc_cycles", func() float64 { return s.value("/gc/cycles/total:gc-cycles") })
	reg.GaugeFunc("sealdb_runtime_gc_heap_goal_bytes", func() float64 { return s.value("/gc/heap/goal:bytes") })
	reg.GaugeFunc("sealdb_runtime_heap_objects_bytes", func() float64 { return s.value("/memory/classes/heap/objects:bytes") })
	reg.GaugeFunc("sealdb_runtime_memory_total_bytes", func() float64 { return s.value("/memory/classes/total:bytes") })
	reg.GaugeFunc("sealdb_runtime_gc_pause_p50_ns", func() float64 { return s.quantileNS("/sched/pauses/total/gc:seconds", 0.50) })
	reg.GaugeFunc("sealdb_runtime_gc_pause_p99_ns", func() float64 { return s.quantileNS("/sched/pauses/total/gc:seconds", 0.99) })
	reg.GaugeFunc("sealdb_runtime_sched_latency_p50_ns", func() float64 { return s.quantileNS("/sched/latencies:seconds", 0.50) })
	reg.GaugeFunc("sealdb_runtime_sched_latency_p99_ns", func() float64 { return s.quantileNS("/sched/latencies:seconds", 0.99) })
}

// RuntimeProfile is the /debug/runtime payload.
type RuntimeProfile struct {
	Goroutines       int64   `json:"goroutines"`
	GOMAXPROCS       int64   `json:"gomaxprocs"`
	GCCycles         int64   `json:"gc_cycles"`
	GCHeapGoalBytes  int64   `json:"gc_heap_goal_bytes"`
	HeapObjectsBytes int64   `json:"heap_objects_bytes"`
	MemoryTotalBytes int64   `json:"memory_total_bytes"`
	GCPauseP50NS     float64 `json:"gc_pause_p50_ns"`
	GCPauseP99NS     float64 `json:"gc_pause_p99_ns"`
	SchedLatencyP50NS float64 `json:"sched_latency_p50_ns"`
	SchedLatencyP99NS float64 `json:"sched_latency_p99_ns"`
}

// Profile snapshots the runtime telemetry as one JSON-friendly value.
func (s *RuntimeSampler) Profile() RuntimeProfile {
	return RuntimeProfile{
		Goroutines:        int64(s.value("/sched/goroutines:goroutines")),
		GOMAXPROCS:        int64(s.value("/sched/gomaxprocs:threads")),
		GCCycles:          int64(s.value("/gc/cycles/total:gc-cycles")),
		GCHeapGoalBytes:   int64(s.value("/gc/heap/goal:bytes")),
		HeapObjectsBytes:  int64(s.value("/memory/classes/heap/objects:bytes")),
		MemoryTotalBytes:  int64(s.value("/memory/classes/total:bytes")),
		GCPauseP50NS:      s.quantileNS("/sched/pauses/total/gc:seconds", 0.50),
		GCPauseP99NS:      s.quantileNS("/sched/pauses/total/gc:seconds", 0.99),
		SchedLatencyP50NS: s.quantileNS("/sched/latencies:seconds", 0.50),
		SchedLatencyP99NS: s.quantileNS("/sched/latencies:seconds", 0.99),
	}
}
