package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"
)

// Mux routes the observability endpoints. It is a thin wrapper over
// http.ServeMux with helpers for the two payload shapes: a metrics
// snapshot (Prometheus text, or JSON with ?format=json) and arbitrary
// JSON debug values.
type Mux struct {
	mux *http.ServeMux
}

// NewMux creates an empty observability mux.
func NewMux() *Mux { return &Mux{mux: http.NewServeMux()} }

// ServeHTTP implements http.Handler.
func (m *Mux) ServeHTTP(w http.ResponseWriter, r *http.Request) { m.mux.ServeHTTP(w, r) }

// HandleMetrics serves snap() at path as Prometheus text, or as JSON
// when the request carries ?format=json.
func (m *Mux) HandleMetrics(path string, snap func() *Snapshot) {
	m.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		s := snap()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, s)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WritePrometheus(w, s)
	})
}

// HandleJSON serves fn()'s result at path as indented JSON, evaluated
// per request.
func (m *Mux) HandleJSON(path string, fn func() any) {
	m.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, fn())
	})
}

// HandleContention serves the lock-contention profile at path, ranked
// by total wait. Query controls: ?profile=on|off toggles lock
// profiling process-wide, ?reset=1 zeroes every site before replying
// — together they bracket a measurement window from curl.
func (m *Mux) HandleContention(path string) {
	m.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("profile") {
		case "on":
			SetLockProfiling(true)
		case "off":
			SetLockProfiling(false)
		}
		if r.URL.Query().Get("reset") == "1" {
			ResetLockProfile()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, struct {
			Profiling bool               `json:"profiling"`
			Sites     []LockSiteSnapshot `json:"sites"`
		}{LockProfilingEnabled(), ContentionProfile()})
	})
}

// blockProfileRate mirrors the last rate passed to
// runtime.SetBlockProfileRate, which has no getter.
var blockProfileRate atomic.Int64

// SetProfileRates configures the runtime's mutex and block profilers,
// which feed /debug/pprof/mutex and /debug/pprof/block. mutexFraction
// samples 1/n of contention events (0 disables, -1 leaves unchanged);
// blockRate samples blocking events of at least rate nanoseconds
// (0 disables, -1 leaves unchanged). Returns the effective values.
func SetProfileRates(mutexFraction, blockRate int) (int, int) {
	if mutexFraction >= 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRate >= 0 {
		runtime.SetBlockProfileRate(blockRate)
		blockProfileRate.Store(int64(blockRate))
	}
	return runtime.SetMutexProfileFraction(-1), int(blockProfileRate.Load())
}

// HandlePprof mounts the net/http/pprof handlers under /debug/pprof/
// plus /debug/pprof/rates, a small control endpoint: GET shows the
// mutex profile fraction and block profile rate; ?mutex=N and
// ?block=N set them, so a profiling session can be dialed up on a
// live server and back down afterwards.
func (m *Mux) HandlePprof() {
	m.mux.HandleFunc("/debug/pprof/", pprof.Index)
	m.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.mux.HandleFunc("/debug/pprof/rates", func(w http.ResponseWriter, r *http.Request) {
		mutexFrac, blockRate := -1, -1
		if v := r.URL.Query().Get("mutex"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				mutexFrac = n
			}
		}
		if v := r.URL.Query().Get("block"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				blockRate = n
			}
		}
		mf, br := SetProfileRates(mutexFrac, blockRate)
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, map[string]int{
			"mutex_fraction": mf,
			"block_rate":     br,
		})
	})
}

// Debug-server timeouts. The observability port is plain HTTP with
// tiny requests: a client that cannot deliver its headers promptly or
// its whole request within the read timeout is someone holding a
// connection open (slowloris), not a scraper.
const (
	serveReadHeaderTimeout = 5 * time.Second
	serveReadTimeout       = 30 * time.Second
	serveIdleTimeout       = 2 * time.Minute
)

// Server is a running observability HTTP server.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr net.Addr

	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (host:port; ":0" picks a free port) and serves h
// on a background goroutine until Close. The server carries
// conservative read and idle timeouts so a stalled client cannot pin
// the debug port's connections open.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr(),
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: serveReadHeaderTimeout,
			ReadTimeout:       serveReadTimeout,
			IdleTimeout:       serveIdleTimeout,
		},
		ln: ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
