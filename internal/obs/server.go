package obs

import (
	"net"
	"net/http"
)

// Mux routes the observability endpoints. It is a thin wrapper over
// http.ServeMux with helpers for the two payload shapes: a metrics
// snapshot (Prometheus text, or JSON with ?format=json) and arbitrary
// JSON debug values.
type Mux struct {
	mux *http.ServeMux
}

// NewMux creates an empty observability mux.
func NewMux() *Mux { return &Mux{mux: http.NewServeMux()} }

// ServeHTTP implements http.Handler.
func (m *Mux) ServeHTTP(w http.ResponseWriter, r *http.Request) { m.mux.ServeHTTP(w, r) }

// HandleMetrics serves snap() at path as Prometheus text, or as JSON
// when the request carries ?format=json.
func (m *Mux) HandleMetrics(path string, snap func() *Snapshot) {
	m.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		s := snap()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, s)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WritePrometheus(w, s)
	})
}

// HandleJSON serves fn()'s result at path as indented JSON, evaluated
// per request.
func (m *Mux) HandleJSON(path string, fn func() any) {
	m.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, fn())
	})
}

// Server is a running observability HTTP server.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr net.Addr

	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (host:port; ":0" picks a free port) and serves h
// on a background goroutine until Close.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr(), srv: &http.Server{Handler: h}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
