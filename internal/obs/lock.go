package obs

// Lock-contention profiling: drop-in mutex wrappers that, when the
// package-wide profile switch is on, record per-site wait-time and
// hold-time histograms plus contention counters into a process-global
// site table (the same shape as Go's runtime mutex profile, which is
// also process-global). When the switch is off — the default — Lock
// costs exactly one atomic load over sync.Mutex.Lock and allocates
// nothing, the same discipline as the request tracer's disabled path.
//
// Sites are named, not positional: a wrapper starts unprofiled (its
// site pointer is nil, so even an enabled profiler ignores it) until
// its owner calls Profile("some_site"). Two mutexes profiled under
// one name share a site and aggregate, which is what reopening a DB
// in-process should do.
//
// The clock is injectable (SetLockClock) so packages under the
// noclock determinism contract (dband, storage) can embed a wrapper
// without ever referencing the wall clock themselves: the default
// monotonic nanotime source lives here, in obs, outside the noclock
// scope, and a test or harness may thread any nanotime it likes.

import (
	"sealdb/internal/invariant"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// lockProfiling is the package-wide contention-profiling switch.
var lockProfiling atomic.Bool

// lockClockFn is the injectable nanotime source; nil means the
// default monotonic clock.
var lockClockFn atomic.Pointer[func() int64]

// lockEpoch anchors the default clock so readings stay in the
// monotonic domain (time.Since uses the monotonic reading).
var lockEpoch = time.Now()

// SetLockProfiling turns lock-contention profiling on or off
// process-wide. Off (the default), a profiled Mutex costs one atomic
// load over the plain sync primitive and records nothing.
func SetLockProfiling(on bool) { lockProfiling.Store(on) }

// LockProfilingEnabled reports whether contention profiling is on.
func LockProfilingEnabled() bool { return lockProfiling.Load() }

// SetLockClock installs the nanotime source wait and hold times are
// measured with. Passing nil restores the default monotonic clock.
// The source must be safe for concurrent use and monotone
// non-decreasing; it is only consulted while profiling is enabled.
func SetLockClock(now func() int64) {
	if now == nil {
		lockClockFn.Store(nil)
		return
	}
	lockClockFn.Store(&now)
}

// lockNow reads the profiling clock.
func lockNow() int64 {
	if fn := lockClockFn.Load(); fn != nil {
		return (*fn)()
	}
	return int64(time.Since(lockEpoch))
}

// lockSite aggregates one named lock's profile. All fields are
// internally synchronized; sites live for the process lifetime.
type lockSite struct {
	name         string
	acquisitions atomic.Int64
	contentions  atomic.Int64
	waitNS       atomic.Int64
	holdNS       atomic.Int64
	wait         *Histogram
	hold         *Histogram
}

func (s *lockSite) acquire(waitNS int64, contended bool) {
	s.acquisitions.Add(1)
	if contended {
		s.contentions.Add(1)
	}
	s.waitNS.Add(waitNS)
	s.wait.Observe(waitNS)
}

func (s *lockSite) release(holdNS int64) {
	s.holdNS.Add(holdNS)
	s.hold.Observe(holdNS)
}

// lockSites is the process-global site table.
var lockSites = struct {
	mu sync.RWMutex
	m  map[string]*lockSite
}{m: map[string]*lockSite{}}

// siteFor returns (creating if needed) the named site.
func siteFor(name string) *lockSite {
	lockSites.mu.RLock()
	s := lockSites.m[name]
	lockSites.mu.RUnlock()
	if s != nil {
		return s
	}
	lockSites.mu.Lock()
	defer lockSites.mu.Unlock()
	if s = lockSites.m[name]; s == nil {
		s = &lockSite{name: name, wait: NewHistogram(), hold: NewHistogram()}
		lockSites.m[name] = s
	}
	return s
}

// LockSiteSnapshot is one site's profile at a point in time.
type LockSiteSnapshot struct {
	Name string `json:"name"`
	// Acquisitions counts profiled lock acquisitions; Contentions is
	// the subset that had to wait for another holder.
	Acquisitions int64 `json:"acquisitions"`
	Contentions  int64 `json:"contentions"`
	// TotalWaitNS/TotalHoldNS are the summed wait and hold times; the
	// contention ranking orders by total wait.
	TotalWaitNS int64             `json:"total_wait_ns"`
	TotalHoldNS int64             `json:"total_hold_ns"`
	Wait        HistogramSnapshot `json:"wait_ns"`
	Hold        HistogramSnapshot `json:"hold_ns"`
}

// ContentionProfile snapshots every profiled lock site, ranked by
// total wait time, longest-waiting first. It is the /debug/contention
// payload.
func ContentionProfile() []LockSiteSnapshot {
	lockSites.mu.RLock()
	sites := make([]*lockSite, 0, len(lockSites.m))
	for _, s := range lockSites.m {
		sites = append(sites, s)
	}
	lockSites.mu.RUnlock()
	out := make([]LockSiteSnapshot, 0, len(sites))
	for _, s := range sites {
		out = append(out, LockSiteSnapshot{
			Name:         s.name,
			Acquisitions: s.acquisitions.Load(),
			Contentions:  s.contentions.Load(),
			TotalWaitNS:  s.waitNS.Load(),
			TotalHoldNS:  s.holdNS.Load(),
			Wait:         s.wait.Snapshot(),
			Hold:         s.hold.Snapshot(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalWaitNS != out[j].TotalWaitNS {
			return out[i].TotalWaitNS > out[j].TotalWaitNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ResetLockProfile zeroes every site's counters and histograms (the
// sites themselves persist: wrappers hold pointers into the table).
// Benchmark harnesses call it between measurement windows.
func ResetLockProfile() {
	lockSites.mu.RLock()
	defer lockSites.mu.RUnlock()
	for _, s := range lockSites.m {
		s.acquisitions.Store(0)
		s.contentions.Store(0)
		s.waitNS.Store(0)
		s.holdNS.Store(0)
		s.wait.Reset()
		s.hold.Reset()
	}
}

// Mutex is a drop-in sync.Mutex with optional contention profiling.
// The zero value is an unlocked, unprofiled mutex. Call Profile to
// attach it to a named site; until then (and whenever profiling is
// off) Lock/Unlock add one atomic load to the plain sync cost and
// never allocate or touch a histogram.
type Mutex struct {
	mu   sync.Mutex
	site atomic.Pointer[lockSite]
	// acquiredNS is the profiled acquisition timestamp, nonzero only
	// while the lock is held by a profiled acquisition; it is written
	// and read under mu.
	acquiredNS int64
}

// Profile attaches the mutex to the named contention site. Safe to
// call at any time, including while the lock is held or contended.
func (m *Mutex) Profile(name string) { m.site.Store(siteFor(name)) }

// Lock locks the mutex, recording wait time when profiling is on.
// In invariant builds a profiled acquisition is reported to the
// lock-order watchdog before blocking, so a cycle panics instead of
// deadlocking.
func (m *Mutex) Lock() {
	if invariant.Enabled {
		m.watchAcquire()
	}
	if !lockProfiling.Load() {
		m.mu.Lock()
		return
	}
	m.lockProfiled()
}

// lockProfiled is the profiling path, kept out of Lock so the
// disabled fast path stays inlinable.
func (m *Mutex) lockProfiled() {
	s := m.site.Load()
	if s == nil {
		m.mu.Lock()
		return
	}
	start := lockNow()
	if m.mu.TryLock() {
		s.acquire(0, false)
		m.acquiredNS = start
		return
	}
	m.mu.Lock()
	now := lockNow()
	s.acquire(now-start, true)
	m.acquiredNS = now
}

// Unlock unlocks the mutex, recording hold time when the acquisition
// was profiled.
func (m *Mutex) Unlock() {
	if invariant.Enabled {
		m.watchRelease()
	}
	if t := m.acquiredNS; t != 0 {
		m.acquiredNS = 0
		if s := m.site.Load(); s != nil {
			s.release(lockNow() - t)
		}
	}
	m.mu.Unlock()
}

// TryLock tries to lock the mutex without blocking. Profiled
// successful acquisitions record a zero wait.
func (m *Mutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	if invariant.Enabled {
		m.watchAcquire()
	}
	if lockProfiling.Load() {
		if s := m.site.Load(); s != nil {
			s.acquire(0, false)
			m.acquiredNS = lockNow()
		}
	}
	return true
}

// RWMutex is a drop-in sync.RWMutex with optional contention
// profiling. Writer acquisitions record wait and hold; reader
// acquisitions record wait and contention only (readers overlap, so a
// single hold timestamp cannot attribute their hold times).
type RWMutex struct {
	mu   sync.RWMutex
	site atomic.Pointer[lockSite]
	// acquiredNS is the profiled writer acquisition timestamp; written
	// and read under the write lock.
	acquiredNS int64
}

// Profile attaches the mutex to the named contention site.
func (m *RWMutex) Profile(name string) { m.site.Store(siteFor(name)) }

// Lock write-locks the mutex, recording wait time when profiling is on.
func (m *RWMutex) Lock() {
	if invariant.Enabled {
		m.watchAcquire()
	}
	if !lockProfiling.Load() {
		m.mu.Lock()
		return
	}
	m.lockProfiled()
}

func (m *RWMutex) lockProfiled() {
	s := m.site.Load()
	if s == nil {
		m.mu.Lock()
		return
	}
	start := lockNow()
	if m.mu.TryLock() {
		s.acquire(0, false)
		m.acquiredNS = start
		return
	}
	m.mu.Lock()
	now := lockNow()
	s.acquire(now-start, true)
	m.acquiredNS = now
}

// Unlock write-unlocks the mutex, recording hold time when the
// acquisition was profiled.
func (m *RWMutex) Unlock() {
	if invariant.Enabled {
		m.watchRelease()
	}
	if t := m.acquiredNS; t != 0 {
		m.acquiredNS = 0
		if s := m.site.Load(); s != nil {
			s.release(lockNow() - t)
		}
	}
	m.mu.Unlock()
}

// RLock read-locks the mutex, recording wait time when profiling is on.
func (m *RWMutex) RLock() {
	if invariant.Enabled {
		m.watchAcquire()
	}
	if !lockProfiling.Load() {
		m.mu.RLock()
		return
	}
	m.rlockProfiled()
}

func (m *RWMutex) rlockProfiled() {
	s := m.site.Load()
	if s == nil {
		m.mu.RLock()
		return
	}
	start := lockNow()
	if m.mu.TryRLock() {
		s.acquire(0, false)
		return
	}
	m.mu.RLock()
	s.acquire(lockNow()-start, true)
}

// RUnlock read-unlocks the mutex.
func (m *RWMutex) RUnlock() {
	if invariant.Enabled {
		m.watchRelease()
	}
	m.mu.RUnlock()
}

// TryLock tries to write-lock the mutex without blocking.
func (m *RWMutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	if invariant.Enabled {
		m.watchAcquire()
	}
	if lockProfiling.Load() {
		if s := m.site.Load(); s != nil {
			s.acquire(0, false)
			m.acquiredNS = lockNow()
		}
	}
	return true
}

// TryRLock tries to read-lock the mutex without blocking.
func (m *RWMutex) TryRLock() bool {
	if !m.mu.TryRLock() {
		return false
	}
	if invariant.Enabled {
		m.watchAcquire()
	}
	if lockProfiling.Load() {
		if s := m.site.Load(); s != nil {
			s.acquire(0, false)
		}
	}
	return true
}

// watchAcquire and watchRelease report profiled acquisitions and
// releases to the invariant lock-order watchdog. Call sites gate on
// invariant.Enabled (a constant), so in default builds the calls —
// and the site loads — compile away entirely, preserving the
// zero-alloc fast paths.
func (m *Mutex) watchAcquire() {
	if s := m.site.Load(); s != nil {
		invariant.LockAcquired(s.name)
	}
}

func (m *Mutex) watchRelease() {
	if s := m.site.Load(); s != nil {
		invariant.LockReleased(s.name)
	}
}

func (m *RWMutex) watchAcquire() {
	if s := m.site.Load(); s != nil {
		invariant.LockAcquired(s.name)
	}
}

func (m *RWMutex) watchRelease() {
	if s := m.site.Load(); s != nil {
		invariant.LockReleased(s.name)
	}
}
