package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: values 0..15 get one exact bucket each;
// larger values are bucketed by power of two with 16 sub-buckets per
// octave (HDR-histogram style), bounding the relative quantile error
// at 1/16 ≈ 6.25%. Memory is fixed at ~8 KiB per histogram, unlike a
// sample-retaining histogram whose memory grows with the run.
const (
	histSubBuckets = 16
	histSubBits    = 4
	// exponents 4..63 each contribute histSubBuckets buckets, after
	// the 16 exact small-value buckets.
	histNumBuckets = histSubBuckets + (63-histSubBits+1)*histSubBuckets
)

// Histogram is a concurrent fixed-memory histogram of non-negative
// int64 observations (typically latencies in nanoseconds). Negative
// observations are clamped to zero.
type Histogram struct {
	counts [histNumBuckets]atomic.Uint64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid when count > 0
	max    atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histSubBits
	sub := int((uint64(v) >> (uint(exp) - histSubBits)) & (histSubBuckets - 1))
	return histSubBuckets*(exp-histSubBits) + sub + histSubBuckets
}

// bucketUpperBound returns the largest value the bucket holds.
func bucketUpperBound(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	idx -= histSubBuckets
	exp := uint(idx/histSubBuckets) + histSubBits
	sub := uint64(idx % histSubBuckets)
	ub := (histSubBuckets+sub+1)<<(exp-histSubBits) - 1
	if ub > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(ub)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Reset zeroes the histogram. Concurrent Observes may land on either
// side of the reset; the result is consistent enough for profiling
// windows, which is what callers (the lock-site table) use it for.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the largest value the bucket covers (inclusive).
	UpperBound int64 `json:"le"`
	// Count is the number of observations in this bucket alone.
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Only
// non-empty buckets are materialized.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state. Concurrent Observes during the
// copy may or may not be included; each bucket read is atomic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: bucketUpperBound(i), Count: n})
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound
// of the bucket holding the nearest-rank observation, clamped to the
// exact observed maximum. Zero observations yield zero.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			if b.UpperBound > s.Max {
				return s.Max
			}
			return b.UpperBound
		}
	}
	return s.Max
}

// Mean returns the average observation.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
