package obs

import (
	"sync"
	"testing"
)

// TestSpanEndIdempotent pins the single-End contract: the first End
// journals the span, every later End is a no-op, so a deferred End can
// back up an explicit early one without double-counting.
func TestSpanEndIdempotent(t *testing.T) {
	clock := int64(0)
	j := NewJournal(16, func() int64 { clock += 5; return clock })

	sp := j.Begin("op", 0)
	sp.Set("n", 7)
	sp.End()
	first := j.Events()
	sp.End()
	sp.End()

	evs := j.Events()
	if len(evs) != 1 {
		t.Fatalf("span journaled %d times, want 1", len(evs))
	}
	if evs[0].EndNS != first[0].EndNS {
		t.Errorf("later End moved EndNS: %d -> %d", first[0].EndNS, evs[0].EndNS)
	}
	if evs[0].Fields["n"] != 7 {
		t.Errorf("fields = %v", evs[0].Fields)
	}

	// A nil span (nil-journal Begin) tolerates the whole lifecycle.
	var nilSpan *Span
	nilSpan.Set("x", 1)
	nilSpan.End()
	nilSpan.End()
	if nilSpan.ID() != 0 {
		t.Errorf("nil span id = %d", nilSpan.ID())
	}
}

// TestJournalWraparoundSpanTrees drives deep span trees from many
// goroutines through a ring far smaller than the event volume, then
// checks the reassembly invariant: every surviving event lands in
// exactly one tree, either under its real parent or as a root
// explicitly marked ParentDropped — never silently orphaned.
func TestJournalWraparoundSpanTrees(t *testing.T) {
	const (
		capacity = 64
		workers  = 8
		trees    = 40
		depth    = 6
	)
	j := NewJournal(capacity, nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < trees; i++ {
				// A chain root -> d1 -> ... -> d(depth-1), emitted
				// leaf-last like the tracer does.
				parent := j.RecordSpan("root", 0, 0, 1, map[string]int64{"w": int64(w)})
				for d := 1; d < depth; d++ {
					parent = j.RecordSpan("step", parent, 0, 1, map[string]int64{"d": int64(d)})
				}
			}
		}(w)
	}
	wg.Wait()

	evs := j.Events()
	if len(evs) != capacity {
		t.Fatalf("ring kept %d events, want %d", len(evs), capacity)
	}
	want := int64(workers*trees*depth - capacity)
	if j.Dropped() != want {
		t.Errorf("dropped = %d, want %d", j.Dropped(), want)
	}

	present := map[uint64]bool{}
	for _, e := range evs {
		present[e.ID] = true
	}
	roots := SpanTrees(evs)
	seen := 0
	var walk func(n *SpanNode, parent uint64)
	walk = func(n *SpanNode, parent uint64) {
		seen++
		switch {
		case n.Parent == 0:
			if n.ParentDropped {
				t.Errorf("top-level span %d marked ParentDropped", n.ID)
			}
		case n.ParentDropped:
			if present[n.Parent] {
				t.Errorf("span %d marked ParentDropped but parent %d survives", n.ID, n.Parent)
			}
		default:
			if n.Parent != parent {
				t.Errorf("span %d filed under %d, parent is %d", n.ID, parent, n.Parent)
			}
		}
		for _, c := range n.Children {
			walk(c, n.ID)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	if seen != len(evs) {
		t.Fatalf("trees cover %d events, want %d", seen, len(evs))
	}
}

// TestRecordSpanAfterTheFact checks the tracer's emission primitive:
// caller-supplied stamps are stored verbatim and the returned id links
// children recorded afterwards.
func TestRecordSpanAfterTheFact(t *testing.T) {
	j := NewJournal(8, func() int64 { return 999 })
	root := j.RecordSpan("op_get", 0, 100, 250, map[string]int64{"reads": 2})
	j.RecordSpan("io", root, 120, 180, nil)

	evs := j.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].StartNS != 100 || evs[0].EndNS != 250 {
		t.Errorf("root stamps = %d..%d, want 100..250", evs[0].StartNS, evs[0].EndNS)
	}
	if evs[1].Parent != root {
		t.Errorf("child parent = %d, want %d", evs[1].Parent, root)
	}
	trees := SpanTrees(evs)
	if len(trees) != 1 || len(trees[0].Children) != 1 {
		t.Fatalf("trees = %+v", trees)
	}
}

// TestHistogramQuantileEdges pins quantile behavior at the degenerate
// sample counts the per-stage histograms actually hit early in a run:
// zero observations (everything zero) and one observation (every
// quantile is that value, not a bucket upper bound past it).
func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}

	// One mid-bucket sample: clamping to the observed max keeps every
	// quantile exact instead of reporting the bucket bound.
	h.Observe(1000003)
	s = h.Snapshot()
	if s.Count != 1 || s.Min != 1000003 || s.Max != 1000003 {
		t.Fatalf("one-sample snapshot = %+v", s)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 1000003 {
			t.Errorf("one-sample Quantile(%v) = %d, want 1000003", q, got)
		}
	}

	// A single zero observation must be distinguishable from empty.
	hz := NewHistogram()
	hz.Observe(0)
	sz := hz.Snapshot()
	if sz.Count != 1 || sz.Quantile(0.99) != 0 {
		t.Errorf("zero-sample snapshot = %+v", sz)
	}
}
