package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter not zero")
	}
	var g *Gauge
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge not zero")
	}
	var h *Histogram
	h.Observe(3)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram not empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry returned live metrics")
	}
	r.GaugeFunc("x", func() float64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var j *Journal
	j.Record("x", nil)
	sp := j.Begin("y", 0)
	sp.Set("k", 1)
	sp.End()
	if len(j.Events()) != 0 || j.Dropped() != 0 {
		t.Error("nil journal not inert")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name returned different counters")
	}
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-2)
	r.GaugeFunc("c", func() float64 { return 1.5 })
	r.Histogram("d").Observe(10)
	s := r.Snapshot()
	if s.Counters["a"] != 3 {
		t.Errorf("counter a = %d", s.Counters["a"])
	}
	if s.Gauges["b"] != -2 || s.Gauges["c"] != 1.5 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if s.Histograms["d"].Count != 1 || s.Histograms["d"].Sum != 10 {
		t.Errorf("hist d = %+v", s.Histograms["d"])
	}
}

// TestRegistryConcurrent hammers every metric kind from writer
// goroutines while readers snapshot and export; run under -race this
// is the registry's main correctness test.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn", func() float64 { return 42 })
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("c%d", w%4) // contended get-or-create
			for i := 0; i < perWriter; i++ {
				r.Counter(name).Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(int64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			var sb strings.Builder
			if err := WritePrometheus(&sb, s); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	s := r.Snapshot()
	var total int64
	for i := 0; i < 4; i++ {
		total += s.Counters[fmt.Sprintf("c%d", i)]
	}
	if want := int64(writers * perWriter); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if s.Histograms["h"].Count != writers*perWriter {
		t.Errorf("hist count = %d", s.Histograms["h"].Count)
	}
	if s.Gauges["fn"] != 42 {
		t.Errorf("gauge fn = %v", s.Gauges["fn"])
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	// 0..15 occupy one exact bucket each: quantiles are exact.
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 16 || s.Min != 0 || s.Max != 15 || s.Sum != 120 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", got)
	}
	if got := s.Quantile(1.0); got != 15 {
		t.Errorf("p100 = %d, want 15", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Every bucket's upper bound must map back to the same bucket, and
	// the next value must map to the next bucket. Buckets past the
	// first whose bound clamps to MaxInt64 are unreachable for int64
	// observations and are skipped.
	for idx := 0; idx < histNumBuckets; idx++ {
		ub := bucketUpperBound(idx)
		if ub == math.MaxInt64 {
			break
		}
		if got := bucketIndex(ub); got != idx {
			t.Fatalf("bucketIndex(upper %d) = %d, want %d", ub, got, idx)
		}
		if got := bucketIndex(ub + 1); got != idx+1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d", ub+1, got, idx+1)
		}
	}
	// The largest observable value lands in a bucket whose bound
	// covers it.
	if ub := bucketUpperBound(bucketIndex(math.MaxInt64)); ub != math.MaxInt64 {
		t.Errorf("MaxInt64 bucket bound = %d", ub)
	}
}

func TestHistogramQuantileError(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 100000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := int64(math.Ceil(q * 100000))
		got := s.Quantile(q)
		if got < exact {
			t.Errorf("q%.3f = %d below exact %d", q, got, exact)
		}
		if err := float64(got-exact) / float64(exact); err > 1.0/16 {
			t.Errorf("q%.3f = %d, exact %d: relative error %.4f > 1/16", q, got, exact, err)
		}
	}
	// Max and the top quantile are exact.
	if s.Max != 100000 || s.Quantile(1.0) != 100000 {
		t.Errorf("max = %d, p100 = %d", s.Max, s.Quantile(1.0))
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestJournalRingAndSpans(t *testing.T) {
	clock := int64(0)
	j := NewJournal(4, func() int64 { clock += 10; return clock })

	sp := j.Begin("pass", 0)
	child := j.Begin("step", sp.ID())
	child.Set("n", 1)
	child.End()
	sp.End()

	evs := j.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	// The child ended first, so it is journaled first.
	if evs[0].Type != "step" || evs[0].Parent != sp.ID() {
		t.Errorf("child event = %+v", evs[0])
	}
	if evs[0].Fields["n"] != 1 {
		t.Errorf("child fields = %v", evs[0].Fields)
	}
	if evs[1].Type != "pass" || evs[1].Parent != 0 {
		t.Errorf("parent event = %+v", evs[1])
	}
	if evs[1].StartNS >= evs[1].EndNS {
		t.Errorf("span times = %d..%d", evs[1].StartNS, evs[1].EndNS)
	}

	// Overflow the ring: oldest events drop, newest survive.
	for i := 0; i < 10; i++ {
		j.Record("tick", map[string]int64{"i": int64(i)})
	}
	evs = j.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if j.Dropped() != 8 {
		t.Errorf("dropped = %d, want 8", j.Dropped())
	}
	if last := evs[len(evs)-1]; last.Fields["i"] != 9 {
		t.Errorf("newest event = %+v", last)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := j.Begin("op", 0)
				sp.Set("i", int64(i))
				sp.End()
				j.Events()
			}
		}()
	}
	wg.Wait()
	ids := map[uint64]bool{}
	for _, e := range j.Events() {
		if ids[e.ID] {
			t.Fatalf("duplicate event id %d", e.ID)
		}
		ids[e.ID] = true
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Add(7)
	r.Gauge("y").Set(3)
	h := r.Histogram("lat")
	h.Observe(1)
	h.Observe(1)
	h.Observe(100)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE x_total counter\nx_total 7\n",
		"# TYPE y gauge\ny 3\n",
		"# TYPE lat histogram\n",
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 102",
		"lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 100-bucket line must count all 3.
	if !strings.Contains(out, `} 3`) {
		t.Errorf("no cumulative bucket reached 3:\n%s", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h").Observe(50)
	var sb strings.Builder
	if err := WriteJSON(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 2 || back.Histograms["h"].Count != 1 {
		t.Errorf("round trip = %+v", back)
	}

	var lines strings.Builder
	enc := NewJSONLines(&lines)
	for i := 0; i < 3; i++ {
		if err := enc.Encode(map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Count(lines.String(), "\n"); got != 3 {
		t.Errorf("JSON lines = %d, want 3", got)
	}
}
