package obs

import (
	"strings"
	"testing"

	"sealdb/internal/invariant"
)

// TestWatchdogCatchesInvertedAcquisition drives the runtime
// lock-order watchdog through the real obs wrappers: after observing
// outer -> inner once, acquiring in the inverted order must panic
// before blocking. Only meaningful in -tags sealdb_invariants builds.
func TestWatchdogCatchesInvertedAcquisition(t *testing.T) {
	if !invariant.Enabled {
		t.Skip("watchdog requires -tags sealdb_invariants")
	}
	invariant.ResetLockOrder()
	defer invariant.ResetLockOrder()

	var outer, inner Mutex
	outer.Profile("test_wd_outer_mu")
	inner.Profile("test_wd_inner_mu")

	outer.Lock()
	inner.Lock()
	inner.Unlock()
	outer.Unlock()

	edges := invariant.LockOrderEdges()
	if len(edges) != 1 || edges[0] != [2]string{"test_wd_outer_mu", "test_wd_inner_mu"} {
		t.Fatalf("edges = %v, want the single outer->inner edge", edges)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("inverted acquisition did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lock-order cycle") {
			t.Fatalf("panic = %v, want a lock-order cycle report", r)
		}
		inner.Unlock()
	}()
	inner.Lock()
	outer.Lock() // inversion: watchdog must panic here, pre-block
}

// TestWatchdogTracksRWMutex checks reader acquisitions participate in
// ordering like writer ones.
func TestWatchdogTracksRWMutex(t *testing.T) {
	if !invariant.Enabled {
		t.Skip("watchdog requires -tags sealdb_invariants")
	}
	invariant.ResetLockOrder()
	defer invariant.ResetLockOrder()

	var a Mutex
	var b RWMutex
	a.Profile("test_wd_rw_a_mu")
	b.Profile("test_wd_rw_b_mu")

	a.Lock()
	b.RLock()
	b.RUnlock()
	a.Unlock()

	edges := invariant.LockOrderEdges()
	if len(edges) != 1 || edges[0] != [2]string{"test_wd_rw_a_mu", "test_wd_rw_b_mu"} {
		t.Fatalf("edges = %v, want the single a->b edge from an RLock", edges)
	}
}
