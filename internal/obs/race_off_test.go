//go:build !race

package obs

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation accounting behaves differently there, so the
// zero-alloc lock hot-path test only runs without it.
const raceEnabled = false
