package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/obs"
)

// loadStore opens a small store and writes enough data to force
// flushes and compactions.
func loadStore(t *testing.T, mode lsm.Mode) *lsm.DB {
	t.Helper()
	cfg := lsm.Config{Mode: mode, Geometry: lsm.ScaledGeometry(32*kv.KiB, 1*kv.GiB), Seed: 1}
	db, err := lsm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	val := make([]byte, 1024)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("user%09d", i*7919%2000)
		if err := db.Put([]byte(key), val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("user%09d", i)
		if _, err := db.Get([]byte(key)); err != nil && err != lsm.ErrNotFound {
			t.Fatal(err)
		}
	}
	return db
}

// TestMetricsScrapeE2E drives a loaded store's ObsHandler over real
// HTTP and checks the Prometheus exposition carries live engine
// activity.
func TestMetricsScrapeE2E(t *testing.T) {
	db := loadStore(t, lsm.ModeSEALDB)

	srv, err := obs.Serve("127.0.0.1:0", db.ObsHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr.String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	counter := func(name string) int64 {
		t.Helper()
		for _, line := range strings.Split(metrics, "\n") {
			var v int64
			if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && !strings.HasPrefix(line, "#") {
				return v
			}
		}
		t.Fatalf("metric %s not found in scrape", name)
		return 0
	}
	if got := counter("sealdb_flush_total"); got == 0 {
		t.Error("no flushes counted")
	}
	if got := counter("sealdb_compaction_total"); got == 0 {
		t.Error("no compactions counted")
	}
	if got := counter("sealdb_writes_total"); got != 2000 {
		t.Errorf("writes = %d, want 2000", got)
	}
	if got := counter("sealdb_gets_total"); got != 200 {
		t.Errorf("gets = %d, want 200", got)
	}
	for _, want := range []string{
		"sealdb_write_latency_ns_count",
		"sealdb_flush_latency_ns_sum",
		"sealdb_wa ",
		"sealdb_cache_hit_ratio ",
		"sealdb_bloom_negatives ",
		"sealdb_dband_frontier_bytes ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// JSON variant of the same endpoint.
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sealdb_flush_total"] == 0 {
		t.Error("JSON snapshot has no flushes")
	}
	if snap.Histograms["sealdb_write_latency_ns"].Count != 2000 {
		t.Errorf("JSON write latency count = %d", snap.Histograms["sealdb_write_latency_ns"].Count)
	}

	// Debug endpoints parse and carry live state.
	var levels []lsm.LevelInfo
	if err := json.Unmarshal([]byte(get("/debug/levels")), &levels); err != nil {
		t.Fatal(err)
	}
	var files int
	for _, l := range levels {
		files += l.Files
	}
	if files == 0 {
		t.Error("/debug/levels reports an empty tree")
	}
	var sets lsm.SetProfile
	if err := json.Unmarshal([]byte(get("/debug/sets")), &sets); err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	if err := json.Unmarshal([]byte(get("/debug/events")), &events); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	for _, e := range events {
		types[e.Type]++
	}
	if types["flush"] == 0 || types["compaction"] == 0 {
		t.Errorf("journal missing flush/compaction spans: %v", types)
	}
	var faults lsm.FaultProfile
	if err := json.Unmarshal([]byte(get("/debug/faults")), &faults); err != nil {
		t.Fatal(err)
	}
	if faults.Degraded {
		t.Error("/debug/faults reports a healthy store as degraded")
	}
	if faults.Retry == nil {
		t.Error("/debug/faults missing retry-layer counters")
	}
}

// TestMetricsSnapshotDirect exercises the public API without HTTP and
// checks the fixed-band modes surface media-cache activity.
func TestMetricsSnapshotDirect(t *testing.T) {
	db := loadStore(t, lsm.ModeLevelDB)
	s := db.MetricsSnapshot()
	if s.Counters["sealdb_flush_total"] == 0 {
		t.Error("no flushes in snapshot")
	}
	if s.Gauges["sealdb_media_cache_cleans"] == 0 {
		t.Error("fixed-band drive reported no media-cache cleans")
	}
	if s.Gauges["sealdb_awa"] <= 1 {
		t.Errorf("leveldb-on-SMR AWA = %v, want > 1", s.Gauges["sealdb_awa"])
	}
	types := map[string]int{}
	for _, e := range db.Events() {
		types[e.Type]++
	}
	if types["media_cache_clean"] == 0 {
		t.Errorf("journal missing media_cache_clean events: %v", types)
	}
}
