package obs

import (
	"runtime"
	"strings"
	"testing"
)

// TestRuntimeSamplerProfile checks the sampled values are coherent
// with the running process.
func TestRuntimeSamplerProfile(t *testing.T) {
	rs := NewRuntimeSampler()
	p := rs.Profile()
	if p.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", p.Goroutines)
	}
	if p.GOMAXPROCS != int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("gomaxprocs = %d, want %d", p.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if p.MemoryTotalBytes <= 0 {
		t.Errorf("memory total = %d, want > 0", p.MemoryTotalBytes)
	}
	if p.HeapObjectsBytes <= 0 {
		t.Errorf("heap objects = %d, want > 0", p.HeapObjectsBytes)
	}
	if p.GCPauseP50NS < 0 || p.GCPauseP99NS < p.GCPauseP50NS {
		t.Errorf("gc pause quantiles out of order: p50=%g p99=%g", p.GCPauseP50NS, p.GCPauseP99NS)
	}
	if p.SchedLatencyP50NS < 0 || p.SchedLatencyP99NS < p.SchedLatencyP50NS {
		t.Errorf("sched latency quantiles out of order: p50=%g p99=%g",
			p.SchedLatencyP50NS, p.SchedLatencyP99NS)
	}
}

// TestRuntimeSamplerRegister checks every sealdb_runtime_* gauge lands
// in the registry snapshot.
func TestRuntimeSamplerRegister(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler()
	rs.Register(reg)

	snap := reg.Snapshot()
	got := map[string]bool{}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "sealdb_runtime_") {
			got[name] = true
		}
	}
	want := []string{
		"sealdb_runtime_goroutines",
		"sealdb_runtime_gomaxprocs",
		"sealdb_runtime_gc_cycles",
		"sealdb_runtime_gc_heap_goal_bytes",
		"sealdb_runtime_heap_objects_bytes",
		"sealdb_runtime_memory_total_bytes",
		"sealdb_runtime_gc_pause_p50_ns",
		"sealdb_runtime_gc_pause_p99_ns",
		"sealdb_runtime_sched_latency_p50_ns",
		"sealdb_runtime_sched_latency_p99_ns",
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("gauge %s missing from registry snapshot", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d sealdb_runtime_ gauges, want %d: %v", len(got), len(want), got)
	}
}
