package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeTimeouts checks the debug server sets read and idle
// timeouts so a slowloris client cannot pin connections open.
func TestServeTimeouts(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewMux())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: header-dribbling clients hold connections forever")
	}
	if s.srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: body-dribbling clients hold connections forever")
	}
	if s.srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections accumulate")
	}
}

// TestContentionEndpoint exercises /debug/contention over a real
// server: toggling profiling via query, reading ranked sites, reset.
func TestContentionEndpoint(t *testing.T) {
	m := NewMux()
	m.HandleContention("/debug/contention")
	s, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := fmt.Sprintf("http://%s/debug/contention", s.Addr)

	get := func(url string) (bool, []LockSiteSnapshot) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Profiling bool               `json:"profiling"`
			Sites     []LockSiteSnapshot `json:"sites"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Profiling, body.Sites
	}

	if on, _ := get(base + "?profile=on"); !on {
		t.Error("?profile=on did not enable lock profiling")
	}
	var mu Mutex
	mu.Profile("test_endpoint_mu")
	mu.Lock()
	mu.Unlock() //nolint:staticcheck // empty critical section on purpose
	_, sites := get(base)
	found := false
	for _, site := range sites {
		if site.Name == "test_endpoint_mu" && site.Acquisitions > 0 {
			found = true
		}
	}
	if !found {
		t.Error("profiled acquisition missing from /debug/contention")
	}
	if on, _ := get(base + "?profile=off&reset=1"); on {
		t.Error("?profile=off did not disable lock profiling")
	}
	_, sites = get(base)
	for _, site := range sites {
		if site.Name == "test_endpoint_mu" && site.Acquisitions != 0 {
			t.Errorf("?reset=1 left %d acquisitions on %s", site.Acquisitions, site.Name)
		}
	}
}

// TestPprofEndpoints checks the pprof index and the rates control
// endpoint respond over a real server.
func TestPprofEndpoints(t *testing.T) {
	m := NewMux()
	m.HandlePprof()
	s, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", s.Addr))
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(index), "profile") {
		t.Errorf("pprof index: status=%d body=%.80s", resp.StatusCode, index)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/rates?mutex=7&block=512", s.Addr))
	if err != nil {
		t.Fatal(err)
	}
	var rates map[string]int
	err = json.NewDecoder(resp.Body).Decode(&rates)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rates["mutex_fraction"] != 7 || rates["block_rate"] != 512 {
		t.Errorf("rates after set = %v, want mutex_fraction=7 block_rate=512", rates)
	}
	// Dial both back to zero so profiling cost doesn't leak into other tests.
	if _, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/rates?mutex=0&block=0", s.Addr)); err != nil {
		t.Fatal(err)
	}
}
