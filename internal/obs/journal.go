package obs

import (
	"sync"
)

// Event is one journal entry: an instantaneous record or a completed
// span. Times are whatever clock the journal was built with — the
// engine uses simulated device nanoseconds, so event timelines line
// up with the latency metrics.
type Event struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Type   string `json:"type"`
	// StartNS and EndNS bracket a span; instantaneous events have
	// StartNS == EndNS. Open spans are not visible in Events().
	StartNS int64            `json:"start_ns"`
	EndNS   int64            `json:"end_ns"`
	Fields  map[string]int64 `json:"fields,omitempty"`
}

// Duration returns the span length in clock units.
func (e Event) Duration() int64 { return e.EndNS - e.StartNS }

// Journal is a bounded ring of structured events. When full, the
// oldest events are dropped (counted in Dropped). All methods are
// safe for concurrent use; a nil journal discards everything.
type Journal struct {
	now func() int64

	mu      sync.Mutex
	nextID  uint64
	events  []Event // ring storage
	start   int     // index of the oldest event
	n       int     // live events
	dropped int64
}

// NewJournal creates a journal holding at most capacity events, with
// timestamps drawn from now (nil means "always zero", useful in
// tests). Capacity is clamped to at least 1.
func NewJournal(capacity int, now func() int64) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	if now == nil {
		now = func() int64 { return 0 }
	}
	return &Journal{now: now, events: make([]Event, capacity)}
}

// append adds a finished event to the ring. Caller holds j.mu.
func (j *Journal) append(e Event) {
	if j.n == len(j.events) {
		j.start = (j.start + 1) % len(j.events)
		j.n--
		j.dropped++
	}
	j.events[(j.start+j.n)%len(j.events)] = e
	j.n++
}

// Record journals an instantaneous event and returns its id.
func (j *Journal) Record(typ string, fields map[string]int64) uint64 {
	if j == nil {
		return 0
	}
	t := j.now()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextID++
	j.append(Event{ID: j.nextID, Type: typ, StartNS: t, EndNS: t, Fields: fields})
	return j.nextID
}

// Span is an in-flight event started by Begin. It is not visible in
// the journal until End is called. End is idempotent: the first call
// journals the span, later calls are no-ops, so a deferred End can
// coexist with an explicit early End on the happy path.
type Span struct {
	j     *Journal
	ended bool
	ev    Event
}

// Begin opens a span. parent (0 for none) links nested spans — e.g.
// set migrations inside a band-GC pass. The returned span is owned by
// one goroutine; call End exactly once.
func (j *Journal) Begin(typ string, parent uint64) *Span {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	j.nextID++
	id := j.nextID
	j.mu.Unlock()
	return &Span{j: j, ev: Event{ID: id, Parent: parent, Type: typ, StartNS: j.now()}}
}

// ID returns the span's event id (0 on a nil span), usable as the
// parent of nested spans.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.ev.ID
}

// Set attaches a field to the span.
func (s *Span) Set(key string, v int64) {
	if s == nil {
		return
	}
	if s.ev.Fields == nil {
		s.ev.Fields = map[string]int64{}
	}
	s.ev.Fields[key] = v
}

// End closes the span and journals it. Only the first call has any
// effect; a span is journaled at most once. A span is owned by one
// goroutine, so the ended flag needs no lock.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.ev.EndNS = s.j.now()
	s.j.mu.Lock()
	s.j.append(s.ev)
	s.j.mu.Unlock()
}

// RecordSpan journals a completed span after the fact — start and end
// stamps supplied by the caller rather than drawn from the journal
// clock — and returns its id. The tracer uses this to emit a whole
// span tree in one shot once an operation is known to be sampled or
// slow, without paying Begin/End bookkeeping on every operation.
func (j *Journal) RecordSpan(typ string, parent uint64, startNS, endNS int64, fields map[string]int64) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextID++
	j.append(Event{ID: j.nextID, Parent: parent, Type: typ, StartNS: startNS, EndNS: endNS, Fields: fields})
	return j.nextID
}

// Events returns the journaled events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.events[(j.start+i)%len(j.events)]
	}
	return out
}

// SpanNode is one event in a reassembled span tree.
type SpanNode struct {
	Event
	// ParentDropped marks a node whose parent id is nonzero but whose
	// parent event is not in the snapshot — evicted by the ring bound
	// (or journaled after the snapshot was taken). Such nodes are
	// surfaced as roots rather than silently orphaned.
	ParentDropped bool `json:"parent_dropped,omitempty"`
	Children      []*SpanNode `json:"children,omitempty"`
}

// SpanTrees reassembles a flat event snapshot (as returned by Events)
// into parent-linked trees, oldest root first. Every event appears in
// exactly one tree: events with parent 0 are roots, events whose
// parent is present become children, and events whose parent was
// dropped from the ring become roots with ParentDropped set.
func SpanTrees(events []Event) []*SpanNode {
	nodes := make(map[uint64]*SpanNode, len(events))
	order := make([]*SpanNode, 0, len(events))
	for _, e := range events {
		n := &SpanNode{Event: e}
		nodes[e.ID] = n
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if n.Parent == 0 {
			roots = append(roots, n)
			continue
		}
		if p, ok := nodes[n.Parent]; ok {
			p.Children = append(p.Children, n)
		} else {
			n.ParentDropped = true
			roots = append(roots, n)
		}
	}
	return roots
}

// Dropped returns how many events were evicted by the ring bound.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}
