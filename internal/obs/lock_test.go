package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sealdb/internal/invariant"
)

// findSite returns the named site's snapshot, or a zero value.
func findSite(t *testing.T, name string) LockSiteSnapshot {
	t.Helper()
	for _, s := range ContentionProfile() {
		if s.Name == name {
			return s
		}
	}
	return LockSiteSnapshot{}
}

// TestLockProfilingOffAllocs is the contention-off acceptance check,
// mirroring the tracer's TestGetHotPathAllocsTracingOff: with
// profiling disabled, an uncontended Lock/Unlock on a profiled
// obs.Mutex allocates nothing and writes no histogram — the wrapper's
// whole cost is one atomic load.
func TestLockProfilingOffAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	if invariant.Enabled {
		t.Skip("lock-order watchdog allocates on profiled acquisitions")
	}
	SetLockProfiling(false)
	var mu Mutex
	mu.Profile("test_allocs_off_mu")
	before := findSite(t, "test_allocs_off_mu")
	if n := testing.AllocsPerRun(1000, func() {
		mu.Lock()
		mu.Unlock() //nolint:staticcheck // empty section on purpose
	}); n != 0 {
		t.Errorf("profiling-off Lock/Unlock allocates %.1f times per op, want 0", n)
	}
	after := findSite(t, "test_allocs_off_mu")
	if after.Wait.Count != before.Wait.Count || after.Hold.Count != before.Hold.Count {
		t.Errorf("profiling-off Lock/Unlock wrote histograms: wait %d->%d hold %d->%d",
			before.Wait.Count, after.Wait.Count, before.Hold.Count, after.Hold.Count)
	}
	if after.Acquisitions != before.Acquisitions {
		t.Errorf("profiling-off Lock counted acquisitions: %d -> %d",
			before.Acquisitions, after.Acquisitions)
	}

	var rw RWMutex
	rw.Profile("test_allocs_off_rwmu")
	if n := testing.AllocsPerRun(1000, func() {
		rw.RLock()
		rw.RUnlock()
		rw.Lock()
		rw.Unlock() //nolint:staticcheck // empty section on purpose
	}); n != 0 {
		t.Errorf("profiling-off RWMutex cycle allocates %.1f times per op, want 0", n)
	}
}

// TestLockProfilingRecordsWaitAndHold drives real contention through
// a profiled mutex with profiling on and checks the site accumulates
// acquisitions, contentions, wait time and hold time.
func TestLockProfilingRecordsWaitAndHold(t *testing.T) {
	SetLockProfiling(true)
	defer SetLockProfiling(false)
	var mu Mutex
	mu.Profile("test_contended_mu")

	const goroutines, iters = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mu.Lock()
				time.Sleep(20 * time.Microsecond) // hold long enough to collide
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	s := findSite(t, "test_contended_mu")
	if s.Acquisitions != goroutines*iters {
		t.Errorf("acquisitions = %d, want %d", s.Acquisitions, goroutines*iters)
	}
	if s.Contentions == 0 {
		t.Error("no contentions recorded under 8-way contention")
	}
	if s.TotalWaitNS <= 0 {
		t.Errorf("total wait = %d, want > 0", s.TotalWaitNS)
	}
	if s.TotalHoldNS <= 0 {
		t.Errorf("total hold = %d, want > 0", s.TotalHoldNS)
	}
	if s.Wait.Count != s.Acquisitions {
		t.Errorf("wait histogram count = %d, want %d", s.Wait.Count, s.Acquisitions)
	}
	if s.Hold.Count != s.Acquisitions {
		t.Errorf("hold histogram count = %d, want %d", s.Hold.Count, s.Acquisitions)
	}
}

// TestLockClockThreading verifies the caller-supplied nanotime source
// is what wait and hold measurements read — the mechanism that keeps
// noclock-covered packages off the wall clock.
func TestLockClockThreading(t *testing.T) {
	var fake atomic.Int64
	fake.Store(1000)
	SetLockClock(func() int64 { return fake.Load() })
	defer SetLockClock(nil)
	SetLockProfiling(true)
	defer SetLockProfiling(false)

	var mu Mutex
	mu.Profile("test_fake_clock_mu")
	before := findSite(t, "test_fake_clock_mu")

	mu.Lock()
	fake.Add(250) // the entire hold, on the injected clock
	mu.Unlock()

	after := findSite(t, "test_fake_clock_mu")
	if got := after.TotalHoldNS - before.TotalHoldNS; got != 250 {
		t.Errorf("hold on injected clock = %dns, want 250", got)
	}
	if got := after.TotalWaitNS - before.TotalWaitNS; got != 0 {
		t.Errorf("uncontended wait on injected clock = %dns, want 0", got)
	}
}

// TestContentionProfileRanking checks sites order by total wait,
// longest first.
func TestContentionProfileRanking(t *testing.T) {
	SetLockClock(func() int64 { return 0 })
	SetLockProfiling(true)
	// Fabricate deterministic wait via direct site records.
	a, b := siteFor("test_rank_small"), siteFor("test_rank_big")
	a.acquire(10, true)
	b.acquire(10_000, true)
	SetLockProfiling(false)
	SetLockClock(nil)

	prof := ContentionProfile()
	posA, posB := -1, -1
	for i, s := range prof {
		switch s.Name {
		case "test_rank_small":
			posA = i
		case "test_rank_big":
			posB = i
		}
	}
	if posA < 0 || posB < 0 {
		t.Fatalf("fabricated sites missing from profile (a=%d b=%d)", posA, posB)
	}
	if posB > posA {
		t.Errorf("site with 10000ns wait ranked %d, below site with 10ns at %d", posB, posA)
	}
}

// TestResetLockProfile checks a reset zeroes counters and histograms
// while keeping sites alive for wrappers that hold pointers to them.
func TestResetLockProfile(t *testing.T) {
	SetLockProfiling(true)
	var mu Mutex
	mu.Profile("test_reset_mu")
	mu.Lock()
	mu.Unlock() //nolint:staticcheck // empty critical section on purpose
	SetLockProfiling(false)
	if s := findSite(t, "test_reset_mu"); s.Acquisitions == 0 {
		t.Fatal("no acquisitions before reset")
	}

	ResetLockProfile()
	s := findSite(t, "test_reset_mu")
	if s.Acquisitions != 0 || s.TotalWaitNS != 0 || s.TotalHoldNS != 0 ||
		s.Wait.Count != 0 || s.Hold.Count != 0 {
		t.Errorf("reset left residue: %+v", s)
	}

	// The site must still record after the reset.
	SetLockProfiling(true)
	mu.Lock()
	mu.Unlock() //nolint:staticcheck // empty critical section on purpose
	SetLockProfiling(false)
	if s := findSite(t, "test_reset_mu"); s.Acquisitions != 1 {
		t.Errorf("post-reset acquisitions = %d, want 1", s.Acquisitions)
	}
}

// TestRWMutexReaderWait checks reader acquisitions record contention
// against a writer.
func TestRWMutexReaderWait(t *testing.T) {
	SetLockProfiling(true)
	defer SetLockProfiling(false)
	var rw RWMutex
	rw.Profile("test_rw_reader_mu")

	rw.Lock()
	done := make(chan struct{})
	go func() {
		rw.RLock() // blocks until the writer releases
		rw.RUnlock()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	rw.Unlock()
	<-done

	s := findSite(t, "test_rw_reader_mu")
	if s.Contentions == 0 {
		t.Error("reader blocked behind writer recorded no contention")
	}
	if s.TotalWaitNS <= 0 {
		t.Errorf("reader wait = %dns, want > 0", s.TotalWaitNS)
	}
}
