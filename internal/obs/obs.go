// Package obs is the store's observability substrate: a concurrent
// metrics registry (atomic counters, gauges, and bounded log-scaled
// histograms), a structured event journal with spans, and exporters
// (Prometheus text, JSON, JSON lines) plus a small net/http server
// serving live /metrics and /debug endpoints.
//
// The package has no dependencies outside the standard library and no
// knowledge of the engine; subsystems are wired to it by the lsm
// layer. Every type is safe for concurrent use, and methods on nil
// receivers are no-ops so instrumentation sites never need guarding.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. Metrics are created on first use and
// live for the registry's lifetime; Snapshot captures every value at
// one point in time (gauge functions are evaluated then).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter       // guarded by mu
	gauges     map[string]*Gauge         // guarded by mu
	gaugeFuncs map[string]func() float64 // guarded by mu
	hists      map[string]*Histogram     // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named settable gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull gauge: fn is evaluated at every
// Snapshot. fn must not call back into the registry. Registering the
// same name again replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value. Gauge functions
// are evaluated during the call; counter and histogram reads are
// atomic per metric (the snapshot is not one global atomic cut).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot returns the current state of every metric. It returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	// Copy the metric sets under the lock, then read values outside it
	// so gauge functions may take subsystem locks freely.
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, f := range r.gaugeFuncs {
		funcs[n] = f
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = float64(g.Value())
	}
	for n, f := range funcs {
		s.Gauges[n] = f()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// sortedKeys returns map keys in lexical order, for deterministic
// export output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
