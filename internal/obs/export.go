package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format, metrics in lexical order. Histograms use the standard
// cumulative-bucket encoding with `le` upper bounds.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(bw, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	return bw.Flush()
}

// WriteJSON renders any value as indented JSON, the format the
// /debug endpoints and -format json dumps share.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// JSONLines encodes one value per line (the JSON Lines format), used
// for streaming dumps such as smrtrace's trace output.
type JSONLines struct {
	enc *json.Encoder
}

// NewJSONLines creates a JSON Lines encoder over w.
func NewJSONLines(w io.Writer) *JSONLines {
	return &JSONLines{enc: json.NewEncoder(w)}
}

// Encode writes one value as a single line of JSON.
func (e *JSONLines) Encode(v any) error { return e.enc.Encode(v) }
