package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpHello, ReqID: 0, Payload: AppendHello(nil, Hello{Magic: Magic, Version: Version, Features: FeaturePipeline})},
		{Op: OpGet, ReqID: 1, Payload: AppendGet(nil, []byte("k"))},
		{Op: OpPut, ReqID: 1 << 40, Payload: AppendPut(nil, []byte("key"), bytes.Repeat([]byte("v"), 1000))},
		{Op: OpDelete, ReqID: 3, Payload: AppendDelete(nil, nil)},
		{Op: OpStats, ReqID: 4},
	}
	var buf bytes.Buffer
	for i := range frames {
		if err := WriteFrame(&buf, &frames[i]); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	for i := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Op != frames[i].Op || got.ReqID != frames[i].ReqID || !bytes.Equal(got.Payload, frames[i].Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, frames[i])
		}
	}
	if _, err := ReadFrame(&buf, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing read: %v, want EOF", err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	big := Frame{Op: OpPut, ReqID: 9, Payload: make([]byte, 4096)}
	buf := AppendFrame(nil, &big)
	if _, err := ReadFrame(bytes.NewReader(buf), 128); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}
	// A length prefix below the fixed header is malformed, not a short read.
	if _, err := ReadFrame(bytes.NewReader([]byte{3, 0, 0, 0, 1, 2, 3}), 0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short length: %v, want ErrBadFrame", err)
	}
	// A frame torn mid-body is ErrUnexpectedEOF, not a clean EOF.
	torn := buf[:len(buf)-10]
	if _, err := ReadFrame(bytes.NewReader(torn), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: %v, want ErrUnexpectedEOF", err)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	if k, err := DecodeGet(AppendGet(nil, []byte("alpha"))); err != nil || string(k) != "alpha" {
		t.Fatalf("get: %q %v", k, err)
	}
	k, v, err := DecodePut(AppendPut(nil, []byte("k1"), []byte("v1")))
	if err != nil || string(k) != "k1" || string(v) != "v1" {
		t.Fatalf("put: %q %q %v", k, v, err)
	}
	if k, err := DecodeDelete(AppendDelete(nil, []byte("dead"))); err != nil || string(k) != "dead" {
		t.Fatalf("delete: %q %v", k, err)
	}

	entries := []BatchEntry{
		{Key: []byte("a"), Value: []byte("1")},
		{Delete: true, Key: []byte("b")},
		{Key: []byte("c"), Value: nil},
	}
	got, err := DecodeWriteBatch(AppendWriteBatch(nil, entries))
	if err != nil || len(got) != len(entries) {
		t.Fatalf("batch: %d entries, %v", len(got), err)
	}
	for i := range entries {
		if got[i].Delete != entries[i].Delete ||
			!bytes.Equal(got[i].Key, entries[i].Key) ||
			!bytes.Equal(got[i].Value, entries[i].Value) {
			t.Fatalf("batch entry %d: %+v want %+v", i, got[i], entries[i])
		}
	}

	start, limit, err := DecodeScan(AppendScan(nil, []byte("user0"), 42))
	if err != nil || string(start) != "user0" || limit != 42 {
		t.Fatalf("scan: %q %d %v", start, limit, err)
	}

	kvs := []KV{{Key: []byte("k"), Value: []byte("v")}, {Key: []byte("k2"), Value: nil}}
	gotKVs, err := DecodeScanReply(AppendScanReply(nil, kvs))
	if err != nil || len(gotKVs) != 2 {
		t.Fatalf("scan reply: %d %v", len(gotKVs), err)
	}

	h, err := DecodeHello(AppendHello(nil, Hello{Magic: Magic, Version: 7, Features: 3}))
	if err != nil || h.Magic != Magic || h.Version != 7 || h.Features != 3 {
		t.Fatalf("hello: %+v %v", h, err)
	}
}

func TestReply(t *testing.T) {
	f := Reply(77, StatusDegraded, []byte("read-only"))
	if f.Op != OpReply || f.ReqID != 77 {
		t.Fatalf("reply frame: %+v", f)
	}
	st, body, err := ParseReply(f.Payload)
	if err != nil || st != StatusDegraded || string(body) != "read-only" {
		t.Fatalf("parse reply: %v %q %v", st, body, err)
	}
	if _, _, err := ParseReply(nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty reply: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {0xff}, {2, 1}, bytes.Repeat([]byte{0xff}, 16)}
	for _, p := range cases {
		// Every decoder must reject cleanly, never panic.
		if _, _, err := DecodePut(p); err == nil && len(p) != 0 {
			t.Logf("put accepted %x", p)
		}
		_, _ = DecodeGet(p)
		_, _ = DecodeWriteBatch(p)
		_, _, _ = DecodeScan(p)
		_, _ = DecodeScanReply(p)
		_, _ = DecodeHello(p)
	}
	// A batch whose declared count far exceeds its bytes must fail
	// before allocating for the count.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := DecodeWriteBatch(huge); err == nil {
		t.Fatal("huge batch count accepted")
	}
}
