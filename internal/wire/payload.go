package wire

import (
	"encoding/binary"
	"fmt"
)

// Payload encodings. Every variable-length field is a uvarint length
// followed by that many bytes; multi-entry payloads lead with a
// uvarint count. Decoders return slices aliasing the input payload.

// appendBytes appends one length-prefixed byte field.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// takeBytes consumes one length-prefixed field from p.
func takeBytes(p []byte) (field, rest []byte, err error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return nil, nil, fmt.Errorf("%w: bad length prefix", ErrBadFrame)
	}
	return p[w : w+int(n)], p[w+int(n):], nil
}

// AppendGet encodes an OpGet payload: the key.
func AppendGet(dst, key []byte) []byte { return appendBytes(dst, key) }

// DecodeGet parses an OpGet payload.
func DecodeGet(p []byte) (key []byte, err error) {
	key, rest, err := takeBytes(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in GET", ErrBadFrame, len(rest))
	}
	return key, nil
}

// AppendPut encodes an OpPut payload: key then value.
func AppendPut(dst, key, value []byte) []byte {
	return appendBytes(appendBytes(dst, key), value)
}

// DecodePut parses an OpPut payload.
func DecodePut(p []byte) (key, value []byte, err error) {
	key, rest, err := takeBytes(p)
	if err != nil {
		return nil, nil, err
	}
	value, rest, err = takeBytes(rest)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes in PUT", ErrBadFrame, len(rest))
	}
	return key, value, nil
}

// AppendDelete encodes an OpDelete payload: the key.
func AppendDelete(dst, key []byte) []byte { return appendBytes(dst, key) }

// DecodeDelete parses an OpDelete payload.
func DecodeDelete(p []byte) (key []byte, err error) {
	key, rest, err := takeBytes(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in DELETE", ErrBadFrame, len(rest))
	}
	return key, nil
}

// BatchEntry is one mutation inside an OpWriteBatch payload.
type BatchEntry struct {
	Delete bool
	Key    []byte
	Value  []byte // nil for deletes
}

// Batch entry kind bytes.
const (
	batchKindPut    = 0
	batchKindDelete = 1
)

// AppendWriteBatch encodes an OpWriteBatch payload: a count followed
// by (kind, key[, value]) entries.
func AppendWriteBatch(dst []byte, entries []BatchEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		if e.Delete {
			dst = append(dst, batchKindDelete)
			dst = appendBytes(dst, e.Key)
		} else {
			dst = append(dst, batchKindPut)
			dst = appendBytes(dst, e.Key)
			dst = appendBytes(dst, e.Value)
		}
	}
	return dst
}

// DecodeWriteBatch parses an OpWriteBatch payload. Entries alias p.
func DecodeWriteBatch(p []byte) ([]BatchEntry, error) {
	count, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, fmt.Errorf("%w: bad batch count", ErrBadFrame)
	}
	// An entry is at least 2 bytes (kind + empty-key length), bounding
	// count before allocating.
	if count > uint64(len(p)-w)/2+1 {
		return nil, fmt.Errorf("%w: batch count %d exceeds payload", ErrBadFrame, count)
	}
	p = p[w:]
	entries := make([]BatchEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return nil, fmt.Errorf("%w: batch truncated at entry %d", ErrBadFrame, i)
		}
		kind := p[0]
		p = p[1:]
		var e BatchEntry
		var err error
		switch kind {
		case batchKindPut:
			if e.Key, p, err = takeBytes(p); err != nil {
				return nil, err
			}
			if e.Value, p, err = takeBytes(p); err != nil {
				return nil, err
			}
		case batchKindDelete:
			e.Delete = true
			if e.Key, p, err = takeBytes(p); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unknown batch entry kind %d", ErrBadFrame, kind)
		}
		entries = append(entries, e)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in WRITEBATCH", ErrBadFrame, len(p))
	}
	return entries, nil
}

// AppendScan encodes an OpScan payload: start key and entry limit.
func AppendScan(dst, start []byte, limit uint32) []byte {
	dst = appendBytes(dst, start)
	return binary.AppendUvarint(dst, uint64(limit))
}

// DecodeScan parses an OpScan payload.
func DecodeScan(p []byte) (start []byte, limit uint32, err error) {
	start, rest, err := takeBytes(p)
	if err != nil {
		return nil, 0, err
	}
	n, w := binary.Uvarint(rest)
	if w <= 0 || len(rest) != w || n > 1<<31 {
		return nil, 0, fmt.Errorf("%w: bad scan limit", ErrBadFrame)
	}
	return start, uint32(n), nil
}

// KV is one key/value pair of a scan reply.
type KV struct {
	Key   []byte
	Value []byte
}

// AppendScanReply encodes a scan reply body: count then (key, value)
// pairs.
func AppendScanReply(dst []byte, kvs []KV) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(kvs)))
	for _, e := range kvs {
		dst = appendBytes(dst, e.Key)
		dst = appendBytes(dst, e.Value)
	}
	return dst
}

// DecodeScanReply parses a scan reply body. Entries alias p.
func DecodeScanReply(p []byte) ([]KV, error) {
	count, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, fmt.Errorf("%w: bad scan reply count", ErrBadFrame)
	}
	if count > uint64(len(p)-w)/2+1 {
		return nil, fmt.Errorf("%w: scan reply count %d exceeds payload", ErrBadFrame, count)
	}
	p = p[w:]
	kvs := make([]KV, 0, count)
	for i := uint64(0); i < count; i++ {
		var e KV
		var err error
		if e.Key, p, err = takeBytes(p); err != nil {
			return nil, err
		}
		if e.Value, p, err = takeBytes(p); err != nil {
			return nil, err
		}
		kvs = append(kvs, e)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in scan reply", ErrBadFrame, len(p))
	}
	return kvs, nil
}

// Reply builds a response frame for reqID: a status byte followed by
// the op-specific body (value bytes, scan entries, stats JSON, or an
// error message for non-OK statuses).
func Reply(reqID uint64, st Status, body []byte) Frame {
	p := make([]byte, 0, 1+len(body))
	p = append(p, byte(st))
	p = append(p, body...)
	return Frame{Op: OpReply, ReqID: reqID, Payload: p}
}

// ParseReply splits a reply payload into its status and body.
func ParseReply(p []byte) (Status, []byte, error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("%w: empty reply payload", ErrBadFrame)
	}
	return Status(p[0]), p[1:], nil
}
