package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode drives the full decode surface — framing plus every
// payload decoder — with arbitrary bytes. The invariants: no decoder
// may panic, and anything a decoder accepts must re-encode to bytes
// the decoder accepts again with equal meaning (round-trip stability).
func FuzzFrameDecode(f *testing.F) {
	seed := [][]byte{
		AppendFrame(nil, &Frame{Op: OpHello, Payload: AppendHello(nil, Hello{Magic: Magic, Version: Version, Features: FeaturePipeline | FeatureCoalesce})}),
		AppendFrame(nil, &Frame{Op: OpGet, ReqID: 1, Payload: AppendGet(nil, []byte("user000001"))}),
		AppendFrame(nil, &Frame{Op: OpPut, ReqID: 2, Payload: AppendPut(nil, []byte("k"), []byte("v"))}),
		AppendFrame(nil, &Frame{Op: OpDelete, ReqID: 3, Payload: AppendDelete(nil, []byte("k"))}),
		AppendFrame(nil, &Frame{Op: OpWriteBatch, ReqID: 4, Payload: AppendWriteBatch(nil, []BatchEntry{
			{Key: []byte("a"), Value: []byte("1")}, {Delete: true, Key: []byte("b")},
		})}),
		AppendFrame(nil, &Frame{Op: OpScan, ReqID: 5, Payload: AppendScan(nil, []byte("user"), 100)}),
		AppendFrame(nil, &Frame{Op: OpReply, ReqID: 6, Payload: Reply(6, StatusOK, AppendScanReply(nil, []KV{{Key: []byte("k"), Value: []byte("v")}})).Payload}),
		{0, 0, 0, 0}, {9, 0, 0, 0, 2, 1, 2, 3, 4, 5, 6, 7, 8},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		// Re-encoding an accepted frame must reproduce a decodable
		// prefix of the input.
		re := AppendFrame(nil, &fr)
		fr2, err := ReadFrame(bytes.NewReader(re), 1<<20)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Op != fr.Op || fr2.ReqID != fr.ReqID || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("frame round-trip mismatch: %+v vs %+v", fr, fr2)
		}

		p := fr.Payload
		switch fr.Op {
		case OpHello:
			if h, err := DecodeHello(p); err == nil {
				if got, err := DecodeHello(AppendHello(nil, h)); err != nil || got != h {
					t.Fatalf("hello round-trip: %+v %v", got, err)
				}
			}
		case OpGet:
			if k, err := DecodeGet(p); err == nil {
				if k2, err := DecodeGet(AppendGet(nil, k)); err != nil || !bytes.Equal(k, k2) {
					t.Fatalf("get round-trip: %v", err)
				}
			}
		case OpPut:
			if k, v, err := DecodePut(p); err == nil {
				if k2, v2, err := DecodePut(AppendPut(nil, k, v)); err != nil || !bytes.Equal(k, k2) || !bytes.Equal(v, v2) {
					t.Fatalf("put round-trip: %v", err)
				}
			}
		case OpDelete:
			_, _ = DecodeDelete(p)
		case OpWriteBatch:
			if entries, err := DecodeWriteBatch(p); err == nil {
				re, err := DecodeWriteBatch(AppendWriteBatch(nil, entries))
				if err != nil || len(re) != len(entries) {
					t.Fatalf("batch round-trip: %d/%d %v", len(re), len(entries), err)
				}
			}
		case OpScan:
			if start, limit, err := DecodeScan(p); err == nil {
				s2, l2, err := DecodeScan(AppendScan(nil, start, limit))
				if err != nil || !bytes.Equal(start, s2) || limit != l2 {
					t.Fatalf("scan round-trip: %v", err)
				}
			}
		case OpReply:
			if st, body, err := ParseReply(p); err == nil {
				if kvs, err := DecodeScanReply(body); err == nil {
					if _, err := DecodeScanReply(AppendScanReply(nil, kvs)); err != nil {
						t.Fatalf("scan reply round-trip: %v", err)
					}
				}
				_ = st
			}
		}
	})
}
