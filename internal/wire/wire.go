// Package wire defines SEALDB's binary network protocol: a
// length-prefixed frame format carrying request-scoped opcodes and
// 64-bit request IDs, so a connection can pipeline many requests and
// receive the responses out of order.
//
// Frame layout (all integers little-endian):
//
//	uint32  length   (bytes after this field: opcode + id + payload)
//	uint8   opcode
//	uint64  request id (echoed verbatim in the response frame)
//	[]byte  payload  (opcode-specific, see payload.go)
//
// A connection starts with a handshake: the client's first frame must
// be OpHello carrying the protocol magic, its version, and a feature
// bitmask; the server answers with an OpReply Hello payload holding
// its version and the feature intersection. Everything after the
// handshake is free-form pipelined request/response traffic.
//
// The package is pure encoding — no sockets, no engine imports — so
// the server, the client, and the fuzzer all share one definition of
// what bytes mean.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol identity.
const (
	// Magic is the handshake magic number ("SEAL" big-endian).
	Magic uint32 = 0x5345414C
	// Version is the protocol version this build speaks.
	Version uint16 = 1
)

// Feature bits advertised in the handshake. The server replies with
// the intersection of the client's mask and its own.
const (
	// FeaturePipeline: the peer accepts out-of-order responses.
	FeaturePipeline uint32 = 1 << 0
	// FeatureCoalesce: the server may group-commit writes from many
	// connections into one engine batch (acks are unaffected).
	FeatureCoalesce uint32 = 1 << 1
	// FeatureTrace: the client asks the server to enable request
	// tracing — its request ids are threaded into the engine so
	// sampled operations journal span trees attributing physical I/O
	// back to the wire request.
	FeatureTrace uint32 = 1 << 2
)

// Op is a frame opcode.
type Op uint8

// Request opcodes, plus the single response opcode OpReply.
const (
	OpHello      Op = 1
	OpGet        Op = 2
	OpPut        Op = 3
	OpDelete     Op = 4
	OpWriteBatch Op = 5
	OpScan       Op = 6
	OpStats      Op = 7

	// OpReply marks a response frame; the payload begins with a
	// Status byte followed by the op-specific body.
	OpReply Op = 0x80
)

func (o Op) String() string {
	switch o {
	case OpHello:
		return "HELLO"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpWriteBatch:
		return "WRITEBATCH"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	case OpReply:
		return "REPLY"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is the first byte of every reply payload.
type Status uint8

// Reply status codes. StatusDegraded is distinct from StatusInternal
// so clients can tell "this store is read-only after a permanent
// device failure" (retrying elsewhere may help, retrying here will
// not) from a transient server-side error.
const (
	StatusOK          Status = 0
	StatusNotFound    Status = 1
	StatusDegraded    Status = 2
	StatusClosed      Status = 3
	StatusBadRequest  Status = 4
	StatusInternal    Status = 5
	StatusTooLarge    Status = 6
	StatusUnavailable Status = 7
	// StatusCorrupt reports that the engine detected on-media
	// corruption (an SSTable block failed its CRC) while serving the
	// request. Distinct from StatusInternal so clients and operators
	// can tell media damage from software failure.
	StatusCorrupt Status = 8
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusDegraded:
		return "DEGRADED"
	case StatusClosed:
		return "CLOSED"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusInternal:
		return "INTERNAL"
	case StatusTooLarge:
		return "TOO_LARGE"
	case StatusUnavailable:
		return "UNAVAILABLE"
	case StatusCorrupt:
		return "CORRUPT"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Frame limits.
const (
	// headerLen is opcode + request id, the fixed bytes covered by the
	// length prefix alongside the payload.
	headerLen = 1 + 8
	// DefaultMaxFrame bounds a frame's length field unless the caller
	// chooses otherwise; it caps memory a peer can demand per frame.
	DefaultMaxFrame = 16 << 20
)

// Framing errors.
var (
	// ErrFrameTooLarge reports a length prefix above the reader's
	// configured bound.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadFrame reports a structurally invalid frame or payload.
	ErrBadFrame = errors.New("wire: malformed frame")
)

// Frame is one protocol message.
type Frame struct {
	Op    Op
	ReqID uint64
	// Payload is the opcode-specific body. Decoded payloads alias the
	// frame's buffer; copy before retaining past the next read.
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the
// extended slice. It never fails: payload size policy is enforced by
// the reader on the other end.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen+len(f.Payload)))
	dst = append(dst, byte(f.Op))
	dst = binary.LittleEndian.AppendUint64(dst, f.ReqID)
	return append(dst, f.Payload...)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f *Frame) error {
	buf := AppendFrame(make([]byte, 0, 4+headerLen+len(f.Payload)), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, rejecting frames whose declared
// length exceeds max (0 means DefaultMaxFrame). The returned payload
// is freshly allocated and safe to retain.
func ReadFrame(r io.Reader, max int) (Frame, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < headerLen {
		return Frame{}, fmt.Errorf("%w: length %d below header size", ErrBadFrame, n)
	}
	if int64(n) > int64(max) {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		// A frame torn mid-body is a protocol error, not a clean EOF.
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{
		Op:      Op(body[0]),
		ReqID:   binary.LittleEndian.Uint64(body[1:9]),
		Payload: body[headerLen:],
	}, nil
}

// Hello is the handshake payload, sent by the client as OpHello and
// echoed (with the server's version and the negotiated features) in
// the reply body.
type Hello struct {
	Magic    uint32
	Version  uint16
	Features uint32
}

// AppendHello appends the encoded handshake payload to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, h.Magic)
	dst = binary.LittleEndian.AppendUint16(dst, h.Version)
	return binary.LittleEndian.AppendUint32(dst, h.Features)
}

// DecodeHello parses a handshake payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) != 10 {
		return Hello{}, fmt.Errorf("%w: hello payload %d bytes, want 10", ErrBadFrame, len(p))
	}
	return Hello{
		Magic:    binary.LittleEndian.Uint32(p[0:4]),
		Version:  binary.LittleEndian.Uint16(p[4:6]),
		Features: binary.LittleEndian.Uint32(p[6:10]),
	}, nil
}
