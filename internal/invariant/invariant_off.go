//go:build !sealdb_invariants

// Package invariant provides build-tag-gated runtime assertions; in
// this default build Enabled is false and Assert is a no-op that the
// compiler eliminates. See invariant.go (built under -tags
// sealdb_invariants) for the full package documentation.
package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Assert does nothing in default builds.
func Assert(bool, string, ...any) {}
