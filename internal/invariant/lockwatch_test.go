//go:build sealdb_invariants

package invariant

import (
	"strings"
	"testing"
)

// TestLockOrderEdgesRecorded checks that nested acquisitions build
// the observed edge graph and releases unwind the held stack.
func TestLockOrderEdgesRecorded(t *testing.T) {
	ResetLockOrder()
	defer ResetLockOrder()

	LockAcquired("wd_outer")
	LockAcquired("wd_inner")
	LockReleased("wd_inner")
	LockReleased("wd_outer")

	edges := LockOrderEdges()
	if len(edges) != 1 || edges[0] != [2]string{"wd_outer", "wd_inner"} {
		t.Fatalf("edges = %v, want [[wd_outer wd_inner]]", edges)
	}

	// With the stack unwound, acquiring in the same order again is
	// fine, and no new edges appear.
	LockAcquired("wd_outer")
	LockAcquired("wd_inner")
	LockReleased("wd_inner")
	LockReleased("wd_outer")
	if edges := LockOrderEdges(); len(edges) != 1 {
		t.Fatalf("edges after repeat = %v, want 1 edge", edges)
	}
}

// TestLockOrderCyclePanics checks the watchdog panics when an
// acquisition closes a cycle — the deliberately inverted acquisition
// the static analyzer would also reject.
func TestLockOrderCyclePanics(t *testing.T) {
	ResetLockOrder()
	defer ResetLockOrder()

	LockAcquired("wd_a")
	LockAcquired("wd_b") // observe wd_a -> wd_b
	LockReleased("wd_b")
	LockReleased("wd_a")

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("inverted acquisition did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "lock-order cycle") ||
			!strings.Contains(msg, `"wd_a"`) || !strings.Contains(msg, `"wd_b"`) {
			t.Fatalf("panic = %v, want lock-order cycle naming wd_a and wd_b", r)
		}
		LockReleased("wd_b") // unwind for other tests
	}()
	LockAcquired("wd_b")
	LockAcquired("wd_a") // closes the cycle: must panic before "blocking"
}

// TestLockOrderSelfEdgeAllowed checks that one site name held twice
// (two instances sharing a profile site) is not treated as a cycle.
func TestLockOrderSelfEdgeAllowed(t *testing.T) {
	ResetLockOrder()
	defer ResetLockOrder()

	LockAcquired("wd_shared")
	LockAcquired("wd_shared")
	LockReleased("wd_shared")
	LockReleased("wd_shared")
	if edges := LockOrderEdges(); len(edges) != 0 {
		t.Fatalf("self-nesting produced edges %v, want none", edges)
	}
}

// TestLockOrderOutOfOrderRelease checks hand-over-hand unwinding:
// releasing the outer lock first must drop the right stack entry.
func TestLockOrderOutOfOrderRelease(t *testing.T) {
	ResetLockOrder()
	defer ResetLockOrder()

	LockAcquired("wd_h1")
	LockAcquired("wd_h2")
	LockReleased("wd_h1") // out of order
	LockAcquired("wd_h3") // held: wd_h2 -> edge wd_h2 -> wd_h3 only
	LockReleased("wd_h3")
	LockReleased("wd_h2")

	edges := LockOrderEdges()
	want := [][2]string{{"wd_h1", "wd_h2"}, {"wd_h2", "wd_h3"}}
	if len(edges) != 2 || edges[0] != want[0] || edges[1] != want[1] {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
}
