//go:build sealdb_invariants

// Package invariant provides build-tag-gated runtime assertions for
// SEALDB's internal consistency contracts: band write-pointer
// monotonicity, extent-set disjointness, allocator free-list
// accounting, and version level-overlap rules.
//
// By default the package compiles to nothing: Enabled is a false
// constant and every Assert call site is dead code the compiler
// deletes. Building with -tags sealdb_invariants turns Enabled on and
// makes Assert panic on violation, so the ordinary test suite doubles
// as an invariant-checking suite:
//
//	go test -tags sealdb_invariants ./...
//
// Guard any check that is itself expensive to compute behind Enabled:
//
//	if invariant.Enabled {
//	    invariant.Assert(set.wellFormed(), "overlapping extents")
//	}
package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in. It is a
// constant so that call sites gated on it compile away entirely in
// default builds.
const Enabled = true

// Assert panics with a formatted message if cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
