//go:build !sealdb_invariants

package invariant

// The lock-order watchdog compiles away in default builds; the obs
// lock wrappers gate their calls on Enabled, so these stubs are never
// reached (they exist so non-gated callers like the chaos CLI link).

// LockAcquired does nothing in default builds.
func LockAcquired(string) {}

// LockReleased does nothing in default builds.
func LockReleased(string) {}

// LockOrderEdges returns nil in default builds.
func LockOrderEdges() [][2]string { return nil }

// ResetLockOrder does nothing in default builds.
func ResetLockOrder() {}
