package invariant_test

import (
	"testing"

	"sealdb/internal/invariant"
)

// TestAssert verifies both build flavours: with -tags
// sealdb_invariants a false condition panics with the formatted
// message; in default builds Assert is a no-op.
func TestAssert(t *testing.T) {
	invariant.Assert(true, "never fires")

	defer func() {
		r := recover()
		if invariant.Enabled && r == nil {
			t.Fatal("Assert(false) did not panic with invariants enabled")
		}
		if !invariant.Enabled && r != nil {
			t.Fatalf("Assert(false) panicked in a default build: %v", r)
		}
		if invariant.Enabled {
			msg, ok := r.(string)
			if !ok || msg != "invariant violated: wp went backwards: 7 < 9" {
				t.Fatalf("unexpected panic value: %v", r)
			}
		}
	}()
	invariant.Assert(false, "wp went backwards: %d < %d", 7, 9)
}
