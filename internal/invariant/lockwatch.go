//go:build sealdb_invariants

package invariant

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// The lock-order watchdog is the runtime half of the lockorder static
// analyzer: the obs lock wrappers report every profiled acquisition
// and release here, the watchdog maintains a per-goroutine stack of
// held sites plus a global graph of observed acquisition edges, and
// an acquisition that would close a cycle panics immediately —
// before the goroutine blocks on the mutex, so the failure is a
// stack trace naming both sites instead of a silent deadlock.
//
// A self-edge (site acquired while the same site is held) is skipped:
// one site name can cover many mutex instances (per-band, per-file),
// so it is not provably reentrant acquisition of one mutex.
//
// The observed graph is cumulative for the process; LockOrderEdges
// exposes it so a chaos campaign can dump what actually nested and
// cross-check the static '// lockorder:' declarations.

var lw = struct {
	mu    sync.Mutex
	held  map[int64][]string         // goroutine id -> stack of held sites
	edges map[string]map[string]bool // observed: held -> acquired
}{
	held:  map[int64][]string{},
	edges: map[string]map[string]bool{},
}

// LockAcquired records that the calling goroutine is acquiring the
// named site. It panics if the acquisition closes a cycle in the
// observed edge graph. Call before blocking on the underlying mutex.
func LockAcquired(site string) {
	gid := goid()
	lw.mu.Lock()
	held := lw.held[gid]
	for _, h := range held {
		if h == site {
			continue
		}
		if reachesLocked(site, h) {
			edges := edgeListLocked()
			lw.mu.Unlock()
			panic(fmt.Sprintf(
				"invariant violated: lock-order cycle: acquiring %q while holding %q, but the reverse order %q -> %q was already observed (edges: %v)",
				site, h, site, h, edges))
		}
	}
	for _, h := range held {
		if h == site {
			continue
		}
		if lw.edges[h] == nil {
			lw.edges[h] = map[string]bool{}
		}
		lw.edges[h][site] = true
	}
	lw.held[gid] = append(held, site)
	lw.mu.Unlock()
}

// LockReleased records that the calling goroutine released the named
// site (the most recent matching hold; releases may be out of
// acquisition order for hand-over-hand locking).
func LockReleased(site string) {
	gid := goid()
	lw.mu.Lock()
	held := lw.held[gid]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == site {
			held = append(held[:i], held[i+1:]...)
			break
		}
	}
	if len(held) == 0 {
		delete(lw.held, gid)
	} else {
		lw.held[gid] = held
	}
	lw.mu.Unlock()
}

// LockOrderEdges returns the observed acquisition edges, sorted, as
// {held, acquired} pairs.
func LockOrderEdges() [][2]string {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return edgeListLocked()
}

// ResetLockOrder clears the observed graph and all held stacks
// (test isolation).
func ResetLockOrder() {
	lw.mu.Lock()
	lw.held = map[int64][]string{}
	lw.edges = map[string]map[string]bool{}
	lw.mu.Unlock()
}

// reachesLocked reports whether "to" is reachable from "from" in the
// observed edge graph. Caller holds lw.mu.
func reachesLocked(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range lw.edges[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// edgeListLocked flattens the edge set, sorted. Caller holds lw.mu.
func edgeListLocked() [][2]string {
	var out [][2]string
	for from, tos := range lw.edges {
		for to := range tos {
			out = append(out, [2]string{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// goid extracts the current goroutine's id from the stack header
// ("goroutine 123 [running]: ..."). Slow, but the watchdog only
// exists in invariant builds.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
