// Package sealclient is the Go client for a SEALDB network server
// (internal/server): a connection pool where every connection
// pipelines requests — many may be outstanding at once, responses are
// matched to waiters by request ID in whatever order the server sends
// them — with per-request timeouts and bounded retries of idempotent
// reads over redialed connections.
//
// The client speaks only internal/wire; it has no dependency on the
// engine, so it is exactly what an external consumer of the protocol
// would build.
package sealclient

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sealdb/internal/wire"
)

// Client errors. Status-mapped errors wrap these sentinels, so
// errors.Is works across the network boundary.
var (
	// ErrNotFound reports a GET for a key that does not exist.
	ErrNotFound = errors.New("sealclient: key not found")
	// ErrDegraded reports a write rejected because the remote store is
	// in read-only degraded mode after a permanent device failure;
	// retrying against the same server cannot succeed.
	ErrDegraded = errors.New("sealclient: store is in read-only degraded mode")
	// ErrStoreClosed reports an operation against a closed remote DB.
	ErrStoreClosed = errors.New("sealclient: remote store is closed")
	// ErrUnavailable reports a refused connection or request (server
	// full or shutting down).
	ErrUnavailable = errors.New("sealclient: server unavailable")
	// ErrTimeout reports a request that exceeded its per-request
	// timeout; its fate at the server is unknown.
	ErrTimeout = errors.New("sealclient: request timed out")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("sealclient: client is closed")
	// ErrConn wraps transport-level failures (dial, read, write, reset).
	ErrConn = errors.New("sealclient: connection error")
	// ErrCorrupt reports that the server detected on-media corruption
	// (an SSTable block failed its CRC) while serving the request.
	ErrCorrupt = errors.New("sealclient: store detected media corruption")
)

// Options tunes a client. The zero value dials with the defaults.
type Options struct {
	// Conns is the connection pool size. 0 means 1.
	Conns int
	// Timeout is the per-request timeout. 0 means 10s.
	Timeout time.Duration
	// DialTimeout bounds connection establishment (including the
	// handshake). 0 means 5s.
	DialTimeout time.Duration
	// ReadRetries is how many extra attempts an idempotent read (GET,
	// SCAN, STATS) gets after a connection-level failure, each on a
	// freshly dialed connection after an exponential-backoff sleep
	// with full jitter. Writes are never retried — not on failures
	// and not while the server reports DEGRADED — because a timed-out
	// or broken write may still have committed. 0 means 2; negative
	// disables retries.
	ReadRetries int
	// RetryBaseDelay is the backoff cap for the first retry; each
	// further retry doubles the cap and the actual sleep is uniform
	// in [0, cap) (full jitter). While the server reports DEGRADED
	// the caps are multiplied by 4: the store will not heal by
	// hammering it. 0 means 2ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the per-retry backoff regardless of attempt
	// count. 0 means 100ms.
	RetryMaxDelay time.Duration
	// RetryBudget bounds the total backoff sleep one call may spend;
	// a retry whose delay would exceed the remaining budget is not
	// attempted. 0 means 1s.
	RetryBudget time.Duration
	// Sleep replaces time.Sleep for backoff waits; tests and the
	// chaos harness inject recorders or no-ops here. Nil means
	// time.Sleep. It is called once per retry, including zero
	// delays.
	Sleep func(time.Duration)
	// Rand replaces the jitter source: it must return a uniform
	// value in [0, n). Nil means a private math/rand source seeded
	// from the clock at Dial. Called concurrently; the default is
	// mutex-guarded, injected sources must be safe themselves.
	Rand func(n int64) int64
	// MaxFrame bounds accepted response frames. 0 means
	// wire.DefaultMaxFrame.
	MaxFrame int
	// Trace requests wire.FeatureTrace in the handshake: the server
	// then threads this client's request ids into the engine tracer,
	// so sampled operations journal span trees attributing physical
	// I/O back to individual requests. Check Features() after Dial to
	// see whether the server granted it.
	Trace bool
}

func (o *Options) conns() int {
	if o.Conns > 0 {
		return o.Conns
	}
	return 1
}

func (o *Options) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 10 * time.Second
}

func (o *Options) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 5 * time.Second
}

func (o *Options) readRetries() int {
	if o.ReadRetries < 0 {
		return 0
	}
	if o.ReadRetries == 0 {
		return 2
	}
	return o.ReadRetries
}

func (o *Options) maxFrame() int {
	if o.MaxFrame > 0 {
		return o.MaxFrame
	}
	return wire.DefaultMaxFrame
}

func (o *Options) retryBaseDelay() time.Duration {
	if o.RetryBaseDelay > 0 {
		return o.RetryBaseDelay
	}
	return 2 * time.Millisecond
}

func (o *Options) retryMaxDelay() time.Duration {
	if o.RetryMaxDelay > 0 {
		return o.RetryMaxDelay
	}
	return 100 * time.Millisecond
}

func (o *Options) retryBudget() time.Duration {
	if o.RetryBudget > 0 {
		return o.RetryBudget
	}
	return time.Second
}

// Client is a pooled, pipelining SEALDB client. Safe for concurrent
// use; concurrent requests on the same pooled connection pipeline.
type Client struct {
	addr string
	o    Options

	rr     atomic.Uint64 // round-robin cursor
	slots  []*connSlot
	closed atomic.Bool

	// degraded tracks the last write's view of the server: set when a
	// write is rejected with DEGRADED, cleared when one succeeds.
	// While set, read-retry backoff caps are multiplied.
	degraded atomic.Bool

	sleep func(time.Duration)
	rnd   func(n int64) int64

	// Features is the feature mask negotiated on the first dialed
	// connection.
	features atomic.Uint32
}

// Dial connects to a server, establishing (and handshaking) the first
// pooled connection eagerly so configuration errors surface here; the
// rest of the pool dials lazily.
func Dial(addr string, o Options) (*Client, error) {
	c := &Client{addr: addr, o: o, slots: make([]*connSlot, o.conns())}
	for i := range c.slots {
		c.slots[i] = &connSlot{}
	}
	c.sleep = o.Sleep
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	c.rnd = o.Rand
	if c.rnd == nil {
		var mu sync.Mutex
		src := rand.New(rand.NewSource(time.Now().UnixNano()))
		c.rnd = func(n int64) int64 {
			mu.Lock()
			defer mu.Unlock()
			return src.Int63n(n)
		}
	}
	cc, err := c.slots[0].get(c)
	if err != nil {
		return nil, err
	}
	c.features.Store(cc.features)
	return c, nil
}

// Features returns the feature mask negotiated with the server.
func (c *Client) Features() uint32 { return c.features.Load() }

// Close tears down every pooled connection. In-flight requests fail
// with ErrConn.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, s := range c.slots {
		s.close()
	}
	return nil
}

// pick returns a live pooled connection, dialing its slot if needed.
func (c *Client) pick() (*clientConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	n := c.rr.Add(1)
	return c.slots[int(n)%len(c.slots)].get(c)
}

// roundTrip sends one request on one connection and waits for its
// reply.
func (c *Client) roundTrip(op wire.Op, payload []byte) (wire.Status, []byte, error) {
	cc, err := c.pick()
	if err != nil {
		return 0, nil, err
	}
	return cc.do(op, payload, c.o.timeout())
}

// readRoundTrip is roundTrip plus the bounded idempotent-read retry
// loop: connection-level failures redial and retry after an
// exponential-backoff sleep with full jitter, until the attempt bound
// or the per-call sleep budget runs out. Status errors and timeouts
// are never retried (a timeout's fate at the server is unknown).
func (c *Client) readRoundTrip(op wire.Op, payload []byte) (wire.Status, []byte, error) {
	var lastErr error
	var slept time.Duration
	budget := c.o.retryBudget()
	for attempt := 0; attempt <= c.o.readRetries(); attempt++ {
		if attempt > 0 {
			d := c.backoffDelay(attempt - 1)
			if slept+d > budget {
				break // retry budget exhausted; report the last failure
			}
			slept += d
			c.sleep(d)
		}
		st, body, err := c.roundTrip(op, payload)
		if err == nil {
			return st, body, nil
		}
		lastErr = err
		if !errors.Is(err, ErrConn) {
			break
		}
	}
	return 0, nil, lastErr
}

// backoffDelay computes the sleep before retry number attempt+1:
// uniform in [0, cap) where cap doubles per attempt from
// RetryBaseDelay up to RetryMaxDelay (full jitter, per the AWS
// architecture blog's taxonomy). A client that last saw the server
// DEGRADED quadruples both cap and ceiling: the store is read-only
// after a permanent device failure and will not heal under pressure.
func (c *Client) backoffDelay(attempt int) time.Duration {
	if attempt > 30 {
		attempt = 30 // avoid shift overflow; the cap clamps anyway
	}
	capDelay := c.o.retryBaseDelay() << uint(attempt)
	maxDelay := c.o.retryMaxDelay()
	if c.degraded.Load() {
		capDelay *= 4
		maxDelay *= 4
	}
	if capDelay > maxDelay {
		capDelay = maxDelay
	}
	if capDelay <= 0 {
		return 0
	}
	return time.Duration(c.rnd(int64(capDelay)))
}

// noteWriteStatus updates the client's degraded view from a write's
// reply status.
func (c *Client) noteWriteStatus(st wire.Status) {
	switch st {
	case wire.StatusOK:
		c.degraded.Store(false)
	case wire.StatusDegraded:
		c.degraded.Store(true)
	}
}

// Degraded reports whether the most recent write observed the server
// in read-only degraded mode.
func (c *Client) Degraded() bool { return c.degraded.Load() }

// statusErr maps a non-OK reply to a wrapped sentinel error.
func statusErr(st wire.Status, body []byte) error {
	msg := string(body)
	switch st {
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusDegraded:
		return fmt.Errorf("%w: %s", ErrDegraded, msg)
	case wire.StatusClosed:
		return fmt.Errorf("%w: %s", ErrStoreClosed, msg)
	case wire.StatusUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, msg)
	case wire.StatusCorrupt:
		return fmt.Errorf("%w: %s", ErrCorrupt, msg)
	default:
		return fmt.Errorf("sealclient: %s: %s", st, msg)
	}
}

// Get returns the value of key. Idempotent: retried on connection
// failures up to the configured bound.
func (c *Client) Get(key []byte) ([]byte, error) {
	st, body, err := c.readRoundTrip(wire.OpGet, wire.AppendGet(nil, key))
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, statusErr(st, body)
	}
	return body, nil
}

// Put writes a key/value pair. Not retried.
func (c *Client) Put(key, value []byte) error {
	st, body, err := c.roundTrip(wire.OpPut, wire.AppendPut(nil, key, value))
	if err != nil {
		return err
	}
	c.noteWriteStatus(st)
	if st != wire.StatusOK {
		return statusErr(st, body)
	}
	return nil
}

// Delete writes a tombstone for key. Not retried.
func (c *Client) Delete(key []byte) error {
	st, body, err := c.roundTrip(wire.OpDelete, wire.AppendDelete(nil, key))
	if err != nil {
		return err
	}
	c.noteWriteStatus(st)
	if st != wire.StatusOK {
		return statusErr(st, body)
	}
	return nil
}

// Batch collects mutations for one atomic WRITEBATCH request.
type Batch struct {
	entries []wire.BatchEntry
}

// Put queues a key/value write. The slices are retained until Apply.
func (b *Batch) Put(key, value []byte) {
	b.entries = append(b.entries, wire.BatchEntry{Key: key, Value: value})
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.entries = append(b.entries, wire.BatchEntry{Delete: true, Key: key})
}

// Len returns the number of queued mutations.
func (b *Batch) Len() int { return len(b.entries) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.entries = b.entries[:0] }

// Apply sends the batch as one atomic write. Not retried.
func (c *Client) Apply(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	st, body, err := c.roundTrip(wire.OpWriteBatch, wire.AppendWriteBatch(nil, b.entries))
	if err != nil {
		return err
	}
	c.noteWriteStatus(st)
	if st != wire.StatusOK {
		return statusErr(st, body)
	}
	return nil
}

// KV is one scan result entry.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live entries with keys >= start.
// Idempotent: retried on connection failures.
func (c *Client) Scan(start []byte, limit int) ([]KV, error) {
	if limit < 0 {
		limit = 0
	}
	st, body, err := c.readRoundTrip(wire.OpScan, wire.AppendScan(nil, start, uint32(limit)))
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, statusErr(st, body)
	}
	wkvs, err := wire.DecodeScanReply(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConn, err)
	}
	out := make([]KV, len(wkvs))
	for i, e := range wkvs {
		out[i] = KV{Key: e.Key, Value: e.Value}
	}
	return out, nil
}

// Stats fetches the server's STATS payload (engine stats, mode,
// degraded state, serving-layer counters) as raw JSON. Idempotent:
// retried on connection failures.
func (c *Client) Stats() (json.RawMessage, error) {
	st, body, err := c.readRoundTrip(wire.OpStats, nil)
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, statusErr(st, body)
	}
	return json.RawMessage(body), nil
}
