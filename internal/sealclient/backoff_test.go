package sealclient

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sealdb/internal/wire"
)

// sleepRecorder captures backoff sleeps instead of sleeping.
type sleepRecorder struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	r.sleeps = append(r.sleeps, d)
	r.mu.Unlock()
}

func (r *sleepRecorder) got() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.sleeps...)
}

// maxJitter makes the full-jitter draw deterministic at its upper
// bound: rnd(n) = n-1, so each sleep equals its cap minus 1ns.
func maxJitter(n int64) int64 { return n - 1 }

func wantSleeps(t *testing.T, rec *sleepRecorder, want []time.Duration) {
	t.Helper()
	got := rec.got()
	if len(got) != len(want) {
		t.Fatalf("slept %d times (%v), want %d (%v)", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestBackoffDoublesWithFullJitter(t *testing.T) {
	// Every request kills the connection: each retry must sleep under
	// a cap that doubles from RetryBaseDelay, and with the jitter
	// pinned to its maximum the exact sequence is 2ms-1, 4ms-1, 8ms-1.
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool { return false })
	rec := &sleepRecorder{}
	c, err := Dial(s.ln.Addr().String(), Options{
		Timeout: time.Second, ReadRetries: 3,
		RetryBaseDelay: 2 * time.Millisecond,
		Sleep:          rec.sleep, Rand: maxJitter,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConn) {
		t.Fatalf("Get err = %v, want ErrConn", err)
	}
	ms := time.Millisecond
	wantSleeps(t, rec, []time.Duration{2*ms - 1, 4*ms - 1, 8*ms - 1})
	if got := s.dials.Load(); got != 4 {
		t.Fatalf("server saw %d dials, want 4 (initial + 3 retries)", got)
	}
}

func TestBackoffJitterReachesZero(t *testing.T) {
	// Full jitter draws uniformly from [0, cap): with the rng pinned
	// low every sleep is zero, and Sleep is still invoked once per
	// retry (so injected sleepers observe every attempt).
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool { return false })
	rec := &sleepRecorder{}
	c, err := Dial(s.ln.Addr().String(), Options{
		Timeout: time.Second, ReadRetries: 3,
		RetryBaseDelay: 2 * time.Millisecond,
		Sleep:          rec.sleep, Rand: func(n int64) int64 { return 0 },
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConn) {
		t.Fatalf("Get err = %v, want ErrConn", err)
	}
	wantSleeps(t, rec, []time.Duration{0, 0, 0})
}

func TestBackoffHonorsMaxDelay(t *testing.T) {
	// The doubling cap clamps at RetryMaxDelay: 2ms, then 3ms, 3ms.
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool { return false })
	rec := &sleepRecorder{}
	c, err := Dial(s.ln.Addr().String(), Options{
		Timeout: time.Second, ReadRetries: 3,
		RetryBaseDelay: 2 * time.Millisecond, RetryMaxDelay: 3 * time.Millisecond,
		Sleep: rec.sleep, Rand: maxJitter,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConn) {
		t.Fatalf("Get err = %v, want ErrConn", err)
	}
	ms := time.Millisecond
	wantSleeps(t, rec, []time.Duration{2*ms - 1, 3*ms - 1, 3*ms - 1})
}

func TestBackoffBudgetStopsRetries(t *testing.T) {
	// The per-call budget bounds total sleep: after one 2ms-1 sleep
	// the next 4ms-1 delay would overrun the 5ms budget, so the call
	// gives up with the connection error even though attempts remain.
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool { return false })
	rec := &sleepRecorder{}
	c, err := Dial(s.ln.Addr().String(), Options{
		Timeout: time.Second, ReadRetries: 5,
		RetryBaseDelay: 2 * time.Millisecond, RetryBudget: 5 * time.Millisecond,
		Sleep: rec.sleep, Rand: maxJitter,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConn) {
		t.Fatalf("Get err = %v, want ErrConn", err)
	}
	wantSleeps(t, rec, []time.Duration{2*time.Millisecond - 1})
	if got := s.dials.Load(); got != 2 {
		t.Fatalf("server saw %d dials, want 2 (budget cut the rest)", got)
	}
}

func TestDegradedQuadruplesBackoffAndClears(t *testing.T) {
	// Writes answered DEGRADED flip the client's degraded view; read
	// retries then back off under 4x caps (8ms, 16ms instead of 2ms,
	// 4ms). A later successful write clears the view.
	var healthy atomic.Bool
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool {
		if f.Op == wire.OpPut {
			st := wire.StatusDegraded
			if healthy.Load() {
				st = wire.StatusOK
			}
			r := wire.Reply(f.ReqID, st, nil)
			return wire.WriteFrame(nc, &r) == nil
		}
		return false // reads: kill the connection to force retries
	})
	rec := &sleepRecorder{}
	c, err := Dial(s.ln.Addr().String(), Options{
		Timeout: time.Second, ReadRetries: 2,
		RetryBaseDelay: 2 * time.Millisecond,
		Sleep:          rec.sleep, Rand: maxJitter,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put err = %v, want ErrDegraded", err)
	}
	if !c.Degraded() {
		t.Fatal("client did not note the DEGRADED write")
	}
	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConn) {
		t.Fatalf("Get err = %v, want ErrConn", err)
	}
	ms := time.Millisecond
	wantSleeps(t, rec, []time.Duration{8*ms - 1, 16*ms - 1})

	healthy.Store(true)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("healthy Put: %v", err)
	}
	if c.Degraded() {
		t.Fatal("successful write did not clear the degraded view")
	}
}
