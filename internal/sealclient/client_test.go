package sealclient

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sealdb/internal/wire"
)

// stubServer accepts connections, answers the handshake, and then
// hands each decoded request frame to handle (which may return no
// reply to simulate a stall, or close the connection).
type stubServer struct {
	ln     net.Listener
	dials  atomic.Int64
	handle func(nc net.Conn, f wire.Frame) bool // false = drop connection
}

func newStubServer(t *testing.T, handle func(net.Conn, wire.Frame) bool) *stubServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &stubServer{ln: ln, handle: handle}
	go s.loop()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *stubServer) loop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.dials.Add(1)
		go s.serve(nc)
	}
}

func (s *stubServer) serve(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReader(nc)
	// Handshake.
	f, err := wire.ReadFrame(br, 1024)
	if err != nil || f.Op != wire.OpHello {
		return
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return
	}
	ack := wire.Reply(f.ReqID, wire.StatusOK, wire.AppendHello(nil, wire.Hello{
		Magic: wire.Magic, Version: wire.Version, Features: h.Features,
	}))
	if err := wire.WriteFrame(nc, &ack); err != nil {
		return
	}
	for {
		f, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
		if err != nil {
			return
		}
		if !s.handle(nc, f) {
			return
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	// A server that swallows every request forever: the client's
	// per-request timeout must fire, and the connection must survive.
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool { return true })
	c, err := Dial(s.ln.Addr().String(), Options{Timeout: 100 * time.Millisecond, ReadRetries: -1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Get([]byte("k"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Get err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", d)
	}
}

func TestLateReplyAfterTimeoutIsDiscarded(t *testing.T) {
	// Reply only to the second request; the first times out and its
	// late answer (never sent here) must not be delivered to the second
	// request's waiter. Verifies ID matching, not FIFO matching.
	var n atomic.Int64
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool {
		if n.Add(1) == 1 {
			return true // swallow the first request
		}
		r := wire.Reply(f.ReqID, wire.StatusOK, []byte("v2"))
		return wire.WriteFrame(nc, &r) == nil
	})
	c, err := Dial(s.ln.Addr().String(), Options{Timeout: 100 * time.Millisecond, ReadRetries: -1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("a")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("first Get err = %v, want ErrTimeout", err)
	}
	v, err := c.Get([]byte("b"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("second Get = %q, %v; want v2", v, err)
	}
}

func TestBoundedReadRetry(t *testing.T) {
	// Drop the connection on the first two requests, answer the third:
	// a Get with ReadRetries=2 must succeed after redialing, and the
	// dial count proves the retries happened over fresh connections.
	var n atomic.Int64
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool {
		if n.Add(1) <= 2 {
			return false // kill the connection without replying
		}
		r := wire.Reply(f.ReqID, wire.StatusOK, []byte("ok"))
		return wire.WriteFrame(nc, &r) == nil
	})
	c, err := Dial(s.ln.Addr().String(), Options{Timeout: time.Second, ReadRetries: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	v, err := c.Get([]byte("k"))
	if err != nil || string(v) != "ok" {
		t.Fatalf("Get = %q, %v; want ok after retries", v, err)
	}
	if got := s.dials.Load(); got != 3 {
		t.Fatalf("server saw %d dials, want 3 (initial + 2 redials)", got)
	}
}

func TestRetryExhaustionSurfacesConnError(t *testing.T) {
	// A server that always drops the connection: after the retry budget
	// is spent the client must report a connection error, and the dial
	// count must equal 1 + ReadRetries.
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool { return false })
	c, err := Dial(s.ln.Addr().String(), Options{Timeout: time.Second, ReadRetries: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConn) {
		t.Fatalf("Get err = %v, want ErrConn", err)
	}
	if got := s.dials.Load(); got != 3 {
		t.Fatalf("server saw %d dials, want 3", got)
	}
}

func TestWritesAreNotRetried(t *testing.T) {
	var n atomic.Int64
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool {
		n.Add(1)
		return false
	})
	c, err := Dial(s.ln.Addr().String(), Options{Timeout: time.Second, ReadRetries: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrConn) {
		t.Fatalf("Put err = %v, want ErrConn", err)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d write attempts, want exactly 1 (no retry)", got)
	}
}

func TestHandshakeVersionRefusal(t *testing.T) {
	// A listener that refuses the handshake with UNAVAILABLE: Dial must
	// fail with the mapped error, not hang or report a bare EOF.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		f, err := wire.ReadFrame(bufio.NewReader(nc), 1024)
		if err != nil {
			return
		}
		r := wire.Reply(f.ReqID, wire.StatusUnavailable, []byte("unsupported protocol version"))
		if err := wire.WriteFrame(nc, &r); err != nil {
			return
		}
	}()

	_, err = Dial(ln.Addr().String(), Options{DialTimeout: time.Second})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Dial err = %v, want ErrUnavailable", err)
	}
}

func TestStatusMapping(t *testing.T) {
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool {
		var st wire.Status
		switch f.Op {
		case wire.OpGet:
			st = wire.StatusNotFound
		case wire.OpPut:
			st = wire.StatusDegraded
		default:
			st = wire.StatusInternal
		}
		r := wire.Reply(f.ReqID, st, []byte("x"))
		return wire.WriteFrame(nc, &r) == nil
	})
	c, err := Dial(s.ln.Addr().String(), Options{Timeout: time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get err = %v, want ErrNotFound", err)
	}
	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put err = %v, want ErrDegraded", err)
	}
}

func TestClosedClient(t *testing.T) {
	s := newStubServer(t, func(nc net.Conn, f wire.Frame) bool {
		r := wire.Reply(f.ReqID, wire.StatusOK, nil)
		return wire.WriteFrame(nc, &r) == nil
	})
	c, err := Dial(s.ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close err = %v, want ErrClosed", err)
	}
}
