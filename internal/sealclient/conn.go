package sealclient

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"sealdb/internal/obs"
	"sealdb/internal/wire"
)

// connSlot is one pool position: it holds at most one live clientConn
// and redials lazily after a failure kills the previous one.
type connSlot struct {
	mu     sync.Mutex
	cc     *clientConn // guarded by mu; nil until first use or after death
	closed bool        // guarded by mu
}

// get returns the slot's live connection, dialing a fresh one if the
// slot is empty or its connection has died.
func (s *connSlot) get(c *Client) (*clientConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.cc != nil && !s.cc.isDead() {
		return s.cc, nil
	}
	cc, err := dialConn(c.addr, &c.o)
	if err != nil {
		return nil, err
	}
	s.cc = cc
	return cc, nil
}

func (s *connSlot) close() {
	s.mu.Lock()
	cc := s.cc
	s.closed = true
	s.cc = nil
	s.mu.Unlock()
	if cc != nil {
		cc.fail(ErrClosed)
	}
}

// reply is one matched response, delivered to the waiter that sent the
// request.
type reply struct {
	status wire.Status
	body   []byte
	err    error
}

// clientConn is one pipelined connection: a writer goroutine draining
// a request channel into a buffered socket writer (flushing whenever
// the channel runs dry), and a reader goroutine matching response
// frames to waiters by request ID. Either goroutine failing fails
// every pending request and marks the connection dead; the pool then
// redials.
type clientConn struct {
	nc       net.Conn
	features uint32

	sendCh chan outFrame

	// mu guards the request-ID/waiter state every in-flight request
	// touches twice; profiled as the "sealclient_conn_mu" contention
	// site so the -scale sweep can tell client-side from server-side
	// lock waits.
	mu      obs.Mutex
	nextID  uint64                // guarded by mu
	waiters map[uint64]chan reply // guarded by mu
	dead    bool                  // guarded by mu
	deadErr error                 // guarded by mu

	done chan struct{} // closed once the connection is dead
	once sync.Once
}

type outFrame struct {
	f wire.Frame
	// errTo receives a send-side failure so the waiter is not left
	// hanging on a request that never reached the socket.
	errTo chan reply
	reqID uint64
}

// dialConn establishes and handshakes one connection synchronously,
// then starts its goroutine pair.
func dialConn(addr string, o *Options) (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", addr, o.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConn, err)
	}
	cc := &clientConn{
		nc:      nc,
		sendCh:  make(chan outFrame, 64),
		waiters: make(map[uint64]chan reply),
		done:    make(chan struct{}),
	}
	cc.mu.Profile("sealclient_conn_mu")
	if err := cc.handshake(o); err != nil {
		nc.Close()
		return nil, err
	}
	go cc.writeLoop()
	go cc.readLoop(o.maxFrame())
	return cc, nil
}

// handshake runs the hello exchange synchronously on the dialing
// goroutine, bounded by the dial timeout.
func (cc *clientConn) handshake(o *Options) error {
	if err := cc.nc.SetDeadline(time.Now().Add(o.dialTimeout())); err != nil {
		return fmt.Errorf("%w: %v", ErrConn, err)
	}
	features := wire.FeaturePipeline | wire.FeatureCoalesce
	if o.Trace {
		features |= wire.FeatureTrace
	}
	hello := wire.Hello{
		Magic:    wire.Magic,
		Version:  wire.Version,
		Features: features,
	}
	f := wire.Frame{Op: wire.OpHello, ReqID: 0, Payload: wire.AppendHello(nil, hello)}
	if err := wire.WriteFrame(cc.nc, &f); err != nil {
		return fmt.Errorf("%w: handshake write: %v", ErrConn, err)
	}
	rf, err := wire.ReadFrame(bufio.NewReader(io1{cc.nc}), 1024)
	if err != nil {
		return fmt.Errorf("%w: handshake read: %v", ErrConn, err)
	}
	st, body, err := wire.ParseReply(rf.Payload)
	if err != nil {
		return fmt.Errorf("%w: handshake reply: %v", ErrConn, err)
	}
	if st != wire.StatusOK {
		return statusErr(st, body)
	}
	h, err := wire.DecodeHello(body)
	if err != nil {
		return fmt.Errorf("%w: handshake hello: %v", ErrConn, err)
	}
	cc.features = h.Features
	if err := cc.nc.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("%w: %v", ErrConn, err)
	}
	return nil
}

// io1 restricts reads to one byte at a time so the handshake's
// throwaway bufio.Reader cannot buffer past the hello reply and
// swallow bytes that belong to the steady-state read loop.
type io1 struct{ nc net.Conn }

func (r io1) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return r.nc.Read(p)
}

// isDead reports whether the connection has failed.
func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

// fail marks the connection dead and delivers err to every pending
// waiter. Idempotent.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.deadErr = err
	waiters := cc.waiters
	cc.waiters = nil
	cc.mu.Unlock()
	cc.once.Do(func() { close(cc.done) })
	cc.nc.Close()
	for _, ch := range waiters {
		ch <- reply{err: err}
	}
}

// register allocates a request ID and a waiter channel for it.
func (cc *clientConn) register() (uint64, chan reply, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.dead {
		return 0, nil, cc.deadErr
	}
	cc.nextID++
	id := cc.nextID
	ch := make(chan reply, 1)
	cc.waiters[id] = ch
	return id, ch, nil
}

// unregister drops a waiter (after a timeout); its late reply, if any,
// is discarded by the read loop.
func (cc *clientConn) unregister(id uint64) {
	cc.mu.Lock()
	delete(cc.waiters, id)
	cc.mu.Unlock()
}

// do sends one request and waits for its matched reply or the timeout.
func (cc *clientConn) do(op wire.Op, payload []byte, timeout time.Duration) (wire.Status, []byte, error) {
	id, ch, err := cc.register()
	if err != nil {
		return 0, nil, err
	}
	of := outFrame{f: wire.Frame{Op: op, ReqID: id, Payload: payload}, errTo: ch, reqID: id}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case cc.sendCh <- of:
	case <-cc.done:
		cc.unregister(id)
		return 0, nil, cc.deadError()
	case <-timer.C:
		cc.unregister(id)
		return 0, nil, ErrTimeout
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, nil, r.err
		}
		return r.status, r.body, nil
	case <-timer.C:
		cc.unregister(id)
		return 0, nil, ErrTimeout
	}
}

func (cc *clientConn) deadError() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.deadErr != nil {
		return cc.deadErr
	}
	return ErrConn
}

// writeLoop drains the request channel into a buffered writer,
// flushing whenever no more requests are immediately queued.
func (cc *clientConn) writeLoop() {
	bw := bufio.NewWriterSize(cc.nc, 64<<10)
	for {
		select {
		case of := <-cc.sendCh:
			if err := cc.writeOne(bw, of); err != nil {
				cc.fail(err)
				return
			}
		drain:
			for {
				select {
				case of2 := <-cc.sendCh:
					if err := cc.writeOne(bw, of2); err != nil {
						cc.fail(err)
						return
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				cc.fail(fmt.Errorf("%w: flush: %v", ErrConn, err))
				return
			}
		case <-cc.done:
			return
		}
	}
}

func (cc *clientConn) writeOne(bw *bufio.Writer, of outFrame) error {
	if err := wire.WriteFrame(bw, &of.f); err != nil {
		return fmt.Errorf("%w: write: %v", ErrConn, err)
	}
	return nil
}

// readLoop matches response frames to waiters until the connection
// fails or closes.
func (cc *clientConn) readLoop(maxFrame int) {
	br := bufio.NewReaderSize(cc.nc, 64<<10)
	for {
		f, err := wire.ReadFrame(br, maxFrame)
		if err != nil {
			cc.fail(fmt.Errorf("%w: read: %v", ErrConn, err))
			return
		}
		if f.Op != wire.OpReply {
			cc.fail(fmt.Errorf("%w: unexpected frame op 0x%02x", ErrConn, byte(f.Op)))
			return
		}
		st, body, err := wire.ParseReply(f.Payload)
		if err != nil {
			cc.fail(fmt.Errorf("%w: bad reply: %v", ErrConn, err))
			return
		}
		cc.mu.Lock()
		ch := cc.waiters[f.ReqID]
		delete(cc.waiters, f.ReqID)
		cc.mu.Unlock()
		if ch != nil {
			ch <- reply{status: st, body: body}
		}
		// A reply for an unknown ID is a timed-out request's late answer;
		// drop it.
	}
}
