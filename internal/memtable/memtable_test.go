package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sealdb/internal/kv"
)

func TestGetLatestVisible(t *testing.T) {
	m := New(1)
	m.Add(1, kv.KindSet, []byte("k"), []byte("v1"))
	m.Add(2, kv.KindSet, []byte("k"), []byte("v2"))
	m.Add(3, kv.KindDelete, []byte("k"), nil)
	m.Add(4, kv.KindSet, []byte("k"), []byte("v4"))

	cases := []struct {
		seq     kv.SeqNum
		want    string
		deleted bool
		ok      bool
	}{
		{0, "", false, false},
		{1, "v1", false, true},
		{2, "v2", false, true},
		{3, "", true, true},
		{4, "v4", false, true},
		{100, "v4", false, true},
	}
	for _, c := range cases {
		v, del, ok := m.Get([]byte("k"), c.seq)
		if ok != c.ok || del != c.deleted || string(v) != c.want {
			t.Errorf("Get@%d = (%q, del=%v, ok=%v), want (%q, %v, %v)",
				c.seq, v, del, ok, c.want, c.deleted, c.ok)
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	m := New(1)
	m.Add(1, kv.KindSet, []byte("b"), []byte("v"))
	if _, _, ok := m.Get([]byte("a"), 10); ok {
		t.Error("found nonexistent key a")
	}
	if _, _, ok := m.Get([]byte("c"), 10); ok {
		t.Error("found nonexistent key c")
	}
	if _, _, ok := m.Get([]byte("bb"), 10); ok {
		t.Error("found nonexistent key bb (prefix of stored key)")
	}
}

func TestIteratorOrder(t *testing.T) {
	m := New(2)
	rng := rand.New(rand.NewSource(3))
	n := 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", rng.Intn(100000)))
		m.Add(kv.SeqNum(i+1), kv.KindSet, k, []byte("v"))
	}
	it := m.NewIterator()
	var prev kv.InternalKey
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && kv.CompareInternal(prev, it.Key()) >= 0 {
			t.Fatalf("order violation: %s !< %s", prev, it.Key())
		}
		prev = it.Key().Clone()
		count++
	}
	if count != n {
		t.Errorf("iterated %d entries, want %d", count, n)
	}
}

func TestIteratorSeek(t *testing.T) {
	m := New(4)
	for i := 0; i < 100; i += 2 {
		m.Add(kv.SeqNum(i+1), kv.KindSet, []byte(fmt.Sprintf("k%03d", i)), nil)
	}
	it := m.NewIterator()
	// Seek to an absent key lands on the next present one.
	it.Seek(kv.MakeSearchKey(nil, []byte("k051"), kv.MaxSeqNum))
	if !it.Valid() || string(it.Key().UserKey()) != "k052" {
		t.Fatalf("seek landed on %v", it.Key())
	}
	// Seek past the end invalidates.
	it.Seek(kv.MakeSearchKey(nil, []byte("z"), kv.MaxSeqNum))
	if it.Valid() {
		t.Error("seek past end should invalidate")
	}
	// Seek to exact first.
	it.Seek(kv.MakeSearchKey(nil, []byte("k000"), kv.MaxSeqNum))
	if !it.Valid() || string(it.Key().UserKey()) != "k000" {
		t.Fatalf("seek to first landed on %v", it.Key())
	}
}

func TestSizeAccounting(t *testing.T) {
	m := New(5)
	if m.ApproximateSize() != 0 || !m.Empty() {
		t.Error("fresh memtable not empty")
	}
	m.Add(1, kv.KindSet, []byte("abc"), make([]byte, 1000))
	if m.ApproximateSize() < 1000 {
		t.Errorf("size %d too small", m.ApproximateSize())
	}
	if m.Len() != 1 || m.Empty() {
		t.Error("length accounting wrong")
	}
}

func TestCallerBufferReuseSafe(t *testing.T) {
	m := New(6)
	k := []byte("key")
	v := []byte("value")
	m.Add(1, kv.KindSet, k, v)
	k[0] = 'x'
	v[0] = 'x'
	got, _, ok := m.Get([]byte("key"), 1)
	if !ok || string(got) != "value" {
		t.Errorf("mutation of caller buffers leaked into memtable: %q ok=%v", got, ok)
	}
}

// TestAgainstReferenceModel drives random operations against a map
// and checks Get results at every sequence number boundary.
func TestAgainstReferenceModel(t *testing.T) {
	type op struct {
		Key byte
		Val uint16
		Del bool
	}
	f := func(ops []op) bool {
		m := New(9)
		type state struct {
			val string
			del bool
		}
		history := make(map[kv.SeqNum]map[string]state)
		cur := map[string]state{}
		for i, o := range ops {
			k := []byte{o.Key % 16}
			seq := kv.SeqNum(i + 1)
			if o.Del {
				m.Add(seq, kv.KindDelete, k, nil)
				cur[string(k)] = state{del: true}
			} else {
				v := fmt.Sprint(o.Val)
				m.Add(seq, kv.KindSet, k, []byte(v))
				cur[string(k)] = state{val: v}
			}
			snap := make(map[string]state, len(cur))
			for kk, vv := range cur {
				snap[kk] = vv
			}
			history[seq] = snap
		}
		for seq, snap := range history {
			for kk, st := range snap {
				v, del, ok := m.Get([]byte(kk), seq)
				if !ok {
					return false
				}
				if st.del != del {
					return false
				}
				if !st.del && string(v) != st.val {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIterationMatchesSortedInsertion(t *testing.T) {
	m := New(10)
	var keys []string
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%08x", rng.Uint32())
		keys = append(keys, k)
		m.Add(kv.SeqNum(i+1), kv.KindSet, []byte(k), []byte(k))
	}
	sort.Strings(keys)
	it := m.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key().UserKey()) != keys[i] {
			t.Fatalf("position %d: got %q want %q", i, it.Key().UserKey(), keys[i])
		}
		if !bytes.Equal(it.Value(), []byte(keys[i])) {
			t.Fatalf("value mismatch at %d", i)
		}
		i++
	}
	if i != len(keys) {
		t.Errorf("iterated %d, want %d", i, len(keys))
	}
}

func TestIteratorBackward(t *testing.T) {
	m := New(12)
	var keys []string
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%08x", rng.Uint32())
		keys = append(keys, k)
		m.Add(kv.SeqNum(i+1), kv.KindSet, []byte(k), []byte(k))
	}
	sort.Strings(keys)

	// Full reverse scan.
	it := m.NewIterator()
	i := len(keys) - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if string(it.Key().UserKey()) != keys[i] {
			t.Fatalf("reverse position %d: got %q want %q", i, it.Key().UserKey(), keys[i])
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse scan stopped at %d", i)
	}

	// Seek then Prev: largest key < target.
	target := keys[150]
	it.Seek(kv.MakeSearchKey(nil, []byte(target), kv.MaxSeqNum))
	it.Prev()
	if !it.Valid() || string(it.Key().UserKey()) != keys[149] {
		t.Fatalf("seek+prev landed on %v", it.Key())
	}
	// Prev from the first entry invalidates.
	it.SeekToFirst()
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev before first entry should invalidate")
	}
	// Empty memtable.
	empty := New(1)
	eit := empty.NewIterator()
	eit.SeekToLast()
	if eit.Valid() {
		t.Fatal("SeekToLast on empty memtable valid")
	}
}
