package memtable

import (
	"fmt"
	"math/rand"
	"testing"

	"sealdb/internal/kv"
)

func BenchmarkAdd(b *testing.B) {
	m := New(1)
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(kv.SeqNum(i+1), kv.KindSet, fmt.Appendf(nil, "key%09d", i), val)
	}
}

func BenchmarkGetHit(b *testing.B) {
	m := New(1)
	const n = 10000
	for i := 0; i < n; i++ {
		m.Add(kv.SeqNum(i+1), kv.KindSet, fmt.Appendf(nil, "key%09d", i), []byte("v"))
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.Get(fmt.Appendf(nil, "key%09d", rng.Intn(n)), kv.MaxSeqNum); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkIterate(b *testing.B) {
	m := New(1)
	for i := 0; i < 10000; i++ {
		m.Add(kv.SeqNum(i+1), kv.KindSet, fmt.Appendf(nil, "key%09d", i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := m.NewIterator()
		n := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			n++
		}
		if n != 10000 {
			b.Fatal(n)
		}
	}
}
