// Package memtable implements the in-memory write buffer of the LSM
// tree: a skiplist ordered by internal key, as in LevelDB. Mutations
// are applied by a single writer; readers are synchronized by the DB.
package memtable

import (
	"math/rand"

	"sealdb/internal/kv"
)

const (
	maxHeight = 12
	branching = 4
)

type node struct {
	key   kv.InternalKey
	value []byte
	next  []*node
}

// MemTable is a skiplist of internal keys. The zero value is not
// usable; call New.
type MemTable struct {
	head   *node
	rnd    *rand.Rand
	height int
	size   int64
	count  int
}

// New creates an empty memtable. The seed makes skiplist tower
// heights deterministic for reproducible experiments.
func New(seed int64) *MemTable {
	return &MemTable{
		head:   &node{next: make([]*node, maxHeight)},
		rnd:    rand.New(rand.NewSource(seed)),
		height: 1,
	}
}

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(branching) == 0 {
		h++
	}
	return h
}

// findLessThan returns the rightmost node whose key is < target, or
// nil when no such node exists.
func (m *MemTable) findLessThan(target kv.InternalKey) *node {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil && kv.CompareInternal(next.key, target) < 0 {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findLast returns the final node of the list, or nil when empty.
func (m *MemTable) findLast() *node {
	x := m.head
	level := m.height - 1
	for {
		if next := x.next[level]; next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findGreaterOrEqual returns the first node with key >= target, and
// fills prev (when non-nil) with the rightmost node before target at
// every level.
func (m *MemTable) findGreaterOrEqual(target kv.InternalKey, prev []*node) *node {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil && kv.CompareInternal(next.key, target) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// Add inserts a mutation. Keys are copied; the caller may reuse its
// buffers.
func (m *MemTable) Add(seq kv.SeqNum, kind kv.Kind, ukey, value []byte) {
	ik := kv.MakeInternalKey(make([]byte, 0, len(ukey)+kv.TrailerLen), ukey, seq, kind)
	var v []byte
	if len(value) > 0 {
		v = append([]byte(nil), value...)
	}
	var prev [maxHeight]*node
	m.findGreaterOrEqual(ik, prev[:])

	h := m.randomHeight()
	if h > m.height {
		for i := m.height; i < h; i++ {
			prev[i] = m.head
		}
		m.height = h
	}
	n := &node{key: ik, value: v, next: make([]*node, h)}
	for i := 0; i < h; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	m.count++
	m.size += int64(len(ik)) + int64(len(v)) + int64(h)*8 + 48
}

// Get looks up ukey at snapshot seq. It returns the value and ok=true
// for a live entry, ok=true with deleted=true for a tombstone, and
// ok=false when the memtable holds nothing visible for the key.
func (m *MemTable) Get(ukey []byte, seq kv.SeqNum) (value []byte, deleted, ok bool) {
	var buf [64]byte
	search := kv.MakeSearchKey(buf[:0], ukey, seq)
	n := m.findGreaterOrEqual(search, nil)
	if n == nil || kv.CompareUser(n.key.UserKey(), ukey) != 0 {
		return nil, false, false
	}
	if n.key.Kind() == kv.KindDelete {
		return nil, true, true
	}
	return n.value, false, true
}

// ApproximateSize returns the memory consumed by entries, used to
// decide when to rotate the memtable.
func (m *MemTable) ApproximateSize() int64 { return m.size }

// Len returns the number of entries.
func (m *MemTable) Len() int { return m.count }

// Empty reports whether the memtable holds no entries.
func (m *MemTable) Empty() bool { return m.count == 0 }

// NewIterator returns a forward iterator over the skiplist. The
// iterator observes entries added after its creation (single-writer
// discipline makes this benign, matching LevelDB's memtable).
func (m *MemTable) NewIterator() kv.Iterator {
	return &iterator{m: m}
}

type iterator struct {
	m *MemTable
	n *node
}

func (it *iterator) Valid() bool { return it.n != nil }

func (it *iterator) SeekToFirst() { it.n = it.m.head.next[0] }

func (it *iterator) Seek(target kv.InternalKey) {
	it.n = it.m.findGreaterOrEqual(target, nil)
}

func (it *iterator) SeekToLast() { it.n = it.m.findLast() }

func (it *iterator) Next() { it.n = it.n.next[0] }

// Prev steps back by searching for the predecessor of the current
// key — O(log n) per step, the standard cost of a singly linked
// skiplist, exactly as LevelDB's memtable iterator works.
func (it *iterator) Prev() { it.n = it.m.findLessThan(it.n.key) }

func (it *iterator) Key() kv.InternalKey { return it.n.key }

func (it *iterator) Value() []byte { return it.n.value }

func (it *iterator) Error() error { return nil }
