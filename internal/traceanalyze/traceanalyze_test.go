package traceanalyze

import (
	"bytes"
	"strings"
	"testing"

	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/ycsb"
)

type store struct{ db *lsm.DB }

func (s store) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s store) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s store) ScanN(start []byte, n int) (int, error) {
	kvs, err := s.db.Scan(start, n)
	return len(kvs), err
}

// tracedRun opens a store with tracing on, runs a small YCSB load +
// workload A inside a Begin window, and returns the collected dump.
func tracedRun(t *testing.T, mode lsm.Mode) *Dump {
	t.Helper()
	cfg := lsm.DefaultConfig(mode)
	cfg.Geometry = lsm.ScaledGeometry(32*kv.KiB, 1*kv.GiB)
	cfg.JournalCapacity = 1 << 16
	cfg.Trace = lsm.TraceConfig{Enabled: true, SampleEvery: 8}
	db, err := lsm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	base := Begin(db)
	r := ycsb.NewRunner(store{db}, 512, 1)
	if err := r.LoadRandom(3000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ycsb.WorkloadA, 600); err != nil {
		t.Fatal(err)
	}
	return Collect(db, base)
}

// TestVerifySEALDB is the acceptance check: the live
// /debug/amplification numbers must match a recomputation from the
// raw dump within 1%.
func TestVerifySEALDB(t *testing.T) {
	d := tracedRun(t, lsm.ModeSEALDB)
	rep := Analyze(d)
	if err := rep.Verify(0.01); err != nil {
		t.Fatal(err)
	}
	if rep.TraceWrites == 0 || rep.TraceReads == 0 {
		t.Fatalf("empty trace: %d writes, %d reads", rep.TraceWrites, rep.TraceReads)
	}
	if rep.WA <= 1 {
		t.Fatalf("WA %.3f, want > 1 after compactions", rep.WA)
	}
	if rep.SampledSpanTrees == 0 {
		t.Fatal("no sampled span trees in the journal")
	}
	if len(rep.Bands) < 2 {
		t.Fatalf("band heatmap has %d rows, want several", len(rep.Bands))
	}
	if len(rep.Sets) == 0 {
		t.Fatal("no per-set write traffic found in compaction events")
	}
}

// TestVerifyLevelDB checks the fixed-band mode, where the media cache
// makes AWA > 1 and classifies part of the trace as cache traffic.
func TestVerifyLevelDB(t *testing.T) {
	d := tracedRun(t, lsm.ModeLevelDB)
	rep := Analyze(d)
	if err := rep.Verify(0.01); err != nil {
		t.Fatal(err)
	}
	if rep.CacheWriteBytes == 0 {
		t.Fatal("no media-cache writes classified on the fixed-band drive")
	}
	if rep.AWA <= 1 {
		t.Fatalf("AWA %.3f on fixed-band drive, want > 1", rep.AWA)
	}
	found := false
	for _, b := range rep.Bands {
		if b.Band == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("heatmap has no media-cache row (band -1)")
	}
}

// TestVerifyVlog is the same 1% live-vs-recomputed contract in the
// value-separated mode: vlog appends and GC rewrites must be
// attributed in the recomputation, or StoreBytes would diverge from
// the journal immediately.
func TestVerifyVlog(t *testing.T) {
	cfg := lsm.DefaultConfig(lsm.ModeSEALDB)
	cfg.Geometry = lsm.ScaledGeometry(32*kv.KiB, 1*kv.GiB)
	cfg.JournalCapacity = 1 << 16
	cfg.Trace = lsm.TraceConfig{Enabled: true, SampleEvery: 8}
	cfg.ValueThreshold = 128
	db, err := lsm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	base := Begin(db)
	r := ycsb.NewRunner(store{db}, 512, 1)
	if err := r.LoadRandom(3000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ycsb.WorkloadA, 600); err != nil {
		t.Fatal(err)
	}
	// Drain every GC victim so relocation traffic is in the window too.
	for {
		res, err := db.VlogGC()
		if err != nil {
			t.Fatal(err)
		}
		if res.Victim == 0 {
			break
		}
	}
	d := Collect(db, base)

	rep := Analyze(d)
	if err := rep.Verify(0.01); err != nil {
		t.Fatal(err)
	}
	if rep.VlogAppendBytes == 0 {
		t.Fatal("no vlog appends attributed from the journal")
	}
	if got, want := rep.VlogGCBytes, db.Stats().VlogGCBytes; got != want {
		t.Fatalf("recomputed GC rewrite bytes %d, live counter %d", got, want)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "vlog: appends") {
		t.Fatalf("report text missing the vlog line:\n%s", buf.String())
	}
}

// TestSpanTreesInDump asserts the dump's journal carries complete
// span trees: an op root with io children that have bytes and seek
// distances attributed.
func TestSpanTreesInDump(t *testing.T) {
	d := tracedRun(t, lsm.ModeSEALDB)
	var foundIO bool
	for _, root := range obs.SpanTrees(d.Events) {
		if !strings.HasPrefix(root.Type, "op_") {
			continue
		}
		if _, ok := root.Fields["seek_distance"]; !ok {
			t.Fatalf("op span %q missing seek_distance", root.Type)
		}
		for _, c := range root.Children {
			if c.Type == "io" && c.Fields["length"] > 0 {
				foundIO = true
			}
		}
	}
	if !foundIO {
		t.Fatal("no op span tree with an attributed io child")
	}
}

// TestDumpRoundTrip writes a dump to disk, reads it back, and checks
// the offline analysis matches the in-memory one.
func TestDumpRoundTrip(t *testing.T) {
	d := tracedRun(t, lsm.ModeSEALDB)
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDump(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := Analyze(d), Analyze(d2)
	if r1.TraceWriteBytes != r2.TraceWriteBytes || r1.RecomputedStore != r2.RecomputedStore ||
		r1.SampledSpanTrees != r2.SampledSpanTrees || len(r1.Bands) != len(r2.Bands) {
		t.Fatalf("offline analysis diverged: %+v vs %+v", r1, r2)
	}
	if err := r2.Verify(0.01); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r2.WriteText(&buf)
	for _, want := range []string{"WA  live", "AWA live", "hottest bands", "sampled span trees"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report text missing %q:\n%s", want, buf.String())
		}
	}
}
