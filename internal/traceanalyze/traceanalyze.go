// Package traceanalyze is the offline analyzer behind `smrtrace
// -analyze`: it turns a raw observability dump — the platter's
// physical access trace, the engine's event journal (span trees
// included), and a metadata snapshot — into per-band and per-set
// heatmaps plus an amplification report, and cross-checks the live
// /debug/amplification counters against a recomputation from the raw
// records.
//
// A dump is a directory of three files:
//
//	meta.json    — Meta: geometry, the traced window, live counters
//	trace.jsonl  — one platter.TraceEntry per line, in device order
//	events.jsonl — one obs.Event per line, oldest first
//
// The intended protocol is Begin → workload → Collect (→ Write):
// Begin enables the platter trace and the engine tracer and snapshots
// the counters, so the dump's window covers exactly the workload and
// none of the open/recovery traffic.
package traceanalyze

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

// Dump file names.
const (
	MetaFile   = "meta.json"
	TraceFile  = "trace.jsonl"
	EventsFile = "events.jsonl"
)

// Meta is the dump's metadata snapshot: the store's geometry, the
// device-clock window the trace covers, and the live amplification
// counters at both window edges (so the analyzer can form exact
// deltas to verify against).
type Meta struct {
	Mode         string `json:"mode"`
	BandSize     int64  `json:"band_size"`
	SSTableSize  int64  `json:"sstable_size"`
	DiskCapacity int64  `json:"disk_capacity"`
	// CacheStart is the raw-disk offset of the fixed-band drive's
	// media-cache region, or -1 when the mode's drive has none.
	CacheStart int64 `json:"cache_start"`
	NumLevels  int   `json:"num_levels"`

	// StartNS and EndNS bracket the traced window on the simulated
	// device clock (the journal's clock).
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`

	// Start and End are the overall amplification counters at the
	// window edges; End-Start is what the trace should explain.
	Start lsm.Amplification `json:"start"`
	End   lsm.Amplification `json:"end"`

	// StartLevelWriteBytes holds the per-level write-bytes counters at
	// the window start (indexed by level), matching Profile's counters
	// at the end.
	StartLevelWriteBytes []int64 `json:"start_level_write_bytes"`

	// Profile is the live /debug/amplification payload at Collect
	// time — the numbers the analyzer verifies.
	Profile lsm.AmplificationProfile `json:"profile"`

	// JournalDropped is how many events the journal ring evicted; when
	// nonzero the event-derived recomputations are lower bounds.
	JournalDropped int64 `json:"journal_dropped"`

	// Surface captures the storage-surface observatory at the window
	// edges in dynamic-band mode: the extent baseline the analyzer
	// replays raw allocator events from, and the live end state it
	// verifies the replay against. Nil outside dynamic-band mode.
	Surface *SurfaceMeta `json:"surface,omitempty"`
}

// SurfaceMeta is the observatory's window-edge state inside Meta.
type SurfaceMeta struct {
	// VlogEnabled gates the logical-bytes (and hence SA) recompute:
	// with key–value separation on, logical live bytes move through
	// vlog GC relocation paths the journal does not fully itemize.
	VlogEnabled bool `json:"vlog_enabled,omitempty"`
	// StartExtents is the tracked extent set at Begin — the state the
	// allocator-event replay starts from.
	StartExtents []lsm.SurfaceExtent `json:"start_extents"`
	// StartLogical is the logical live bytes (tables + vlog) at Begin.
	StartLogical int64 `json:"start_logical"`
	// End is the live space profile at Collect time.
	End lsm.SpaceProfile `json:"end"`
	// EndBands is the live per-band view at Collect time.
	EndBands []lsm.BandRow `json:"end_bands"`
}

// Baseline anchors a dump's window: counters captured by Begin.
type Baseline struct {
	NS             int64
	Amp            lsm.Amplification
	LevelWrite     []int64
	JournalDropped int64

	// Surface baseline (dynamic-band mode only, else nil/zero): the
	// extent table and logical live bytes at Begin.
	SurfaceExtents []lsm.SurfaceExtent
	SurfaceLogical int64
}

// Begin starts a traced window on db: it clears and enables the
// platter access trace, turns the engine tracer on, and snapshots the
// counters the analyzer will later diff against. Call before the
// workload under analysis.
func Begin(db *lsm.DB) *Baseline {
	db.Device().Disk.EnableTrace()
	db.SetTracing(true)
	p := db.AmplificationProfile()
	lw := make([]int64, len(p.Levels))
	for i, l := range p.Levels {
		lw[i] = l.WriteBytes
	}
	b := &Baseline{
		NS:         int64(db.Device().Disk.Stats().BusyTime),
		Amp:        p.Overall,
		LevelWrite: lw,
	}
	if db.Device().DBand != nil {
		b.SurfaceExtents = db.SurfaceExtents()
		b.SurfaceLogical = db.SpaceProfile().LogicalLiveBytes
	}
	return b
}

// Dump is an in-memory observability dump, ready to analyze or write.
type Dump struct {
	Meta   Meta
	Trace  []platter.TraceEntry
	Events []obs.Event
}

// Collect snapshots db into a Dump covering the window since base.
// The platter trace keeps accumulating; Collect copies it.
func Collect(db *lsm.DB, base *Baseline) *Dump {
	cfg := db.Config()
	cacheStart := int64(-1)
	if fbd, ok := smr.Base(db.Device().Drive).(*smr.FixedBandDrive); ok {
		cacheStart = fbd.CacheStart()
	}
	var surf *SurfaceMeta
	if db.Device().DBand != nil {
		// Close the window with a snapshot batch so the journal's last
		// band_snapshot rows describe the end state the analyzer
		// verifies its replay against.
		db.SurfaceSnapshot()
		surf = &SurfaceMeta{
			VlogEnabled:  cfg.ValueThreshold > 0,
			StartExtents: base.SurfaceExtents,
			StartLogical: base.SurfaceLogical,
			End:          db.SpaceProfile(),
			EndBands:     db.BandProfile().Bands,
		}
	}
	p := db.AmplificationProfile()
	return &Dump{
		Meta: Meta{
			Mode:                 cfg.Mode.String(),
			BandSize:             cfg.BandSize,
			SSTableSize:          cfg.SSTableSize,
			DiskCapacity:         cfg.DiskCapacity,
			CacheStart:           cacheStart,
			NumLevels:            cfg.NumLevels,
			StartNS:              base.NS,
			EndNS:                int64(db.Device().Disk.Stats().BusyTime),
			Start:                base.Amp,
			End:                  p.Overall,
			StartLevelWriteBytes: append([]int64(nil), base.LevelWrite...),
			Profile:              p,
			JournalDropped:       db.JournalDropped(),
			Surface:              surf,
		},
		Trace:  db.Device().Disk.Trace(),
		Events: db.Events(),
	}
}

// Write persists the dump into dir (created if needed).
func (d *Dump) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(&d.Meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, MetaFile), append(meta, '\n'), 0o644); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(dir, TraceFile), len(d.Trace), func(enc *obs.JSONLines, i int) error {
		return enc.Encode(&d.Trace[i])
	}); err != nil {
		return err
	}
	return writeJSONL(filepath.Join(dir, EventsFile), len(d.Events), func(enc *obs.JSONLines, i int) error {
		return enc.Encode(&d.Events[i])
	})
}

func writeJSONL(path string, n int, encode func(*obs.JSONLines, int) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := obs.NewJSONLines(f)
	for i := 0; i < n; i++ {
		if err := encode(enc, i); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ReadDump loads a dump directory written by Write.
func ReadDump(dir string) (*Dump, error) {
	meta, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return nil, fmt.Errorf("traceanalyze: %w", err)
	}
	d := &Dump{}
	if err := json.Unmarshal(meta, &d.Meta); err != nil {
		return nil, fmt.Errorf("traceanalyze: %s: %w", MetaFile, err)
	}
	if err := readJSONL(filepath.Join(dir, TraceFile), func(dec *json.Decoder) error {
		var e platter.TraceEntry
		if err := dec.Decode(&e); err != nil {
			return err
		}
		d.Trace = append(d.Trace, e)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("traceanalyze: %s: %w", TraceFile, err)
	}
	if err := readJSONL(filepath.Join(dir, EventsFile), func(dec *json.Decoder) error {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			return err
		}
		d.Events = append(d.Events, e)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("traceanalyze: %s: %w", EventsFile, err)
	}
	return d, nil
}

func readJSONL(path string, decode func(*json.Decoder) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	for dec.More() {
		if err := decode(dec); err != nil {
			return err
		}
	}
	return nil
}
