package traceanalyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"sealdb/internal/obs"
)

// BandStat is one band's share of the physical traffic — the per-band
// heatmap row. Band -1 aggregates the media-cache region.
type BandStat struct {
	Band       int64 `json:"band"`
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	ReadBytes  int64 `json:"read_bytes"`
	WriteBytes int64 `json:"write_bytes"`
}

// SetStat is one set's write traffic, from the journal's compaction
// events — the per-set heatmap row.
type SetStat struct {
	Set         int64 `json:"set"`
	Compactions int64 `json:"compactions"`
	WriteBytes  int64 `json:"write_bytes"`
}

// OpStat aggregates the sampled span trees of one operation type.
type OpStat struct {
	Op        string `json:"op"`
	Spans     int64  `json:"spans"`
	Slow      int64  `json:"slow"`
	IOs       int64  `json:"ios"`
	IOBytes   int64  `json:"io_bytes"`
	Seeks     int64  `json:"seeks"`
	ServiceNS int64  `json:"service_ns"`
}

// LevelCheck compares one level's live write-bytes counter delta
// against the recomputation from the journal's flush/compaction
// events, both expressed as WA shares (write bytes / user bytes).
type LevelCheck struct {
	Level           int     `json:"level"`
	LiveBytes       int64   `json:"live_bytes"`
	RecomputedBytes int64   `json:"recomputed_bytes"`
	LiveWA          float64 `json:"live_wa"`
	RecomputedWA    float64 `json:"recomputed_wa"`
}

// SurfaceBandCheck compares one band's live bytes at the window end —
// as reported by the journal's final band_snapshot batch — against the
// analyzer's replay of the raw allocator and dead-charge events.
type SurfaceBandCheck struct {
	Band            int64 `json:"band"`
	LiveBytes       int64 `json:"live_bytes"`
	RecomputedBytes int64 `json:"recomputed_bytes"`
}

// Report is the analyzer's output over one dump window.
type Report struct {
	Meta Meta `json:"meta"`

	// Live window amplification, from the counter deltas in Meta.
	UserBytes   int64   `json:"user_bytes"`
	StoreBytes  int64   `json:"store_bytes"`
	HostBytes   int64   `json:"host_bytes"`
	DeviceBytes int64   `json:"device_bytes"`
	WA          float64 `json:"wa"`
	AWA         float64 `json:"awa"`

	// Recomputed from the raw platter trace.
	TraceReads       int64   `json:"trace_reads"`
	TraceWrites      int64   `json:"trace_writes"`
	TraceReadBytes   int64   `json:"trace_read_bytes"`
	TraceWriteBytes  int64   `json:"trace_write_bytes"`
	CacheWriteBytes  int64   `json:"cache_write_bytes"`
	CacheReadBytes   int64   `json:"cache_read_bytes"`
	RecomputedAWA    float64 `json:"recomputed_awa"`
	RecomputedWA     float64 `json:"recomputed_wa"`
	RecomputedStore  int64   `json:"recomputed_store_bytes"`
	VlogAppendBytes  int64   `json:"vlog_append_bytes"`
	VlogGCBytes      int64   `json:"vlog_gc_bytes"`
	WindowEvents     int64   `json:"window_events"`
	EventsComplete   bool    `json:"events_complete"`
	SampledSpanTrees int64   `json:"sampled_span_trees"`
	OrphanSpans      int64   `json:"orphan_spans"`

	// Storage-surface replay (dynamic-band mode only): the analyzer
	// rebuilds the extent table from the window's raw dband_alloc_*,
	// dband_free, and band_dead events on top of the Meta baseline and
	// recomputes physical bytes, per-band live bytes, and space
	// amplification independently of the live observatory counters.
	SurfaceChecked     bool               `json:"surface_checked,omitempty"`
	RecomputedPhysical int64              `json:"recomputed_physical_bytes,omitempty"`
	RecomputedDead     int64              `json:"recomputed_dead_bytes,omitempty"`
	RecomputedLogical  int64              `json:"recomputed_logical_bytes,omitempty"`
	RecomputedSA       float64            `json:"recomputed_sa,omitempty"`
	SurfaceEvents      int64              `json:"surface_events,omitempty"`
	SnapshotEvents     int64              `json:"snapshot_events,omitempty"`
	SurfaceBands       []SurfaceBandCheck `json:"surface_bands,omitempty"`

	Levels []LevelCheck `json:"levels"`
	Bands  []BandStat   `json:"bands"`
	Sets   []SetStat    `json:"sets"`
	Ops    []OpStat     `json:"ops"`
}

// Analyze recomputes the window's amplification and heatmaps from the
// dump's raw records.
func Analyze(d *Dump) *Report {
	m := &d.Meta
	r := &Report{
		Meta:           *m,
		UserBytes:      m.End.UserBytes - m.Start.UserBytes,
		StoreBytes:     m.End.StoreBytes - m.Start.StoreBytes,
		HostBytes:      m.End.HostBytes - m.Start.HostBytes,
		DeviceBytes:    m.End.DeviceBytes - m.Start.DeviceBytes,
		EventsComplete: m.JournalDropped == 0,
	}
	if r.UserBytes > 0 {
		r.WA = float64(r.StoreBytes) / float64(r.UserBytes)
	}
	if r.HostBytes > 0 {
		r.AWA = float64(r.DeviceBytes) / float64(r.HostBytes)
	}

	r.analyzeTrace(d)
	r.analyzeEvents(d)
	r.analyzeSurface(d)
	return r
}

// analyzeTrace recomputes the device side from the raw platter trace:
// physical read/write totals, the media-cache split, the per-band
// heatmap, and AWA as (physical write bytes) / (host write bytes).
func (r *Report) analyzeTrace(d *Dump) {
	bands := map[int64]*BandStat{}
	bandOf := func(off int64) int64 {
		if r.Meta.CacheStart >= 0 && off >= r.Meta.CacheStart {
			return -1 // media-cache region
		}
		if r.Meta.BandSize <= 0 {
			return 0
		}
		return off / r.Meta.BandSize
	}
	for i := range d.Trace {
		e := &d.Trace[i]
		b := bands[bandOf(e.Offset)]
		if b == nil {
			b = &BandStat{Band: bandOf(e.Offset)}
			bands[b.Band] = b
		}
		n := int64(e.Length)
		inCache := b.Band == -1
		if e.Write {
			r.TraceWrites++
			r.TraceWriteBytes += n
			b.Writes++
			b.WriteBytes += n
			if inCache {
				r.CacheWriteBytes += n
			}
		} else {
			r.TraceReads++
			r.TraceReadBytes += n
			b.Reads++
			b.ReadBytes += n
			if inCache {
				r.CacheReadBytes += n
			}
		}
	}
	if r.HostBytes > 0 {
		r.RecomputedAWA = float64(r.TraceWriteBytes) / float64(r.HostBytes)
	}
	for _, b := range bands {
		r.Bands = append(r.Bands, *b)
	}
	sort.Slice(r.Bands, func(i, j int) bool { return r.Bands[i].Band < r.Bands[j].Band })
}

// analyzeEvents recomputes the logical side from the event journal:
// per-level write bytes from flush/compaction events inside the
// window, value-log appends and GC rewrites (store traffic that never
// enters a level, so they feed RecomputedStore only), the per-set
// write heatmap, and the sampled span-tree statistics.
func (r *Report) analyzeEvents(d *Dump) {
	levelWrite := make([]int64, r.Meta.NumLevels)
	sets := map[int64]*SetStat{}
	ops := map[string]*OpStat{}

	inWindow := func(e *obs.Event) bool {
		return e.StartNS >= r.Meta.StartNS && e.EndNS <= r.Meta.EndNS
	}
	for i := range d.Events {
		e := &d.Events[i]
		switch {
		case e.Type == "flush" && inWindow(e):
			r.WindowEvents++
			levelWrite[0] += e.Fields["bytes"]
			r.RecomputedStore += e.Fields["bytes"]
		case e.Type == "compaction" && inWindow(e):
			r.WindowEvents++
			if e.Fields["trivial"] != 0 {
				continue
			}
			to := e.Fields["to"]
			if to >= 0 && to < int64(len(levelWrite)) {
				levelWrite[to] += e.Fields["output_bytes"]
			}
			r.RecomputedStore += e.Fields["output_bytes"]
			if set, ok := e.Fields["set"]; ok {
				s := sets[set]
				if s == nil {
					s = &SetStat{Set: set}
					sets[set] = s
				}
				s.Compactions++
				s.WriteBytes += e.Fields["output_bytes"]
			}
		case e.Type == "vlog_append" && inWindow(e):
			r.WindowEvents++
			r.RecomputedStore += e.Fields["bytes"]
			r.VlogAppendBytes += e.Fields["bytes"]
		case e.Type == "vlog_gc" && inWindow(e):
			r.WindowEvents++
			r.RecomputedStore += e.Fields["relocated_bytes"]
			r.VlogGCBytes += e.Fields["relocated_bytes"]
		case strings.HasPrefix(e.Type, "op_"):
			op := ops[e.Type[len("op_"):]]
			if op == nil {
				op = &OpStat{Op: e.Type[len("op_"):]}
				ops[op.Op] = op
			}
			op.Spans++
			op.Slow += e.Fields["slow"]
			op.IOs += e.Fields["reads"] + e.Fields["writes"]
			op.IOBytes += e.Fields["read_bytes"] + e.Fields["write_bytes"]
			op.Seeks += e.Fields["seeks"]
			op.ServiceNS += e.Fields["service_ns"]
			r.SampledSpanTrees++
		}
	}
	if r.UserBytes > 0 {
		r.RecomputedWA = float64(r.RecomputedStore) / float64(r.UserBytes)
	}

	for l := 0; l < r.Meta.NumLevels; l++ {
		var live int64
		if l < len(r.Meta.Profile.Levels) {
			live = r.Meta.Profile.Levels[l].WriteBytes
		}
		if l < len(r.Meta.StartLevelWriteBytes) {
			live -= r.Meta.StartLevelWriteBytes[l]
		}
		lc := LevelCheck{Level: l, LiveBytes: live, RecomputedBytes: levelWrite[l]}
		if r.UserBytes > 0 {
			lc.LiveWA = float64(live) / float64(r.UserBytes)
			lc.RecomputedWA = float64(levelWrite[l]) / float64(r.UserBytes)
		}
		r.Levels = append(r.Levels, lc)
	}

	for _, s := range sets {
		r.Sets = append(r.Sets, *s)
	}
	sort.Slice(r.Sets, func(i, j int) bool { return r.Sets[i].WriteBytes > r.Sets[j].WriteBytes })
	for _, o := range ops {
		r.Ops = append(r.Ops, *o)
	}
	sort.Slice(r.Ops, func(i, j int) bool { return r.Ops[i].Op < r.Ops[j].Op })

	for _, n := range obs.SpanTrees(d.Events) {
		if n.ParentDropped {
			r.OrphanSpans++
		}
	}
}

// analyzeSurface replays the storage-surface observatory from raw
// journal events: starting from the Meta baseline's extent table, each
// dband_alloc_append/dband_alloc_insert inserts an extent, dband_free
// removes one, and band_dead accumulates dead bytes against one. The
// replayed end state yields physical bytes and per-band live bytes; the
// logical side is recomputed from flush/compaction level-byte deltas
// (exact only without the value log), giving an independent space
// amplification. Per-band live bytes are checked against the window's
// final band_snapshot batch — the events Collect journals on purpose so
// every dump ends with a snapshot.
func (r *Report) analyzeSurface(d *Dump) {
	sm := r.Meta.Surface
	if sm == nil {
		return
	}
	r.SurfaceChecked = true
	type replayExt struct{ length, dead int64 }
	exts := make(map[int64]*replayExt, len(sm.StartExtents))
	for _, e := range sm.StartExtents {
		exts[e.Off] = &replayExt{length: e.Len, dead: e.Dead}
	}
	logical := sm.StartLogical
	var lastBands map[int64]int64 // latest band_snapshot batch: band → live

	for i := range d.Events {
		e := &d.Events[i]
		if e.StartNS < r.Meta.StartNS || e.EndNS > r.Meta.EndNS {
			continue
		}
		switch e.Type {
		case "dband_alloc_append", "dband_alloc_insert":
			r.SurfaceEvents++
			exts[e.Fields["off"]] = &replayExt{length: e.Fields["len"]}
		case "dband_free":
			r.SurfaceEvents++
			delete(exts, e.Fields["off"])
		case "band_dead":
			r.SurfaceEvents++
			if x := exts[e.Fields["off"]]; x != nil {
				x.dead += e.Fields["bytes"]
				if x.dead > x.length {
					x.dead = x.length
				}
			}
		case "flush":
			logical += e.Fields["bytes"]
		case "compaction":
			if e.Fields["trivial"] == 0 {
				logical += e.Fields["output_bytes"] - e.Fields["input_bytes"]
			}
		case "space_snapshot":
			r.SnapshotEvents++
			lastBands = map[int64]int64{}
		case "band_snapshot":
			if lastBands != nil {
				lastBands[e.Fields["band"]] = e.Fields["live"]
			}
		}
	}

	// Bucket the replayed extents into bands, mirroring the live
	// accounting: alloc by overlap, dead spread proportionally with the
	// integer remainder on the extent's last band (surface.spreadDead).
	alloc := map[int64]int64{}
	dead := map[int64]int64{}
	stride := r.Meta.BandSize
	for off, x := range exts {
		r.RecomputedPhysical += x.length
		r.RecomputedDead += x.dead
		end := off + x.length
		last := (end - 1) / stride
		var assigned int64
		for b := off / stride; b <= last; b++ {
			lo, hi := b*stride, (b+1)*stride
			if off > lo {
				lo = off
			}
			if end < hi {
				hi = end
			}
			alloc[b] += hi - lo
			n := x.dead * (hi - lo) / x.length
			if b == last {
				n = x.dead - assigned
			}
			assigned += n
			dead[b] += n
		}
	}
	if !sm.VlogEnabled {
		r.RecomputedLogical = logical
		if logical > 0 {
			r.RecomputedSA = float64(r.RecomputedPhysical) / float64(logical)
		}
	}

	// Per-band live check against the final snapshot batch; fall back
	// to the Meta end rows when the window carries no snapshots.
	if lastBands == nil {
		lastBands = map[int64]int64{}
		for _, row := range sm.EndBands {
			if row.Alloc > 0 {
				lastBands[row.Band] = row.Live
			}
		}
	}
	seen := map[int64]bool{}
	for b, live := range lastBands {
		r.SurfaceBands = append(r.SurfaceBands, SurfaceBandCheck{
			Band: b, LiveBytes: live, RecomputedBytes: alloc[b] - dead[b],
		})
		seen[b] = true
	}
	for b := range alloc {
		if !seen[b] && alloc[b]-dead[b] != 0 {
			r.SurfaceBands = append(r.SurfaceBands, SurfaceBandCheck{
				Band: b, RecomputedBytes: alloc[b] - dead[b],
			})
		}
	}
	sort.Slice(r.SurfaceBands, func(i, j int) bool { return r.SurfaceBands[i].Band < r.SurfaceBands[j].Band })
}

// Verify cross-checks the live counters against the recomputations,
// within a relative tolerance (0.01 = 1%). It returns the first
// mismatch found, or nil when everything agrees. Event-derived checks
// are skipped when the journal ring dropped events.
func (r *Report) Verify(tol float64) error {
	if err := relCheck("device write bytes", float64(r.DeviceBytes), float64(r.TraceWriteBytes), tol); err != nil {
		return err
	}
	if r.HostBytes > 0 {
		if err := relCheck("AWA", r.AWA, r.RecomputedAWA, tol); err != nil {
			return err
		}
	}
	if !r.EventsComplete {
		return nil
	}
	if r.UserBytes > 0 {
		if err := relCheck("WA", r.WA, r.RecomputedWA, tol); err != nil {
			return err
		}
	}
	for _, lc := range r.Levels {
		if lc.LiveBytes == 0 && lc.RecomputedBytes == 0 {
			continue
		}
		if err := relCheck(fmt.Sprintf("level %d write bytes", lc.Level),
			float64(lc.LiveBytes), float64(lc.RecomputedBytes), tol); err != nil {
			return err
		}
	}
	if r.SurfaceChecked {
		end := r.Meta.Surface.End
		if err := relCheck("surface physical bytes",
			float64(end.PhysicalBytes), float64(r.RecomputedPhysical), tol); err != nil {
			return err
		}
		if err := relCheck("surface dead bytes",
			float64(end.SurfaceDeadBytes), float64(r.RecomputedDead), tol); err != nil {
			return err
		}
		if r.RecomputedLogical > 0 && end.SpaceAmplification > 0 {
			if err := relCheck("space amplification", end.SpaceAmplification, r.RecomputedSA, tol); err != nil {
				return err
			}
		}
		for _, bc := range r.SurfaceBands {
			if bc.LiveBytes == 0 && bc.RecomputedBytes == 0 {
				continue
			}
			if err := relCheck(fmt.Sprintf("band %d live bytes", bc.Band),
				float64(bc.LiveBytes), float64(bc.RecomputedBytes), tol); err != nil {
				return err
			}
		}
	}
	return nil
}

func relCheck(what string, live, recomputed, tol float64) error {
	diff := live - recomputed
	if diff < 0 {
		diff = -diff
	}
	base := live
	if base < 0 {
		base = -base
	}
	if base == 0 {
		if recomputed == 0 {
			return nil
		}
		return fmt.Errorf("traceanalyze: %s: live 0, recomputed %g", what, recomputed)
	}
	if diff/base > tol {
		return fmt.Errorf("traceanalyze: %s mismatch: live %g, recomputed %g (%.2f%% off, tolerance %.2f%%)",
			what, live, recomputed, 100*diff/base, 100*tol)
	}
	return nil
}

// WriteText renders the report for humans: the amplification
// cross-check, the hottest bands, the hottest sets, and the sampled
// span-tree statistics.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace window: mode %s, %.3fs of device time, %d physical accesses\n",
		r.Meta.Mode, float64(r.Meta.EndNS-r.Meta.StartNS)/1e9, r.TraceReads+r.TraceWrites)
	fmt.Fprintf(w, "amplification: user %s  store %s  host %s  device %s\n",
		mb(r.UserBytes), mb(r.StoreBytes), mb(r.HostBytes), mb(r.DeviceBytes))
	fmt.Fprintf(w, "  WA  live %.3f  recomputed %.3f (from %d journal flush/compaction events)\n",
		r.WA, r.RecomputedWA, r.WindowEvents)
	fmt.Fprintf(w, "  AWA live %.3f  recomputed %.3f (trace writes %s, of which media cache %s)\n",
		r.AWA, r.RecomputedAWA, mb(r.TraceWriteBytes), mb(r.CacheWriteBytes))
	if !r.EventsComplete {
		fmt.Fprintf(w, "  note: journal dropped %d events; event-derived numbers are lower bounds\n",
			r.Meta.JournalDropped)
	}
	if r.VlogAppendBytes > 0 || r.VlogGCBytes > 0 {
		fmt.Fprintf(w, "  vlog: appends %s  gc rewrites %s\n", mb(r.VlogAppendBytes), mb(r.VlogGCBytes))
	}
	if r.SurfaceChecked {
		end := r.Meta.Surface.End
		fmt.Fprintf(w, "storage surface (replayed from %d allocator events over %d bands, %d snapshot batches):\n",
			r.SurfaceEvents, len(r.SurfaceBands), r.SnapshotEvents)
		fmt.Fprintf(w, "  physical live %s  recomputed %s   dead live %s  recomputed %s\n",
			mb(end.PhysicalBytes), mb(r.RecomputedPhysical), mb(end.SurfaceDeadBytes), mb(r.RecomputedDead))
		if r.RecomputedLogical > 0 {
			fmt.Fprintf(w, "  SA  live %.3f  recomputed %.3f (logical live %s)\n",
				end.SpaceAmplification, r.RecomputedSA, mb(r.RecomputedLogical))
		} else {
			fmt.Fprintf(w, "  SA  live %.3f  (logical recompute skipped: value log enabled)\n",
				end.SpaceAmplification)
		}
		fmt.Fprintf(w, "  fragmentation: %d holes, largest free %s, index %.3f\n",
			end.Frag.Holes, mb(end.Frag.LargestFree), end.Frag.Index)
	}

	fmt.Fprintf(w, "per-level write bytes (live vs recomputed):\n")
	for _, lc := range r.Levels {
		if lc.LiveBytes == 0 && lc.RecomputedBytes == 0 {
			continue
		}
		fmt.Fprintf(w, "  L%d  %10s  %10s  WA %.3f\n", lc.Level, mb(lc.LiveBytes), mb(lc.RecomputedBytes), lc.LiveWA)
	}

	hot := append([]BandStat(nil), r.Bands...)
	sort.Slice(hot, func(i, j int) bool {
		return hot[i].ReadBytes+hot[i].WriteBytes > hot[j].ReadBytes+hot[j].WriteBytes
	})
	n := len(hot)
	if n > 10 {
		n = 10
	}
	fmt.Fprintf(w, "hottest bands (of %d touched):\n", len(r.Bands))
	for _, b := range hot[:n] {
		name := fmt.Sprintf("band %4d", b.Band)
		if b.Band == -1 {
			name = "mediacache"
		}
		fmt.Fprintf(w, "  %s  read %10s (%6d ops)  write %10s (%6d ops)\n",
			name, mb(b.ReadBytes), b.Reads, mb(b.WriteBytes), b.Writes)
	}

	if len(r.Sets) > 0 {
		n = len(r.Sets)
		if n > 10 {
			n = 10
		}
		fmt.Fprintf(w, "hottest sets (of %d written):\n", len(r.Sets))
		for _, s := range r.Sets[:n] {
			fmt.Fprintf(w, "  set %6d  %10s in %d compactions\n", s.Set, mb(s.WriteBytes), s.Compactions)
		}
	}

	if len(r.Ops) > 0 {
		fmt.Fprintf(w, "sampled span trees (%d, %d orphaned by the ring bound):\n",
			r.SampledSpanTrees, r.OrphanSpans)
		for _, o := range r.Ops {
			fmt.Fprintf(w, "  %-8s %6d spans  %6d slow  %8d ios  %10s  %8.3fms device\n",
				o.Op, o.Spans, o.Slow, o.IOs, mb(o.IOBytes), float64(o.ServiceNS)/1e6)
		}
	}
}

func mb(n int64) string {
	return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
}
