// Package history is the chaos harness's record of truth and its
// safety checker. It depends only on the standard library — no engine,
// no wire, no fault injectors — so a recorded campaign can be checked
// (or re-checked offline) without trusting any of the code under test.
//
// The model: a campaign is a sequence of rounds; each round is a
// sequence of lockstep ticks in which concurrent workers invoke
// operations against the store, and ends with a crash or graceful
// shutdown followed by recovery. Timestamps are logical — (tick,
// worker, seq) — so two runs of the same seed produce byte-identical
// histories regardless of wall-clock jitter.
//
// Every written value is tagged writer+key+version by the campaign
// runner, versions strictly increasing per key (puts and deletes both
// consume a version). That turns safety checking into bookkeeping on
// version numbers; see check.go for the properties.
package history

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Outcome classifies how the client observed one operation complete.
type Outcome string

const (
	// OutcomeOK: the server acknowledged success (for a read: a value
	// arrived and parsed as a tagged campaign value).
	OutcomeOK Outcome = "ok"
	// OutcomeNotFound: GET answered NOT_FOUND.
	OutcomeNotFound Outcome = "notfound"
	// OutcomeDegraded: the server rejected the op as read-only
	// degraded. Sticky until recovery (a checked property).
	OutcomeDegraded Outcome = "degraded"
	// OutcomeCorrupt: the server reported on-media corruption.
	OutcomeCorrupt Outcome = "corrupt"
	// OutcomeConn: transport-level failure; the op's fate at the
	// server is unknown (it may or may not have applied).
	OutcomeConn Outcome = "conn"
	// OutcomeTimeout: per-request timeout; fate unknown.
	OutcomeTimeout Outcome = "timeout"
	// OutcomeUnavailable: the server refused the op (full/shutting
	// down); treated as fate-unknown for writes.
	OutcomeUnavailable Outcome = "unavailable"
	// OutcomeClosed: client or remote store closed.
	OutcomeClosed Outcome = "closed"
	// OutcomeError: any other server-reported failure.
	OutcomeError Outcome = "error"
)

// OpKind is the operation type.
type OpKind string

const (
	// KindPut writes one tagged value.
	KindPut OpKind = "put"
	// KindDelete writes a tombstone (consumes a version like a put).
	KindDelete OpKind = "del"
	// KindGet reads one key.
	KindGet OpKind = "get"
)

// Op is one invoked operation. Logical time is (Tick, Worker, Seq):
// ops in the same tick ran concurrently; tick boundaries are barriers
// (every op of tick t completed before any op of tick t+1 started).
type Op struct {
	Tick   int `json:"t"`
	Worker int `json:"w"`
	// Seq orders ops issued by one worker within a tick (a writer's
	// burst is sequential).
	Seq  int    `json:"s"`
	Kind OpKind `json:"k"`
	Key  string `json:"key"`
	// Version: for writes, the per-key version this op was issued
	// (assigned at invoke, recorded whatever the outcome). For
	// OutcomeOK reads, the version parsed from the returned value;
	// -1 marks a value that failed to parse or mismatched its key
	// (always a violation). 0 on NotFound reads.
	Version int64   `json:"v,omitempty"`
	Outcome Outcome `json:"o"`
	// Note carries free-form diagnostic detail (e.g. the raw bytes of
	// an unparseable value, or the error string of OutcomeError).
	Note string `json:"note,omitempty"`
}

// RecoveredState is one key's state read back directly from the
// engine after a round's crash/close + recovery.
type RecoveredState struct {
	Present bool  `json:"present"`
	Version int64 `json:"v,omitempty"`
}

// Round is one campaign round: its ops, how it ended, and what
// recovery found.
type Round struct {
	Round int `json:"round"`
	// Kind names the round's fault plan: graceful, crash, net, disk,
	// flip.
	Kind string `json:"kind"`
	// Crashed: the round ended with a simulated power cut (true) or a
	// graceful close (false) before recovery.
	Crashed bool `json:"crashed"`
	Ops     []Op `json:"ops"`
	// Recovered maps every key the campaign has ever written to the
	// state the reopened engine reported for it.
	Recovered map[string]RecoveredState `json:"recovered"`
}

// History is a full campaign record.
type History struct {
	Seed    int64   `json:"seed"`
	Clients int     `json:"clients"`
	Ticks   int     `json:"ticks"`
	Faults  string  `json:"faults"`
	Rounds  []Round `json:"rounds"`
}

// Canonical returns the history's canonical JSON encoding: indented,
// map keys sorted (encoding/json sorts them), no wall-clock content —
// two same-seed runs must produce identical bytes.
func (h *History) Canonical() ([]byte, error) {
	return json.MarshalIndent(h, "", " ")
}

// Hash returns the SHA-256 of the canonical encoding, the one-line
// fingerprint sealdb-chaos prints for replay comparison.
func (h *History) Hash() (string, error) {
	b, err := h.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Violation is one checker finding.
type Violation struct {
	Round  int    `json:"round"`
	Tick   int    `json:"tick"`
	Worker int    `json:"worker"`
	Key    string `json:"key,omitempty"`
	// Kind: durability, phantom, stale, session, degraded-unsticky,
	// recovery-phantom.
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("round %d tick %d worker %d key %s: %s: %s",
		v.Round, v.Tick, v.Worker, v.Key, v.Kind, v.Detail)
}
