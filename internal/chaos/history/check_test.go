package history

import (
	"strings"
	"testing"
)

// ops below use worker 0 as the writer of key "k" and worker 1 as a
// reader, mirroring the campaign's single-writer-per-key sharding.

func put(tick, seq int, ver int64, o Outcome) Op {
	return Op{Tick: tick, Worker: 0, Seq: seq, Kind: KindPut, Key: "k", Version: ver, Outcome: o}
}

func del(tick, seq int, ver int64, o Outcome) Op {
	return Op{Tick: tick, Worker: 0, Seq: seq, Kind: KindDelete, Key: "k", Version: ver, Outcome: o}
}

func get(tick, worker int, ver int64, o Outcome) Op {
	return Op{Tick: tick, Worker: worker, Kind: KindGet, Key: "k", Version: ver, Outcome: o}
}

func round(n int, crashed bool, recovered RecoveredState, ops ...Op) Round {
	return Round{
		Round: n, Kind: "test", Crashed: crashed, Ops: ops,
		Recovered: map[string]RecoveredState{"k": recovered},
	}
}

// wantViolation asserts exactly one violation of the given kind.
func wantViolation(t *testing.T, got []Violation, kind, detailPart string) {
	t.Helper()
	if len(got) != 1 {
		t.Fatalf("got %d violations %v, want exactly 1 of kind %q", len(got), got, kind)
	}
	if got[0].Kind != kind {
		t.Fatalf("violation kind = %q (%s), want %q", got[0].Kind, got[0], kind)
	}
	if !strings.Contains(got[0].Detail, detailPart) {
		t.Fatalf("violation detail %q does not mention %q", got[0].Detail, detailPart)
	}
}

func TestCleanHistoryPasses(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, false, RecoveredState{Present: true, Version: 2},
			put(0, 0, 1, OutcomeOK),
			put(1, 0, 2, OutcomeOK),
			get(2, 1, 2, OutcomeOK),
		),
		round(1, true, RecoveredState{Present: true, Version: 3},
			get(0, 1, 2, OutcomeOK),
			put(1, 0, 3, OutcomeOK),
			put(2, 0, 4, OutcomeConn), // fate unknown: lost is legal
		),
	}}
	if got := Check(h); len(got) != 0 {
		t.Fatalf("clean history flagged: %v", got)
	}
}

func TestUnknownFateWriteMayApply(t *testing.T) {
	// A conn-failed write may still have committed; recovering it is
	// legal, as is a later read observing it.
	h := &History{Rounds: []Round{
		round(0, true, RecoveredState{Present: true, Version: 2},
			put(0, 0, 1, OutcomeOK),
			put(1, 0, 2, OutcomeConn),
		),
		round(1, false, RecoveredState{Present: true, Version: 2},
			get(0, 1, 2, OutcomeOK),
		),
	}}
	if got := Check(h); len(got) != 0 {
		t.Fatalf("unknown-fate apply flagged: %v", got)
	}
}

func TestAckedWriteLostIsDurabilityViolation(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, true, RecoveredState{Present: true, Version: 1},
			put(0, 0, 1, OutcomeOK),
			put(1, 0, 2, OutcomeOK), // acked but recovery shows v1
		),
	}}
	wantViolation(t, Check(h), "durability", "version 2 was acked")
}

func TestAckedPutVanishingIsDurabilityViolation(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, true, RecoveredState{Present: false},
			put(0, 0, 1, OutcomeOK),
		),
	}}
	wantViolation(t, Check(h), "durability", "version 1 lost")
}

func TestAckedDeleteDurableAbsenceIsLegal(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, true, RecoveredState{Present: false},
			put(0, 0, 1, OutcomeOK),
			del(1, 0, 2, OutcomeOK),
		),
	}}
	if got := Check(h); len(got) != 0 {
		t.Fatalf("acked delete flagged: %v", got)
	}
}

func TestPhantomValueIsFlagged(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, false, RecoveredState{Present: true, Version: 1},
			put(0, 0, 1, OutcomeOK),
			get(1, 1, 7, OutcomeOK), // version 7 never issued
		),
	}}
	wantViolation(t, Check(h), "phantom", "never issued")
}

func TestUnparseableValueIsFlagged(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, false, RecoveredState{Present: true, Version: 1},
			put(0, 0, 1, OutcomeOK),
			Op{Tick: 1, Worker: 1, Kind: KindGet, Key: "k", Version: -1, Outcome: OutcomeOK, Note: "garbage"},
		),
	}}
	wantViolation(t, Check(h), "phantom", "does not parse")
}

func TestStaleReadBelowAckedFloorIsFlagged(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, false, RecoveredState{Present: true, Version: 2},
			put(0, 0, 1, OutcomeOK),
			put(1, 0, 2, OutcomeOK),
			get(2, 1, 1, OutcomeOK), // v2 acked a tick earlier
		),
	}}
	wantViolation(t, Check(h), "stale", "below the acked")
}

func TestSessionMonotonicityRegressionIsFlagged(t *testing.T) {
	// Reader observes v2, then v1: a session regression even if some
	// other replica could legally serve v1.
	c := NewChecker()
	c.RealTime = false // isolate the session check from the global floor
	r := round(0, false, RecoveredState{Present: true, Version: 2},
		put(0, 0, 1, OutcomeOK),
		put(1, 0, 2, OutcomeOK),
		get(2, 1, 2, OutcomeOK),
		get(3, 1, 1, OutcomeOK),
	)
	wantViolation(t, c.CheckRound(&r), "session", "already observed 2")
}

func TestNotFoundAfterObservationNeedsDelete(t *testing.T) {
	c := NewChecker()
	c.RealTime = false
	r := round(0, false, RecoveredState{Present: true, Version: 1},
		put(0, 0, 1, OutcomeOK),
		get(1, 1, 1, OutcomeOK),
		get(2, 1, 0, OutcomeNotFound), // no delete was ever issued
	)
	wantViolation(t, c.CheckRound(&r), "session", "no delete")
}

func TestNotFoundWithInterveningDeleteIsLegal(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, false, RecoveredState{Present: false},
			put(0, 0, 1, OutcomeOK),
			get(1, 1, 1, OutcomeOK),
			del(2, 0, 2, OutcomeOK),
			get(3, 1, 0, OutcomeNotFound),
		),
	}}
	if got := Check(h); len(got) != 0 {
		t.Fatalf("legal NOT_FOUND flagged: %v", got)
	}
}

func TestDegradedStickinessViolation(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, true, RecoveredState{Present: true, Version: 3},
			put(0, 0, 1, OutcomeOK),
			put(1, 0, 2, OutcomeDegraded), // store declared itself degraded...
			put(2, 0, 3, OutcomeOK),       // ...then accepted a later write
		),
	}}
	wantViolation(t, Check(h), "degraded-unsticky", "after DEGRADED")
}

func TestDegradedStaysDegradedIsLegal(t *testing.T) {
	h := &History{Rounds: []Round{
		round(0, true, RecoveredState{Present: true, Version: 1},
			put(0, 0, 1, OutcomeOK),
			put(1, 0, 2, OutcomeDegraded),
			put(2, 0, 3, OutcomeDegraded),
			get(3, 1, 1, OutcomeOK), // reads still work while degraded
		),
	}}
	if got := Check(h); len(got) != 0 {
		t.Fatalf("sticky degraded flagged: %v", got)
	}
}

func TestRecoveryPhantomIsFlagged(t *testing.T) {
	h := &History{Rounds: []Round{
		{
			Round: 0, Kind: "test", Crashed: true,
			Ops: []Op{put(0, 0, 1, OutcomeOK)},
			Recovered: map[string]RecoveredState{
				"k":     {Present: true, Version: 1},
				"other": {Present: true, Version: 5}, // never written
			},
		},
	}}
	wantViolation(t, Check(h), "recovery-phantom", "never written")
}

func TestStateMayNotRegressAcrossLaterRounds(t *testing.T) {
	// Round 0 recovers v2 (both acked). Round 1 has no writes; its
	// recovery reports v1 — stale state resurrected.
	h := &History{Rounds: []Round{
		round(0, true, RecoveredState{Present: true, Version: 2},
			put(0, 0, 1, OutcomeOK),
			put(1, 0, 2, OutcomeOK),
		),
		round(1, true, RecoveredState{Present: true, Version: 1},
			get(0, 1, 2, OutcomeOK),
		),
	}}
	wantViolation(t, Check(h), "durability", "version 2 was acked")
}

func TestCanonicalEncodingIsStable(t *testing.T) {
	h := &History{Seed: 7, Clients: 2, Ticks: 3, Faults: "all", Rounds: []Round{
		round(0, false, RecoveredState{Present: true, Version: 1}, put(0, 0, 1, OutcomeOK)),
	}}
	a, err := h.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("canonical encoding not stable across calls")
	}
	h1, err := h.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := h.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash unstable or malformed: %q vs %q", h1, h2)
	}
}
