package history

import (
	"fmt"
	"sort"
)

// Checker verifies safety properties over a campaign history, one
// round at a time. The properties, per key:
//
//  1. Durability: a write acknowledged OK (or a version some read
//     already observed — observation implies the WAL record landed)
//     is never lost: after recovery the key's state never regresses
//     below the highest acked/observed version ("the floor").
//  2. No phantoms: a read never returns a value that was never
//     written — unparseable values, versions never issued, or
//     versions issued as deletes.
//  3. Session monotonicity: one client never reads a version older
//     than one it already observed, nor older than its own acked
//     writes; NOT_FOUND after observing a value requires an
//     intervening delete to have been issued.
//  4. Degraded stickiness: once any client saw DEGRADED in a round,
//     no later tick's write may succeed until recovery.
//
// With RealTime set (the campaign's lockstep mode, where tick
// boundaries are barriers), checks 1–3 use the global cross-client
// floor: an ack or observation in tick t happened-before every op in
// tick t+1. Without it (free-running stress mode) only per-client
// session checks and phantom checks apply, since cross-client
// ordering is unknown.
//
// Fate-unknown outcomes (conn, timeout, unavailable) assert nothing:
// such a write may or may not have applied, so it widens the legal
// window instead of constraining it.
type Checker struct {
	// RealTime enables the cross-client checks that rely on tick
	// barriers. NewChecker sets it.
	RealTime bool

	keys map[string]*keyState
	// seen is each worker's session floor: the highest version of a
	// key the worker has observed (reads) or had acked (its writes).
	seen map[int]map[string]int64
}

// keyState is the checker's per-key bookkeeping, persistent across
// rounds.
type keyState struct {
	n     int64            // highest version issued
	kinds map[int64]OpKind // version -> KindPut/KindDelete

	// The durable floor: state at floorVer is known applied and
	// durable (acked, observed, or recovered). floorPresent is the
	// state's polarity: true = value floorVer present, false =
	// deleted as of floorVer.
	floorVer     int64
	floorPresent bool
}

// NewChecker returns a checker for lockstep (RealTime) histories.
func NewChecker() *Checker {
	return &Checker{
		RealTime: true,
		keys:     map[string]*keyState{},
		seen:     map[int]map[string]int64{},
	}
}

// Check runs a fresh checker over a whole history.
func Check(h *History) []Violation {
	c := NewChecker()
	var out []Violation
	for i := range h.Rounds {
		out = append(out, c.CheckRound(&h.Rounds[i])...)
	}
	return out
}

func (c *Checker) key(k string) *keyState {
	ks := c.keys[k]
	if ks == nil {
		ks = &keyState{kinds: map[int64]OpKind{}}
		c.keys[k] = ks
	}
	return ks
}

func (c *Checker) workerSeen(w int) map[string]int64 {
	m := c.seen[w]
	if m == nil {
		m = map[string]int64{}
		c.seen[w] = m
	}
	return m
}

// register records a write invocation. Versions must be issued in
// strictly increasing order per key; the campaign runner guarantees
// contiguity, the checker only requires monotonicity.
func (c *Checker) register(op *Op) *Violation {
	ks := c.key(op.Key)
	if op.Version <= ks.n {
		v := violation(op, "phantom",
			fmt.Sprintf("write issued version %d but %d was already issued", op.Version, ks.n))
		return &v
	}
	ks.n = op.Version
	ks.kinds[op.Version] = op.Kind
	return nil
}

// hasDeleteAfter reports whether any version in (after, n] is a
// delete.
func (ks *keyState) hasDeleteAfter(after int64) bool {
	for v := after + 1; v <= ks.n; v++ {
		if ks.kinds[v] == KindDelete {
			return true
		}
	}
	return false
}

func violation(op *Op, kind, detail string) Violation {
	return Violation{Round: -1, Tick: op.Tick, Worker: op.Worker, Key: op.Key, Kind: kind, Detail: detail}
}

// CheckRound verifies one round against the state accumulated from
// earlier rounds, updating that state (floors advance with acks,
// observations, and the recovered snapshot). Violations are returned
// in deterministic order.
func (c *Checker) CheckRound(r *Round) []Violation {
	var out []Violation
	report := func(v Violation) {
		v.Round = r.Round
		out = append(out, v)
	}

	ops := make([]*Op, len(r.Ops))
	for i := range r.Ops {
		ops[i] = &r.Ops[i]
	}
	sort.SliceStable(ops, func(i, j int) bool {
		a, b := ops[i], ops[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Seq < b.Seq
	})

	// Degraded stickiness: the first tick where any client saw
	// DEGRADED; OK writes in strictly later ticks violate it (same
	// tick is concurrent, so ordering is undefined there).
	firstDegraded := -1
	for _, op := range ops {
		if op.Outcome == OutcomeDegraded {
			firstDegraded = op.Tick
			break
		}
	}

	if !c.RealTime {
		// Without barriers, tick numbers carry no ordering: register
		// every write up front so phantom checks see the full issued
		// set, and skip the cross-client floor checks below.
		for _, op := range ops {
			if op.Kind == KindPut || op.Kind == KindDelete {
				if v := c.register(op); v != nil {
					report(*v)
				}
			}
		}
	}

	// Walk ticks in order: register writes, validate reads, then
	// advance floors with the tick's acks and observations (they
	// happened-before everything in later ticks).
	i := 0
	for i < len(ops) {
		j := i
		tick := ops[i].Tick
		for j < len(ops) && ops[j].Tick == tick {
			j++
		}
		tickOps := ops[i:j]
		i = j

		if c.RealTime {
			for _, op := range tickOps {
				if op.Kind == KindPut || op.Kind == KindDelete {
					if v := c.register(op); v != nil {
						report(*v)
					}
				}
			}
		}

		for _, op := range tickOps {
			switch op.Kind {
			case KindGet:
				if v := c.checkRead(op); v != nil {
					report(*v)
				}
			case KindPut, KindDelete:
				if op.Outcome == OutcomeOK && firstDegraded >= 0 && op.Tick > firstDegraded {
					report(violation(op, "degraded-unsticky",
						fmt.Sprintf("write version %d succeeded after DEGRADED was observed at tick %d", op.Version, firstDegraded)))
				}
			}
		}

		// Advance floors at the tick barrier.
		for _, op := range tickOps {
			switch {
			case op.Kind == KindGet && op.Outcome == OutcomeOK && op.Version > 0:
				// A phantom observation (version never issued as a
				// put) is already flagged; it must not poison the
				// floors and cascade into spurious violations.
				ks := c.key(op.Key)
				if op.Version > ks.n || ks.kinds[op.Version] != KindPut {
					break
				}
				ws := c.workerSeen(op.Worker)
				if op.Version > ws[op.Key] {
					ws[op.Key] = op.Version
				}
				if c.RealTime && op.Version > ks.floorVer {
					ks.floorVer, ks.floorPresent = op.Version, true
				}
			case (op.Kind == KindPut || op.Kind == KindDelete) && op.Outcome == OutcomeOK:
				ws := c.workerSeen(op.Worker)
				if op.Version > ws[op.Key] {
					ws[op.Key] = op.Version
				}
				if c.RealTime {
					ks := c.key(op.Key)
					if op.Version > ks.floorVer {
						ks.floorVer, ks.floorPresent = op.Version, op.Kind == KindPut
					}
				}
			}
		}
	}

	out = append(out, c.checkRecovered(r)...)
	return out
}

// checkRead validates one completed GET against the floors.
func (c *Checker) checkRead(op *Op) *Violation {
	ks := c.keys[op.Key]
	switch op.Outcome {
	case OutcomeOK:
		if op.Version < 0 {
			v := violation(op, "phantom", "read returned a value that does not parse as a campaign value: "+op.Note)
			return &v
		}
		if ks == nil || op.Version == 0 || op.Version > ks.n {
			v := violation(op, "phantom",
				fmt.Sprintf("read returned version %d, never issued for this key", op.Version))
			return &v
		}
		if ks.kinds[op.Version] != KindPut {
			v := violation(op, "phantom",
				fmt.Sprintf("read returned version %d, which was issued as a delete", op.Version))
			return &v
		}
		if seen := c.workerSeen(op.Worker)[op.Key]; op.Version < seen {
			v := violation(op, "session",
				fmt.Sprintf("read returned version %d but this client already observed %d", op.Version, seen))
			return &v
		}
		if c.RealTime && op.Version < ks.floorVer {
			v := violation(op, "stale",
				fmt.Sprintf("read returned version %d below the acked/observed floor %d", op.Version, ks.floorVer))
			return &v
		}
	case OutcomeNotFound:
		if ks == nil {
			return nil // never written: NOT_FOUND is the only right answer
		}
		// seen-1: the session floor itself may be a delete the client
		// had acked, which makes NOT_FOUND consistent.
		if seen := c.workerSeen(op.Worker)[op.Key]; seen > 0 && !ks.hasDeleteAfter(seen-1) {
			v := violation(op, "session",
				fmt.Sprintf("NOT_FOUND but this client observed version %d and no delete >= it was issued", seen))
			return &v
		}
		if c.RealTime && ks.floorPresent && !ks.hasDeleteAfter(ks.floorVer) {
			v := violation(op, "stale",
				fmt.Sprintf("NOT_FOUND but version %d is acked/observed durable and no later delete was issued", ks.floorVer))
			return &v
		}
	}
	return nil
}

// checkRecovered validates the post-recovery snapshot and collapses
// each key's floor onto the recovered state (disk state only moves
// forward: a later round may not resurrect anything older).
func (c *Checker) checkRecovered(r *Round) []Violation {
	if r.Recovered == nil {
		return nil
	}
	var out []Violation
	keys := make([]string, 0, len(r.Recovered))
	for k := range r.Recovered {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lastTick := 0
	for i := range r.Ops {
		if r.Ops[i].Tick > lastTick {
			lastTick = r.Ops[i].Tick
		}
	}
	for _, k := range keys {
		st := r.Recovered[k]
		ks := c.keys[k]
		rep := func(kind, detail string) {
			out = append(out, Violation{Round: r.Round, Tick: lastTick, Worker: -1, Key: k, Kind: kind, Detail: detail})
		}
		if ks == nil {
			if st.Present {
				rep("recovery-phantom", fmt.Sprintf("recovery found version %d for a key never written", st.Version))
			}
			continue
		}
		if st.Present {
			switch {
			case st.Version <= 0 || st.Version > ks.n:
				rep("recovery-phantom", fmt.Sprintf("recovery found version %d, never issued", st.Version))
			case ks.kinds[st.Version] != KindPut:
				rep("recovery-phantom", fmt.Sprintf("recovery found version %d, which was issued as a delete", st.Version))
			case st.Version < ks.floorVer:
				rep("durability", fmt.Sprintf("recovery found version %d but version %d was acked/observed durable", st.Version, ks.floorVer))
			default:
				ks.floorVer, ks.floorPresent = st.Version, true
			}
			continue
		}
		// Key absent after recovery.
		if ks.floorPresent {
			if !ks.hasDeleteAfter(ks.floorVer) {
				rep("durability", fmt.Sprintf("acked/observed version %d lost: key absent after recovery with no later delete issued", ks.floorVer))
				continue
			}
			// The earliest delete past the floor is the most
			// conservative consistent explanation; pin the floor there
			// so a later round resurrecting older state is caught.
			for v := ks.floorVer + 1; v <= ks.n; v++ {
				if ks.kinds[v] == KindDelete {
					ks.floorVer, ks.floorPresent = v, false
					break
				}
			}
		}
	}
	return out
}
