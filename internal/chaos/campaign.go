package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sealdb/internal/chaos/history"
	"sealdb/internal/chaos/netfault"
	"sealdb/internal/faultfs"
	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/sealclient"
	"sealdb/internal/server"
	"sealdb/internal/smr"
)

// runner is one campaign in progress.
type runner struct {
	cfg    Config
	lsmCfg lsm.Config
	dev    *lsm.Device
	fd     *faultfs.Drive

	proxies []*netfault.Proxy
	clients []*sealclient.Client

	// nextVer allocates per-key write versions across the whole
	// campaign; every write attempt consumes one whatever its outcome.
	nextVer map[string]int64
}

// Run executes one full campaign and returns its history; the
// history is complete for the rounds that ran even when err is
// non-nil. Two runs with the same Config produce byte-identical
// canonical histories: every schedule choice, fault point, and value
// derives from Config.Seed; the engine runs no background threads
// (flush and compaction are synchronous on the writer's apply path,
// so device write counts follow the op schedule exactly); fault
// windows only ever overlap a single sequential worker; and all
// timestamps are logical.
func Run(cfg Config) (*history.History, error) {
	cfg.applyDefaults()
	r := &runner{cfg: cfg, nextVer: map[string]int64{}}

	lsmCfg := lsm.DefaultConfig(lsm.ModeSEALDB)
	lsmCfg.Geometry = lsm.ScaledGeometry(32*kv.KiB, 256*kv.MiB)
	// A block cache big enough that nothing is ever evicted: cache
	// residency then depends only on the set of blocks ever read, not
	// on the order concurrent readers touched them, which run-to-run
	// goroutine scheduling does not control.
	lsmCfg.BlockCacheSize = 8 * kv.MiB
	lsmCfg.Seed = cfg.Seed
	if cfg.Vlog {
		lsmCfg.ValueThreshold = 64
	}
	lsmCfg.WrapDrive = func(inner smr.Drive) smr.Drive {
		r.fd = faultfs.New(inner, cfg.Seed)
		return r.fd
	}
	r.lsmCfg = lsmCfg
	r.dev = lsm.NewDevice(lsmCfg)

	h := &history.History{Seed: cfg.Seed, Clients: cfg.Clients, Ticks: cfg.Ticks, Faults: cfg.Faults.String()}
	for round := 0; round < cfg.Rounds; round++ {
		plan := buildPlan(&cfg, round)
		rd, err := r.runRound(round, plan)
		h.Rounds = append(h.Rounds, rd)
		if err != nil {
			return h, fmt.Errorf("chaos: round %d (%s): %w", round, plan.kind, err)
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "round %d/%d kind=%-8s ops=%d\n", round+1, cfg.Rounds, plan.kind, len(rd.Ops))
		}
	}
	return h, nil
}

// execOp is a plannedOp resolved to its key and (for writes) version.
type execOp struct {
	kind    history.OpKind
	key     string
	version int64
}

// materialize resolves the plan's shard coordinates to keys and
// assigns write versions in issue order.
func (r *runner) materialize(plan *roundPlan) [][][]execOp {
	out := make([][][]execOp, len(plan.ticks))
	for t := range plan.ticks {
		tp := &plan.ticks[t]
		out[t] = make([][]execOp, len(tp.ops))
		for w, ops := range tp.ops {
			eops := make([]execOp, len(ops))
			for i, op := range ops {
				e := execOp{kind: op.kind, key: campaignKey(op.owner, op.keyIdx)}
				if op.kind != history.KindGet {
					r.nextVer[e.key]++
					e.version = r.nextVer[e.key]
				}
				eops[i] = e
			}
			out[t][w] = eops
		}
	}
	return out
}

// runRound serves one round: open (recovering the previous round's
// state), run the ticks with their faults, tear down — gracefully or
// by crash — then recover, fsck, and capture the recovered state for
// the checker.
func (r *runner) runRound(round int, plan *roundPlan) (history.Round, error) {
	rd := history.Round{Round: round, Kind: plan.kind, Crashed: plan.crash}
	db, err := lsm.OpenDevice(r.lsmCfg, r.dev)
	if err != nil {
		return rd, fmt.Errorf("open: %w", err)
	}
	var flip *flipState
	if plan.flip {
		flip = r.applyFlip(db, plan)
	}
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{
		// One request per commit group: the device write sequence
		// follows the writer's op order exactly.
		CoalesceMaxRequests: 1,
		DrainTimeout:        2 * time.Second,
	})
	if err != nil {
		db.Close()
		return rd, fmt.Errorf("serve: %w", err)
	}
	if err := r.dialWorkers(round, srv.Addr().String()); err != nil {
		srv.Close()
		db.Close()
		return rd, err
	}

	exec := r.materialize(plan)
	for t := range plan.ticks {
		rd.Ops = append(rd.Ops, r.runTick(t, &plan.ticks[t], exec[t])...)
	}

	r.teardownWorkers()
	srv.Close() // nothing is in flight at a tick barrier; the drain is trivial

	if plan.crash {
		// The doomed DB is dropped without Close, as a dead host's
		// would be; recovery must work from the media alone.
		r.fd.PowerOn()
	} else {
		r.revertFlip(db, flip)
		if cerr := db.Close(); cerr != nil && r.cfg.Log != nil {
			// A store degraded by an injected permanent fault may
			// fail its final flush; recovery below replays the WAL.
			fmt.Fprintf(r.cfg.Log, "round %d: close: %v\n", round, cerr)
		}
	}

	db2, err := lsm.OpenDevice(r.lsmCfg, r.dev)
	if err != nil {
		return rd, fmt.Errorf("recover: %w", err)
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err != nil {
		return rd, fmt.Errorf("fsck after recovery: %w", err)
	}
	// Rebuild-on-recovery contract: the storage-surface accounting the
	// reopen rebuilt from the manifest must equal a fresh scan of the
	// extent table (no-op outside dynamic-band mode).
	if err := db2.VerifySurface(); err != nil {
		return rd, fmt.Errorf("surface accounting after recovery: %w", err)
	}
	rd.Recovered, err = r.captureRecovered(db2)
	if err != nil {
		return rd, fmt.Errorf("recovered capture: %w", err)
	}
	return rd, nil
}

// dialWorkers stands up one fault proxy and one single-connection
// client per worker, each with an injected no-op sleeper and a seeded
// rand so retry backoff adds no wall-clock or nondeterminism.
func (r *runner) dialWorkers(round int, target string) error {
	r.proxies = make([]*netfault.Proxy, r.cfg.Clients)
	r.clients = make([]*sealclient.Client, r.cfg.Clients)
	for w := 0; w < r.cfg.Clients; w++ {
		p, err := netfault.Listen(target)
		if err != nil {
			r.teardownWorkers()
			return fmt.Errorf("proxy %d: %w", w, err)
		}
		r.proxies[w] = p
		src := rand.New(rand.NewSource(r.cfg.Seed + int64(round)*7919 + int64(w)*31))
		var mu sync.Mutex
		c, err := sealclient.Dial(p.Addr(), sealclient.Options{
			Conns:       1,
			Timeout:     10 * time.Second,
			ReadRetries: 2,
			Sleep:       func(time.Duration) {},
			Rand: func(n int64) int64 {
				mu.Lock()
				defer mu.Unlock()
				return src.Int63n(n)
			},
		})
		if err != nil {
			p.Close()
			r.teardownWorkers()
			return fmt.Errorf("dial %d: %w", w, err)
		}
		r.clients[w] = c
	}
	return nil
}

func (r *runner) teardownWorkers() {
	for _, c := range r.clients {
		if c != nil {
			c.Close()
		}
	}
	for _, p := range r.proxies {
		if p != nil {
			p.Close()
		}
	}
	r.clients, r.proxies = nil, nil
}

// runTick arms the tick's faults at the barrier, releases every
// worker's ops concurrently (each worker issues its own sequence
// serially), waits for all to finish, clears one-shot fault state,
// and merges the records in worker order.
func (r *runner) runTick(tick int, tp *tickPlan, exec [][]execOp) []history.Op {
	if tp.cutAfter > 0 {
		r.fd.CutAtWrite(tp.cutAfter)
	}
	if tp.disk != nil {
		r.fd.Inject(*tp.disk)
	}
	if tp.net != nil {
		r.proxies[tp.net.worker].Arm(tp.net.dir, tp.net.fault)
	}

	results := make([][]history.Op, len(exec))
	var wg sync.WaitGroup
	for w := range exec {
		if len(exec[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = r.execOps(tick, w, exec[w])
		}(w)
	}
	wg.Wait()

	if tp.disk != nil {
		r.fd.ClearRules()
	}
	if tp.net != nil {
		// An armed fault its target never consumed (e.g. a ToClient
		// fault whose request already died upstream) must not leak
		// into a later tick.
		r.proxies[tp.net.worker].ClearArmed()
	}
	var out []history.Op
	for _, ops := range results {
		out = append(out, ops...)
	}
	return out
}

// execOps issues one worker's ops for a tick, sequentially, recording
// every invocation whatever its outcome.
func (r *runner) execOps(tick, w int, ops []execOp) []history.Op {
	c := r.clients[w]
	out := make([]history.Op, 0, len(ops))
	for seq, op := range ops {
		rec := history.Op{Tick: tick, Worker: w, Seq: seq, Kind: op.kind, Key: op.key, Version: op.version}
		var err error
		switch op.kind {
		case history.KindPut:
			err = c.Put([]byte(op.key), campaignValue(op.key, op.version, r.cfg.ValueSize))
		case history.KindDelete:
			err = c.Delete([]byte(op.key))
		case history.KindGet:
			var v []byte
			v, err = c.Get([]byte(op.key))
			if err == nil {
				if ver, ok := parseValue(op.key, v); ok {
					rec.Version = ver
				} else {
					rec.Version = -1
					rec.Note = fmt.Sprintf("unparseable value (%d bytes)", len(v))
				}
			}
		}
		outcome, note := classify(err)
		rec.Outcome = outcome
		if rec.Note == "" {
			rec.Note = note
		}
		out = append(out, rec)
	}
	return out
}

// classify maps a client error to its history outcome. Transport
// errors carry OS-level detail (RST vs EOF) that can differ run to
// run, so only the class is recorded for them; engine-surfaced error
// strings are deterministic and kept as the note.
func classify(err error) (history.Outcome, string) {
	switch {
	case err == nil:
		return history.OutcomeOK, ""
	case errors.Is(err, sealclient.ErrNotFound):
		return history.OutcomeNotFound, ""
	case errors.Is(err, sealclient.ErrDegraded):
		return history.OutcomeDegraded, ""
	case errors.Is(err, sealclient.ErrCorrupt):
		return history.OutcomeCorrupt, ""
	case errors.Is(err, sealclient.ErrUnavailable):
		return history.OutcomeUnavailable, ""
	case errors.Is(err, sealclient.ErrStoreClosed), errors.Is(err, sealclient.ErrClosed):
		return history.OutcomeClosed, ""
	case errors.Is(err, sealclient.ErrTimeout):
		return history.OutcomeTimeout, ""
	case errors.Is(err, sealclient.ErrConn):
		return history.OutcomeConn, ""
	default:
		return history.OutcomeError, err.Error()
	}
}

// flipState remembers an applied bit flip so the round can restore it
// before handing the device to the next round.
type flipState struct {
	num uint64
	off int64
	bit uint
}

// applyFlip flips one bit inside a live SSTable chosen by the plan's
// rng draws: a table of the deepest populated level, at a
// deterministic offset within its extent. Returns nil (no flip) when
// no tables exist yet — early rounds before the first flush.
func (r *runner) applyFlip(db *lsm.DB, plan *roundPlan) *flipState {
	tables := db.TableLocations()
	if len(tables) == 0 {
		return nil
	}
	deepest := tables[len(tables)-1].Level
	var cand []lsm.TableLocation
	for _, t := range tables {
		if t.Level == deepest {
			cand = append(cand, t)
		}
	}
	t := cand[int(plan.flipSel%int64(len(cand)))]
	off := t.Off + plan.flipDelta%t.Len
	if err := r.fd.FlipBit(off, plan.flipBit); err != nil {
		return nil
	}
	return &flipState{num: t.Num, off: off, bit: plan.flipBit}
}

// revertFlip restores the flipped bit iff the table is still live at
// the same extent, keeping the on-media state fsck-clean for the next
// round. A freed extent is left alone: its next writer overwrites it
// wholesale.
func (r *runner) revertFlip(db *lsm.DB, fs *flipState) {
	if fs == nil {
		return
	}
	for _, t := range db.TableLocations() {
		if t.Num == fs.num && t.Off <= fs.off && fs.off < t.Off+t.Len {
			r.fd.FlipBit(fs.off, fs.bit)
			return
		}
	}
}

// captureRecovered reads every key of the campaign universe straight
// from the recovered engine — no server, no network — so the checker
// sees exactly what the media holds.
func (r *runner) captureRecovered(db *lsm.DB) (map[string]history.RecoveredState, error) {
	out := make(map[string]history.RecoveredState, r.cfg.Clients*r.cfg.KeysPerWorker)
	for w := 0; w < r.cfg.Clients; w++ {
		for i := 0; i < r.cfg.KeysPerWorker; i++ {
			k := campaignKey(w, i)
			v, err := db.Get([]byte(k))
			switch {
			case err == nil:
				st := history.RecoveredState{Present: true, Version: -1}
				if ver, ok := parseValue(k, v); ok {
					st.Version = ver
				}
				out[k] = st
			case errors.Is(err, lsm.ErrNotFound):
				out[k] = history.RecoveredState{Present: false}
			default:
				return nil, fmt.Errorf("get %s: %w", k, err)
			}
		}
	}
	return out, nil
}
