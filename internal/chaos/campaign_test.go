//go:build !sealdb_chaos_mutation

package chaos

import (
	"bytes"
	"testing"

	"sealdb/internal/chaos/history"
)

// smallConfig is a campaign big enough to cycle through every fault
// class once (graceful, crash, net, disk, flip) but small enough for
// a unit test.
func smallConfig(seed int64) Config {
	return Config{
		Seed: seed, Rounds: 5, Clients: 3, Ticks: 9,
		Burst: 5, KeysPerWorker: 6, ValueSize: 256,
		Faults: AllFaults(),
	}
}

// TestCampaignGreenAndDeterministic is the harness's own acceptance
// test: a full campaign over every fault class yields zero safety
// violations, and a second run with the same seed reproduces the
// history byte for byte.
func TestCampaignGreenAndDeterministic(t *testing.T) {
	h1, err := Run(smallConfig(42))
	if err != nil {
		t.Fatalf("campaign run 1: %v", err)
	}
	if got := history.Check(h1); len(got) != 0 {
		for _, v := range got {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("green campaign reported %d violations", len(got))
	}

	h2, err := Run(smallConfig(42))
	if err != nil {
		t.Fatalf("campaign run 2: %v", err)
	}
	b1, err := h1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := h2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different histories (%d vs %d bytes)", len(b1), len(b2))
	}
}

// TestCampaignVlogGreenAndDeterministic runs the same acceptance in
// the value-separated regime: every campaign value (256 B here)
// clears the 64 B threshold, so every fault class composes with vlog
// appends, rotations, and pointer-chasing reads — and the history
// must stay green and byte-reproducible.
func TestCampaignVlogGreenAndDeterministic(t *testing.T) {
	cfg := smallConfig(42)
	cfg.Vlog = true
	h1, err := Run(cfg)
	if err != nil {
		t.Fatalf("vlog campaign run 1: %v", err)
	}
	if got := history.Check(h1); len(got) != 0 {
		for _, v := range got {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("green vlog campaign reported %d violations", len(got))
	}
	h2, err := Run(cfg)
	if err != nil {
		t.Fatalf("vlog campaign run 2: %v", err)
	}
	b1, err := h1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := h2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different vlog histories (%d vs %d bytes)", len(b1), len(b2))
	}
}

// TestCampaignSeedsDiffer guards against the schedule collapsing to a
// constant: different seeds must produce different histories.
func TestCampaignSeedsDiffer(t *testing.T) {
	h1, err := Run(smallConfig(1))
	if err != nil {
		t.Fatalf("seed 1: %v", err)
	}
	h2, err := Run(smallConfig(2))
	if err != nil {
		t.Fatalf("seed 2: %v", err)
	}
	x1, err := h1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	x2, err := h2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if x1 == x2 {
		t.Fatal("seeds 1 and 2 produced identical histories")
	}
}

func TestParseFaults(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"all", "crash,net,disk,flip", false},
		{"", "crash,net,disk,flip", false},
		{"none", "none", false},
		{"crash,flip", "crash,flip", false},
		{"net", "net", false},
		{"bogus", "", true},
	}
	for _, c := range cases {
		fs, err := ParseFaults(c.in)
		if c.err != (err != nil) {
			t.Fatalf("ParseFaults(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && fs.String() != c.want {
			t.Fatalf("ParseFaults(%q) = %q, want %q", c.in, fs.String(), c.want)
		}
	}
}
