package chaos

import (
	"math/rand"
	"time"

	"sealdb/internal/chaos/history"
	"sealdb/internal/chaos/netfault"
	"sealdb/internal/faultfs"
)

// plannedOp is one scheduled operation, identified by key-shard
// coordinates. Versions are assigned later, in issue order (see
// runner.materialize).
type plannedOp struct {
	kind   history.OpKind
	owner  int
	keyIdx int
}

// netPlan arms one network fault on one worker's proxy at the tick
// barrier.
type netPlan struct {
	worker int
	dir    netfault.Direction
	fault  netfault.Fault
}

// tickPlan is one lockstep tick: each worker's sequential ops plus
// whatever faults the barrier arms before the tick starts.
type tickPlan struct {
	ops  [][]plannedOp // indexed by worker
	net  *netPlan
	disk *faultfs.Rule
	// cutAfter > 0 arms a power cut tearing the cutAfter-th device
	// write of the tick. Only set on solo-writer ticks, and always
	// <= Burst, so the cut fires inside the sequential burst — never
	// while a concurrent reader could race the write counter.
	cutAfter int64
}

// roundPlan is one round's full schedule.
type roundPlan struct {
	kind  string
	crash bool
	flip  bool

	// Raw rng draws for the flip target, resolved against the live
	// table set at round start (see runner.applyFlip): the table set
	// is state-dependent, but the state itself is deterministic.
	flipSel, flipDelta int64
	flipBit            uint

	ticks []tickPlan
}

// roundKinds lists the kinds a campaign cycles through: a graceful
// baseline round first, then one round per enabled fault class.
func roundKinds(f FaultSet) []string {
	kinds := []string{"graceful"}
	if f.Crash {
		kinds = append(kinds, "crash")
	}
	if f.Net {
		kinds = append(kinds, "net")
	}
	if f.Disk {
		kinds = append(kinds, "disk")
	}
	if f.Flip {
		kinds = append(kinds, "flip")
	}
	return kinds
}

// buildPlan derives one round's schedule from the campaign seed
// alone. Every rng draw below happens in a fixed order, so the plan
// is a pure function of (Config, round).
func buildPlan(cfg *Config, round int) *roundPlan {
	kinds := roundKinds(cfg.Faults)
	kind := kinds[round%len(kinds)]
	rng := rand.New(rand.NewSource(cfg.Seed + int64(round)*104729))
	p := &roundPlan{kind: kind, crash: kind == "crash", flip: kind == "flip"}
	if p.flip {
		p.flipSel = rng.Int63()
		p.flipDelta = rng.Int63()
		p.flipBit = uint(rng.Intn(8))
	}
	cutTick := -1
	if p.crash {
		cutTick = cfg.Ticks / 2
	}
	for t := 0; t < cfg.Ticks; t++ {
		tp := tickPlan{ops: make([][]plannedOp, cfg.Clients)}
		switch {
		case kind == "disk" && (t == cfg.Ticks/3 || t == 2*cfg.Ticks/3):
			// Solo victim tick: exactly one write meets the injected
			// device error, so which op eats the fault is fixed. The
			// first fault tick is transient — the engine's write retry
			// must absorb it end to end. The second is permanent — the
			// store must go degraded and stay there for the rest of
			// the round (a checked property).
			victim := rng.Intn(cfg.Clients)
			tp.ops[victim] = []plannedOp{{kind: history.KindPut, owner: victim, keyIdx: rng.Intn(cfg.KeysPerWorker)}}
			tp.disk = &faultfs.Rule{Op: faultfs.OpWrite, Count: 1, Temporary: t == cfg.Ticks/3}
		case p.crash && t == cutTick:
			// Solo writer tick for the power cut; later ticks run
			// against the dead device and must see clean degraded or
			// error outcomes, never hangs or phantom acks.
			writer := t % cfg.Clients
			tp.ops[writer] = writerBurst(cfg, rng, writer)
			tp.cutAfter = 1 + int64(rng.Intn(cfg.Burst))
		case p.flip && t == cfg.Ticks/2:
			// Sweep tick: no writer; every worker reads every key it
			// does not own, so a flipped block surfaces as a CORRUPT
			// outcome wherever it landed.
			for w := 0; w < cfg.Clients; w++ {
				for o := 0; o < cfg.Clients; o++ {
					if o == w && cfg.Clients > 1 {
						continue
					}
					for i := 0; i < cfg.KeysPerWorker; i++ {
						tp.ops[w] = append(tp.ops[w], plannedOp{kind: history.KindGet, owner: o, keyIdx: i})
					}
				}
			}
		default:
			writer := t % cfg.Clients
			tp.ops[writer] = writerBurst(cfg, rng, writer)
			for w := 0; w < cfg.Clients; w++ {
				if w == writer {
					continue
				}
				// Readers never target the tick's writer: no read
				// races a write to the same key.
				for n := 1 + rng.Intn(2); n > 0; n-- {
					owner := rng.Intn(cfg.Clients)
					for owner == writer {
						owner = rng.Intn(cfg.Clients)
					}
					tp.ops[w] = append(tp.ops[w], plannedOp{kind: history.KindGet, owner: owner, keyIdx: rng.Intn(cfg.KeysPerWorker)})
				}
			}
			if kind == "net" && t%3 == 1 {
				tp.net = pickNetFault(cfg, rng)
			}
		}
		p.ticks = append(p.ticks, tp)
	}
	return p
}

// writerBurst plans one writer tick: Burst sequential writes into the
// writer's own shard, roughly one in eight a delete.
func writerBurst(cfg *Config, rng *rand.Rand, writer int) []plannedOp {
	ops := make([]plannedOp, 0, cfg.Burst)
	for s := 0; s < cfg.Burst; s++ {
		k := history.KindPut
		if rng.Intn(8) == 0 {
			k = history.KindDelete
		}
		ops = append(ops, plannedOp{kind: k, owner: writer, keyIdx: rng.Intn(cfg.KeysPerWorker)})
	}
	return ops
}

// pickNetFault draws one network fault: target worker, direction, and
// kind. The target always has traffic in a normal tick (the writer
// its burst, every reader at least one GET), so the armed fault is
// consumed this tick.
func pickNetFault(cfg *Config, rng *rand.Rand) *netPlan {
	np := &netPlan{worker: rng.Intn(cfg.Clients), dir: netfault.Direction(rng.Intn(2))}
	switch rng.Intn(4) {
	case 0:
		np.fault = netfault.Fault{Kind: netfault.Delay, Delay: time.Duration(1+rng.Intn(3)) * time.Millisecond}
	case 1:
		np.fault = netfault.Fault{Kind: netfault.Drop}
	case 2:
		np.fault = netfault.Fault{Kind: netfault.Reset}
	case 3:
		np.fault = netfault.Fault{Kind: netfault.Truncate, Bytes: 1 + rng.Intn(12)}
	}
	return np
}
