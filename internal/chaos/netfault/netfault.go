// Package netfault is an in-process, frame-aware TCP fault proxy for
// the chaos harness: it sits between a sealclient and the SEALDB
// server, forwards whole wire-protocol frames, and injects network
// faults — delayed frames, truncated frames, dropped connections, and
// TCP resets — at deterministic points.
//
// Determinism model: faults are armed one-shot per direction and
// consumed in FIFO order by the next frame the proxy observes in that
// direction, on whichever connection carries it. The chaos campaign
// arms faults only at tick barriers (no traffic in flight) against a
// proxy serving exactly one sequential client, so "the next frame" is
// a deterministic op regardless of goroutine scheduling. Frames are
// never split or reordered except by an armed fault, so the proxy is
// invisible when idle.
//
// The package is transport-only: it parses just the 4-byte length
// prefix of the wire framing and never decodes payloads, so it works
// for any frame the protocol may grow.
package netfault

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Direction names a flow through the proxy.
type Direction int

const (
	// ToServer is the client→server request flow.
	ToServer Direction = iota
	// ToClient is the server→client response flow.
	ToClient
)

func (d Direction) String() string {
	switch d {
	case ToServer:
		return "to_server"
	case ToClient:
		return "to_client"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Kind is a fault type.
type Kind int

const (
	// Delay holds the frame for Fault.Delay before forwarding it.
	// Outcome-neutral: the request still completes.
	Delay Kind = iota
	// Drop discards the frame and closes both sides of the
	// connection cleanly (the peer sees EOF).
	Drop
	// Reset discards the frame and aborts the client side with TCP
	// RST (SO_LINGER 0), the closest an in-process proxy gets to a
	// yanked cable.
	Reset
	// Truncate forwards only Fault.Bytes bytes of the encoded frame
	// and then closes both sides: the receiver sees a torn frame.
	Truncate
)

func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one armed network fault.
type Fault struct {
	Kind Kind
	// Bytes is how much of the encoded frame (length prefix included)
	// Truncate forwards before killing the connection. Clamped to
	// [1, frameLen-1] so the result is always a torn frame.
	Bytes int
	// Delay is the hold time for Kind Delay.
	Delay time.Duration
}

// Stats counts the proxy's activity.
type Stats struct {
	Conns     int64 `json:"conns"`
	FramesUp  int64 `json:"frames_to_server"`
	FramesDn  int64 `json:"frames_to_client"`
	Delays    int64 `json:"delays"`
	Drops     int64 `json:"drops"`
	Resets    int64 `json:"resets"`
	Truncates int64 `json:"truncates"`
}

// maxFrame bounds the length prefix the proxy will buffer; anything
// larger is treated as a protocol error and kills the connection.
const maxFrame = 32 << 20

// Proxy is one listening fault proxy forwarding to a fixed target.
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	armed  [2][]Fault         // per-direction FIFO; guarded by mu
	links  map[*link]struct{} // live connection pairs; guarded by mu
	stats  Stats              // guarded by mu
	closed bool               // guarded by mu

	wg sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client net.Conn // the accepted side
	server net.Conn // the dialed side
	once   sync.Once
}

// closeBoth tears the pair down cleanly (peers see EOF).
func (l *link) closeBoth() {
	l.once.Do(func() {
		l.client.Close()
		l.server.Close()
	})
}

// reset aborts the client side with an RST and closes the server side.
func (l *link) reset() {
	l.once.Do(func() {
		if tc, ok := l.client.(*net.TCPConn); ok {
			// Errors are advisory: the close below wins either way.
			tc.SetLinger(0)
		}
		l.client.Close()
		l.server.Close()
	})
}

// Listen starts a proxy on a fresh loopback port forwarding to target.
func Listen(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, links: map[*link]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; clients dial this instead
// of the server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Arm queues a one-shot fault: the next frame observed flowing in dir
// consumes it. Multiple armed faults fire in FIFO order, one frame
// each.
func (p *Proxy) Arm(dir Direction, f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed[dir] = append(p.armed[dir], f)
}

// ClearArmed discards faults armed but not yet consumed.
func (p *Proxy) ClearArmed() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed[ToServer] = nil
	p.armed[ToClient] = nil
}

// KillAll drops every live proxied connection (clean close, peers see
// EOF) without stopping the listener — a momentary partition; clients
// may redial through the proxy.
func (p *Proxy) KillAll() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.closeBoth()
	}
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the listener, kills live connections, and waits for the
// pump goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.KillAll()
	p.wg.Wait()
	return err
}

// takeFault pops the next armed fault for dir, if any.
func (p *Proxy) takeFault(dir Direction) (Fault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.armed[dir]
	if len(q) == 0 {
		return Fault{}, false
	}
	f := q[0]
	p.armed[dir] = q[1:]
	switch f.Kind {
	case Delay:
		p.stats.Delays++
	case Drop:
		p.stats.Drops++
	case Reset:
		p.stats.Resets++
	case Truncate:
		p.stats.Truncates++
	}
	return f, true
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			nc.Close()
			continue
		}
		l := &link{client: nc, server: up}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.closeBoth()
			return
		}
		p.links[l] = struct{}{}
		p.stats.Conns++
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, ToServer)
		go p.pump(l, ToClient)
	}
}

// forget removes a finished link.
func (p *Proxy) forget(l *link) {
	p.mu.Lock()
	delete(p.links, l)
	p.mu.Unlock()
}

// noteFrame counts one forwarded frame.
func (p *Proxy) noteFrame(dir Direction) {
	p.mu.Lock()
	if dir == ToServer {
		p.stats.FramesUp++
	} else {
		p.stats.FramesDn++
	}
	p.mu.Unlock()
}

// pump copies whole frames in one direction, applying armed faults.
// Any transport or framing error tears down both sides: a half-open
// proxy link would hang the pipeline invisibly.
func (p *Proxy) pump(l *link, dir Direction) {
	defer p.wg.Done()
	src, dst := l.client, l.server
	if dir == ToClient {
		src, dst = l.server, l.client
	}
	defer l.closeBoth()
	defer p.forget(l)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if int64(n) > maxFrame {
			return
		}
		frame := make([]byte, 4+int(n))
		copy(frame, hdr[:])
		if _, err := io.ReadFull(src, frame[4:]); err != nil {
			return
		}
		if f, ok := p.takeFault(dir); ok {
			switch f.Kind {
			case Delay:
				time.Sleep(f.Delay)
			case Drop:
				l.closeBoth()
				return
			case Reset:
				l.reset()
				return
			case Truncate:
				b := f.Bytes
				if b < 1 {
					b = 1
				}
				if b >= len(frame) {
					b = len(frame) - 1
				}
				// Best effort: the point is the missing tail, not
				// whether the prefix landed.
				dst.Write(frame[:b])
				l.closeBoth()
				return
			}
		}
		if _, err := dst.Write(frame); err != nil {
			return
		}
		p.noteFrame(dir)
	}
}
