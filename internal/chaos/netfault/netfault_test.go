package netfault

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer accepts connections and echoes whole frames back,
// counting the frames it received.
type echoServer struct {
	ln       net.Listener
	received atomic.Int64
}

func newEchoServer(t *testing.T) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				var hdr [4]byte
				for {
					if _, err := io.ReadFull(nc, hdr[:]); err != nil {
						return
					}
					n := binary.LittleEndian.Uint32(hdr[:])
					body := make([]byte, n)
					if _, err := io.ReadFull(nc, body); err != nil {
						return
					}
					s.received.Add(1)
					if _, err := nc.Write(hdr[:]); err != nil {
						return
					}
					if _, err := nc.Write(body); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

// frame builds one length-prefixed frame with the given body.
func frame(body []byte) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	return append(out, body...)
}

// sendFrame writes one frame and reads back the echoed reply.
func sendFrame(t *testing.T, nc net.Conn, body []byte) ([]byte, error) {
	t.Helper()
	if _, err := nc.Write(frame(body)); err != nil {
		return nil, err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(nc, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	got := make([]byte, n)
	if _, err := io.ReadFull(nc, got); err != nil {
		return nil, err
	}
	return got, nil
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func newProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := Listen(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestForwardsFramesUnchanged(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String())
	nc := dialProxy(t, p)
	for i := 0; i < 5; i++ {
		body := []byte{byte(i), 0xAA, byte(i)}
		got, err := sendFrame(t, nc, body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != string(body) {
			t.Fatalf("frame %d echoed %x, want %x", i, got, body)
		}
	}
	st := p.Stats()
	if st.FramesUp != 5 || st.FramesDn != 5 || st.Conns != 1 {
		t.Fatalf("stats = %+v, want 5 up / 5 down / 1 conn", st)
	}
}

func TestDelayHoldsFrame(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String())
	nc := dialProxy(t, p)
	const hold = 50 * time.Millisecond
	p.Arm(ToServer, Fault{Kind: Delay, Delay: hold})
	start := time.Now()
	if _, err := sendFrame(t, nc, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < hold {
		t.Fatalf("round trip took %v, want >= %v", elapsed, hold)
	}
	if st := p.Stats(); st.Delays != 1 {
		t.Fatalf("delays = %d, want 1", st.Delays)
	}
}

func TestDropNeverReachesServer(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String())
	nc := dialProxy(t, p)
	if _, err := sendFrame(t, nc, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	p.Arm(ToServer, Fault{Kind: Drop})
	if _, err := sendFrame(t, nc, []byte("lost")); err == nil {
		t.Fatal("dropped frame still produced a reply")
	}
	if got := srv.received.Load(); got != 1 {
		t.Fatalf("server received %d frames, want 1 (the dropped one must not arrive)", got)
	}
	if st := p.Stats(); st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
}

func TestTruncateTearsReply(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String())
	nc := dialProxy(t, p)
	p.Arm(ToClient, Fault{Kind: Truncate, Bytes: 6})
	if _, err := nc.Write(frame([]byte("torn-reply"))); err != nil {
		t.Fatal(err)
	}
	// The reply frame is 4+10 bytes; only 6 arrive before EOF.
	got, err := io.ReadAll(nc)
	if err != nil {
		t.Fatalf("draining truncated reply: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("received %d bytes of truncated reply, want 6", len(got))
	}
	if st := p.Stats(); st.Truncates != 1 {
		t.Fatalf("truncates = %d, want 1", st.Truncates)
	}
}

func TestResetAbortsClient(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String())
	nc := dialProxy(t, p)
	p.Arm(ToServer, Fault{Kind: Reset})
	if _, err := nc.Write(frame([]byte("rst"))); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err := nc.Read(buf)
	if err == nil {
		t.Fatal("read after reset succeeded")
	}
	if errors.Is(err, io.EOF) {
		// A linger-0 close should surface as ECONNRESET, not clean
		// EOF; tolerate platform variance but log it.
		t.Logf("reset surfaced as EOF on this platform")
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("resets = %d, want 1", st.Resets)
	}
}

func TestKillAllPartitionsButAllowsRedial(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String())
	nc := dialProxy(t, p)
	if _, err := sendFrame(t, nc, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	p.KillAll()
	if _, err := sendFrame(t, nc, []byte("dead")); err == nil {
		t.Fatal("frame on killed connection still produced a reply")
	}
	nc2 := dialProxy(t, p)
	if _, err := sendFrame(t, nc2, []byte("back")); err != nil {
		t.Fatalf("redial through proxy after KillAll: %v", err)
	}
}

func TestArmedFaultsFireInFIFOOrder(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String())
	nc := dialProxy(t, p)
	p.Arm(ToServer, Fault{Kind: Delay, Delay: time.Millisecond})
	p.Arm(ToServer, Fault{Kind: Drop})
	if _, err := sendFrame(t, nc, []byte("delayed")); err != nil {
		t.Fatalf("first armed fault should be the delay: %v", err)
	}
	if _, err := sendFrame(t, nc, []byte("dropped")); err == nil {
		t.Fatal("second armed fault should be the drop")
	}
	st := p.Stats()
	if st.Delays != 1 || st.Drops != 1 {
		t.Fatalf("stats = %+v, want one delay and one drop", st)
	}
}
