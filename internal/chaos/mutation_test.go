//go:build sealdb_chaos_mutation

package chaos

import (
	"testing"

	"sealdb/internal/chaos/history"
)

// TestMutationAckBeforeCommitIsCaught is the checker's self-test.
// Built under the sealdb_chaos_mutation tag, the server acknowledges
// writes before the commit group reaches the WAL (see
// internal/server/mutation_on.go) — the classic durability bug. A
// crash round must then surface acked-but-lost writes, and the
// checker must flag them as durability violations. If this test
// fails, the harness is blind and its green runs mean nothing.
func TestMutationAckBeforeCommitIsCaught(t *testing.T) {
	h, err := Run(Config{
		Seed: 42, Rounds: 2, Clients: 3, Ticks: 9,
		Burst: 5, KeysPerWorker: 6, ValueSize: 256,
		Faults: FaultSet{Crash: true}, // round 0 graceful, round 1 crash
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	violations := history.Check(h)
	durability := 0
	for _, v := range violations {
		if v.Kind == "durability" {
			durability++
		}
	}
	if durability == 0 {
		t.Fatalf("ack-before-commit mutation went undetected (%d violations, none durability): %v",
			len(violations), violations)
	}
	t.Logf("checker caught the mutation: %d durability violations (of %d total)", durability, len(violations))
}
