// Package chaos is SEALDB's combined-fault campaign harness. A
// campaign drives N concurrent sealclient workers over real TCP
// against a server running on a fault-injected device, composing
// disk errors, network faults, bit flips, and mid-pipeline power
// cuts round by round, and records every operation invocation into a
// history (internal/chaos/history) whose safety checker runs after
// every recovery.
//
// Determinism is the harness's core property: everything — the
// schedule, the fault points, the values written, the outcome of
// every operation — derives from Config.Seed, so `sealdb-chaos -seed
// S` replays a failure byte-for-byte. The design choices that make
// that true over a real network and a real (emulated) device:
//
//   - Lockstep ticks: a round is a sequence of ticks separated by
//     barriers; faults are armed only at barriers, when nothing is in
//     flight.
//   - One writer per tick, issuing its burst sequentially on a single
//     connection with server-side coalescing disabled, so the device
//     write sequence is a pure function of the schedule. Other
//     workers are concurrent readers.
//   - Single-writer-per-key sharding, and readers never target the
//     current tick's writer, so no read races a write to the same key.
//   - Power cuts and device-error rules fire on write counts inside
//     solo ticks (only the victim runs), so which op eats the fault
//     is fixed.
//   - Logical timestamps (tick, worker, seq); the history carries no
//     wall-clock content at all.
package chaos

import (
	"fmt"
	"io"
	"strings"
)

// FaultSet selects which fault classes a campaign cycles through.
type FaultSet struct {
	// Crash: a mid-burst power cut tears a device write, the DB is
	// dropped without Close, and recovery must work from media alone.
	Crash bool
	// Net: the per-worker frame proxy drops, resets, delays, and
	// truncates wire frames.
	Net bool
	// Disk: transient and permanent injected device write errors.
	Disk bool
	// Flip: one bit of a live SSTable is flipped for a round and the
	// read path must surface CORRUPT, never a wrong value.
	Flip bool
}

// AllFaults enables every class.
func AllFaults() FaultSet { return FaultSet{Crash: true, Net: true, Disk: true, Flip: true} }

func (f FaultSet) String() string {
	var parts []string
	if f.Crash {
		parts = append(parts, "crash")
	}
	if f.Net {
		parts = append(parts, "net")
	}
	if f.Disk {
		parts = append(parts, "disk")
	}
	if f.Flip {
		parts = append(parts, "flip")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseFaults parses a -faults flag value: "all", "none", or a
// comma-separated subset of crash,net,disk,flip.
func ParseFaults(s string) (FaultSet, error) {
	switch strings.TrimSpace(s) {
	case "", "all":
		return AllFaults(), nil
	case "none":
		return FaultSet{}, nil
	}
	var f FaultSet
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "crash":
			f.Crash = true
		case "net":
			f.Net = true
		case "disk":
			f.Disk = true
		case "flip":
			f.Flip = true
		default:
			return FaultSet{}, fmt.Errorf("chaos: unknown fault class %q (want crash, net, disk, flip, all, none)", p)
		}
	}
	return f, nil
}

// Config parameterizes one campaign. Zero fields take the documented
// defaults; Faults zero means no fault rounds (graceful cycles only).
type Config struct {
	// Seed drives every random choice in the campaign (0 means 1).
	Seed int64
	// Rounds is the number of serve/fault/recover/check cycles
	// (default 6).
	Rounds int
	// Clients is the number of concurrent workers, each with its own
	// TCP connection through its own fault proxy (default 4).
	Clients int
	// Ticks is the number of lockstep ticks per round (default 10).
	Ticks int
	// Burst is the number of writes the tick's writer issues
	// (default 6).
	Burst int
	// KeysPerWorker sizes each worker's private key shard (default 8).
	KeysPerWorker int
	// ValueSize pads every value to this size (default 512).
	ValueSize int
	// Vlog runs the campaign in the value-separated mode: the engine
	// stores values of 64 bytes and up in the value log (every
	// campaign value, at the default ValueSize), so faults land
	// between vlog appends, rotations, and WAL commits, and recovery
	// exercises pointer/segment reconciliation.
	Vlog bool
	// Faults selects the fault classes to cycle through.
	Faults FaultSet
	// Log, if set, receives one progress line per round. Wall-clock
	// free; it never feeds the history.
	Log io.Writer
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Ticks <= 0 {
		c.Ticks = 10
	}
	if c.Burst <= 0 {
		c.Burst = 6
	}
	if c.KeysPerWorker <= 0 {
		c.KeysPerWorker = 8
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 512
	}
}
