package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// campaignKey names one key by its owner worker and index within the
// owner's shard. Single-writer-per-key: only worker w ever writes w's
// keys, which is what lets the checker treat each key's versions as
// totally ordered.
func campaignKey(owner, idx int) string {
	return fmt.Sprintf("w%02d-k%03d", owner, idx)
}

// campaignValue tags a value with its key and version so any read (or
// the recovered snapshot) can be validated offline, padded with a
// deterministic filler to size.
func campaignValue(key string, version int64, size int) []byte {
	prefix := fmt.Sprintf("%s#v%08d#", key, version)
	b := make([]byte, 0, max(size, len(prefix)))
	b = append(b, prefix...)
	for i := int64(0); len(b) < size; i++ {
		b = append(b, byte('a'+(version+i)%26))
	}
	return b
}

// parseValue recovers the version from a tagged value; ok is false if
// the bytes are not a well-formed tag for this key.
func parseValue(key string, v []byte) (int64, bool) {
	s := string(v)
	prefix := key + "#v"
	if !strings.HasPrefix(s, prefix) || len(s) < len(prefix)+9 || s[len(prefix)+8] != '#' {
		return 0, false
	}
	n, err := strconv.ParseInt(s[len(prefix):len(prefix)+8], 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}
