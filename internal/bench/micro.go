package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
	"sealdb/internal/ycsb"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ---------------------------------------------------------------------------
// Table II — raw device performance

// DeviceRow is one line of Table II.
type DeviceRow struct {
	Metric string
	HDD    float64
	SMR    float64
}

// RunTable2 measures the emulated devices the way the paper's Table
// II benchmarks the real ones: streaming bandwidth and random 4 KiB
// IOPS, on a conventional drive (bare platter) and on the fixed-band
// SMR drive. The SMR drive uses the paper's full-scale 40 MiB bands —
// this is a device characterization, independent of the store's
// scaled geometry.
func RunTable2(o Options) ([]DeviceRow, error) {
	const streamMB = 64
	const randomOps = 300
	const table2Band = 40 * kv.MiB

	mkDisk := func() *platter.Disk {
		return platter.New(platter.DefaultConfig(o.Geometry.DiskCapacity))
	}

	seqWrite := func(w func(p []byte, off int64) (time.Duration, error)) (float64, error) {
		buf := make([]byte, 1<<20)
		var total time.Duration
		for i := int64(0); i < streamMB; i++ {
			dt, err := w(buf, i*int64(len(buf)))
			if err != nil {
				return 0, err
			}
			total += dt
		}
		return float64(streamMB) * 1e6 / total.Seconds() / 1e6, nil
	}
	seqRead := seqWrite // same signature; caller passes the read func

	randOps := func(op func(p []byte, off int64) (time.Duration, error), max int64, seed int64) (float64, error) {
		rng := newRng(seed)
		buf := make([]byte, 4096)
		var total time.Duration
		for i := 0; i < randomOps; i++ {
			off := rng.Int63n(max/4096) * 4096
			dt, err := op(buf, off)
			if err != nil {
				return 0, err
			}
			total += dt
		}
		return float64(randomOps) / total.Seconds(), nil
	}

	// Conventional drive: the bare platter.
	hdd := mkDisk()
	hddSeqW, err := seqWrite(hdd.WriteAt)
	if err != nil {
		return nil, err
	}
	hddSeqR, err := seqRead(hdd.ReadAt)
	if err != nil {
		return nil, err
	}
	// Random accesses span the whole surface, as a device
	// characterization benchmark does.
	hddRandR, err := randOps(hdd.ReadAt, hdd.Capacity(), 11)
	if err != nil {
		return nil, err
	}
	hddRandW, err := randOps(hdd.WriteAt, hdd.Capacity(), 12)
	if err != nil {
		return nil, err
	}

	// SMR drive: fixed bands; random writes pay read-modify-write.
	smrDrive := smr.NewFixedBand(mkDisk(), table2Band)
	smrSeqW, err := seqWrite(smrDrive.WriteAt)
	if err != nil {
		return nil, err
	}
	smrSeqR, err := seqRead(smrDrive.ReadAt)
	if err != nil {
		return nil, err
	}
	smrRandR, err := randOps(smrDrive.ReadAt, smrDrive.Capacity(), 13)
	if err != nil {
		return nil, err
	}
	// Precondition a region so its band write pointers are high, as a
	// sustained-random-write characterization does: on a virgin band a
	// shingled write just streams forward, but rewriting used bands
	// pays the full read-modify-write (the paper's 5–140 IOPS range is
	// this bimodality; we report the sustained end).
	precondition := int64(8) * table2Band
	if precondition > smrDrive.Capacity() {
		precondition = smrDrive.Capacity()
	}
	fill := make([]byte, 1<<20)
	for off := int64(0); off < precondition; off += int64(len(fill)) {
		n := precondition - off
		if n > int64(len(fill)) {
			n = int64(len(fill))
		}
		if _, err := smrDrive.WriteAt(fill[:n], off); err != nil {
			return nil, err
		}
	}
	smrRandW, err := randOps(smrDrive.WriteAt, precondition, 14)
	if err != nil {
		return nil, err
	}

	return []DeviceRow{
		{"Sequential read (MB/s)", hddSeqR, smrSeqR},
		{"Sequential write (MB/s)", hddSeqW, smrSeqW},
		{"Random read 4KiB (IOPS)", hddRandR, smrRandR},
		{"Random write 4KiB (IOPS)", hddRandW, smrRandW},
	}, nil
}

// PrintTable2 renders Table II.
func PrintTable2(w io.Writer, rows []DeviceRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table II: device performance\t(emulated HDD)\t(emulated SMR)\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\n", r.Metric, r.HDD, r.SMR)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Figure 8 — micro-benchmarks, and Figure 14 — ablation

// MicroRow is one store's result across the four micro workloads
// (throughputs in simulated ops/s).
type MicroRow struct {
	Store     string
	SeqWrite  float64
	RandWrite float64
	SeqRead   float64
	RandRead  float64
}

// Normalized returns the row's throughputs normalized to base.
func (r MicroRow) Normalized(base MicroRow) MicroRow {
	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return MicroRow{
		Store:     r.Store,
		SeqWrite:  div(r.SeqWrite, base.SeqWrite),
		RandWrite: div(r.RandWrite, base.RandWrite),
		SeqRead:   div(r.SeqRead, base.SeqRead),
		RandRead:  div(r.RandRead, base.RandRead),
	}
}

// runMicro runs the paper's four micro-benchmarks against one mode:
// sequential load, random load, then sequential and random reads on
// the randomly loaded store.
func runMicro(o Options, mode lsm.Mode) (MicroRow, error) {
	row := MicroRow{Store: mode.String()}
	records := o.Records()

	// Sequential write: ordered load of the full dataset.
	seqDB, err := o.openStore(mode)
	if err != nil {
		return row, err
	}
	runner := ycsb.NewRunner(storeAdapter{seqDB}, o.ValueSize, o.Seed)
	d, err := phase(seqDB, func() error { return runner.Load(records) })
	if err != nil {
		return row, err
	}
	row.SeqWrite = throughput(records, d)
	seqDB.Close()

	// Random write: uniformly random-ordered load.
	randDB, err := o.openStore(mode)
	if err != nil {
		return row, err
	}
	runner = ycsb.NewRunner(storeAdapter{randDB}, o.ValueSize, o.Seed)
	d, err = phase(randDB, func() error { return runner.LoadRandom(records) })
	if err != nil {
		return row, err
	}
	row.RandWrite = throughput(records, d)

	// Reads run against the randomly loaded store, as in the paper.
	d, err = phase(randDB, func() error {
		n, err := seqRead(randDB, o.ReadOps)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("bench: sequential read saw no data")
		}
		return nil
	})
	if err != nil {
		return row, err
	}
	row.SeqRead = throughput(int64(o.ReadOps), d)

	d, err = phase(randDB, func() error {
		_, err := randRead(randDB, records, o.ReadOps, o.Seed+77)
		return err
	})
	if err != nil {
		return row, err
	}
	row.RandRead = throughput(int64(o.ReadOps), d)
	randDB.Close()
	return row, nil
}

// RunFig8 runs the micro-benchmarks on LevelDB, SMRDB, and SEALDB.
func RunFig8(o Options) ([]MicroRow, error) {
	var rows []MicroRow
	for _, mode := range []lsm.Mode{lsm.ModeLevelDB, lsm.ModeSMRDB, lsm.ModeSEALDB} {
		r, err := runMicro(o, mode)
		if err != nil {
			return nil, fmt.Errorf("fig8 %v: %w", mode, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// RunFig14 runs the ablation: LevelDB, LevelDB+sets, SEALDB.
func RunFig14(o Options) ([]MicroRow, error) {
	var rows []MicroRow
	for _, mode := range []lsm.Mode{lsm.ModeLevelDB, lsm.ModeLevelDBSets, lsm.ModeSEALDB} {
		r, err := runMicro(o, mode)
		if err != nil {
			return nil, fmt.Errorf("fig14 %v: %w", mode, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// PrintMicroRows renders Figure 8/14 rows, normalized to the first.
func PrintMicroRows(w io.Writer, title string, rows []MicroRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tseq-write\trand-write\tseq-read\trand-read\t(normalized to %s; raw ops/s in parens)\n",
		title, rows[0].Store)
	for _, r := range rows {
		n := r.Normalized(rows[0])
		fmt.Fprintf(tw, "%s\t%.2fx (%.0f)\t%.2fx (%.0f)\t%.2fx (%.0f)\t%.2fx (%.0f)\t\n",
			r.Store, n.SeqWrite, r.SeqWrite, n.RandWrite, r.RandWrite,
			n.SeqRead, r.SeqRead, n.RandRead, r.RandRead)
	}
	tw.Flush()
}
