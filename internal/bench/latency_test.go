package bench

import (
	"io"
	"testing"
	"time"
)

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 || h.N() != 0 {
		t.Error("empty histogram not zero-valued")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	// Percentiles are bucketed (log-scaled, 16 sub-buckets per octave)
	// so they may overshoot the exact value by at most 1/16.
	approx := func(name string, got, want time.Duration) {
		t.Helper()
		if got < want || got > want+want/8 {
			t.Errorf("%s = %v, want ~%v", name, got, want)
		}
	}
	approx("p50", h.Percentile(50), 50*time.Millisecond)
	approx("p99", h.Percentile(99), 99*time.Millisecond)
	// p100 and Max clamp to the exact observed maximum.
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	// Adding after a percentile query is reflected immediately.
	h.Add(200 * time.Millisecond)
	if got := h.Max(); got != 200*time.Millisecond {
		t.Errorf("max after add = %v", got)
	}
	if h.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestLatencyProfileShapes(t *testing.T) {
	o := QuickOptions()
	o.YCSBOps = 400
	rows, err := RunLatencyProfile(o)
	if err != nil {
		t.Fatal(err)
	}
	byStore := map[string]LatencyRow{}
	for _, r := range rows {
		byStore[r.Store] = r
	}
	ldb, seal := byStore["leveldb"], byStore["sealdb"]
	if ldb.Reads.N() == 0 || ldb.Writes.N() == 0 {
		t.Fatal("no samples")
	}
	// The paper's §II-C point: LevelDB-on-SMR writes stall behind
	// band cleaning; SEALDB's mean write latency must be lower.
	if seal.Writes.Mean() >= ldb.Writes.Mean() {
		t.Errorf("mean write latency: sealdb %v >= leveldb %v",
			seal.Writes.Mean(), ldb.Writes.Mean())
	}
	PrintLatencyRows(io.Discard, rows)
}

func TestGCAblation(t *testing.T) {
	o := QuickOptions()
	o.LoadMB = 16 // more churn, more fragments
	res, err := RunGCAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetsMoved > 0 {
		if res.FragmentsAfter >= res.FragmentsBefore {
			t.Errorf("GC did not reduce fragments: %d -> %d",
				res.FragmentsBefore, res.FragmentsAfter)
		}
		if res.GCTime <= 0 {
			t.Error("GC consumed no simulated time")
		}
	}
	PrintGCAblation(io.Discard, res)
}
