package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"sealdb/internal/lsm"
	"sealdb/internal/ycsb"
)

// YCSBRow is one store's throughput across the YCSB workloads
// (Figure 9): the load phase plus workloads A–F, in simulated ops/s.
type YCSBRow struct {
	Store string
	Load  float64
	Ops   map[string]float64 // workload name -> ops/s
}

// RunFig9 loads each store and runs YCSB A–F against it.
func RunFig9(o Options) ([]YCSBRow, error) {
	var rows []YCSBRow
	for _, mode := range []lsm.Mode{lsm.ModeLevelDB, lsm.ModeSMRDB, lsm.ModeSEALDB} {
		db, err := o.openStore(mode)
		if err != nil {
			return nil, err
		}
		row := YCSBRow{Store: mode.String(), Ops: map[string]float64{}}
		runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
		records := o.Records()
		d, err := phase(db, func() error { return runner.LoadRandom(records) })
		if err != nil {
			return nil, fmt.Errorf("fig9 %v load: %w", mode, err)
		}
		row.Load = throughput(records, d)

		for _, w := range ycsb.CoreWorkloads() {
			ops := o.YCSBOps
			if w.ScanProp > 0 {
				// Workload E's scans touch MaxScanLen records per op;
				// trim the op count to keep runtimes proportionate.
				ops = o.YCSBOps / 10
			}
			var res ycsb.Result
			d, err := phase(db, func() error {
				var err error
				res, err = runner.Run(w, ops)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %v workload %s: %w", mode, w.Name, err)
			}
			row.Ops[w.Name] = throughput(int64(res.Ops), d)
		}
		rows = append(rows, row)
		db.Close()
	}
	return rows, nil
}

// PrintFig9 renders the YCSB table, normalized to the first store.
func PrintFig9(w io.Writer, rows []YCSBRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 9: store\tload\tA\tB\tC\tD\tE\tF\t(normalized to %s)\n", rows[0].Store)
	base := rows[0]
	norm := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2fx", r.Store, norm(r.Load, base.Load))
		for _, wl := range ycsb.CoreWorkloads() {
			fmt.Fprintf(tw, "\t%.2fx", norm(r.Ops[wl.Name], base.Ops[wl.Name]))
		}
		fmt.Fprintf(tw, "\t\n")
	}
	tw.Flush()
}
