package bench

import (
	"encoding/json"
	"io"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/ycsb"
)

// YCSBPhase is one phase (load or one core workload) of a store's
// machine-readable YCSB result. Latencies are per store call in
// simulated device microseconds; WA/AWA are the cumulative modeled
// amplification at the end of the phase.
type YCSBPhase struct {
	Workload  string  `json:"workload"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	WA        float64 `json:"wa"`
	AWA       float64 `json:"awa"`
}

// YCSBStoreReport is one (store, value size) cell of the matrix: its
// phases, load first then A–F.
type YCSBStoreReport struct {
	Store     string      `json:"store"`
	ValueSize int         `json:"value_size"`
	Phases    []YCSBPhase `json:"phases"`
}

// YCSBReport is the BENCH_ycsb.json payload: the experiment scale and
// every (store, value size) cell's per-workload results, so the perf
// trajectory can be diffed across commits.
type YCSBReport struct {
	SSTableSize    int64             `json:"sstable_size"`
	BandSize       int64             `json:"band_size"`
	LoadMB         int64             `json:"load_mb"`
	ValueSize      int               `json:"value_size"`
	ValueSizes     []int             `json:"value_sizes"`
	OpsPerWorkload int               `json:"ops_per_workload"`
	Seed           int64             `json:"seed"`
	Stores         []YCSBStoreReport `json:"stores"`
}

// ycsbStore is one store variant of the YCSB matrix. The vlog variant
// is the SEALDB engine with key–value separation on.
type ycsbStore struct {
	name string
	mode lsm.Mode
	vlog bool
}

func ycsbStores() []ycsbStore {
	return []ycsbStore{
		{name: lsm.ModeLevelDB.String(), mode: lsm.ModeLevelDB},
		{name: lsm.ModeSMRDB.String(), mode: lsm.ModeSMRDB},
		{name: lsm.ModeSEALDB.String(), mode: lsm.ModeSEALDB},
		{name: lsm.ModeSEALDB.String() + "+vlog", mode: lsm.ModeSEALDB, vlog: true},
	}
}

// openYCSBStore builds a fresh store for one matrix cell.
func (o Options) openYCSBStore(s ycsbStore) (*lsm.DB, error) {
	cfg := o.config(s.mode)
	if s.vlog {
		cfg.ValueThreshold = o.VlogThreshold
		if cfg.ValueThreshold == 0 {
			cfg.ValueThreshold = 64
		}
	}
	db, err := lsm.Open(cfg)
	if err == nil && o.Observe != nil {
		o.Observe(db)
	}
	return db, err
}

// timedStore wraps a store, measuring each call's simulated device
// time into the current phase's histogram.
type timedStore struct {
	inner storeAdapter
	clock func() time.Duration
	h     *Histogram
}

func (s *timedStore) timed(fn func() error) error {
	start := s.clock()
	err := fn()
	s.h.Add(s.clock() - start)
	return err
}

func (s *timedStore) Put(k, v []byte) error {
	return s.timed(func() error { return s.inner.Put(k, v) })
}

func (s *timedStore) Get(k []byte) (v []byte, err error) {
	err = s.timed(func() error { v, err = s.inner.Get(k); return err })
	return v, err
}

func (s *timedStore) ScanN(start []byte, n int) (seen int, err error) {
	err = s.timed(func() error { seen, err = s.inner.ScanN(start, n); return err })
	return seen, err
}

// RunYCSBReport runs the load phase and YCSB A–F against every
// (store, value size) cell, producing the machine-readable report:
// throughput from simulated device time, per-call p50/p99 from
// device-time deltas, and the cumulative modeled WA/AWA after each
// phase.
func RunYCSBReport(o Options) (*YCSBReport, error) {
	sizes := o.ValueSizes
	if len(sizes) == 0 {
		sizes = []int{o.ValueSize}
	}
	rep := &YCSBReport{
		SSTableSize:    o.Geometry.SSTableSize,
		BandSize:       o.Geometry.BandSize,
		LoadMB:         o.LoadMB,
		ValueSize:      o.ValueSize,
		ValueSizes:     sizes,
		OpsPerWorkload: o.YCSBOps,
		Seed:           o.Seed,
	}
	for _, vs := range sizes {
		for _, st := range ycsbStores() {
			sr, err := o.runYCSBCell(st, vs)
			if err != nil {
				return nil, err
			}
			rep.Stores = append(rep.Stores, sr)
		}
	}
	return rep, nil
}

// runYCSBCell runs the full phase sequence for one (store, value
// size) cell on a fresh store.
func (o Options) runYCSBCell(st ycsbStore, valueSize int) (YCSBStoreReport, error) {
	sr := YCSBStoreReport{Store: st.name, ValueSize: valueSize}
	db, err := o.openYCSBStore(st)
	if err != nil {
		return sr, err
	}
	defer db.Close()
	ts := &timedStore{
		inner: storeAdapter{db},
		clock: func() time.Duration { return simTime(db) },
	}
	runner := ycsb.NewRunner(ts, valueSize, o.Seed)

	records := o.RecordsFor(valueSize)
	ts.h = &Histogram{}
	d, err := phase(db, func() error { return runner.LoadRandom(records) })
	if err != nil {
		return sr, err
	}
	sr.Phases = append(sr.Phases, phaseResult(db, "load", records, d, ts.h))

	for _, w := range ycsb.CoreWorkloads() {
		ops := o.OpsFor(valueSize)
		if w.ScanProp > 0 {
			// Workload E's scans touch MaxScanLen records per op;
			// trim the op count to keep runtimes proportionate.
			ops /= 10
			if ops < 16 {
				ops = 16
			}
		}
		ts.h = &Histogram{}
		var res ycsb.Result
		d, err := phase(db, func() error {
			var err error
			res, err = runner.Run(w, ops)
			return err
		})
		if err != nil {
			return sr, err
		}
		sr.Phases = append(sr.Phases, phaseResult(db, w.Name, int64(res.Ops), d, ts.h))
	}
	return sr, nil
}

func phaseResult(db *lsm.DB, name string, ops int64, d time.Duration, h *Histogram) YCSBPhase {
	amp := db.Amplification()
	return YCSBPhase{
		Workload:  name,
		Ops:       ops,
		OpsPerSec: throughput(ops, d),
		P50us:     float64(h.Percentile(50)) / 1e3,
		P99us:     float64(h.Percentile(99)) / 1e3,
		WA:        amp.WA,
		AWA:       amp.AWA,
	}
}

// WriteYCSBJSON writes the report as indented JSON.
func WriteYCSBJSON(w io.Writer, rep *YCSBReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
