// Package bench contains the experiment harness that regenerates
// every table and figure of the paper's evaluation (§IV). Each
// experiment returns structured rows (so tests can assert on shapes)
// and can print itself as a table or CSV.
//
// All durations are simulated device time from the platter's service
// model, so results are deterministic across runs and machines.
package bench

import (
	"fmt"
	"io"
	"time"

	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/ycsb"
)

// Options sizes the experiments. The defaults (see DefaultOptions)
// follow the paper's setup at the repository's 1/16 geometry scale.
type Options struct {
	// Geometry of the stores under test.
	Geometry lsm.Geometry
	// LoadMB is the logical payload of the load phases.
	LoadMB int64
	// ValueSize is the value payload size (the paper uses 4 KiB with
	// 16-byte keys; the scaled default is 1 KiB).
	ValueSize int
	// ValueSizes is the value-size axis for the YCSB report: each size
	// runs the full workload matrix on every store. Empty means just
	// ValueSize.
	ValueSizes []int
	// VlogThreshold is the key–value separation threshold of the
	// "sealdb+vlog" store in the YCSB report (values at or above it
	// move to the value log). Zero means 64, which separates every
	// size on the standard 64 B → 1 MiB axis.
	VlogThreshold int
	// ReadOps is the number of point/sequential reads per experiment
	// (the paper uses 100 K).
	ReadOps int
	// YCSBOps is the number of operations per YCSB workload.
	YCSBOps int
	// Seed drives every generator.
	Seed int64
	// Observe, when set, is called with every store the harness opens,
	// before the experiment runs on it. The -serve flag uses it to point
	// the live /metrics endpoint at whichever store is currently under
	// test.
	Observe func(*lsm.DB)
}

// DefaultOptions returns the canonical experiment scale: the 1/16
// geometry (256 KiB SSTables, 2.5 MiB bands) with a 192 MiB load that
// spans ~75 bands and ~770 SSTables. At this scale every shape of the
// paper's evaluation appears — including SMRDB's few-but-huge
// seek-bound compactions, which vanish at smaller scales (see
// DESIGN.md). A full figure takes tens of seconds of wall time.
func DefaultOptions() Options {
	return Options{
		Geometry:  lsm.ScaledGeometry(256*kv.KiB, 8*kv.GiB),
		LoadMB:    192,
		ValueSize: 1024,
		ReadOps:   10000,
		YCSBOps:   10000,
		Seed:      1,
	}
}

// QuickOptions returns a much smaller scale for smoke tests: the
// robust shapes (AWA elimination, layout contiguity, the ablation)
// hold here, but SMRDB's compaction penalty needs DefaultOptions.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Geometry = lsm.ScaledGeometry(32*kv.KiB, 1*kv.GiB)
	o.LoadMB = 10
	o.ReadOps = 800
	o.YCSBOps = 800
	return o
}

// Records returns the number of KV records that fit LoadMB.
func (o Options) Records() int64 {
	return o.RecordsFor(o.ValueSize)
}

// RecordsFor returns the number of records of the given value size
// that fit LoadMB, clamped so huge values still leave a workable
// keyspace.
func (o Options) RecordsFor(valueSize int) int64 {
	rec := int64(valueSize + 16)
	n := o.LoadMB * kv.MiB / rec
	if n < 16 {
		n = 16
	}
	return n
}

// OpsFor bounds a YCSB phase's op count for the given value size:
// above 4 KiB the count shrinks in proportion so a phase writes about
// as many bytes as it would at 4 KiB. Without the cap, the 1 MiB cell
// of the value-size axis pushes ~10 GiB of logical writes per store
// through an 8 GiB simulated disk. The cap depends only on the value
// size, so every store in a cell still runs identical work.
func (o Options) OpsFor(valueSize int) int {
	ops := o.YCSBOps
	if valueSize > 4*1024 {
		ops = o.YCSBOps * 4 * 1024 / valueSize
		if ops < 64 {
			ops = 64
		}
	}
	return ops
}

func (o Options) config(mode lsm.Mode) lsm.Config {
	cfg := lsm.Config{Mode: mode, Geometry: o.Geometry, Seed: o.Seed}
	return cfg
}

// openStore builds a fresh store of the given mode.
func (o Options) openStore(mode lsm.Mode) (*lsm.DB, error) {
	db, err := lsm.Open(o.config(mode))
	if err == nil && o.Observe != nil {
		o.Observe(db)
	}
	return db, err
}

// storeAdapter adapts *lsm.DB to ycsb.Store.
type storeAdapter struct{ db *lsm.DB }

func (s storeAdapter) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s storeAdapter) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s storeAdapter) ScanN(start []byte, n int) (int, error) {
	kvs, err := s.db.Scan(start, n)
	return len(kvs), err
}

// simTime returns the accumulated simulated device time of a store.
func simTime(db *lsm.DB) time.Duration {
	return db.Device().Disk.Stats().BusyTime
}

// phase measures the simulated time consumed by fn on db.
func phase(db *lsm.DB, fn func() error) (time.Duration, error) {
	start := simTime(db)
	err := fn()
	return simTime(db) - start, err
}

// throughput converts an op count and simulated duration to ops/s.
func throughput(ops int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}

// seqRead iterates n entries from the smallest key.
func seqRead(db *lsm.DB, n int) (int, error) {
	it := db.NewIterator()
	defer it.Close()
	count := 0
	for it.SeekToFirst(); it.Valid() && count < n; it.Next() {
		count++
	}
	return count, it.Error()
}

// randRead performs n uniform point reads over [0, records).
func randRead(db *lsm.DB, records int64, n int, seed int64) (misses int, err error) {
	rng := newRng(seed)
	for i := 0; i < n; i++ {
		if _, err := db.Get(ycsb.Key(rng.Int63n(records))); err != nil {
			if err == lsm.ErrNotFound {
				misses++
				continue
			}
			return misses, err
		}
	}
	return misses, nil
}

// fprintf writes formatted output, ignoring errors (report sinks).
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
