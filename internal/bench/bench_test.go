package bench

import (
	"io"
	"testing"

	"sealdb/internal/lsm"
)

// testOptions shrinks the experiments so the whole suite runs in
// seconds; the scale-sensitive SMRDB shapes are asserted separately
// in TestHeadlineShapesAtFullScale.
func testOptions() Options { return QuickOptions() }

func TestTable2Shapes(t *testing.T) {
	rows, err := RunTable2(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DeviceRow{}
	for _, r := range rows {
		byName[r.Metric] = r
	}
	seqR := byName["Sequential read (MB/s)"]
	if seqR.HDD < 100 || seqR.SMR < 100 {
		t.Errorf("sequential read too slow: %+v", seqR)
	}
	randW := byName["Random write 4KiB (IOPS)"]
	if randW.SMR >= randW.HDD/5 {
		t.Errorf("SMR random writes should collapse vs HDD: %+v", randW)
	}
	randR := byName["Random read 4KiB (IOPS)"]
	if randR.HDD < 40 || randR.HDD > 100 {
		t.Errorf("random read IOPS %v outside Table II ballpark", randR.HDD)
	}
	PrintTable2(io.Discard, rows)
}

func TestFig2And11LayoutShapes(t *testing.T) {
	o := testOptions()
	ldb, err := RunLayout(o, lsm.ModeLevelDB)
	if err != nil {
		t.Fatal(err)
	}
	seal, err := RunLayout(o, lsm.ModeSEALDB)
	if err != nil {
		t.Fatal(err)
	}
	if ldb.Compactions == 0 || seal.Compactions == 0 {
		t.Fatalf("no compactions traced: %d vs %d", ldb.Compactions, seal.Compactions)
	}
	// Figure 2 vs 11: LevelDB scatters each compaction across many
	// extents; SEALDB writes each compaction as few sequential runs.
	if seal.MeanExtentsPerCompaction > 2.5 {
		t.Errorf("SEALDB compactions not contiguous: %.2f extents each", seal.MeanExtentsPerCompaction)
	}
	if ldb.MeanExtentsPerCompaction < 2*seal.MeanExtentsPerCompaction {
		t.Errorf("LevelDB should scatter much more: %.2f vs %.2f extents",
			ldb.MeanExtentsPerCompaction, seal.MeanExtentsPerCompaction)
	}
	// Space efficiency claim of Figure 11: SEALDB's footprint is
	// smaller than LevelDB's.
	if seal.FootprintMB >= ldb.FootprintMB {
		t.Errorf("SEALDB footprint %.1f MB not below LevelDB %.1f MB",
			seal.FootprintMB, ldb.FootprintMB)
	}
	PrintLayout(io.Discard, "Fig 2", ldb)
	WriteLayoutCSV(io.Discard, seal)
}

func TestFig3BandSweepShapes(t *testing.T) {
	o := testOptions()
	o.LoadMB = 8
	rows, err := RunFig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 band sizes, got %d", len(rows))
	}
	// MWA must exceed WA everywhere (AWA > 1), and grow with band
	// size overall (Figure 3(b)'s trend).
	for _, r := range rows {
		if r.MWA <= r.WA {
			t.Errorf("band %.1f: MWA %.2f <= WA %.2f", r.BandSSTables, r.MWA, r.WA)
		}
		if r.SSTablesPerCompaction <= 1 {
			t.Errorf("band %.1f: SSTables/compaction %.2f implausible", r.BandSSTables, r.SSTablesPerCompaction)
		}
	}
	if rows[len(rows)-1].MWA <= rows[0].MWA {
		t.Errorf("MWA did not grow with band size: first %.2f, last %.2f",
			rows[0].MWA, rows[len(rows)-1].MWA)
	}
	PrintFig3(io.Discard, rows)
}

func TestFig8MicroShapes(t *testing.T) {
	rows, err := RunFig8(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	byStore := map[string]MicroRow{}
	for _, r := range rows {
		byStore[r.Store] = r
	}
	ldb, smrdb, seal := byStore["leveldb"], byStore["smrdb"], byStore["sealdb"]
	_ = smrdb // the SMRDB crossover needs full scale; see the headline test
	// Headline: SEALDB beats LevelDB on random load.
	if seal.RandWrite <= ldb.RandWrite {
		t.Errorf("random write: sealdb %.0f <= leveldb %.0f", seal.RandWrite, ldb.RandWrite)
	}
	// Sequential writes: no merge compactions; SEALDB and SMRDB at
	// least match LevelDB.
	if seal.SeqWrite < ldb.SeqWrite*0.9 {
		t.Errorf("seq write: sealdb %.0f below leveldb %.0f", seal.SeqWrite, ldb.SeqWrite)
	}
	// Reads: SEALDB within noise of LevelDB even at toy scale.
	if seal.RandRead < ldb.RandRead*0.8 {
		t.Errorf("rand read: sealdb %.0f far below leveldb %.0f", seal.RandRead, ldb.RandRead)
	}
	if seal.SeqRead < ldb.SeqRead*0.8 {
		t.Errorf("seq read: sealdb %.0f far below leveldb %.0f", seal.SeqRead, ldb.SeqRead)
	}
	PrintMicroRows(io.Discard, "Fig 8", rows)
}

// TestHeadlineShapesAtFullScale runs Figure 8 at the canonical
// benchmark scale and asserts the paper's headline results: SEALDB
// beats LevelDB by a factor in the 3.42x ballpark and beats SMRDB
// (1.67x in the paper) on random load, and wins sequential reads.
// Takes a few minutes; skipped with -short.
func TestHeadlineShapesAtFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale headline shapes: run without -short")
	}
	o := DefaultOptions()
	o.ReadOps = 2000
	rows, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	byStore := map[string]MicroRow{}
	for _, r := range rows {
		byStore[r.Store] = r
	}
	ldb, smrdb, seal := byStore["leveldb"], byStore["smrdb"], byStore["sealdb"]
	if factor := seal.RandWrite / ldb.RandWrite; factor < 2 {
		t.Errorf("random write: sealdb only %.2fx leveldb (paper: 3.42x)", factor)
	}
	if factor := seal.RandWrite / smrdb.RandWrite; factor < 1.2 {
		t.Errorf("random write: sealdb only %.2fx smrdb (paper: 1.67x)", factor)
	}
	if factor := smrdb.RandWrite / ldb.RandWrite; factor < 1.5 {
		t.Errorf("random write: smrdb only %.2fx leveldb (paper: ~2x)", factor)
	}
	if factor := seal.SeqRead / ldb.SeqRead; factor < 1.2 {
		t.Errorf("seq read: sealdb only %.2fx leveldb (paper: 3.96x)", factor)
	}
	PrintMicroRows(io.Discard, "Fig 8 (full scale)", rows)
}

func TestFig9YCSBShapes(t *testing.T) {
	o := testOptions()
	o.LoadMB = 6
	rows, err := RunFig9(o)
	if err != nil {
		t.Fatal(err)
	}
	byStore := map[string]YCSBRow{}
	for _, r := range rows {
		byStore[r.Store] = r
	}
	ldb, seal := byStore["leveldb"], byStore["sealdb"]
	if seal.Load <= ldb.Load {
		t.Errorf("YCSB load: sealdb %.0f <= leveldb %.0f", seal.Load, ldb.Load)
	}
	// Update-heavy workload A: SEALDB wins.
	if seal.Ops["A"] <= ldb.Ops["A"] {
		t.Errorf("workload A: sealdb %.0f <= leveldb %.0f", seal.Ops["A"], ldb.Ops["A"])
	}
	for _, wl := range []string{"A", "B", "C", "D", "E", "F"} {
		if seal.Ops[wl] <= 0 {
			t.Errorf("workload %s produced no throughput", wl)
		}
	}
	PrintFig9(io.Discard, rows)
}

func TestFig10CompactionShapes(t *testing.T) {
	rows, err := RunFig10(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	byStore := map[string]*CompactionProfile{}
	for _, p := range rows {
		byStore[p.Store] = p
	}
	ldb, smrdb, seal := byStore["leveldb"], byStore["smrdb"], byStore["sealdb"]
	// SEALDB spends less total compaction time than LevelDB (paper:
	// 4.3x lower).
	if seal.TotalTime >= ldb.TotalTime {
		t.Errorf("total compaction time: sealdb %v >= leveldb %v", seal.TotalTime, ldb.TotalTime)
	}
	// SMRDB: fewer but much larger compactions.
	if smrdb.Compactions >= seal.Compactions {
		t.Errorf("smrdb ran %d compactions, sealdb %d: expected fewer", smrdb.Compactions, seal.Compactions)
	}
	if smrdb.MeanBytes <= 2*seal.MeanBytes {
		t.Errorf("smrdb mean compaction %.0f not much larger than sealdb %.0f", smrdb.MeanBytes, seal.MeanBytes)
	}
	PrintFig10(io.Discard, rows)
	WriteFig10CSV(io.Discard, rows)
}

func TestFig12AmplificationShapes(t *testing.T) {
	rows, err := RunFig12(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	byStore := map[string]AmplificationRow{}
	for _, r := range rows {
		byStore[r.Store] = r
	}
	ldb, smrdb, seal := byStore["leveldb"], byStore["smrdb"], byStore["sealdb"]
	if seal.AWA != 1.0 {
		t.Errorf("SEALDB AWA = %v, want 1.0", seal.AWA)
	}
	if smrdb.AWA != 1.0 {
		t.Errorf("SMRDB AWA = %v, want 1.0 (dedicated bands)", smrdb.AWA)
	}
	if ldb.AWA <= 1.2 {
		t.Errorf("LevelDB AWA = %v, want well above 1", ldb.AWA)
	}
	if seal.MWA >= ldb.MWA {
		t.Errorf("MWA: sealdb %.2f >= leveldb %.2f", seal.MWA, ldb.MWA)
	}
	PrintFig12(io.Discard, rows)
}

func TestFig13FragmentShapes(t *testing.T) {
	res, points, err := RunFig13(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bands == 0 {
		t.Fatal("no dynamic bands")
	}
	if len(points) != res.Bands {
		t.Errorf("band points %d != bands %d", len(points), res.Bands)
	}
	if res.FragmentOfUsed < 0 || res.FragmentOfUsed > 0.5 {
		t.Errorf("fragments are %.1f%% of occupied space; paper reports ~9%%",
			100*res.FragmentOfUsed)
	}
	PrintFig13(io.Discard, res)
}

func TestFig14AblationShapes(t *testing.T) {
	rows, err := RunFig14(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	byStore := map[string]MicroRow{}
	for _, r := range rows {
		byStore[r.Store] = r
	}
	ldb, sets, seal := byStore["leveldb"], byStore["leveldb+sets"], byStore["sealdb"]
	// Sets alone already help random writes; dynamic bands complete
	// the improvement (Figure 14's staircase).
	if sets.RandWrite <= ldb.RandWrite {
		t.Errorf("rand write: leveldb+sets %.0f <= leveldb %.0f", sets.RandWrite, ldb.RandWrite)
	}
	if seal.RandWrite <= sets.RandWrite {
		t.Errorf("rand write: sealdb %.0f <= leveldb+sets %.0f", seal.RandWrite, sets.RandWrite)
	}
	PrintMicroRows(io.Discard, "Fig 14", rows)
}
