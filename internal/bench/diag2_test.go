package bench

import (
	"fmt"
	"testing"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/ycsb"
)

func TestDiagAblation(t *testing.T) {
	o := QuickOptions()
	for _, mode := range []lsm.Mode{lsm.ModeLevelDB, lsm.ModeLevelDBSets, lsm.ModeSEALDB} {
		db, _ := o.openStore(mode)
		runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
		start := simTime(db)
		runner.LoadRandom(o.Records())
		d := simTime(db) - start
		amp := db.Amplification()
		st := db.Stats()
		var compTime time.Duration
		for _, ci := range st.Compactions {
			compTime += ci.Latency
		}
		ds := db.Device().Disk.Stats()
		fmt.Printf("%-14s load %7.0f ops/s  WA %.2f AWA %.3f MWA %.2f  compactions %d (%.1fs) seeks %d\n",
			mode, float64(o.Records())/d.Seconds(), amp.WA, amp.AWA, amp.MWA,
			st.CompactionCount, compTime.Seconds(), ds.Seeks)
		db.Close()
	}
}
