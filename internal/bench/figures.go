package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Figures 2 and 11 — per-compaction data layout

// LayoutPoint is one SSTable write of one compaction: the data behind
// the scatter plots of Figures 2 (LevelDB) and 11 (SEALDB).
type LayoutPoint struct {
	Compaction int64   `json:"compaction"`
	OffsetMB   float64 `json:"offset_mb"`
	LengthKB   float64 `json:"length_kb"`
}

// LayoutResult summarizes a layout trace.
type LayoutResult struct {
	Store  string
	Points []LayoutPoint
	// Compactions is the number of set-producing merges observed.
	Compactions int
	// SpanMB is the device address range the compaction writes
	// covered (Figure 2 shows LevelDB spanning the whole first 10 GB;
	// Figure 11 shows SEALDB packing into a small prefix).
	SpanMB float64
	// FootprintMB is the device space occupied at the end.
	FootprintMB float64
	// MeanExtentsPerCompaction counts discontiguous write runs per
	// compaction (1.0 = perfectly sequential sets).
	MeanExtentsPerCompaction float64
}

// RunLayout loads a store randomly and collects the physical address
// of every compaction output SSTable (the paper traced these with
// "Ext4 Magic"); mode selects Figure 2 (ModeLevelDB) or 11
// (ModeSEALDB).
func RunLayout(o Options, mode lsm.Mode) (*LayoutResult, error) {
	db, err := o.openStore(mode)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
	if err := runner.LoadRandom(o.Records()); err != nil {
		return nil, err
	}

	res := &LayoutResult{Store: mode.String()}
	var minOff, maxOff int64 = 1 << 62, 0
	var extents int
	for _, ci := range db.Stats().Compactions {
		if ci.Flush || ci.TrivialMove || len(ci.OutputPlacements) == 0 {
			continue
		}
		res.Compactions++
		var lastEnd int64 = -1
		for _, ext := range ci.OutputPlacements {
			res.Points = append(res.Points, LayoutPoint{
				Compaction: int64(ci.ID),
				OffsetMB:   float64(ext.Off) / float64(kv.MiB),
				LengthKB:   float64(ext.Len) / float64(kv.KiB),
			})
			if ext.Off < minOff {
				minOff = ext.Off
			}
			if ext.End() > maxOff {
				maxOff = ext.End()
			}
			if ext.Off != lastEnd {
				extents++
			}
			lastEnd = ext.End()
		}
	}
	if maxOff > minOff {
		res.SpanMB = float64(maxOff-minOff) / float64(kv.MiB)
	}
	if res.Compactions > 0 {
		res.MeanExtentsPerCompaction = float64(extents) / float64(res.Compactions)
	}
	// Footprint: how much device address space the store occupies.
	if dbm := db.Device().DBand; dbm != nil {
		res.FootprintMB = float64(dbm.Frontier()) / float64(kv.MiB)
	} else if fs := db.Device().ExtFS; fs != nil {
		res.FootprintMB = float64(fs.HighWater()) / float64(kv.MiB)
	}
	return res, nil
}

// PrintLayout renders a layout summary.
func PrintLayout(w io.Writer, fig string, r *LayoutResult) {
	fprintf(w, "%s (%s): %d compactions, writes span %.1f MB, footprint %.1f MB, %.2f extents/compaction\n",
		fig, r.Store, r.Compactions, r.SpanMB, r.FootprintMB, r.MeanExtentsPerCompaction)
}

// WriteLayoutCSV dumps the scatter data for plotting.
func WriteLayoutCSV(w io.Writer, r *LayoutResult) {
	fprintf(w, "compaction,offset_mb,length_kb\n")
	for _, p := range r.Points {
		fprintf(w, "%d,%.3f,%.3f\n", p.Compaction, p.OffsetMB, p.LengthKB)
	}
}

// ---------------------------------------------------------------------------
// Figure 3 — band-size sweep

// BandSweepRow is one band size of Figure 3.
type BandSweepRow struct {
	BandSSTables float64 // band size in SSTable units (paper: 5..15)
	BandMB       float64
	// Figure 3(a)
	SSTablesPerCompaction float64
	BandsPerCompaction    float64
	// Figure 3(b)
	WA  float64
	MWA float64
}

// RunFig3 loads LevelDB-on-SMR at several band sizes and measures how
// many SSTables and bands one compaction touches, and the resulting
// WA/MWA.
func RunFig3(o Options) ([]BandSweepRow, error) {
	sst := o.Geometry.SSTableSize
	var rows []BandSweepRow
	for _, units := range []float64{5, 7.5, 10, 12.5, 15} {
		g := o.Geometry
		g.BandSize = int64(units * float64(sst))
		opts := o
		opts.Geometry = g
		db, err := lsm.Open(lsm.Config{Mode: lsm.ModeLevelDB, Geometry: g, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
		if err := runner.LoadRandom(o.Records()); err != nil {
			return nil, err
		}

		// Per-compaction: SSTables written and distinct bands their
		// placements touch (Figure 3(a)).
		var sstSum, bandSum, n float64
		for _, ci := range db.Stats().Compactions {
			if ci.Flush || ci.TrivialMove || len(ci.OutputPlacements) == 0 {
				continue
			}
			bands := map[int64]bool{}
			for _, ext := range ci.OutputPlacements {
				for b := ext.Off / g.BandSize; b <= (ext.End()-1)/g.BandSize; b++ {
					bands[b] = true
				}
			}
			sstSum += float64(ci.OutputFiles)
			bandSum += float64(len(bands))
			n++
		}
		amp := db.Amplification()
		row := BandSweepRow{
			BandSSTables: units,
			BandMB:       float64(g.BandSize) / float64(kv.MiB),
			WA:           amp.WA,
			MWA:          amp.MWA,
		}
		if n > 0 {
			row.SSTablesPerCompaction = sstSum / n
			row.BandsPerCompaction = bandSum / n
		}
		rows = append(rows, row)
		db.Close()
	}
	return rows, nil
}

// PrintFig3 renders the band-size sweep.
func PrintFig3(w io.Writer, rows []BandSweepRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 3: band size (SSTables)\tband MB\tSSTables/compaction\tbands/compaction\tWA\tMWA\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.BandSSTables, r.BandMB, r.SSTablesPerCompaction, r.BandsPerCompaction, r.WA, r.MWA)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Figure 10 — compaction latency and size

// CompactionProfile is one store's compaction behaviour during a
// random load.
type CompactionProfile struct {
	Store       string
	Latencies   []time.Duration // per merge compaction, in order
	Compactions int
	TotalTime   time.Duration
	MeanBytes   float64 // average input+output data per compaction
	// MeanSetBytes is the average compaction unit (inputs from the
	// next level) — the paper equates it with the average set size.
	MeanSetBytes float64
	MeanSetFiles float64
}

// RunFig10 loads each store randomly and profiles its compactions.
func RunFig10(o Options) ([]*CompactionProfile, error) {
	var out []*CompactionProfile
	for _, mode := range []lsm.Mode{lsm.ModeLevelDB, lsm.ModeSMRDB, lsm.ModeSEALDB} {
		db, err := o.openStore(mode)
		if err != nil {
			return nil, err
		}
		runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
		if err := runner.LoadRandom(o.Records()); err != nil {
			return nil, err
		}
		p := &CompactionProfile{Store: mode.String()}
		var bytesSum, setBytes, setFiles float64
		var setN float64
		for _, ci := range db.Stats().Compactions {
			if ci.Flush || ci.TrivialMove {
				continue
			}
			p.Compactions++
			p.Latencies = append(p.Latencies, ci.Latency)
			p.TotalTime += ci.Latency
			bytesSum += float64(ci.InputBytes + ci.OutputBytes)
			if ci.Inputs1 > 0 {
				setBytes += float64(ci.InputBytes)
				setFiles += float64(ci.Inputs1)
				setN++
			}
		}
		if p.Compactions > 0 {
			p.MeanBytes = bytesSum / float64(p.Compactions)
		}
		if setN > 0 {
			p.MeanSetBytes = setBytes / setN
			p.MeanSetFiles = setFiles / setN
		}
		out = append(out, p)
		db.Close()
	}
	return out, nil
}

// PrintFig10 renders the compaction profiles.
func PrintFig10(w io.Writer, profiles []*CompactionProfile) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 10: store\tcompactions\ttotal latency\tmean latency\tavg compaction MB\tavg set files\n")
	for _, p := range profiles {
		mean := time.Duration(0)
		if p.Compactions > 0 {
			mean = p.TotalTime / time.Duration(p.Compactions)
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%.2f\t%.2f\n",
			p.Store, p.Compactions, p.TotalTime.Round(time.Millisecond),
			mean.Round(time.Microsecond), p.MeanBytes/float64(kv.MiB), p.MeanSetFiles)
	}
	tw.Flush()
}

// WriteFig10CSV dumps the per-compaction latency series.
func WriteFig10CSV(w io.Writer, profiles []*CompactionProfile) {
	fprintf(w, "store,compaction,latency_ms\n")
	for _, p := range profiles {
		for i, l := range p.Latencies {
			fprintf(w, "%s,%d,%.3f\n", p.Store, i+1, float64(l.Microseconds())/1000)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 12 — write amplification

// AmplificationRow is one store's WA/AWA/MWA after a random load.
type AmplificationRow struct {
	Store string
	lsm.Amplification
}

// RunFig12 measures the three stores' write amplification.
func RunFig12(o Options) ([]AmplificationRow, error) {
	var rows []AmplificationRow
	for _, mode := range []lsm.Mode{lsm.ModeLevelDB, lsm.ModeSMRDB, lsm.ModeSEALDB} {
		db, err := o.openStore(mode)
		if err != nil {
			return nil, err
		}
		runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
		if err := runner.LoadRandom(o.Records()); err != nil {
			return nil, err
		}
		rows = append(rows, AmplificationRow{Store: mode.String(), Amplification: db.Amplification()})
		db.Close()
	}
	return rows, nil
}

// PrintFig12 renders the amplification table.
func PrintFig12(w io.Writer, rows []AmplificationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 12: store\tWA\tAWA\tMWA\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.2f\n", r.Store, r.WA, r.AWA, r.MWA)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Figure 13 — dynamic bands and fragments

// FragmentResult is the dynamic-band census after a random load.
type FragmentResult struct {
	Bands          int
	MeanBandMB     float64
	MaxBandMB      float64
	OccupiedMB     float64
	FragmentMB     float64
	FragmentOfUsed float64 // fragments / occupied space (paper: 9.32%)
	AvgSetBytes    int64   // fragment threshold used
}

// RunFig13 loads SEALDB randomly and reports the dynamic band layout
// and fragment census, using the measured average set size as the
// fragment threshold as the paper does.
func RunFig13(o Options) (*FragmentResult, []LayoutPoint, error) {
	db, err := o.openStore(lsm.ModeSEALDB)
	if err != nil {
		return nil, nil, err
	}
	defer db.Close()
	runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
	if err := runner.LoadRandom(o.Records()); err != nil {
		return nil, nil, err
	}

	// Average set size from the compaction trace.
	var setBytes float64
	var setN float64
	for _, ci := range db.Stats().Compactions {
		if !ci.Flush && !ci.TrivialMove && ci.Inputs1 > 0 {
			setBytes += float64(ci.OutputBytes)
			setN++
		}
	}
	avgSet := int64(0)
	if setN > 0 {
		avgSet = int64(setBytes / setN)
	}

	mgr := db.Device().DBand
	bands := mgr.Bands()
	res := &FragmentResult{Bands: len(bands), AvgSetBytes: avgSet}
	var total, max int64
	var points []LayoutPoint
	for i, b := range bands {
		total += b.Len
		if b.Len > max {
			max = b.Len
		}
		points = append(points, LayoutPoint{
			Compaction: int64(i),
			OffsetMB:   float64(b.Off) / float64(kv.MiB),
			LengthKB:   float64(b.Len) / float64(kv.KiB),
		})
	}
	if len(bands) > 0 {
		res.MeanBandMB = float64(total) / float64(len(bands)) / float64(kv.MiB)
		res.MaxBandMB = float64(max) / float64(kv.MiB)
	}
	res.OccupiedMB = float64(mgr.Frontier()) / float64(kv.MiB)
	res.FragmentMB = float64(mgr.FragmentBytes(avgSet)) / float64(kv.MiB)
	if res.OccupiedMB > 0 {
		res.FragmentOfUsed = res.FragmentMB / res.OccupiedMB
	}
	return res, points, nil
}

// PrintFig13 renders the fragment census.
func PrintFig13(w io.Writer, r *FragmentResult) {
	fprintf(w, "Fig 13: %d dynamic bands (mean %.2f MB, max %.2f MB), occupied %.1f MB, fragments %.2f MB (%.2f%% of occupied, threshold = avg set %.2f MB)\n",
		r.Bands, r.MeanBandMB, r.MaxBandMB, r.OccupiedMB, r.FragmentMB,
		100*r.FragmentOfUsed, float64(r.AvgSetBytes)/float64(kv.MiB))
}
