package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/ycsb"
)

// LatencyRow is one store's per-operation simulated latency profile
// under a workload — the tail-latency view the paper's bimodal-SMR
// discussion (§II-C) motivates: LevelDB's reads and writes stall
// behind band cleaning, SEALDB's do not.
type LatencyRow struct {
	Store  string
	Reads  *Histogram
	Writes *Histogram
}

// RunLatencyProfile loads each store and runs a 50/50 read/update mix
// (YCSB-A) measuring each operation's simulated device time.
func RunLatencyProfile(o Options) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, mode := range []lsm.Mode{lsm.ModeLevelDB, lsm.ModeSMRDB, lsm.ModeSEALDB} {
		db, err := o.openStore(mode)
		if err != nil {
			return nil, err
		}
		runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
		records := o.Records()
		if err := runner.LoadRandom(records); err != nil {
			return nil, err
		}

		row := LatencyRow{Store: mode.String(), Reads: &Histogram{}, Writes: &Histogram{}}
		rng := newRng(o.Seed + 3)
		gen := ycsb.NewScrambledZipfian(records)
		val := make([]byte, o.ValueSize)
		clock := func() time.Duration { return db.Device().Disk.Stats().BusyTime }
		for i := 0; i < o.YCSBOps; i++ {
			key := ycsb.Key(gen.Next(rng))
			start := clock()
			if i%2 == 0 {
				if _, err := db.Get(key); err != nil && err != lsm.ErrNotFound {
					return nil, err
				}
				row.Reads.Add(clock() - start)
			} else {
				rng.Read(val)
				if err := db.Put(key, val); err != nil {
					return nil, err
				}
				row.Writes.Add(clock() - start)
			}
		}
		rows = append(rows, row)
		db.Close()
	}
	return rows, nil
}

// PrintLatencyRows renders the latency profiles.
func PrintLatencyRows(w io.Writer, rows []LatencyRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Latency (simulated): store\treads\twrites\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Store, r.Reads.Summary(), r.Writes.Summary())
	}
	tw.Flush()
}

// GCAblationResult compares fragment state and cost before/after a
// DefragmentBands pass — the evaluation of the paper's future-work GC.
type GCAblationResult struct {
	lsm.GCResult
	// GCTime is the simulated device time the pass consumed.
	GCTime time.Duration
	// FragPctBefore/After are fragments as a share of occupied space
	// (the Fig 13 metric).
	FragPctBefore float64
	FragPctAfter  float64
}

// RunGCAblation loads SEALDB, measures fragments (Fig 13 style), runs
// the defragmentation pass, and measures again.
func RunGCAblation(o Options) (*GCAblationResult, error) {
	db, err := o.openStore(lsm.ModeSEALDB)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	runner := ycsb.NewRunner(storeAdapter{db}, o.ValueSize, o.Seed)
	if err := runner.LoadRandom(o.Records()); err != nil {
		return nil, err
	}
	mgr := db.Device().DBand
	occBefore := float64(mgr.Frontier())

	start := simTime(db)
	gc, err := db.DefragmentBands(0)
	if err != nil {
		return nil, err
	}
	res := &GCAblationResult{GCResult: gc, GCTime: simTime(db) - start}
	if occBefore > 0 {
		res.FragPctBefore = float64(gc.FragmentsBefore) / occBefore
	}
	if occ := float64(mgr.Frontier()); occ > 0 {
		res.FragPctAfter = float64(gc.FragmentsAfter) / occ
	}
	if err := db.VerifyIntegrity(); err != nil {
		return nil, fmt.Errorf("integrity after GC: %w", err)
	}
	return res, nil
}

// PrintGCAblation renders the GC ablation.
func PrintGCAblation(w io.Writer, r *GCAblationResult) {
	fprintf(w, "GC ablation: moved %d sets (%.2f MiB) in %v simulated; fragments %.2f%% -> %.2f%% of occupied\n",
		r.SetsMoved, float64(r.BytesMoved)/(1<<20), r.GCTime.Round(time.Millisecond),
		100*r.FragPctBefore, 100*r.FragPctAfter)
}
