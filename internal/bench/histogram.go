package bench

import (
	"fmt"
	"sync"
	"time"

	"sealdb/internal/obs"
)

// Histogram collects duration samples and reports percentiles; used
// for per-operation simulated latencies. Samples land in obs's
// fixed-bucket log-scaled histogram, so memory stays bounded no
// matter how long the run is: percentiles carry the bucket layout's
// ≤6.25% relative error, while N, Sum, Mean and Max remain exact.
// The zero value is ready to use, and all methods are safe for
// concurrent use.
type Histogram struct {
	once sync.Once
	h    *obs.Histogram
}

func (h *Histogram) hist() *obs.Histogram {
	h.once.Do(func() { h.h = obs.NewHistogram() })
	return h.h
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) { h.hist().Observe(int64(d)) }

// N returns the sample count.
func (h *Histogram) N() int { return int(h.hist().Snapshot().Count) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.hist().Snapshot().Sum) }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	s := h.hist().Snapshot()
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank over the buckets: the result is the upper bound of the
// bucket holding the ranked sample, clamped to the exact maximum.
func (h *Histogram) Percentile(p float64) time.Duration {
	return time.Duration(h.hist().Snapshot().Quantile(p / 100))
}

// Max returns the largest sample (exact).
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.hist().Snapshot().Max)
}

// Summary renders "mean / p50 / p99 / max".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean %v  p50 %v  p99 %v  max %v",
		h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}
