package bench

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram collects duration samples and reports percentiles; used
// for per-operation simulated latencies.
type Histogram struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
	h.sum += d
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Summary renders "mean / p50 / p99 / max".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean %v  p50 %v  p99 %v  max %v",
		h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}
