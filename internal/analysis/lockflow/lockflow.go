// Package lockflow is a small abstract interpreter over function
// bodies that tracks which named locks are held at each point, shared
// by the guardedby and lockorder analyzers. It walks statements in
// evaluation order, maintaining a held-lock map that a classifier
// callback updates on Lock/RLock/Unlock/RUnlock calls, and it merges
// states across branches:
//
//   - an if/switch/select arm that terminates (return, break, panic)
//     contributes nothing to the post-branch state, so the ubiquitous
//     "if bad { mu.Unlock(); return }" early exit does not strip the
//     lock from the fallthrough path;
//   - arms that fall through are intersected (a lock is held after the
//     branch only if every surviving arm holds it, at the weakest mode
//     any arm holds it);
//   - loop bodies may run zero times, so the post-loop state is the
//     entry state intersected with the body's exit state;
//   - "defer mu.Unlock()" (directly or inside a deferred closure)
//     pins the lock held to function exit;
//   - a "go func(){...}" body runs on a fresh goroutine and is walked
//     with an empty held set (or handed to the GoBody hook);
//   - other function literals are walked inline on a copy of the
//     current state, approximating the synchronous-callback case.
//
// The walker is deliberately an approximation: it has no aliasing, no
// inter-statement path conditions, and identifies locks only through
// the classifier. It errs toward fewer false positives (intersection
// merges, zero-iteration loops) and leaves soundness gaps that the
// runtime lock-order watchdog covers from the other side.
package lockflow

import (
	"go/ast"
	"go/token"
)

// Mode is the strength of a held lock.
type Mode int

const (
	// R is a read (shared) hold.
	R Mode = iota + 1
	// W is a write (exclusive) hold.
	W
)

// Op classifies a call's effect on a lock.
type Op int

const (
	// None means the call is not a lock operation.
	None Op = iota
	// Acquire is an exclusive acquisition (Lock).
	Acquire
	// AcquireR is a shared acquisition (RLock).
	AcquireR
	// Release is an exclusive release (Unlock).
	Release
	// ReleaseR is a shared release (RUnlock).
	ReleaseR
)

// Hooks parameterizes one walk.
type Hooks struct {
	// Classify inspects a call expression and names the lock it
	// operates on ("" + None when it is not a lock operation).
	Classify func(call *ast.CallExpr) (name string, op Op)
	// Visit observes every node in approximate evaluation order with
	// the locks held at that point. The map is the walker's working
	// state: read it, do not retain or mutate it. Children of a
	// classified lock-operation call are not visited.
	Visit func(n ast.Node, held map[string]Mode)
	// Acquire observes each acquisition with the locks held just
	// before it (the nested-acquisition event lockorder consumes).
	Acquire func(name string, op Op, pos token.Pos, held map[string]Mode)
	// GoBody, when non-nil, takes over walking the body of a
	// "go func(){...}" statement (which starts with nothing held);
	// when nil the walker inlines it with an empty held set.
	GoBody func(body *ast.BlockStmt)
}

// state is the abstract interpreter's working memory.
type state struct {
	held   map[string]Mode
	sticky map[string]bool // deferred releases: held to function exit
}

func newState(entry map[string]Mode) *state {
	st := &state{held: map[string]Mode{}, sticky: map[string]bool{}}
	for k, v := range entry {
		st.held[k] = v
	}
	return st
}

func (st *state) clone() *state {
	c := &state{held: make(map[string]Mode, len(st.held)), sticky: make(map[string]bool, len(st.sticky))}
	for k, v := range st.held {
		c.held[k] = v
	}
	for k := range st.sticky {
		c.sticky[k] = true
	}
	return c
}

// merge intersects two fallthrough states: a lock survives only if
// both paths hold it, at the weaker of the two modes. Sticky marks
// union (a defer executed on either path is armed for exit).
func merge(a, b *state) *state {
	out := &state{held: map[string]Mode{}, sticky: map[string]bool{}}
	for k, ma := range a.held {
		if mb, ok := b.held[k]; ok {
			m := ma
			if mb < m {
				m = mb
			}
			out.held[k] = m
		}
	}
	for k := range a.sticky {
		out.sticky[k] = true
	}
	for k := range b.sticky {
		out.sticky[k] = true
	}
	return out
}

// Walk interprets body with the given entry held set.
func Walk(body *ast.BlockStmt, entry map[string]Mode, h Hooks) {
	if body == nil {
		return
	}
	walkStmts(body.List, newState(entry), h)
}

// walkStmts runs a statement list, returning true if the list
// terminates abruptly (return, branch, panic) before its end.
func walkStmts(list []ast.Stmt, st *state, h Hooks) bool {
	for _, s := range list {
		if walkStmt(s, st, h) {
			return true
		}
	}
	return false
}

func walkStmt(s ast.Stmt, st *state, h Hooks) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			inspect(r, st, h)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end linear flow within this list; the
		// enclosing construct's merge rules absorb the approximation.
		return true
	case *ast.ExprStmt:
		inspect(s.X, st, h)
		return isPanic(s.X)
	case *ast.BlockStmt:
		return walkStmts(s.List, st, h)
	case *ast.LabeledStmt:
		return walkStmt(s.Stmt, st, h)
	case *ast.IfStmt:
		return walkIf(s, st, h)
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(s.Init, st, h)
		}
		if s.Cond != nil {
			inspect(s.Cond, st, h)
		}
		body := st.clone()
		if !walkStmts(s.Body.List, body, h) && s.Post != nil {
			walkStmt(s.Post, body, h)
		}
		*st = *merge(st, body)
		return false
	case *ast.RangeStmt:
		inspect(s.X, st, h)
		body := st.clone()
		walkStmts(s.Body.List, body, h)
		*st = *merge(st, body)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(s.Init, st, h)
		}
		if s.Tag != nil {
			inspect(s.Tag, st, h)
		}
		return walkClauses(s.Body, st, h, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkStmt(s.Init, st, h)
		}
		walkStmt(s.Assign, st, h)
		return walkClauses(s.Body, st, h, false)
	case *ast.SelectStmt:
		// A select always runs exactly one of its arms.
		return walkClauses(s.Body, st, h, true)
	case *ast.DeferStmt:
		walkDefer(s, st, h)
		return false
	case *ast.GoStmt:
		walkGo(s, st, h)
		return false
	default:
		// Assignments, declarations, sends, incs: evaluation order
		// within one simple statement does not matter for lock state.
		inspect(s, st, h)
		return false
	}
}

func walkIf(s *ast.IfStmt, st *state, h Hooks) bool {
	if s.Init != nil {
		walkStmt(s.Init, st, h)
	}
	inspect(s.Cond, st, h)
	then := st.clone()
	thenTerm := walkStmts(s.Body.List, then, h)
	if s.Else == nil {
		if !thenTerm {
			*st = *merge(st, then)
		}
		return false
	}
	els := st.clone()
	var elseTerm bool
	if blk, ok := s.Else.(*ast.BlockStmt); ok {
		elseTerm = walkStmts(blk.List, els, h)
	} else {
		elseTerm = walkStmt(s.Else, els, h)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		*st = *els
	case elseTerm:
		*st = *then
	default:
		*st = *merge(then, els)
	}
	return false
}

// walkClauses interprets a switch/select body. exhaustive marks a
// construct that always executes one arm (select); a switch is
// exhaustive only when it has a default clause.
func walkClauses(body *ast.BlockStmt, st *state, h Hooks, exhaustive bool) bool {
	var surviving []*state
	clauses := 0
	for _, cs := range body.List {
		clauses++
		var stmts []ast.Stmt
		cst := st.clone()
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				exhaustive = true
			}
			for _, e := range cc.List {
				inspect(e, cst, h)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				walkStmt(cc.Comm, cst, h)
			}
			stmts = cc.Body
		}
		if !walkStmts(stmts, cst, h) {
			surviving = append(surviving, cst)
		}
	}
	if clauses > 0 && exhaustive && len(surviving) == 0 {
		return true
	}
	if len(surviving) > 0 {
		acc := surviving[0]
		for _, s2 := range surviving[1:] {
			acc = merge(acc, s2)
		}
		if exhaustive {
			*st = *acc
		} else {
			*st = *merge(st, acc)
		}
	}
	return false
}

// walkDefer handles defer statements: a deferred release pins the
// lock held to function exit; a deferred closure is scanned for
// releases with the same effect and then walked on a copy of the
// current state so its own accesses are still checked.
func walkDefer(s *ast.DeferStmt, st *state, h Hooks) {
	if h.Classify != nil {
		if name, op := h.Classify(s.Call); op == Release || op == ReleaseR {
			if _, held := st.held[name]; held {
				st.sticky[name] = true
			}
			return
		}
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		if h.Classify != nil {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, op := h.Classify(call); op == Release || op == ReleaseR {
					if _, held := st.held[name]; held {
						st.sticky[name] = true
					}
				}
				return true
			})
		}
		walkStmts(lit.Body.List, st.clone(), h)
		for _, arg := range s.Call.Args {
			inspect(arg, st, h)
		}
		return
	}
	inspect(s.Call, st, h)
}

func walkGo(s *ast.GoStmt, st *state, h Hooks) {
	for _, arg := range s.Call.Args {
		inspect(arg, st, h)
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		if h.GoBody != nil {
			h.GoBody(lit.Body)
		} else {
			walkStmts(lit.Body.List, newState(nil), h)
		}
		return
	}
	inspect(s.Call.Fun, st, h)
}

// inspect visits an expression (or simple statement) subtree in
// pre-order, applying lock operations and visiting every other node
// with the current state. Function literals are interpreted on a copy
// of the current state (the synchronous-callback approximation).
func inspect(n ast.Node, st *state, h Hooks) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			walkStmts(n.Body.List, st.clone(), h)
			return false
		case *ast.CallExpr:
			if h.Classify != nil {
				if name, op := h.Classify(n); op != None {
					apply(name, op, n.Pos(), st, h)
					for _, arg := range n.Args {
						inspect(arg, st, h)
					}
					return false
				}
			}
		}
		if h.Visit != nil {
			h.Visit(n, st.held)
		}
		return true
	})
}

func apply(name string, op Op, pos token.Pos, st *state, h Hooks) {
	switch op {
	case Acquire, AcquireR:
		if h.Acquire != nil {
			h.Acquire(name, op, pos, st.held)
		}
		mode := W
		if op == AcquireR {
			mode = R
		}
		if cur, ok := st.held[name]; !ok || mode > cur {
			st.held[name] = mode
		}
	case Release, ReleaseR:
		if !st.sticky[name] {
			delete(st.held, name)
		}
	}
}

// isPanic reports whether an expression statement unconditionally
// aborts the function: panic(...) or os.Exit(...).
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}
