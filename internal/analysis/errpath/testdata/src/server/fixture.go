// Package server is the serving-layer errpath fixture: the analyzer's
// scope extension (PR 4) must flag discarded network-write errors here
// exactly as it does on the device path.
package server

type framer struct{}

func (f *framer) WriteFrame(p []byte) error { return nil }
func (f *framer) Flush() error              { return nil }
func (f *framer) Remote() string            { return "" }

// Bad: a dropped WriteFrame error is a lost acknowledgement.
func discards(f *framer, p []byte) {
	f.WriteFrame(p)       // want "error from WriteFrame discarded on device write/sync path"
	_ = f.Flush()         // want "error from Flush discarded on device write/sync path"
	defer f.WriteFrame(p) // want "error from WriteFrame discarded on device write/sync path"
}

// Good: errors handled or propagated.
func handled(f *framer, p []byte) error {
	if err := f.WriteFrame(p); err != nil {
		return err
	}
	return f.Flush()
}

// Good: non-write calls are out of scope.
func nonWrite(f *framer) {
	_ = f.Remote()
}
