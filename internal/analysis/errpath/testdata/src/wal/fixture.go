// Package wal is the errpath fixture, named to land in the analyzer's
// device-path scope.
package wal

type device struct{}

func (d *device) WriteAt(p []byte, off int64) (int64, error) { return 0, nil }
func (d *device) Sync() error                                { return nil }
func (d *device) Flush() error                               { return nil }
func (d *device) Free(off, length int64) error               { return nil }
func (d *device) Name() string                               { return "dev" }

// Bad: every discard form on a device verb.
func discards(d *device, p []byte) {
	d.Sync()                  // want "error from Sync discarded on device write/sync path"
	_ = d.Flush()             // want "error from Flush discarded on device write/sync path"
	_, _ = d.WriteAt(p, 0)    // want "error from WriteAt discarded on device write/sync path"
	n, _ := d.WriteAt(p, 0)   // want "error from WriteAt discarded on device write/sync path"
	_ = n
	defer d.Sync()            // want "error from Sync discarded on device write/sync path"
	d.Free(0, 10)             // want "error from Free discarded on device write/sync path"
}

// Good: errors handled or propagated.
func handled(d *device, p []byte) error {
	if _, err := d.WriteAt(p, 0); err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Flush()
}

// Good: non-device calls are out of scope even when discarded.
func nonDevice(d *device) {
	_ = d.Name()
}

// Good: the reviewed escape hatch.
func waived(d *device) {
	_ = d.Sync() //sealvet:allow errpath
}
