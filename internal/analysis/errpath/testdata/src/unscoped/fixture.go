// Package unscoped is outside the device-path scope; discards here
// are another linter's business.
package unscoped

type f struct{}

func (f *f) Sync() error { return nil }

func ignore(x *f) { x.Sync() }
