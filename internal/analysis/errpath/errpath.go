// Package errpath forbids discarded errors on the device write/sync
// paths of the smr, wal, and storage packages, and on the network
// write paths of the wire and server packages. A swallowed write
// error on the device side silently corrupts the durability story the
// crash-replay suite depends on: the engine believes bytes are on the
// platter that never landed. On the serving side the stakes are the
// same one layer up: a dropped WriteFrame error acknowledges a
// request the client never hears about, or leaks a connection whose
// writer died. Both discard forms are caught — the bare call
// statement and an assignment with the blank identifier in the error
// position.
package errpath

import (
	"go/ast"
	"go/types"
	"strings"

	"sealdb/internal/analysis"
)

// Analyzer is the errpath check.
var Analyzer = &analysis.Analyzer{
	Name: "errpath",
	Doc: "no discarded errors (bare call or blank-identifier assignment) from " +
		"write/sync/flush/free calls in the smr, wal, storage, wire, and server packages",
	Run: run,
}

// scoped lists the checked packages by final path element. Scope
// decisions for the serving layer (PR 4): wire and server are in —
// their Write* calls carry acknowledgements, and a discarded error
// there breaks the at-most-once ack contract the client relies on.
// sealclient is out: its writes are covered by the waiter mechanism
// (any send failure kills the connection and fails every pending
// request), so per-call discards cannot lose an outcome. The server
// stays OUT of noclock's simulated-time scope — deadlines, drain
// timeouts, and latency series are real wall-clock concerns; see the
// noclock analyzer's scope comment.
var scoped = map[string]bool{
	"smr":     true,
	"wal":     true,
	"storage": true,
	"wire":    true,
	"server":  true,
}

// verbPrefixes name the device-mutating calls whose errors are
// load-bearing.
var verbPrefixes = []string{
	"Write", "write", "Sync", "sync", "Flush", "flush",
	"Emit", "emit", "Append", "append", "AddRecord", "Free", "Reset",
}

func run(pass *analysis.Pass) error {
	if !scoped[analysis.PkgShortName(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call)
				}
			case *ast.DeferStmt:
				checkBareCall(pass, stmt.Call)
			case *ast.GoStmt:
				checkBareCall(pass, stmt.Call)
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkBareCall flags a statement-position device call whose error
// result is implicitly discarded.
func checkBareCall(pass *analysis.Pass, call *ast.CallExpr) {
	name, ok := deviceVerb(call)
	if !ok {
		return
	}
	if pos := errResultIndex(pass, call); pos >= 0 {
		pass.Reportf(call.Pos(),
			"error from %s discarded on device write/sync path (bare call)", name)
	}
}

// checkAssign flags assignments that discard a device call's error
// through the blank identifier.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := deviceVerb(call)
	if !ok {
		return
	}
	errIdx := errResultIndex(pass, call)
	if errIdx < 0 || errIdx >= len(assign.Lhs) {
		return
	}
	if id, ok := assign.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(assign.Pos(),
			"error from %s discarded on device write/sync path (assigned to _)", name)
	}
}

// deviceVerb reports whether the call's callee name matches the
// device-mutating verb set.
func deviceVerb(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	for _, p := range verbPrefixes {
		if strings.HasPrefix(name, p) {
			return name, true
		}
	}
	return "", false
}

// errResultIndex returns the index of the error result in the call's
// result tuple, or -1 if the call returns no error.
func errResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return -1
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return i
			}
		}
		return -1
	default:
		if isErr(t) {
			return 0
		}
		return -1
	}
}
