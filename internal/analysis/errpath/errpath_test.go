package errpath_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/errpath"
)

func TestErrPath(t *testing.T) {
	analysistest.Run(t, errpath.Analyzer, "testdata/src/wal")
}

func TestOutOfScopePackageIgnored(t *testing.T) {
	analysistest.Run(t, errpath.Analyzer, "testdata/src/unscoped")
}
