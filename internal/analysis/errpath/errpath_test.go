package errpath_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/errpath"
)

func TestErrPath(t *testing.T) {
	analysistest.Run(t, errpath.Analyzer, "testdata/src/wal")
}

func TestServingLayerScoped(t *testing.T) {
	analysistest.Run(t, errpath.Analyzer, "testdata/src/server")
}

func TestOutOfScopePackageIgnored(t *testing.T) {
	analysistest.Run(t, errpath.Analyzer, "testdata/src/unscoped")
}
