// Package analysis is SEALDB's static-analysis substrate: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus a package
// loader built on go/parser and go/types with the standard library's
// source importer. It exists because the contracts the engine depends
// on — simulated-time determinism, lock discipline, exact extent
// accounting — are cheap to state mechanically but expensive to
// police by review.
//
// The API deliberately mirrors go/analysis so the analyzers under
// this directory can migrate to the upstream framework verbatim if
// the x/tools dependency ever becomes available; only the loader and
// the test harness would be deleted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one named check. Run is invoked once per loaded
// package with a fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sealvet:allow suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// NewSession, when non-nil, is called once per checker run (not
	// per package) and its result is visible to every Pass through
	// Pass.Session. Analyzers use it for cross-package state such as
	// repo-wide uniqueness sets.
	NewSession func() any
	// Run performs the check, reporting findings via Pass.Report.
	Run func(*Pass) error
	// Finish, when non-nil, is called once after every package's Run
	// with the session value. Whole-program analyzers (lockorder)
	// accumulate facts per package and do all their reporting here,
	// through the *Pass values they stashed in the session — a Pass
	// stays valid for reporting until the checker run returns.
	Finish func(session any)
}

// Pass carries one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Session is the value built by Analyzer.NewSession for this
	// checker run (nil when the analyzer declares no session).
	Session any

	testFiles  map[*ast.File]bool
	directives map[string][]directive // file name -> sealvet directives
	report     func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// IsTestFile reports whether f is an in-package _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Reportf reports a finding at pos unless a //sealvet:allow comment
// for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.SuppressedAt(pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// directive is a parsed //sealvet: comment.
type directive struct {
	line int      // source line the directive applies to
	verb string   // "allow", "transfer", ...
	args []string // comma-separated arguments, e.g. analyzer names
}

var directiveRe = regexp.MustCompile(`//\s*sealvet:(\w+)\s*([\w,\- ]*)`)

// collectDirectives indexes every //sealvet: comment in f. A
// directive applies to the line it sits on (trailing comment) and to
// the line immediately below (comment-above form).
func collectDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			var args []string
			for _, a := range strings.FieldsFunc(m[2], func(r rune) bool { return r == ',' || r == ' ' }) {
				args = append(args, strings.TrimSpace(a))
			}
			out = append(out, directive{line: fset.Position(c.Pos()).Line, verb: m[1], args: args})
		}
	}
	return out
}

// SuppressedAt reports whether a //sealvet:allow directive naming the
// analyzer covers pos (same line or the line above).
func (p *Pass) SuppressedAt(pos token.Pos, analyzer string) bool {
	return p.directiveAt(pos, "allow", analyzer)
}

// MarkedAt reports whether a //sealvet:<verb> directive (with no
// argument filtering) covers pos — e.g. the ownership-transfer
// marker //sealvet:transfer used by the extentpair analyzer.
func (p *Pass) MarkedAt(pos token.Pos, verb string) bool {
	return p.directiveAt(pos, verb, "")
}

func (p *Pass) directiveAt(pos token.Pos, verb, arg string) bool {
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.verb != verb {
			continue
		}
		if d.line != position.Line && d.line != position.Line-1 {
			continue
		}
		if arg == "" || len(d.args) == 0 {
			return true
		}
		for _, a := range d.args {
			if a == arg || a == "all" {
				return true
			}
		}
	}
	return false
}

// PkgShortName returns the final path element of a package path —
// the name analyzers scope themselves by ("sealdb/internal/smr" and
// a fixture package "smr" both map to "smr").
func PkgShortName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Finding is a positioned diagnostic as emitted by Run.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the merged
// findings sorted by position. Cross-package sessions are created
// once per call, so repo-wide checks (obsreg uniqueness) see the
// packages in the order given — callers should pass them sorted for
// deterministic duplicate attribution.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	sessions := make(map[*Analyzer]any, len(analyzers))
	for _, a := range analyzers {
		if a.NewSession != nil {
			sessions[a] = a.NewSession()
		}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				TypesInfo:  pkg.Info,
				Session:    sessions[a],
				testFiles:  pkg.TestFile,
				directives: pkg.directives,
			}
			pass.report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: d.Category,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Pos:      token.Position{Filename: pkg.Dir},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer error: %v", err),
				})
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(sessions[a])
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
