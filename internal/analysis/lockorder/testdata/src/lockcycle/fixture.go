// Package lockcycle declares a cyclic hierarchy: the declarations
// themselves are the violation, reported at the first edge that
// closes the cycle.
package lockcycle

import "sealdb/internal/obs"

// lockorder: x_mu < y_mu // want "lock-order declarations form a cycle through x_mu < y_mu"
// lockorder: y_mu < x_mu

type pair struct {
	x obs.Mutex
	y obs.Mutex
}

func newPair() *pair {
	p := &pair{}
	p.x.Profile("x_mu")
	p.y.Profile("y_mu")
	return p
}
