// Package lockord is the lockorder fixture: four named locks with a
// declared hierarchy, exercised in order, transitively, inverted,
// through helper calls, through an annotated interface, and across a
// goroutine boundary.
//
// lockorder: alpha_mu < beta_mu
// lockorder: beta_mu < gamma_mu
// lockorder: alpha_mu < delta_mu
package lockord

import "sealdb/internal/obs"

type sys struct {
	alpha obs.Mutex
	beta  obs.Mutex
	gamma obs.RWMutex
	delta obs.Mutex
}

func newSys() *sys {
	s := &sys{}
	s.alpha.Profile("alpha_mu")
	s.beta.Profile("beta_mu")
	s.gamma.Profile("gamma_mu")
	s.delta.Profile("delta_mu")
	return s
}

// Good: the declared direct edge alpha < beta.
func (s *sys) inOrder() {
	s.alpha.Lock()
	s.beta.Lock()
	s.beta.Unlock()
	s.alpha.Unlock()
}

// Good: transitive closure covers alpha < beta < gamma, and RLock is
// an acquisition like any other.
func (s *sys) transitive() {
	s.alpha.Lock()
	s.gamma.RLock()
	s.gamma.RUnlock()
	s.alpha.Unlock()
}

// Bad: inversion of a declared edge.
func (s *sys) inverted() {
	s.beta.Lock()
	s.alpha.Lock() // want "lock-order inversion: alpha_mu acquired while beta_mu held"
	s.alpha.Unlock()
	s.beta.Unlock()
}

// Bad: nesting nobody declared.
func (s *sys) undeclared() {
	s.gamma.Lock()
	s.delta.Lock() // want "undeclared nested lock acquisition: delta_mu acquired while gamma_mu held"
	s.delta.Unlock()
	s.gamma.Unlock()
}

// lockBeta is a helper whose acquisition the call-graph fixpoint must
// surface at call sites.
func (s *sys) lockBeta() {
	s.beta.Lock()
	s.beta.Unlock()
}

// Good: the helper's beta acquisition under alpha follows the order.
func (s *sys) nestedThroughCall() {
	s.alpha.Lock()
	s.lockBeta()
	s.alpha.Unlock()
}

// Bad: the helper's acquisition inverts the caller's held lock;
// reported at the call site.
func (s *sys) invertedThroughCall() {
	s.gamma.Lock()
	s.lockBeta() // want "lock-order inversion: beta_mu acquired while gamma_mu held"
	s.gamma.Unlock()
}

// hook is an opaque callback boundary: the analyzer cannot see fire's
// implementations, so the interface method carries the annotation.
type hook interface {
	// fire runs the callback.
	//
	// lockorder: acquires delta_mu
	fire()
}

// Good: alpha < delta is declared, and the annotation supplies the
// edge through the interface call.
func runHook(s *sys, h hook) {
	s.alpha.Lock()
	h.fire()
	s.alpha.Unlock()
}

// Bad: nothing orders beta against delta.
func runHookUnderBeta(s *sys, h hook) {
	s.beta.Lock()
	h.fire() // want "undeclared nested lock acquisition: delta_mu acquired while beta_mu held"
	s.beta.Unlock()
}

// Good: a reviewed exception via the marker directive.
func (s *sys) reviewedInversion() {
	s.beta.Lock()
	s.alpha.Lock() //sealvet:lockorder
	s.alpha.Unlock()
	s.beta.Unlock()
}

// Good: a goroutine starts with nothing held, so the spawner's gamma
// hold orders nothing inside the body.
func (s *sys) spawner() {
	s.gamma.Lock()
	go func() {
		s.alpha.Lock()
		s.beta.Lock()
		s.beta.Unlock()
		s.alpha.Unlock()
	}()
	s.gamma.Unlock()
}

// Good: an early-exit unlock means delta is no longer held at the
// gamma acquisition on the fallthrough path.
func (s *sys) earlyRelease(skip bool) {
	s.delta.Lock()
	if skip {
		s.delta.Unlock()
		return
	}
	s.delta.Unlock()
	s.gamma.RLock()
	s.gamma.RUnlock()
}
