package lockorder_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/lockord")
}

func TestDeclaredCycle(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/lockcycle")
}
