// Package lockorder builds a static lock-acquisition graph over the
// repo's named mutexes and checks every observed nested acquisition
// against the declared lock hierarchy.
//
// A lock participates when it has a name: an obs.Mutex / obs.RWMutex
// struct field registered via m.Profile("site_name") anywhere in its
// package. The allowed hierarchy is declared in comments:
//
//	// lockorder: lsm_db_mu < version_set_mu
//
// meaning lsm_db_mu may be held while acquiring version_set_mu (and,
// transitively, anything declared below version_set_mu). Chains are
// allowed: "// lockorder: a < b < c". Declarations may live in any
// file; they are collected repo-wide.
//
// The analyzer interprets each function body with the lockflow walker
// to learn which sites are held at each acquisition and at each call,
// then propagates "may acquire" sets over the call graph so nested
// acquisitions through helpers are seen from the outermost holder.
// Calls that cross an interface (allocator hooks, io.Writer wal
// plumbing) are opaque to the call graph; annotate the callee —
// concrete or interface method alike — with
//
//	// lockorder: acquires storage_backend_mu
//
// and the analyzer treats every call to it as potentially acquiring
// that site.
//
// Diagnostics, both suppressible per-line with //sealvet:lockorder
// (reviewed exception) or //sealvet:allow lockorder:
//
//   - lock-order inversion: b acquired while a held when the declared
//     hierarchy (transitively) orders b before a — with the runtime
//     watchdog, the static half of deadlock prevention;
//   - undeclared nested acquisition: b acquired while a held with no
//     declared path a < b — new nesting must extend the hierarchy
//     explicitly, not grow by accident;
//   - cyclic declarations: the declared graph itself must be a DAG.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"sealdb/internal/analysis"
	"sealdb/internal/analysis/lockflow"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "nested acquisitions of named (obs-profiled) mutexes must follow the declared " +
		"'// lockorder: a < b' hierarchy: inversions and undeclared nestings are flagged; " +
		"annotate opaque callees with '// lockorder: acquires <site>'; escape with //sealvet:lockorder",
	NewSession: func() any { return newSession() },
	Run:        run,
	Finish:     finish,
}

// declRe is anchored so an indented example inside another comment
// ("//\t// lockorder: ...", as in this package's doc) is not itself a
// declaration.
var declRe = regexp.MustCompile(`^//\s*lockorder:\s*(.+)$`)

// declEdge is one declared "a < b" pair.
type declEdge struct {
	from, to string
	pos      token.Pos
	pass     *analysis.Pass
}

// acqEvent is one observed acquisition of a site with other sites held.
type acqEvent struct {
	held []string
	site string
	pos  token.Pos
	pass *analysis.Pass
}

// heldCall is a call made with sites held; resolved against the
// callee's may-acquire set in Finish.
type heldCall struct {
	held   []string
	callee string // types.Func.FullName
	pos    token.Pos
	pass   *analysis.Pass
}

type session struct {
	declared  []declEdge
	events    []acqEvent
	heldCalls []heldCall
	seeds     map[string]map[string]bool // func -> sites it may directly acquire
	calls     map[string]map[string]bool // func -> callees (by FullName)
}

func newSession() *session {
	return &session{
		seeds: map[string]map[string]bool{},
		calls: map[string]map[string]bool{},
	}
}

func run(pass *analysis.Pass) error {
	s, ok := pass.Session.(*session)
	if !ok {
		return fmt.Errorf("lockorder requires a session (run via analysis.Run)")
	}

	sites := profiledFields(pass)
	collectDeclarations(pass, s)
	collectAcquiresAnnotations(pass, s)

	classify := func(call *ast.CallExpr) (string, lockflow.Op) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", lockflow.None
		}
		var op lockflow.Op
		switch sel.Sel.Name {
		case "Lock":
			op = lockflow.Acquire
		case "RLock":
			op = lockflow.AcquireR
		case "Unlock":
			op = lockflow.Release
		case "RUnlock":
			op = lockflow.ReleaseR
		default:
			return "", lockflow.None
		}
		site := siteOf(pass, sites, sel.X)
		if site == "" {
			return "", lockflow.None
		}
		return site, op
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fnObj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			var fnKey string
			if fnObj != nil {
				fnKey = fnObj.FullName()
			}
			walkFunc(pass, s, fn.Body, fnKey, classify)
		}
	}
	return nil
}

// walkFunc interprets one body. fnKey attributes direct acquisitions
// and outgoing calls to the function for the may-acquire fixpoint;
// a "go" body gets an empty key (its acquisitions happen on another
// goroutine, so they are ordered against nothing the caller holds and
// do not become the caller's obligations).
func walkFunc(pass *analysis.Pass, s *session, body *ast.BlockStmt, fnKey string, classify func(*ast.CallExpr) (string, lockflow.Op)) {
	hooks := lockflow.Hooks{
		Classify: classify,
		Acquire: func(site string, op lockflow.Op, pos token.Pos, held map[string]lockflow.Mode) {
			if fnKey != "" {
				addSet(s.seeds, fnKey, site)
			}
			if len(held) == 0 {
				return
			}
			s.events = append(s.events, acqEvent{held: heldNames(held, site), site: site, pos: pos, pass: pass})
		},
		Visit: func(n ast.Node, held map[string]lockflow.Mode) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			key := callee.FullName()
			if fnKey != "" {
				addSet(s.calls, fnKey, key)
			}
			if len(held) > 0 {
				s.heldCalls = append(s.heldCalls, heldCall{held: heldNames(held, ""), callee: key, pos: call.Pos(), pass: pass})
			}
		},
	}
	hooks.GoBody = func(b *ast.BlockStmt) {
		walkFunc(pass, s, b, "", classify)
	}
	lockflow.Walk(body, nil, hooks)
}

func finish(sessionAny any) {
	s, ok := sessionAny.(*session)
	if !ok {
		return
	}

	// Declared order: transitive closure over the "a < b" DAG, with a
	// cycle check first — a cyclic declaration would make the closure
	// excuse anything on the cycle.
	below := closure(s.declared)
	if cyc := declaredCycle(s.declared); cyc != nil {
		cyc.pass.Reportf(cyc.pos, "lock-order declarations form a cycle through %s < %s", cyc.from, cyc.to)
	}

	// May-acquire fixpoint over the call graph.
	may := mayAcquire(s.seeds, s.calls)

	// Expand held calls into acquisition events through the callee's
	// may-acquire set.
	events := s.events
	for _, hc := range s.heldCalls {
		for site := range may[hc.callee] {
			events = append(events, acqEvent{held: hc.held, site: site, pos: hc.pos, pass: hc.pass})
		}
	}

	type edgeKey struct {
		held, site string
		pos        token.Pos
	}
	seen := map[edgeKey]bool{}
	for _, ev := range events {
		for _, h := range ev.held {
			if h == ev.site {
				// One site name can cover several mutex instances
				// (per-band, per-file); a self-edge is not provably a
				// self-deadlock statically.
				continue
			}
			k := edgeKey{h, ev.site, ev.pos}
			if seen[k] {
				continue
			}
			seen[k] = true
			if below[h][ev.site] {
				continue // declared, in order
			}
			if ev.pass.MarkedAt(ev.pos, "lockorder") {
				continue // reviewed exception
			}
			if below[ev.site][h] {
				ev.pass.Reportf(ev.pos,
					"lock-order inversion: %s acquired while %s held, but the declared hierarchy orders %s < %s",
					ev.site, h, ev.site, h)
			} else {
				ev.pass.Reportf(ev.pos,
					"undeclared nested lock acquisition: %s acquired while %s held; declare '// lockorder: %s < %s' if this nesting is intended",
					ev.site, h, h, ev.site)
			}
		}
	}
}

// profiledFields maps obs wrapper struct fields to their registered
// site names by finding every field.Profile("name") call in the
// package.
func profiledFields(pass *analysis.Pass) map[*types.Var]string {
	sites := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Profile" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			recv, ok := sel.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[recv]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok || !isObsLock(field.Type()) {
				return true
			}
			name := strings.Trim(lit.Value, `"`)
			if _, dup := sites[field]; !dup && name != "" {
				sites[field] = name
			}
			return true
		})
	}
	return sites
}

// siteOf resolves a lock-method receiver expression to its site name.
func siteOf(pass *analysis.Pass, sites map[*types.Var]string, recv ast.Expr) string {
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return ""
	}
	return sites[field]
}

// isObsLock reports whether t is obs.Mutex or obs.RWMutex.
func isObsLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectDeclarations parses "// lockorder: a < b [< c ...]" comments.
func collectDeclarations(pass *analysis.Pass, s *session) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := declRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				body := stripTrailingComment(m[1])
				if strings.HasPrefix(strings.TrimSpace(body), "acquires") {
					continue
				}
				parts := strings.Split(body, "<")
				if len(parts) < 2 {
					continue
				}
				for i := 0; i+1 < len(parts); i++ {
					from, to := strings.TrimSpace(parts[i]), strings.TrimSpace(parts[i+1])
					if from == "" || to == "" {
						continue
					}
					s.declared = append(s.declared, declEdge{from: from, to: to, pos: c.Pos(), pass: pass})
				}
			}
		}
	}
}

// collectAcquiresAnnotations parses "// lockorder: acquires <site>"
// doc comments on function declarations and on interface methods,
// seeding the may-acquire set of callees whose bodies the call-graph
// walk cannot see (interface dispatch, io plumbing).
func collectAcquiresAnnotations(pass *analysis.Pass, s *session) {
	record := func(obj types.Object, doc *ast.CommentGroup) {
		fn, ok := obj.(*types.Func)
		if !ok || doc == nil {
			return
		}
		for _, c := range doc.List {
			m := declRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			rest, ok := strings.CutPrefix(strings.TrimSpace(stripTrailingComment(m[1])), "acquires")
			if !ok {
				continue
			}
			for _, site := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' }) {
				addSet(s.seeds, fn.FullName(), site)
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				record(pass.TypesInfo.Defs[fd.Name], fd.Doc)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, field := range it.Methods.List {
				for _, name := range field.Names {
					record(pass.TypesInfo.Defs[name], field.Doc)
				}
			}
			return true
		})
	}
}

// mayAcquire propagates seed sites over the call graph to a fixpoint:
// a function may acquire every site it acquires directly (or is
// annotated as acquiring) plus everything its callees may acquire.
func mayAcquire(seeds, calls map[string]map[string]bool) map[string]map[string]bool {
	may := map[string]map[string]bool{}
	for fn, sites := range seeds {
		may[fn] = map[string]bool{}
		for site := range sites {
			may[fn][site] = true
		}
	}
	// Reverse edges: when a callee's set grows, its callers need
	// revisiting.
	callers := map[string][]string{}
	for fn, callees := range calls {
		for callee := range callees {
			callers[callee] = append(callers[callee], fn)
		}
	}
	work := make([]string, 0, len(may))
	for fn := range may {
		work = append(work, fn)
	}
	sort.Strings(work)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[fn] {
			grew := false
			for site := range may[fn] {
				if may[caller] == nil {
					may[caller] = map[string]bool{}
				}
				if !may[caller][site] {
					may[caller][site] = true
					grew = true
				}
			}
			if grew {
				work = append(work, caller)
			}
		}
	}
	return may
}

// closure computes, for each site, the set of sites declared
// (transitively) below it.
func closure(declared []declEdge) map[string]map[string]bool {
	adj := map[string]map[string]bool{}
	for _, e := range declared {
		addSet(adj, e.from, e.to)
	}
	out := map[string]map[string]bool{}
	for site := range adj {
		reach := map[string]bool{}
		stack := []string{site}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[cur] {
				if !reach[next] {
					reach[next] = true
					stack = append(stack, next)
				}
			}
		}
		out[site] = reach
	}
	return out
}

// declaredCycle returns a declared edge that closes a cycle, or nil.
func declaredCycle(declared []declEdge) *declEdge {
	below := closure(declared)
	for i := range declared {
		e := &declared[i]
		if below[e.to][e.from] || e.from == e.to {
			return e
		}
	}
	return nil
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// heldNames flattens a held map to a sorted name list, excluding the
// site being acquired (reentrant RLock->Lock upgrades are the
// watchdog's concern, not an ordering edge).
func heldNames(held map[string]lockflow.Mode, exclude string) []string {
	out := make([]string, 0, len(held))
	for name := range held {
		if name != exclude {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// stripTrailingComment cuts a nested "//" so fixture lines can carry
// want markers after a declaration.
func stripTrailingComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return s[:i]
	}
	return s
}

func addSet(m map[string]map[string]bool, k, v string) {
	if m[k] == nil {
		m[k] = map[string]bool{}
	}
	m[k][v] = true
}
