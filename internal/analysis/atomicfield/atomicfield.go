// Package atomicfield enforces atomic-access discipline: once any
// code updates a struct field through sync/atomic (atomic.AddInt64,
// atomic.LoadInt64, ... on &s.f), every access to that field must be
// atomic — a plain read or write races with the atomic ones, and the
// race detector only catches it when the schedule cooperates.
//
// It also polices the annotation boundary with guardedby: a field
// that is accessed atomically (by address or through an atomic.Int64
// style typed atomic) must not also carry a "// guarded by <mu>"
// annotation — the two disciplines make different promises, and code
// holding the mutex will still race with the atomic writers. A
// reviewed mixed-discipline field (e.g. mutex for read-modify-write,
// atomic for fast-path reads) is declared by putting
// //sealvet:allow atomicfield on the field declaration.
package atomicfield

import (
	"go/ast"
	"go/types"
	"regexp"

	"sealdb/internal/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a field touched via sync/atomic anywhere must be accessed atomically everywhere " +
		"and must not also be '// guarded by' a mutex; reviewed mixed-discipline fields " +
		"carry //sealvet:allow atomicfield on the declaration",
	Run: run,
}

var guardRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	// Pass 1: find every field passed by address to a sync/atomic
	// function, remembering the selector nodes so pass 2 does not
	// mistake the atomic accesses themselves for plain ones.
	atomicDirect := map[*types.Var]bool{}
	atomicUse := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldVar(pass.TypesInfo, sel); v != nil {
					atomicDirect[v] = true
					atomicUse[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: every other access to those fields must not be plain.
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUse[sel] {
				return true
			}
			v := fieldVar(pass.TypesInfo, sel)
			if v == nil || !atomicDirect[v] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is updated with sync/atomic elsewhere; this plain access races with those atomic operations",
				v.Name())
			return true
		})
	}

	// Pass 3: atomic fields (by-address or typed) must not also be
	// mutex-guarded by annotation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := fieldGuard(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if atomicDirect[v] || isTypedAtomic(v.Type()) {
						pass.Reportf(name.Pos(),
							"field %s mixes atomic access with a '// guarded by %s' annotation; use one discipline or add //sealvet:allow atomicfield to the field",
							v.Name(), mu)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a function from package
// sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldVar resolves a selector to the struct field it names, or nil.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

// isTypedAtomic reports whether t is one of sync/atomic's typed
// atomics (atomic.Int64, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldGuard extracts a guarded-by annotation from a field's doc or
// trailing comment.
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
