// Package atomicf is the atomicfield fixture: counters accessed with
// consistent and inconsistent atomic discipline.
package atomicf

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits int64 // updated atomically
	cold int64 // plain, never atomic

	mu sync.Mutex
	// guarded by mu
	mixed int64 // want "mixes atomic access with a '// guarded by mu' annotation"

	// guarded by mu
	okGuarded int64

	typed atomic.Int64

	// guarded by mu, with the fast path reading atomically.
	exempt atomic.Int64 //sealvet:allow atomicfield
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.mixed, 1)
}

// Good: atomic read of an atomic field.
func (c *counters) Hits() int64 { return atomic.LoadInt64(&c.hits) }

// Bad: plain read of an atomically-updated field.
func (c *counters) racyHits() int64 {
	return c.hits // want "plain access races with those atomic operations"
}

// Bad: plain write too.
func (c *counters) resetHits() {
	c.hits = 0 // want "plain access races with those atomic operations"
}

// Good: cold carries no atomic obligation.
func (c *counters) Cold() int64 { return c.cold }

// Good: typed atomics used through their methods.
func (c *counters) Typed() int64 { return c.typed.Load() }

// Good: the guarded field accessed under its mutex (guardedby's
// jurisdiction, not ours).
func (c *counters) OKGuarded() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.okGuarded
}

// Good: reviewed mixed-discipline field.
func (c *counters) Exempt() int64 { return c.exempt.Load() }
