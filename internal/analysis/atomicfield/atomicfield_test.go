package atomicfield_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "testdata/src/atomicf")
}
