package extentpair_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/extentpair"
)

func TestExtentPair(t *testing.T) {
	analysistest.Run(t, extentpair.Analyzer, "testdata/src/alloc")
}
