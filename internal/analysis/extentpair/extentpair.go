// Package extentpair enforces the allocator ownership contract:
// every extent obtained from an Alloc/AllocAppend/AllocGroup/Reserve
// call must, somewhere in the same function, be released (passed to
// a Free/Release-style call), committed (passed to a Commit/Apply/
// Install/Record-style call), returned to the caller, or stored into
// longer-lived state (a composite literal, field, or container) —
// otherwise the extent leaks the moment an early return fires. A
// function that moves ownership some other way documents it with a
// //sealvet:transfer directive on the allocation line.
//
// The check is function-local and flow-insensitive: it does not
// prove every return path frees the extent, it catches the stronger
// smell of a function that allocates and has no disposal story at
// all — the exact leak class PR 2 fixed by hand in the orphan sweep.
package extentpair

import (
	"go/ast"
	"go/types"
	"strings"

	"sealdb/internal/analysis"
)

// Analyzer is the extentpair check.
var Analyzer = &analysis.Analyzer{
	Name: "extentpair",
	Doc: "every allocator Alloc/Reserve result must reach a Free, commit, or " +
		"ownership-transfer (return/store///sealvet:transfer) in the same function",
	Run: run,
}

// allocVerbs are the allocator entry points whose results carry
// ownership.
var allocVerbs = map[string]bool{
	"Alloc":       true,
	"AllocAppend": true,
	"AllocGroup":  true,
	"Reserve":     true,
}

// consumingPrefixes name the calls that discharge ownership: frees,
// commits, and explicit hand-offs to tracking structures.
var consumingPrefixes = []string{
	"Free", "Release", "Commit", "Transfer", "Install",
	"Apply", "Add", "Record", "Reconcile", "Push", "Insert",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc finds allocations in fn and verifies each has a
// disposal story.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isExtentAlloc(pass, call) {
			return true
		}
		ident, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || ident.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[ident]
		if obj == nil {
			obj = pass.TypesInfo.Uses[ident]
		}
		if obj == nil {
			return true
		}
		if pass.MarkedAt(assign.Pos(), "transfer") {
			return true
		}
		if !consumed(pass, fn.Body, obj, assign) {
			pass.Reportf(assign.Pos(),
				"extent %s from %s is never freed, committed, returned, or stored in %s "+
					"(mark the allocation //sealvet:transfer if ownership moves another way)",
				ident.Name, callName(call), fn.Name.Name)
		}
		return true
	})
}

// isExtentAlloc reports whether call is an allocator verb returning
// an Extent-typed value.
func isExtentAlloc(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !allocVerbs[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	// Single Extent result or an Extent in a result tuple.
	check := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Extent"
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if check(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return check(tv.Type)
}

// consumed reports whether obj (the allocated extent variable) is
// discharged anywhere in body after — or lexically outside — the
// allocating statement alloc: returned, placed into a composite
// literal, stored into a field/index, or passed to a consuming call.
func consumed(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, alloc *ast.AssignStmt) bool {
	found := false
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || found {
			return
		}
		if id, ok := n.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == obj && !within(alloc, id) && dischargedBy(pass, stack, id) {
				found = true
			}
			return
		}
		stack = append(stack, n)
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || found {
				return false
			}
			if c == n {
				return true
			}
			walk(c)
			return false
		})
		stack = stack[:len(stack)-1]
	}
	walk(body)
	return found
}

// within reports whether node id lies inside stmt's source range.
func within(stmt ast.Node, id ast.Node) bool {
	return id.Pos() >= stmt.Pos() && id.End() <= stmt.End()
}

// dischargedBy inspects the ancestor stack of an identifier use and
// decides whether that use discharges ownership.
func dischargedBy(pass *analysis.Pass, stack []ast.Node, id *ast.Ident) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			// The identifier (or an expression containing it, such as
			// e.Off or a converted form) is an argument to the call:
			// consuming verbs discharge, anything else (a WriteAt that
			// merely uses the extent) does not.
			if inArgs(anc, id) && isConsumingCall(anc) {
				return true
			}
		case *ast.AssignStmt:
			// A store into a field, index, or dereference keeps the
			// extent reachable beyond the function.
			for _, lhs := range anc.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if within(anc, id) {
						return true
					}
				}
			}
		}
	}
	return false
}

// inArgs reports whether id sits inside one of call's arguments
// (not its function expression).
func inArgs(call *ast.CallExpr, id *ast.Ident) bool {
	for _, arg := range call.Args {
		if within(arg, id) {
			return true
		}
	}
	return false
}

// isConsumingCall matches the Free/commit/transfer verb set.
func isConsumingCall(call *ast.CallExpr) bool {
	name := callName(call)
	for _, p := range consumingPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// callName returns the bare callee name of a call expression.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
