// Package alloc is the extentpair fixture: an allocator shaped like
// the storage layer's, with leaking and non-leaking callers.
package alloc

import "errors"

// Extent mirrors the storage/dband extent shape; the analyzer keys
// on the type name.
type Extent struct {
	Off, Len int64
}

type allocator struct{ next int64 }

func (a *allocator) Alloc(size int64) (Extent, error) {
	e := Extent{Off: a.next, Len: size}
	a.next += size
	return e, nil
}

func (a *allocator) Reserve(size int64) (Extent, bool, error) {
	return Extent{Off: a.next, Len: size}, true, nil
}

func (a *allocator) Free(e Extent)   {}
func (a *allocator) Commit(e Extent) {}

type device struct{}

func (d *device) WriteAt(p []byte, off int64) error { return nil }

type table struct{ extent Extent }

// Bad: the extent is written to and then dropped — using it is not
// disposing of it.
func leak(a *allocator, d *device, p []byte) error {
	e, err := a.Alloc(int64(len(p))) // want "extent e from Alloc is never freed, committed, returned, or stored"
	if err != nil {
		return err
	}
	if err := d.WriteAt(p, e.Off); err != nil {
		return errors.New("write failed")
	}
	return nil
}

// Bad: Reserve results carry the same obligation.
func leakReserve(a *allocator) {
	e, ok, err := a.Reserve(64) // want "extent e from Reserve is never freed, committed, returned, or stored"
	if !ok || err != nil {
		return
	}
	_ = e.Off
}

// Good: freed on the failure path.
func freed(a *allocator, d *device, p []byte) error {
	e, err := a.Alloc(int64(len(p)))
	if err != nil {
		return err
	}
	if err := d.WriteAt(p, e.Off); err != nil {
		a.Free(e)
		return err
	}
	a.Commit(e)
	return nil
}

// Good: returning the extent transfers ownership to the caller.
func transferredByReturn(a *allocator) (Extent, error) {
	e, err := a.Alloc(128)
	if err != nil {
		return Extent{}, err
	}
	return e, nil
}

// Good: storing into longer-lived state transfers ownership.
func transferredByStore(a *allocator, t *table) error {
	e, err := a.Alloc(128)
	if err != nil {
		return err
	}
	t.extent = e
	return nil
}

// Good: a composite literal hand-off (the lsm pattern of wrapping
// the extent into a file record) transfers ownership.
func transferredByLiteral(a *allocator) *table {
	e, _ := a.Alloc(128)
	return &table{extent: e}
}

// Good: the directive documents a hand-off the analyzer cannot see.
func transferredByContract(a *allocator, sink func(int64)) {
	e, _ := a.Alloc(128) //sealvet:transfer
	sink(e.Off)
}
