package analysistest

import (
	"strings"
	"testing"

	"sealdb/internal/analysis/guardedby"
)

// TestMultiFileFixtureAllMatched checks the harness correlates
// diagnostics with want comments across every file of a fixture
// package — a fixture is not limited to one file, and expectations in
// later files must not be starved by findings in earlier ones.
func TestMultiFileFixtureAllMatched(t *testing.T) {
	mismatches, err := Check(guardedby.Analyzer, "testdata/src/multifile")
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 0 {
		t.Errorf("multi-file fixture should match exactly, got %d mismatches:\n%s",
			len(mismatches), strings.Join(mismatches, "\n"))
	}
}

// TestUnmatchedWantFails checks both failure directions: a want
// comment nothing matched is reported, and so is a diagnostic no want
// comment expected. Without this, a fixture whose analyzer silently
// regressed would still pass.
func TestUnmatchedWantFails(t *testing.T) {
	mismatches, err := Check(guardedby.Analyzer, "testdata/src/unmatched")
	if err != nil {
		t.Fatal(err)
	}
	var stale, unexpected bool
	for _, m := range mismatches {
		if strings.Contains(m, "expected diagnostic matching") && strings.Contains(m, "stale want") {
			stale = true
		}
		if strings.Contains(m, "unexpected diagnostic") && strings.Contains(m, "guardedby") {
			unexpected = true
		}
	}
	if !stale {
		t.Errorf("unmatched want comment not reported; mismatches: %v", mismatches)
	}
	if !unexpected {
		t.Errorf("unexpected diagnostic not reported; mismatches: %v", mismatches)
	}
}
