// Package unmatched carries a want comment on a line the analyzer is
// silent about, plus a violation with no want comment. The harness
// must surface BOTH directions: the stale expectation and the
// unexpected diagnostic.
package unmatched

import "sync"

type jar struct {
	mu sync.Mutex
	// lid is guarded by mu.
	lid int
}

func fineButExpected(j *jar) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lid // want "this line is clean; the harness must flag this stale want"
}

func dirtyButUnexpected(j *jar) int {
	return j.lid
}
