package multifile

func goodB(b *box) {
	b.mu.Lock()
	b.count++
	b.mu.Unlock()
}

func badB(b *box) {
	b.count = 0 // want "neither locks mu"
}
