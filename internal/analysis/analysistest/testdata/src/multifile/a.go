// Package multifile exercises the harness across several files of one
// fixture package: each file carries both a clean access and a
// violation, so a matched run proves per-file diagnostics all line up.
package multifile

import "sync"

type box struct {
	mu sync.Mutex
	// count is guarded by mu.
	count int
}

func goodA(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

func badA(b *box) int {
	return b.count // want "neither locks mu"
}
