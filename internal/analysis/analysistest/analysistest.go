// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want "regexp" comments, the same
// convention as golang.org/x/tools/go/analysis/analysistest. A want
// comment expects one diagnostic on its line per quoted regexp; lines
// without a want comment must produce no diagnostics, and every want
// must be matched — so each fixture doubles as a false-positive and a
// false-negative test.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sealdb/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package rooted at dir (conventionally
// testdata/src/<pkg>), applies the analyzer, and fails the test with
// one error per mismatch between its diagnostics and the fixture's
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	mismatches, err := Check(a, dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

// Check is the engine behind Run, exposed so the harness itself can
// be tested: it returns one message per mismatch — an unexpected
// diagnostic, or a want comment no diagnostic matched — and an error
// only when the fixture cannot be loaded or parsed at all. An empty
// slice means the analyzer and the fixture agree exactly.
func Check(a *analysis.Analyzer, dir string) ([]string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	loader := analysis.NewLoader()
	pkg, err := loader.Load(abs, filepath.Base(abs), true)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %v", dir, err)
	}

	expects, err := collectWants(abs)
	if err != nil {
		return nil, err
	}

	var mismatches []string
	findings := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		matched := false
		for _, e := range expects {
			if e.hit || e.file != base || e.line != f.Pos.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			mismatches = append(mismatches,
				fmt.Sprintf("%s:%d: unexpected diagnostic: [%s] %s", base, f.Pos.Line, f.Analyzer, f.Message))
		}
	}
	for _, e := range expects {
		if !e.hit {
			mismatches = append(mismatches,
				fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re))
		}
	}
	return mismatches, nil
}

// collectWants parses every fixture file's comments for want
// expectations.
func collectWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var out []*expectation
	fset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				quotes := quotedRe.FindAllStringSubmatch(m[1], -1)
				if len(quotes) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", name, line, c.Text)
				}
				for _, q := range quotes {
					re, err := regexp.Compile(q[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", name, line, err)
					}
					out = append(out, &expectation{file: name, line: line, re: re})
				}
			}
		}
	}
	return out, nil
}
