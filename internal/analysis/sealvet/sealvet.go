// Package sealvet assembles the full SEALDB analyzer suite. The
// cmd/sealvet multichecker and the repo self-check test both consume
// this list, so "what sealvet enforces" has one definition.
package sealvet

import (
	"sealdb/internal/analysis"
	"sealdb/internal/analysis/atomicfield"
	"sealdb/internal/analysis/errpath"
	"sealdb/internal/analysis/extentpair"
	"sealdb/internal/analysis/guardedby"
	"sealdb/internal/analysis/lockorder"
	"sealdb/internal/analysis/noclock"
	"sealdb/internal/analysis/obsreg"
)

// Analyzers returns the suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		errpath.Analyzer,
		extentpair.Analyzer,
		guardedby.Analyzer,
		lockorder.Analyzer,
		noclock.Analyzer,
		obsreg.Analyzer,
	}
}
