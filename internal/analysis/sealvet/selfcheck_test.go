package sealvet_test

import (
	"os"
	"path/filepath"
	"testing"

	"sealdb/internal/analysis"
	"sealdb/internal/analysis/sealvet"
)

// TestRepoIsClean runs the full analyzer suite over the repository —
// the same sweep CI's sealvet job performs — so a contract violation
// fails the ordinary test run too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis sweep skipped in short mode")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	// The source importer resolves module paths through the go
	// command, which keys off the working directory.
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadTree(root, modPath, root, true)
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, f := range analysis.Run(pkgs, sealvet.Analyzers()) {
		t.Errorf("%s", f)
	}
}

// moduleRoot walks up from the test's working directory to the
// directory containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
