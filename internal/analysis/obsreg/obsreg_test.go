package obsreg_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/obsreg"
)

func TestObsReg(t *testing.T) {
	analysistest.Run(t, obsreg.Analyzer, "testdata/src/wiring")
}
