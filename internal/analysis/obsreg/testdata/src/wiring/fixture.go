// Package wiring is the obsreg fixture: a registry shaped like
// internal/obs's, with one clean wiring block and the violation
// forms.
package wiring

import "fmt"

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

// Registry mirrors obs.Registry; the analyzer keys on the type name.
type Registry struct{}

func (r *Registry) Counter(name string) *Counter            { return nil }
func (r *Registry) Gauge(name string) *Gauge                { return nil }
func (r *Registry) Histogram(name string) *Histogram        { return nil }
func (r *Registry) GaugeFunc(name string, fn func() float64) {}

type metrics struct {
	writes *Counter
	depth  *Gauge
}

// Good: each name has exactly one call site.
func wire(r *Registry, m *metrics) {
	m.writes = r.Counter("sealdb_writes_total")
	m.depth = r.Gauge("sealdb_queue_depth")
	r.GaugeFunc("sealdb_free_bytes", func() float64 { return 0 })
	_ = r.Histogram("sealdb_write_latency_ns")
}

// Bad: re-registering a name aliases two call sites onto one metric.
func rewire(r *Registry) {
	_ = r.Counter("sealdb_writes_total") // want `metric "sealdb_writes_total" already registered`
	_ = r.Histogram("sealdb_write_latency_ns") // want `metric "sealdb_write_latency_ns" already registered`
}

// Bad: name format violations.
func badNames(r *Registry) {
	_ = r.Counter("SealDB-Writes") // want `metric name "SealDB-Writes" does not match`
	_ = r.Gauge("9starts_with_digit") // want `metric name "9starts_with_digit" does not match`
}

// Bad: counters without the prometheus _total suffix; gauges and
// histograms carry no suffix requirement.
func badCounterSuffix(r *Registry) {
	_ = r.Counter("sealdb_trace_ops") // want `counter name "sealdb_trace_ops" must end in _total`
	_ = r.Gauge("sealdb_trace_ops")
	_ = r.Histogram("sealdb_stage_wal_append_ns")
}

// Good: computed names (the per-level gauge pattern) are exempt —
// their uniqueness comes from the loop variable.
func computed(r *Registry) {
	for l := 0; l < 7; l++ {
		r.GaugeFunc(fmt.Sprintf("sealdb_level_%d_files", l), func() float64 { return 0 })
	}
}

// Good: a non-Registry receiver with the same method name is out of
// scope.
type other struct{}

func (o *other) Counter(name string) int { return 0 }

func unrelated(o *other) {
	_ = o.Counter("sealdb_writes_total")
}
