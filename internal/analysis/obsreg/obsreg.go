// Package obsreg enforces the observability registry's naming
// contract: a metric name literal passed to a Registry constructor
// (Counter, Gauge, Histogram, GaugeFunc) is registered at exactly
// one call site across the whole repo, and follows the
// prometheus-style [a-z0-9_] format. The registry itself is
// get-or-create, so a duplicated literal does not fail at runtime —
// it silently aliases two call sites onto one metric, which is
// precisely why the check has to be static and repo-wide.
package obsreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"sealdb/internal/analysis"
)

// Analyzer is the obsreg check. Its session spans every package in a
// checker run, so duplicates are caught across package boundaries.
var Analyzer = &analysis.Analyzer{
	Name: "obsreg",
	Doc: "metric name literals passed to the obs registry must be unique across " +
		"the repo, registered at one call site, and match ^[a-z][a-z0-9_]*$; " +
		"counter names must additionally end in _total",
	NewSession: func() any { return &session{seen: map[string]token.Position{}} },
	Run:        run,
}

type session struct {
	seen map[string]token.Position // metric name -> first registration site
}

// registryMethods are the Registry constructors that bind a name.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"GaugeFunc": true,
}

var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) error {
	sess, _ := pass.Session.(*session)
	if sess == nil {
		sess = &session{seen: map[string]token.Position{}}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] || !isRegistry(pass, sel.X) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // computed names (per-level gauges) are exempt
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !nameRe.MatchString(name) {
				pass.Reportf(lit.Pos(), "metric name %q does not match ^[a-z][a-z0-9_]*$", name)
				return true
			}
			// Monotonic series carry the prometheus counter suffix, so
			// dashboards can tell counters from gauges by name alone —
			// the trace/amplification series rely on this to pair each
			// *_total counter with its recomputation.
			if sel.Sel.Name == "Counter" && !strings.HasSuffix(name, "_total") {
				pass.Reportf(lit.Pos(), "counter name %q must end in _total", name)
				return true
			}
			if first, dup := sess.seen[name]; dup {
				pass.Reportf(lit.Pos(),
					"metric %q already registered at %s:%d; registry names must have exactly one call site",
					name, first.Filename, first.Line)
				return true
			}
			sess.seen[name] = pass.Fset.Position(lit.Pos())
			return true
		})
	}
	return nil
}

// isRegistry reports whether expr's type is (a pointer to) a named
// type called Registry — the obs registry in the real tree, or a
// fixture stand-in.
func isRegistry(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
