// Package unscoped is outside the simulated-time contract, so
// wall-clock use here is legal and must produce no diagnostics.
package unscoped

import "time"

func clock() time.Time { return time.Now() }
