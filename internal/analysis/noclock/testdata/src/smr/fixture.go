// Package smr is a noclock fixture standing in for a simulated-time
// package (matched by its final path element).
package smr

import (
	"math/rand"
	"time"
)

// bad exercises every denied call form.
func bad() {
	_ = time.Now()                      // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)        // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})         // want "time.Since reads the wall clock"
	_ = rand.Intn(4)                    // want "global rand.Intn uses process-global random state"
	rand.Shuffle(2, func(i, j int) {})  // want "global rand.Shuffle uses process-global random state"
	_ = time.After(time.Microsecond)    // want "time.After reads the wall clock"
}

// good shows the sanctioned forms: durations as values, and
// explicitly seeded sources.
func good() time.Duration {
	rng := rand.New(rand.NewSource(42))
	_ = rng.Intn(4)
	d := 5 * time.Millisecond
	return d
}

// suppressed shows the escape hatch for a reviewed exception.
func suppressed() {
	_ = time.Now() //sealvet:allow noclock
}
