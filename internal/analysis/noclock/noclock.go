// Package noclock forbids wall-clock and process-global randomness
// in the simulated-time packages. The emulated drive stack (platter,
// smr, dband, storage, faultfs) derives every timestamp from the
// simulated device clock and every random choice from an explicitly
// seeded source; a stray time.Now or global math/rand call is
// invisible in review but silently breaks the crash-replay sweep's
// bit-for-bit reproducibility.
package noclock

import (
	"go/ast"
	"go/types"

	"sealdb/internal/analysis"
)

// Analyzer is the noclock check.
var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc: "forbid wall-clock time and global math/rand in simulated-time packages " +
		"(platter, smr, dband, storage, faultfs); use the simulated device clock " +
		"and an explicitly seeded *rand.Rand instead",
	Run: run,
}

// scoped lists the packages (by final path element) under the
// simulated-time contract. Deliberately NOT scoped (PR 4): the
// serving layer (server, sealclient, wire) sits above the emulated
// device and talks to real sockets — its read/write deadlines, drain
// timeouts, and latency histograms are wall-clock by nature, and
// forcing them onto the simulated clock would tie network liveness to
// device activity. The serving layer is instead covered by errpath
// (lost-acknowledgement discards); see that analyzer's scope comment.
var scoped = map[string]bool{
	"platter": true,
	"smr":     true,
	"dband":   true,
	"storage": true,
	"faultfs": true,
}

// deniedTime are the time package functions that observe or wait on
// the wall clock. Types and constants (time.Duration, time.Millisecond)
// remain legal: they describe simulated durations.
var deniedTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// allowedRand are the math/rand package-level functions that build
// explicitly seeded sources rather than consuming the global one.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !scoped[analysis.PkgShortName(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if deniedTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; simulated-time packages must derive time from the device clock",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global %s.%s uses process-global random state; thread an explicitly seeded *rand.Rand instead",
						analysis.PkgShortName(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
