package noclock_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/noclock"
)

func TestScoped(t *testing.T) {
	analysistest.Run(t, noclock.Analyzer, "testdata/src/smr")
}

func TestOutOfScopePackageIgnored(t *testing.T) {
	analysistest.Run(t, noclock.Analyzer, "testdata/src/unscoped")
}
