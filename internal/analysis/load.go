package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	TestFile   map[*ast.File]bool
	Pkg        *types.Package
	Info       *types.Info

	directives map[string][]directive
}

// Loader parses and type-checks packages. One Loader shares a file
// set and an importer across every Load call, so the standard
// library (and any repo package pulled in as a dependency) is
// type-checked at most once per process.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader creates a loader backed by the standard library's source
// importer. The importer resolves module-relative import paths by
// consulting the go command, so the process must run with a working
// directory inside the module being analyzed.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the package in dir. In-package test
// files (_test.go with the same package clause) are included when
// includeTests is set; external test packages (package foo_test) are
// always skipped — their subjects are checked through the package
// proper. Files excluded by build constraints for the default build
// context are skipped, so tag-gated variants (e.g. the
// sealdb_invariants assert bodies) do not collide.
func (l *Loader) Load(dir, importPath string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.fset,
		TestFile:   map[*ast.File]bool{},
		directives: map[string][]directive{},
	}
	ctxt := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		if !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var pkgName string
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		isTest := strings.HasSuffix(name, "_test.go")
		filePkg := f.Name.Name
		if isTest && strings.HasSuffix(filePkg, "_test") {
			continue // external test package: not part of the package proper
		}
		if pkgName == "" {
			pkgName = filePkg
		} else if filePkg != pkgName {
			return nil, fmt.Errorf("%s: package %s conflicts with %s", path, filePkg, pkgName)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.TestFile[f] = isTest
		pkg.directives[l.fset.Position(f.Pos()).Filename] = collectDirectives(l.fset, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg.Pkg = tpkg
	return pkg, nil
}

// LoadTree loads every package under root (a directory inside the
// module rooted at moduleRoot with module path modulePath), skipping
// testdata, vendor, and hidden directories. Packages are returned in
// sorted import-path order for deterministic cross-package analysis.
func (l *Loader) LoadTree(moduleRoot, modulePath, root string, includeTests bool) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(moduleRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, importPath, includeTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", root)
}
