package guardedby_test

import (
	"testing"

	"sealdb/internal/analysis/analysistest"
	"sealdb/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, guardedby.Analyzer, "testdata/src/guarded")
}
