// Package guardedby enforces the repo's lock-annotation convention:
// a struct field whose comment says "guarded by <mu>" may only be
// accessed inside a function that acquires that mutex (a Lock or
// RLock call on a field or variable of that name), is itself
// documented as running with the lock held ("Caller holds ..." /
// "caller must hold ..."), or is named with the *Locked suffix. The
// guard's type is irrelevant — matching is by receiver name, so
// sync.Mutex, sync.RWMutex, and the contention-profiled obs.Mutex /
// obs.RWMutex wrappers all satisfy a guard through their Lock/RLock
// methods. The check is flow-insensitive and function-local by
// design — it catches the common review miss (a new accessor that
// forgets the lock entirely), not lock-ordering bugs.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"sealdb/internal/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated '// guarded by <mu>' must only be accessed in functions " +
		"that lock <mu>, are documented 'Caller holds <mu>', or have the Locked name suffix",
	Run: run,
}

var annotationRe = regexp.MustCompile(`guarded by (\w+)`)
var callerHoldsRe = regexp.MustCompile(`(?i)caller(s)?\s+(holds?\b|must\s+hold)`)

func run(pass *analysis.Pass) error {
	// Pass 1: collect annotated field objects across the package.
	annotated := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := fieldAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						annotated[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(annotated) == 0 {
		return nil
	}

	// Pass 2: check every function body.
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			if fn.Doc != nil && callerHoldsRe.MatchString(fn.Doc.Text()) {
				continue
			}
			held := lockedMutexes(fn.Body)
			reported := map[*types.Var]bool{} // one report per field per function
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := pass.TypesInfo.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					return true
				}
				obj, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				mu, ok := annotated[obj]
				if !ok || held[mu] || reported[obj] {
					return true
				}
				reported[obj] = true
				pass.Reportf(sel.Sel.Pos(),
					"field %s is guarded by %s, but %s neither locks %s nor is documented as holding it",
					obj.Name(), mu, fn.Name.Name, mu)
				return true
			})
		}
	}
	return nil
}

// fieldAnnotation extracts the mutex name from a field's doc or
// trailing comment.
func fieldAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := annotationRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes returns the set of mutex names on which the body
// calls Lock or RLock anywhere (flow-insensitive).
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	held := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if name := lastName(sel.X); name != "" {
			held[name] = true
		}
		return true
	})
	return held
}

// lastName returns the final identifier of a selector chain
// (d.mu -> "mu", mu -> "mu").
func lastName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return lastName(x.X)
	}
	return ""
}
