// Package guardedby enforces the repo's lock-annotation convention:
// a struct field whose comment says "guarded by <mu>" may only be
// accessed while that mutex is held. The guard's type is irrelevant —
// matching is by receiver name, so sync.Mutex, sync.RWMutex, and the
// contention-profiled obs.Mutex / obs.RWMutex wrappers all satisfy a
// guard through their Lock/RLock methods.
//
// v2 is flow-sensitive within a function (via the lockflow walker):
// the lock must actually be held *at* the access, so a read after an
// early Unlock, or on a defer-less return path that released the
// lock, is diagnosed even though the function "locks mu somewhere".
// It also distinguishes read from write holds: a write to a guarded
// field (assignment, compound assignment, ++/--, or assignment
// through an index/deref of the field) under only an RLock is
// diagnosed, since RWMutex read holds do not exclude other readers.
//
// Escape hatches, in order of preference: a doc comment "Caller
// holds <mu>" (the function runs with the named locks held), the
// *Locked name suffix (every guard assumed held), and a
// //sealvet:allow guardedby directive on the access line.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"sealdb/internal/analysis"
	"sealdb/internal/analysis/lockflow"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated '// guarded by <mu>' must be accessed with <mu> held at the access " +
		"(flow-sensitive: early unlocks count), and written only under the write lock; " +
		"escape via 'Caller holds <mu>' docs, the Locked name suffix, or //sealvet:allow",
	Run: run,
}

var annotationRe = regexp.MustCompile(`guarded by (\w+)`)
var callerHoldsRe = regexp.MustCompile(`(?i)caller(s)?\s+(holds?\b|must\s+hold)`)
var identRe = regexp.MustCompile(`(?:\w+\.)*(\w+)`)

func run(pass *analysis.Pass) error {
	// Pass 1: collect annotated field objects across the package.
	annotated := map[*types.Var]string{}
	guardNames := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := fieldAnnotation(field)
				if mu == "" {
					continue
				}
				guardNames[mu] = true
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						annotated[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(annotated) == 0 {
		return nil
	}

	// Pass 2: interpret every function body.
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			entry := map[string]lockflow.Mode{}
			if fn.Doc != nil && callerHoldsRe.MatchString(fn.Doc.Text()) {
				held := heldPerDoc(fn.Doc.Text(), guardNames)
				if len(held) == 0 {
					// The doc promises a caller-held lock the matcher
					// cannot name; fall back to v1's whole-function
					// exemption rather than guessing.
					continue
				}
				for _, mu := range held {
					entry[mu] = lockflow.W
				}
			}
			checkFunc(pass, fn, entry, annotated)
		}
	}
	return nil
}

// checkFunc walks one body with the lock-state interpreter, checking
// every guarded-field access against the locks held at that point.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, entry map[string]lockflow.Mode, annotated map[*types.Var]string) {
	locksSomewhere := lockedMutexes(fn.Body)
	reported := map[*types.Var]bool{} // one report per field per function

	check := func(sel *ast.SelectorExpr, write bool, held map[string]lockflow.Mode) {
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		obj, ok := selection.Obj().(*types.Var)
		if !ok {
			return
		}
		mu, ok := annotated[obj]
		if !ok || reported[obj] {
			return
		}
		mode, heldNow := held[mu]
		switch {
		case !heldNow && !locksSomewhere[mu]:
			reported[obj] = true
			pass.Reportf(sel.Sel.Pos(),
				"field %s is guarded by %s, but %s neither locks %s nor is documented as holding it",
				obj.Name(), mu, fn.Name.Name, mu)
		case !heldNow:
			reported[obj] = true
			pass.Reportf(sel.Sel.Pos(),
				"field %s is guarded by %s, but %s is not held at this access (released earlier or not acquired on this path)",
				obj.Name(), mu, mu)
		case write && mode == lockflow.R:
			reported[obj] = true
			pass.Reportf(sel.Sel.Pos(),
				"field %s is guarded by %s, but this write holds only the read lock (RLock)",
				obj.Name(), mu)
		}
	}

	lockflow.Walk(fn.Body, entry, lockflow.Hooks{
		Classify: classify,
		Visit: func(n ast.Node, held map[string]lockflow.Mode) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel := baseSelector(lhs); sel != nil {
						check(sel, true, held)
					}
				}
			case *ast.IncDecStmt:
				if sel := baseSelector(n.X); sel != nil {
					check(sel, true, held)
				}
			case *ast.SelectorExpr:
				check(n, false, held)
			}
		},
	})
}

// classify maps Lock/RLock/Unlock/RUnlock calls to lock operations on
// the receiver's final name (d.mu -> "mu"), matching v1's name-based
// guard resolution.
func classify(call *ast.CallExpr) (string, lockflow.Op) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockflow.None
	}
	var op lockflow.Op
	switch sel.Sel.Name {
	case "Lock":
		op = lockflow.Acquire
	case "RLock":
		op = lockflow.AcquireR
	case "Unlock":
		op = lockflow.Release
	case "RUnlock":
		op = lockflow.ReleaseR
	default:
		return "", lockflow.None
	}
	name := lastName(sel.X)
	if name == "" {
		return "", lockflow.None
	}
	return name, op
}

// heldPerDoc extracts the guard names a "Caller holds ..." doc
// mentions: every dotted identifier whose final component is a known
// guard name (so "Caller holds d.mu" resolves to "mu").
func heldPerDoc(doc string, guardNames map[string]bool) []string {
	var out []string
	seen := map[string]bool{}
	for _, m := range identRe.FindAllStringSubmatch(doc, -1) {
		if guardNames[m[1]] && !seen[m[1]] {
			seen[m[1]] = true
			out = append(out, m[1])
		}
	}
	return out
}

// baseSelector unwraps index, star, and paren layers from an
// assignment target down to the field selector being written
// (d.wp[i] -> d.wp, *d.ptr -> d.ptr).
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// fieldAnnotation extracts the mutex name from a field's doc or
// trailing comment.
func fieldAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := annotationRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes returns the set of mutex names on which the body
// calls Lock or RLock anywhere — used only to pick the clearer of the
// two "not held" messages.
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	held := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if name := lastName(sel.X); name != "" {
			held[name] = true
		}
		return true
	})
	return held
}

// lastName returns the final identifier of a selector chain
// (d.mu -> "mu", mu -> "mu").
func lastName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return lastName(x.X)
	}
	return ""
}
