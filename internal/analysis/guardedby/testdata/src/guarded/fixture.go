// Package guarded is the guardedby fixture: a drive-like struct with
// annotated fields accessed correctly and incorrectly.
package guarded

import (
	"sync"

	"sealdb/internal/obs"
)

type drive struct {
	mu sync.Mutex
	wp []int64 // guarded by mu
	// host counts payload bytes.
	// guarded by mu
	host int64

	unguarded int64
}

// Good: lock held on the access path.
func (d *drive) HostBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.host
}

// Good: RLock counts as holding the mutex.
type rw struct {
	rwmu  sync.RWMutex
	state int64 // guarded by rwmu
}

func (r *rw) State() int64 {
	r.rwmu.RLock()
	defer r.rwmu.RUnlock()
	return r.state
}

// Bad: no lock anywhere in the function.
func (d *drive) racyHost() int64 {
	return d.host // want "field host is guarded by mu"
}

// Bad: wrong mutex.
func (d *drive) wrongLock(other *rw) {
	other.rwmu.Lock()
	d.wp = append(d.wp, 1) // want "field wp is guarded by mu"
	other.rwmu.Unlock()
}

// Good: unguarded fields carry no obligation.
func (d *drive) Unguarded() int64 { return d.unguarded }

// applyLocked is exempt through the Locked suffix convention.
func (d *drive) applyLocked() { d.host++ }

// bump applies a delta. Caller holds d.mu.
func (d *drive) bump(delta int64) { d.host += delta }

// Good: reviewed exception via the directive escape hatch.
func (d *drive) snapshotUnsafe() int64 {
	return d.host //sealvet:allow guardedby
}

// instrumented is the post-migration shape: hot locks are
// contention-profiled obs wrappers, and their Lock/RLock calls must
// satisfy guards exactly like sync mutexes do.
type instrumented struct {
	mu    obs.Mutex
	queue []int64 // guarded by mu

	rwmu obs.RWMutex
	idx  int64 // guarded by rwmu
}

// Good: obs.Mutex Lock satisfies the guard.
func (s *instrumented) Pop() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.queue)
	if n == 0 {
		return 0
	}
	v := s.queue[n-1]
	s.queue = s.queue[:n-1]
	return v
}

// Good: obs.RWMutex RLock satisfies the guard.
func (s *instrumented) Index() int64 {
	s.rwmu.RLock()
	defer s.rwmu.RUnlock()
	return s.idx
}

// Bad: an instrumented guard is still a guard.
func (s *instrumented) racyQueue() int {
	return len(s.queue) // want "field queue is guarded by mu"
}

// Bad: wrong wrapper lock held.
func (s *instrumented) crossLock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx // want "field idx is guarded by rwmu"
}

// Good (v2): the early-exit unlock strips the lock only from the
// terminated path; the fallthrough access is still guarded.
func (d *drive) guardedEarlyExit(stop bool) int64 {
	d.mu.Lock()
	if stop {
		d.mu.Unlock()
		return 0
	}
	v := d.host
	d.mu.Unlock()
	return v
}

// Bad (v2): the lock was released before the second read — flow
// sensitivity catches what "locks mu somewhere" would excuse.
func (d *drive) afterUnlock() int64 {
	d.mu.Lock()
	v := d.host
	d.mu.Unlock()
	return v + d.host // want "not held at this access"
}

// Bad (v2): a write under only the read lock.
func (r *rw) bumpShared() {
	r.rwmu.RLock()
	defer r.rwmu.RUnlock()
	r.state++ // want "holds only the read lock"
}

// Good (v2): upgrading to the write lock before mutating.
func (r *rw) bumpExclusive() {
	r.rwmu.Lock()
	r.state++
	r.rwmu.Unlock()
}

// Bad (v2): compound assignment through RLock on an obs wrapper.
func (s *instrumented) resetShared() {
	s.rwmu.RLock()
	defer s.rwmu.RUnlock()
	s.idx = 0 // want "holds only the read lock"
}
