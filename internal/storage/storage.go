// Package storage binds an SMR drive to a placement policy and
// exposes the flat-blob interface the LSM engine programs against:
// numbered files written whole (SSTables), numbered append-only files
// (write-ahead logs), and contiguous file groups (the paper's sets).
//
// The store is "direct on disk": there is no file system, only the
// indirection table from file number to physical block address that
// the paper's §III-D describes.
package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sealdb/internal/obs"
	"sealdb/internal/smr"
)

// Extent is a half-open physical byte range on the drive.
type Extent struct {
	Off, Len int64
}

// End returns the first byte past the extent.
func (e Extent) End() int64 { return e.Off + e.Len }

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Off, e.End()) }

// Allocator is a placement policy over the drive's address space.
type Allocator interface {
	// Alloc reserves an extent of exactly size bytes.
	//
	// lockorder: acquires dband_manager_mu
	Alloc(size int64) (Extent, error)
	// AllocAppend reserves an extent for an append-only stream. A
	// policy may place these differently (e.g. always in fresh
	// space, as a file system places a growing log).
	//
	// lockorder: acquires dband_manager_mu
	AllocAppend(size int64) (Extent, error)
	// AllocGroup reserves one contiguous extent to hold a group of
	// blobs of the given sizes (a set). Policies that cannot
	// co-locate may return ErrNoGroupAlloc to make the backend fall
	// back to per-blob allocation.
	//
	// lockorder: acquires dband_manager_mu
	AllocGroup(sizes []int64) (Extent, error)
	// Free returns an extent to the policy. The dynamic-band policy
	// takes its manager lock, so Free nests like the Alloc calls.
	//
	// lockorder: acquires dband_manager_mu
	Free(e Extent)
}

// ErrNoGroupAlloc is returned by allocators that do not support
// contiguous group placement.
var ErrNoGroupAlloc = errors.New("storage: allocator does not support group allocation")

// ErrNotFound is returned when a file number is unknown.
var ErrNotFound = errors.New("storage: file not found")

type fileInfo struct {
	ext     Extent
	size    int64 // logical size (bytes written); <= limit
	limit   int64 // writable bytes of the extent (excludes guard padding)
	grouped bool  // space owned by a group (set); freed via FreeExtent
}

// Backend is a numbered-blob store over a drive and an allocator.
// All methods are safe for concurrent use.
type Backend struct {
	drive smr.Drive
	alloc Allocator

	// writeMu serializes allocate+write pairs so that the write into
	// a frontier extent always happens before the next extent is
	// handed out; otherwise the damage window of a late write could
	// reach data already landed just past it. Profiled as the
	// "storage_write_mu" contention site; the obs wrapper's clock is
	// threaded from outside this package (obs.SetLockClock), keeping
	// storage inside the noclock determinism contract. Allocator
	// calls and the mapping-table lock both nest under it.
	//
	// lockorder: storage_write_mu < storage_backend_mu
	// lockorder: storage_write_mu < dband_manager_mu
	writeMu obs.Mutex

	// mu guards the mapping table; profiled as "storage_backend_mu".
	mu    obs.Mutex
	files map[uint64]*fileInfo // guarded by mu
	stats BackendStats         // guarded by mu
}

// BackendStats counts backend activity: whole-blob writes, grouped
// (set) writes, append-file creations, removals, and extent frees.
type BackendStats struct {
	FilesWritten  int64 `json:"files_written"`
	FileBytes     int64 `json:"file_bytes"`
	GroupWrites   int64 `json:"group_writes"`
	GroupBytes    int64 `json:"group_bytes"`
	AppendCreates int64 `json:"append_creates"`
	Removes       int64 `json:"removes"`
	ExtentFrees   int64 `json:"extent_frees"`
}

// NewBackend creates a backend over the given drive and policy.
func NewBackend(drive smr.Drive, alloc Allocator) *Backend {
	b := &Backend{drive: drive, alloc: alloc, files: make(map[uint64]*fileInfo)}
	b.writeMu.Profile("storage_write_mu")
	b.mu.Profile("storage_backend_mu")
	return b
}

// Drive returns the underlying device.
func (b *Backend) Drive() smr.Drive { return b.drive }

// WriteFile stores data as file num in one extent and one device
// write. The file must not already exist.
func (b *Backend) WriteFile(num uint64, data []byte) error {
	b.mu.Lock()
	if _, dup := b.files[num]; dup {
		b.mu.Unlock()
		return fmt.Errorf("storage: file %d already exists", num)
	}
	b.mu.Unlock()

	b.writeMu.Lock()
	ext, err := b.alloc.Alloc(int64(len(data)))
	if err != nil {
		b.writeMu.Unlock()
		return err
	}
	_, werr := b.drive.WriteAt(data, ext.Off)
	b.writeMu.Unlock()
	if werr != nil {
		b.alloc.Free(ext)
		return werr
	}
	b.mu.Lock()
	b.files[num] = &fileInfo{ext: ext, size: int64(len(data)), limit: ext.Len}
	b.stats.FilesWritten++
	b.stats.FileBytes += int64(len(data))
	b.mu.Unlock()
	return nil
}

// WriteGroup stores the files of a set in one contiguous extent,
// writing them back to back in a single sequential pass, and returns
// the containing extent. The returned extent is owned by the caller's
// set registry: removing a member file only forgets its mapping, and
// the space comes back via FreeExtent once the whole set is dead.
//
// If the allocator cannot co-locate groups, each file is placed
// individually and the zero Extent is returned with grouped=false.
func (b *Backend) WriteGroup(nums []uint64, datas [][]byte) (Extent, bool, error) {
	if len(nums) != len(datas) {
		return Extent{}, false, fmt.Errorf("storage: %d nums vs %d blobs", len(nums), len(datas))
	}
	sizes := make([]int64, len(datas))
	var total int64
	for i, d := range datas {
		sizes[i] = int64(len(d))
		total += sizes[i]
	}
	b.writeMu.Lock()
	group, err := b.alloc.AllocGroup(sizes)
	if errors.Is(err, ErrNoGroupAlloc) {
		b.writeMu.Unlock()
		for i := range nums {
			if err := b.WriteFile(nums[i], datas[i]); err != nil {
				return Extent{}, false, err
			}
		}
		return Extent{}, false, nil
	}
	if err != nil {
		b.writeMu.Unlock()
		return Extent{}, false, err
	}
	if group.Len < total {
		b.writeMu.Unlock()
		b.alloc.Free(group)
		return Extent{}, false, fmt.Errorf("storage: group extent %v smaller than total size %d", group, total)
	}

	off := group.Off
	for i, d := range datas {
		if _, err := b.drive.WriteAt(d, off); err != nil {
			b.writeMu.Unlock()
			b.alloc.Free(group)
			return Extent{}, false, err
		}
		b.mu.Lock()
		b.files[nums[i]] = &fileInfo{ext: Extent{Off: off, Len: sizes[i]}, size: sizes[i], limit: sizes[i], grouped: true}
		b.mu.Unlock()
		off += sizes[i]
	}
	b.writeMu.Unlock()
	b.mu.Lock()
	b.stats.GroupWrites++
	b.stats.GroupBytes += total
	b.mu.Unlock()
	return group, true, nil
}

// ReadFileAt implements random reads within file num.
func (b *Backend) ReadFileAt(num uint64, p []byte, off int64) (int, error) {
	b.mu.Lock()
	fi, ok := b.files[num]
	b.mu.Unlock()
	if !ok {
		return 0, ErrNotFound
	}
	if off < 0 || off > fi.size {
		return 0, fmt.Errorf("storage: read at %d outside file %d (size %d)", off, num, fi.size)
	}
	n := len(p)
	var eof error
	if int64(n) > fi.size-off {
		n = int(fi.size - off)
		eof = io.EOF
	}
	if n == 0 {
		return 0, eof
	}
	if _, err := b.drive.ReadAt(p[:n], fi.ext.Off+off); err != nil {
		return 0, err
	}
	return n, eof
}

// FileRecord is a snapshot of one file's mapping-table entry.
type FileRecord struct {
	Num     uint64
	Extent  Extent
	Size    int64
	Limit   int64
	Grouped bool
}

// Files returns a snapshot of the whole mapping table, unordered.
// Recovery uses it to sweep orphans and reconcile the allocator
// against the manifest.
func (b *Backend) Files() []FileRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]FileRecord, 0, len(b.files))
	for num, fi := range b.files {
		out = append(out, FileRecord{Num: num, Extent: fi.ext, Size: fi.size, Limit: fi.limit, Grouped: fi.grouped})
	}
	return out
}

// FileSize returns the logical size of file num.
func (b *Backend) FileSize(num uint64) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fi, ok := b.files[num]
	if !ok {
		return 0, ErrNotFound
	}
	return fi.size, nil
}

// FileExtent returns the physical placement of file num.
func (b *Backend) FileExtent(num uint64) (Extent, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fi, ok := b.files[num]
	if !ok {
		return Extent{}, ErrNotFound
	}
	return fi.ext, nil
}

// Remove deletes file num. For an individually allocated file the
// space is freed immediately; for a set member only the mapping is
// dropped (the set registry frees the group extent when the set
// dies), implementing the paper's deferred victim reclamation.
func (b *Backend) Remove(num uint64) error {
	b.mu.Lock()
	fi, ok := b.files[num]
	if ok {
		delete(b.files, num)
		b.stats.Removes++
	}
	b.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	if !fi.grouped {
		b.alloc.Free(fi.ext)
		return b.drive.Free(fi.ext.Off, fi.ext.Len)
	}
	return nil
}

// ReplaceFile atomically replaces the contents of file num: the new
// data is written to a fresh extent first, the mapping is swapped
// only after that write succeeds, and then the old extent is freed.
// A crash between the steps leaves either the old or the new version
// fully intact — used for the CURRENT pointer, which must never be
// half-updated. Creates the file if it does not exist.
func (b *Backend) ReplaceFile(num uint64, data []byte) error {
	b.writeMu.Lock()
	ext, err := b.alloc.Alloc(int64(len(data)))
	if err != nil {
		b.writeMu.Unlock()
		return err
	}
	_, werr := b.drive.WriteAt(data, ext.Off)
	b.writeMu.Unlock()
	if werr != nil {
		b.alloc.Free(ext)
		return werr
	}
	b.mu.Lock()
	old := b.files[num]
	b.files[num] = &fileInfo{ext: ext, size: int64(len(data)), limit: ext.Len}
	b.stats.FilesWritten++
	b.stats.FileBytes += int64(len(data))
	b.mu.Unlock()
	if old != nil && !old.grouped {
		b.alloc.Free(old.ext)
		return b.drive.Free(old.ext.Off, old.ext.Len)
	}
	return nil
}

// FreeExtent returns raw space (a dead set's group extent) to the
// allocator and the drive.
func (b *Backend) FreeExtent(e Extent) error {
	b.mu.Lock()
	b.stats.ExtentFrees++
	b.mu.Unlock()
	b.alloc.Free(e)
	return b.drive.Free(e.Off, e.Len)
}

// Stats returns a snapshot of the backend activity counters.
func (b *Backend) Stats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// NumFiles returns how many files the backend tracks.
func (b *Backend) NumFiles() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.files)
}

// Handle returns an io.ReaderAt view of file num for the SSTable
// reader. The handle remains valid until the file is removed.
func (b *Backend) Handle(num uint64) *Handle {
	return &Handle{b: b, num: num}
}

// Handle adapts a backend file to io.ReaderAt.
type Handle struct {
	b   *Backend
	num uint64
}

// ReadAt implements io.ReaderAt.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) {
	return h.b.ReadFileAt(h.num, p, off)
}

// ---------------------------------------------------------------------------
// Append files (write-ahead logs)

// AppendFile is a preallocated extent written strictly sequentially,
// used for WALs and the MANIFEST.
type AppendFile struct {
	b   *Backend
	num uint64

	mu    sync.Mutex
	ext   Extent
	limit int64
	pos   int64 // guarded by mu
}

// CreateAppend reserves maxSize bytes for an append-only file. On a
// write-anywhere SMR drive the reservation is padded with the drive's
// guard window, which is never written: incremental appends damage
// only that padding, never a neighbouring extent.
func (b *Backend) CreateAppend(num uint64, maxSize int64) (*AppendFile, error) {
	b.mu.Lock()
	if _, dup := b.files[num]; dup {
		b.mu.Unlock()
		return nil, fmt.Errorf("storage: file %d already exists", num)
	}
	b.mu.Unlock()
	b.writeMu.Lock()
	ext, err := b.alloc.AllocAppend(maxSize + b.drive.Guard())
	b.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	fi := &fileInfo{ext: ext, limit: maxSize}
	b.mu.Lock()
	b.files[num] = fi
	b.stats.AppendCreates++
	b.mu.Unlock()
	return &AppendFile{b: b, num: num, ext: ext, limit: maxSize}, nil
}

// Write appends p, growing the file's logical size.
func (f *AppendFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pos+int64(len(p)) > f.limit {
		return 0, fmt.Errorf("storage: append file %d full (%d + %d > %d)", f.num, f.pos, len(p), f.limit)
	}
	if _, err := f.b.drive.WriteAt(p, f.ext.Off+f.pos); err != nil {
		return 0, err
	}
	f.pos += int64(len(p))
	f.b.mu.Lock()
	if fi, ok := f.b.files[f.num]; ok {
		fi.size = f.pos
	}
	f.b.mu.Unlock()
	return len(p), nil
}

// Size returns the bytes appended so far.
func (f *AppendFile) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pos
}

// OpenAppend reopens an existing append file for further appends
// (MANIFEST continuation after recovery).
func (b *Backend) OpenAppend(num uint64) (*AppendFile, error) {
	b.mu.Lock()
	fi, ok := b.files[num]
	b.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return &AppendFile{b: b, num: num, ext: fi.ext, limit: fi.limit, pos: fi.size}, nil
}

// ReservedSize returns the writable capacity reserved for append
// file num (its limit), as opposed to its logical size. After a
// crash the logical size cannot be trusted, so recovery scans the
// whole reservation and lets record framing find the true end.
func (b *Backend) ReservedSize(num uint64) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fi, ok := b.files[num]
	if !ok {
		return 0, ErrNotFound
	}
	return fi.limit, nil
}

// ReadReservedAt reads from file num's reserved extent, ignoring the
// logical size (capped at the reservation limit). Recovery scans use
// it to see past a stale size to whatever actually hit the platter.
func (b *Backend) ReadReservedAt(num uint64, p []byte, off int64) (int, error) {
	b.mu.Lock()
	fi, ok := b.files[num]
	b.mu.Unlock()
	if !ok {
		return 0, ErrNotFound
	}
	if off < 0 || off > fi.limit {
		return 0, fmt.Errorf("storage: reserved read at %d outside file %d (limit %d)", off, num, fi.limit)
	}
	n := len(p)
	var eof error
	if int64(n) > fi.limit-off {
		n = int(fi.limit - off)
		eof = io.EOF
	}
	if n == 0 {
		return 0, eof
	}
	if _, err := b.drive.ReadAt(p[:n], fi.ext.Off+off); err != nil {
		return 0, err
	}
	return n, eof
}

// TruncateAppend cuts append file num's logical size back to size
// and retires the drive validity of the dropped tail, so a reopened
// writer can append over it without tripping the raw drive's
// overlap check. Recovery uses it to discard a torn MANIFEST tail.
func (b *Backend) TruncateAppend(num uint64, size int64) error {
	b.mu.Lock()
	fi, ok := b.files[num]
	if !ok {
		b.mu.Unlock()
		return ErrNotFound
	}
	if size < 0 || size > fi.limit {
		b.mu.Unlock()
		return fmt.Errorf("storage: truncate of file %d to %d outside [0, %d]", num, size, fi.limit)
	}
	fi.size = size
	ext := fi.ext
	b.mu.Unlock()
	// Retire validity for everything past the new end, including the
	// guard padding (freeing never-valid space is a no-op).
	return b.drive.Free(ext.Off+size, ext.Len-size)
}
