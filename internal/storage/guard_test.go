package storage

import (
	"testing"

	"sealdb/internal/dband"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

// TestAppendFileGuardPadding: incremental appends to a preallocated
// extent must never damage the neighbouring extent, because the
// backend pads append reservations with the drive's guard window.
func TestAppendFileGuardPadding(t *testing.T) {
	disk := platter.New(platter.DefaultConfig(16 << 20))
	guard := int64(4096)
	drive := smr.NewRaw(disk, guard)
	mgr := dband.New(disk.Capacity(), 4096, guard)
	b := NewBackend(drive, NewDynamicBandAllocator(mgr))

	// An append file followed immediately by a regular file.
	f, err := b.CreateAppend(1, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(2, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	// The append reservation is padded with the guard internally:
	// its extent covers limit+guard, and the neighbour may start
	// right after it.
	fExt, _ := b.FileExtent(1)
	nExt, _ := b.FileExtent(2)
	if fExt.Len < 64<<10+guard {
		t.Fatalf("append extent %v not padded with the guard", fExt)
	}
	if nExt.Off < fExt.End() {
		t.Fatalf("neighbour at %d inside append extent ending %d", nExt.Off, fExt.End())
	}

	// Fill the append file to its writable limit: every write's
	// damage window must stay legal (the raw drive would error).
	chunk := make([]byte, 1024)
	written := int64(0)
	for written+int64(len(chunk)) <= 64<<10 {
		if _, err := f.Write(chunk); err != nil {
			t.Fatalf("append at %d: %v", written, err)
		}
		written += int64(len(chunk))
	}
	// One more write exceeds the limit and is rejected by accounting,
	// not by the drive.
	if _, err := f.Write(chunk); err == nil {
		t.Fatal("write past limit accepted")
	}
	// The neighbour's data is intact.
	got := make([]byte, 8192)
	if _, err := b.ReadFileAt(2, got, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveFreesGuardPadding: removing an append file returns its
// padded reservation, and the space is reusable.
func TestRemoveFreesGuardPadding(t *testing.T) {
	disk := platter.New(platter.DefaultConfig(16 << 20))
	guard := int64(4096)
	drive := smr.NewRaw(disk, guard)
	mgr := dband.New(disk.Capacity(), 4096, guard)
	b := NewBackend(drive, NewDynamicBandAllocator(mgr))

	f, _ := b.CreateAppend(1, 32<<10)
	f.Write(make([]byte, 1000))
	b.WriteFile(2, make([]byte, 4096)) // pin downstream
	frontier := mgr.Frontier()
	if err := b.Remove(1); err != nil {
		t.Fatal(err)
	}
	// The freed reservation (file + guard pad) is in the free list or
	// folded into the frontier.
	if mgr.FreeBytes()+frontier-mgr.Frontier() < 32<<10 {
		t.Errorf("append reservation not reclaimed: free=%d frontier %d->%d",
			mgr.FreeBytes(), frontier, mgr.Frontier())
	}
	// Reuse must not trip the drive.
	if err := b.WriteFile(3, make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}
}

func TestHandleAfterRemove(t *testing.T) {
	disk := platter.New(platter.DefaultConfig(16 << 20))
	drive := smr.NewRaw(disk, 4096)
	mgr := dband.New(disk.Capacity(), 4096, 4096)
	b := NewBackend(drive, NewDynamicBandAllocator(mgr))
	b.WriteFile(9, []byte("short-lived"))
	h := b.Handle(9)
	b.Remove(9)
	if _, err := h.ReadAt(make([]byte, 4), 0); err == nil {
		t.Fatal("read through a handle of a removed file succeeded")
	}
	if b.NumFiles() != 0 {
		t.Fatalf("NumFiles = %d", b.NumFiles())
	}
}
