package storage

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"sealdb/internal/dband"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

func newRawBackend(t *testing.T) (*Backend, *dband.Manager, *smr.RawDrive) {
	t.Helper()
	disk := platter.New(platter.DefaultConfig(16 << 20))
	drive := smr.NewRaw(disk, 4096)
	mgr := dband.New(disk.Capacity(), 4096, 4096)
	b := NewBackend(drive, NewDynamicBandAllocator(mgr))
	return b, mgr, drive
}

func TestWriteReadRemove(t *testing.T) {
	b, _, _ := newRawBackend(t)
	data := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := b.WriteFile(1, data); err != nil {
		t.Fatal(err)
	}
	if sz, _ := b.FileSize(1); sz != int64(len(data)) {
		t.Errorf("size %d", sz)
	}
	got := make([]byte, len(data))
	if _, err := b.ReadFileAt(1, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data mismatch")
	}
	// Partial read in the middle.
	mid := make([]byte, 100)
	if _, err := b.ReadFileAt(1, mid, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mid, data[500:600]) {
		t.Error("partial read mismatch")
	}
	if err := b.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.FileSize(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestDuplicateFileRejected(t *testing.T) {
	b, _, _ := newRawBackend(t)
	if err := b.WriteFile(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(7, []byte("y")); err == nil {
		t.Error("duplicate file number accepted")
	}
}

func TestReadAtEOFSemantics(t *testing.T) {
	b, _, _ := newRawBackend(t)
	b.WriteFile(1, []byte("hello"))
	p := make([]byte, 10)
	n, err := b.ReadFileAt(1, p, 0)
	if n != 5 || err != io.EOF {
		t.Errorf("n=%d err=%v, want 5, io.EOF", n, err)
	}
	h := b.Handle(1)
	n, err = h.ReadAt(p[:3], 2)
	if n != 3 || err != nil {
		t.Errorf("handle read n=%d err=%v", n, err)
	}
	if string(p[:3]) != "llo" {
		t.Errorf("handle read %q", p[:3])
	}
}

func TestWriteGroupContiguous(t *testing.T) {
	b, _, drive := newRawBackend(t)
	nums := []uint64{10, 11, 12}
	datas := [][]byte{
		bytes.Repeat([]byte("a"), 3000),
		bytes.Repeat([]byte("b"), 5000),
		bytes.Repeat([]byte("c"), 2000),
	}
	ext, grouped, err := b.WriteGroup(nums, datas)
	if err != nil {
		t.Fatal(err)
	}
	if !grouped {
		t.Fatal("dynamic band allocator should group")
	}
	if ext.Len != 10000 {
		t.Errorf("group extent %v, want len 10000", ext)
	}
	// Files are contiguous and in order.
	var pos = ext.Off
	for i, num := range nums {
		fe, _ := b.FileExtent(num)
		if fe.Off != pos || fe.Len != int64(len(datas[i])) {
			t.Errorf("file %d extent %v, want off %d len %d", num, fe, pos, len(datas[i]))
		}
		got := make([]byte, len(datas[i]))
		b.ReadFileAt(num, got, 0)
		if !bytes.Equal(got, datas[i]) {
			t.Errorf("file %d data mismatch", num)
		}
		pos += fe.Len
	}
	// Removing a grouped member must not free the space.
	valid := drive.ValidBytes()
	b.Remove(11)
	if drive.ValidBytes() != valid {
		t.Error("removing a set member freed drive space early")
	}
	// Freeing the group extent releases it.
	if err := b.FreeExtent(ext); err != nil {
		t.Fatal(err)
	}
	if drive.ValidBytes() != valid-10000 {
		t.Errorf("FreeExtent released %d bytes, want 10000", valid-drive.ValidBytes())
	}
}

func TestWriteGroupFallbackOnExtfsStylePolicy(t *testing.T) {
	disk := platter.New(platter.DefaultConfig(16 << 20))
	drive := smr.NewFixedBand(disk, 1<<20)
	b := NewBackend(drive, refusingAlloc{})
	_, grouped, err := b.WriteGroup([]uint64{1, 2}, [][]byte{[]byte("xx"), []byte("yy")})
	if err != nil {
		t.Fatal(err)
	}
	if grouped {
		t.Error("grouping reported for a policy that refuses groups")
	}
	got := make([]byte, 2)
	b.ReadFileAt(2, got, 0)
	if string(got) != "yy" {
		t.Errorf("fallback file content %q", got)
	}
}

// refusingAlloc allocates sequentially but refuses groups.
type refusingAlloc struct{}

var refusingNext int64

func (refusingAlloc) Alloc(size int64) (Extent, error) {
	e := Extent{Off: refusingNext, Len: size}
	refusingNext += size
	return e, nil
}
func (r refusingAlloc) AllocAppend(size int64) (Extent, error) { return r.Alloc(size) }
func (refusingAlloc) AllocGroup(sizes []int64) (Extent, error) {
	return Extent{}, ErrNoGroupAlloc
}
func (refusingAlloc) Free(e Extent) {}

func TestAppendFile(t *testing.T) {
	b, _, _ := newRawBackend(t)
	f, err := b.CreateAppend(99, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 20; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	if f.Size() != int64(len(want)) {
		t.Errorf("size %d, want %d", f.Size(), len(want))
	}
	got := make([]byte, len(want))
	if _, err := b.ReadFileAt(99, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("append data mismatch")
	}

	// Reopen and continue appending.
	f2, err := b.OpenAppend(99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len(want)+4)
	b.ReadFileAt(99, got2, 0)
	if string(got2[len(want):]) != "tail" {
		t.Error("continued append lost")
	}
}

func TestAppendFileCapacity(t *testing.T) {
	b, _, _ := newRawBackend(t)
	f, _ := b.CreateAppend(1, 100)
	if _, err := f.Write(make([]byte, 101)); err == nil {
		t.Error("overflowing append accepted")
	}
}

func TestBandAllocatorDedicatedBands(t *testing.T) {
	disk := platter.New(platter.DefaultConfig(16 << 20))
	drive := smr.NewFixedBand(disk, 1<<20)
	a := NewBandAllocator(drive)
	e1, err := a.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := a.Alloc(100)
	if e1.Off%(1<<20) != 0 || e2.Off%(1<<20) != 0 {
		t.Error("extents not band aligned")
	}
	if e1.Off == e2.Off {
		t.Error("two files share a band")
	}
	// A request larger than a band takes a run of consecutive fresh
	// bands (metadata files), still band aligned.
	big, err := a.Alloc(1<<20 + 1)
	if err != nil {
		t.Fatalf("multi-band alloc: %v", err)
	}
	if big.Off%(1<<20) != 0 {
		t.Error("multi-band extent not band aligned")
	}
	following, _ := a.Alloc(100)
	if following.Off < big.Off+2*(1<<20) && following.Off >= big.Off {
		t.Errorf("allocation %v landed inside multi-band run starting at %d", following, big.Off)
	}

	// Write a full band, free it, and rewrite: no RMW thanks to the
	// band reset.
	if _, err := drive.WriteAt(make([]byte, 1<<20), e1.Off); err != nil {
		t.Fatal(err)
	}
	a.Free(e1)
	e3, _ := a.Alloc(1 << 20)
	if e3.Off != e1.Off {
		t.Errorf("band not recycled: %v", e3)
	}
	if _, err := drive.WriteAt(make([]byte, 1<<20), e3.Off); err != nil {
		t.Fatal(err)
	}
	if drive.RMWCount() != 0 {
		t.Errorf("band rewrite after reset caused %d RMWs", drive.RMWCount())
	}
	if awa := smr.AWA(drive); awa != 1.0 {
		t.Errorf("AWA = %v, want 1.0 for dedicated bands", awa)
	}
}

func TestBandAllocatorExhaustion(t *testing.T) {
	disk := platter.New(platter.DefaultConfig(8 << 20))
	drive := smr.NewFixedBand(disk, 1<<20)
	a := NewBandAllocator(drive)
	bands := drive.Capacity() / (1 << 20) // media cache shrinks the usable space
	for i := int64(0); i < bands; i++ {
		if _, err := a.Alloc(10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Alloc(10); err != ErrNoSpace {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
}

func TestDynamicAllocatorSetsAWAOne(t *testing.T) {
	b, _, drive := newRawBackend(t)
	rng := rand.New(rand.NewSource(3))
	var num uint64
	live := map[uint64]int{}
	for i := 0; i < 300; i++ {
		num++
		data := make([]byte, 1024+rng.Intn(8192))
		if err := b.WriteFile(num, data); err != nil {
			t.Fatalf("write %d: %v", num, err)
		}
		live[num] = len(data)
		if len(live) > 20 {
			for k := range live {
				b.Remove(k)
				delete(live, k)
				break
			}
		}
	}
	if awa := smr.AWA(drive); awa != 1.0 {
		t.Errorf("AWA = %v, want exactly 1.0", awa)
	}
}
