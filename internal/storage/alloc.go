package storage

import (
	"errors"
	"fmt"
	"sync"

	"sealdb/internal/dband"
	"sealdb/internal/invariant"
	"sealdb/internal/smr"
)

// ErrNoSpace is returned when an allocator runs out of disk space.
var ErrNoSpace = errors.New("storage: out of disk space")

// ---------------------------------------------------------------------------
// Dedicated-band allocator (the SMRDB baseline's placement policy)

// BandAllocator assigns each file its own fixed-size band, as SMRDB
// does: SSTables are enlarged to the band size and every SSTable
// lives in a dedicated band, which is reset (write pointer rewound)
// when the SSTable is deleted so the band can be rewritten
// sequentially with no read-modify-write.
type BandAllocator struct {
	drive    *smr.FixedBandDrive
	bandSize int64

	mu       sync.Mutex
	nextBand int64   // guarded by mu
	freeList []int64 // recycled band indexes, LIFO; guarded by mu
}

// NewBandAllocator creates the policy over a fixed-band drive.
func NewBandAllocator(drive *smr.FixedBandDrive) *BandAllocator {
	return &BandAllocator{drive: drive, bandSize: drive.BandSize()}
}

// Alloc implements Allocator. A request up to one band comes from the
// recycle list or the frontier; a larger request (metadata files such
// as the MANIFEST) takes a run of consecutive fresh bands, which is
// still written strictly sequentially.
func (a *BandAllocator) Alloc(size int64) (Extent, error) {
	if size <= 0 {
		return Extent{}, fmt.Errorf("storage: band allocator: invalid size %d", size)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	nBands := (size + a.bandSize - 1) / a.bandSize
	var band int64
	if nBands == 1 && len(a.freeList) > 0 {
		n := len(a.freeList)
		band = a.freeList[n-1]
		a.freeList = a.freeList[:n-1]
	} else {
		if (a.nextBand+nBands)*a.bandSize > a.drive.Capacity() {
			return Extent{}, ErrNoSpace
		}
		band = a.nextBand
		a.nextBand += nBands
	}
	if invariant.Enabled {
		invariant.Assert(band >= 0 && (band+nBands)*a.bandSize <= a.drive.Capacity(),
			"band run [%d,%d) escapes the drive", band, band+nBands)
	}
	return Extent{Off: band * a.bandSize, Len: size}, nil
}

// AllocAppend implements Allocator; logs also get dedicated bands.
func (a *BandAllocator) AllocAppend(size int64) (Extent, error) {
	return a.Alloc(size)
}

// AllocGroup implements Allocator. SMRDB has no set concept; groups
// are refused so files fall back to per-band placement.
func (a *BandAllocator) AllocGroup(sizes []int64) (Extent, error) {
	return Extent{}, ErrNoGroupAlloc
}

// Free implements Allocator: every covered band is reset (a
// ZBC-style zone reset rewinding the write pointer) and recycled.
func (a *BandAllocator) Free(e Extent) {
	if e.Len <= 0 {
		return
	}
	first := e.Off / a.bandSize
	last := (e.End() - 1) / a.bandSize
	a.mu.Lock()
	for b := first; b <= last; b++ {
		a.drive.ResetBand(b)
		a.freeList = append(a.freeList, b)
	}
	a.mu.Unlock()
}

var _ Allocator = (*BandAllocator)(nil)

// ---------------------------------------------------------------------------
// Dynamic-band allocator (SEALDB's placement policy)

// DynamicBandAllocator adapts dband.Manager to the storage.Allocator
// interface. Group allocations reserve one contiguous extent for a
// whole set; frees feed the manager's free-space list and the drive's
// validity map through the backend.
type DynamicBandAllocator struct {
	m *dband.Manager
}

// NewDynamicBandAllocator wraps a dynamic band manager.
func NewDynamicBandAllocator(m *dband.Manager) *DynamicBandAllocator {
	return &DynamicBandAllocator{m: m}
}

// Manager exposes the underlying dband.Manager for layout censuses.
func (a *DynamicBandAllocator) Manager() *dband.Manager { return a.m }

// Alloc implements Allocator.
func (a *DynamicBandAllocator) Alloc(size int64) (Extent, error) {
	e, _, err := a.m.Alloc(size)
	if err != nil {
		return Extent{}, err
	}
	return Extent{Off: e.Off, Len: e.Len}, nil
}

// AllocAppend implements Allocator.
func (a *DynamicBandAllocator) AllocAppend(size int64) (Extent, error) {
	return a.Alloc(size)
}

// AllocGroup implements Allocator: one contiguous extent for the set.
func (a *DynamicBandAllocator) AllocGroup(sizes []int64) (Extent, error) {
	var total int64
	for _, s := range sizes {
		total += s
	}
	return a.Alloc(total)
}

// Free implements Allocator.
func (a *DynamicBandAllocator) Free(e Extent) {
	a.m.Free(dband.Extent{Off: e.Off, Len: e.Len})
}

var _ Allocator = (*DynamicBandAllocator)(nil)
