// Package vlog implements SEALDB's value log: the WiscKey-style
// key–value separation layer that keeps large values out of the LSM
// tree. Values above the engine's threshold are appended to segment
// files — framed, checksummed logs whose extents come from the
// dynamic-band allocator — and the tree stores a fixed-size Pointer
// in their place.
//
// This package owns the mechanical pieces: the record wire format
// and its CRC, the Pointer codec, a Writer that frames appends into
// a segment, a Scanner that walks segment bytes and finds the torn
// tail after a crash, and the accounting Table that tracks per-
// segment live/dead bytes for set-aware garbage collection. Policy —
// when to separate, when to collect, how to repair pointers — lives
// in internal/lsm, which drives these types under the engine lock.
//
// Record format within a segment (all integers little-endian):
//
//	crc     uint32   masked CRC-32C over seed(segment) ‖ rest
//	klen    uvarint  key length
//	vlen    uvarint  value length
//	key     klen bytes
//	value   vlen bytes
//
// The CRC is seeded with the segment's file number, like the WAL's
// tagged frames: a record sitting at the right offset of the wrong
// (recycled) segment fails its checksum instead of decoding as live
// data.
package vlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"sealdb/internal/obs"
)

// ErrCorrupt reports a record that failed structural or checksum
// validation. During tail recovery it marks the torn point; anywhere
// else it is real corruption.
var ErrCorrupt = errors.New("vlog: corrupt record")

// crcSize is the record header's checksum field width.
const crcSize = 4

// maxLen bounds a single key or value length a decoder will accept.
// Segments are a few MiB; anything claiming more is a torn or
// corrupt length byte, and rejecting it keeps adversarial inputs
// from turning into huge slice bounds.
const maxLen = 1 << 31

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// mask implements LevelDB's CRC masking so CRCs stored in a segment
// do not collide with CRCs computed over segment bytes.
func mask(c uint32) uint32 { return ((c >> 15) | (c << 17)) + 0xa282ead8 }

// recordCRC checksums a record body (everything after the crc field)
// seeded with the segment file number.
func recordCRC(seg uint64, body []byte) uint32 {
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], seg)
	c := crc32.Update(0, castagnoli, seed[:])
	c = crc32.Update(c, castagnoli, body)
	return mask(c)
}

// RecordSize returns the encoded size of a record holding a key and
// value of the given lengths.
func RecordSize(klen, vlen int) int {
	var tmp [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(klen))
	n += binary.PutUvarint(tmp[n:], uint64(vlen))
	return crcSize + n + klen + vlen
}

// AppendRecord appends the framed record for (key, value) in segment
// seg to dst and returns the extended slice.
func AppendRecord(dst []byte, seg uint64, key, value []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	crc := recordCRC(seg, dst[start+crcSize:])
	binary.LittleEndian.PutUint32(dst[start:start+crcSize], crc)
	return dst
}

// DecodeRecord decodes one record from the head of b, returning the
// key, value, and encoded length consumed. The returned slices alias
// b. A short buffer, bad length, or checksum mismatch all return
// ErrCorrupt: the caller decides whether that means a torn tail
// (clean truncation) or damage.
func DecodeRecord(seg uint64, b []byte) (key, value []byte, n int, err error) {
	if len(b) < crcSize {
		return nil, nil, 0, fmt.Errorf("%w: %d bytes is shorter than a record header", ErrCorrupt, len(b))
	}
	body := b[crcSize:]
	klen, kn := binary.Uvarint(body)
	if kn <= 0 || klen > maxLen {
		return nil, nil, 0, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	vlen, vn := binary.Uvarint(body[kn:])
	if vn <= 0 || vlen > maxLen {
		return nil, nil, 0, fmt.Errorf("%w: bad value length", ErrCorrupt)
	}
	payload := body[kn+vn:]
	if uint64(len(payload)) < klen+vlen {
		return nil, nil, 0, fmt.Errorf("%w: record claims %d payload bytes, %d remain", ErrCorrupt, klen+vlen, len(payload))
	}
	n = crcSize + kn + vn + int(klen) + int(vlen)
	if got, want := recordCRC(seg, b[crcSize:n]), binary.LittleEndian.Uint32(b[:crcSize]); got != want {
		return nil, nil, 0, fmt.Errorf("%w: checksum mismatch in segment %d", ErrCorrupt, seg)
	}
	return payload[:klen:klen], payload[klen : klen+vlen : klen+vlen], n, nil
}

// PointerSize is the fixed wire size of an encoded Pointer; the LSM
// separates a value only when it is larger than this, so separation
// always shrinks the tree.
const PointerSize = 16

// Pointer locates one record inside a value-log segment. Len is the
// full encoded record length, so a chase is a single ReadAt followed
// by DecodeRecord, and dead-byte accounting can charge the exact
// footprint a drop releases.
type Pointer struct {
	Seg uint64 // segment file number
	Off uint32 // byte offset of the record within the segment
	Len uint32 // encoded record length, header included
}

// AppendPointer appends p's fixed-size encoding to dst.
func AppendPointer(dst []byte, p Pointer) []byte {
	var b [PointerSize]byte
	binary.LittleEndian.PutUint64(b[0:8], p.Seg)
	binary.LittleEndian.PutUint32(b[8:12], p.Off)
	binary.LittleEndian.PutUint32(b[12:16], p.Len)
	return append(dst, b[:]...)
}

// DecodePointer decodes a Pointer from exactly PointerSize bytes.
func DecodePointer(b []byte) (Pointer, error) {
	if len(b) != PointerSize {
		return Pointer{}, fmt.Errorf("%w: pointer is %d bytes, want %d", ErrCorrupt, len(b), PointerSize)
	}
	return Pointer{
		Seg: binary.LittleEndian.Uint64(b[0:8]),
		Off: binary.LittleEndian.Uint32(b[8:12]),
		Len: binary.LittleEndian.Uint32(b[12:16]),
	}, nil
}

// Writer frames records into one segment. The sink is the segment's
// append file (any io.Writer in tests); off is where this writer
// resumes, so a reopened segment continues from its recovered valid
// length. Writer does not lock: the engine serializes appends under
// its own mutex.
type Writer struct {
	w   io.Writer
	seg uint64
	off int64
	buf []byte
}

// NewWriter returns a Writer appending to segment seg at offset off.
func NewWriter(w io.Writer, seg uint64, off int64) *Writer {
	return &Writer{w: w, seg: seg, off: off}
}

// Append frames (key, value), writes the record to the sink, and
// returns the Pointer a tree entry should store. The sink's write is
// the durability point: when Append returns, the record bytes have
// been handed to the device.
func (w *Writer) Append(key, value []byte) (Pointer, error) {
	w.buf = AppendRecord(w.buf[:0], w.seg, key, value)
	if w.off+int64(len(w.buf)) > maxLen {
		return Pointer{}, fmt.Errorf("vlog: segment %d overflows pointer offset range at %d bytes", w.seg, w.off)
	}
	p := Pointer{Seg: w.seg, Off: uint32(w.off), Len: uint32(len(w.buf))}
	if _, err := w.w.Write(w.buf); err != nil {
		return Pointer{}, err
	}
	w.off += int64(len(w.buf))
	return p, nil
}

// Seg returns the segment file number this writer appends to.
func (w *Writer) Seg() uint64 { return w.seg }

// Offset returns the segment offset the next Append will land at —
// equivalently, the record bytes written to the segment so far.
func (w *Writer) Offset() int64 { return w.off }

// Scanner walks the records in a segment's bytes. Next returns false
// at the first byte range that does not decode as a whole record;
// ValidLen then reports the clean prefix. On the active segment after
// a crash that boundary is the torn tail — everything before it is
// intact (each record carries its own CRC), everything after is an
// interrupted append to truncate away.
type Scanner struct {
	seg      uint64
	buf      []byte
	pos      int
	key, val []byte
	ptr      Pointer
	err      error
}

// NewScanner returns a Scanner over buf, which holds segment seg's
// bytes starting at offset zero.
func NewScanner(seg uint64, buf []byte) *Scanner {
	return &Scanner{seg: seg, buf: buf}
}

// Next advances to the next record, reporting whether one was
// decoded.
func (s *Scanner) Next() bool {
	if s.err != nil || s.pos >= len(s.buf) {
		return false
	}
	key, val, n, err := DecodeRecord(s.seg, s.buf[s.pos:])
	if err != nil {
		s.err = err
		return false
	}
	s.key, s.val = key, val
	s.ptr = Pointer{Seg: s.seg, Off: uint32(s.pos), Len: uint32(n)}
	s.pos += n
	return true
}

// Key returns the current record's key. Valid until the next call to
// Next.
func (s *Scanner) Key() []byte { return s.key }

// Value returns the current record's value. Valid until the next
// call to Next.
func (s *Scanner) Value() []byte { return s.val }

// Pointer returns the Pointer locating the current record.
func (s *Scanner) Pointer() Pointer { return s.ptr }

// ValidLen returns the length of the clean record prefix: the
// truncation point for tail recovery.
func (s *Scanner) ValidLen() int64 { return int64(s.pos) }

// Err returns the decode error that ended the scan, or nil if the
// buffer was consumed exactly.
func (s *Scanner) Err() error { return s.err }

// SegmentInfo is one segment's accounting entry.
type SegmentInfo struct {
	Num    uint64 // storage file number
	Bytes  int64  // record bytes written (the segment's valid length)
	Dead   int64  // bytes of records known superseded or deleted
	Sealed bool   // full segments are sealed and become GC candidates
}

// Live returns the segment's live record bytes.
func (s SegmentInfo) Live() int64 { return s.Bytes - s.Dead }

// DeadRatio returns the fraction of the segment's bytes known dead.
func (s SegmentInfo) DeadRatio() float64 {
	if s.Bytes <= 0 {
		return 0
	}
	return float64(s.Dead) / float64(s.Bytes)
}

// Table tracks per-segment live-byte accounting for the garbage
// collector. The engine feeds it from three sources: appends extend
// the active segment, compaction drops and GC re-puts report dead
// bytes, and recovery rebuilds the whole table from the manifest.
// Victim selection reads it to find the segment whose reclamation
// frees the most dead space.
type Table struct {
	// mu guards the segment map. The engine mutates the table with
	// the DB lock held; metric gauges read it without, so it carries
	// its own lock at the bottom of the hierarchy.
	//
	// lockorder: lsm_db_mu < vlog_table_mu
	mu   obs.Mutex
	segs map[uint64]*SegmentInfo
}

// NewTable returns an empty accounting table.
func NewTable() *Table {
	t := &Table{segs: map[uint64]*SegmentInfo{}}
	t.mu.Profile("vlog_table_mu")
	return t
}

// Open registers segment num as the active (unsealed) segment with
// the given starting length — zero for a fresh segment, the
// recovered valid length after a crash.
func (t *Table) Open(num uint64, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.segs[num] = &SegmentInfo{Num: num, Bytes: bytes}
}

// Extend records n bytes appended to segment num.
func (t *Table) Extend(num uint64, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.segs[num]; s != nil {
		s.Bytes += n
	}
}

// Seal marks segment num full at the given final length, making it a
// GC candidate.
func (t *Table) Seal(num uint64, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.segs[num]; s != nil {
		s.Bytes = bytes
		s.Sealed = true
	} else {
		t.segs[num] = &SegmentInfo{Num: num, Bytes: bytes, Sealed: true}
	}
}

// AddDead charges n dead bytes to segment num, clamped to the
// segment's size so replayed or duplicated drops cannot push live
// accounting negative.
func (t *Table) AddDead(num uint64, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.segs[num]; s != nil {
		s.Dead += n
		if s.Dead > s.Bytes {
			s.Dead = s.Bytes
		}
	}
}

// Drop forgets segment num after the collector has reclaimed it.
func (t *Table) Drop(num uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.segs, num)
}

// Info returns segment num's entry.
func (t *Table) Info(num uint64) (SegmentInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.segs[num]
	if !ok {
		return SegmentInfo{}, false
	}
	return *s, true
}

// Segments returns all entries sorted by file number.
func (t *Table) Segments() []SegmentInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SegmentInfo, 0, len(t.segs))
	for _, s := range t.segs {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// Victim returns the sealed segment with the highest dead ratio, if
// any reaches minRatio. Ties break toward the lowest file number so
// selection is deterministic under a fixed accounting state.
func (t *Table) Victim(minRatio float64) (SegmentInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best *SegmentInfo
	for _, s := range t.segs {
		if !s.Sealed || s.DeadRatio() < minRatio {
			continue
		}
		if best == nil || s.DeadRatio() > best.DeadRatio() ||
			(s.DeadRatio() == best.DeadRatio() && s.Num < best.Num) {
			best = s
		}
	}
	if best == nil {
		return SegmentInfo{}, false
	}
	return *best, true
}

// Totals returns the table-wide live and dead byte counts and the
// number of tracked segments.
func (t *Table) Totals() (live, dead int64, segments int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.segs {
		live += s.Live()
		dead += s.Dead
	}
	return live, dead, len(t.segs)
}
