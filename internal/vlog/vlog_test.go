package vlog

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct{ key, value string }{
		{"k", "v"},
		{"key000042", string(bytes.Repeat([]byte{0xab}, 4096))},
		{"", "value-with-empty-key"},
		{"empty-value", ""},
		{"", ""},
	}
	var buf []byte
	for _, c := range cases {
		buf = AppendRecord(buf[:0], 7, []byte(c.key), []byte(c.value))
		if got := RecordSize(len(c.key), len(c.value)); got != len(buf) {
			t.Fatalf("RecordSize(%d, %d) = %d, encoded %d", len(c.key), len(c.value), got, len(buf))
		}
		k, v, n, err := DecodeRecord(7, buf)
		if err != nil {
			t.Fatalf("decode (%q, %q): %v", c.key, c.value, err)
		}
		if n != len(buf) || string(k) != c.key || string(v) != c.value {
			t.Fatalf("round trip (%q, %q): got (%q, %q) n=%d", c.key, c.value, k, v, n)
		}
	}
}

func TestRecordSegmentSeedMismatch(t *testing.T) {
	rec := AppendRecord(nil, 7, []byte("k"), []byte("v"))
	if _, _, _, err := DecodeRecord(8, rec); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode under wrong segment seed: %v, want ErrCorrupt", err)
	}
}

func TestRecordCorruption(t *testing.T) {
	rec := AppendRecord(nil, 3, []byte("key"), bytes.Repeat([]byte("v"), 100))
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x40
		if _, _, _, err := DecodeRecord(3, mut); err == nil {
			t.Fatalf("flipped byte %d decoded clean", i)
		}
	}
	for cut := 0; cut < len(rec); cut++ {
		if _, _, _, err := DecodeRecord(3, rec[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestPointerRoundTrip(t *testing.T) {
	p := Pointer{Seg: 1<<40 + 17, Off: 123456, Len: 789}
	b := AppendPointer(nil, p)
	if len(b) != PointerSize {
		t.Fatalf("encoded pointer is %d bytes, want %d", len(b), PointerSize)
	}
	got, err := DecodePointer(b)
	if err != nil || got != p {
		t.Fatalf("pointer round trip: %+v, %v", got, err)
	}
	if _, err := DecodePointer(b[:PointerSize-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short pointer: %v, want ErrCorrupt", err)
	}
}

func TestWriterScannerTornTail(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, 11, 0)
	type rec struct {
		key, val string
		ptr      Pointer
	}
	recs := []rec{
		{key: "alpha", val: string(bytes.Repeat([]byte("A"), 200))},
		{key: "beta", val: string(bytes.Repeat([]byte("B"), 90))},
		{key: "gamma", val: string(bytes.Repeat([]byte("C"), 500))},
	}
	for i := range recs {
		p, err := w.Append([]byte(recs[i].key), []byte(recs[i].val))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs[i].ptr = p
	}
	if w.Offset() != int64(sink.Len()) {
		t.Fatalf("writer offset %d, sink holds %d", w.Offset(), sink.Len())
	}

	// Clean scan: every record, pointers matching what Append issued.
	s := NewScanner(11, sink.Bytes())
	for i := range recs {
		if !s.Next() {
			t.Fatalf("scan stopped at record %d: %v", i, s.Err())
		}
		if string(s.Key()) != recs[i].key || string(s.Value()) != recs[i].val || s.Pointer() != recs[i].ptr {
			t.Fatalf("record %d: key %q value len %d ptr %+v, want %q/%d/%+v",
				i, s.Key(), len(s.Value()), s.Pointer(), recs[i].key, len(recs[i].val), recs[i].ptr)
		}
		// Pointer-addressed slice must decode back to the same record.
		off, end := s.Pointer().Off, s.Pointer().Off+s.Pointer().Len
		k, v, _, err := DecodeRecord(11, sink.Bytes()[off:end])
		if err != nil || string(k) != recs[i].key || string(v) != recs[i].val {
			t.Fatalf("pointer chase of record %d: %q, %v", i, k, err)
		}
	}
	if s.Next() || s.Err() != nil {
		t.Fatalf("clean scan did not end cleanly: next=%v err=%v", s.Next(), s.Err())
	}
	if s.ValidLen() != int64(sink.Len()) {
		t.Fatalf("clean ValidLen %d, want %d", s.ValidLen(), sink.Len())
	}

	// Torn tail: cut the last record mid-write; ValidLen must land on
	// the boundary before it, for every cut position.
	full := sink.Bytes()
	lastStart := int64(recs[2].ptr.Off)
	for cut := lastStart + 1; cut < int64(len(full)); cut++ {
		ts := NewScanner(11, full[:cut])
		n := 0
		for ts.Next() {
			n++
		}
		if n != 2 || ts.ValidLen() != lastStart || !errors.Is(ts.Err(), ErrCorrupt) {
			t.Fatalf("cut %d: %d records, ValidLen %d, err %v; want 2 records at %d", cut, n, ts.ValidLen(), ts.Err(), lastStart)
		}
	}

	// A writer reopened at the recovered length keeps issuing correct
	// pointers.
	w2 := NewWriter(&sink, 11, int64(sink.Len()))
	p, err := w2.Append([]byte("delta"), []byte("D"))
	if err != nil {
		t.Fatalf("reopened append: %v", err)
	}
	k, v, _, err := DecodeRecord(11, sink.Bytes()[p.Off:p.Off+p.Len])
	if err != nil || string(k) != "delta" || string(v) != "D" {
		t.Fatalf("reopened pointer chase: %q %q %v", k, v, err)
	}
}

func TestTableAccounting(t *testing.T) {
	tab := NewTable()
	tab.Open(5, 0)
	tab.Extend(5, 1000)
	if s, ok := tab.Info(5); !ok || s.Bytes != 1000 || s.Dead != 0 || s.Sealed {
		t.Fatalf("after extend: %+v %v", s, ok)
	}
	tab.Seal(5, 1000)
	tab.AddDead(5, 600)
	s, _ := tab.Info(5)
	if s.Live() != 400 || s.DeadRatio() != 0.6 || !s.Sealed {
		t.Fatalf("after seal+dead: %+v", s)
	}
	// Clamp: dead can never exceed size even if drops double-report.
	tab.AddDead(5, 10_000)
	if s, _ := tab.Info(5); s.Dead != 1000 || s.Live() != 0 {
		t.Fatalf("dead not clamped: %+v", s)
	}
	// Seal of an unknown segment (manifest replay order) registers it.
	tab.Seal(9, 500)
	if s, ok := tab.Info(9); !ok || !s.Sealed || s.Bytes != 500 {
		t.Fatalf("seal-register: %+v %v", s, ok)
	}
	live, dead, n := tab.Totals()
	if live != 500 || dead != 1000 || n != 2 {
		t.Fatalf("totals: live=%d dead=%d n=%d", live, dead, n)
	}
	tab.Drop(5)
	if _, ok := tab.Info(5); ok {
		t.Fatal("segment 5 survived Drop")
	}
	if got := tab.Segments(); len(got) != 1 || got[0].Num != 9 {
		t.Fatalf("segments after drop: %+v", got)
	}
}

func TestTableVictimSelection(t *testing.T) {
	tab := NewTable()
	// Active segment: never a victim regardless of dead ratio.
	tab.Open(1, 0)
	tab.Extend(1, 100)
	tab.AddDead(1, 100)
	if v, ok := tab.Victim(0.1); ok {
		t.Fatalf("unsealed victim selected: %+v", v)
	}
	// Sealed segments: highest dead ratio wins.
	tab.Seal(2, 1000)
	tab.AddDead(2, 300)
	tab.Seal(3, 1000)
	tab.AddDead(3, 700)
	tab.Seal(4, 1000)
	tab.AddDead(4, 500)
	v, ok := tab.Victim(0.25)
	if !ok || v.Num != 3 {
		t.Fatalf("victim = %+v, %v; want segment 3", v, ok)
	}
	// Threshold excludes everything below it.
	if v, ok := tab.Victim(0.75); ok {
		t.Fatalf("victim above threshold: %+v", v)
	}
	// Deterministic tie-break: equal ratios pick the lowest number.
	tab.AddDead(2, 400) // seg 2 now 0.7, tied with seg 3
	if v, ok := tab.Victim(0.25); !ok || v.Num != 2 {
		t.Fatalf("tie-break victim = %+v, %v; want segment 2", v, ok)
	}
}
