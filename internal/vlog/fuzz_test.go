package vlog

import (
	"bytes"
	"testing"
)

// FuzzVlogRecordDecode drives the record and pointer decoders with
// arbitrary bytes under an arbitrary segment seed. The invariants:
// no decoder may panic, anything accepted must re-encode to bytes
// that decode again with equal meaning, and the Scanner's ValidLen
// must always sit on a boundary the decoder itself accepts.
func FuzzVlogRecordDecode(f *testing.F) {
	seed := [][]byte{
		AppendRecord(nil, 1, []byte("key000001"), []byte("value")),
		AppendRecord(nil, 1, nil, nil),
		AppendRecord(AppendRecord(nil, 42, []byte("a"), bytes.Repeat([]byte("x"), 300)), 42, []byte("b"), []byte("y")),
		AppendPointer(nil, Pointer{Seg: 9, Off: 4096, Len: 128}),
		{0, 0, 0, 0}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for _, s := range seed {
		f.Add(uint64(1), s)
		f.Add(uint64(42), s)
	}
	f.Fuzz(func(t *testing.T, seg uint64, data []byte) {
		if key, val, n, err := DecodeRecord(seg, data); err == nil {
			if n < crcSize || n > len(data) {
				t.Fatalf("accepted record length %d out of range [%d, %d]", n, crcSize, len(data))
			}
			re := AppendRecord(nil, seg, key, val)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("accepted record is not canonical: re-encode differs")
			}
			k2, v2, n2, err := DecodeRecord(seg, re)
			if err != nil || n2 != n || !bytes.Equal(k2, key) || !bytes.Equal(v2, val) {
				t.Fatalf("record round trip: n=%d/%d err=%v", n2, n, err)
			}
		}

		// The scanner must consume exactly the records the decoder
		// accepts and stop exactly where it refuses.
		s := NewScanner(seg, data)
		var records int
		for s.Next() {
			records++
			p := s.Pointer()
			if int64(p.Off) != s.ValidLen()-int64(p.Len) {
				t.Fatalf("pointer %+v disagrees with scan position %d", p, s.ValidLen())
			}
		}
		valid := s.ValidLen()
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("ValidLen %d out of range", valid)
		}
		if valid < int64(len(data)) {
			if _, _, _, err := DecodeRecord(seg, data[valid:]); err == nil {
				t.Fatalf("scanner stopped at %d but a record decodes there", valid)
			}
		}
		// Re-scanning the valid prefix must accept all of it.
		s2 := NewScanner(seg, data[:valid])
		n2 := 0
		for s2.Next() {
			n2++
		}
		if n2 != records || s2.Err() != nil || s2.ValidLen() != valid {
			t.Fatalf("prefix rescan: %d/%d records, err=%v, valid=%d/%d", n2, records, s2.Err(), s2.ValidLen(), valid)
		}

		if p, err := DecodePointer(data); err == nil {
			if p2, err := DecodePointer(AppendPointer(nil, p)); err != nil || p2 != p {
				t.Fatalf("pointer round trip: %+v vs %+v, %v", p, p2, err)
			}
		}
	})
}
