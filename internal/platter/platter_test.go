package platter

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testDisk(capacity int64) *Disk {
	cfg := DefaultConfig(capacity)
	cfg.ChunkSize = 4096
	return New(cfg)
}

func TestReadBackWrites(t *testing.T) {
	d := testDisk(1 << 20)
	data := []byte("hello shingles")
	if _, err := d.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := testDisk(1 << 20)
	p := []byte{1, 2, 3, 4}
	if _, err := d.ReadAt(p, 5000); err != nil {
		t.Fatal(err)
	}
	for _, b := range p {
		if b != 0 {
			t.Fatalf("unwritten space read nonzero: %v", p)
		}
	}
}

func TestCrossChunkWriteRead(t *testing.T) {
	d := testDisk(1 << 20)
	data := make([]byte, 10000) // crosses several 4 KiB chunks
	rand.New(rand.NewSource(7)).Read(data)
	off := int64(4096*2 - 17)
	if _, err := d.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk data mismatch")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	d := testDisk(1 << 20)
	if _, err := d.WriteAt(make([]byte, 10), 1<<20-5); err == nil {
		t.Error("write past capacity not rejected")
	}
	if _, err := d.ReadAt(make([]byte, 10), -1); err == nil {
		t.Error("negative offset not rejected")
	}
}

func TestSequentialAccessAvoidsSeek(t *testing.T) {
	d := testDisk(1 << 20)
	buf := make([]byte, 4096)
	d.WriteAt(buf, 0)    // first access: one seek
	d.WriteAt(buf, 4096) // contiguous: no seek
	d.WriteAt(buf, 8192) // contiguous: no seek
	if s := d.Stats().Seeks; s != 1 {
		t.Errorf("sequential writes: %d seeks, want 1", s)
	}
	d.WriteAt(buf, 0) // jump back: seek
	if s := d.Stats().Seeks; s != 2 {
		t.Errorf("after jump: %d seeks, want 2", s)
	}
}

func TestTimeModelRatios(t *testing.T) {
	// Streaming 64 MiB should be vastly cheaper per byte than random
	// 4 KiB accesses, and the modeled random-read rate should land
	// near Table II's ~70 IOPS.
	d := testDisk(256 << 20)
	buf := make([]byte, 1<<20)
	var seqTime time.Duration
	for i := int64(0); i < 64; i++ {
		dt, err := d.WriteAt(buf, i*int64(len(buf)))
		if err != nil {
			t.Fatal(err)
		}
		seqTime += dt
	}
	seqBps := float64(64<<20) / seqTime.Seconds()
	if seqBps < 100e6 || seqBps > 160e6 {
		t.Errorf("sequential write bandwidth %.1f MB/s outside [100,160]", seqBps/1e6)
	}

	small := make([]byte, 4096)
	var randTime time.Duration
	rng := rand.New(rand.NewSource(3))
	const n = 200
	for i := 0; i < n; i++ {
		off := int64(rng.Intn(50000)) * 4096
		dt, err := d.ReadAt(small, off)
		if err != nil {
			t.Fatal(err)
		}
		randTime += dt
	}
	iops := float64(n) / randTime.Seconds()
	if iops < 50 || iops > 90 {
		t.Errorf("random 4K read rate %.1f IOPS outside [50,90] (Table II ~70)", iops)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := testDisk(1 << 20)
	d.WriteAt(make([]byte, 100), 0)
	d.ReadAt(make([]byte, 40), 0)
	s := d.Stats()
	if s.WriteOps != 1 || s.ReadOps != 1 || s.BytesWritten != 100 || s.BytesRead != 40 {
		t.Errorf("unexpected stats: %+v", s)
	}
	if s.BusyTime <= 0 {
		t.Error("busy time not accumulated")
	}
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Errorf("ResetStats left %+v", s)
	}
}

func TestTraceRecordsAccesses(t *testing.T) {
	d := testDisk(1 << 20)
	d.EnableTrace()
	d.SetTag(7)
	d.WriteAt(make([]byte, 10), 512)
	d.SetTag(8)
	d.ReadAt(make([]byte, 5), 512)
	tr := d.DisableTrace()
	if len(tr) != 2 {
		t.Fatalf("trace length %d, want 2", len(tr))
	}
	if !tr[0].Write || tr[0].Offset != 512 || tr[0].Length != 10 || tr[0].Tag != 7 {
		t.Errorf("bad write entry: %+v", tr[0])
	}
	if tr[1].Write || tr[1].Tag != 8 {
		t.Errorf("bad read entry: %+v", tr[1])
	}
	// After DisableTrace no more entries accumulate.
	d.WriteAt(make([]byte, 1), 0)
	if len(d.Trace()) != 0 {
		t.Error("tracing continued after DisableTrace")
	}
}

func TestSparseFootprint(t *testing.T) {
	cfg := DefaultConfig(1 << 30)
	cfg.ChunkSize = 1 << 16
	d := New(cfg)
	d.WriteAt(make([]byte, 100), 0)
	d.WriteAt(make([]byte, 100), 1<<29)
	if fp := d.MemoryFootprint(); fp > 4*(1<<16) {
		t.Errorf("footprint %d for two tiny writes on a 1 GiB disk", fp)
	}
}

func TestRandomWritesReadBack(t *testing.T) {
	// Property: a sequence of random (possibly overlapping) writes
	// reads back identically to the same writes applied to a plain
	// byte slice.
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		const capacity = 1 << 17
		d := testDisk(capacity)
		ref := make([]byte, capacity)
		for _, op := range ops {
			if len(op.Data) == 0 {
				continue
			}
			off := int64(op.Off)
			if off+int64(len(op.Data)) > capacity {
				continue
			}
			if _, err := d.WriteAt(op.Data, off); err != nil {
				return false
			}
			copy(ref[off:], op.Data)
		}
		got := make([]byte, capacity)
		if _, err := d.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
