// Package platter models a raw rotating disk surface: a flat byte
// address space with a calibrated service-time model. Every read and
// write stores or returns real bytes (the backing store is a sparse
// chunk map) and advances a simulated clock by seek + rotational +
// transfer time, so experiments report deterministic device time
// instead of wall-clock noise.
//
// The model is deliberately simple — an access that does not start
// where the previous access ended pays an average seek plus half a
// rotation; transfer time is linear in the byte count — but it is
// calibrated against the paper's Table II device measurements (see
// DefaultConfig) and reproduces the sequential-vs-random cost ratios
// that drive every result in the paper.
package platter

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Config describes the geometry and timing of a disk.
type Config struct {
	// Capacity is the size of the addressable space in bytes.
	Capacity int64
	// ChunkSize is the allocation unit of the sparse backing store.
	ChunkSize int

	// SeqReadBps and SeqWriteBps are the streaming bandwidths in
	// bytes per second.
	SeqReadBps  float64
	SeqWriteBps float64
	// SeekTime is the average head repositioning time, charged for a
	// discontiguous access one quarter of the surface away; actual
	// seeks scale with the square root of the distance (the classic
	// a + b·sqrt(d) head model), capped near 2x for full strokes.
	SeekTime time.Duration
	// SettleTime is the minimum repositioning cost of a
	// near-distance seek (track-to-track).
	SettleTime time.Duration
	// RotationalLatency is the average rotational delay (half a
	// revolution) charged together with a seek.
	RotationalLatency time.Duration
}

// DefaultConfig returns timing calibrated to the paper's Table II:
// ~165 MB/s sequential read, ~148 MB/s sequential write, and ~70
// random 4 KiB IOPS (1 / (8.3ms + 5.55ms + transfer) ≈ 70/s), for a
// drive of the given capacity.
func DefaultConfig(capacity int64) Config {
	return Config{
		Capacity:          capacity,
		ChunkSize:         1 << 20,
		SeqReadBps:        165e6,
		SeqWriteBps:       148e6,
		SeekTime:          8300 * time.Microsecond,
		SettleTime:        500 * time.Microsecond,
		RotationalLatency: 5550 * time.Microsecond,
	}
}

// Stats aggregates the device-level counters of a Disk.
type Stats struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
	Seeks        int64
	// BusyTime is the accumulated simulated service time of all
	// operations; user-visible throughput is bytes / BusyTime.
	BusyTime time.Duration
}

// TraceEntry records one device access for layout experiments
// (Figures 2, 11 and 13 of the paper plot these).
type TraceEntry struct {
	Write  bool  `json:"write,omitempty"`
	Offset int64 `json:"offset"`
	Length int   `json:"length"`
	// Tag is an opaque label set via Disk.SetTag, used to attribute
	// accesses to a compaction or flush.
	Tag int64 `json:"tag,omitempty"`
}

// AccessInfo describes one device access as seen by a Sink: what was
// transferred and what it cost under the service-time model.
type AccessInfo struct {
	Write  bool
	Offset int64
	Length int
	// SeekDistance is the absolute head travel in bytes from the end
	// of the previous access; 0 for a sequential continuation (Seek
	// false). The first access after power-on pays an average seek and
	// reports distance 0 with Seek true.
	SeekDistance int64
	Seek         bool
	// ServiceNS is the modeled service time of this access in
	// nanoseconds (seek + rotational + transfer).
	ServiceNS int64
}

// Sink observes every device access. It is invoked synchronously
// under the disk lock, so implementations must be fast and must not
// call back into the Disk.
type Sink interface {
	ObserveAccess(AccessInfo)
}

// Disk is a simulated raw disk. All methods are safe for concurrent
// use.
type Disk struct {
	cfg Config

	mu      sync.Mutex
	chunks  map[int64][]byte
	lastEnd int64 // offset immediately after the previous access
	stats   Stats
	tracing bool
	trace   []TraceEntry
	tag     int64
	sink    Sink
}

// New creates a disk with the given configuration.
func New(cfg Config) *Disk {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1 << 20
	}
	if cfg.Capacity <= 0 {
		panic("platter: non-positive capacity")
	}
	return &Disk{
		cfg:     cfg,
		chunks:  make(map[int64][]byte),
		lastEnd: -1,
	}
}

// Capacity returns the addressable size in bytes.
func (d *Disk) Capacity() int64 { return d.cfg.Capacity }

// Config returns the disk configuration.
func (d *Disk) Config() Config { return d.cfg }

func (d *Disk) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.Capacity {
		return fmt.Errorf("platter: access [%d, %d) outside capacity %d", off, off+int64(n), d.cfg.Capacity)
	}
	return nil
}

// serviceTime computes and accounts the cost of one access under the
// lock. It updates lastEnd and the seek counter, and reports the
// access to the attribution sink, if one is installed.
func (d *Disk) serviceTime(off int64, n int, write bool) time.Duration {
	var t time.Duration
	var dist int64
	seek := off != d.lastEnd
	if seek {
		if d.lastEnd >= 0 {
			dist = off - d.lastEnd
			if dist < 0 {
				dist = -dist
			}
		}
		t += d.seekCost(off) + d.cfg.RotationalLatency
		d.stats.Seeks++
	}
	bps := d.cfg.SeqReadBps
	if write {
		bps = d.cfg.SeqWriteBps
	}
	if bps > 0 {
		t += time.Duration(float64(n) / bps * float64(time.Second))
	}
	d.lastEnd = off + int64(n)
	d.stats.BusyTime += t
	if d.sink != nil {
		d.sink.ObserveAccess(AccessInfo{
			Write: write, Offset: off, Length: n,
			SeekDistance: dist, Seek: seek, ServiceNS: int64(t),
		})
	}
	return t
}

// seekCost models head travel as settle + (avg-settle)·sqrt(d/(C/4)):
// SeekTime at a quarter-surface stroke, SettleTime for neighbouring
// tracks, ~2x SeekTime for a full stroke. Caller holds d.mu.
func (d *Disk) seekCost(off int64) time.Duration {
	if d.lastEnd < 0 {
		return d.cfg.SeekTime
	}
	dist := off - d.lastEnd
	if dist < 0 {
		dist = -dist
	}
	ref := float64(d.cfg.Capacity) / 4
	frac := math.Sqrt(float64(dist) / ref)
	if frac > 2 {
		frac = 2
	}
	return d.cfg.SettleTime + time.Duration(float64(d.cfg.SeekTime-d.cfg.SettleTime)*frac)
}

// WriteAt stores p at off, advancing the simulated clock. It returns
// the simulated service time of the operation.
func (d *Disk) WriteAt(p []byte, off int64) (time.Duration, error) {
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.serviceTime(off, len(p), true)
	d.stats.WriteOps++
	d.stats.BytesWritten += int64(len(p))
	if d.tracing {
		d.trace = append(d.trace, TraceEntry{Write: true, Offset: off, Length: len(p), Tag: d.tag})
	}
	d.copyIn(p, off)
	return t, nil
}

// ReadAt fills p from off, advancing the simulated clock. Unwritten
// space reads as zeros. It returns the simulated service time.
func (d *Disk) ReadAt(p []byte, off int64) (time.Duration, error) {
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.serviceTime(off, len(p), false)
	d.stats.ReadOps++
	d.stats.BytesRead += int64(len(p))
	if d.tracing {
		d.trace = append(d.trace, TraceEntry{Offset: off, Length: len(p), Tag: d.tag})
	}
	d.copyOut(p, off)
	return t, nil
}

func (d *Disk) copyIn(p []byte, off int64) {
	cs := int64(d.cfg.ChunkSize)
	for len(p) > 0 {
		ci := off / cs
		co := int(off % cs)
		c := d.chunks[ci]
		if c == nil {
			c = make([]byte, cs)
			d.chunks[ci] = c
		}
		n := copy(c[co:], p)
		p = p[n:]
		off += int64(n)
	}
}

func (d *Disk) copyOut(p []byte, off int64) {
	cs := int64(d.cfg.ChunkSize)
	for len(p) > 0 {
		ci := off / cs
		co := int(off % cs)
		var n int
		if c := d.chunks[ci]; c != nil {
			n = copy(p, c[co:])
		} else {
			n = len(p)
			if max := int(cs) - co; n > max {
				n = max
			}
			for i := 0; i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += int64(n)
	}
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the data and head position are
// kept). Useful to measure a phase of an experiment.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// EnableTrace starts (or clears and restarts) access tracing.
func (d *Disk) EnableTrace() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracing = true
	d.trace = nil
}

// DisableTrace stops tracing and returns the accumulated entries.
func (d *Disk) DisableTrace() []TraceEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracing = false
	t := d.trace
	d.trace = nil
	return t
}

// Trace returns a copy of the trace accumulated so far.
func (d *Disk) Trace() []TraceEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]TraceEntry(nil), d.trace...)
}

// SetTag sets the label attached to subsequent trace entries.
func (d *Disk) SetTag(tag int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tag = tag
}

// SetSink installs (or, with nil, removes) the access attribution
// sink. The sink is called under the disk lock for every subsequent
// access; see the Sink contract.
func (d *Disk) SetSink(s Sink) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sink = s
}

// MemoryFootprint returns the bytes held by the sparse backing store,
// for test assertions about sparseness.
func (d *Disk) MemoryFootprint() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.chunks)) * int64(d.cfg.ChunkSize)
}
