// Package crashtest is the crash-replay harness: it runs a
// deterministic mixed workload against an engine whose device is
// wrapped in a faultfs injector, cuts power at chosen write
// boundaries, reopens the store from the surviving bytes, and checks
// the recovery contract:
//
//   - no acknowledged write is lost;
//   - the unacknowledged in-flight batch applies all-or-nothing (it
//     may survive if its log record landed whole — never partially,
//     never out of order);
//   - the recovered store passes VerifyIntegrity (manifest, sets,
//     table checksums, extent accounting: nothing leaked or
//     double-allocated);
//   - the store accepts new writes after recovery.
//
// The harness is deliberately re-execution based: each cut point
// replays the same seeded workload on a fresh device and tears it at
// a different write, so a failure reproduces from (seed, cut) alone.
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sealdb/internal/faultfs"
	"sealdb/internal/lsm"
	"sealdb/internal/smr"
)

// OpKind enumerates workload operations.
type OpKind int

// Workload operation kinds.
const (
	OpPut OpKind = iota
	OpDelete
	OpBatch // multi-key atomic batch (exercises batch atomicity)
	OpFlush
	OpCompact
)

// Op is one step of the scripted workload.
type Op struct {
	Kind OpKind
	// Keys/Vals hold one entry for Put/Delete (Vals unused for
	// Delete) and several for Batch.
	Keys [][]byte
	Vals [][]byte
}

// Workload generates a deterministic op script: puts and deletes
// over a bounded keyspace with periodic explicit flushes, two manual
// compactions, and occasional multi-key batches. The same (seed, n,
// keyspace) always yields the same script.
func Workload(seed int64, n, keyspace int) []Op {
	rng := rand.New(rand.NewSource(seed))
	key := func() []byte {
		return []byte(fmt.Sprintf("key%06d", rng.Intn(keyspace)))
	}
	val := func() []byte {
		v := make([]byte, 60+rng.Intn(120))
		for i := range v {
			v[i] = 'a' + byte(rng.Intn(26))
		}
		return v
	}
	var ops []Op
	for i := 0; i < n; i++ {
		switch {
		case i > 0 && i%(n/5) == 0:
			ops = append(ops, Op{Kind: OpFlush})
		case i == n/3 || i == (4*n)/5:
			ops = append(ops, Op{Kind: OpCompact})
		case rng.Intn(10) == 0:
			ops = append(ops, Op{Kind: OpDelete, Keys: [][]byte{key()}})
		case rng.Intn(12) == 0:
			b := Op{Kind: OpBatch}
			for j := 0; j < 3; j++ {
				b.Keys = append(b.Keys, key())
				b.Vals = append(b.Vals, val())
			}
			ops = append(ops, b)
		default:
			ops = append(ops, Op{Kind: OpPut, Keys: [][]byte{key()}, Vals: [][]byte{val()}})
		}
	}
	return ops
}

// Config parameterizes a harness run.
type Config struct {
	// DB is the engine configuration; the harness installs its own
	// WrapDrive hook over whatever mode is set.
	DB lsm.Config
	// Seed drives both the workload script and the tear randomness.
	Seed int64
	// Ops is the workload script (see Workload).
	Ops []Op
	// Stride cuts power at every Stride-th write boundary (1 = every
	// boundary; 0 defaults to 1).
	Stride int64
}

// Result summarizes a harness run.
type Result struct {
	// Writes is the device write count of the failure-free pass.
	Writes int64
	// Cuts is the number of power cuts injected (= reopens checked).
	Cuts int
	// CreateCuts counts cuts that landed inside OpenDevice itself
	// (crash during first-time creation).
	CreateCuts int
	// Resurrected counts cuts whose unacknowledged in-flight batch
	// survived whole — legal, and evidence the all-or-nothing check
	// is exercising both sides.
	Resurrected int
	// Flushes and Compactions confirm the workload coverage.
	Flushes, Compactions int64
}

func (r Result) String() string {
	return fmt.Sprintf("writes=%d cuts=%d create_cuts=%d resurrected=%d flushes=%d compactions=%d",
		r.Writes, r.Cuts, r.CreateCuts, r.Resurrected, r.Flushes, r.Compactions)
}

// model applies an op to the reference state.
func applyModel(m map[string]string, op *Op) {
	switch op.Kind {
	case OpPut, OpBatch:
		for i, k := range op.Keys {
			m[string(k)] = string(op.Vals[i])
		}
	case OpDelete:
		for _, k := range op.Keys {
			delete(m, string(k))
		}
	}
}

func applyOp(db *lsm.DB, op *Op) error {
	switch op.Kind {
	case OpPut:
		return db.Put(op.Keys[0], op.Vals[0])
	case OpDelete:
		return db.Delete(op.Keys[0])
	case OpBatch:
		b := lsm.NewBatch()
		for i, k := range op.Keys {
			b.Put(k, op.Vals[i])
		}
		return db.Apply(b)
	case OpFlush:
		return db.FlushMemtable()
	case OpCompact:
		return db.CompactRange(nil, nil)
	}
	return fmt.Errorf("crashtest: unknown op kind %d", op.Kind)
}

// Run executes the crash-replay sweep and returns its summary. It
// fails the test on any broken invariant, identifying the cut point
// so the failure replays deterministically.
func Run(t testing.TB, cfg Config) Result {
	t.Helper()
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	var res Result

	// Failure-free pass: count device writes and verify the script
	// itself runs clean, so sweep failures can only be crash bugs.
	fd, _, db, err := openInjected(cfg, 0)
	if err != nil {
		t.Fatalf("crashtest: clean open: %v", err)
	}
	final := map[string]string{}
	for i := range cfg.Ops {
		if err := applyOp(db, &cfg.Ops[i]); err != nil {
			t.Fatalf("crashtest: clean run op %d: %v", i, err)
		}
		applyModel(final, &cfg.Ops[i])
	}
	stats := db.Stats()
	res.Flushes, res.Compactions = stats.FlushCount, stats.CompactionCount
	if res.Flushes == 0 || res.Compactions == 0 {
		t.Fatalf("crashtest: workload too small: %d flushes, %d compactions (need >= 1 of each)", res.Flushes, res.Compactions)
	}
	db.Close()
	res.Writes = fd.WriteCount()

	universe := map[string]bool{}
	for _, op := range cfg.Ops {
		for _, k := range op.Keys {
			universe[string(k)] = true
		}
	}

	// Sanity-check the reference model against a clean reopen before
	// trusting it to judge crash recoveries.
	db, err = lsm.OpenDevice(cfg.DB, db.Device())
	if err != nil {
		t.Fatalf("crashtest: clean reopen: %v", err)
	}
	for k := range universe {
		v, err := db.Get([]byte(k))
		want, ok := final[k]
		switch {
		case !ok && !errors.Is(err, lsm.ErrNotFound):
			t.Fatalf("crashtest: clean reopen Get(%q) = %v, want ErrNotFound", k, err)
		case ok && (err != nil || string(v) != want):
			t.Fatalf("crashtest: clean reopen Get(%q) = (%q, %v), want %q", k, v, err, want)
		}
	}
	db.Close()

	for cut := int64(1); cut <= res.Writes; cut += cfg.Stride {
		res.Cuts++
		resurrected, createCut := runCut(t, cfg, cut, universe)
		if resurrected {
			res.Resurrected++
		}
		if createCut {
			res.CreateCuts++
		}
	}
	return res
}

// openInjected builds a device with a faultfs injector spliced into
// the drive stack and opens a DB on it. The device is returned even
// when the open itself dies mid-write, so the caller can power the
// injector back on and recover from the surviving platter bytes.
func openInjected(cfg Config, cut int64) (*faultfs.Drive, *lsm.Device, *lsm.DB, error) {
	var fd *faultfs.Drive
	dbcfg := cfg.DB
	dbcfg.WrapDrive = func(inner smr.Drive) smr.Drive {
		fd = faultfs.New(inner, cfg.Seed^cut)
		if cut > 0 {
			fd.CutAtWrite(cut)
		}
		return fd
	}
	dev := lsm.NewDevice(dbcfg)
	db, err := lsm.OpenDevice(dbcfg, dev)
	return fd, dev, db, err
}

// runCut replays the workload on a fresh device, cuts power at the
// given write, reopens, and checks every invariant.
func runCut(t testing.TB, cfg Config, cut int64, universe map[string]bool) (resurrected, createCut bool) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("crashtest: cut %d (seed %d): %s", cut, cfg.Seed, fmt.Sprintf(format, args...))
	}

	fd, dev, db, err := openInjected(cfg, cut)
	acked := map[string]string{}
	var inFlight *Op
	if err != nil {
		// The cut landed inside creation. Nothing was acknowledged.
		if !errors.Is(err, faultfs.ErrPowerCut) {
			fail("create failed with a non-powercut error: %v", err)
		}
		createCut = true
	} else {
		for i := range cfg.Ops {
			op := &cfg.Ops[i]
			if err := applyOp(db, op); err != nil {
				if !errors.Is(err, faultfs.ErrPowerCut) {
					fail("op %d failed with a non-powercut error: %v", i, err)
				}
				if op.Kind == OpPut || op.Kind == OpDelete || op.Kind == OpBatch {
					inFlight = op
				}
				break
			}
			applyModel(acked, op)
		}
		// The doomed instance is dropped without Close: a dead host
		// cannot issue device commands, and everything durable must
		// already be on the platter.
	}

	// Power back on and reopen the same device: the injector stays in
	// the drive stack (passive now), so only the bytes that reached
	// the platter before the cut are visible to recovery.
	fd.PowerOn()
	db2, err := lsm.OpenDevice(cfg.DB, dev)
	if err != nil {
		fail("reopen after crash failed: %v", err)
	}
	defer db2.Close()

	if err := db2.VerifyIntegrity(); err != nil {
		fail("integrity after reopen: %v", err)
	}

	// Acknowledged state must be fully present; any deviation must be
	// explained by the whole in-flight batch having applied.
	read := func(k string) (string, bool) {
		v, err := db2.Get([]byte(k))
		if errors.Is(err, lsm.ErrNotFound) {
			return "", false
		}
		if err != nil {
			fail("Get(%q) after reopen: %v", k, err)
		}
		return string(v), true
	}
	var mismatched []string
	for k := range universe {
		got, ok := read(k)
		want, wantOK := acked[k]
		if ok != wantOK || (ok && got != want) {
			mismatched = append(mismatched, k)
		}
	}
	if len(mismatched) > 0 {
		if inFlight == nil {
			fail("acknowledged state diverged at keys %v with no write in flight", mismatched)
		}
		after := map[string]string{}
		for k, v := range acked {
			after[k] = v
		}
		applyModel(after, inFlight)
		touched := map[string]bool{}
		for _, k := range inFlight.Keys {
			touched[string(k)] = true
		}
		for _, k := range mismatched {
			if !touched[k] {
				fail("key %q diverged but the in-flight op never touched it (acked write lost or stale data resurrected)", k)
			}
		}
		// All-or-nothing: since part of the batch is visible, all of
		// it must be.
		for k := range touched {
			got, ok := read(k)
			want, wantOK := after[k]
			if ok != wantOK || (ok && got != want) {
				fail("in-flight batch applied partially: key %q", k)
			}
		}
		resurrected = true
	}

	// The recovered store must accept and serve new writes.
	sentinel := []byte(fmt.Sprintf("crashtest-sentinel-%d", cut))
	if err := db2.Put(sentinel, sentinel); err != nil {
		fail("post-recovery write: %v", err)
	}
	if v, err := db2.Get(sentinel); err != nil || string(v) != string(sentinel) {
		fail("post-recovery read: %q, %v", v, err)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		fail("integrity after post-recovery write: %v", err)
	}
	return resurrected, createCut
}
