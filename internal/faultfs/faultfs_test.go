package faultfs

import (
	"bytes"
	"errors"
	"testing"

	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

func newFaultDrive(t *testing.T, seed int64) (*Drive, smr.Drive) {
	t.Helper()
	disk := platter.New(platter.DefaultConfig(1 << 20))
	raw := smr.NewRaw(disk, 4096)
	return New(raw, seed), raw
}

func TestPowerCutTearsInFlightWrite(t *testing.T) {
	d, raw := newFaultDrive(t, 42)
	if _, err := d.WriteAt([]byte("first acknowledged write"), 0); err != nil {
		t.Fatalf("setup write: %v", err)
	}

	d.CutAtWrite(1)
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	_, err := d.WriteAt(payload, 64*1024)
	if !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut write returned %v, want ErrPowerCut", err)
	}
	if !d.Down() {
		t.Fatal("device still up after power cut")
	}
	if _, err := d.WriteAt([]byte("x"), 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut write returned %v", err)
	}
	if _, err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut read returned %v", err)
	}

	// The torn write must be a strict prefix on the platter: bytes
	// [0, keep) equal the payload, bytes [keep, len) untouched (zero).
	got := make([]byte, len(payload))
	if _, err := raw.Disk().ReadAt(got, 64*1024); err != nil {
		t.Fatalf("platter read: %v", err)
	}
	keep := 0
	for keep < len(got) && got[keep] == 0xAB {
		keep++
	}
	for i := keep; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("non-prefix tear: byte %d = %#x with prefix %d", i, got[i], keep)
		}
	}
	st := d.FaultStats()
	if st["power_cuts"] != 1 {
		t.Errorf("power_cuts = %d", st["power_cuts"])
	}
	if st["torn_bytes_dropped"] != int64(len(payload)-keep) {
		t.Errorf("torn_bytes_dropped = %d, want %d", st["torn_bytes_dropped"], len(payload)-keep)
	}

	d.PowerOn()
	if _, err := d.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatalf("read after PowerOn: %v", err)
	}
	// The torn region was never acked, so its validity was never
	// recorded: a rewrite of the same span must not collide.
	if _, err := d.WriteAt(payload, 64*1024); err != nil {
		t.Fatalf("rewrite of torn span: %v", err)
	}
}

func TestCutScheduleIsDeterministic(t *testing.T) {
	run := func(seed int64) (int64, []byte) {
		d, raw := newFaultDrive(t, seed)
		d.CutAtWrite(3)
		for i := 0; ; i++ {
			_, err := d.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, 512), int64(i)*8192)
			if err != nil {
				break
			}
		}
		img := make([]byte, 3*8192)
		raw.Disk().ReadAt(img, 0)
		return d.FaultStats()["torn_bytes_dropped"], img
	}
	torn1, img1 := run(7)
	torn2, img2 := run(7)
	if torn1 != torn2 || !bytes.Equal(img1, img2) {
		t.Fatal("same seed produced different torn images")
	}
	torn3, _ := run(8)
	if torn1 == torn3 {
		t.Log("different seeds tore identically (possible but unlikely); not failing")
	}
}

func TestInjectedErrorsByRangeCountAndKind(t *testing.T) {
	d, _ := newFaultDrive(t, 1)
	d.Inject(Rule{Op: OpWrite, Off: 4096, Len: 4096, Count: 2, Temporary: true})

	if _, err := d.WriteAt([]byte("outside"), 0); err != nil {
		t.Fatalf("write outside fault range: %v", err)
	}
	for i := 0; i < 2; i++ {
		_, err := d.WriteAt([]byte("inside"), 5000)
		if err == nil {
			t.Fatalf("write %d inside fault range succeeded", i)
		}
		if !smr.IsTransient(err) {
			t.Fatalf("transient rule produced non-transient error: %v", err)
		}
	}
	// Count exhausted: next write in range succeeds... but offset
	// 5000 overlaps the earlier failed-write validity? No: failed
	// writes never reached the raw drive, so nothing was marked.
	if _, err := d.WriteAt([]byte("inside"), 5000); err != nil {
		t.Fatalf("write after count exhausted: %v", err)
	}

	d.Inject(Rule{Op: OpRead, Temporary: false, Count: 1})
	_, err := d.ReadAt(make([]byte, 8), 0)
	if err == nil {
		t.Fatal("injected read error did not fire")
	}
	if smr.IsTransient(err) {
		t.Fatalf("permanent rule produced transient error: %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Op != string(OpRead) {
		t.Fatalf("error lost its injection identity: %v", err)
	}
}

func TestRetryLayerHealsInjectedTransients(t *testing.T) {
	d, _ := newFaultDrive(t, 1)
	d.Inject(Rule{Op: OpWrite, Count: 2, Temporary: true})
	r := smr.NewRetry(d, 3, 0)

	if _, err := r.WriteAt([]byte("persist me"), 0); err != nil {
		t.Fatalf("retry layer did not heal transient faults: %v", err)
	}
	if st := r.Stats(); st.Recovered != 1 {
		t.Errorf("retry stats = %+v", st)
	}
}

func TestFlipBitCorruptsPlatter(t *testing.T) {
	d, raw := newFaultDrive(t, 1)
	if _, err := d.WriteAt([]byte{0x00}, 128); err != nil {
		t.Fatal(err)
	}
	if err := d.FlipBit(128, 3); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	raw.Disk().ReadAt(b, 128)
	if b[0] != 1<<3 {
		t.Fatalf("bit flip produced %#x", b[0])
	}
	if d.FaultStats()["bit_flips"] != 1 {
		t.Error("bit_flips counter not bumped")
	}
}

func TestBaseReachesThroughInjector(t *testing.T) {
	d, raw := newFaultDrive(t, 1)
	r := smr.NewRetry(d, 2, 0)
	if smr.Base(r) != raw {
		t.Fatal("smr.Base did not unwrap retry+faultfs middleware")
	}
}
