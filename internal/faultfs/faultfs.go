// Package faultfs provides a deterministic, seeded fault-injection
// layer for smr.Drive stacks. It models the failure vocabulary of a
// real shingled drive losing power or developing media defects:
//
//   - Power cuts at the N-th write: the in-flight write is torn — a
//     random prefix reaches the platter, the rest is dropped — and
//     every later operation fails with ErrPowerCut until PowerOn.
//   - Injected read/write errors, transient or permanent, scoped by
//     offset range, armed after a write count, limited by a count,
//     or fired probabilistically from the seeded RNG.
//   - Bit flips in acknowledged data (FlipBit), modeling corruption
//     of bytes the device acked but never made durable.
//
// All randomness comes from a caller-provided seed, so a failing
// fault schedule replays exactly.
package faultfs

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

// ErrPowerCut is returned by every operation between a simulated
// power cut and PowerOn.
var ErrPowerCut = &Error{Op: "power", Temporary: false, msg: "faultfs: power is cut"}

// Op names the operation class a rule applies to.
type Op string

// Operation classes for Rule.Op.
const (
	OpWrite Op = "write"
	OpRead  Op = "read"
)

// Error is an injected device error. It implements
// smr.TransientError so the retry middleware can distinguish
// transient hiccups from permanent media failures.
type Error struct {
	Op        string
	Off       int64
	Temporary bool
	msg       string
}

func (e *Error) Error() string {
	if e.msg != "" {
		return e.msg
	}
	kind := "permanent"
	if e.Temporary {
		kind = "transient"
	}
	return fmt.Sprintf("faultfs: injected %s %s error at offset %d", kind, e.Op, e.Off)
}

// Transient implements smr.TransientError.
func (e *Error) Transient() bool { return e.Temporary }

// Rule describes one injected fault. A rule fires when the
// operation class matches, the op's offset range intersects
// [Off, Off+Len) (Len == 0 means any offset), at least After ops of
// that class have already completed, and — if Probability is set —
// the seeded RNG rolls under it. Count limits how many times the
// rule fires (0 = unlimited).
type Rule struct {
	Op          Op
	Off         int64
	Len         int64
	After       int64
	Count       int64
	Probability float64
	Temporary   bool

	fired int64
}

func (r *Rule) matches(op Op, off, length, done int64, rng *rand.Rand) bool {
	if r.Op != op {
		return false
	}
	if done < r.After {
		return false
	}
	if r.Count > 0 && r.fired >= r.Count {
		return false
	}
	if r.Len > 0 && (off+length <= r.Off || off >= r.Off+r.Len) {
		return false
	}
	if r.Probability > 0 && rng.Float64() >= r.Probability {
		return false
	}
	return true
}

// Drive wraps an smr.Drive with deterministic fault injection. It is
// safe for concurrent use; injected outcomes are serialized under an
// internal mutex so a given (seed, schedule) replays identically on
// a single-threaded workload.
type Drive struct {
	inner smr.Drive

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*Rule
	writes int64 // completed or attempted write ops
	reads  int64
	cutAt  int64 // power cut armed at this write count (0 = disarmed)
	down   bool
	stats  map[string]int64
}

// New wraps inner with a fault injector seeded with seed.
func New(inner smr.Drive, seed int64) *Drive {
	return &Drive{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		stats: make(map[string]int64),
	}
}

// Inject adds a fault rule. Rules are evaluated in insertion order;
// the first match fires.
func (d *Drive) Inject(r Rule) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rule := r
	d.rules = append(d.rules, &rule)
}

// ClearRules removes all fault rules (armed power cuts stay armed).
func (d *Drive) ClearRules() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rules = nil
}

// CutAtWrite arms a power cut at the n-th write from now (n >= 1):
// that write is torn — a seeded-random prefix reaches the platter —
// and the device then fails everything with ErrPowerCut until
// PowerOn. n <= 0 disarms.
func (d *Drive) CutAtWrite(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= 0 {
		d.cutAt = 0
		return
	}
	d.cutAt = d.writes + n
}

// PowerOn restores the device after a cut. Volatile host state is
// the caller's problem; the platter keeps whatever was written.
func (d *Drive) PowerOn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = false
	d.cutAt = 0
}

// Down reports whether the device is currently powered off.
func (d *Drive) Down() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down
}

// WriteCount returns the number of write operations attempted so
// far (including the torn one). Crash-replay harnesses use it to
// enumerate cut points.
func (d *Drive) WriteCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// FaultStats returns a snapshot of injection counters:
// power_cuts, torn_bytes_dropped, injected_write_errors,
// injected_read_errors, blocked_ops, bit_flips.
func (d *Drive) FaultStats() map[string]int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int64, len(d.stats))
	for k, v := range d.stats {
		out[k] = v
	}
	return out
}

// FlipBit flips one bit of acknowledged data directly on the
// platter, bypassing the drive's validity tracking — modeling
// corruption of a sector the device acked but never made durable.
func (d *Drive) FlipBit(off int64, bit uint) error {
	var b [1]byte
	disk := d.inner.Disk()
	if _, err := disk.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := disk.WriteAt(b[:], off); err != nil {
		return err
	}
	d.mu.Lock()
	d.stats["bit_flips"]++
	d.mu.Unlock()
	return nil
}

// WriteAt implements smr.Drive with fault injection.
func (d *Drive) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	if d.down {
		d.stats["blocked_ops"]++
		d.mu.Unlock()
		return 0, ErrPowerCut
	}
	d.writes++
	if d.cutAt > 0 && d.writes >= d.cutAt {
		// Tear the in-flight write: a random prefix reaches the
		// platter (bypassing the drive's validity tracking — the
		// drive never acked this write), the rest is lost.
		keep := d.rng.Intn(len(p) + 1)
		d.down = true
		d.cutAt = 0
		d.stats["power_cuts"]++
		d.stats["torn_bytes_dropped"] += int64(len(p) - keep)
		disk := d.inner.Disk()
		d.mu.Unlock()
		if keep > 0 {
			disk.WriteAt(p[:keep], off)
		}
		return 0, ErrPowerCut
	}
	for _, r := range d.rules {
		if r.matches(OpWrite, off, int64(len(p)), d.writes-1, d.rng) {
			r.fired++
			d.stats["injected_write_errors"]++
			d.mu.Unlock()
			return 0, &Error{Op: string(OpWrite), Off: off, Temporary: r.Temporary}
		}
	}
	d.mu.Unlock()
	return d.inner.WriteAt(p, off)
}

// ReadAt implements smr.Drive with fault injection.
func (d *Drive) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	if d.down {
		d.stats["blocked_ops"]++
		d.mu.Unlock()
		return 0, ErrPowerCut
	}
	d.reads++
	for _, r := range d.rules {
		if r.matches(OpRead, off, int64(len(p)), d.reads-1, d.rng) {
			r.fired++
			d.stats["injected_read_errors"]++
			d.mu.Unlock()
			return 0, &Error{Op: string(OpRead), Off: off, Temporary: r.Temporary}
		}
	}
	d.mu.Unlock()
	return d.inner.ReadAt(p, off)
}

// Free implements smr.Drive.
func (d *Drive) Free(off, length int64) error {
	d.mu.Lock()
	if d.down {
		d.stats["blocked_ops"]++
		d.mu.Unlock()
		return ErrPowerCut
	}
	d.mu.Unlock()
	return d.inner.Free(off, length)
}

// Guard implements smr.Drive.
func (d *Drive) Guard() int64 { return d.inner.Guard() }

// Capacity implements smr.Drive.
func (d *Drive) Capacity() int64 { return d.inner.Capacity() }

// HostBytesWritten implements smr.Drive.
func (d *Drive) HostBytesWritten() int64 { return d.inner.HostBytesWritten() }

// Disk implements smr.Drive.
func (d *Drive) Disk() *platter.Disk { return d.inner.Disk() }

// Unwrap implements smr.Unwrapper.
func (d *Drive) Unwrap() smr.Drive { return d.inner }
