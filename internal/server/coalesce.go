package server

import (
	"sync"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/wire"
)

// commitReq is one write request queued for group commit.
type commitReq struct {
	entries []wire.BatchEntry
	// start anchors the request's write-latency observation at its
	// enqueue time, so the metric includes queueing and coalescing.
	start time.Time
	// traced marks a request from a connection that negotiated
	// wire.FeatureTrace; reqID is its wire request id. The group
	// commit is attributed to the first traced request it absorbs.
	traced bool
	reqID  uint64
	// done is invoked exactly once with the group's commit outcome;
	// it must not block (it enqueues the ack and releases the
	// connection's pipeline slot).
	done func(error)
}

// batchPool recycles lsm.Batch values across group commits, relying
// on Batch.Reset keeping the backing buffer's capacity. Batches that
// ballooned past maxPooledBatchBytes are dropped rather than pinned.
var batchPool = sync.Pool{New: func() any { return lsm.NewBatch() }}

// maxPooledBatchBytes bounds the capacity a pooled batch may retain.
const maxPooledBatchBytes = 4 << 20

// getBatch takes an empty batch from the pool.
func getBatch() *lsm.Batch { return batchPool.Get().(*lsm.Batch) }

// putBatch resets and returns a batch to the pool.
func putBatch(b *lsm.Batch) {
	if b.Cap() > maxPooledBatchBytes {
		return
	}
	b.Reset()
	batchPool.Put(b)
}

// committer is the single group-commit goroutine: it takes the first
// queued write request, greedily absorbs whatever else is already
// queued — across all connections — into one shared batch, applies
// the batch once, and acknowledges every absorbed request with the
// group's outcome. Coalescing is bounded by CoalesceMaxRequests and
// CoalesceMaxBytes so one group cannot grow without limit under a
// firehose.
func (s *Server) committer() {
	defer s.commitWG.Done()
	for {
		select {
		case req := <-s.commitCh:
			s.commitGroup(req)
		case <-s.commitStop:
			// Late requests raced shutdown; commit what is queued so
			// their connections still get real answers.
			for {
				select {
				case req := <-s.commitCh:
					s.commitGroup(req)
				default:
					return
				}
			}
		}
	}
}

// commitGroup coalesces and applies one group commit.
func (s *Server) commitGroup(first *commitReq) {
	maxReqs := s.cfg.coalesceMaxRequests()
	maxBytes := s.cfg.coalesceMaxBytes()

	b := getBatch()
	reqs := make([]*commitReq, 0, 8)
	reqs = append(reqs, first)
	addToBatch(b, first)
	for len(reqs) < maxReqs && b.Size() < maxBytes {
		select {
		case req := <-s.commitCh:
			reqs = append(reqs, req)
			addToBatch(b, req)
		default:
			goto commit
		}
	}
commit:
	// Queue wait: enqueue → the moment the group starts applying.
	// Recorded per absorbed request, so the histogram shows what
	// coalescing costs individual writers in wall-clock time.
	applyStart := time.Now()
	var ctx lsm.OpContext
	for _, req := range reqs {
		s.m.coalesceWait.Observe(applyStart.Sub(req.start).Nanoseconds())
		if ctx.ReqID == 0 && req.traced {
			ctx.ReqID = req.reqID
		}
	}
	if mutationAckBeforeCommit {
		// Intentional bug for the chaos harness's mutation self-test
		// (build tag sealdb_chaos_mutation): acknowledge every request
		// as committed before the group touches the WAL. A power cut
		// during the apply then loses acked writes, which the history
		// checker must flag as a durability violation.
		for _, req := range reqs {
			req.done(nil)
		}
	}
	err := s.db.ApplyCtx(b, ctx)

	s.m.coalescedCommits.Inc()
	s.m.coalescedReqs.Observe(int64(len(reqs)))
	s.m.coalescedEntries.Observe(int64(b.Len()))
	if err != nil {
		s.m.commitErrors.Inc()
	}
	now := time.Now()
	for _, req := range reqs {
		s.m.writeLatency.Observe(now.Sub(req.start).Nanoseconds())
		if !mutationAckBeforeCommit {
			req.done(err)
		}
	}
	putBatch(b)
}

// addToBatch appends a request's mutations to the shared batch.
func addToBatch(b *lsm.Batch, req *commitReq) {
	for _, e := range req.entries {
		if e.Delete {
			b.Delete(e.Key)
		} else {
			b.Put(e.Key, e.Value)
		}
	}
}
