package server

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/sealclient"
)

// TestServerSurfacesMediaCorruption flips one bit inside a live
// SSTable data block on the emulated platter and checks the whole
// corruption contract end to end over TCP: the read returns the
// distinct CORRUPT wire status (not a wrong value, not a generic
// error), the sealdb_sstable_corrupt_blocks_total counter moves, the
// event journal records the file and offset, and keys in other blocks
// keep serving.
func TestServerSurfacesMediaCorruption(t *testing.T) {
	fd, dev, db, cfg := openInjected(t, nil)

	// Seed enough data to flush at least one table, then force the
	// flush so the keys live on media rather than in the memtable.
	const n = 64
	val := func(i int) string { return fmt.Sprintf("val%05d-%s", i, string(make([]byte, 400))) }
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(val(i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := db.FlushMemtable(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	tables := db.TableLocations()
	if len(tables) == 0 {
		t.Fatal("no tables on media after flush")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Flip one bit early in the first table: data blocks lead the
	// file, so offset 64 is inside the first data block. Reopen so the
	// block cache is cold and the read must touch the platter.
	if err := fd.FlipBit(tables[0].Off+64, 5); err != nil {
		t.Fatalf("flip: %v", err)
	}
	db2, err := lsm.OpenDevice(cfg, dev)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	srv, err := Serve(db2, "127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	c, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var corrupt, ok int
	for i := 0; i < n; i++ {
		got, err := c.Get([]byte(fmt.Sprintf("key%05d", i)))
		switch {
		case err == nil:
			if string(got) != val(i) {
				t.Fatalf("key%05d returned a wrong value instead of CORRUPT", i)
			}
			ok++
		case errors.Is(err, sealclient.ErrCorrupt):
			corrupt++
		default:
			t.Fatalf("key%05d: err = %v, want nil or ErrCorrupt", i, err)
		}
	}
	if corrupt == 0 {
		t.Fatal("no read surfaced the flipped bit as ErrCorrupt")
	}
	if ok == 0 {
		t.Fatal("corruption was not contained: every key failed")
	}

	// Observability: the counter moved and the journal attributes the
	// corrupt block to its file and offset.
	if got := db2.MetricsSnapshot().Counters["sealdb_sstable_corrupt_blocks_total"]; got < 1 {
		t.Fatalf("sealdb_sstable_corrupt_blocks_total = %d, want >= 1", got)
	}
	found := false
	for _, ev := range db2.Events() {
		if ev.Type == "sstable_corrupt_block" {
			if _, hasFile := ev.Fields["file"]; !hasFile {
				t.Fatalf("corrupt-block event lacks file field: %+v", ev)
			}
			if _, hasOff := ev.Fields["offset"]; !hasOff {
				t.Fatalf("corrupt-block event lacks offset field: %+v", ev)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sstable_corrupt_block event in the journal")
	}
}
