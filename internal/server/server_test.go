package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/sealclient"
	"sealdb/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) (*lsm.DB, *Server) {
	t.Helper()
	db, err := lsm.Open(lsm.DefaultConfig(lsm.ModeSEALDB))
	if err != nil {
		t.Fatalf("open db: %v", err)
	}
	srv, err := Serve(db, "127.0.0.1:0", cfg)
	if err != nil {
		db.Close()
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

// TestServerE2E is the acceptance test: two sealclient connections
// pooled across four worker goroutines drive pipelined mixed
// reads/writes over a real TCP socket, each worker owning a disjoint
// key range and checking every read against its own model; at the end
// the server's full contents are compared against an in-process
// oracle DB that replayed the same acknowledged mutations.
func TestServerE2E(t *testing.T) {
	_, srv := newTestServer(t, Config{CoalesceMaxRequests: 8})

	oracle, err := lsm.Open(lsm.DefaultConfig(lsm.ModeSEALDB))
	if err != nil {
		t.Fatalf("open oracle: %v", err)
	}
	defer oracle.Close()
	var oracleMu sync.Mutex

	addr := srv.Addr().String()
	clients := make([]*sealclient.Client, 2)
	for i := range clients {
		c, err := sealclient.Dial(addr, sealclient.Options{Conns: 1, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	const workers = 4
	const opsPerWorker = 400
	const keyspace = 64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Two workers per client: concurrent requests on a shared
			// connection pipeline.
			cl := clients[w%len(clients)]
			rng := rand.New(rand.NewSource(int64(w) + 1))
			model := map[string]string{}
			key := func(i int) []byte { return []byte(fmt.Sprintf("w%d-key%05d", w, i)) }
			fail := func(format string, args ...any) {
				select {
				case errCh <- fmt.Errorf("worker %d: %s", w, fmt.Sprintf(format, args...)):
				default:
				}
			}
			mutateOracle := func(f func(b *lsm.Batch)) error {
				b := lsm.NewBatch()
				f(b)
				oracleMu.Lock()
				defer oracleMu.Unlock()
				return oracle.Apply(b)
			}
			for i := 0; i < opsPerWorker; i++ {
				k := key(rng.Intn(keyspace))
				switch p := rng.Float64(); {
				case p < 0.5: // put
					v := []byte(fmt.Sprintf("w%d-val-%d", w, i))
					if err := cl.Put(k, v); err != nil {
						fail("Put(%q): %v", k, err)
						return
					}
					model[string(k)] = string(v)
					if err := mutateOracle(func(b *lsm.Batch) { b.Put(k, v) }); err != nil {
						fail("oracle Put: %v", err)
						return
					}
				case p < 0.6: // delete
					if err := cl.Delete(k); err != nil {
						fail("Delete(%q): %v", k, err)
						return
					}
					delete(model, string(k))
					if err := mutateOracle(func(b *lsm.Batch) { b.Delete(k) }); err != nil {
						fail("oracle Delete: %v", err)
						return
					}
				case p < 0.7: // atomic batch of three
					var batch sealclient.Batch
					var keys [][]byte
					var vals [][]byte
					for j := 0; j < 3; j++ {
						bk := key(rng.Intn(keyspace))
						bv := []byte(fmt.Sprintf("w%d-batch-%d-%d", w, i, j))
						batch.Put(bk, bv)
						keys, vals = append(keys, bk), append(vals, bv)
					}
					if err := cl.Apply(&batch); err != nil {
						fail("Apply: %v", err)
						return
					}
					if err := mutateOracle(func(b *lsm.Batch) {
						for j := range keys {
							b.Put(keys[j], vals[j])
						}
					}); err != nil {
						fail("oracle Apply: %v", err)
						return
					}
					for j := range keys {
						model[string(keys[j])] = string(vals[j])
					}
				case p < 0.9: // read, checked against the worker's model
					v, err := cl.Get(k)
					want, ok := model[string(k)]
					switch {
					case !ok && !errors.Is(err, sealclient.ErrNotFound):
						fail("Get(%q) = %v, want ErrNotFound", k, err)
						return
					case ok && (err != nil || string(v) != want):
						fail("Get(%q) = (%q, %v), want %q", k, v, err, want)
						return
					}
				default: // scan within the worker's own prefix
					kvs, err := cl.Scan([]byte(fmt.Sprintf("w%d-", w)), 10)
					if err != nil {
						fail("Scan: %v", err)
						return
					}
					for _, e := range kvs {
						if !strings.HasPrefix(string(e.Key), fmt.Sprintf("w%d-", w)) {
							break // ran past the worker's range; fine
						}
						if want, ok := model[string(e.Key)]; ok && string(e.Value) != want {
							fail("Scan saw %q=%q, model has %q", e.Key, e.Value, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Full-store comparison against the oracle: same keys, same values,
	// same order.
	got, err := clients[0].Scan(nil, 1<<20)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	want, err := oracle.Scan(nil, 1<<20)
	if err != nil {
		t.Fatalf("oracle scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("server has %d live keys, oracle has %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("entry %d: server %q=%q, oracle %q=%q",
				i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}

	// STATS over the wire reflects the run.
	raw, err := clients[0].Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var stats struct {
		Degraded bool `json:"degraded"`
		Server   struct {
			Requests        int64 `json:"requests"`
			CoalescedGroups int64 `json:"coalesced_groups"`
			CoalescedWrites int64 `json:"coalesced_writes"`
		} `json:"server"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats payload: %v\n%s", err, raw)
	}
	if stats.Degraded {
		t.Fatal("store reports degraded after a clean run")
	}
	if stats.Server.Requests < workers*opsPerWorker {
		t.Fatalf("server counted %d requests, want >= %d", stats.Server.Requests, workers*opsPerWorker)
	}
	if stats.Server.CoalescedGroups == 0 || stats.Server.CoalescedWrites < stats.Server.CoalescedGroups {
		t.Fatalf("implausible coalescing stats: %d groups, %d writes",
			stats.Server.CoalescedGroups, stats.Server.CoalescedWrites)
	}

	// The observability handler exposes the serving-layer series and
	// the per-connection profile.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"sealdb_server_conns_accepted_total",
		"sealdb_server_conns_open",
		"sealdb_server_inflight",
		"sealdb_server_requests_total",
		"sealdb_server_bytes_in_total",
		"sealdb_server_bytes_out_total",
		"sealdb_server_coalesced_commits_total",
		"sealdb_server_coalesced_group_requests",
		"sealdb_server_get_latency_ns",
		"sealdb_server_write_latency_ns",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/conns", nil))
	var conns []ConnInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &conns); err != nil {
		t.Fatalf("/debug/conns: %v\n%s", err, rec.Body.String())
	}
	if len(conns) != len(clients) {
		t.Fatalf("/debug/conns shows %d connections, want %d", len(conns), len(clients))
	}
	for _, ci := range conns {
		if !ci.Handshook || ci.Requests == 0 || ci.BytesIn == 0 || ci.BytesOut == 0 {
			t.Errorf("connection %d looks idle: %+v", ci.ID, ci)
		}
	}

	// And the DB-level endpoints still answer through the same handler.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/levels", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/levels = %d, want 200", rec.Code)
	}
}

// rawConn dials and handshakes a bare TCP connection for protocol-
// level tests.
func rawConn(t *testing.T, addr string, h wire.Hello) (net.Conn, *bufio.Reader, wire.Frame) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	f := wire.Frame{Op: wire.OpHello, Payload: wire.AppendHello(nil, h)}
	if err := wire.WriteFrame(nc, &f); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	br := bufio.NewReader(nc)
	rf, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
	if err != nil {
		t.Fatalf("read hello reply: %v", err)
	}
	return nc, br, rf
}

// TestPipelinedOutOfOrderResponses proves the wire contract directly:
// many requests written back-to-back without reading, responses
// matched by request ID regardless of arrival order.
func TestPipelinedOutOfOrderResponses(t *testing.T) {
	db, srv := newTestServer(t, Config{})
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	nc, br, hr := rawConn(t, srv.Addr().String(),
		wire.Hello{Magic: wire.Magic, Version: wire.Version, Features: wire.FeaturePipeline})
	st, _, err := wire.ParseReply(hr.Payload)
	if err != nil || st != wire.StatusOK {
		t.Fatalf("handshake reply: %v %v", st, err)
	}

	// Interleave gets and puts: replies to the gets may overtake the
	// puts' group-commit acks.
	const n = 32
	var buf []byte
	for id := uint64(1); id <= n; id++ {
		if id%2 == 0 {
			buf = wire.AppendFrame(buf, &wire.Frame{Op: wire.OpGet, ReqID: id,
				Payload: wire.AppendGet(nil, []byte("k"))})
		} else {
			buf = wire.AppendFrame(buf, &wire.Frame{Op: wire.OpPut, ReqID: id,
				Payload: wire.AppendPut(nil, []byte("k"), []byte("v2"))})
		}
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write pipeline: %v", err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		f, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
		if err != nil {
			t.Fatalf("read reply %d: %v", i, err)
		}
		if f.Op != wire.OpReply || seen[f.ReqID] || f.ReqID < 1 || f.ReqID > n {
			t.Fatalf("reply %d: op=%#x id=%d (dup=%v)", i, byte(f.Op), f.ReqID, seen[f.ReqID])
		}
		seen[f.ReqID] = true
		st, _, err := wire.ParseReply(f.Payload)
		if err != nil || st != wire.StatusOK {
			t.Fatalf("reply %d (req %d): status %v err %v", i, f.ReqID, st, err)
		}
	}
}

func TestHandshakeRefusals(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	cases := []struct {
		name string
		h    wire.Hello
		want wire.Status
	}{
		{"bad magic", wire.Hello{Magic: 0xDEADBEEF, Version: wire.Version}, wire.StatusBadRequest},
		{"future version", wire.Hello{Magic: wire.Magic, Version: 99}, wire.StatusUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, rf := rawConn(t, srv.Addr().String(), tc.h)
			st, _, err := wire.ParseReply(rf.Payload)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if st != tc.want {
				t.Fatalf("status = %v, want %v", st, tc.want)
			}
		})
	}
}

func TestFeatureNegotiationIntersects(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	_, _, rf := rawConn(t, srv.Addr().String(),
		wire.Hello{Magic: wire.Magic, Version: wire.Version, Features: wire.FeaturePipeline | 1<<9})
	st, body, err := wire.ParseReply(rf.Payload)
	if err != nil || st != wire.StatusOK {
		t.Fatalf("handshake: %v %v", st, err)
	}
	h, err := wire.DecodeHello(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Features != wire.FeaturePipeline {
		t.Fatalf("negotiated features = %#x, want pipeline only (unknown bits dropped)", h.Features)
	}
}

func TestMaxConnsRejection(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxConns: 1})
	c1, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{})
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	defer c1.Close()
	_, err = sealclient.Dial(srv.Addr().String(), sealclient.Options{DialTimeout: 2 * time.Second})
	if !errors.Is(err, sealclient.ErrUnavailable) {
		t.Fatalf("second dial err = %v, want ErrUnavailable", err)
	}
}

// TestGracefulDrain closes the server while writes are in flight:
// every write acknowledged OK must be readable from the DB afterward,
// and the client must fail cleanly rather than hang.
func TestGracefulDrain(t *testing.T) {
	db, srv := newTestServer(t, Config{DrainTimeout: 3 * time.Second})
	c, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var mu sync.Mutex
	acked := map[string]string{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			k := fmt.Sprintf("drain-key%06d", i)
			v := fmt.Sprintf("val%d", i)
			if err := c.Put([]byte(k), []byte(v)); err != nil {
				return // server went away; expected
			}
			mu.Lock()
			acked[k] = v
			mu.Unlock()
		}
	}()

	// Let some writes land, then drain mid-stream.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 50 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client writer still running after server close")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(acked) < 50 {
		t.Fatalf("only %d acked writes", len(acked))
	}
	for k, v := range acked {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("acked write %q lost after drain: (%q, %v)", k, got, err)
		}
	}
}

// TestOversizedFrameRefused checks the explicit TooLarge refusal.
func TestOversizedFrameRefused(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxFrame: 4096})
	nc, br, hr := rawConn(t, srv.Addr().String(),
		wire.Hello{Magic: wire.Magic, Version: wire.Version})
	if st, _, err := wire.ParseReply(hr.Payload); err != nil || st != wire.StatusOK {
		t.Fatalf("handshake: %v %v", st, err)
	}
	f := wire.Frame{Op: wire.OpPut, ReqID: 7,
		Payload: wire.AppendPut(nil, []byte("k"), make([]byte, 64<<10))}
	if err := wire.WriteFrame(nc, &f); err != nil {
		t.Fatalf("write: %v", err)
	}
	rf, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
	if err != nil {
		t.Fatalf("read refusal: %v", err)
	}
	st, _, err := wire.ParseReply(rf.Payload)
	if err != nil {
		t.Fatalf("parse refusal: %v", err)
	}
	if st != wire.StatusTooLarge {
		t.Fatalf("status = %v, want StatusTooLarge", st)
	}
}
