// Package server is SEALDB's network front end: a TCP server speaking
// the internal/wire protocol over an open *lsm.DB.
//
// Architecture (see DESIGN.md, "Serving layer"):
//
//   - Each accepted connection gets a read/write goroutine pair. The
//     reader decodes pipelined request frames; the writer serializes
//     response frames from a channel, so responses may leave in any
//     order — a read never waits behind an earlier write's commit.
//   - Reads (GET/SCAN/STATS) execute inline on the reader goroutine.
//     Writes (PUT/DELETE/WRITEBATCH) are handed to a single committer
//     goroutine that coalesces requests from every connection into one
//     shared lsm.Batch and applies it as a group commit; each request
//     is acknowledged individually once its group lands.
//   - Backpressure is structural: a per-connection inflight semaphore
//     stops the reader (and therefore TCP flow control stops the
//     client) when too many requests are unanswered, and a connection
//     limit bounds the goroutine population. Slow clients are bounded
//     by a write deadline on every response flush.
//   - Close drains gracefully: the listener stops, readers are kicked
//     out of their blocking reads, inflight requests finish and their
//     acks flush, then connections close.
//
// The package uses real wall-clock time (deadlines, latency series):
// it sits above the simulated device stack, outside the noclock
// determinism boundary.
package server

import (
	"errors"
	"net"
	"sync"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/wire"
)

// Config tunes the server. The zero value serves with the defaults.
type Config struct {
	// MaxConns bounds concurrently served connections; further
	// accepts are answered with StatusUnavailable and closed.
	// 0 means 256.
	MaxConns int
	// MaxInflight bounds unanswered requests per connection; the
	// reader stops consuming frames when the bound is hit. 0 means 128.
	MaxInflight int
	// WriteTimeout is the slow-client deadline for flushing responses;
	// a connection that cannot absorb its responses in time is closed.
	// 0 means 10s.
	WriteTimeout time.Duration
	// DrainTimeout bounds graceful shutdown; connections still open
	// after it are force-closed. 0 means 5s.
	DrainTimeout time.Duration
	// MaxFrame bounds accepted request frames. 0 means
	// wire.DefaultMaxFrame.
	MaxFrame int
	// CoalesceMaxRequests bounds how many write requests one group
	// commit absorbs. 0 means 64.
	CoalesceMaxRequests int
	// CoalesceMaxBytes bounds a group commit's encoded batch size.
	// 0 means 1 MiB.
	CoalesceMaxBytes int64
	// HandshakeTimeout bounds the wait for the client hello. 0 means 5s.
	HandshakeTimeout time.Duration
}

func (c *Config) maxConns() int {
	if c.MaxConns > 0 {
		return c.MaxConns
	}
	return 256
}

func (c *Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return 128
}

func (c *Config) writeTimeout() time.Duration {
	if c.WriteTimeout > 0 {
		return c.WriteTimeout
	}
	return 10 * time.Second
}

func (c *Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 5 * time.Second
}

func (c *Config) maxFrame() int {
	if c.MaxFrame > 0 {
		return c.MaxFrame
	}
	return wire.DefaultMaxFrame
}

func (c *Config) coalesceMaxRequests() int {
	if c.CoalesceMaxRequests > 0 {
		return c.CoalesceMaxRequests
	}
	return 64
}

func (c *Config) coalesceMaxBytes() int64 {
	if c.CoalesceMaxBytes > 0 {
		return c.CoalesceMaxBytes
	}
	return 1 << 20
}

func (c *Config) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return 5 * time.Second
}

// Server is a running network front end over one DB.
type Server struct {
	db  *lsm.DB
	cfg Config
	ln  net.Listener
	m   *metrics

	commitCh   chan *commitReq
	commitStop chan struct{}
	commitWG   sync.WaitGroup

	// mu guards server state shared between the accept loop, the
	// committer's stats path, and every connection's teardown;
	// profiled as the "server_mu" contention site.
	mu     obs.Mutex
	conns  map[*conn]struct{} // guarded by mu
	nextID uint64             // guarded by mu
	closed bool               // guarded by mu

	connWG sync.WaitGroup // accept loop + connection goroutines
}

// Serve binds addr (host:port; ":0" picks a free port) and serves db
// on background goroutines until Close.
func Serve(db *lsm.DB, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		db:         db,
		cfg:        cfg,
		ln:         ln,
		commitCh:   make(chan *commitReq, 4*cfg.coalesceMaxRequests()),
		commitStop: make(chan struct{}),
		conns:      map[*conn]struct{}{},
	}
	s.mu.Profile("server_mu")
	s.m = newMetrics(db.ObsRegistry(), s)
	s.commitWG.Add(1)
	go s.committer()
	s.connWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// acceptLoop admits connections up to the configured bound.
func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		if len(s.conns) >= s.cfg.maxConns() {
			s.mu.Unlock()
			s.m.connsRejected.Inc()
			// Reject politely: the refusal is a frame, not a RST, so the
			// client can report "server full" instead of a bare EOF.
			s.rejectConn(nc)
			continue
		}
		s.nextID++
		c := newConn(s, s.nextID, nc)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.m.connsAccepted.Inc()
		s.connWG.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// rejectConn answers an over-limit connection with UNAVAILABLE and
// closes it.
func (s *Server) rejectConn(nc net.Conn) {
	f := wire.Reply(0, wire.StatusUnavailable, []byte("server: connection limit reached"))
	if err := nc.SetWriteDeadline(time.Now().Add(s.cfg.writeTimeout())); err == nil {
		if err := wire.WriteFrame(nc, &f); err != nil {
			s.m.connErrors.Inc()
		}
	}
	nc.Close()
}

// removeConn forgets a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// openConns snapshots the live connection set.
func (s *Server) openConns() []*conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

// Close shuts the server down gracefully: stop accepting, kick every
// reader out of its blocking read, let inflight requests finish and
// their responses flush, then close the connections. Connections that
// have not drained within DrainTimeout are force-closed. Safe to call
// more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range s.openConns() {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.drainTimeout()):
		for _, c := range s.openConns() {
			c.forceClose()
		}
		<-done
	}
	close(s.commitStop)
	s.commitWG.Wait()
	return err
}

// errStatus maps an engine error to its wire status.
func errStatus(err error) (wire.Status, string) {
	switch {
	case err == nil:
		return wire.StatusOK, ""
	case errors.Is(err, lsm.ErrNotFound):
		return wire.StatusNotFound, err.Error()
	case errors.Is(err, lsm.ErrDegraded):
		return wire.StatusDegraded, err.Error()
	case errors.Is(err, lsm.ErrClosed):
		return wire.StatusClosed, err.Error()
	case errors.Is(err, lsm.ErrCorruptBlock):
		return wire.StatusCorrupt, err.Error()
	default:
		return wire.StatusInternal, err.Error()
	}
}

// errReply builds the response frame for a failed request.
func errReply(reqID uint64, err error) wire.Frame {
	st, msg := errStatus(err)
	if st == wire.StatusOK {
		st, msg = wire.StatusInternal, "unknown error"
	}
	return wire.Reply(reqID, st, []byte(msg))
}

// statsPayload is the STATS reply body (JSON). Degraded-mode state
// rides along so a remote client can see why its writes are rejected.
type statsPayload struct {
	Stats         lsm.Stats   `json:"stats"`
	Mode          string      `json:"mode"`
	Seq           uint64      `json:"seq"`
	Degraded      bool        `json:"degraded"`
	DegradedCause string      `json:"degraded_cause,omitempty"`
	Server        serverStats `json:"server"`
}

// serverStats summarizes the front end inside the STATS payload.
type serverStats struct {
	OpenConns     int   `json:"open_conns"`
	AcceptedConns int64 `json:"accepted_conns"`
	Requests      int64 `json:"requests"`
	// CoalescedGroups is how many group commits ran; CoalescedWrites is
	// how many write requests they absorbed in total, so writes/groups
	// is the average batching factor.
	CoalescedGroups int64 `json:"coalesced_groups"`
	CoalescedWrites int64 `json:"coalesced_writes"`
}

func (s *Server) stats() statsPayload {
	p := statsPayload{
		Stats: s.db.Stats(),
		Mode:  s.db.Mode().String(),
		Seq:   uint64(s.db.Seq()),
		Server: serverStats{
			OpenConns:       len(s.openConns()),
			AcceptedConns:   s.m.connsAccepted.Value(),
			Requests:        s.m.requests.Value(),
			CoalescedGroups: s.m.coalescedCommits.Value(),
			CoalescedWrites: s.m.coalescedReqs.Snapshot().Sum,
		},
	}
	if err := s.db.Degraded(); err != nil {
		p.Degraded = true
		p.DegradedCause = err.Error()
	}
	return p
}
