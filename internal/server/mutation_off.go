//go:build !sealdb_chaos_mutation

package server

// mutationAckBeforeCommit enables the intentional durability bug the
// chaos harness's mutation self-test uses to prove its history
// checker is not vacuous: write requests are acknowledged before the
// group commit reaches the WAL. Off in every normal build; the
// sealdb_chaos_mutation build tag turns it on (mutation_on.go).
const mutationAckBeforeCommit = false
