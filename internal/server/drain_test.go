package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sealdb/internal/sealclient"
)

// cleanShutdownErr reports whether err is an acceptable way for an
// in-flight request to fail during a graceful drain: the connection
// went away or the store refused cleanly. A timeout or a garbled
// frame would mean the drain left a response half-written.
func cleanShutdownErr(err error) bool {
	return errors.Is(err, sealclient.ErrConn) ||
		errors.Is(err, sealclient.ErrStoreClosed) ||
		errors.Is(err, sealclient.ErrClosed) ||
		errors.Is(err, sealclient.ErrUnavailable)
}

// TestDrainUnderMultiClientLoad races Close against four clients,
// each hammering mixed reads and writes from two goroutines. The
// drain contract: Close returns within DrainTimeout plus slack, every
// racing op ends in nil or a clean sentinel (never a timeout, never a
// torn frame surfacing as a decode error), and every write that was
// acknowledged OK is readable straight from the DB afterwards.
func TestDrainUnderMultiClientLoad(t *testing.T) {
	const (
		nClients    = 4
		perClient   = 2
		drainWindow = 3 * time.Second
	)
	db, srv := newTestServer(t, Config{DrainTimeout: drainWindow})

	var mu sync.Mutex
	acked := map[string]string{}

	var wg sync.WaitGroup
	started := make(chan struct{})
	for ci := 0; ci < nClients; ci++ {
		c, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{
			Timeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatalf("dial %d: %v", ci, err)
		}
		defer c.Close()
		for g := 0; g < perClient; g++ {
			wg.Add(1)
			go func(c *sealclient.Client, worker int) {
				defer wg.Done()
				for i := 0; ; i++ {
					k := fmt.Sprintf("drain-w%02d-%06d", worker, i)
					v := fmt.Sprintf("val-%d", i)
					if err := c.Put([]byte(k), []byte(v)); err != nil {
						if !cleanShutdownErr(err) {
							t.Errorf("worker %d put: dirty shutdown error %v", worker, err)
						}
						return
					}
					mu.Lock()
					acked[k] = v
					n := len(acked)
					mu.Unlock()
					if n >= nClients*perClient*20 {
						select {
						case <-started:
						default:
							close(started)
						}
					}
					// Read back an earlier own write; during the race a
					// clean connection error is fine, a wrong value never is.
					if i > 0 {
						rk := fmt.Sprintf("drain-w%02d-%06d", worker, i-1)
						got, err := c.Get([]byte(rk))
						if err != nil {
							if !cleanShutdownErr(err) {
								t.Errorf("worker %d get: dirty shutdown error %v", worker, err)
							}
							return
						}
						if string(got) != fmt.Sprintf("val-%d", i-1) {
							t.Errorf("worker %d read torn value %q for %s", worker, got, rk)
							return
						}
					}
				}
			}(c, ci*perClient+g)
		}
	}

	// Let traffic build, then drain mid-stream and time it.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("workers never reached steady state")
	}
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if took := time.Since(t0); took > drainWindow+2*time.Second {
		t.Fatalf("Close took %v, want under DrainTimeout (%v) plus slack", took, drainWindow)
	}

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(15 * time.Second):
		t.Fatal("client workers still running after server close")
	}

	// Durability of the ack: everything acknowledged OK must be in the
	// store, bypassing the (now closed) TCP path.
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes acked before drain; test raced wrong")
	}
	for k, v := range acked {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("acked write %q lost after drain: (%q, %v)", k, got, err)
		}
	}
	t.Logf("drained with %d acked writes intact", len(acked))
}

// TestDrainIdleConnectionsIsFast checks that Close does not sit out
// the whole DrainTimeout waiting on idle connections: readers blocked
// in ReadFrame must be kicked immediately, so a server with only idle
// clients drains in a fraction of the configured window.
func TestDrainIdleConnectionsIsFast(t *testing.T) {
	_, srv := newTestServer(t, Config{DrainTimeout: 10 * time.Second})
	var clients []*sealclient.Client
	for i := 0; i < 3; i++ {
		c, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		// One round trip each so the connection is fully established
		// and the server-side reader is parked in a blocking read.
		if err := c.Put([]byte(fmt.Sprintf("idle%d", i)), []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		clients = append(clients, c)
	}

	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if took := time.Since(t0); took > 2*time.Second {
		t.Fatalf("Close with idle connections took %v, want well under the 10s DrainTimeout", took)
	}

	// The drained connections fail cleanly, not with timeouts.
	for i, c := range clients {
		if _, err := c.Get([]byte("idle0")); err == nil || !cleanShutdownErr(err) {
			t.Fatalf("client %d post-drain get: err = %v, want clean shutdown sentinel", i, err)
		}
	}
}
