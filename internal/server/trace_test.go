package server

import (
	"bufio"
	"fmt"
	"testing"

	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/wire"
)

// TestTraceE2EAttribution is the tracing acceptance test: a client
// negotiating wire.FeatureTrace turns the engine tracer on, and a GET
// issued over TCP with a known request id yields a journaled span tree
// whose op_get root carries that wire id and whose io children
// attribute real platter accesses with byte lengths and seek totals.
func TestTraceE2EAttribution(t *testing.T) {
	cfg := lsm.DefaultConfig(lsm.ModeSEALDB)
	cfg.Trace.SampleEvery = 1 // journal every op; Enabled stays false until negotiated
	db, err := lsm.Open(cfg)
	if err != nil {
		t.Fatalf("open db: %v", err)
	}
	srv, err := Serve(db, "127.0.0.1:0", Config{})
	if err != nil {
		db.Close()
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})

	nc, br, hr := rawConn(t, srv.Addr().String(),
		wire.Hello{Magic: wire.Magic, Version: wire.Version,
			Features: wire.FeaturePipeline | wire.FeatureTrace})
	st, body, err := wire.ParseReply(hr.Payload)
	if err != nil || st != wire.StatusOK {
		t.Fatalf("handshake reply: %v %v", st, err)
	}
	h, err := wire.DecodeHello(body)
	if err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	if h.Features&wire.FeatureTrace == 0 {
		t.Fatalf("server did not grant FeatureTrace (features %#x)", h.Features)
	}
	if !db.TracingEnabled() {
		t.Fatal("negotiating FeatureTrace did not enable the engine tracer")
	}

	// Push enough data through the wire that early keys are flushed to
	// SSTables, so the probe GET must do physical reads.
	val := make([]byte, 2048)
	const puts = 300
	var buf []byte
	for id := uint64(1); id <= puts; id++ {
		key := []byte(fmt.Sprintf("trace-key-%04d", id))
		buf = wire.AppendFrame(buf, &wire.Frame{Op: wire.OpPut, ReqID: id,
			Payload: wire.AppendPut(nil, key, val)})
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write puts: %v", err)
	}
	drainOK(t, br, puts)

	const probeID = 0xBEEF
	f := wire.Frame{Op: wire.OpGet, ReqID: probeID,
		Payload: wire.AppendGet(nil, []byte("trace-key-0001"))}
	if err := wire.WriteFrame(nc, &f); err != nil {
		t.Fatalf("write get: %v", err)
	}
	drainOK(t, br, 1)

	var root *obs.SpanNode
	for _, n := range obs.SpanTrees(db.Events()) {
		if n.Type == "op_get" && n.Fields["req_id"] == probeID {
			root = n
		}
	}
	if root == nil {
		t.Fatalf("no op_get span with wire req id %#x in the journal", probeID)
	}
	if root.Fields["reads"] == 0 || root.Fields["read_bytes"] == 0 {
		t.Errorf("op_get totals = %v, want attributed physical reads", root.Fields)
	}
	if _, ok := root.Fields["seek_distance"]; !ok {
		t.Errorf("op_get fields %v missing seek_distance", root.Fields)
	}
	ios := 0
	for _, c := range root.Children {
		if c.Type != "io" {
			continue
		}
		ios++
		if c.Fields["length"] <= 0 {
			t.Errorf("io span without byte length: %v", c.Fields)
		}
	}
	if ios == 0 {
		t.Error("op_get span has no attributed io children")
	}
}

// drainOK reads n replies and requires every status to be OK.
func drainOK(t *testing.T, br *bufio.Reader, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
		if err != nil {
			t.Fatalf("read reply %d: %v", i, err)
		}
		st, _, err := wire.ParseReply(f.Payload)
		if err != nil || st != wire.StatusOK {
			t.Fatalf("reply %d (req %d): status %v err %v", i, f.ReqID, st, err)
		}
	}
}
