package server

import (
	"fmt"
	"testing"

	"sealdb/internal/lsm"
	"sealdb/internal/wire"
)

// TestBatchPoolSteadyStateAllocations asserts the group-commit batch
// cycle — get from the pool, fill, reset, put back — allocates nothing
// once warm: the whole point of Batch.Reset keeping capacity.
func TestBatchPoolSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool allocate; allocation accounting is meaningless here")
	}
	entries := make([]wire.BatchEntry, 16)
	val := make([]byte, 512)
	for i := range entries {
		entries[i] = wire.BatchEntry{Key: []byte(fmt.Sprintf("key%06d", i)), Value: val}
	}
	req := &commitReq{entries: entries}
	cycle := func() {
		b := getBatch()
		addToBatch(b, req)
		putBatch(b)
	}
	// Warm the pool so the batch's backing buffer reaches steady-state
	// capacity before measuring.
	for i := 0; i < 8; i++ {
		cycle()
	}
	// AllocsPerRun runs with GC percent -1, so the pool cannot be
	// drained by a collection mid-measurement.
	if n := testing.AllocsPerRun(100, cycle); n > 0 {
		t.Fatalf("steady-state batch cycle allocates %.1f objects/op, want 0", n)
	}
}

// TestBatchPoolDropsBalloonedBatches asserts the pool does not pin
// oversized buffers: a batch grown past maxPooledBatchBytes must not
// come back out of the pool.
func TestBatchPoolDropsBalloonedBatches(t *testing.T) {
	b := lsm.NewBatch()
	big := make([]byte, maxPooledBatchBytes+1)
	b.Put([]byte("k"), big)
	if b.Cap() <= maxPooledBatchBytes {
		t.Fatalf("test batch capacity %d did not exceed the pool bound", b.Cap())
	}
	putBatch(b)
	// Whatever comes out must be within the bound (a pooled small batch
	// or a fresh one) — never the ballooned buffer.
	got := getBatch()
	if got == b {
		t.Fatalf("ballooned batch (cap %d) was pooled", got.Cap())
	}
	putBatch(got)
}
