package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sealdb/internal/faultfs"
	"sealdb/internal/lsm"
	"sealdb/internal/sealclient"
	"sealdb/internal/smr"
)

// openInjected opens a DB on a fresh device with a faultfs injector
// spliced into the drive stack, mirroring the crashtest harness.
func openInjected(t *testing.T, mutate func(*lsm.Config)) (*faultfs.Drive, *lsm.Device, *lsm.DB, lsm.Config) {
	t.Helper()
	var fd *faultfs.Drive
	cfg := lsm.DefaultConfig(lsm.ModeSEALDB)
	cfg.WrapDrive = func(inner smr.Drive) smr.Drive {
		fd = faultfs.New(inner, 42)
		return fd
	}
	if mutate != nil {
		mutate(&cfg)
	}
	dev := lsm.NewDevice(cfg)
	db, err := lsm.OpenDevice(cfg, dev)
	if err != nil {
		t.Fatalf("open injected db: %v", err)
	}
	return fd, dev, db, cfg
}

// TestServerPowerCutMidPipeline cuts device power while pipelined
// client writes are in flight and checks the full contract: clients
// get clean errors (not hangs), the store's degraded mode surfaces as
// the distinct wire status, and after power-on and recovery every
// write the server acknowledged is present.
func TestServerPowerCutMidPipeline(t *testing.T) {
	fd, dev, db, cfg := openInjected(t, nil)
	srv, err := Serve(db, "127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	c, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{
		Timeout: 10 * time.Second, ReadRetries: -1,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Arm the cut a few dozen device writes out, then drive pipelined
	// writes from two goroutines until both hit the failure.
	fd.CutAtWrite(40)
	var mu sync.Mutex
	acked := map[string]string{}
	var firstErrs []error
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("g%d-key%06d", g, i)
				v := fmt.Sprintf("g%d-val%06d", g, i)
				if err := c.Put([]byte(k), []byte(v)); err != nil {
					mu.Lock()
					firstErrs = append(firstErrs, err)
					mu.Unlock()
					return
				}
				mu.Lock()
				acked[k] = v
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	if len(firstErrs) != 2 {
		t.Fatalf("both writers should have failed; got %d errors, %d acked writes", len(firstErrs), len(acked))
	}
	if len(acked) == 0 {
		t.Fatal("no writes acknowledged before the cut; cut landed too early")
	}
	// Clean failures only: an engine error surfaced through a reply
	// frame (degraded or internal), never a timeout or a hang.
	for _, err := range firstErrs {
		if errors.Is(err, sealclient.ErrTimeout) {
			t.Fatalf("writer failed with a timeout, want a surfaced engine error: %v", err)
		}
	}

	// The store is now degraded: further writes must map to the
	// distinct wire status, and reads must keep serving.
	if err := c.Put([]byte("post-cut"), []byte("x")); !errors.Is(err, sealclient.ErrDegraded) {
		t.Fatalf("post-cut Put err = %v, want ErrDegraded", err)
	}
	var someKey, someVal string
	for k, v := range acked {
		someKey, someVal = k, v
		break
	}
	if v, err := c.Get([]byte(someKey)); err != nil || string(v) != someVal {
		t.Fatalf("degraded store stopped serving reads: Get(%q) = (%q, %v)", someKey, v, err)
	}
	raw, err := c.Stats()
	if err != nil {
		t.Fatalf("stats on degraded store: %v", err)
	}
	var stats struct {
		Degraded      bool   `json:"degraded"`
		DegradedCause string `json:"degraded_cause"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if !stats.Degraded || stats.DegradedCause == "" {
		t.Fatalf("STATS does not surface degraded mode: %+v", stats)
	}

	// Kill the server, power the device back on, recover, and hold the
	// durability line: every acknowledged write must be present. The
	// doomed DB instance is dropped without Close, as a dead host's
	// would be.
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	fd.PowerOn()
	db2, err := lsm.OpenDevice(cfg, dev)
	if err != nil {
		t.Fatalf("reopen after power cut: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after recovery: %v", err)
	}
	for k, v := range acked {
		got, err := db2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("acked write %q lost across the crash: (%q, %v)", k, got, err)
		}
	}
}

// TestServerTransientWriteFaults serves through a device that fails a
// fraction of writes transiently: with the engine's write retries on,
// every client request must still succeed, end to end.
func TestServerTransientWriteFaults(t *testing.T) {
	fd, _, db, _ := openInjected(t, func(cfg *lsm.Config) {
		cfg.WriteRetries = 4
	})
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	fd.Inject(faultfs.Rule{Op: faultfs.OpWrite, Probability: 0.05, Temporary: true})

	c, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("t%d-key%05d", g, i))
				v := []byte(fmt.Sprintf("t%d-val%05d", g, i))
				if err := c.Put(k, v); err != nil {
					select {
					case errCh <- fmt.Errorf("Put(%q): %w", k, err):
					default:
					}
					return
				}
				if got, err := c.Get(k); err != nil || string(got) != string(v) {
					select {
					case errCh <- fmt.Errorf("Get(%q) = (%q, %v)", k, got, err):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("request failed despite transient-fault retries: %v", err)
	default:
	}
	if n := fd.FaultStats()["injected_write_errors"]; n == 0 {
		t.Fatal("no write faults fired; the profile exercised nothing")
	}
}
