package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/wire"
)

// conn is one served connection: a reader goroutine decoding
// pipelined requests and a writer goroutine flushing responses, tied
// together by the out channel. Responses enter out in completion
// order, not request order.
type conn struct {
	id  uint64
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	// out carries completed responses to the writer; its capacity is
	// 2*MaxInflight so a send never blocks while the writer lives.
	out chan wire.Frame
	// inflight is the pipelining semaphore: one slot per unanswered
	// request. The reader blocks acquiring a slot, which stops frame
	// consumption and lets TCP flow control push back on the client.
	inflight chan struct{}
	// dead is closed when the writer is gone (write error or force
	// close); senders then drop their responses.
	dead      chan struct{}
	deadOnce  sync.Once
	closeOnce sync.Once

	// traced is set by the handshake when the client negotiated
	// wire.FeatureTrace: this connection's request ids are threaded
	// into the engine tracer. Written before any dispatch, read only
	// by the reader goroutine.
	traced bool

	// Connection stats, read by /debug/conns without locks.
	opened    time.Time
	remote    string
	requests  atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	pending   atomic.Int64
	handshook atomic.Bool
}

func newConn(s *Server, id uint64, nc net.Conn) *conn {
	return &conn{
		id:       id,
		srv:      s,
		nc:       nc,
		br:       bufio.NewReaderSize(nc, 64<<10),
		out:      make(chan wire.Frame, 2*s.cfg.maxInflight()),
		inflight: make(chan struct{}, s.cfg.maxInflight()),
		dead:     make(chan struct{}),
		opened:   time.Now(),
		remote:   nc.RemoteAddr().String(),
	}
}

// beginDrain kicks the reader out of its blocking read so the
// connection winds down; inflight requests still complete and flush.
func (c *conn) beginDrain() {
	if err := c.nc.SetReadDeadline(time.Now()); err != nil {
		c.forceClose()
	}
}

// forceClose abandons the connection immediately, dropping unflushed
// responses.
func (c *conn) forceClose() {
	c.markDead()
	c.closeOnce.Do(func() { c.nc.Close() })
}

// markDead records that the writer can no longer deliver responses.
func (c *conn) markDead() {
	c.deadOnce.Do(func() { close(c.dead) })
}

// send hands a response to the writer, dropping it if the writer is
// gone. Called from the reader goroutine and from commit callbacks.
func (c *conn) send(f wire.Frame) {
	select {
	case c.out <- f:
	case <-c.dead:
	}
}

// readLoop is the connection's reader half.
func (c *conn) readLoop() {
	defer c.srv.connWG.Done()
	defer c.teardown()

	if !c.handshake() {
		return
	}
	maxFrame := c.srv.cfg.maxFrame()
	for {
		f, err := wire.ReadFrame(c.br, maxFrame)
		if err != nil {
			// Oversized frames earn an explicit refusal before the
			// connection dies; everything else (EOF, deadline, reset)
			// ends the read loop silently.
			if errors.Is(err, wire.ErrFrameTooLarge) {
				c.send(wire.Reply(0, wire.StatusTooLarge, []byte(err.Error())))
			}
			return
		}
		n := int64(frameWireSize(&f))
		c.bytesIn.Add(n)
		c.srv.m.bytesIn.Add(n)
		c.requests.Add(1)
		c.srv.m.requests.Inc()

		// Acquire a pipeline slot; blocking here is the backpressure.
		c.inflight <- struct{}{}
		c.pending.Add(1)
		c.dispatch(&f)
	}
}

// release returns a pipeline slot.
func (c *conn) release() {
	c.pending.Add(-1)
	<-c.inflight
}

// dispatch routes one request frame. Reads run inline; writes go to
// the group committer with a callback that acks when the commit
// lands. The inflight slot is released when the response is enqueued.
func (c *conn) dispatch(f *wire.Frame) {
	switch f.Op {
	case wire.OpGet:
		c.doGet(f)
		c.release()
	case wire.OpScan:
		c.doScan(f)
		c.release()
	case wire.OpStats:
		c.doStats(f)
		c.release()
	case wire.OpPut, wire.OpDelete, wire.OpWriteBatch:
		if !c.enqueueWrite(f) {
			c.release()
		}
	case wire.OpHello:
		// A second hello is a protocol error, but a harmless one.
		c.send(wire.Reply(f.ReqID, wire.StatusBadRequest, []byte("server: duplicate handshake")))
		c.release()
	default:
		c.srv.m.badRequests.Inc()
		c.send(wire.Reply(f.ReqID, wire.StatusBadRequest, []byte("server: unknown opcode")))
		c.release()
	}
}

func (c *conn) doGet(f *wire.Frame) {
	key, err := wire.DecodeGet(f.Payload)
	if err != nil {
		c.srv.m.badRequests.Inc()
		c.send(wire.Reply(f.ReqID, wire.StatusBadRequest, []byte(err.Error())))
		return
	}
	start := time.Now()
	var ctx lsm.OpContext
	if c.traced {
		ctx.ReqID = f.ReqID
	}
	v, err := c.srv.db.GetCtx(key, ctx)
	c.srv.m.getLatency.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		c.send(errReply(f.ReqID, err))
		return
	}
	c.send(wire.Reply(f.ReqID, wire.StatusOK, v))
}

func (c *conn) doScan(f *wire.Frame) {
	start, limit, err := wire.DecodeScan(f.Payload)
	if err != nil {
		c.srv.m.badRequests.Inc()
		c.send(wire.Reply(f.ReqID, wire.StatusBadRequest, []byte(err.Error())))
		return
	}
	t0 := time.Now()
	kvs, err := c.srv.db.Scan(start, int(limit))
	c.srv.m.scanLatency.Observe(time.Since(t0).Nanoseconds())
	if err != nil {
		c.send(errReply(f.ReqID, err))
		return
	}
	out := make([]wire.KV, len(kvs))
	for i := range kvs {
		out[i] = wire.KV{Key: kvs[i].Key, Value: kvs[i].Value}
	}
	c.send(wire.Reply(f.ReqID, wire.StatusOK, wire.AppendScanReply(nil, out)))
}

func (c *conn) doStats(f *wire.Frame) {
	body, err := json.Marshal(c.srv.stats())
	if err != nil {
		c.send(errReply(f.ReqID, err))
		return
	}
	c.send(wire.Reply(f.ReqID, wire.StatusOK, body))
}

// enqueueWrite validates a write request and hands it to the group
// committer. Returns false when the request was rejected inline (the
// caller then releases the slot); on success the commit callback owns
// the slot.
func (c *conn) enqueueWrite(f *wire.Frame) bool {
	var entries []wire.BatchEntry
	switch f.Op {
	case wire.OpPut:
		key, value, err := wire.DecodePut(f.Payload)
		if err != nil {
			c.srv.m.badRequests.Inc()
			c.send(wire.Reply(f.ReqID, wire.StatusBadRequest, []byte(err.Error())))
			return false
		}
		entries = []wire.BatchEntry{{Key: key, Value: value}}
	case wire.OpDelete:
		key, err := wire.DecodeDelete(f.Payload)
		if err != nil {
			c.srv.m.badRequests.Inc()
			c.send(wire.Reply(f.ReqID, wire.StatusBadRequest, []byte(err.Error())))
			return false
		}
		entries = []wire.BatchEntry{{Delete: true, Key: key}}
	case wire.OpWriteBatch:
		var err error
		entries, err = wire.DecodeWriteBatch(f.Payload)
		if err != nil {
			c.srv.m.badRequests.Inc()
			c.send(wire.Reply(f.ReqID, wire.StatusBadRequest, []byte(err.Error())))
			return false
		}
		if len(entries) == 0 {
			c.send(wire.Reply(f.ReqID, wire.StatusOK, nil))
			return false
		}
	}
	reqID := f.ReqID
	req := &commitReq{
		entries: entries,
		start:   time.Now(),
		traced:  c.traced,
		reqID:   reqID,
		done: func(err error) {
			if err != nil {
				c.send(errReply(reqID, err))
			} else {
				c.send(wire.Reply(reqID, wire.StatusOK, nil))
			}
			c.release()
		},
	}
	select {
	case c.srv.commitCh <- req:
		return true
	case <-c.srv.commitStop:
		c.send(wire.Reply(reqID, wire.StatusUnavailable, []byte("server: shutting down")))
		return false
	}
}

// handshake performs the version/feature exchange. The client's first
// frame must be a valid hello within the handshake timeout.
func (c *conn) handshake() bool {
	if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.handshakeTimeout())); err != nil {
		return false
	}
	f, err := wire.ReadFrame(c.br, 1024)
	if err != nil {
		c.srv.m.handshakeFails.Inc()
		return false
	}
	refuse := func(st wire.Status, msg string) bool {
		c.srv.m.handshakeFails.Inc()
		c.send(wire.Reply(f.ReqID, st, []byte(msg)))
		return false
	}
	if f.Op != wire.OpHello {
		return refuse(wire.StatusBadRequest, "server: expected HELLO")
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return refuse(wire.StatusBadRequest, err.Error())
	}
	if h.Magic != wire.Magic {
		return refuse(wire.StatusBadRequest, "server: bad protocol magic")
	}
	if h.Version != wire.Version {
		return refuse(wire.StatusUnavailable, "server: unsupported protocol version")
	}
	if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
		return false
	}
	reply := wire.Hello{
		Magic:    wire.Magic,
		Version:  wire.Version,
		Features: h.Features & (wire.FeaturePipeline | wire.FeatureCoalesce | wire.FeatureTrace),
	}
	if reply.Features&wire.FeatureTrace != 0 {
		// Tracing is engine-global and sticky for the server's
		// lifetime: one traced client turns the tracer on for
		// everyone (untraced connections' ops are simply anonymous).
		c.traced = true
		c.srv.db.SetTracing(true)
	}
	c.send(wire.Reply(f.ReqID, wire.StatusOK, wire.AppendHello(nil, reply)))
	c.handshook.Store(true)
	return true
}

// teardown runs when the reader exits: it waits for every outstanding
// request to complete (their acks flow through the writer), then
// closes the response channel so the writer flushes and exits, and
// finally closes the socket.
func (c *conn) teardown() {
	// Draining the semaphore to capacity means no commit callback can
	// still be pending.
	for i := 0; i < cap(c.inflight); i++ {
		c.inflight <- struct{}{}
	}
	close(c.out)
	c.srv.removeConn(c)
}

// writeLoop is the connection's writer half: it serializes response
// frames, batching flushes, each flush bounded by the slow-client
// write deadline.
func (c *conn) writeLoop() {
	defer c.srv.connWG.Done()
	defer func() {
		c.markDead()
		c.closeOnce.Do(func() { c.nc.Close() })
	}()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	timeout := c.srv.cfg.writeTimeout()
	for f := range c.out {
		if err := c.nc.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
		if err := c.writeFrame(bw, &f); err != nil {
			c.srv.m.connErrors.Inc()
			return
		}
		// Opportunistically coalesce queued responses into one flush.
	drain:
		for {
			select {
			case f2, ok := <-c.out:
				if !ok {
					break drain
				}
				if err := c.writeFrame(bw, &f2); err != nil {
					c.srv.m.connErrors.Inc()
					return
				}
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			c.srv.m.connErrors.Inc()
			return
		}
	}
	if err := bw.Flush(); err != nil {
		c.srv.m.connErrors.Inc()
	}
}

// writeFrame encodes one response and accounts its bytes.
func (c *conn) writeFrame(bw *bufio.Writer, f *wire.Frame) error {
	if err := wire.WriteFrame(bw, f); err != nil {
		return err
	}
	n := int64(frameWireSize(f))
	c.bytesOut.Add(n)
	c.srv.m.bytesOut.Add(n)
	return nil
}

// frameWireSize is the on-wire size of a frame.
func frameWireSize(f *wire.Frame) int { return 4 + 1 + 8 + len(f.Payload) }
