//go:build race

package server

// raceEnabled reports whether the race detector is instrumenting this
// build; sync.Pool and allocation accounting behave differently there.
const raceEnabled = true
