package server

import (
	"net/http"
	"time"

	"sealdb/internal/obs"
)

// metrics holds the server's hot-path metric handles, registered into
// the DB's own registry so the engine and its front end share one
// /metrics snapshot.
type metrics struct {
	connsAccepted  *obs.Counter
	connsRejected  *obs.Counter
	connErrors     *obs.Counter
	handshakeFails *obs.Counter
	requests       *obs.Counter
	badRequests    *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	commitErrors   *obs.Counter

	coalescedCommits *obs.Counter
	coalescedReqs    *obs.Histogram
	coalescedEntries *obs.Histogram
	coalesceWait     *obs.Histogram

	getLatency   *obs.Histogram
	scanLatency  *obs.Histogram
	writeLatency *obs.Histogram
}

// newMetrics registers the serving-layer series. Counter semantics:
// requests counts decoded frames, bytes are whole-frame wire sizes,
// write latency spans enqueue → group-commit ack (queueing included),
// and the coalesced histograms record per-group request and entry
// counts — the live view of how well cross-connection batching works.
func newMetrics(reg *obs.Registry, s *Server) *metrics {
	m := &metrics{
		connsAccepted:    reg.Counter("sealdb_server_conns_accepted_total"),
		connsRejected:    reg.Counter("sealdb_server_conns_rejected_total"),
		connErrors:       reg.Counter("sealdb_server_conn_errors_total"),
		handshakeFails:   reg.Counter("sealdb_server_handshake_failures_total"),
		requests:         reg.Counter("sealdb_server_requests_total"),
		badRequests:      reg.Counter("sealdb_server_bad_requests_total"),
		bytesIn:          reg.Counter("sealdb_server_bytes_in_total"),
		bytesOut:         reg.Counter("sealdb_server_bytes_out_total"),
		commitErrors:     reg.Counter("sealdb_server_commit_errors_total"),
		coalescedCommits: reg.Counter("sealdb_server_coalesced_commits_total"),
		coalescedReqs:    reg.Histogram("sealdb_server_coalesced_group_requests"),
		coalescedEntries: reg.Histogram("sealdb_server_coalesced_group_entries"),
		coalesceWait:     reg.Histogram("sealdb_server_coalesce_wait_ns"),
		getLatency:       reg.Histogram("sealdb_server_get_latency_ns"),
		scanLatency:      reg.Histogram("sealdb_server_scan_latency_ns"),
		writeLatency:     reg.Histogram("sealdb_server_write_latency_ns"),
	}
	reg.GaugeFunc("sealdb_server_conns_open", func() float64 {
		return float64(len(s.openConns()))
	})
	reg.GaugeFunc("sealdb_server_inflight", func() float64 {
		var n int64
		for _, c := range s.openConns() {
			n += c.pending.Load()
		}
		return float64(n)
	})
	return m
}

// ConnInfo is one row of the /debug/conns payload.
type ConnInfo struct {
	ID         uint64  `json:"id"`
	Remote     string  `json:"remote"`
	AgeSeconds float64 `json:"age_seconds"`
	Handshook  bool    `json:"handshook"`
	Requests   int64   `json:"requests"`
	Inflight   int64   `json:"inflight"`
	BytesIn    int64   `json:"bytes_in"`
	BytesOut   int64   `json:"bytes_out"`
}

// ConnProfile snapshots every live connection, oldest first.
func (s *Server) ConnProfile() []ConnInfo {
	conns := s.openConns()
	out := make([]ConnInfo, 0, len(conns))
	for _, c := range conns {
		out = append(out, ConnInfo{
			ID:         c.id,
			Remote:     c.remote,
			AgeSeconds: time.Since(c.opened).Seconds(),
			Handshook:  c.handshook.Load(),
			Requests:   c.requests.Load(),
			Inflight:   c.pending.Load(),
			BytesIn:    c.bytesIn.Load(),
			BytesOut:   c.bytesOut.Load(),
		})
	}
	// Stable order for humans curl-ing the endpoint.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Handler returns the serving-layer observability handler: the DB's
// /metrics and /debug endpoints (which now include the server's
// series) plus /debug/conns for per-connection state.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	conns := obs.NewMux()
	conns.HandleJSON("/debug/conns", func() any { return s.ConnProfile() })
	mux.Handle("/debug/conns", conns)
	mux.Handle("/", s.db.ObsHandler())
	return mux
}
