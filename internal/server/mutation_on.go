//go:build sealdb_chaos_mutation

package server

// mutationAckBeforeCommit: this build carries the intentional
// ack-before-WAL-sync bug (see mutation_off.go). Only the chaos
// harness's mutation self-test builds with this tag; it asserts the
// history checker reports the resulting durability violations.
const mutationAckBeforeCommit = true
