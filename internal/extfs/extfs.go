// Package extfs is an ext4-flavoured extent allocator used by the
// LevelDB baseline. Files are carved from 4 KiB blocks with a
// first-fit policy over the holes left by deleted files; fresh space
// is taken from block groups in rotation, the way an aged ext4
// spreads a churning directory of files across the disk. The
// combination makes the SSTables of one compaction scatter across
// distant, previously used disk regions (the paper's Figure 2) and,
// on a fixed-band SMR drive, triggers band read-modify-writes (the
// paper's auxiliary write amplification).
package extfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sealdb/internal/storage"
)

// BlockSize is the allocation granularity, matching ext4's default.
const BlockSize = 4096

// numGroups is how many block groups the surface is divided into.
const numGroups = 64

// ErrNoSpace is returned when neither a hole nor any group's fresh
// space can satisfy a request.
var ErrNoSpace = errors.New("extfs: out of disk space")

// Allocator is a first-fit extent allocator over block groups. It
// implements storage.Allocator.
type Allocator struct {
	mu        sync.Mutex
	capacity  int64
	groupSize int64
	frontiers []int64          // per-group frontier offset (absolute)
	holes     []storage.Extent // sorted by offset, disjoint, merged
	rr        int              // next group for fresh allocations
	groups    bool

	allocs, reuses int64
}

// New creates an allocator over capacity bytes.
func New(capacity int64) *Allocator {
	if capacity <= 0 {
		panic("extfs: non-positive capacity")
	}
	gs := capacity / numGroups / BlockSize * BlockSize
	if gs < 64*BlockSize {
		gs = capacity // small surfaces get a single group
	}
	a := &Allocator{capacity: capacity, groupSize: gs}
	for off := int64(0); off < capacity; off += gs {
		a.frontiers = append(a.frontiers, off)
	}
	return a
}

func roundUp(n int64) int64 {
	return (n + BlockSize - 1) / BlockSize * BlockSize
}

// Alloc implements storage.Allocator: first fit over the holes, then
// fresh space from the groups in rotation.
func (a *Allocator) Alloc(size int64) (storage.Extent, error) {
	if size <= 0 {
		return storage.Extent{}, fmt.Errorf("extfs: invalid size %d", size)
	}
	need := roundUp(size)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.allocs++
	for i, h := range a.holes {
		if h.Len >= need {
			ext := storage.Extent{Off: h.Off, Len: need}
			if h.Len == need {
				a.holes = append(a.holes[:i], a.holes[i+1:]...)
			} else {
				a.holes[i] = storage.Extent{Off: h.Off + need, Len: h.Len - need}
			}
			a.reuses++
			return ext, nil
		}
	}
	return a.allocFreshLocked(need)
}

// allocFreshLocked takes fresh space from the next group (in
// rotation) that can hold the request. Caller holds a.mu.
func (a *Allocator) allocFreshLocked(need int64) (storage.Extent, error) {
	n := len(a.frontiers)
	for tries := 0; tries < n; tries++ {
		g := a.rr % n
		a.rr++
		end := a.groupEnd(g)
		if a.frontiers[g]+need <= end {
			ext := storage.Extent{Off: a.frontiers[g], Len: need}
			a.frontiers[g] += need
			return ext, nil
		}
	}
	return storage.Extent{}, ErrNoSpace
}

func (a *Allocator) groupEnd(g int) int64 {
	end := int64(g+1) * a.groupSize
	if end > a.capacity {
		end = a.capacity
	}
	return end
}

// AllocAppend implements storage.Allocator: logs grow in fresh space,
// as a file system's delayed allocation places a growing file.
func (a *Allocator) AllocAppend(size int64) (storage.Extent, error) {
	if size <= 0 {
		return storage.Extent{}, fmt.Errorf("extfs: invalid size %d", size)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.allocs++
	return a.allocFreshLocked(roundUp(size))
}

// AllocGroup implements storage.Allocator. A plain file system gives
// no contiguity guarantee across files, so group placement is
// refused and the backend falls back to per-file allocation — which
// is exactly the scattering behaviour of the baseline. With
// EnableGroups (the paper's "LevelDB with sets" ablation, which
// preallocates one region per set) a group becomes a single
// contiguous first-fit allocation.
func (a *Allocator) AllocGroup(sizes []int64) (storage.Extent, error) {
	if !a.groups {
		return storage.Extent{}, storage.ErrNoGroupAlloc
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	return a.Alloc(total)
}

// EnableGroups turns on contiguous group allocation (see AllocGroup).
func (a *Allocator) EnableGroups() *Allocator {
	a.groups = true
	return a
}

// Free implements storage.Allocator, merging the hole with adjacent
// holes and with its group's frontier.
func (a *Allocator) Free(e storage.Extent) {
	if e.Len <= 0 {
		return
	}
	e.Len = roundUp(e.Len)
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.holes), func(k int) bool { return a.holes[k].Off >= e.Off })
	// Merge with predecessor.
	if i > 0 && a.holes[i-1].End() == e.Off {
		e = storage.Extent{Off: a.holes[i-1].Off, Len: a.holes[i-1].Len + e.Len}
		i--
		a.holes = append(a.holes[:i], a.holes[i+1:]...)
	}
	// Merge with successor.
	if i < len(a.holes) && e.End() == a.holes[i].Off {
		e.Len += a.holes[i].Len
		a.holes = append(a.holes[:i], a.holes[i+1:]...)
	}
	// Fold into the group frontier when the hole reaches it.
	if g := int(e.Off / a.groupSize); g < len(a.frontiers) && e.End() == a.frontiers[g] {
		a.frontiers[g] = e.Off
		return
	}
	a.holes = append(a.holes, storage.Extent{})
	copy(a.holes[i+1:], a.holes[i:])
	a.holes[i] = e
}

// UsedBytes returns the bytes currently allocated.
func (a *Allocator) UsedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var used int64
	for g, f := range a.frontiers {
		used += f - int64(g)*a.groupSize
	}
	for _, h := range a.holes {
		used -= h.Len
	}
	return used
}

// HighWater returns the highest allocated offset — the spatial
// footprint the paper's Figures 2/11 contrast.
func (a *Allocator) HighWater() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var hw int64
	for g, f := range a.frontiers {
		if f > int64(g)*a.groupSize {
			hw = f
		}
	}
	return hw
}

// Frontier returns the fresh-space frontier of group 0, for tests.
func (a *Allocator) Frontier() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.frontiers[0]
}

// HoleCount returns the number of free holes, for tests.
func (a *Allocator) HoleCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.holes)
}

// ReuseFraction returns the fraction of allocations served from
// holes rather than fresh space.
func (a *Allocator) ReuseFraction() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.allocs == 0 {
		return 0
	}
	return float64(a.reuses) / float64(a.allocs)
}

var _ storage.Allocator = (*Allocator)(nil)
