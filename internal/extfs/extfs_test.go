package extfs

import (
	"math/rand"
	"testing"

	"sealdb/internal/storage"
)

func TestAllocRoundsToBlocks(t *testing.T) {
	a := New(1 << 20)
	e, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len != BlockSize {
		t.Errorf("len %d, want %d", e.Len, BlockSize)
	}
	e2, _ := a.Alloc(BlockSize + 1)
	if e2.Len != 2*BlockSize {
		t.Errorf("len %d, want %d", e2.Len, 2*BlockSize)
	}
	if e2.Off%BlockSize != 0 {
		t.Errorf("second alloc at %d not block aligned", e2.Off)
	}
}

func TestFreshAllocationsSpreadAcrossGroups(t *testing.T) {
	a := New(64 << 20)
	e1, _ := a.Alloc(BlockSize)
	e2, _ := a.Alloc(BlockSize)
	e3, _ := a.Alloc(BlockSize)
	// Rotation: consecutive fresh files land in different block
	// groups (the ext4 aging the paper's Figure 2 observes).
	if e1.Off == e2.Off-BlockSize || e2.Off == e3.Off-BlockSize {
		t.Errorf("fresh allocations adjacent: %v %v %v", e1, e2, e3)
	}
}

func TestFirstFitReusesHoles(t *testing.T) {
	a := New(240 * 1024) // below the group threshold: single group
	e1, _ := a.Alloc(8192)
	a.Alloc(8192) // pin
	e3, _ := a.Alloc(8192)
	a.Alloc(8192) // pin
	a.Free(e1)
	a.Free(e3)
	// New same-size alloc must land in the first hole.
	got, _ := a.Alloc(8192)
	if got.Off != e1.Off {
		t.Errorf("first fit chose %v, want hole at %d", got, e1.Off)
	}
	if a.ReuseFraction() == 0 {
		t.Error("reuse not counted")
	}
}

func TestHoleSplitAndMerge(t *testing.T) {
	a := New(240 * 1024)
	e1, _ := a.Alloc(16384)
	a.Alloc(4096) // pin
	a.Free(e1)
	small, _ := a.Alloc(4096)
	if small.Off != e1.Off {
		t.Fatalf("expected split of hole, got %v", small)
	}
	if a.HoleCount() != 1 {
		t.Fatalf("remainder hole missing: %d holes", a.HoleCount())
	}
	a.Free(small)
	if a.HoleCount() != 1 {
		t.Fatalf("free did not merge with remainder: %d holes", a.HoleCount())
	}
}

func TestAppendAllocatesFreshSpace(t *testing.T) {
	a := New(240 * 1024)
	e1, _ := a.Alloc(8192)
	a.Alloc(4096) // pin
	a.Free(e1)
	// Append allocation must skip the hole and take fresh space.
	log, err := a.AllocAppend(8192)
	if err != nil {
		t.Fatal(err)
	}
	if log.Off == e1.Off {
		t.Error("append allocation reused a hole; logs must grow in fresh space")
	}
	if a.HoleCount() == 0 {
		t.Error("hole should remain")
	}
}

func TestGroupAllocRefused(t *testing.T) {
	a := New(1 << 20)
	if _, err := a.AllocGroup([]int64{100, 200}); err != storage.ErrNoGroupAlloc {
		t.Errorf("err = %v, want ErrNoGroupAlloc", err)
	}
}

func TestFrontierFoldback(t *testing.T) {
	a := New(240 * 1024)
	// Both allocations in group 0: the second must fold back into the
	// group frontier when freed, the first likewise afterwards.
	e1, _ := a.Alloc(4096)
	var e2 storage.Extent
	for {
		e, err := a.Alloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		if e.Off == e1.End() {
			e2 = e
			break
		}
		defer a.Free(e)
	}
	used := a.UsedBytes()
	a.Free(e2)
	if a.UsedBytes() != used-4096 {
		t.Errorf("used %d after free, want %d", a.UsedBytes(), used-4096)
	}
	a.Free(e1)
	if a.Frontier() != 0 {
		t.Errorf("group-0 frontier %d, want 0", a.Frontier())
	}
}

func TestNoSpace(t *testing.T) {
	a := New(8192)
	if _, err := a.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(8192); err != ErrNoSpace {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
}

func TestRandomTrafficInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := New(4 << 20)
	live := map[int64]storage.Extent{}
	for i := 0; i < 5000; i++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			size := int64(1+rng.Intn(4)) * 4096
			e, err := a.Alloc(size)
			if err == ErrNoSpace {
				for k, v := range live {
					a.Free(v)
					delete(live, k)
					break
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			// No overlap with any live extent.
			for _, v := range live {
				if e.Off < v.End() && v.Off < e.End() {
					t.Fatalf("overlap: %v vs %v", e, v)
				}
			}
			live[e.Off] = e
		} else {
			for k, v := range live {
				a.Free(v)
				delete(live, k)
				break
			}
		}
	}
}
