package version

import (
	"fmt"
	"math/rand"
	"testing"

	"sealdb/internal/kv"
)

// TestOverlapsAgainstBruteForce drives the binary-search overlap query
// against a brute-force scan over randomly generated disjoint levels.
func TestOverlapsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		// Build a sorted, disjoint level out of random gaps/widths.
		v := &Version{}
		pos := rng.Intn(10)
		var num uint64 = 1
		for len(v.Files[2]) < 20 && pos < 1000 {
			lo := pos
			hi := lo + rng.Intn(8)
			v.Files[2] = append(v.Files[2], meta(num, key(lo), key(hi)))
			num++
			pos = hi + 1 + rng.Intn(6)
		}
		if err := v.CheckInvariants(allSorted); err != nil {
			t.Fatalf("trial %d: generator broken: %v", trial, err)
		}

		for q := 0; q < 50; q++ {
			a := rng.Intn(1100)
			b := a + rng.Intn(40)
			lo, hi := []byte(key(a)), []byte(key(b))
			if rng.Intn(10) == 0 {
				lo = nil
			}
			if rng.Intn(10) == 0 {
				hi = nil
			}
			got := v.Overlaps(2, lo, hi, true)
			var want []*FileMeta
			for _, f := range v.Files[2] {
				if lo != nil && kv.CompareUser(f.Largest.UserKey(), lo) < 0 {
					continue
				}
				if hi != nil && kv.CompareUser(f.Smallest.UserKey(), hi) > 0 {
					continue
				}
				want = append(want, f)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d query [%q,%q]: got %d files, want %d",
					trial, lo, hi, len(got), len(want))
			}
			for i := range got {
				if got[i].Num != want[i].Num {
					t.Fatalf("trial %d query [%q,%q]: file %d = %v, want %v",
						trial, lo, hi, i, got[i], want[i])
				}
			}
		}
	}
}

func key(i int) string { return fmt.Sprintf("k%06d", i) }

// TestApplySequenceMatchesReference replays random edit sequences
// against both Apply and a plain map-based model.
func TestApplySequenceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := &Version{}
	type ref struct{ level int }
	live := map[uint64]ref{}
	var num uint64 = 1

	for step := 0; step < 500; step++ {
		e := &Edit{}
		// Delete a random pre-existing file half the time (Apply
		// processes deletions before additions, so files added by
		// this same edit are not eligible).
		if len(live) > 4 && rng.Intn(2) == 0 {
			for n, r := range live {
				e.Deleted = append(e.Deleted, DeletedFile{Level: r.level, Num: n})
				delete(live, n)
				break
			}
		}
		// Add 1-3 files at random levels.
		for i := 0; i < 1+rng.Intn(3); i++ {
			lvl := rng.Intn(NumLevels)
			lo := rng.Intn(100000)
			e.Added = append(e.Added, AddedFile{
				Level: lvl,
				Meta:  meta(num, key(lo), key(lo+rng.Intn(5))),
			})
			live[num] = ref{level: lvl}
			num++
		}
		nv, err := e.Apply(v)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		v = nv
		if v.TotalFiles() != len(live) {
			t.Fatalf("step %d: version has %d files, model %d", step, v.TotalFiles(), len(live))
		}
		// Per-level ordering invariant holds (overlap is allowed in
		// this random model, so only check sortedness).
		if err := v.CheckInvariants(func(int) bool { return false }); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
