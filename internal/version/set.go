package version

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sealdb/internal/invariant"
	"sealdb/internal/kv"
	"sealdb/internal/obs"
	"sealdb/internal/storage"
	"sealdb/internal/wal"
)

// CurrentFileNum is the reserved file number of the 8-byte CURRENT
// pointer that names the live MANIFEST, mirroring LevelDB's CURRENT
// file.
const CurrentFileNum uint64 = 0

// Config wires a Set to its storage and level semantics.
type Config struct {
	Backend *storage.Backend
	// ManifestSize is the preallocated size of each MANIFEST file;
	// the set rotates to a fresh manifest when one fills up.
	ManifestSize int64
	// SortedLevel reports whether a level's files must be disjoint
	// (false for the SMRDB baseline's overlapped level 1).
	SortedLevel func(level int) bool
}

// Set owns the current Version and the MANIFEST, and issues file
// numbers and sequence numbers.
type Set struct {
	// mu serializes version edits and manifest appends; profiled as
	// the "version_set_mu" contention site. LogAndApply holds it
	// across the manifest write, so it sits above the storage locks
	// in the hierarchy.
	//
	// lockorder: version_set_mu < storage_write_mu
	// lockorder: version_set_mu < storage_backend_mu
	mu  obs.Mutex
	cfg Config

	current     *Version            // guarded by mu
	manifestNum uint64              // guarded by mu
	manifest    *storage.AppendFile // guarded by mu
	logw        *wal.Writer         // guarded by mu

	nextFile   uint64                    // guarded by mu
	lastSeq    kv.SeqNum                 // guarded by mu
	logNum     uint64                    // guarded by mu
	compactPtr [NumLevels]kv.InternalKey // guarded by mu
	sets       map[uint64]SetRecord      // guarded by mu
	vsegs      map[uint64]VlogSeg        // guarded by mu
}

// VlogSeg is the manifest's view of one value-log segment. Bytes is
// authoritative once Sealed; while a segment is active its true
// length lives on the device and recovery rediscovers it by scanning
// for the last whole record.
type VlogSeg struct {
	Num    uint64
	Bytes  int64
	Dead   int64
	Sealed bool
}

// Create initializes a brand-new database state.
func Create(cfg Config) (*Set, error) {
	if cfg.ManifestSize <= 0 {
		cfg.ManifestSize = 4 << 20
	}
	s := &Set{cfg: cfg, current: &Version{}, nextFile: 1, sets: map[uint64]SetRecord{}, vsegs: map[uint64]VlogSeg{}}
	s.mu.Profile("version_set_mu")
	if err := s.newManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// RecoveryReport describes what Recover found on disk: how much of
// the MANIFEST replayed, and whether a torn or corrupt tail was
// discarded. The observability layer surfaces it at /debug/faults.
type RecoveryReport struct {
	ManifestNum uint64 `json:"manifest_num"`
	// Records is the number of complete edits replayed.
	Records int `json:"records"`
	// SkippedBytes counts manifest bytes dropped as torn or corrupt.
	SkippedBytes int64 `json:"skipped_bytes"`
	// TruncatedTail reports that recovery fell back to the last
	// complete edit, discarding a damaged tail.
	TruncatedTail bool `json:"truncated_tail"`
}

// Recover rebuilds the state from the CURRENT pointer and MANIFEST.
//
// The logical manifest size is not trusted: after a crash it may be
// stale, so the whole reserved extent is scanned and the log framing
// (tagged CRCs, strict mode) decides where the manifest really ends.
// A torn or corrupt tail is not an error — recovery lands on the
// last complete edit, truncates the damage away, and resumes
// appending from there.
func Recover(cfg Config) (*Set, *RecoveryReport, error) {
	if cfg.ManifestSize <= 0 {
		cfg.ManifestSize = 4 << 20
	}
	var cur [8]byte
	if _, err := cfg.Backend.ReadFileAt(CurrentFileNum, cur[:], 0); err != nil && err != io.EOF {
		return nil, nil, fmt.Errorf("version: reading CURRENT: %w", err)
	}
	manifestNum := binary.LittleEndian.Uint64(cur[:])
	size, err := cfg.Backend.ReservedSize(manifestNum)
	if err != nil {
		return nil, nil, fmt.Errorf("version: opening MANIFEST %d: %w", manifestNum, err)
	}
	buf := make([]byte, size)
	if _, err := cfg.Backend.ReadReservedAt(manifestNum, buf, 0); err != nil && err != io.EOF {
		return nil, nil, fmt.Errorf("version: reading MANIFEST %d: %w", manifestNum, err)
	}

	s := &Set{cfg: cfg, current: &Version{}, manifestNum: manifestNum, nextFile: manifestNum + 1, sets: map[uint64]SetRecord{}, vsegs: map[uint64]VlogSeg{}}
	s.mu.Profile("version_set_mu")
	report := &RecoveryReport{ManifestNum: manifestNum}
	r := wal.NewTaggedReader(newBytesReader(buf), manifestNum).Strict()
	var goodEnd int64
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("version: MANIFEST record %d: %w", report.Records, err)
		}
		edit, err := DecodeEdit(rec)
		if err != nil {
			// The frame checksummed but the payload does not decode:
			// treat it like a torn tail and stop at the last good edit.
			report.TruncatedTail = true
			break
		}
		if err := s.applyLocked(edit); err != nil {
			report.TruncatedTail = true
			break
		}
		goodEnd = r.LastRecordEnd()
		report.Records++
	}
	if report.Records == 0 {
		return nil, nil, fmt.Errorf("version: no replayable edit in MANIFEST %d", manifestNum)
	}
	report.SkippedBytes = r.Skipped()
	logical, _ := cfg.Backend.FileSize(manifestNum)
	if goodEnd < logical {
		report.TruncatedTail = true
	}
	if r.Skipped() > 0 {
		report.TruncatedTail = true
	}
	// Construction-time accesses below run before the Set escapes to
	// any other goroutine, so they need no lock.
	if err := s.current.CheckInvariants(cfg.SortedLevel); err != nil { //sealvet:allow guardedby
		return nil, nil, fmt.Errorf("version: recovered state invalid: %w", err)
	}
	// Cut the damaged tail out of the manifest (also retiring its
	// drive validity, so resumed appends cannot overlap it) and
	// continue appending after the last complete edit.
	if err := cfg.Backend.TruncateAppend(manifestNum, goodEnd); err != nil {
		return nil, nil, fmt.Errorf("version: truncating MANIFEST %d to %d: %w", manifestNum, goodEnd, err)
	}
	f, err := cfg.Backend.OpenAppend(manifestNum)
	if err != nil {
		return nil, nil, err
	}
	s.manifest = f                                          //sealvet:allow guardedby
	s.logw = wal.NewReopenedWriter(f, manifestNum, goodEnd) //sealvet:allow guardedby
	return s, report, nil
}

// newBytesReader avoids importing bytes in two places.
func newBytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// applyLocked folds an edit into the in-memory state.
func (s *Set) applyLocked(e *Edit) error {
	nv, err := e.Apply(s.current)
	if err != nil {
		return err
	}
	s.current = nv
	if e.HasLogNum {
		s.logNum = e.LogNum
	}
	if e.HasNextFile && e.NextFileNum > s.nextFile {
		s.nextFile = e.NextFileNum
	}
	if e.HasLastSeq && e.LastSeq > s.lastSeq {
		s.lastSeq = e.LastSeq
	}
	for _, cp := range e.CompactPointers {
		if cp.Level >= 0 && cp.Level < NumLevels {
			s.compactPtr[cp.Level] = cp.Key
		}
	}
	for _, a := range e.Added {
		if a.Meta.Num >= s.nextFile {
			s.nextFile = a.Meta.Num + 1
		}
	}
	for _, sr := range e.NewSets {
		s.sets[sr.ID] = sr
	}
	for _, id := range e.DropSets {
		delete(s.sets, id)
	}
	for _, num := range e.NewVlogSegs {
		s.vsegs[num] = VlogSeg{Num: num}
		if num >= s.nextFile {
			s.nextFile = num + 1
		}
	}
	for _, vr := range e.SealVlogSegs {
		vs := s.vsegs[vr.Num]
		vs.Num, vs.Bytes, vs.Sealed = vr.Num, vr.Bytes, true
		if vs.Dead > vs.Bytes {
			vs.Dead = vs.Bytes
		}
		s.vsegs[vr.Num] = vs
		if vr.Num >= s.nextFile {
			s.nextFile = vr.Num + 1
		}
	}
	for _, dr := range e.VlogDead {
		if vs, ok := s.vsegs[dr.Num]; ok {
			vs.Dead += dr.Dead
			if vs.Sealed && vs.Dead > vs.Bytes {
				vs.Dead = vs.Bytes
			}
			s.vsegs[dr.Num] = vs
		}
	}
	for _, num := range e.DropVlogSegs {
		delete(s.vsegs, num)
	}
	return nil
}

// newManifest starts a fresh MANIFEST containing a snapshot of the
// current state, and repoints CURRENT at it. Caller holds s.mu
// (except during construction, before the Set escapes).
func (s *Set) newManifest() error {
	num := s.nextFile
	s.nextFile++
	f, err := s.cfg.Backend.CreateAppend(num, s.cfg.ManifestSize)
	if err != nil {
		return err
	}
	w := wal.NewTaggedWriter(f, num)
	if err := w.AddRecord(s.snapshotEdit().Encode()); err != nil {
		return err
	}
	// Repoint CURRENT atomically: write-new-then-swap, so a crash
	// leaves CURRENT naming either the old or the new manifest, never
	// a torn pointer.
	var cur [8]byte
	binary.LittleEndian.PutUint64(cur[:], num)
	if err := s.cfg.Backend.ReplaceFile(CurrentFileNum, cur[:]); err != nil {
		return err
	}
	if s.manifestNum != 0 {
		s.cfg.Backend.Remove(s.manifestNum)
	}
	s.manifestNum = num
	s.manifest = f
	s.logw = w
	return nil
}

// snapshotEdit captures the full state as a single edit.
// Caller holds s.mu.
func (s *Set) snapshotEdit() *Edit {
	e := &Edit{
		HasLogNum: true, LogNum: s.logNum,
		HasNextFile: true, NextFileNum: s.nextFile,
		HasLastSeq: true, LastSeq: s.lastSeq,
	}
	for l := 0; l < NumLevels; l++ {
		if s.compactPtr[l] != nil {
			e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: l, Key: s.compactPtr[l]})
		}
		for _, f := range s.current.Files[l] {
			e.Added = append(e.Added, AddedFile{Level: l, Meta: f})
		}
	}
	for _, sr := range s.sets {
		e.NewSets = append(e.NewSets, sr)
	}
	for _, vs := range s.vsegs {
		if vs.Sealed {
			e.SealVlogSegs = append(e.SealVlogSegs, VlogSegRecord{Num: vs.Num, Bytes: vs.Bytes})
		} else {
			e.NewVlogSegs = append(e.NewVlogSegs, vs.Num)
		}
		if vs.Dead > 0 {
			e.VlogDead = append(e.VlogDead, VlogDeadRecord{Num: vs.Num, Dead: vs.Dead})
		}
	}
	return e
}

// LogAndApply makes the edit durable in the MANIFEST and installs the
// successor version.
func (s *Set) LogAndApply(e *Edit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.HasNextFile, e.NextFileNum = true, s.nextFile
	rec := e.Encode()
	// Rotate if the manifest cannot hold this record (generously
	// accounting for WAL framing overhead).
	overhead := int64(len(rec)/wal.BlockSize+2) * 64
	if s.manifest.Size()+int64(len(rec))+overhead > s.cfg.ManifestSize {
		if err := s.applyLocked(e); err != nil {
			return err
		}
		s.checkInvariantsLocked()
		return s.newManifest()
	}
	if err := s.logw.AddRecord(rec); err != nil {
		return err
	}
	if err := s.applyLocked(e); err != nil {
		return err
	}
	s.checkInvariantsLocked()
	return nil
}

// checkInvariantsLocked re-validates the live version's level
// invariants (sorted levels disjoint and ordered, file numbers sane)
// after an edit lands. It only does work under -tags
// sealdb_invariants. Caller holds s.mu.
func (s *Set) checkInvariantsLocked() {
	if !invariant.Enabled {
		return
	}
	if err := s.current.CheckInvariants(s.cfg.SortedLevel); err != nil {
		invariant.Assert(false, "version state invalid after edit: %v", err)
	}
}

// Current returns the live version. The returned value is immutable.
func (s *Set) Current() *Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// NewFileNum issues the next file number.
func (s *Set) NewFileNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nextFile
	s.nextFile++
	return n
}

// LastSeq returns the recovered/persisted last sequence number.
func (s *Set) LastSeq() kv.SeqNum {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// LogNum returns the WAL file number recorded in the manifest.
func (s *Set) LogNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logNum
}

// CompactPointer returns the round-robin cursor of a level.
func (s *Set) CompactPointer(level int) kv.InternalKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactPtr[level]
}

// Sets returns a copy of the live set records.
func (s *Set) Sets() map[uint64]SetRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]SetRecord, len(s.sets))
	for id, sr := range s.sets {
		out[id] = sr
	}
	return out
}

// VlogSegs returns a copy of the live value-log segment records.
func (s *Set) VlogSegs() map[uint64]VlogSeg {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]VlogSeg, len(s.vsegs))
	for num, vs := range s.vsegs {
		out[num] = vs
	}
	return out
}

// ManifestNum returns the live MANIFEST file number (for tests).
func (s *Set) ManifestNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifestNum
}
