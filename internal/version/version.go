// Package version tracks the files of the LSM tree across its
// levels, exactly as LevelDB's version machinery does: an immutable
// Version lists the live SSTables per level; an Edit describes a
// mutation (files added/deleted, log number, sequence number,
// compaction pointers); a Set owns the current version, applies edits
// copy-on-write, and makes them durable in a MANIFEST log.
package version

import (
	"fmt"
	"sort"

	"sealdb/internal/kv"
)

// NumLevels is the depth of the tree. The SMRDB baseline only uses
// levels 0 and 1 of the same structure.
const NumLevels = 7

// FileMeta describes one live SSTable.
type FileMeta struct {
	Num      uint64
	Size     int64
	Smallest kv.InternalKey
	Largest  kv.InternalKey
	// SetID links the file to the set (contiguously stored
	// compaction output group) it belongs to; 0 means none.
	SetID uint64
}

func (f *FileMeta) String() string {
	return fmt.Sprintf("#%d(%s..%s, %dB, set %d)", f.Num, f.Smallest, f.Largest, f.Size, f.SetID)
}

// Version is an immutable snapshot of the tree's file layout.
// Level 0 is ordered oldest-to-newest (ascending file number);
// deeper levels are ordered by smallest key and, except in
// overlapped mode, have pairwise-disjoint user-key ranges.
type Version struct {
	Files [NumLevels][]*FileMeta
}

// NumFiles returns the file count of a level.
func (v *Version) NumFiles(level int) int { return len(v.Files[level]) }

// TotalFiles returns the file count across all levels.
func (v *Version) TotalFiles() int {
	n := 0
	for l := range v.Files {
		n += len(v.Files[l])
	}
	return n
}

// LevelBytes returns the total file bytes of a level.
func (v *Version) LevelBytes(level int) int64 {
	var n int64
	for _, f := range v.Files[level] {
		n += f.Size
	}
	return n
}

// Overlaps returns the files of a level whose user-key range
// intersects [smallest, largest]. Nil bounds mean unbounded. For
// level 0 and overlapped levels every file is checked; for sorted
// levels a binary search finds the run.
func (v *Version) Overlaps(level int, smallest, largest []byte, levelSorted bool) []*FileMeta {
	files := v.Files[level]
	overlap := func(f *FileMeta) bool {
		if smallest != nil && kv.CompareUser(f.Largest.UserKey(), smallest) < 0 {
			return false
		}
		if largest != nil && kv.CompareUser(f.Smallest.UserKey(), largest) > 0 {
			return false
		}
		return true
	}
	if level == 0 || !levelSorted {
		var out []*FileMeta
		for _, f := range files {
			if overlap(f) {
				out = append(out, f)
			}
		}
		return out
	}
	// Sorted, disjoint level: find the first file whose largest key
	// is >= smallest, then take files until one starts past largest.
	i := 0
	if smallest != nil {
		i = sort.Search(len(files), func(k int) bool {
			return kv.CompareUser(files[k].Largest.UserKey(), smallest) >= 0
		})
	}
	var out []*FileMeta
	for ; i < len(files); i++ {
		if largest != nil && kv.CompareUser(files[i].Smallest.UserKey(), largest) > 0 {
			break
		}
		out = append(out, files[i])
	}
	return out
}

// CheckInvariants verifies ordering (and disjointness on sorted
// levels); used by tests and recovery.
func (v *Version) CheckInvariants(sortedLevels func(level int) bool) error {
	for l := 0; l < NumLevels; l++ {
		files := v.Files[l]
		for i := 1; i < len(files); i++ {
			if l == 0 {
				if files[i-1].Num >= files[i].Num {
					return fmt.Errorf("L0 not ordered by file number: %s before %s", files[i-1], files[i])
				}
				continue
			}
			if kv.CompareInternal(files[i-1].Smallest, files[i].Smallest) > 0 {
				return fmt.Errorf("L%d not sorted: %s before %s", l, files[i-1], files[i])
			}
			if sortedLevels != nil && sortedLevels(l) {
				if kv.CompareUser(files[i-1].Largest.UserKey(), files[i].Smallest.UserKey()) >= 0 {
					return fmt.Errorf("L%d overlap: %s and %s", l, files[i-1], files[i])
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the level file lists (the FileMeta
// pointers are shared; they are immutable once installed).
func (v *Version) Clone() *Version {
	nv := &Version{}
	for l := range v.Files {
		nv.Files[l] = append([]*FileMeta(nil), v.Files[l]...)
	}
	return nv
}
