package version

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sealdb/internal/kv"
)

// Edit is a delta applied to a Version and logged to the MANIFEST.
type Edit struct {
	HasLogNum   bool
	LogNum      uint64
	HasNextFile bool
	NextFileNum uint64
	HasLastSeq  bool
	LastSeq     kv.SeqNum

	CompactPointers []CompactPointer
	Deleted         []DeletedFile
	Added           []AddedFile

	// NewSets registers contiguously stored compaction-output groups
	// (the paper's sets); DropSets retires them once every member is
	// dead and the extent has been returned to the free-space list.
	NewSets  []SetRecord
	DropSets []uint64

	// NewVlogSegs registers value-log segments the moment they are
	// created — before any pointer into them can be acknowledged —
	// so recovery never finds a pointer whose segment the manifest
	// does not know. SealVlogSegs freezes a full segment at its
	// final length, making it a GC candidate; VlogDead carries the
	// dead-byte deltas that compaction drops and GC re-puts charge
	// to segments; DropVlogSegs retires a collected segment.
	NewVlogSegs  []uint64
	SealVlogSegs []VlogSegRecord
	VlogDead     []VlogDeadRecord
	DropVlogSegs []uint64
}

// VlogSegRecord seals a value-log segment at its final record length.
type VlogSegRecord struct {
	Num   uint64
	Bytes int64
}

// VlogDeadRecord charges dead bytes to a value-log segment. In an
// incremental edit Dead is a delta; in a manifest snapshot it is the
// absolute count (a delta applied to a fresh version).
type VlogDeadRecord struct {
	Num  uint64
	Dead int64
}

// SetRecord describes a set: a group of SSTables written back to back
// in one extent. Members counts the files originally in the group;
// the live subset is derived from FileMeta.SetID references.
type SetRecord struct {
	ID      uint64
	Off     int64
	Len     int64
	Members int
}

// CompactPointer remembers where round-robin victim selection left
// off in a level.
type CompactPointer struct {
	Level int
	Key   kv.InternalKey
}

// DeletedFile names a file removed from a level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// AddedFile places a file in a level.
type AddedFile struct {
	Level int
	Meta  *FileMeta
}

// Manifest record tags.
const (
	tagLogNum         = 1
	tagNextFileNum    = 2
	tagLastSeq        = 3
	tagCompactPointer = 4
	tagDeletedFile    = 5
	tagAddedFile      = 6
	tagNewSet         = 7
	tagDropSet        = 8
	tagNewVlogSeg     = 9
	tagSealVlogSeg    = 10
	tagVlogDead       = 11
	tagDropVlogSeg    = 12
)

// Encode serializes the edit as one manifest record.
func (e *Edit) Encode() []byte {
	var b []byte
	putUvarint := func(v uint64) { b = binary.AppendUvarint(b, v) }
	putBytes := func(p []byte) {
		putUvarint(uint64(len(p)))
		b = append(b, p...)
	}
	if e.HasLogNum {
		putUvarint(tagLogNum)
		putUvarint(e.LogNum)
	}
	if e.HasNextFile {
		putUvarint(tagNextFileNum)
		putUvarint(e.NextFileNum)
	}
	if e.HasLastSeq {
		putUvarint(tagLastSeq)
		putUvarint(uint64(e.LastSeq))
	}
	for _, cp := range e.CompactPointers {
		putUvarint(tagCompactPointer)
		putUvarint(uint64(cp.Level))
		putBytes(cp.Key)
	}
	for _, d := range e.Deleted {
		putUvarint(tagDeletedFile)
		putUvarint(uint64(d.Level))
		putUvarint(d.Num)
	}
	for _, a := range e.Added {
		putUvarint(tagAddedFile)
		putUvarint(uint64(a.Level))
		putUvarint(a.Meta.Num)
		putUvarint(uint64(a.Meta.Size))
		putUvarint(a.Meta.SetID)
		putBytes(a.Meta.Smallest)
		putBytes(a.Meta.Largest)
	}
	for _, s := range e.NewSets {
		putUvarint(tagNewSet)
		putUvarint(s.ID)
		putUvarint(uint64(s.Off))
		putUvarint(uint64(s.Len))
		putUvarint(uint64(s.Members))
	}
	for _, id := range e.DropSets {
		putUvarint(tagDropSet)
		putUvarint(id)
	}
	for _, num := range e.NewVlogSegs {
		putUvarint(tagNewVlogSeg)
		putUvarint(num)
	}
	for _, s := range e.SealVlogSegs {
		putUvarint(tagSealVlogSeg)
		putUvarint(s.Num)
		putUvarint(uint64(s.Bytes))
	}
	for _, d := range e.VlogDead {
		putUvarint(tagVlogDead)
		putUvarint(d.Num)
		putUvarint(uint64(d.Dead))
	}
	for _, num := range e.DropVlogSegs {
		putUvarint(tagDropVlogSeg)
		putUvarint(num)
	}
	return b
}

// DecodeEdit parses a manifest record.
func DecodeEdit(p []byte) (*Edit, error) {
	e := &Edit{}
	pos := 0
	getUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("version: truncated varint at %d", pos)
		}
		pos += n
		return v, nil
	}
	getBytes := func() ([]byte, error) {
		n, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(n) > len(p) {
			return nil, fmt.Errorf("version: truncated bytes at %d", pos)
		}
		out := append([]byte(nil), p[pos:pos+int(n)]...)
		pos += int(n)
		return out, nil
	}
	for pos < len(p) {
		tag, err := getUvarint()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagLogNum:
			v, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.HasLogNum, e.LogNum = true, v
		case tagNextFileNum:
			v, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.HasNextFile, e.NextFileNum = true, v
		case tagLastSeq:
			v, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.HasLastSeq, e.LastSeq = true, kv.SeqNum(v)
		case tagCompactPointer:
			lvl, err := getUvarint()
			if err != nil {
				return nil, err
			}
			key, err := getBytes()
			if err != nil {
				return nil, err
			}
			e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: int(lvl), Key: key})
		case tagDeletedFile:
			lvl, err := getUvarint()
			if err != nil {
				return nil, err
			}
			num, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.Deleted = append(e.Deleted, DeletedFile{Level: int(lvl), Num: num})
		case tagAddedFile:
			lvl, err := getUvarint()
			if err != nil {
				return nil, err
			}
			num, err := getUvarint()
			if err != nil {
				return nil, err
			}
			size, err := getUvarint()
			if err != nil {
				return nil, err
			}
			setID, err := getUvarint()
			if err != nil {
				return nil, err
			}
			smallest, err := getBytes()
			if err != nil {
				return nil, err
			}
			largest, err := getBytes()
			if err != nil {
				return nil, err
			}
			e.Added = append(e.Added, AddedFile{
				Level: int(lvl),
				Meta: &FileMeta{
					Num: num, Size: int64(size), SetID: setID,
					Smallest: smallest, Largest: largest,
				},
			})
		case tagNewSet:
			var vals [4]uint64
			for i := range vals {
				v, err := getUvarint()
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			e.NewSets = append(e.NewSets, SetRecord{
				ID: vals[0], Off: int64(vals[1]), Len: int64(vals[2]), Members: int(vals[3]),
			})
		case tagDropSet:
			id, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.DropSets = append(e.DropSets, id)
		case tagNewVlogSeg:
			num, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.NewVlogSegs = append(e.NewVlogSegs, num)
		case tagSealVlogSeg:
			num, err := getUvarint()
			if err != nil {
				return nil, err
			}
			bytes, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.SealVlogSegs = append(e.SealVlogSegs, VlogSegRecord{Num: num, Bytes: int64(bytes)})
		case tagVlogDead:
			num, err := getUvarint()
			if err != nil {
				return nil, err
			}
			dead, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.VlogDead = append(e.VlogDead, VlogDeadRecord{Num: num, Dead: int64(dead)})
		case tagDropVlogSeg:
			num, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.DropVlogSegs = append(e.DropVlogSegs, num)
		default:
			return nil, fmt.Errorf("version: unknown manifest tag %d", tag)
		}
	}
	return e, nil
}

// Apply builds the successor version of v under this edit. Levels of
// added files must be < NumLevels.
func (e *Edit) Apply(v *Version) (*Version, error) {
	nv := v.Clone()
	for _, d := range e.Deleted {
		if d.Level < 0 || d.Level >= NumLevels {
			return nil, fmt.Errorf("version: delete at bad level %d", d.Level)
		}
		files := nv.Files[d.Level]
		found := false
		for i, f := range files {
			if f.Num == d.Num {
				nv.Files[d.Level] = append(append([]*FileMeta(nil), files[:i]...), files[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("version: deleting unknown file %d at L%d", d.Num, d.Level)
		}
	}
	for _, a := range e.Added {
		if a.Level < 0 || a.Level >= NumLevels {
			return nil, fmt.Errorf("version: add at bad level %d", a.Level)
		}
		nv.Files[a.Level] = append(append([]*FileMeta(nil), nv.Files[a.Level]...), a.Meta)
	}
	// Restore ordering.
	for l := 0; l < NumLevels; l++ {
		files := nv.Files[l]
		if l == 0 {
			sort.SliceStable(files, func(i, j int) bool { return files[i].Num < files[j].Num })
		} else if l > 0 {
			sort.SliceStable(files, func(i, j int) bool {
				return kv.CompareInternal(files[i].Smallest, files[j].Smallest) < 0
			})
		}
	}
	return nv, nil
}
