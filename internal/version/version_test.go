package version

import (
	"fmt"
	"reflect"
	"testing"

	"sealdb/internal/dband"
	"sealdb/internal/kv"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
	"sealdb/internal/storage"
)

func ik(u string, seq kv.SeqNum) kv.InternalKey {
	return kv.MakeInternalKey(nil, []byte(u), seq, kv.KindSet)
}

func meta(num uint64, lo, hi string) *FileMeta {
	return &FileMeta{Num: num, Size: 100, Smallest: ik(lo, 100), Largest: ik(hi, 1)}
}

func allSorted(int) bool { return true }

func TestEditEncodeDecodeRoundTrip(t *testing.T) {
	e := &Edit{
		HasLogNum: true, LogNum: 42,
		HasNextFile: true, NextFileNum: 99,
		HasLastSeq: true, LastSeq: 12345,
		CompactPointers: []CompactPointer{{Level: 2, Key: ik("ptr", 5)}},
		Deleted:         []DeletedFile{{Level: 1, Num: 7}, {Level: 3, Num: 8}},
		Added: []AddedFile{
			{Level: 2, Meta: &FileMeta{Num: 10, Size: 4096, SetID: 3, Smallest: ik("a", 9), Largest: ik("m", 2)}},
		},
	}
	got, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestDecodeEditErrors(t *testing.T) {
	if _, err := DecodeEdit([]byte{0xff}); err == nil {
		t.Error("truncated varint accepted")
	}
	if _, err := DecodeEdit([]byte{99}); err == nil {
		t.Error("unknown tag accepted")
	}
	// Truncated bytes field in a compact pointer.
	bad := (&Edit{CompactPointers: []CompactPointer{{Level: 1, Key: ik("abcdef", 1)}}}).Encode()
	if _, err := DecodeEdit(bad[:len(bad)-3]); err == nil {
		t.Error("truncated key accepted")
	}
}

func TestApplyAddDelete(t *testing.T) {
	v := &Version{}
	e1 := &Edit{Added: []AddedFile{
		{Level: 1, Meta: meta(5, "m", "p")},
		{Level: 1, Meta: meta(4, "a", "c")},
		{Level: 0, Meta: meta(7, "a", "z")},
		{Level: 0, Meta: meta(6, "b", "x")},
	}}
	v2, err := e1.Apply(v)
	if err != nil {
		t.Fatal(err)
	}
	// L1 sorted by smallest, L0 by file number.
	if v2.Files[1][0].Num != 4 || v2.Files[1][1].Num != 5 {
		t.Errorf("L1 order: %v", v2.Files[1])
	}
	if v2.Files[0][0].Num != 6 || v2.Files[0][1].Num != 7 {
		t.Errorf("L0 order: %v", v2.Files[0])
	}
	if err := v2.CheckInvariants(allSorted); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if v.TotalFiles() != 0 {
		t.Error("Apply mutated its input")
	}

	e2 := &Edit{Deleted: []DeletedFile{{Level: 1, Num: 4}}}
	v3, err := e2.Apply(v2)
	if err != nil {
		t.Fatal(err)
	}
	if v3.NumFiles(1) != 1 || v3.Files[1][0].Num != 5 {
		t.Errorf("delete failed: %v", v3.Files[1])
	}
	// Deleting a missing file errors.
	if _, err := e2.Apply(v3); err == nil {
		t.Error("double delete accepted")
	}
}

func TestOverlapsSortedLevel(t *testing.T) {
	v := &Version{}
	v.Files[2] = []*FileMeta{
		meta(1, "a", "c"),
		meta(2, "e", "g"),
		meta(3, "i", "k"),
		meta(4, "m", "o"),
	}
	cases := []struct {
		lo, hi string
		want   []uint64
	}{
		{"b", "b", []uint64{1}},
		{"c", "e", []uint64{1, 2}},
		{"d", "d", nil},
		{"a", "z", []uint64{1, 2, 3, 4}},
		{"j", "n", []uint64{3, 4}},
		{"p", "z", nil},
	}
	for _, c := range cases {
		got := v.Overlaps(2, []byte(c.lo), []byte(c.hi), true)
		var nums []uint64
		for _, f := range got {
			nums = append(nums, f.Num)
		}
		if !reflect.DeepEqual(nums, c.want) {
			t.Errorf("Overlaps(%q,%q) = %v, want %v", c.lo, c.hi, nums, c.want)
		}
	}
	// Unbounded queries.
	if got := v.Overlaps(2, nil, nil, true); len(got) != 4 {
		t.Errorf("unbounded overlap returned %d files", len(got))
	}
	if got := v.Overlaps(2, []byte("f"), nil, true); len(got) != 3 {
		t.Errorf("lower-bounded overlap returned %d files", len(got))
	}
}

func TestOverlapsUnsortedLevel(t *testing.T) {
	v := &Version{}
	// Overlapping files, as in the SMRDB baseline's level 1.
	v.Files[1] = []*FileMeta{
		meta(1, "a", "m"),
		meta(2, "c", "z"),
		meta(3, "x", "z"),
	}
	got := v.Overlaps(1, []byte("b"), []byte("d"), false)
	if len(got) != 2 {
		t.Errorf("overlapped-level query returned %d files, want 2", len(got))
	}
}

func TestCheckInvariantsCatchesOverlap(t *testing.T) {
	v := &Version{}
	v.Files[1] = []*FileMeta{meta(1, "a", "f"), meta(2, "c", "k")}
	if err := v.CheckInvariants(allSorted); err == nil {
		t.Error("overlap not detected")
	}
	if err := v.CheckInvariants(func(int) bool { return false }); err != nil {
		t.Errorf("overlapped mode should accept: %v", err)
	}
}

func newTestBackend() *storage.Backend {
	disk := platter.New(platter.DefaultConfig(64 << 20))
	drive := smr.NewRaw(disk, 4096)
	mgr := dband.New(disk.Capacity(), 4096, 4096)
	return storage.NewBackend(drive, storage.NewDynamicBandAllocator(mgr))
}

func TestSetCreateLogRecover(t *testing.T) {
	backend := newTestBackend()
	s, err := Create(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	// Issue numbers, add files over several edits.
	f1 := s.NewFileNum()
	e1 := &Edit{
		HasLastSeq: true, LastSeq: 500,
		HasLogNum: true, LogNum: 77,
		Added: []AddedFile{{Level: 0, Meta: meta(f1, "a", "m")}},
	}
	if err := s.LogAndApply(e1); err != nil {
		t.Fatal(err)
	}
	f2 := s.NewFileNum()
	e2 := &Edit{
		Added:           []AddedFile{{Level: 1, Meta: meta(f2, "n", "z")}},
		CompactPointers: []CompactPointer{{Level: 1, Key: ik("n", 1)}},
	}
	if err := s.LogAndApply(e2); err != nil {
		t.Fatal(err)
	}

	r, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	if r.LastSeq() != 500 {
		t.Errorf("lastSeq %d, want 500", r.LastSeq())
	}
	if r.LogNum() != 77 {
		t.Errorf("logNum %d, want 77", r.LogNum())
	}
	cur := r.Current()
	if cur.NumFiles(0) != 1 || cur.Files[0][0].Num != f1 {
		t.Errorf("L0 after recovery: %v", cur.Files[0])
	}
	if cur.NumFiles(1) != 1 || cur.Files[1][0].Num != f2 {
		t.Errorf("L1 after recovery: %v", cur.Files[1])
	}
	if string(r.CompactPointer(1).UserKey()) != "n" {
		t.Errorf("compact pointer lost: %v", r.CompactPointer(1))
	}
	// New file numbers do not collide with recovered ones.
	if n := r.NewFileNum(); n <= f2 {
		t.Errorf("file number %d collides (f2=%d)", n, f2)
	}

	// The recovered set can continue logging and recover again.
	f3 := r.NewFileNum()
	if err := r.LogAndApply(&Edit{Added: []AddedFile{{Level: 2, Meta: meta(f3, "q", "r")}}}); err != nil {
		t.Fatal(err)
	}
	r2, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Current().NumFiles(2) != 1 {
		t.Error("edit after recovery lost")
	}
}

func TestManifestRotation(t *testing.T) {
	backend := newTestBackend()
	s, err := Create(Config{Backend: backend, ManifestSize: 16 << 10, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	first := s.ManifestNum()
	// Push enough edits to overflow a 16 KiB manifest.
	var lastAdded uint64
	for i := 0; i < 400; i++ {
		num := s.NewFileNum()
		lo := fmt.Sprintf("k%06d", i*2)
		hi := fmt.Sprintf("k%06d", i*2+1)
		e := &Edit{Added: []AddedFile{{Level: 2, Meta: meta(num, lo, hi)}}}
		if i > 0 {
			e.Deleted = []DeletedFile{{Level: 2, Num: lastAdded}}
		}
		lastAdded = num
		if err := s.LogAndApply(e); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}
	if s.ManifestNum() == first {
		t.Fatal("manifest never rotated")
	}
	r, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	if r.Current().NumFiles(2) != 1 || r.Current().Files[2][0].Num != lastAdded {
		t.Errorf("state after rotation: %v", r.Current().Files[2])
	}
}

func TestRecoverMissingCurrent(t *testing.T) {
	backend := newTestBackend()
	if _, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted}); err == nil {
		t.Error("recovery with no CURRENT accepted")
	}
}
