package version

import (
	"testing"
)

// TestRecoverCorruptManifest: damage in the MANIFEST must yield a
// clean error (or a consistent prefix), never a panic or silent
// garbage.
func TestRecoverCorruptManifest(t *testing.T) {
	backend := newTestBackend()
	s, err := Create(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		num := s.NewFileNum()
		lo := key(i * 2)
		hi := key(i*2 + 1)
		if err := s.LogAndApply(&Edit{Added: []AddedFile{{Level: 2, Meta: meta(num, lo, hi)}}}); err != nil {
			t.Fatal(err)
		}
	}
	manifest := s.ManifestNum()
	size, _ := backend.FileSize(manifest)
	ext, _ := backend.FileExtent(manifest)

	// Flip bytes throughout the manifest body via the drive and try
	// recovery each time.
	for _, off := range []int64{10, size / 3, size / 2, size - 10} {
		if off >= size {
			continue
		}
		// Corrupt (read-modify the platter content directly).
		disk := backend.Drive().Disk()
		orig := make([]byte, 4)
		disk.ReadAt(orig, ext.Off+off)
		disk.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, ext.Off+off)

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("offset %d: Recover panicked: %v", off, r)
				}
			}()
			r, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
			if err == nil && r.Current().TotalFiles() > 50 {
				t.Fatalf("offset %d: corrupt manifest produced %d files", off, r.Current().TotalFiles())
			}
		}()

		// Restore for the next trial.
		disk.WriteAt(orig, ext.Off+off)
	}

	// Untouched again: recovery works.
	r, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	if r.Current().NumFiles(2) != 50 {
		t.Fatalf("restored manifest recovered %d files", r.Current().NumFiles(2))
	}
}
