package version

import (
	"testing"
)

// TestRecoverManifestCutAtEveryBoundary: truncate the MANIFEST at
// every record boundary (and between boundaries, mid-record) and
// check that recovery lands exactly on the last complete edit.
func TestRecoverManifestCutAtEveryBoundary(t *testing.T) {
	const edits = 25
	backend := newTestBackend()
	s, err := Create(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	// boundaries[i] = manifest size after i edits (i=0: just the
	// creation snapshot). A cut in [boundaries[i], boundaries[i+1])
	// must recover exactly i applied edits.
	size0, err := backend.FileSize(s.ManifestNum())
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int64{size0}
	for i := 0; i < edits; i++ {
		num := s.NewFileNum()
		if err := s.LogAndApply(&Edit{Added: []AddedFile{{Level: 2, Meta: meta(num, key(i*2), key(i*2+1))}}}); err != nil {
			t.Fatal(err)
		}
		sz, err := backend.FileSize(s.ManifestNum())
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, sz)
	}
	manifest := s.ManifestNum()
	ext, err := backend.FileExtent(manifest)
	if err != nil {
		t.Fatal(err)
	}
	full := boundaries[len(boundaries)-1]
	disk := backend.Drive().Disk()

	// Walk the cut point from the end toward the start, zeroing the
	// platter tail past each cut — each trial only extends the
	// previous trial's damage, so no restore step is needed.
	type trial struct {
		cut       int64
		wantFiles int
		midRecord bool
	}
	var trials []trial
	for i := len(boundaries) - 1; i >= 1; i-- {
		trials = append(trials, trial{cut: boundaries[i], wantFiles: i})
		// A mid-record cut between boundary i-1 and i recovers i-1.
		mid := (boundaries[i-1] + boundaries[i]) / 2
		if mid > boundaries[i-1] && mid < boundaries[i] {
			trials = append(trials, trial{cut: mid, wantFiles: i - 1, midRecord: true})
		}
	}
	trials = append(trials, trial{cut: boundaries[0], wantFiles: 0})

	for _, tr := range trials {
		zero := make([]byte, full-tr.cut)
		if _, err := disk.WriteAt(zero, ext.Off+tr.cut); err != nil {
			t.Fatalf("cut %d: zeroing tail: %v", tr.cut, err)
		}
		r, report, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
		if err != nil {
			t.Fatalf("cut %d: Recover failed: %v", tr.cut, err)
		}
		if got := r.Current().NumFiles(2); got != tr.wantFiles {
			t.Fatalf("cut %d: recovered %d files, want %d", tr.cut, got, tr.wantFiles)
		}
		// A mid-record cut leaves a torn frame the report must flag.
		// (Boundary cuts may look clean once an earlier trial has
		// already truncated the logical size to the same point.)
		if tr.midRecord && !report.TruncatedTail {
			t.Errorf("cut %d: report did not flag the torn record", tr.cut)
		}
	}

	// A cut inside the creation snapshot leaves nothing replayable:
	// that is the one case recovery must refuse.
	zero := make([]byte, full-boundaries[0]/2)
	if _, err := disk.WriteAt(zero, ext.Off+boundaries[0]/2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted}); err == nil {
		t.Fatal("recovery with no complete edit accepted")
	}
}

// TestRecoverResumesAfterTruncatedTail: after recovering from a torn
// manifest tail, the set must keep logging edits and survive another
// recovery — the resumed writer and the truncated file agree on
// framing.
func TestRecoverResumesAfterTruncatedTail(t *testing.T) {
	backend := newTestBackend()
	s, err := Create(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		num := s.NewFileNum()
		if err := s.LogAndApply(&Edit{Added: []AddedFile{{Level: 2, Meta: meta(num, key(i*2), key(i*2+1))}}}); err != nil {
			t.Fatal(err)
		}
	}
	manifest := s.ManifestNum()
	size, _ := backend.FileSize(manifest)
	ext, _ := backend.FileExtent(manifest)
	// Tear the last record: scribble over its final 3 bytes (the
	// encoded edit may end in zeros, so zeroing would not damage it).
	disk := backend.Drive().Disk()
	disk.WriteAt([]byte{0xff, 0xff, 0xff}, ext.Off+size-3)

	r, report, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	if !report.TruncatedTail {
		t.Error("torn tail not reported")
	}
	if got := r.Current().NumFiles(2); got != 9 {
		t.Fatalf("recovered %d files, want 9", got)
	}
	// Log a new edit over the truncated tail and recover again.
	num := r.NewFileNum()
	if err := r.LogAndApply(&Edit{Added: []AddedFile{{Level: 2, Meta: meta(num, key(100), key(101))}}}); err != nil {
		t.Fatalf("logging after truncation: %v", err)
	}
	r2, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Current().NumFiles(2); got != 10 {
		t.Fatalf("second recovery got %d files, want 10", got)
	}
}

// TestRecoverCorruptManifest: damage in the MANIFEST must yield a
// clean error (or a consistent prefix), never a panic or silent
// garbage.
func TestRecoverCorruptManifest(t *testing.T) {
	backend := newTestBackend()
	s, err := Create(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		num := s.NewFileNum()
		lo := key(i * 2)
		hi := key(i*2 + 1)
		if err := s.LogAndApply(&Edit{Added: []AddedFile{{Level: 2, Meta: meta(num, lo, hi)}}}); err != nil {
			t.Fatal(err)
		}
	}
	manifest := s.ManifestNum()
	size, _ := backend.FileSize(manifest)
	ext, _ := backend.FileExtent(manifest)

	// Flip bytes throughout the manifest body via the drive and try
	// recovery each time.
	for _, off := range []int64{10, size / 3, size / 2, size - 10} {
		if off >= size {
			continue
		}
		// Corrupt (read-modify the platter content directly).
		disk := backend.Drive().Disk()
		orig := make([]byte, 4)
		disk.ReadAt(orig, ext.Off+off)
		disk.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, ext.Off+off)

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("offset %d: Recover panicked: %v", off, r)
				}
			}()
			r, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
			if err == nil && r.Current().TotalFiles() > 50 {
				t.Fatalf("offset %d: corrupt manifest produced %d files", off, r.Current().TotalFiles())
			}
		}()

		// Restore for the next trial.
		disk.WriteAt(orig, ext.Off+off)
	}

	// Untouched again: recovery works.
	r, _, err := Recover(Config{Backend: backend, SortedLevel: allSorted})
	if err != nil {
		t.Fatal(err)
	}
	if r.Current().NumFiles(2) != 50 {
		t.Fatalf("restored manifest recovered %d files", r.Current().NumFiles(2))
	}
}
