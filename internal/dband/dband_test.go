package dband

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

const (
	tUnit  = 1024 // one "SSTable"
	tGuard = 1024
	tCap   = 1 << 20
)

func newMgr() *Manager { return New(tCap, tUnit, tGuard) }

func TestAppendsAreContiguous(t *testing.T) {
	m := newMgr()
	var pos int64
	for i := 0; i < 10; i++ {
		e, inserted, err := m.Alloc(3000)
		if err != nil {
			t.Fatal(err)
		}
		if inserted {
			t.Fatal("fresh manager should append, not insert")
		}
		if e.Off != pos || e.Len != 3000 {
			t.Fatalf("alloc %d: got %v, want off %d", i, e, pos)
		}
		pos += 3000
	}
	if m.Frontier() != pos {
		t.Errorf("frontier %d, want %d", m.Frontier(), pos)
	}
	if s := m.Stats(); s.Appends != 10 || s.Inserts != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestInsertRequiresGuardHeadroom(t *testing.T) {
	m := newMgr()
	a, _, _ := m.Alloc(4096)
	b, _, _ := m.Alloc(4096) // downstream neighbour keeps hole interior
	_ = b
	m.Free(a) // hole of 4096 at offset 0

	// A request of exactly holeSize-guard fits (Equation 1 boundary).
	e, inserted, err := m.Alloc(4096 - tGuard)
	if err != nil || !inserted {
		t.Fatalf("boundary insert failed: %v inserted=%v", err, inserted)
	}
	if e.Off != a.Off {
		t.Errorf("insert placed at %d, want hole start %d", e.Off, a.Off)
	}
	// The remaining guard-sized region must still be tracked as free.
	if m.FreeBytes() != tGuard {
		t.Errorf("free bytes %d, want %d (the guard remainder)", m.FreeBytes(), tGuard)
	}
}

func TestTooLargeForHoleAppends(t *testing.T) {
	m := newMgr()
	a, _, _ := m.Alloc(4096)
	m.Alloc(4096)
	m.Free(a)
	// 4096-byte request needs 4096+guard: hole too small → append.
	e, inserted, err := m.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if inserted {
		t.Error("hole without guard headroom should not be used")
	}
	if e.Off != 8192 {
		t.Errorf("append at %d, want 8192", e.Off)
	}
}

func TestSplitReturnsRemainder(t *testing.T) {
	m := newMgr()
	a, _, _ := m.Alloc(10 * tUnit)
	m.Alloc(tUnit) // pin downstream
	m.Free(a)
	e, inserted, _ := m.Alloc(2 * tUnit)
	if !inserted || e.Off != a.Off {
		t.Fatalf("expected insert at hole start, got %v inserted=%v", e, inserted)
	}
	// Remainder 8*unit returned to the list and still usable.
	if m.FreeBytes() != 8*tUnit {
		t.Fatalf("free bytes %d, want %d", m.FreeBytes(), 8*tUnit)
	}
	e2, inserted2, _ := m.Alloc(2 * tUnit)
	if !inserted2 || e2.Off != e.End() {
		t.Fatalf("second insert should continue in remainder: %v inserted=%v", e2, inserted2)
	}
	if s := m.Stats(); s.Splits < 1 {
		t.Errorf("splits not counted: %+v", s)
	}
}

func TestCoalesceNeighbours(t *testing.T) {
	m := newMgr()
	a, _, _ := m.Alloc(4096)
	b, _, _ := m.Alloc(4096)
	c, _, _ := m.Alloc(4096)
	m.Alloc(4096) // pin so frontier folding doesn't kick in
	m.Free(a)
	m.Free(c)
	if n := len(m.FreeRegions()); n != 2 {
		t.Fatalf("expected 2 regions, got %d", n)
	}
	m.Free(b) // bridges a and c
	regions := m.FreeRegions()
	if len(regions) != 1 || regions[0] != (Extent{0, 12288}) {
		t.Fatalf("coalesce failed: %v", regions)
	}
	if s := m.Stats(); s.Coalesces != 2 {
		t.Errorf("coalesces = %d, want 2", s.Coalesces)
	}
}

func TestFrontierFoldback(t *testing.T) {
	m := newMgr()
	a, _, _ := m.Alloc(4096)
	b, _, _ := m.Alloc(4096)
	m.Free(b)
	if m.Frontier() != 4096 {
		t.Errorf("frontier %d, want 4096 after tail free", m.Frontier())
	}
	if m.FreeBytes() != 0 {
		t.Errorf("tail free space should fold into frontier, free=%d", m.FreeBytes())
	}
	m.Free(a)
	if m.Frontier() != 0 {
		t.Errorf("frontier %d, want 0 after everything freed", m.Frontier())
	}
}

func TestNoSpace(t *testing.T) {
	m := New(10*tUnit, tUnit, tGuard)
	if _, _, err := m.Alloc(11 * tUnit); err != ErrNoSpace {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
	if _, _, err := m.Alloc(-1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestBandsCensus(t *testing.T) {
	m := newMgr()
	var exts []Extent
	for i := 0; i < 6; i++ {
		e, _, _ := m.Alloc(2048)
		exts = append(exts, e)
	}
	m.Free(exts[1])
	m.Free(exts[3])
	bands := m.Bands()
	// Allocated runs: [0], [2], [4,5] → three bands.
	want := []Extent{{0, 2048}, {4096, 2048}, {8192, 4096}}
	if len(bands) != len(want) {
		t.Fatalf("bands = %v, want %v", bands, want)
	}
	for i := range want {
		if bands[i] != want[i] {
			t.Fatalf("band %d = %v, want %v", i, bands[i], want[i])
		}
	}
}

func TestFragmentBytes(t *testing.T) {
	m := newMgr()
	a, _, _ := m.Alloc(512)
	m.Alloc(2048)
	b, _, _ := m.Alloc(8192)
	m.Alloc(2048)
	m.Free(a)
	m.Free(b)
	if got := m.FragmentBytes(1024); got != 512 {
		t.Errorf("FragmentBytes(1024) = %d, want 512", got)
	}
	if got := m.FragmentBytes(100000); got != 512+8192 {
		t.Errorf("FragmentBytes(big) = %d, want %d", got, 512+8192)
	}
}

// TestAllocatorInvariants drives random alloc/free traffic and checks
// the global invariants after every operation:
//   - live extents are pairwise disjoint,
//   - free regions are disjoint, maximal (never adjacent), within
//     [0, frontier), and never adjacent to the frontier,
//   - byte accounting: frontier = live + free bytes,
//   - drive-level safety: replaying every Alloc as a write and every
//     Free as a trim against a real smr.RawDrive with the same guard
//     never produces an overlap error (Equation 1 end to end).
func TestAllocatorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := New(4<<20, tUnit, tGuard)
	drive := smr.NewRaw(platter.New(platter.DefaultConfig(4<<20)), tGuard)
	live := map[int64]Extent{}

	check := func(step int) {
		t.Helper()
		var les []Extent
		for _, e := range live {
			les = append(les, e)
		}
		sort.Slice(les, func(i, j int) bool { return les[i].Off < les[j].Off })
		var liveBytes int64
		for i, e := range les {
			liveBytes += e.Len
			if i > 0 && les[i-1].End() > e.Off {
				t.Fatalf("step %d: live extents overlap: %v %v", step, les[i-1], e)
			}
		}
		free := m.FreeRegions()
		var freeBytes int64
		for i, f := range free {
			freeBytes += f.Len
			if f.Len <= 0 {
				t.Fatalf("step %d: non-positive free region %v", step, f)
			}
			if i > 0 && free[i-1].End() >= f.Off {
				t.Fatalf("step %d: free regions not coalesced: %v %v", step, free[i-1], f)
			}
			if f.End() > m.Frontier() {
				t.Fatalf("step %d: free region %v past frontier %d", step, f, m.Frontier())
			}
			if f.End() == m.Frontier() {
				t.Fatalf("step %d: free region %v touches frontier (should fold)", step, f)
			}
		}
		if liveBytes+freeBytes != m.Frontier() {
			t.Fatalf("step %d: accounting: live %d + free %d != frontier %d",
				step, liveBytes, freeBytes, m.Frontier())
		}
	}

	freeOne := func() {
		for k, v := range live {
			m.Free(v)
			if err := drive.Free(v.Off, v.Len); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
			break
		}
	}

	for step := 0; step < 3000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			size := int64(1+rng.Intn(5)) * tUnit / 2
			e, _, err := m.Alloc(size)
			if err == ErrNoSpace {
				freeOne()
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			// Drive-level check: this write must be legal under the
			// shingling rules (never-overlap-valid plus guard).
			if _, err := drive.WriteAt(make([]byte, e.Len), e.Off); err != nil {
				t.Fatalf("step %d: allocator produced an illegal SMR write: %v", step, err)
			}
			live[e.Off] = e
		} else {
			freeOne()
		}
		if step%50 == 0 {
			check(step)
		}
	}
	check(3000)
	if awa := smr.AWA(drive); awa != 1.0 {
		t.Errorf("AWA = %v, want exactly 1.0 under dynamic band management", awa)
	}
}

func TestGuardRemainderRecoveredByCoalesce(t *testing.T) {
	// An exact-fit insert leaves a guard-sized remainder that is
	// unusable alone but must come back when a neighbour dies.
	m := newMgr()
	a, _, _ := m.Alloc(4096)
	b, _, _ := m.Alloc(4096)
	m.Alloc(512) // pin
	m.Free(a)
	e, inserted, _ := m.Alloc(4096 - tGuard)
	if !inserted {
		t.Fatal("expected insert")
	}
	_ = e
	// Guard remainder [3072, 4096) is free but unusable.
	if _, ins2, _ := m.Alloc(1); ins2 {
		t.Error("guard remainder should not satisfy any insert")
	}
	m.Free(b) // now [3072, 8192) coalesces
	e3, ins3, _ := m.Alloc(4096 + tGuard - tGuard)
	if !ins3 || e3.Off != 3072 {
		t.Errorf("coalesced region not reused: %v inserted=%v", e3, ins3)
	}
}

// TestAllocPropertyQuick uses testing/quick to fuzz allocation sizes:
// every returned extent is within capacity, non-overlapping with all
// currently live extents, and respects Equation 1 when inserted.
func TestAllocPropertyQuick(t *testing.T) {
	type op struct {
		Size uint16
		Free bool
	}
	f := func(ops []op) bool {
		m := New(1<<20, 1024, 512)
		live := map[int64]Extent{}
		for _, o := range ops {
			if o.Free && len(live) > 0 {
				for k, e := range live {
					m.Free(e)
					delete(live, k)
					break
				}
				continue
			}
			size := int64(o.Size%8192) + 1
			e, _, err := m.Alloc(size)
			if err == ErrNoSpace {
				continue
			}
			if err != nil {
				return false
			}
			if e.Off < 0 || e.End() > m.Capacity() || e.Len != size {
				return false
			}
			for _, other := range live {
				if e.Off < other.End() && other.Off < e.End() {
					return false
				}
			}
			live[e.Off] = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
