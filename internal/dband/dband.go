// Package dband implements the paper's dynamic band management: a
// host-side space manager for a raw (write-anywhere, never-overlap)
// SMR surface.
//
// Data is normally appended at a frontier; free space recovered from
// dead sets is kept in a free-space list — a sorted array of
// doubly-linked lists where array element i holds regions of roughly
// i SSTable-size units — and a write of size S may be inserted into a
// free region of size ≥ S + guard, leaving at least one guard region
// of unwritten tracks between the insert and the valid data
// downstream of it (Equation 1 of the paper). Freed regions coalesce
// with their free neighbours, and free space that reaches the
// frontier folds back into it.
//
// The allocator never hands out overlapping extents and always
// preserves the guard invariant, so a store driving an smr.RawDrive
// through this manager never triggers an overlap error and incurs an
// auxiliary write amplification of exactly 1.
package dband

import (
	"errors"
	"fmt"
	"sort"

	"sealdb/internal/invariant"
	"sealdb/internal/obs"
)

// ErrNoSpace is returned when neither the free list nor the frontier
// can satisfy an allocation.
var ErrNoSpace = errors.New("dband: out of disk space")

// Extent is a half-open byte range [Off, Off+Len).
type Extent struct {
	Off, Len int64
}

// End returns the first byte past the extent.
func (e Extent) End() int64 { return e.Off + e.Len }

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Off, e.End()) }

// Stats counts allocator activity.
type Stats struct {
	Appends   int64 // allocations served at the frontier
	Inserts   int64 // allocations served from the free list
	Splits    int64 // inserts that left a usable remainder region
	Frees     int64
	Coalesces int64 // neighbour merges performed by Free
}

// region is a free-space region, a node of one class list.
type region struct {
	off, length int64
	prev, next  *region
	class       int
}

// Manager allocates extents on a raw SMR surface.
type Manager struct {
	// mu serializes allocator state; profiled as the
	// "dband_manager_mu" contention site. The obs wrapper's clock is
	// threaded from outside this package (obs.SetLockClock), keeping
	// dband inside the noclock determinism contract.
	mu obs.Mutex

	capacity int64
	unit     int64 // size-class granularity (one SSTable)
	guard    int64 // guard-region size reserved downstream of inserts

	frontier int64             // guarded by mu
	classes  []list            // classes[i]: regions with length in [i*unit, (i+1)*unit); last class open-ended; guarded by mu
	byStart  map[int64]*region // guarded by mu
	byEnd    map[int64]*region // keyed by region end offset; guarded by mu
	freeByte int64             // total bytes in the free list; guarded by mu

	stats Stats // guarded by mu

	// observer, when set, sees every allocator event: op is
	// "alloc_append" (frontier), "alloc_insert" (free-list reuse) or
	// "free". Called with the manager lock held; the observer must
	// not call back into the manager. guarded by mu.
	observer func(op string, e Extent)
}

// list is an intrusive doubly-linked list of regions.
type list struct {
	head, tail *region
}

func (l *list) pushBack(r *region) {
	r.prev, r.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = r
	} else {
		l.head = r
	}
	l.tail = r
}

func (l *list) remove(r *region) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		l.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		l.tail = r.prev
	}
	r.prev, r.next = nil, nil
}

const maxClasses = 1 << 12

// New creates a manager for a surface of the given capacity. unit is
// the free-list size-class granularity (the paper aligns it with the
// SSTable size); guard is the guard-region size (Equation 1).
func New(capacity, unit, guard int64) *Manager {
	if capacity <= 0 || unit <= 0 || guard < 0 {
		panic("dband: invalid geometry")
	}
	n := capacity/unit + 2
	if n > maxClasses {
		n = maxClasses
	}
	m := &Manager{
		capacity: capacity,
		unit:     unit,
		guard:    guard,
		classes:  make([]list, n),
		byStart:  make(map[int64]*region),
		byEnd:    make(map[int64]*region),
	}
	m.mu.Profile("dband_manager_mu")
	return m
}

// SetObserver installs fn to observe allocator events (nil removes
// it). fn runs with the manager lock held and must not call back into
// the manager.
func (m *Manager) SetObserver(fn func(op string, e Extent)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observer = fn
}

// notify reports an event to the observer. Caller holds m.mu.
func (m *Manager) notify(op string, e Extent) {
	if m.observer != nil {
		m.observer(op, e)
	}
}

// Guard returns the guard-region size.
func (m *Manager) Guard() int64 { return m.guard }

// Capacity returns the managed capacity in bytes.
func (m *Manager) Capacity() int64 { return m.capacity }

// classOf maps a region length to its free-list size class.
// Caller holds m.mu.
func (m *Manager) classOf(length int64) int {
	c := int(length / m.unit)
	if c >= len(m.classes) {
		c = len(m.classes) - 1
	}
	return c
}

// addRegion links a new free region into the size-class lists and
// offset indexes. Caller holds m.mu.
func (m *Manager) addRegion(off, length int64) *region {
	r := &region{off: off, length: length, class: m.classOf(length)}
	m.classes[r.class].pushBack(r)
	m.byStart[off] = r
	m.byEnd[off+length] = r
	m.freeByte += length
	return r
}

// removeRegion unlinks a free region from the size-class lists and
// offset indexes. Caller holds m.mu.
func (m *Manager) removeRegion(r *region) {
	m.classes[r.class].remove(r)
	delete(m.byStart, r.off)
	delete(m.byEnd, r.off+r.length)
	m.freeByte -= r.length
}

// checkInvariants validates the allocator's internal accounting: each
// free region is filed in the class matching its length, indexed by
// both endpoints, disjoint from every other region, entirely below
// the frontier, and the region lengths sum to freeByte. It only does
// work under -tags sealdb_invariants. Caller holds m.mu.
func (m *Manager) checkInvariants() {
	if !invariant.Enabled {
		return
	}
	var regions []*region
	var sum int64
	for c := range m.classes {
		for r := m.classes[c].head; r != nil; r = r.next {
			invariant.Assert(r.length > 0, "free region [%d,%d) has non-positive length", r.off, r.off+r.length)
			invariant.Assert(r.class == c && m.classOf(r.length) == c,
				"region [%d,%d) filed in class %d, expected %d", r.off, r.off+r.length, c, m.classOf(r.length))
			invariant.Assert(m.byStart[r.off] == r, "byStart[%d] does not point at its region", r.off)
			invariant.Assert(m.byEnd[r.off+r.length] == r, "byEnd[%d] does not point at its region", r.off+r.length)
			invariant.Assert(r.off+r.length <= m.frontier,
				"free region [%d,%d) extends past the frontier %d", r.off, r.off+r.length, m.frontier)
			regions = append(regions, r)
			sum += r.length
		}
	}
	invariant.Assert(len(regions) == len(m.byStart) && len(regions) == len(m.byEnd),
		"index sizes (byStart %d, byEnd %d) disagree with %d listed regions", len(m.byStart), len(m.byEnd), len(regions))
	invariant.Assert(sum == m.freeByte, "free-list bytes %d != freeByte counter %d", sum, m.freeByte)
	invariant.Assert(m.frontier >= 0 && m.frontier <= m.capacity, "frontier %d outside [0,%d]", m.frontier, m.capacity)
	sort.Slice(regions, func(i, j int) bool { return regions[i].off < regions[j].off })
	for i := 1; i < len(regions); i++ {
		prev, cur := regions[i-1], regions[i]
		invariant.Assert(prev.off+prev.length <= cur.off,
			"free regions [%d,%d) and [%d,%d) overlap", prev.off, prev.off+prev.length, cur.off, cur.off+cur.length)
	}
}

// Alloc reserves an extent of exactly size bytes. It first searches
// the free list (binary search over the class array, then the class's
// list) for a region of at least size+guard bytes; failing that it
// appends at the frontier, where no guard is needed because nothing
// valid lies downstream. The returned bool reports whether the extent
// was inserted into reclaimed free space.
func (m *Manager) Alloc(size int64) (Extent, bool, error) {
	if size <= 0 {
		return Extent{}, false, fmt.Errorf("dband: invalid alloc size %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if invariant.Enabled {
		defer m.checkInvariants()
	}

	need := size + m.guard
	if r := m.findFit(need); r != nil {
		m.removeRegion(r)
		ext := Extent{Off: r.off, Len: size}
		rem := r.length - size
		// rem >= guard by the fit condition. The remainder stays a
		// free region; the guard invariant holds because any future
		// insert into it again reserves size+guard, so the last
		// guard bytes upstream of the valid data at r.End() are
		// never written.
		m.addRegion(r.off+size, rem)
		m.stats.Inserts++
		if rem > m.guard {
			m.stats.Splits++
		}
		m.notify("alloc_insert", ext)
		return ext, true, nil
	}

	if m.frontier+size > m.capacity {
		return Extent{}, false, ErrNoSpace
	}
	ext := Extent{Off: m.frontier, Len: size}
	m.frontier += size
	m.stats.Appends++
	m.notify("alloc_append", ext)
	return ext, false, nil
}

// findFit performs the free-list search: the first class whose floor
// can hold need is located with a binary search (sort.Search); the
// class list at the boundary class is scanned first-fit because its
// regions straddle need, while any region of a higher class fits by
// construction. Caller holds m.mu.
func (m *Manager) findFit(need int64) *region {
	k := m.classOf(need)
	// Boundary class (and the open-ended last class): first fit.
	for r := m.classes[k].head; r != nil; r = r.next {
		if r.length >= need {
			return r
		}
	}
	// Walk up the class array for the next non-empty class. Any
	// region of class c > k has length >= c*unit >= (k+1)*unit >
	// need, so its head fits by construction.
	for c := k + 1; c < len(m.classes); c++ {
		if r := m.classes[c].head; r != nil {
			return r
		}
	}
	return nil
}

// Free returns an extent to the manager, coalescing it with adjacent
// free regions and folding tail space back into the frontier.
func (m *Manager) Free(e Extent) {
	if e.Len <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if invariant.Enabled {
		defer m.checkInvariants()
	}
	m.stats.Frees++
	m.notify("free", e)

	off, end := e.Off, e.End()
	if up := m.byEnd[off]; up != nil {
		m.removeRegion(up)
		off = up.off
		m.stats.Coalesces++
	}
	if down := m.byStart[end]; down != nil {
		m.removeRegion(down)
		end = down.off + down.length
		m.stats.Coalesces++
	}
	if end == m.frontier {
		// The freed run touches the not-yet-banded residual space:
		// pull the frontier back instead of keeping a region.
		m.frontier = off
		return
	}
	m.addRegion(off, end-off)
}

// Stats returns a snapshot of the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Frontier returns the current append frontier (the start of the
// residual, never-written space).
func (m *Manager) Frontier() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frontier
}

// FreeBytes returns the total bytes held in the free list (excluding
// the residual space past the frontier).
func (m *Manager) FreeBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.freeByte
}

// FreeRegions returns the free-list regions sorted by offset.
func (m *Manager) FreeRegions() []Extent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Extent, 0, len(m.byStart))
	for _, r := range m.byStart {
		out = append(out, Extent{Off: r.off, Len: r.length})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// Bands returns the dynamic bands currently on the surface: the
// maximal allocated runs between free regions within [0, frontier).
// This is the data Figure 13 of the paper plots.
func (m *Manager) Bands() []Extent {
	free := m.FreeRegions()
	m.mu.Lock()
	frontier := m.frontier
	m.mu.Unlock()
	var bands []Extent
	pos := int64(0)
	for _, f := range free {
		if f.Off > pos {
			bands = append(bands, Extent{Off: pos, Len: f.Off - pos})
		}
		pos = f.End()
	}
	if frontier > pos {
		bands = append(bands, Extent{Off: pos, Len: frontier - pos})
	}
	return bands
}

// FragmentBytes sums the free regions smaller than threshold — the
// hard-to-reuse fragments the paper's §IV-C cost analysis reports.
func (m *Manager) FragmentBytes(threshold int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, r := range m.byStart {
		if r.length < threshold {
			t += r.length
		}
	}
	return t
}

// AllocatedBytes returns frontier minus free-list bytes: the bytes
// currently reserved by live extents (including unreclaimable guard
// remainders still inside the free list are *not* counted).
func (m *Manager) AllocatedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frontier - m.freeByte
}

// FragProfile summarizes free-space fragmentation on the surface at
// one instant: how many holes the free list holds, how much of the
// free space sits in the single largest hole, where the append
// frontier is, and a 0–1 fragmentation index. The index is
// 1 − largest/free: 0 when the free space is one contiguous run (or
// there is none at all), approaching 1 as the free bytes shatter into
// many equally-useless holes.
type FragProfile struct {
	Holes       int     `json:"holes"`
	FreeBytes   int64   `json:"free_bytes"`
	LargestFree int64   `json:"largest_free"`
	Frontier    int64   `json:"frontier"`
	Capacity    int64   `json:"capacity"`
	Index       float64 `json:"index"`
}

// FragProfile computes the fragmentation profile under one lock hold,
// so the hole count, byte totals and frontier are mutually consistent.
func (m *Manager) FragProfile() FragProfile {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := FragProfile{
		Holes:     len(m.byStart),
		FreeBytes: m.freeByte,
		Frontier:  m.frontier,
		Capacity:  m.capacity,
	}
	for _, r := range m.byStart {
		if r.length > p.LargestFree {
			p.LargestFree = r.length
		}
	}
	if p.FreeBytes > 0 {
		p.Index = 1 - float64(p.LargestFree)/float64(p.FreeBytes)
	}
	return p
}
