package dband

import (
	"math/rand"
	"testing"
)

func BenchmarkAllocFreeChurn(b *testing.B) {
	m := New(1<<30, 256<<10, 256<<10)
	rng := rand.New(rand.NewSource(1))
	live := make([]Extent, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) > 512 || (len(live) > 0 && rng.Intn(3) == 0) {
			j := rng.Intn(len(live))
			m.Free(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		e, _, err := m.Alloc(int64(1+rng.Intn(10)) * 256 << 10)
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, e)
	}
}
