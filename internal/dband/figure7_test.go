package dband

import "testing"

// TestPaperFigure7Sequence replays the paper's Figure 7 walkthrough
// at its original sizes (4 MiB guard, sets of 16/24/20/12/4/8 MiB)
// and checks each intermediate on-disk state.
func TestPaperFigure7Sequence(t *testing.T) {
	const mb = 1 << 20
	m := New(1<<30, 4*mb, 4*mb)

	// (1) Three sets appended sequentially.
	set1, ins, err := m.Alloc(16 * mb)
	if err != nil || ins {
		t.Fatalf("set1: %v ins=%v", err, ins)
	}
	set2, _, _ := m.Alloc(24 * mb)
	set3, _, _ := m.Alloc(20 * mb)
	if set2.Off != 16*mb || set3.Off != 40*mb {
		t.Fatalf("appends not sequential: %v %v", set2, set3)
	}

	// (2) Sets 1 and 3 compact: freed, regenerated sets appended.
	m.Free(set1)
	set1b, ins, _ := m.Alloc(16 * mb)
	if ins {
		// A 16 MiB insert into the 16 MiB hole would need a guard on
		// top (Equation 1), so it must append instead.
		t.Fatalf("set1' inserted into an exact-size hole: %v", set1b)
	}
	if set1b.Off != 60*mb {
		t.Fatalf("set1' at %v, want appended at 60 MiB", set1b)
	}
	m.Free(set3)
	set3b, _, _ := m.Alloc(20 * mb)
	if set3b.Off != 76*mb {
		t.Fatalf("set3' at %v", set3b)
	}

	// (3) Set 4 (12 MiB) inserts into set 1's old 16 MiB hole,
	// splitting it into data plus exactly one guard region.
	set4, ins, _ := m.Alloc(12 * mb)
	if !ins || set4.Off != 0 {
		t.Fatalf("set4: %v ins=%v", set4, ins)
	}
	if free := m.FreeRegions(); len(free) < 1 || free[0] != (Extent{12 * mb, 4 * mb}) {
		t.Fatalf("guard remainder missing: %v", free)
	}

	// (4) Undo and redo with a 4 MiB set 4: the remaining 12 MiB
	// region then serves an 8 MiB set 5 with only one gap before
	// set 2.
	m.Free(set4)
	set4, _, _ = m.Alloc(4 * mb)
	if set4.Off != 0 {
		t.Fatalf("small set4 at %v", set4)
	}
	set5, ins, _ := m.Alloc(8 * mb)
	if !ins || set5.Off != 4*mb {
		t.Fatalf("set5: %v ins=%v, want inserted right after set4", set5, ins)
	}
	// Free space now: the 4 MiB gap before set 2 and set 3's old hole.
	if free := m.FreeRegions(); len(free) != 2 ||
		free[0] != (Extent{12 * mb, 4 * mb}) || free[1] != (Extent{40 * mb, 20 * mb}) {
		t.Fatalf("after set5, free regions: %v", free)
	}

	// (5) Set 1' dies: its space coalesces with the free region
	// between set 3's old space... here, with the hole left by set 3.
	m.Free(set1b)
	var found bool
	for _, f := range m.FreeRegions() {
		if f == (Extent{40 * mb, 36 * mb}) {
			found = true // set3's old 20 MiB + set1's 16 MiB coalesced
		}
	}
	if !found {
		t.Fatalf("coalesce of set3-hole and set1' missing: %v", m.FreeRegions())
	}

	// (6) The resulting dynamic bands: valid runs of varying sizes.
	bands := m.Bands()
	if len(bands) < 3 {
		t.Fatalf("expected several dynamic bands, got %v", bands)
	}
	// Set 2 (24 MiB at 16 MiB) must be an intact band region.
	if bands[1] != (Extent{16 * mb, 24 * mb}) {
		t.Fatalf("band holding set 2: %v", bands[1])
	}
}
