// Fragmentation-index edge cases: the 0–1 index must behave sanely
// on the degenerate surfaces the churn scenario passes through — an
// empty drive, a fully-packed frontier with no holes, a single hole,
// a pathological alternating-hole free list — and the accounting must
// be stable across free-list coalescing (the profile of a surface
// depends only on which bytes are free, not on the order the frees
// arrived in).
package dband

import (
	"math"
	"testing"
)

func TestFragProfileEmptyDrive(t *testing.T) {
	m := newMgr()
	p := m.FragProfile()
	if p.Holes != 0 || p.FreeBytes != 0 || p.LargestFree != 0 {
		t.Fatalf("empty drive should have no holes: %+v", p)
	}
	if p.Frontier != 0 || p.Capacity != tCap {
		t.Fatalf("frontier/capacity wrong: %+v", p)
	}
	if p.Index != 0 {
		t.Fatalf("empty drive index = %g, want 0", p.Index)
	}
}

func TestFragProfilePackedFrontier(t *testing.T) {
	m := newMgr()
	for i := 0; i < 8; i++ {
		if _, _, err := m.Alloc(4 * tUnit); err != nil {
			t.Fatal(err)
		}
	}
	p := m.FragProfile()
	if p.Holes != 0 || p.FreeBytes != 0 {
		t.Fatalf("packed frontier should have no holes: %+v", p)
	}
	if p.Frontier != 32*tUnit {
		t.Fatalf("frontier %d, want %d", p.Frontier, 32*tUnit)
	}
	if p.Index != 0 {
		t.Fatalf("packed frontier index = %g, want 0", p.Index)
	}
}

func TestFragProfileSingleHole(t *testing.T) {
	m := newMgr()
	var exts []Extent
	for i := 0; i < 4; i++ {
		e, _, err := m.Alloc(4 * tUnit)
		if err != nil {
			t.Fatal(err)
		}
		exts = append(exts, e)
	}
	m.Free(exts[1]) // interior extent: one hole, frontier untouched
	p := m.FragProfile()
	if p.Holes != 1 || p.FreeBytes != 4*tUnit || p.LargestFree != 4*tUnit {
		t.Fatalf("single hole profile wrong: %+v", p)
	}
	if p.Index != 0 {
		t.Fatalf("one hole holds all free space, index = %g, want 0", p.Index)
	}
}

// TestFragProfileAlternatingHoles frees every other extent: n equal
// holes give index 1 − 1/n, the pathological shape approaching 1.
func TestFragProfileAlternatingHoles(t *testing.T) {
	m := newMgr()
	var exts []Extent
	for i := 0; i < 41; i++ {
		e, _, err := m.Alloc(4 * tUnit)
		if err != nil {
			t.Fatal(err)
		}
		exts = append(exts, e)
	}
	// Free extents 1, 3, 5, ... 39: 20 equal interior holes that can
	// never coalesce because their neighbours stay allocated.
	for i := 1; i < 40; i += 2 {
		m.Free(exts[i])
	}
	p := m.FragProfile()
	if p.Holes != 20 || p.FreeBytes != 20*4*tUnit || p.LargestFree != 4*tUnit {
		t.Fatalf("alternating holes profile wrong: %+v", p)
	}
	want := 1 - 1.0/20
	if math.Abs(p.Index-want) > 1e-12 {
		t.Fatalf("alternating holes index = %g, want %g", p.Index, want)
	}
}

// TestFragProfileCoalescingStability frees three adjacent extents in
// every arrival order: the final profile must be identical (one
// coalesced hole), because the profile is a function of the surface,
// not of the free-list history.
func TestFragProfileCoalescingStability(t *testing.T) {
	orders := [][]int{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
	}
	var want FragProfile
	for i, order := range orders {
		m := newMgr()
		var exts []Extent
		for j := 0; j < 5; j++ {
			e, _, err := m.Alloc(4 * tUnit)
			if err != nil {
				t.Fatal(err)
			}
			exts = append(exts, e)
		}
		for _, j := range order {
			m.Free(exts[j])
		}
		p := m.FragProfile()
		if p.Holes != 1 || p.FreeBytes != 12*tUnit || p.LargestFree != 12*tUnit || p.Index != 0 {
			t.Fatalf("order %v: coalesced profile wrong: %+v", order, p)
		}
		if i == 0 {
			want = p
			continue
		}
		if p != want {
			t.Fatalf("order %v: profile %+v differs from first order's %+v", order, p, want)
		}
	}
}
