// Package lsm implements the key-value engine: a leveled LSM tree in
// the LevelDB architecture (memtable + WAL, L0 flushes, leveled
// compactions, MANIFEST recovery), parameterized into the three
// systems the paper evaluates:
//
//   - ModeLevelDB: the baseline. Seven levels; SSTables placed by an
//     ext4-like first-fit allocator on a fixed-band SMR drive, so
//     compaction I/O scatters and triggers band read-modify-writes.
//   - ModeLevelDBSets: the Figure 14 ablation. Same placement policy
//     and drive, but compaction outputs are grouped into sets and
//     written contiguously.
//   - ModeSMRDB: the SMRDB baseline. Two levels, SSTables enlarged to
//     the band size, one dedicated band per SSTable, level 1 may hold
//     overlapping key ranges.
//   - ModeSEALDB: the paper's system. Seven levels, compaction unit =
//     victim + its set, outputs written contiguously into dynamic
//     bands on a raw (write-anywhere) SMR drive.
package lsm

import (
	"fmt"
	"time"

	"sealdb/internal/kv"
	"sealdb/internal/smr"
	"sealdb/internal/sstable"
)

// Mode selects which of the paper's systems the engine behaves as.
type Mode int

const (
	ModeLevelDB Mode = iota
	ModeLevelDBSets
	ModeSMRDB
	ModeSEALDB
)

func (m Mode) String() string {
	switch m {
	case ModeLevelDB:
		return "leveldb"
	case ModeLevelDBSets:
		return "leveldb+sets"
	case ModeSMRDB:
		return "smrdb"
	case ModeSEALDB:
		return "sealdb"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Geometry holds every size parameter of the system. The paper's
// geometry is 4 MiB SSTables, 40 MiB bands (10 SSTables), 4 MiB
// guard regions; DefaultGeometry scales all of it by 1/16 so that
// experiments run at laptop scale with every ratio preserved.
type Geometry struct {
	// SSTableSize is the compaction output target (and the dynamic
	// band free-list class unit).
	SSTableSize int64
	// BandSize is the fixed SMR band size for the LevelDB/SMRDB
	// drives. The paper's default is 10 SSTables.
	BandSize int64
	// GuardSize is the raw drive's damage window / the guard region
	// reserved by dynamic band inserts. The paper uses one SSTable.
	GuardSize int64
	// MemtableSize is the write-buffer rotation threshold.
	MemtableSize int64
	// L0CompactTrigger is the L0 file count that starts compaction.
	L0CompactTrigger int
	// BaseLevelBytes is the size limit of L1; level i holds
	// BaseLevelBytes * LevelMultiplier^(i-1).
	BaseLevelBytes int64
	// LevelMultiplier is the amplification factor between adjacent
	// levels (10 in the paper).
	LevelMultiplier int64
	// NumLevels is the tree depth (7, or 2 for SMRDB).
	NumLevels int
	// MaxCompactionFiles caps the fan-in of one SMRDB compaction
	// (its levels overlap, so the cap bounds merge width).
	MaxCompactionFiles int
	// DiskCapacity is the emulated device size.
	DiskCapacity int64
	// ManifestSize is the preallocated MANIFEST extent size.
	ManifestSize int64
	// BlockCacheSize bounds the shared block cache.
	BlockCacheSize int64
	// MaxOpenTables bounds the table-reader cache (LevelDB's
	// max_open_files). 0 means the default of 1000, LevelDB 1.19's.
	MaxOpenTables int
	// DeviceTimeScale multiplies the emulated drive's seek and
	// rotational latency. A geometry scaled to 1/k of the paper's
	// sizes sets this to 1/k so the seek-to-transfer cost ratio *per
	// SSTable* stays what it is at full scale; without it, shrinking
	// sizes silently turns every workload seek-bound.
	DeviceTimeScale float64
}

// ScaledGeometry derives a full geometry from an SSTable size,
// preserving every ratio of the paper's setup: band = 10 SSTables,
// guard = memtable = 1 SSTable, L1 target = 10 SSTables, AF = 10.
// The block cache is kept small relative to the data (8 SSTables),
// mirroring LevelDB's 8 MiB default against a 100 GiB store.
func ScaledGeometry(sst, diskCapacity int64) Geometry {
	return Geometry{
		SSTableSize:        sst,
		BandSize:           10 * sst,
		GuardSize:          sst,
		MemtableSize:       sst,
		L0CompactTrigger:   4,
		BaseLevelBytes:     10 * sst,
		LevelMultiplier:    10,
		NumLevels:          7,
		MaxCompactionFiles: 24,
		DiskCapacity:       diskCapacity,
		ManifestSize:       clampInt64(32*sst, kv.MiB, 8*kv.MiB),
		BlockCacheSize:     8 * sst,
		DeviceTimeScale:    float64(sst) / float64(4*kv.MiB),
	}
}

// DefaultGeometry returns the 1/16-scale geometry used throughout the
// experiments: 256 KiB SSTables, 2.5 MiB bands, 256 KiB guards.
func DefaultGeometry() Geometry {
	return ScaledGeometry(256*kv.KiB, 8*kv.GiB)
}

// PaperGeometry returns the paper's full-scale geometry (4 MiB
// SSTables, 40 MiB bands, 8 MiB block cache as in LevelDB 1.19).
func PaperGeometry() Geometry {
	g := ScaledGeometry(4*kv.MiB, 64*kv.GiB)
	g.BlockCacheSize = 8 * kv.MiB
	g.DeviceTimeScale = 1
	return g
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Config assembles a DB.
type Config struct {
	Mode Mode
	Geometry
	// Compression selects the SSTable block encoding (default: none,
	// like the paper's LevelDB 1.19 configuration without snappy).
	Compression sstable.Compression
	// Seed makes skiplist heights (and nothing else) deterministic.
	Seed int64
	// JournalCapacity bounds the observability event journal ring
	// (0 means the default of 4096 events).
	JournalCapacity int
	// Trace configures the request tracer (see trace.go); the zero
	// value leaves tracing off with default sampling thresholds.
	Trace TraceConfig
	// WrapDrive, if set, wraps the mode's drive before the backend is
	// built on it — the hook fault injectors use to sit between the
	// engine and the media. Allocators and drive-introspection paths
	// see through the wrapper via smr.Base.
	WrapDrive func(smr.Drive) smr.Drive
	// WriteRetries is the number of extra attempts granted to a
	// device write that fails with a transient error (0 means the
	// default of 3; negative disables retries).
	WriteRetries int
	// RetryBackoff is the wait before the first retry, doubling each
	// attempt; it is charged as simulated device time (0 means the
	// default of 200µs).
	RetryBackoff time.Duration
	// ValueThreshold enables key–value separation: values of at least
	// this many bytes are appended to the value log and the tree
	// stores a fixed-size pointer instead, so large values stop
	// riding through compactions. 0 (the default) disables the value
	// log entirely and the tree stores every value inline.
	ValueThreshold int
	// VlogSegSize is the value-log segment size (0 means one SSTable,
	// so segments ride the dynamic-band free-list class unit).
	VlogSegSize int64
	// VlogGCDeadRatio is the dead-byte fraction at which a sealed
	// segment becomes a garbage-collection victim (0 means the
	// default of 0.5; negative disables automatic collection).
	VlogGCDeadRatio float64
	// SurfaceSnapshotInterval is the simulated-device-time interval
	// between periodic storage-surface snapshot journal events
	// (space_snapshot plus one band_snapshot per allocated band) in
	// dynamic-band mode. 0 (the default) disables periodic snapshots;
	// DB.SurfaceSnapshot still emits one on demand.
	SurfaceSnapshotInterval time.Duration
}

// vlogEnabled reports whether this config separates values.
func (c *Config) vlogEnabled() bool { return c.ValueThreshold > 0 }

// vlogSegSize resolves the segment size.
func (c *Config) vlogSegSize() int64 {
	if c.VlogSegSize > 0 {
		return c.VlogSegSize
	}
	return c.SSTableSize
}

// vlogGCDeadRatio resolves the GC trigger ratio; +Inf when automatic
// collection is disabled.
func (c *Config) vlogGCDeadRatio() float64 {
	switch {
	case c.VlogGCDeadRatio < 0:
		return 2 // unreachable ratio: never triggers
	case c.VlogGCDeadRatio == 0:
		return 0.5
	}
	return c.VlogGCDeadRatio
}

// surfaceSnapshotEvery resolves the periodic surface-snapshot
// interval in device nanoseconds (0 = disabled).
func (c *Config) surfaceSnapshotEvery() int64 {
	if c.SurfaceSnapshotInterval <= 0 {
		return 0
	}
	return int64(c.SurfaceSnapshotInterval)
}

// writeRetries resolves the retry budget.
func (c *Config) writeRetries() int {
	if c.WriteRetries < 0 {
		return 0
	}
	if c.WriteRetries == 0 {
		return 3
	}
	return c.WriteRetries
}

// retryBackoff resolves the initial retry backoff.
func (c *Config) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 200 * time.Microsecond
	}
	return c.RetryBackoff
}

// DefaultConfig returns a config for the given mode with the scaled
// default geometry, applying the mode's structural parameters (SMRDB
// gets two levels and band-sized SSTables).
func DefaultConfig(mode Mode) Config {
	cfg := Config{Mode: mode, Geometry: DefaultGeometry(), Seed: 1}
	cfg.applyMode()
	return cfg
}

// applyMode imposes the structural choices of the mode onto the
// geometry, as the paper describes each system.
func (c *Config) applyMode() {
	if c.Mode == ModeSMRDB {
		// "Enlarging SSTables to the band size, assigning SSTables to
		// dedicated bands and reserving only two levels."
		c.NumLevels = 2
		c.SSTableSize = c.BandSize
		c.MemtableSize = c.BandSize
	}
}

// sortedLevel reports whether files of a level must have disjoint
// ranges. SMRDB permits overlap in its non-L0 level.
func (c *Config) sortedLevel(level int) bool {
	if level == 0 {
		return false
	}
	return c.Mode != ModeSMRDB
}

// groupedOutputs reports whether compaction outputs into outLevel are
// written contiguously as a set.
func (c *Config) groupedOutputs(outLevel int) bool {
	switch c.Mode {
	case ModeSEALDB, ModeLevelDBSets:
		// Sets do not exist in L0 and L1 (§III-A): an overlapped
		// SSTable in L1 might belong to several victims in L0.
		return outLevel >= 2
	}
	return false
}

// maxBytesForLevel returns the target size of a level (levels 1+).
func (c *Config) maxBytesForLevel(level int) int64 {
	bytes := c.BaseLevelBytes
	for l := 1; l < level; l++ {
		bytes *= c.LevelMultiplier
	}
	return bytes
}

func (c *Config) validate() error {
	g := c.Geometry
	switch {
	case g.SSTableSize <= 0, g.BandSize <= 0, g.MemtableSize <= 0,
		g.BaseLevelBytes <= 0, g.DiskCapacity <= 0, g.ManifestSize <= 0:
		return fmt.Errorf("lsm: non-positive geometry: %+v", g)
	case g.GuardSize < 0:
		return fmt.Errorf("lsm: negative guard size")
	case g.L0CompactTrigger < 1:
		return fmt.Errorf("lsm: L0 trigger %d < 1", g.L0CompactTrigger)
	case g.LevelMultiplier < 2:
		return fmt.Errorf("lsm: level multiplier %d < 2", g.LevelMultiplier)
	case g.NumLevels < 2 || g.NumLevels > 7:
		return fmt.Errorf("lsm: NumLevels %d outside [2,7]", g.NumLevels)
	case c.Mode == ModeSMRDB && g.MaxCompactionFiles < 2:
		return fmt.Errorf("lsm: SMRDB needs MaxCompactionFiles >= 2")
	case g.DeviceTimeScale < 0:
		return fmt.Errorf("lsm: negative DeviceTimeScale")
	case c.VlogThresholdTooSmall():
		return fmt.Errorf("lsm: ValueThreshold %d must exceed the %d-byte pointer a separated value leaves behind", c.ValueThreshold, vlogPointerLen)
	case c.vlogEnabled() && c.VlogSegSize < 0:
		return fmt.Errorf("lsm: negative VlogSegSize")
	case c.vlogEnabled() && c.vlogSegSize() < int64(c.ValueThreshold)+64:
		return fmt.Errorf("lsm: VlogSegSize %d cannot hold a threshold-sized record", c.vlogSegSize())
	}
	return nil
}

// VlogThresholdTooSmall reports a threshold so low that separation
// would grow entries instead of shrinking them.
func (c *Config) VlogThresholdTooSmall() bool {
	return c.vlogEnabled() && c.ValueThreshold <= vlogPointerLen
}

// walSize returns the preallocated WAL extent size: a full memtable
// plus framing slack. Kept proportionate to the geometry so freed WAL
// extents do not dominate the file system's hole population.
func (c *Config) walSize() int64 {
	return 2*c.MemtableSize + 64*kv.KiB
}
