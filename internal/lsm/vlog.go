package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"sealdb/internal/kv"
	"sealdb/internal/storage"
	"sealdb/internal/version"
	"sealdb/internal/vlog"
)

// Value tagging. When the value log is enabled (Config.ValueThreshold
// > 0) every value the tree stores — memtable, WAL, SSTables — gets a
// one-byte prefix: vlogTagInline followed by the value itself, or
// vlogTagPtr followed by a fixed-size vlog.Pointer naming the segment
// record that holds it. The read path strips or chases the tag
// transparently; with the log disabled values are stored raw and no
// tag exists.
const (
	vlogTagInline = 0x00
	vlogTagPtr    = 0x01

	// vlogPointerLen is the stored size of a separated value: tag
	// byte plus pointer. Separation only ever shrinks tree entries
	// because validate() requires ValueThreshold to exceed it.
	vlogPointerLen = 1 + vlog.PointerSize
)

// vlogState is the engine-side driver of the value log: the active
// segment writer, the accounting table, and the rotation/GC plumbing.
// All fields are guarded by d.mu; the table additionally carries its
// own lock so metric gauges can read it without the engine lock.
type vlogState struct {
	w    *vlog.Writer
	file *storage.AppendFile
	tab  *vlog.Table
	// gcHook, when set, runs between a GC pass's segment scan and its
	// conditional re-put, receiving the candidate keys of the pass.
	// Tests use it to move pointers mid-collection and pin the
	// skip-if-moved behaviour.
	gcHook func(keys [][]byte)
}

// vlogRecover rebuilds the value-log state from the recovered
// manifest: sealed segments are trusted at their recorded length, and
// the single active segment is scanned for its last whole record —
// a torn trailing append is truncated away exactly like a torn WAL
// tail. Caller is OpenDevice; d.mu is not yet shared.
func (d *DB) vlogRecover() error {
	d.vlog.tab = vlog.NewTable()
	if d.vs == nil {
		return nil
	}
	segs := d.vs.VlogSegs()
	// Deterministic order, and sanity: at most one unsealed segment.
	nums := make([]uint64, 0, len(segs))
	for num := range segs {
		nums = append(nums, num)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, num := range nums {
		vs := segs[num]
		if vs.Sealed {
			d.vlog.tab.Seal(num, vs.Bytes)
			d.vlog.tab.AddDead(num, vs.Dead)
			d.recovery.VlogSegments++
			continue
		}
		if d.vlog.w != nil {
			return fmt.Errorf("lsm: manifest lists two active vlog segments (%d and %d)", d.vlog.w.Seg(), num)
		}
		valid, torn, err := d.vlogReopenActive(num)
		if err != nil {
			return err
		}
		d.vlog.tab.Open(num, valid)
		d.vlog.tab.AddDead(num, vs.Dead)
		d.recovery.VlogSegments++
		d.recovery.VlogTornBytes += torn
	}
	return nil
}

// vlogReopenActive scans the active segment's reserved extent for its
// clean record prefix, truncates anything after it, and resumes the
// writer there. Returns the valid length and the torn bytes dropped.
func (d *DB) vlogReopenActive(num uint64) (int64, int64, error) {
	limit, err := d.backend.ReservedSize(num)
	if err != nil {
		return 0, 0, fmt.Errorf("lsm: opening vlog segment %d: %w", num, err)
	}
	buf := make([]byte, limit)
	if _, err := d.backend.ReadReservedAt(num, buf, 0); err != nil && err != io.EOF {
		return 0, 0, err
	}
	s := vlog.NewScanner(num, buf)
	for s.Next() {
	}
	valid := s.ValidLen()
	logical, _ := d.backend.FileSize(num)
	torn := logical - valid
	if torn < 0 {
		// The logical size lagged the platter (crash before the size
		// update); the scan already found the true end.
		torn = 0
	}
	if err := d.backend.TruncateAppend(num, valid); err != nil {
		return 0, 0, fmt.Errorf("lsm: truncating vlog segment %d to %d: %w", num, valid, err)
	}
	f, err := d.backend.OpenAppend(num)
	if err != nil {
		return 0, 0, err
	}
	d.vlog.file = f
	d.vlog.w = vlog.NewWriter(f, num, valid)
	if torn > 0 {
		d.journal.Record("vlog_truncated", map[string]int64{
			"segment": int64(num), "valid": valid, "torn_bytes": torn,
		})
	}
	return valid, torn, nil
}

// vlogRotate seals the active segment (if any) and opens a fresh one
// of at least minBytes, in one manifest edit so exactly one unsealed
// segment exists at any durable point. The new segment's file is
// created before the edit: a crash between the two leaves an orphan
// file for the sweep, never a manifest entry without bytes to back
// it. Caller holds d.mu.
func (d *DB) vlogRotate(minBytes int64) error {
	size := d.cfg.vlogSegSize()
	if minBytes > size {
		// A single record larger than the segment class: give it an
		// extent of its own, like an oversized batch gets its own WAL.
		size = minBytes
	}
	num := d.vs.NewFileNum()
	f, err := d.backend.CreateAppend(num, size)
	if err != nil {
		return err
	}
	e := &version.Edit{NewVlogSegs: []uint64{num}}
	var sealed uint64
	if d.vlog.w != nil {
		sealed = d.vlog.w.Seg()
		e.SealVlogSegs = append(e.SealVlogSegs, version.VlogSegRecord{Num: sealed, Bytes: d.vlog.w.Offset()})
	}
	if err := d.vs.LogAndApply(e); err != nil {
		return err
	}
	if d.vlog.w != nil {
		d.vlog.tab.Seal(sealed, d.vlog.w.Offset())
	}
	d.vlog.file = f
	d.vlog.w = vlog.NewWriter(f, num, 0)
	d.vlog.tab.Open(num, 0)
	d.metrics.vlogRotations.Inc()
	d.journal.Record("vlog_rotate", map[string]int64{
		"num": int64(num), "sealed": int64(sealed),
	})
	return nil
}

// vlogAppend writes one record to the active segment, rotating first
// when it would not fit, and returns the stored pointer. The append
// is a synchronous device write: when it returns, the record is as
// durable as anything the drive acknowledged, and only then may a
// pointer to it enter the WAL. Caller holds d.mu.
func (d *DB) vlogAppend(key, value []byte) (vlog.Pointer, error) {
	need := int64(vlog.RecordSize(len(key), len(value)))
	if d.vlog.w == nil || d.vlog.w.Offset()+need > d.cfg.vlogSegSize() {
		if err := d.vlogRotate(need); err != nil {
			return vlog.Pointer{}, err
		}
	}
	p, err := d.vlog.w.Append(key, value)
	if err != nil {
		return vlog.Pointer{}, err
	}
	d.vlog.tab.Extend(p.Seg, int64(p.Len))
	return p, nil
}

// separateBatch rewrites a batch for the value log: every value gains
// its tag byte, and values at or above the threshold move to the log
// with a pointer left in their place. Returns the record count and
// bytes appended to the log; the caller attributes them (user append
// vs GC rewrite). Must run before the batch's WAL append so the log
// write orders ahead of the acknowledgement; a crash between the two
// leaves dead log bytes, never a dangling pointer. Caller holds d.mu;
// the batch's sequence header is preserved untouched.
func (d *DB) separateBatch(b *Batch) (records, appended int64, err error) {
	rep := make([]byte, 0, len(b.rep))
	rep = append(rep, b.rep[:batchHeaderLen]...)
	p := b.rep[batchHeaderLen:]
	for i := uint32(0); i < b.count; i++ {
		kind := kv.Kind(p[0])
		klen, n := binary.Uvarint(p[1:])
		key := p[1+n : 1+n+int(klen)]
		rep = append(rep, p[:1+n+int(klen)]...)
		p = p[1+n+int(klen):]
		if kind != kv.KindSet {
			continue
		}
		vlen, n := binary.Uvarint(p)
		value := p[n : n+int(vlen)]
		p = p[n+int(vlen):]
		if int(vlen) >= d.cfg.ValueThreshold {
			ptr, err := d.vlogAppend(key, value)
			if err != nil {
				return records, appended, err
			}
			appended += int64(ptr.Len)
			records++
			rep = binary.AppendUvarint(rep, uint64(vlogPointerLen))
			rep = append(rep, vlogTagPtr)
			rep = vlog.AppendPointer(rep, ptr)
		} else {
			rep = binary.AppendUvarint(rep, uint64(vlen)+1)
			rep = append(rep, vlogTagInline)
			rep = append(rep, value...)
		}
	}
	b.rep = rep
	return records, appended, nil
}

// resolveValue maps a stored tree value to the user value: with the
// log disabled it is the identity; otherwise it strips the inline tag
// or chases the pointer into its segment. The returned slice is
// always a fresh copy. Caller holds d.mu.
func (d *DB) resolveValue(stored []byte) ([]byte, error) {
	if !d.cfg.vlogEnabled() {
		return append([]byte(nil), stored...), nil
	}
	if len(stored) == 0 {
		return []byte{}, nil
	}
	switch stored[0] {
	case vlogTagInline:
		return append([]byte(nil), stored[1:]...), nil
	case vlogTagPtr:
		ptr, err := vlog.DecodePointer(stored[1:])
		if err != nil {
			return nil, err
		}
		_, v, err := d.vlogRead(ptr)
		return v, err
	}
	return nil, fmt.Errorf("lsm: unknown value tag %#x", stored[0])
}

// vlogRead chases a pointer: one segment read, one record decode.
// The record CRC (seeded with the segment number) catches both media
// damage and a pointer into recycled space. Caller holds d.mu.
func (d *DB) vlogRead(p vlog.Pointer) (key, value []byte, err error) {
	buf := make([]byte, p.Len)
	if _, err := d.backend.ReadFileAt(p.Seg, buf, int64(p.Off)); err != nil && err != io.EOF {
		return nil, nil, fmt.Errorf("lsm: vlog read %+v: %w", p, err)
	}
	k, v, _, err := vlog.DecodeRecord(p.Seg, buf)
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: vlog read %+v: %w", p, err)
	}
	d.metrics.vlogReads.Inc()
	return k, v, nil
}

// vlogDeadValue inspects a stored tree value being dropped by
// compaction and returns the segment and record bytes it releases
// (0, 0 for inline values or when the log is off).
func (d *DB) vlogDeadValue(stored []byte) (seg uint64, n int64) {
	if !d.cfg.vlogEnabled() || len(stored) != vlogPointerLen || stored[0] != vlogTagPtr {
		return 0, 0
	}
	ptr, err := vlog.DecodePointer(stored[1:])
	if err != nil {
		return 0, 0
	}
	return ptr.Seg, int64(ptr.Len)
}

// vlogChargeDead folds compaction-drop dead bytes into the accounting
// table and returns the manifest records carrying them. Caller holds
// d.mu.
func (d *DB) vlogChargeDead(dead map[uint64]int64) []version.VlogDeadRecord {
	if len(dead) == 0 {
		return nil
	}
	nums := make([]uint64, 0, len(dead))
	for num := range dead {
		nums = append(nums, num)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	recs := make([]version.VlogDeadRecord, 0, len(nums))
	var total int64
	for _, num := range nums {
		d.vlog.tab.AddDead(num, dead[num])
		recs = append(recs, version.VlogDeadRecord{Num: num, Dead: dead[num]})
		total += dead[num]
		// Mirror the charge onto the storage surface: the segment's
		// extent accrues the dead bytes so /debug/bands shows value-log
		// garbage on the bands holding it.
		if ext, err := d.backend.FileExtent(num); err == nil {
			d.surfaceChargeDead(ext.Off, dead[num])
		}
	}
	d.metrics.vlogDeadBytes.Add(total)
	return recs
}

// getStoredLocked returns the latest stored tree value for key — tag
// byte and all — along with the number of the SSTable that served it
// (0 for a memtable hit). The collector uses it to check that a
// segment record is still what the tree points at. Caller holds d.mu.
func (d *DB) getStoredLocked(key []byte) (stored []byte, file uint64, ok bool, err error) {
	if v, deleted, hit := d.mem.Get(key, d.seq); hit {
		if deleted {
			return nil, 0, false, nil
		}
		return v, 0, true, nil
	}
	v := d.vs.Current()
	files := v.Files[0]
	for i := len(files) - 1; i >= 0; i-- {
		f := files[i]
		if !fileMayContain(f, key) {
			continue
		}
		val, _, kind, hit, err := d.tableGet(f, key, d.seq)
		if err != nil {
			return nil, 0, false, err
		}
		if hit {
			if kind == kv.KindDelete {
				return nil, 0, false, nil
			}
			return val, f.Num, true, nil
		}
	}
	for level := 1; level < d.cfg.NumLevels; level++ {
		candidates := v.Overlaps(level, key, key, d.cfg.sortedLevel(level))
		if len(candidates) == 0 {
			continue
		}
		if d.cfg.sortedLevel(level) {
			val, _, kind, hit, err := d.tableGet(candidates[0], key, d.seq)
			if err != nil {
				return nil, 0, false, err
			}
			if hit {
				if kind == kv.KindDelete {
					return nil, 0, false, nil
				}
				return val, candidates[0].Num, true, nil
			}
			continue
		}
		var (
			best     []byte
			bestSeq  kv.SeqNum
			bestKind kv.Kind
			bestNum  uint64
			found    bool
		)
		for _, f := range candidates {
			val, fseq, kind, hit, err := d.tableGet(f, key, d.seq)
			if err != nil {
				return nil, 0, false, err
			}
			if hit && (!found || fseq > bestSeq) {
				best, bestSeq, bestKind, bestNum, found = val, fseq, kind, f.Num, true
			}
		}
		if found {
			if bestKind == kv.KindDelete {
				return nil, 0, false, nil
			}
			return best, bestNum, true, nil
		}
	}
	return nil, 0, false, nil
}

// VlogGCResult reports one collection pass.
type VlogGCResult struct {
	// Victim is the collected segment (0 when no segment qualified).
	Victim uint64
	// RelocatedRecords/RelocatedBytes count live records rewritten
	// into fresh segments.
	RelocatedRecords int
	RelocatedBytes   int64
	// SkippedMoved counts records whose tree pointer no longer named
	// the victim record when the conditional re-put re-checked it.
	SkippedMoved int
	// ReclaimedBytes is the victim segment's size returned to the
	// allocator.
	ReclaimedBytes int64
}

// VlogGC runs one value-log collection pass: pick the sealed segment
// with the highest dead ratio (at or above the configured trigger),
// relocate its live records — grouped by the set of the SSTable that
// references each one, so co-compacted values stay adjacent — and
// drop the victim. Returns a zero-victim result when nothing
// qualifies.
func (d *DB) VlogGC() (VlogGCResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeAllowed(); err != nil {
		return VlogGCResult{}, err
	}
	if !d.cfg.vlogEnabled() {
		return VlogGCResult{}, fmt.Errorf("lsm: VlogGC requires a value threshold (mode %v)", d.cfg.Mode)
	}
	return d.vlogGCLocked(d.cfg.vlogGCDeadRatio())
}

// maybeVlogGC opportunistically collects after a write when a victim
// qualifies. One pass per call bounds the stall a single Apply can
// absorb. Caller holds d.mu.
func (d *DB) maybeVlogGC() error {
	if !d.cfg.vlogEnabled() || d.vlog.tab == nil {
		return nil
	}
	if _, ok := d.vlog.tab.Victim(d.cfg.vlogGCDeadRatio()); !ok {
		return nil
	}
	_, err := d.vlogGCLocked(d.cfg.vlogGCDeadRatio())
	return err
}

// vlogGCLocked is the collection pass body. Caller holds d.mu.
//
// Snapshot safety: relocation re-puts live values at fresh sequence
// numbers and then deletes the victim segment, which would tear the
// old pointers out from under a pinned snapshot — so the pass simply
// refuses to run while snapshots exist (the next write retries it).
// Live iterators are handled by routing the victim's removal through
// the epoch-pinned reclaim queue.
func (d *DB) vlogGCLocked(minRatio float64) (VlogGCResult, error) {
	var res VlogGCResult
	if len(d.snapshots) > 0 {
		return res, nil
	}
	vic, ok := d.vlog.tab.Victim(minRatio)
	if !ok {
		return res, nil
	}
	res.Victim = vic.Num
	sp := d.journal.Begin("vlog_gc", 0)
	sp.Set("segment", int64(vic.Num))
	sp.Set("dead_bytes", vic.Dead)

	// Scan the victim for candidate records: those the tree still
	// points at.
	buf := make([]byte, vic.Bytes)
	if _, err := d.backend.ReadFileAt(vic.Num, buf, 0); err != nil && err != io.EOF {
		return res, d.failWrite(fmt.Errorf("lsm: vlog GC scan of segment %d: %w", vic.Num, err))
	}
	type candidate struct {
		key, value []byte
		ptr        vlog.Pointer
		set        uint64
	}
	var cands []candidate
	s := vlog.NewScanner(vic.Num, buf)
	for s.Next() {
		stored, file, ok, err := d.getStoredLocked(s.Key())
		if err != nil {
			return res, err
		}
		if !ok || !d.vlogPointsAt(stored, s.Pointer()) {
			continue // superseded or deleted: already dead
		}
		cands = append(cands, candidate{
			key:   append([]byte(nil), s.Key()...),
			value: append([]byte(nil), s.Value()...),
			ptr:   s.Pointer(),
			set:   d.sets.setOf(file),
		})
	}
	if err := s.Err(); err != nil {
		// A sealed segment must scan clean to its recorded length.
		return res, d.failWrite(fmt.Errorf("lsm: vlog GC scan of segment %d: %w", vic.Num, err))
	}

	if d.vlog.gcHook != nil {
		keys := make([][]byte, len(cands))
		for i, c := range cands {
			keys[i] = c.key
		}
		d.vlog.gcHook(keys)
	}

	// Set-aware relocation: stable-sort candidates by set so records
	// whose referents compact together land adjacent in the fresh
	// segment, then re-put each group in one batch. The re-put is
	// conditional — a pointer the hook (or a future concurrent write
	// path) moved since the scan is skipped, not clobbered.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].set < cands[j].set })
	for start := 0; start < len(cands); {
		end := start
		for end < len(cands) && cands[end].set == cands[start].set {
			end++
		}
		group := cands[start:end]
		start = end
		b := NewBatch()
		for _, c := range group {
			stored, _, ok, err := d.getStoredLocked(c.key)
			if err != nil {
				return res, err
			}
			if !ok || !d.vlogPointsAt(stored, c.ptr) {
				res.SkippedMoved++
				continue
			}
			b.Put(c.key, c.value)
			res.RelocatedRecords++
		}
		if b.Len() == 0 {
			continue
		}
		n, err := d.reputLocked(b)
		if err != nil {
			return res, err
		}
		res.RelocatedBytes += n
	}

	// Drop the victim: manifest first, then the file. The re-put WAL
	// records are already on the device, so a crash anywhere in here
	// recovers with every live value reachable through its new
	// pointer. The extent itself is freed through the reclaim queue
	// so a live iterator mid-chase keeps its bytes.
	if err := d.vs.LogAndApply(&version.Edit{DropVlogSegs: []uint64{vic.Num}}); err != nil {
		return res, d.failWrite(err)
	}
	d.vlog.tab.Drop(vic.Num)
	res.ReclaimedBytes = vic.Bytes
	d.reclaim([]uint64{vic.Num}, nil)

	d.stats.VlogGCRuns++
	d.stats.VlogGCBytes += res.RelocatedBytes
	d.metrics.vlogGCRuns.Inc()
	d.metrics.vlogGCRelocated.Add(res.RelocatedBytes)
	d.metrics.vlogGCReclaimed.Add(res.ReclaimedBytes)
	d.metrics.vlogGCSkipped.Add(int64(res.SkippedMoved))
	sp.Set("relocated_records", int64(res.RelocatedRecords))
	sp.Set("relocated_bytes", res.RelocatedBytes)
	sp.Set("skipped_moved", int64(res.SkippedMoved))
	sp.Set("reclaimed_bytes", res.ReclaimedBytes)
	sp.End()
	return res, nil
}

// vlogPointsAt reports whether a stored tree value is a pointer to
// exactly this segment record.
func (d *DB) vlogPointsAt(stored []byte, p vlog.Pointer) bool {
	if len(stored) != vlogPointerLen || stored[0] != vlogTagPtr {
		return false
	}
	var want [vlogPointerLen]byte
	want[0] = vlogTagPtr
	vlog.AppendPointer(want[1:1], p)
	return bytes.Equal(stored, want[:])
}

// reputLocked commits a GC relocation batch: values separate into the
// active segment again (that is the relocation), the rewritten batch
// logs to the WAL for durability of the new pointers, and the
// memtable takes the new versions. It is applyLocked minus the user
// accounting — relocated bytes are store traffic, not user traffic —
// with its log bytes charged to the GC counters. Caller holds d.mu.
func (d *DB) reputLocked(b *Batch) (int64, error) {
	if err := d.makeRoomForWrite(b.Size()); err != nil {
		return 0, d.failWrite(err)
	}
	base := d.seq + 1
	d.seq += kv.SeqNum(b.count)
	b.setSeq(base)
	_, appended, err := d.separateBatch(b)
	if err != nil {
		return appended, d.failWrite(err)
	}
	if err := d.walW.AddRecord(b.rep); err != nil {
		return appended, d.failWrite(err)
	}
	if _, _, err := decodeBatch(b.rep, func(seq kv.SeqNum, kind kv.Kind, key, value []byte) error {
		d.mem.Add(seq, kind, key, value)
		return nil
	}); err != nil {
		return appended, err
	}
	return appended, nil
}
