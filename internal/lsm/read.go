package lsm

import (
	"sealdb/internal/invariant"
	"sealdb/internal/kv"
	"sealdb/internal/version"
)

// Get returns the value of key at the latest sequence number.
func (d *DB) Get(key []byte) ([]byte, error) {
	return d.GetCtx(key, OpContext{})
}

// GetCtx is Get carrying a request context: when tracing is enabled,
// the lookup's physical I/Os and per-level stage times are attributed
// to ctx.ReqID. With tracing off it is exactly Get.
func (d *DB) GetCtx(key []byte, ctx OpContext) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	ot := d.traceBegin("get", ctx.ReqID)
	v, err := d.getObserved(key, d.seq, ot)
	d.traceEnd(ot, err)
	return v, err
}

// GetAt returns the value of key as of the given snapshot.
func (d *DB) GetAt(key []byte, snap *Snapshot) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	ot := d.traceBegin("get", 0)
	v, err := d.getObserved(key, snap.seq, ot)
	d.traceEnd(ot, err)
	return v, err
}

// getObserved wraps getLocked with the read-path metrics: a count, a
// hit count, and the simulated device time the lookup consumed.
// Caller holds d.mu; ot may be nil (tracing off).
func (d *DB) getObserved(key []byte, seq kv.SeqNum, ot *opTrace) ([]byte, error) {
	startBusy := d.disk.Stats().BusyTime
	v, err := d.getLocked(key, seq, ot)
	d.metrics.gets.Inc()
	if err == nil {
		d.metrics.getHits.Inc()
	}
	d.metrics.readLatency.Observe(int64(d.disk.Stats().BusyTime - startBusy))
	return v, err
}

// getLocked is the LevelDB read path: memtable, then level 0 newest
// to oldest, then each deeper level. Caller holds d.mu; ot may be nil.
func (d *DB) getLocked(key []byte, seq kv.SeqNum, ot *opTrace) ([]byte, error) {
	d.stats.Gets++
	si := ot.stageStart(stageReadMemtable, d.traceNow(ot))
	if v, deleted, ok := d.mem.Get(key, seq); ok {
		ot.stageEnd(si, d.traceNow(ot), d.metrics.stageReadMemNS)
		if deleted {
			return nil, ErrNotFound
		}
		d.stats.GetHits++
		if d.cfg.vlogEnabled() {
			return d.resolveValue(v)
		}
		return append([]byte(nil), v...), nil
	}
	ot.stageEnd(si, d.traceNow(ot), d.metrics.stageReadMemNS)
	v := d.vs.Current()

	// Level 0: files may overlap; newest (highest number) wins.
	// Flush order guarantees file-number order is data recency order.
	files := v.Files[0]
	if len(files) > 0 {
		si = ot.stageStart(d.tracer.readStages[0], d.traceNow(ot))
	}
	for i := len(files) - 1; i >= 0; i-- {
		f := files[i]
		if !fileMayContain(f, key) {
			continue
		}
		val, _, kind, ok, err := d.tableGet(f, key, seq)
		if err != nil {
			return nil, err
		}
		if ok {
			ot.stageEnd(si, d.traceNow(ot), d.metrics.stageReadLevel[0])
			if kind == kv.KindDelete {
				return nil, ErrNotFound
			}
			d.stats.GetHits++
			if d.cfg.vlogEnabled() {
				return d.resolveValue(val)
			}
			return val, nil
		}
	}
	if len(files) > 0 {
		ot.stageEnd(si, d.traceNow(ot), d.metrics.stageReadLevel[0])
	}

	for level := 1; level < d.cfg.NumLevels; level++ {
		candidates := v.Overlaps(level, key, key, d.cfg.sortedLevel(level))
		if len(candidates) == 0 {
			continue
		}
		si = ot.stageStart(d.tracer.readStages[level], d.traceNow(ot))
		if d.cfg.sortedLevel(level) {
			// At most one file can contain the key.
			val, _, kind, ok, err := d.tableGet(candidates[0], key, seq)
			if err != nil {
				return nil, err
			}
			ot.stageEnd(si, d.traceNow(ot), d.metrics.stageReadLevel[level])
			if ok {
				if kind == kv.KindDelete {
					return nil, ErrNotFound
				}
				d.stats.GetHits++
				if d.cfg.vlogEnabled() {
					return d.resolveValue(val)
				}
				return val, nil
			}
			continue
		}
		// Overlapped level (SMRDB): several files may hold versions
		// of the key; the highest visible sequence number wins.
		var (
			best     []byte
			bestSeq  kv.SeqNum
			bestKind kv.Kind
			found    bool
		)
		for _, f := range candidates {
			val, fseq, kind, ok, err := d.tableGet(f, key, seq)
			if err != nil {
				return nil, err
			}
			if ok && (!found || fseq > bestSeq) {
				best, bestSeq, bestKind, found = val, fseq, kind, true
			}
		}
		ot.stageEnd(si, d.traceNow(ot), d.metrics.stageReadLevel[level])
		if found {
			if bestKind == kv.KindDelete {
				return nil, ErrNotFound
			}
			d.stats.GetHits++
			if d.cfg.vlogEnabled() {
				return d.resolveValue(best)
			}
			return best, nil
		}
	}
	return nil, ErrNotFound
}

// traceNow returns the device clock for stage bookkeeping, or 0 when
// the op is untraced — avoiding the disk-stats lock on the hot path.
func (d *DB) traceNow(ot *opTrace) int64 {
	if ot == nil {
		return 0
	}
	return d.deviceNow()
}

// fileMayContain is the cheap user-key range test.
func fileMayContain(f *version.FileMeta, key []byte) bool {
	return kv.CompareUser(key, f.Smallest.UserKey()) >= 0 &&
		kv.CompareUser(key, f.Largest.UserKey()) <= 0
}

// tableGet looks key up in one table file. Caller holds d.mu.
func (d *DB) tableGet(f *version.FileMeta, key []byte, seq kv.SeqNum) ([]byte, kv.SeqNum, kv.Kind, bool, error) {
	t, err := d.openTable(f)
	if err != nil {
		return nil, 0, 0, false, err
	}
	return t.GetEntry(key, seq)
}

// Snapshot pins a sequence number: reads through it see the database
// as of its creation, and compactions keep the versions it needs.
type Snapshot struct {
	seq kv.SeqNum
	db  *DB
}

// NewSnapshot captures the current state.
func (d *DB) NewSnapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.snapshots[d.seq]++
	return &Snapshot{seq: d.seq, db: d}
}

// Release un-pins the snapshot. Releasing twice is a no-op.
func (s *Snapshot) Release() {
	if s.db == nil {
		return
	}
	d := s.db
	s.db = nil
	d.mu.Lock()
	defer d.mu.Unlock()
	if invariant.Enabled {
		invariant.Assert(d.snapshots[s.seq] > 0, "releasing snapshot at seq %d with no registered pin", s.seq)
	}
	if n := d.snapshots[s.seq]; n > 1 {
		d.snapshots[s.seq] = n - 1
	} else {
		delete(d.snapshots, s.seq)
	}
}

// smallestSnapshot returns the oldest sequence number any reader can
// still observe. Caller holds d.mu.
func (d *DB) smallestSnapshot() kv.SeqNum {
	min := d.seq
	for s := range d.snapshots {
		if s < min {
			min = s
		}
	}
	return min
}
