package lsm

import (
	"bytes"
	"fmt"
	"sort"

	"sealdb/internal/kv"
	"sealdb/internal/smr"
	"sealdb/internal/version"
	"sealdb/internal/vlog"
)

// LevelInfo describes one level of the tree.
type LevelInfo struct {
	Level int
	Files int
	Bytes int64
	// Target is the level's size limit (0 for level 0 and the last
	// level, which are bounded by file count and nothing).
	Target int64
}

// LevelProfile returns the current shape of the tree, shallowest
// level first.
func (d *DB) LevelProfile() []LevelInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.vs.Current()
	out := make([]LevelInfo, d.cfg.NumLevels)
	for l := 0; l < d.cfg.NumLevels; l++ {
		out[l] = LevelInfo{Level: l, Files: v.NumFiles(l), Bytes: v.LevelBytes(l)}
		if l > 0 && l < d.cfg.NumLevels-1 {
			out[l].Target = d.cfg.maxBytesForLevel(l)
		}
	}
	return out
}

// TableLocation reports where one live table file sits on the device:
// its level, file number, and physical extent. The chaos harness uses
// it to aim bit flips at real table bytes; debugging tools use it to
// map a journaled corruption offset back to a file.
type TableLocation struct {
	Level int    `json:"level"`
	Num   uint64 `json:"num"`
	Off   int64  `json:"off"`
	Len   int64  `json:"len"`
}

// TableLocations returns the physical placement of every live table,
// ordered by (level, file number). Files whose extent the backend
// cannot resolve (mid-deletion races) are skipped.
func (d *DB) TableLocations() []TableLocation {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.vs.Current()
	var out []TableLocation
	for l := 0; l < d.cfg.NumLevels; l++ {
		files := append([]*version.FileMeta(nil), v.Files[l]...)
		sort.Slice(files, func(i, j int) bool { return files[i].Num < files[j].Num })
		for _, f := range files {
			ext, err := d.backend.FileExtent(f.Num)
			if err != nil {
				continue
			}
			out = append(out, TableLocation{Level: l, Num: f.Num, Off: ext.Off, Len: ext.Len})
		}
	}
	return out
}

// SetProfile summarizes the set registry: live sets, their members,
// and the invalid-member backlog the set-priority GC works through.
type SetProfile struct {
	LiveSets       int
	LiveMembers    int
	TotalMembers   int
	InvalidMembers int
}

// SetProfile returns the registry summary (meaningful in the grouped
// modes; zero-valued otherwise).
func (d *DB) SetProfile() SetProfile {
	d.mu.Lock()
	defer d.mu.Unlock()
	live, total := d.sets.memberStats()
	return SetProfile{
		LiveSets:       d.sets.liveSets(),
		LiveMembers:    live,
		TotalMembers:   total,
		InvalidMembers: total - live,
	}
}

// ApproximateSize returns the table bytes whose key ranges intersect
// [lo, hi] (nil = unbounded), LevelDB's GetApproximateSizes. It is an
// upper estimate: a file partially in range counts fully.
func (d *DB) ApproximateSize(lo, hi []byte) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.vs.Current()
	var total int64
	for l := 0; l < d.cfg.NumLevels; l++ {
		for _, f := range v.Overlaps(l, lo, hi, d.cfg.sortedLevel(l)) {
			total += f.Size
		}
	}
	return total
}

// CompactRange compacts every file whose user-key range intersects
// [lo, hi] down the tree until none of those levels exceed their
// targets and the range has reached the deepest populated level.
// Nil bounds mean unbounded. This is LevelDB's manual compaction,
// useful to settle a store before read benchmarks.
func (d *DB) CompactRange(lo, hi []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeAllowed(); err != nil {
		return err
	}
	if !d.mem.Empty() {
		if err := d.rotateAndFlush(d.cfg.walSize()); err != nil {
			return d.failWrite(err)
		}
	}
	for level := 0; level < d.cfg.NumLevels-1; level++ {
		for {
			v := d.vs.Current()
			files := v.Overlaps(level, lo, hi, d.cfg.sortedLevel(level))
			if len(files) == 0 {
				break
			}
			c := &compaction{level: level, outLevel: level + 1}
			c.inputs0 = files
			if level == 0 {
				// Grow to the L0 overlap fixpoint as pickCompaction does.
				smallest, largest := keyRange(c.inputs0)
				for {
					grown := v.Overlaps(0, smallest, largest, false)
					if len(grown) == len(c.inputs0) {
						break
					}
					c.inputs0 = grown
					smallest, largest = keyRange(grown)
				}
			}
			rlo, rhi := keyRange(c.inputs0)
			c.inputs1 = v.Overlaps(c.outLevel, rlo, rhi, d.cfg.sortedLevel(c.outLevel))
			if d.cfg.Mode == ModeSMRDB && len(c.inputs1) > d.cfg.MaxCompactionFiles {
				c.inputs1 = c.inputs1[:d.cfg.MaxCompactionFiles]
			}
			if len(c.inputs0) == 1 && len(c.inputs1) == 0 {
				c.trivial = true
			}
			if err := d.runCompaction(c); err != nil {
				return d.failWrite(err)
			}
			if c.trivial {
				continue // the file moved down; the next loop sees it there
			}
			break
		}
	}
	if err := d.compactUntilBalanced(); err != nil {
		return d.failWrite(err)
	}
	return nil
}

// VerifyIntegrity walks the whole store and checks every invariant it
// can reach: table checksums and ordering, version metadata against
// table contents, set records against file placements, and (in
// SEALDB mode) dynamic-band space accounting against the drive's
// valid-extent map. It is the repository's fsck, used by tests and
// the CLI.
func (d *DB) VerifyIntegrity() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	v := d.vs.Current()
	if err := v.CheckInvariants(d.cfg.sortedLevel); err != nil {
		return fmt.Errorf("version: %w", err)
	}
	for l := 0; l < d.cfg.NumLevels; l++ {
		for _, f := range v.Files[l] {
			if err := d.verifyTable(l, f); err != nil {
				return err
			}
		}
	}
	if err := d.verifySets(v); err != nil {
		return err
	}
	if d.cfg.vlogEnabled() {
		if err := d.verifyVlog(v); err != nil {
			return err
		}
	}
	if err := d.verifyExtents(v); err != nil {
		return err
	}
	return d.verifySurfaceLocked()
}

// verifyVlog cross-checks key–value separation state: the segment
// table against the manifest's segment records, and every *serving*
// pointer — the newest visible version of its key — against the value
// log: the pointed-at record must decode, sit inside its segment's
// logical bytes, and carry the same user key. Shadowed versions are
// exempt: GC repairs pointers by re-putting, so a superseded entry may
// reference a collected segment until compaction drops it. Caller
// holds d.mu.
func (d *DB) verifyVlog(v *version.Version) error {
	segs := d.vs.VlogSegs()
	unsealed := 0
	for num, s := range segs {
		info, ok := d.vlog.tab.Info(num)
		if !ok {
			return fmt.Errorf("vlog segment %d in manifest but not in segment table", num)
		}
		if s.Sealed && info.Bytes != s.Bytes {
			return fmt.Errorf("vlog segment %d: table holds %d bytes, manifest records %d", num, info.Bytes, s.Bytes)
		}
		if info.Dead > info.Bytes {
			return fmt.Errorf("vlog segment %d: dead bytes %d exceed total %d", num, info.Dead, info.Bytes)
		}
		if !s.Sealed {
			unsealed++
		}
	}
	if unsealed > 1 {
		return fmt.Errorf("vlog: %d unsealed segments in manifest, want at most one", unsealed)
	}
	for _, s := range d.vlog.tab.Segments() {
		if _, ok := segs[s.Num]; !ok {
			return fmt.Errorf("vlog segment %d in segment table but not in manifest", s.Num)
		}
	}

	check := func(where string, ik kv.InternalKey, stored []byte) error {
		if ik.Kind() != kv.KindSet || len(stored) == 0 || stored[0] != vlogTagPtr {
			return nil
		}
		serving, _, ok, err := d.getStoredLocked(ik.UserKey())
		if err != nil {
			return err
		}
		if !ok || !bytes.Equal(serving, stored) {
			return nil // shadowed version: its record may be collected
		}
		p, err := vlog.DecodePointer(stored[1:])
		if err != nil {
			return fmt.Errorf("%s key %s: %w", where, ik, err)
		}
		info, ok := d.vlog.tab.Info(p.Seg)
		if !ok {
			return fmt.Errorf("%s key %s: pointer into unknown vlog segment %d", where, ik, p.Seg)
		}
		if end := int64(p.Off) + int64(p.Len); end > info.Bytes {
			return fmt.Errorf("%s key %s: pointer [%d,%d) beyond segment %d bytes %d",
				where, ik, p.Off, end, p.Seg, info.Bytes)
		}
		rkey, _, err := d.vlogRead(p)
		if err != nil {
			return fmt.Errorf("%s key %s: vlog segment %d offset %d: %w", where, ik, p.Seg, p.Off, err)
		}
		if !bytes.Equal(rkey, ik.UserKey()) {
			return fmt.Errorf("%s key %s: vlog record holds key %q", where, ik, rkey)
		}
		return nil
	}

	mi := d.mem.NewIterator()
	for mi.SeekToFirst(); mi.Valid(); mi.Next() {
		if err := check("memtable", mi.Key(), mi.Value()); err != nil {
			return err
		}
	}
	for l := 0; l < d.cfg.NumLevels; l++ {
		for _, f := range v.Files[l] {
			t, err := d.openTable(f)
			if err != nil {
				return fmt.Errorf("L%d %s: %w", l, f, err)
			}
			it := t.NewIterator()
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if err := check(fmt.Sprintf("L%d %s", l, f), it.Key(), it.Value()); err != nil {
					return err
				}
			}
			if err := it.Error(); err != nil {
				return fmt.Errorf("L%d %s: %w", l, f, err)
			}
		}
	}
	return nil
}

// verifyTable scans one table, checking block CRCs (implicitly),
// internal ordering, and the metadata bounds. Caller holds d.mu.
func (d *DB) verifyTable(level int, f *version.FileMeta) error {
	t, err := d.openTable(f)
	if err != nil {
		return fmt.Errorf("L%d %s: %w", level, f, err)
	}
	it := t.NewIterator()
	var prev kv.InternalKey
	entries := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := it.Key()
		if prev != nil && kv.CompareInternal(prev, ik) >= 0 {
			return fmt.Errorf("L%d %s: keys out of order at entry %d", level, f, entries)
		}
		if entries == 0 && kv.CompareInternal(ik, f.Smallest) != 0 {
			return fmt.Errorf("L%d %s: first key %s != smallest %s", level, f, ik, f.Smallest)
		}
		prev = append(prev[:0], ik...)
		entries++
	}
	if err := it.Error(); err != nil {
		return fmt.Errorf("L%d %s: %w", level, f, err)
	}
	if entries == 0 {
		return fmt.Errorf("L%d %s: empty table", level, f)
	}
	if kv.CompareInternal(prev, f.Largest) != 0 {
		return fmt.Errorf("L%d %s: last key %s != largest %s", level, f, prev, f.Largest)
	}
	return nil
}

// verifySets cross-checks the set registry, the manifest's set
// records, file placements, and the device state. Caller holds d.mu.
func (d *DB) verifySets(v *version.Version) error {
	records := d.vs.Sets()
	liveBysSet := map[uint64]int{}
	for l := 0; l < d.cfg.NumLevels; l++ {
		for _, f := range v.Files[l] {
			if f.SetID == 0 {
				continue
			}
			rec, ok := records[f.SetID]
			if !ok {
				return fmt.Errorf("set %d referenced by %s has no manifest record", f.SetID, f)
			}
			ext, err := d.backend.FileExtent(f.Num)
			if err != nil {
				return fmt.Errorf("set %d member %s: %w", f.SetID, f, err)
			}
			if ext.Off < rec.Off || ext.End() > rec.Off+rec.Len {
				return fmt.Errorf("set %d member %s extent %v outside set extent [%d,%d)",
					f.SetID, f, ext, rec.Off, rec.Off+rec.Len)
			}
			liveBysSet[f.SetID]++
		}
	}
	for id, rec := range records {
		if liveBysSet[id] == 0 {
			return fmt.Errorf("set %d (members %d) has a record but no live members", id, rec.Members)
		}
		if liveBysSet[id] > rec.Members {
			return fmt.Errorf("set %d has %d live members > recorded total %d", id, liveBysSet[id], rec.Members)
		}
	}

	// Dynamic-band accounting: allocator state must reconcile with
	// the raw drive's validity map.
	if mgr := d.dev.DBand; mgr != nil {
		if raw, ok := smr.Base(d.drive).(interface{ ValidBytes() int64 }); ok {
			valid := raw.ValidBytes()
			if alloc := mgr.AllocatedBytes(); valid > alloc {
				return fmt.Errorf("drive holds %d valid bytes but allocator accounts only %d", valid, alloc)
			}
		}
	}
	return nil
}

// verifyExtents checks physical space accounting: every owned extent
// — non-grouped backend files, live set extents, and extents pending
// deferred reclamation — must be pairwise disjoint (no double
// allocation), and in SEALDB mode their total must equal exactly
// what the dynamic band manager has allocated (no leak) with none of
// them landing in its free space. Caller holds d.mu.
func (d *DB) verifyExtents(v *version.Version) error {
	type span struct {
		off, end int64
		what     string
	}
	var spans []span
	for _, fr := range d.backend.Files() {
		if fr.Grouped {
			continue // covered by its set extent
		}
		spans = append(spans, span{fr.Extent.Off, fr.Extent.End(), fmt.Sprintf("file %d", fr.Num)})
	}
	for id, rec := range d.vs.Sets() {
		spans = append(spans, span{rec.Off, rec.Off + rec.Len, fmt.Sprintf("set %d", id)})
	}
	for _, pr := range d.reclaims {
		for _, ext := range pr.extents {
			spans = append(spans, span{ext.Off, ext.End(), "pending reclaim"})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	var total int64
	for i, sp := range spans {
		total += sp.end - sp.off
		if i > 0 && spans[i-1].end > sp.off {
			return fmt.Errorf("extent overlap: %s [%d,%d) vs %s [%d,%d)",
				spans[i-1].what, spans[i-1].off, spans[i-1].end, sp.what, sp.off, sp.end)
		}
	}
	mgr := d.dev.DBand
	if mgr == nil {
		return nil
	}
	if alloc := mgr.AllocatedBytes(); total != alloc {
		return fmt.Errorf("extent accounting: %d bytes owned by files/sets but allocator holds %d (leak or double-free of %d)",
			total, alloc, alloc-total)
	}
	free := mgr.FreeRegions()
	for _, sp := range spans {
		for _, fr := range free {
			if sp.off < fr.Off+fr.Len && fr.Off < sp.end {
				return fmt.Errorf("%s [%d,%d) overlaps allocator free region [%d,%d)",
					sp.what, sp.off, sp.end, fr.Off, fr.Off+fr.Len)
			}
		}
	}
	return nil
}

// verifySurfaceLocked reconciles the storage-surface observatory's
// incrementally maintained band accounting against the extent table:
// the observatory must track exactly the owned extents (non-grouped
// backend files, live set extents, pending reclaims), its physical
// total must equal the allocator's, its incremental per-band alloc
// counters must equal a fresh recomputation from its extent map, and
// every extent's dead bytes must fit inside the extent. Caller holds
// d.mu.
func (d *DB) verifySurfaceLocked() error {
	s := &d.surface
	if !s.enabled {
		return nil
	}

	// The fresh scan: the same span set verifyExtents checks.
	want := map[int64]int64{}
	for _, fr := range d.backend.Files() {
		if fr.Grouped {
			continue
		}
		want[fr.Extent.Off] = fr.Extent.Len
	}
	for _, rec := range d.vs.Sets() {
		want[rec.Off] = rec.Len
	}
	for _, pr := range d.reclaims {
		for _, ext := range pr.extents {
			want[ext.Off] = ext.Len
		}
	}

	exts := s.extents()
	if len(exts) != len(want) {
		return fmt.Errorf("surface tracks %d extents but the extent table owns %d", len(exts), len(want))
	}
	var phys int64
	bands := map[int64]int64{}
	for _, e := range exts {
		if l, ok := want[e.Off]; !ok || l != e.Len {
			return fmt.Errorf("surface extent [%d,%d) not in the extent table (table has len %d)", e.Off, e.Off+e.Len, l)
		}
		if e.Dead < 0 || e.Dead > e.Len {
			return fmt.Errorf("surface extent [%d,%d) has dead bytes %d outside [0,%d]", e.Off, e.Off+e.Len, e.Dead, e.Len)
		}
		phys += e.Len
		end := e.Off + e.Len
		for b := e.Off / s.stride; b*s.stride < end; b++ {
			lo, hi := b*s.stride, (b+1)*s.stride
			if e.Off > lo {
				lo = e.Off
			}
			if end < hi {
				hi = end
			}
			bands[b] += hi - lo
		}
	}
	gotPhys, gotDead := s.totals()
	if gotPhys != phys {
		return fmt.Errorf("surface physical counter %d != extent sum %d", gotPhys, phys)
	}
	if alloc := d.dev.DBand.AllocatedBytes(); gotPhys != alloc {
		return fmt.Errorf("surface physical counter %d != allocator's %d", gotPhys, alloc)
	}
	if gotDead < 0 || gotDead > gotPhys {
		return fmt.Errorf("surface dead counter %d outside [0,%d]", gotDead, gotPhys)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for b, alloc := range bands {
		st := s.bands[b]
		if st == nil || st.alloc != alloc {
			var got int64
			if st != nil {
				got = st.alloc
			}
			return fmt.Errorf("band %d: incremental alloc %d != recomputed %d", b, got, alloc)
		}
	}
	for b, st := range s.bands {
		if st.alloc != bands[b] {
			return fmt.Errorf("band %d: incremental alloc %d != recomputed %d", b, st.alloc, bands[b])
		}
	}
	return nil
}
