package lsm

import (
	"fmt"

	"sealdb/internal/kv"
	"sealdb/internal/memtable"
	"sealdb/internal/version"
	"sealdb/internal/wal"
)

// Put writes a single key/value pair.
func (d *DB) Put(key, value []byte) error {
	b := NewBatch()
	b.Put(key, value)
	return d.Apply(b)
}

// Delete writes a tombstone for key.
func (d *DB) Delete(key []byte) error {
	b := NewBatch()
	b.Delete(key)
	return d.Apply(b)
}

// Apply atomically logs and applies a batch: WAL first, then the
// memtable, rotating the memtable (and compacting as needed) when it
// is full.
func (d *DB) Apply(b *Batch) error {
	return d.ApplyCtx(b, OpContext{})
}

// ApplyCtx is Apply carrying a request context: when tracing is
// enabled, the commit's physical I/Os — WAL append, and any flush or
// compaction stall the batch absorbed — are attributed to ctx.ReqID.
// With tracing off it is exactly Apply.
func (d *DB) ApplyCtx(b *Batch, ctx OpContext) error {
	if b.Len() == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeAllowed(); err != nil {
		return err
	}
	ot := d.traceBegin("apply", ctx.ReqID)
	err := d.applyLocked(b, ot)
	d.traceEnd(ot, err)
	return err
}

// applyLocked is the commit path body. Caller holds d.mu and has
// passed writeAllowed; ot may be nil (tracing off).
func (d *DB) applyLocked(b *Batch, ot *opTrace) error {
	startBusy := d.disk.Stats().BusyTime
	si := ot.stageStart(stageCompactionStall, d.traceNow(ot))
	if err := d.makeRoomForWrite(b.Size()); err != nil {
		return d.failWrite(err)
	}
	ot.stageEnd(si, d.traceNow(ot), d.metrics.stageStallNS)
	base := d.seq + 1
	d.seq += kv.SeqNum(b.count)
	b.setSeq(base)
	if d.cfg.vlogEnabled() {
		// Separate large values into the log before the WAL append:
		// the record write is synchronous, so by the time the pointer
		// is logged (and the batch acknowledged) its bytes are on the
		// device. A crash in between strands dead log bytes, never a
		// dangling pointer.
		records, appended, err := d.separateBatch(b)
		if err != nil {
			return d.failWrite(err)
		}
		if appended > 0 {
			d.stats.VlogAppendBytes += appended
			d.metrics.vlogAppends.Add(records)
			d.metrics.vlogAppendBytes.Add(appended)
			d.journal.Record("vlog_append", map[string]int64{
				"records": records, "bytes": appended,
			})
		}
	}
	si = ot.stageStart(stageWALAppend, d.traceNow(ot))
	if err := d.walW.AddRecord(b.rep); err != nil {
		return d.failWrite(err)
	}
	ot.stageEnd(si, d.traceNow(ot), d.metrics.stageWALNS)
	si = ot.stageStart(stageMemtable, d.traceNow(ot))
	if _, _, err := decodeBatch(b.rep, func(seq kv.SeqNum, kind kv.Kind, key, value []byte) error {
		d.mem.Add(seq, kind, key, value)
		return nil
	}); err != nil {
		return err
	}
	ot.stageEnd(si, d.traceNow(ot), d.metrics.stageMemtableNS)
	d.stats.UserBytes += b.bytes
	d.stats.UserWrites += int64(b.Len())
	d.metrics.writes.Add(int64(b.Len()))
	d.metrics.writeBytes.Add(b.bytes)
	// Write latency includes any rotation/compaction stall the batch
	// absorbed in makeRoomForWrite — the user-visible cost.
	d.metrics.writeLatency.Observe(int64(d.disk.Stats().BusyTime - startBusy))
	// Periodic storage-surface snapshot; with sampling disabled this is
	// two field reads (see the zero-alloc test in surface_test.go).
	d.maybeSurfaceSnapshot()
	// Opportunistic value-log collection: at most one pass, so the
	// stall any single Apply absorbs stays bounded.
	return d.maybeVlogGC()
}

// makeRoomForWrite rotates the memtable when it (or its WAL) is full,
// then runs compactions until every level is back under its limit.
// Caller holds d.mu.
func (d *DB) makeRoomForWrite(incoming int64) error {
	walSlack := incoming + incoming/8 + 4096 // framing overhead bound
	if d.mem.ApproximateSize()+incoming < d.cfg.MemtableSize &&
		d.walFile.Size()+walSlack < d.walLimit {
		return nil
	}
	if d.mem.Empty() && d.walFile.Size()+walSlack < d.walLimit {
		// A batch larger than the memtable itself: legal, flush after.
		return nil
	}
	// A single batch can exceed the standard WAL extent; the fresh
	// log is sized to hold it.
	need := d.cfg.walSize()
	if walSlack*2 > need {
		need = walSlack * 2
	}
	if err := d.rotateAndFlush(need); err != nil {
		return err
	}
	return d.compactUntilBalanced()
}

// rotateAndFlush freezes the memtable, starts a fresh WAL of at
// least walBytes, and flushes the frozen table to level 0. The new
// WAL is created first so its number rides in the flush edit:
// recovery then replays only mutations newer than the flush. Caller
// holds d.mu.
func (d *DB) rotateAndFlush(walBytes int64) error {
	imm := d.mem
	d.mem = memtable.New(d.nextMemSeed())
	oldWalNum := d.walNum
	num := d.vs.NewFileNum()
	f, err := d.backend.CreateAppend(num, walBytes)
	if err != nil {
		return err
	}
	d.walNum = num
	d.walFile = f
	d.walLimit = walBytes
	d.walW = wal.NewTaggedWriter(f, num)
	if err := d.flushMemtable(imm, num); err != nil {
		return err
	}
	if imm.Empty() {
		// Nothing to flush (a batch larger than the WAL arrived at an
		// empty memtable), so flushMemtable logged no edit — but the
		// manifest must still learn the new log number before the old
		// log disappears, or every write acknowledged into the new
		// WAL would be invisible to recovery.
		e := &version.Edit{HasLogNum: true, LogNum: num, HasLastSeq: true, LastSeq: d.seq}
		if err := d.vs.LogAndApply(e); err != nil {
			return err
		}
	}
	d.backend.Remove(oldWalNum)
	d.metrics.walRotations.Inc()
	d.journal.Record("wal_rotate", map[string]int64{
		"num": int64(num), "old": int64(oldWalNum),
	})
	return nil
}

// compactUntilBalanced runs compactions while any level exceeds its
// target. With the synchronous execution model this is the paper's
// steady-state behaviour: writes stall while compaction debt drains,
// which is exactly when the disk is the bottleneck.
func (d *DB) compactUntilBalanced() error {
	for i := 0; ; i++ {
		c := d.pickCompaction()
		if c == nil {
			return nil
		}
		if err := d.runCompaction(c); err != nil {
			return err
		}
		if i > 10000 {
			return fmt.Errorf("lsm: compaction loop did not converge")
		}
	}
}
