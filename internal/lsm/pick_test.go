package lsm

import (
	"fmt"
	"testing"

	"sealdb/internal/kv"
	"sealdb/internal/version"
)

// mkMeta builds a FileMeta spanning [lo, hi] user keys.
func mkMeta(num uint64, lo, hi string, size int64) *version.FileMeta {
	return &version.FileMeta{
		Num:      num,
		Size:     size,
		Smallest: kv.MakeInternalKey(nil, []byte(lo), 100, kv.KindSet),
		Largest:  kv.MakeInternalKey(nil, []byte(hi), 1, kv.KindSet),
	}
}

// installFiles force-feeds a version state through the manifest.
func installFiles(t *testing.T, d *DB, adds []version.AddedFile) {
	t.Helper()
	if err := d.vs.LogAndApply(&version.Edit{Added: adds}); err != nil {
		t.Fatal(err)
	}
}

func TestPickCompactionIdleWhenBalanced(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	if c := d.pickCompaction(); c != nil {
		t.Fatalf("empty store picked a compaction: %+v", c)
	}
	// Below every trigger: three L0 files (trigger is 4).
	installFiles(t, d, []version.AddedFile{
		{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "a", "c", 1000)},
		{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "b", "d", 1000)},
		{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "c", "e", 1000)},
	})
	if c := d.pickCompaction(); c != nil {
		t.Fatalf("under-trigger store picked a compaction: %+v", c)
	}
}

func TestPickCompactionL0Fixpoint(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	// Four overlapping-chain L0 files: a-c, c-e, e-g, g-i. Picking
	// any victim must transitively pull in the whole chain.
	installFiles(t, d, []version.AddedFile{
		{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "a", "c", 1000)},
		{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "c", "e", 1000)},
		{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "e", "g", 1000)},
		{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "g", "i", 1000)},
	})
	c := d.pickCompaction()
	if c == nil {
		t.Fatal("no compaction at L0 trigger")
	}
	if c.level != 0 || len(c.inputs0) != 4 {
		t.Fatalf("L0 fixpoint: level %d inputs %d, want level 0 with 4", c.level, len(c.inputs0))
	}
}

func TestPickCompactionChoosesWorstLevel(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	d, _ := Open(cfg)
	defer d.Close()
	// L1 at 2x its target, L2 barely over: L1 must win.
	var adds []version.AddedFile
	perFile := cfg.SSTableSize
	filesL1 := int(2 * cfg.BaseLevelBytes / perFile)
	for i := 0; i < filesL1; i++ {
		lo := fmt.Sprintf("k%03d", i*2)
		hi := fmt.Sprintf("k%03d", i*2+1)
		adds = append(adds, version.AddedFile{Level: 1, Meta: mkMeta(d.vs.NewFileNum(), lo, hi, perFile)})
	}
	adds = append(adds, version.AddedFile{
		Level: 2, Meta: mkMeta(d.vs.NewFileNum(), "zz", "zzz", 10*cfg.BaseLevelBytes+1),
	})
	installFiles(t, d, adds)
	c := d.pickCompaction()
	if c == nil || c.level != 1 {
		t.Fatalf("picked %+v, want level 1", c)
	}
}

func TestPickVictimSetPriority(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	// Two sets in L2; set A has 2 invalid members, set B none. The
	// victim must come from set A (the paper's implicit GC priority).
	fA1, fA2 := d.vs.NewFileNum(), d.vs.NewFileNum()
	fB1 := d.vs.NewFileNum()
	recA := version.SetRecord{ID: fA1, Off: 0, Len: 4096, Members: 4}
	recB := version.SetRecord{ID: fB1, Off: 8192, Len: 4096, Members: 1}
	d.sets.register(recA, []uint64{fA1, fA2})
	d.sets.register(recB, []uint64{fB1})
	// recA claims 4 members but only 2 live -> 2 invalid.
	mA1 := mkMeta(fA1, "a", "b", 100)
	mA1.SetID = fA1
	mA2 := mkMeta(fA2, "c", "d", 100)
	mA2.SetID = fA1
	mB1 := mkMeta(fB1, "e", "f", 100)
	mB1.SetID = fB1
	installFiles(t, d, []version.AddedFile{
		{Level: 2, Meta: mB1}, {Level: 2, Meta: mA1}, {Level: 2, Meta: mA2},
	})
	victim := d.pickVictim(d.vs.Current(), 2)
	if victim == nil || victim.SetID != fA1 {
		t.Fatalf("victim %v, want a member of the high-invalid set %d", victim, fA1)
	}
}

func TestPickVictimRoundRobinPointer(t *testing.T) {
	d, _ := Open(tinyConfig(ModeLevelDB))
	defer d.Close()
	m1 := mkMeta(d.vs.NewFileNum(), "a", "b", 100)
	m2 := mkMeta(d.vs.NewFileNum(), "c", "d", 100)
	m3 := mkMeta(d.vs.NewFileNum(), "e", "f", 100)
	installFiles(t, d, []version.AddedFile{
		{Level: 1, Meta: m1}, {Level: 1, Meta: m2}, {Level: 1, Meta: m3},
	})
	// No pointer yet: first file.
	if v := d.pickVictim(d.vs.Current(), 1); v.Num != m1.Num {
		t.Fatalf("first victim %v", v)
	}
	// Pointer past m1: next file is m2; pointer past the end wraps.
	d.vs.LogAndApply(&version.Edit{CompactPointers: []version.CompactPointer{
		{Level: 1, Key: m1.Largest.Clone()},
	}})
	if v := d.pickVictim(d.vs.Current(), 1); v.Num != m2.Num {
		t.Fatalf("victim after pointer %v, want m2", v)
	}
	d.vs.LogAndApply(&version.Edit{CompactPointers: []version.CompactPointer{
		{Level: 1, Key: m3.Largest.Clone()},
	}})
	if v := d.pickVictim(d.vs.Current(), 1); v.Num != m1.Num {
		t.Fatalf("victim after wrap %v, want m1", v)
	}
}

func TestTrivialMoveDetection(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	// A lone oversize L1 file with no L2 overlap: trivial move.
	big := mkMeta(d.vs.NewFileNum(), "a", "b", 100*d.cfg.BaseLevelBytes)
	installFiles(t, d, []version.AddedFile{{Level: 1, Meta: big}})
	c := d.pickCompaction()
	if c == nil || !c.trivial {
		t.Fatalf("expected trivial move, got %+v", c)
	}
	if err := d.runCompaction(c); err != nil {
		t.Fatal(err)
	}
	v := d.vs.Current()
	if v.NumFiles(1) != 0 || v.NumFiles(2) != 1 {
		t.Fatalf("file did not move: L1=%d L2=%d", v.NumFiles(1), v.NumFiles(2))
	}
	if st := d.Stats(); st.TrivialMoves != 1 {
		t.Fatalf("trivial moves %d", st.TrivialMoves)
	}
}

func TestSMRDBFanInCap(t *testing.T) {
	cfg := tinyConfig(ModeSMRDB)
	cfg.MaxCompactionFiles = 3
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Many overlapping L1 files and a full-range L0 victim chain.
	var adds []version.AddedFile
	for i := 0; i < 10; i++ {
		adds = append(adds, version.AddedFile{Level: 1, Meta: mkMeta(d.vs.NewFileNum(), "a", "z", 1000)})
	}
	for i := 0; i < cfg.L0CompactTrigger; i++ {
		adds = append(adds, version.AddedFile{Level: 0, Meta: mkMeta(d.vs.NewFileNum(), "a", "z", 1000)})
	}
	installFiles(t, d, adds)
	c := d.pickCompaction()
	if c == nil {
		t.Fatal("no compaction")
	}
	if len(c.inputs1) != 3 {
		t.Fatalf("fan-in %d, want cap 3", len(c.inputs1))
	}
}
