package lsm

import (
	"sort"

	"sealdb/internal/storage"
	"sealdb/internal/version"
)

// setRegistry tracks live sets: which SSTables belong to which
// contiguously stored compaction-output group, how many members are
// already invalid (the paper's deferred victim reclamation), and when
// a group extent can be returned to the dynamic band manager.
type setRegistry struct {
	byID   map[uint64]*setState
	byFile map[uint64]uint64 // file num -> set id
}

type setState struct {
	rec  version.SetRecord
	live map[uint64]bool
}

func newSetRegistry() *setRegistry {
	return &setRegistry{byID: map[uint64]*setState{}, byFile: map[uint64]uint64{}}
}

// register adds a freshly written set. The set id is the first output
// file's number, which is unique for the lifetime of the DB.
func (r *setRegistry) register(rec version.SetRecord, files []uint64) {
	st := &setState{rec: rec, live: make(map[uint64]bool, len(files))}
	for _, f := range files {
		st.live[f] = true
		r.byFile[f] = rec.ID
	}
	r.byID[rec.ID] = st
}

// fileInvalid marks a set member dead. It returns the set's extent
// and true when the last member died and the extent must be freed.
func (r *setRegistry) fileInvalid(num uint64) (storage.Extent, uint64, bool) {
	id, ok := r.byFile[num]
	if !ok {
		return storage.Extent{}, 0, false
	}
	delete(r.byFile, num)
	st := r.byID[id]
	delete(st.live, num)
	if len(st.live) > 0 {
		return storage.Extent{}, 0, false
	}
	delete(r.byID, id)
	return storage.Extent{Off: st.rec.Off, Len: st.rec.Len}, id, true
}

// setOf returns the set id a file belongs to (0 if none).
func (r *setRegistry) setOf(num uint64) uint64 { return r.byFile[num] }

// invalidCount returns how many members of a set are already dead.
// Compacting members of high-invalid sets first empties their extents
// soonest — the paper's implicit garbage collection.
func (r *setRegistry) invalidCount(id uint64) int {
	st, ok := r.byID[id]
	if !ok {
		return 0
	}
	return st.rec.Members - len(st.live)
}

// liveSets returns the number of registered sets.
func (r *setRegistry) liveSets() int { return len(r.byID) }

// memberStats returns (liveMembers, totalMembers) across all sets,
// and the average member count, for the paper's set-size analysis.
func (r *setRegistry) memberStats() (live, total int) {
	for _, st := range r.byID {
		live += len(st.live)
		total += st.rec.Members
	}
	return live, total
}

// rebuild reconstructs the registry after recovery: set records come
// from the manifest, live membership from the recovered version.
// Sets that ended up with no live members (a crash between logging
// and freeing) are returned so the caller can free their extents and
// log the drops.
func (r *setRegistry) rebuild(records map[uint64]version.SetRecord, v *version.Version) []version.SetRecord {
	liveFiles := map[uint64][]uint64{} // set id -> live file nums
	for l := 0; l < version.NumLevels; l++ {
		for _, f := range v.Files[l] {
			if f.SetID != 0 {
				liveFiles[f.SetID] = append(liveFiles[f.SetID], f.Num)
			}
		}
	}
	var orphans []version.SetRecord
	ids := make([]uint64, 0, len(records))
	for id := range records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := records[id]
		files := liveFiles[id]
		if len(files) == 0 {
			orphans = append(orphans, rec)
			continue
		}
		r.register(rec, files)
		// register assumed all members live; restore the true count.
		// (rec.Members already reflects the original total.)
	}
	return orphans
}
