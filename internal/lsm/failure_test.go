package lsm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sealdb/internal/smr"
	"sealdb/internal/storage"
)

// flakyDrive wraps a drive and fails writes once armed.
type flakyDrive struct {
	smr.Drive
	failAfter atomic.Int64 // remaining successful writes; negative = unarmed
}

var errInjected = errors.New("injected device failure")

func (f *flakyDrive) WriteAt(p []byte, off int64) (time.Duration, error) {
	if n := f.failAfter.Load(); n >= 0 {
		if n == 0 {
			return 0, errInjected
		}
		f.failAfter.Add(-1)
	}
	return f.Drive.WriteAt(p, off)
}

// newFlakyDB builds a SEALDB store whose drive can be armed to fail.
func newFlakyDB(t *testing.T) (*DB, *flakyDrive) {
	t.Helper()
	cfg := tinyConfig(ModeSEALDB)
	dev := NewDevice(cfg)
	fd := &flakyDrive{Drive: dev.Drive}
	fd.failAfter.Store(-1)
	// Rebuild the backend over the flaky drive with the same dynamic
	// band allocator so placement behaviour is unchanged.
	dev.Backend = storage.NewBackend(fd, storage.NewDynamicBandAllocator(dev.DBand))
	dev.Drive = fd
	d, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	return d, fd
}

// TestWriteFailureSurfacesAndStoreStaysReadable: a device failure
// mid-operation must return an error to the caller while previously
// acknowledged data stays readable.
func TestWriteFailureSurfacesAndStoreStaysReadable(t *testing.T) {
	d, fd := newFlakyDB(t)
	defer d.Close()
	ref := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("pre%05d", i), fmt.Sprintf("v%d", i)
		if err := d.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}

	// Arm the failure and hammer writes until it fires.
	fd.failAfter.Store(20)
	var sawErr bool
	for i := 0; i < 5000 && !sawErr; i++ {
		if err := d.Put([]byte(fmt.Sprintf("post%05d", i)), []byte("x")); err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("injected failure never surfaced")
	}
	fd.failAfter.Store(-1) // heal

	// Everything acknowledged before the failure is still there.
	for k, v := range ref {
		got, err := d.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%q) after failure = (%q, %v)", k, got, err)
		}
	}
}

// TestTornWALRecovered: garbage at the tail of the live WAL (a torn
// final write) must not prevent recovery of the intact prefix.
func TestTornWALRecovered(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A few durable (flushed) writes plus some WAL-only writes.
	ref := loadRandom(t, d, 1500, 31)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("walonly%03d", i)
		d.Put([]byte(k), []byte("keep"))
		ref[k] = "keep"
	}
	// Locate the live WAL on the device and smash bytes beyond its
	// current logical end — a torn append that never completed.
	ext, err := d.backend.FileExtent(d.walNum)
	if err != nil {
		t.Fatal(err)
	}
	logical := d.walFile.Size()
	dev := d.Device()
	d.Close()

	if logical+64 < ext.Len {
		garbage := []byte("GARBAGEGARBAGEGARBAGE")
		// Write through the platter directly: at the device level this
		// region was already damaged-by-shingling anyway.
		if _, err := dev.Disk.WriteAt(garbage, ext.Off+logical+7); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatalf("recovery with torn WAL tail failed: %v", err)
	}
	defer d2.Close()
	verifyAll(t, d2, ref)
}

// TestRecoveryIdempotent: opening and closing repeatedly without
// writes must not lose or duplicate anything.
func TestRecoveryIdempotent(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	d, _ := Open(cfg)
	ref := loadRandom(t, d, 2000, 37)
	dev := d.Device()
	d.Close()
	for i := 0; i < 5; i++ {
		d2, err := OpenDevice(cfg, dev)
		if err != nil {
			t.Fatalf("reopen %d: %v", i, err)
		}
		verifyAll(t, d2, ref)
		if err := d2.VerifyIntegrity(); err != nil {
			t.Fatalf("reopen %d: %v", i, err)
		}
		d2.Close()
	}
}

// TestOpenRejectsBadGeometry covers configuration validation.
func TestOpenRejectsBadGeometry(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SSTableSize = 0 },
		func(c *Config) { c.BandSize = -1 },
		func(c *Config) { c.MemtableSize = 0 },
		func(c *Config) { c.GuardSize = -1 },
		func(c *Config) { c.L0CompactTrigger = 0 },
		func(c *Config) { c.LevelMultiplier = 1 },
		func(c *Config) { c.NumLevels = 1 },
		func(c *Config) { c.NumLevels = 9 },
		func(c *Config) { c.DiskCapacity = 0 },
		func(c *Config) { c.DeviceTimeScale = -2 },
	}
	for i, mutate := range bad {
		cfg := tinyConfig(ModeSEALDB)
		mutate(&cfg)
		if _, err := Open(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
