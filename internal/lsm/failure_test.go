package lsm

import (
	"errors"
	"fmt"
	"testing"

	"sealdb/internal/faultfs"
	"sealdb/internal/smr"
)

// newFaultDB builds a store with a faultfs injector spliced into the
// drive stack via the WrapDrive hook, under the retry middleware.
func newFaultDB(t *testing.T, mode Mode) (*DB, *faultfs.Drive) {
	t.Helper()
	cfg := tinyConfig(mode)
	var fd *faultfs.Drive
	cfg.WrapDrive = func(inner smr.Drive) smr.Drive {
		fd = faultfs.New(inner, 7)
		return fd
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, fd
}

// TestPermanentWriteFailureDegradesStore: a permanent device failure
// mid-operation surfaces to the caller, moves the store into
// read-only degraded mode (every later write fails with ErrDegraded
// without touching the device), and leaves acknowledged data
// readable.
func TestPermanentWriteFailureDegradesStore(t *testing.T) {
	d, fd := newFaultDB(t, ModeSEALDB)
	defer d.Close()
	ref := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("pre%05d", i), fmt.Sprintf("v%d", i)
		if err := d.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}

	// The next device write fails permanently.
	fd.Inject(faultfs.Rule{Op: faultfs.OpWrite, Count: 1})
	var sawErr bool
	for i := 0; i < 5000 && !sawErr; i++ {
		if err := d.Put([]byte(fmt.Sprintf("post%05d", i)), []byte("x")); err != nil {
			var fe *faultfs.Error
			if !errors.As(err, &fe) || fe.Temporary {
				t.Fatalf("first failure should be the injected permanent error, got %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("injected failure never surfaced")
	}

	// The store is now degraded: writes and maintenance fail with
	// ErrDegraded, distinct from the device error.
	if err := d.Degraded(); err == nil {
		t.Fatal("Degraded() = nil after a permanent write failure")
	}
	if err := d.Put([]byte("after"), []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put on degraded store = %v, want ErrDegraded", err)
	}
	if err := d.FlushMemtable(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("FlushMemtable on degraded store = %v, want ErrDegraded", err)
	}
	if err := d.CompactAll(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("CompactAll on degraded store = %v, want ErrDegraded", err)
	}

	// Everything acknowledged before the failure is still there.
	for k, v := range ref {
		got, err := d.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%q) on degraded store = (%q, %v)", k, got, err)
		}
	}

	// The fault profile exposes the whole story.
	fp := d.FaultProfile()
	if !fp.Degraded || fp.DegradedCause == "" {
		t.Fatalf("FaultProfile degraded = %v cause %q", fp.Degraded, fp.DegradedCause)
	}
	if fp.Injected["injected_write_errors"] != 1 {
		t.Fatalf("injected_write_errors = %d, want 1", fp.Injected["injected_write_errors"])
	}
}

// TestTransientWriteFailureHealsViaRetry: transient device errors
// within the retry budget are absorbed — the write succeeds, nothing
// degrades, and the retry counters record the recovery.
func TestTransientWriteFailureHealsViaRetry(t *testing.T) {
	d, fd := newFaultDB(t, ModeSEALDB)
	defer d.Close()
	if err := d.Put([]byte("before"), []byte("x")); err != nil {
		t.Fatal(err)
	}

	// The next two write attempts fail transiently; the default
	// budget of 3 retries rides them out.
	fd.Inject(faultfs.Rule{Op: faultfs.OpWrite, Count: 2, Temporary: true})
	if err := d.Put([]byte("hiccup"), []byte("survives")); err != nil {
		t.Fatalf("Put through transient errors = %v, want success", err)
	}
	if err := d.Degraded(); err != nil {
		t.Fatalf("store degraded by transient errors: %v", err)
	}
	if got, err := d.Get([]byte("hiccup")); err != nil || string(got) != "survives" {
		t.Fatalf("Get after retried write = (%q, %v)", got, err)
	}

	fp := d.FaultProfile()
	if fp.Retry == nil || fp.Retry.Recovered < 1 {
		t.Fatalf("retry stats did not record the recovery: %+v", fp.Retry)
	}
	if fp.Injected["injected_write_errors"] != 2 {
		t.Fatalf("injected_write_errors = %d, want 2", fp.Injected["injected_write_errors"])
	}
}

// TestTornWALRecovered: corruption at the tail of the live WAL (a
// torn final append, injected as bit flips past the logical end)
// must not prevent recovery of the intact prefix, and the skipped
// bytes must be reported.
func TestTornWALRecovered(t *testing.T) {
	d, fd := newFaultDB(t, ModeSEALDB)
	// A few durable (flushed) writes plus some WAL-only writes.
	ref := loadRandom(t, d, 1500, 31)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("walonly%03d", i)
		d.Put([]byte(k), []byte("keep"))
		ref[k] = "keep"
	}
	// Locate the live WAL and flip bits right where the next record
	// header would land — a torn append that never completed.
	ext, err := d.backend.FileExtent(d.walNum)
	if err != nil {
		t.Fatal(err)
	}
	logical := d.walFile.Size()
	dev := d.Device()
	cfg := d.cfg
	d.Close()

	if logical+24 >= ext.Len {
		t.Fatalf("WAL unexpectedly full: logical %d of %d", logical, ext.Len)
	}
	for i := int64(0); i < 24; i++ {
		if err := fd.FlipBit(ext.Off+logical+i, uint(i%8)); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatalf("recovery with torn WAL tail failed: %v", err)
	}
	defer d2.Close()
	verifyAll(t, d2, ref)
	rec := d2.Recovery()
	if !rec.WALTornTail || rec.WALSkippedBytes == 0 {
		t.Fatalf("recovery did not report the torn tail: %+v", rec)
	}
	if rec.WALRecords == 0 {
		t.Fatalf("no WAL records replayed before the tear: %+v", rec)
	}
}

// TestRecoveryIdempotent: opening and closing repeatedly without
// writes must not lose or duplicate anything.
func TestRecoveryIdempotent(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	d, _ := Open(cfg)
	ref := loadRandom(t, d, 2000, 37)
	dev := d.Device()
	d.Close()
	for i := 0; i < 5; i++ {
		d2, err := OpenDevice(cfg, dev)
		if err != nil {
			t.Fatalf("reopen %d: %v", i, err)
		}
		verifyAll(t, d2, ref)
		if err := d2.VerifyIntegrity(); err != nil {
			t.Fatalf("reopen %d: %v", i, err)
		}
		d2.Close()
	}
}

// TestOpenRejectsBadGeometry covers configuration validation.
func TestOpenRejectsBadGeometry(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SSTableSize = 0 },
		func(c *Config) { c.BandSize = -1 },
		func(c *Config) { c.MemtableSize = 0 },
		func(c *Config) { c.GuardSize = -1 },
		func(c *Config) { c.L0CompactTrigger = 0 },
		func(c *Config) { c.LevelMultiplier = 1 },
		func(c *Config) { c.NumLevels = 1 },
		func(c *Config) { c.NumLevels = 9 },
		func(c *Config) { c.DiskCapacity = 0 },
		func(c *Config) { c.DeviceTimeScale = -2 },
	}
	for i, mutate := range bad {
		cfg := tinyConfig(ModeSEALDB)
		mutate(&cfg)
		if _, err := Open(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
