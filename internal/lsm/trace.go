package lsm

import (
	"fmt"
	"sync/atomic"

	"sealdb/internal/obs"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
)

// OpContext carries request-scoped identity into an engine operation.
// The serving layer fills ReqID with the wire request id so a sampled
// operation's span tree links the network request to the physical
// I/Os it caused. The zero value is a valid anonymous context.
type OpContext struct {
	// ReqID is the originating wire request id (0 when the operation
	// did not arrive over the network).
	ReqID uint64
}

// TraceConfig configures the request tracer. The tracer is cheap
// enough to leave on for experiments, and free when disabled: the
// read hot path takes one atomic load and allocates nothing.
type TraceConfig struct {
	// Enabled starts the DB with tracing on. It can be toggled at
	// runtime with DB.SetTracing (the server does, when a client
	// negotiates wire.FeatureTrace).
	Enabled bool
	// SampleEvery journals every Nth traced operation's full span
	// tree (0 means the default of 128; 1 journals every operation).
	// Slow operations are always journaled regardless of sampling.
	SampleEvery int64
	// SlowOpNS is the slow-op log threshold: any traced operation
	// consuming at least this much simulated device time has its span
	// tree journaled (0 means the default of 10ms; negative disables
	// the slow-op log).
	SlowOpNS int64
	// MaxIOsPerOp bounds the attributed I/O records kept per
	// operation; accesses beyond the bound are still counted in the
	// operation totals but drop their per-access detail (0 means the
	// default of 32).
	MaxIOsPerOp int
}

func (t *TraceConfig) sampleEvery() int64 {
	if t.SampleEvery <= 0 {
		return 128
	}
	return t.SampleEvery
}

func (t *TraceConfig) slowOpNS() int64 {
	if t.SlowOpNS < 0 {
		return 0 // disabled
	}
	if t.SlowOpNS == 0 {
		return 10_000_000 // 10ms of device time
	}
	return t.SlowOpNS
}

func (t *TraceConfig) maxIOsPerOp() int {
	if t.MaxIOsPerOp <= 0 {
		return 32
	}
	return t.MaxIOsPerOp
}

// Traced-op stage names. Stage spans are journaled as
// "stage_<name>" children of the operation's root span.
const (
	stageWALAppend       = "wal_append"
	stageMemtable        = "memtable"
	stageCompactionStall = "compaction_stall"
	stageReadMemtable    = "read_memtable"
)

// ioRecord is one attributed physical access inside a traced op.
type ioRecord struct {
	write        bool
	offset       int64
	length       int
	seekDistance int64
	seek         bool
	cacheHit     bool
	// startNS/endNS are reconstructed device timestamps: under the
	// one-big-mutex execution model all device time consumed during
	// an op belongs to that op, so accesses tile the op's interval.
	startNS, endNS int64
}

// stageRecord is one completed stage inside a traced op.
type stageRecord struct {
	name           string
	startNS, endNS int64
}

// opTrace accumulates one traced operation. The tracer owns a single
// reusable record, since engine operations serialize on d.mu.
type opTrace struct {
	op      string
	reqID   uint64
	startNS int64
	cursor  int64 // reconstructed device clock (see ioRecord)

	ios       []ioRecord // bounded by TraceConfig.MaxIOsPerOp
	truncated int64      // accesses beyond the ios bound

	reads, writes         int64
	readBytes, writeBytes int64
	seeks, seekDistance   int64
	cacheHits             int64
	serviceNS             int64

	stages []stageRecord
}

func (c *opTrace) reset(op string, reqID uint64, nowNS int64) {
	c.op = op
	c.reqID = reqID
	c.startNS = nowNS
	c.cursor = nowNS
	c.ios = c.ios[:0]
	c.truncated = 0
	c.reads, c.writes = 0, 0
	c.readBytes, c.writeBytes = 0, 0
	c.seeks, c.seekDistance = 0, 0
	c.cacheHits = 0
	c.serviceNS = 0
	c.stages = c.stages[:0]
}

// stageStart opens a stage and returns its index. Safe on a nil
// receiver (returns -1), so call sites need no tracing guard.
func (c *opTrace) stageStart(name string, nowNS int64) int {
	if c == nil {
		return -1
	}
	c.stages = append(c.stages, stageRecord{name: name, startNS: nowNS})
	return len(c.stages) - 1
}

// stageEnd closes the stage and observes its device time in h.
func (c *opTrace) stageEnd(idx int, nowNS int64, h *obs.Histogram) {
	if c == nil || idx < 0 {
		return
	}
	st := &c.stages[idx]
	st.endNS = nowNS
	h.Observe(nowNS - st.startNS)
}

// tracer is the DB's request tracer: a platter.Sink attributing every
// physical access to the engine operation in flight, per-stage
// latency histograms, and a sampled/slow-op span-tree journal.
type tracer struct {
	db      *DB
	enabled atomic.Bool

	sampleEvery int64
	slowNS      int64
	maxIOs      int
	// cacheStart is the raw-disk offset of the fixed-band drive's
	// media cache (-1 when the mode's drive has none): accesses at or
	// beyond it are classified as media-cache hits.
	cacheStart int64

	// readStages holds the per-level read stage names, precomputed so
	// the read path never formats strings.
	readStages []string

	// cur is the operation being traced, nil between operations;
	// guarded by mu (d.mu): every engine operation — and therefore
	// every device access — runs under it, and the platter invokes the
	// sink synchronously on the operation's own goroutine.
	cur  *opTrace
	buf  opTrace // the single reusable record; guarded by mu
	nops int64   // traced-op count, drives sampling; guarded by mu
}

// init wires the tracer. Called once from initObs, before the DB is
// shared; it takes d.mu anyway so the buf/nops writes obey the same
// discipline as the trace paths.
func (t *tracer) init(d *DB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t.db = d
	tc := d.cfg.Trace
	t.sampleEvery = tc.sampleEvery()
	t.slowNS = tc.slowOpNS()
	t.maxIOs = tc.maxIOsPerOp()
	t.buf.ios = make([]ioRecord, 0, t.maxIOs)
	t.buf.stages = make([]stageRecord, 0, 8)
	t.cacheStart = -1
	if fbd, ok := smr.Base(d.drive).(*smr.FixedBandDrive); ok {
		t.cacheStart = fbd.CacheStart()
	}
	t.readStages = make([]string, d.cfg.NumLevels)
	for l := range t.readStages {
		t.readStages[l] = fmt.Sprintf("read_level_%d", l)
	}
	t.enabled.Store(tc.Enabled)
	d.disk.SetSink(t)
}

// ObserveAccess implements platter.Sink. Called under the disk lock,
// on the goroutine of the engine operation that issued the access; it
// must not call back into the disk. That caller holds d.mu whenever
// cur is non-nil, so the record mutation is serialized.
func (t *tracer) ObserveAccess(ai platter.AccessInfo) {
	c := t.cur
	if c == nil {
		return
	}
	if ai.Write {
		c.writes++
		c.writeBytes += int64(ai.Length)
	} else {
		c.reads++
		c.readBytes += int64(ai.Length)
	}
	if ai.Seek {
		c.seeks++
		c.seekDistance += ai.SeekDistance
	}
	hit := t.cacheStart >= 0 && ai.Offset >= t.cacheStart
	if hit {
		c.cacheHits++
	}
	c.serviceNS += ai.ServiceNS
	start := c.cursor
	c.cursor += ai.ServiceNS
	if len(c.ios) < cap(c.ios) {
		c.ios = append(c.ios, ioRecord{
			write: ai.Write, offset: ai.Offset, length: ai.Length,
			seekDistance: ai.SeekDistance, seek: ai.Seek, cacheHit: hit,
			startNS: start, endNS: c.cursor,
		})
	} else {
		c.truncated++
	}
}

// deviceNow returns the simulated device clock (the journal's clock).
func (d *DB) deviceNow() int64 { return int64(d.disk.Stats().BusyTime) }

// traceBegin opens a traced operation record, or returns nil when
// tracing is disabled — the only cost then is one atomic load, and
// nothing allocates on either path. Caller holds d.mu.
func (d *DB) traceBegin(op string, reqID uint64) *opTrace {
	t := &d.tracer
	if !t.enabled.Load() {
		return nil
	}
	c := &t.buf
	c.reset(op, reqID, d.deviceNow())
	t.cur = c
	return c
}

// traceEnd closes a traced operation: accounts the trace counters and
// journals the span tree when the op is sampled or slow. Caller holds
// d.mu; ot may be nil (untraced operation).
func (d *DB) traceEnd(ot *opTrace, err error) {
	if ot == nil {
		return
	}
	t := &d.tracer
	t.cur = nil
	endNS := d.deviceNow()

	m := &d.metrics
	m.traceOps.Inc()
	m.traceIOs.Add(ot.reads + ot.writes)
	m.traceIOBytes.Add(ot.readBytes + ot.writeBytes)
	m.traceCacheHits.Add(ot.cacheHits)
	m.traceDroppedIOs.Add(ot.truncated)

	t.nops++
	sampled := (t.nops-1)%t.sampleEvery == 0
	slow := t.slowNS > 0 && endNS-ot.startNS >= t.slowNS
	if !sampled && !slow {
		return
	}
	if sampled {
		m.traceSampled.Inc()
	}
	if slow {
		m.traceSlowOps.Inc()
	}
	t.emit(ot, endNS, err, slow)
}

// emit journals a traced operation's span tree: a root "op_<name>"
// span carrying the totals, one "stage_<name>" child per stage, and
// one "io" child per retained attributed access.
func (t *tracer) emit(ot *opTrace, endNS int64, err error, slow bool) {
	j := t.db.journal
	fields := map[string]int64{
		"req_id":        int64(ot.reqID),
		"reads":         ot.reads,
		"writes":        ot.writes,
		"read_bytes":    ot.readBytes,
		"write_bytes":   ot.writeBytes,
		"seeks":         ot.seeks,
		"seek_distance": ot.seekDistance,
		"service_ns":    ot.serviceNS,
	}
	if ot.cacheHits > 0 {
		fields["cache_hits"] = ot.cacheHits
	}
	if ot.truncated > 0 {
		fields["dropped_ios"] = ot.truncated
	}
	if err != nil {
		fields["err"] = 1
	}
	if slow {
		fields["slow"] = 1
	}
	root := j.RecordSpan("op_"+ot.op, 0, ot.startNS, endNS, fields)
	for i := range ot.stages {
		st := &ot.stages[i]
		j.RecordSpan("stage_"+st.name, root, st.startNS, st.endNS, nil)
	}
	for i := range ot.ios {
		io := &ot.ios[i]
		f := map[string]int64{
			"offset": io.offset,
			"length": int64(io.length),
		}
		if io.write {
			f["write"] = 1
		}
		if io.seek {
			f["seek"] = 1
			f["seek_distance"] = io.seekDistance
		}
		if io.cacheHit {
			f["cache_hit"] = 1
		}
		j.RecordSpan("io", root, io.startNS, io.endNS, f)
	}
}

// SetTracing enables or disables the request tracer at runtime. The
// serving layer turns tracing on when a client negotiates
// wire.FeatureTrace.
func (d *DB) SetTracing(on bool) { d.tracer.enabled.Store(on) }

// TracingEnabled reports whether the request tracer is on.
func (d *DB) TracingEnabled() bool { return d.tracer.enabled.Load() }
