package lsm

import "sealdb/internal/storage"

// Iterators capture the file set of the version current at their
// creation and reopen tables lazily between locked operations, so a
// compaction must not reclaim its input files while such an iterator
// is live. This is LevelDB's version reference count reduced to the
// single-mutex design: versions themselves need no refs because only
// file deletion (and dead-set extent frees) can hurt a reader.
//
// Each iterator pins the epoch current at its creation. A compaction
// that retires files while any iterator is live queues a
// pendingReclaim tagged with that epoch and bumps it; the reclaim
// runs once every iterator pinned at or before its epoch has closed.
// Iterators created after the bump were built from a version that no
// longer references the retired files, so they never block it.

// pendingReclaim is file and extent reclamation deferred past live
// iterators.
type pendingReclaim struct {
	epoch   uint64
	files   []uint64
	extents []storage.Extent
}

// pinIter registers a live iterator and returns the epoch it pins.
// Caller holds d.mu.
func (d *DB) pinIter() uint64 {
	e := d.iterEpoch
	d.iterPins[e]++
	return e
}

// unpinIter drops an iterator's pin and runs any reclamation it was
// blocking. Caller holds d.mu.
func (d *DB) unpinIter(epoch uint64) {
	if n := d.iterPins[epoch]; n > 1 {
		d.iterPins[epoch] = n - 1
		return
	}
	delete(d.iterPins, epoch)
	d.runReclaims()
}

// reclaim frees retired table files and dead-set extents, now if no
// iterator can still read them, deferred otherwise. Caller holds d.mu.
func (d *DB) reclaim(files []uint64, extents []storage.Extent) error {
	if len(d.iterPins) == 0 {
		return d.reclaimNow(files, extents)
	}
	d.reclaims = append(d.reclaims, pendingReclaim{
		epoch: d.iterEpoch, files: files, extents: extents,
	})
	d.iterEpoch++
	return nil
}

// reclaimNow performs the reclamation. Caller holds d.mu.
func (d *DB) reclaimNow(files []uint64, extents []storage.Extent) error {
	for _, num := range files {
		d.dropTable(num)
		d.backend.Remove(num)
	}
	for _, ext := range extents {
		if err := d.backend.FreeExtent(ext); err != nil {
			return err
		}
	}
	return nil
}

// runReclaims runs every pending reclamation that no live iterator
// blocks. Caller holds d.mu.
func (d *DB) runReclaims() {
	min := ^uint64(0)
	for e := range d.iterPins {
		if e < min {
			min = e
		}
	}
	for len(d.reclaims) > 0 && d.reclaims[0].epoch < min {
		p := d.reclaims[0]
		d.reclaims = d.reclaims[1:]
		if err := d.reclaimNow(p.files, p.extents); err != nil {
			// The space is leaked but the store is consistent; there
			// is no caller to hand the error to.
			d.journal.Record("reclaim_error", map[string]int64{"epoch": int64(p.epoch)})
		}
	}
}
