package lsm

import (
	"sealdb/internal/smr"
)

// LevelAmplification is one level's continuous write-amplification
// accounting: the logical bytes flushes/compactions have written into
// the level and read back out of it, and the level's share of overall
// WA (WriteBytes / UserBytes).
type LevelAmplification struct {
	Level      int     `json:"level"`
	Files      int     `json:"files"`
	Bytes      int64   `json:"bytes"`
	WriteBytes int64   `json:"write_bytes"`
	ReadBytes  int64   `json:"read_bytes"`
	WA         float64 `json:"wa"`
}

// CompactionAmplification is one compaction's (or flush's) own
// amplification: logical WA as OutputBytes/InputBytes and device-level
// AWA as DeviceBytes/HostBytes, both from exact per-compaction deltas.
type CompactionAmplification struct {
	ID          int     `json:"id"`
	FromLevel   int     `json:"from_level"`
	ToLevel     int     `json:"to_level"`
	InputBytes  int64   `json:"input_bytes"`
	OutputBytes int64   `json:"output_bytes"`
	HostBytes   int64   `json:"host_bytes"`
	DeviceBytes int64   `json:"device_bytes"`
	WA          float64 `json:"wa"`
	AWA         float64 `json:"awa"`
	Flush       bool    `json:"flush,omitempty"`
	TrivialMove bool    `json:"trivial_move,omitempty"`
}

// VlogAmplification is the value-log's share of write traffic when
// key–value separation is on: user-batch appends, GC rewrites, and
// the live/dead segment census the GC victim picker works from.
type VlogAmplification struct {
	AppendBytes int64 `json:"append_bytes"`
	GCRuns      int64 `json:"gc_runs"`
	GCBytes     int64 `json:"gc_bytes"`
	Segments    int   `json:"segments"`
	LiveBytes   int64 `json:"live_bytes"`
	DeadBytes   int64 `json:"dead_bytes"`
}

// AmplificationProfile is the /debug/amplification payload: the
// overall Table-I figures, the per-level continuous WA counters, the
// most recent per-compaction WA/AWA records, the value-log breakdown
// when key–value separation is on, and the fixed-band drive's
// media-cache state when the mode has one.
type AmplificationProfile struct {
	Overall     Amplification             `json:"overall"`
	Levels      []LevelAmplification      `json:"levels"`
	Compactions []CompactionAmplification `json:"recent_compactions"`
	Vlog        *VlogAmplification        `json:"vlog,omitempty"`
	MediaCache  *smr.MediaCacheStats      `json:"media_cache,omitempty"`
}

// recentCompactionWindow bounds the per-compaction records served by
// AmplificationProfile to the most recent entries.
const recentCompactionWindow = 64

// AmplificationProfile reports the continuous amplification
// accounting. Do not call while holding d.mu (it takes it).
func (d *DB) AmplificationProfile() AmplificationProfile {
	p := AmplificationProfile{Overall: d.Amplification()}

	d.mu.Lock()
	levels := make([]LevelAmplification, d.cfg.NumLevels)
	cur := d.vs.Current()
	for l := 0; l < d.cfg.NumLevels; l++ {
		levels[l] = LevelAmplification{
			Level: l,
			Files: cur.NumFiles(l),
			Bytes: cur.LevelBytes(l),
		}
	}
	comps := d.stats.Compactions
	if len(comps) > recentCompactionWindow {
		comps = comps[len(comps)-recentCompactionWindow:]
	}
	comps = append([]CompactionInfo(nil), comps...)
	if d.cfg.vlogEnabled() {
		va := &VlogAmplification{
			AppendBytes: d.stats.VlogAppendBytes,
			GCRuns:      d.stats.VlogGCRuns,
			GCBytes:     d.stats.VlogGCBytes,
		}
		va.LiveBytes, va.DeadBytes, va.Segments = d.vlog.tab.Totals()
		p.Vlog = va
	}
	d.mu.Unlock()

	for l := range levels {
		levels[l].WriteBytes = d.metrics.levelWriteBytes[l].Value()
		levels[l].ReadBytes = d.metrics.levelReadBytes[l].Value()
		if p.Overall.UserBytes > 0 {
			levels[l].WA = float64(levels[l].WriteBytes) / float64(p.Overall.UserBytes)
		}
	}
	p.Levels = levels

	p.Compactions = make([]CompactionAmplification, 0, len(comps))
	for _, ci := range comps {
		ca := CompactionAmplification{
			ID: ci.ID, FromLevel: ci.FromLevel, ToLevel: ci.ToLevel,
			InputBytes: ci.InputBytes, OutputBytes: ci.OutputBytes,
			HostBytes: ci.HostBytes, DeviceBytes: ci.DeviceBytes,
			Flush: ci.Flush, TrivialMove: ci.TrivialMove,
		}
		if ci.InputBytes > 0 {
			ca.WA = float64(ci.OutputBytes) / float64(ci.InputBytes)
		}
		if ci.HostBytes > 0 {
			ca.AWA = float64(ci.DeviceBytes) / float64(ci.HostBytes)
		}
		p.Compactions = append(p.Compactions, ca)
	}

	if fbd, ok := smr.Base(d.drive).(*smr.FixedBandDrive); ok {
		mc := fbd.MediaCacheStats()
		p.MediaCache = &mc
	}
	return p
}
