package lsm

import (
	"fmt"
	"net/http"
	"time"

	"sealdb/internal/dband"
	"sealdb/internal/obs"
	"sealdb/internal/smr"
)

// dbMetrics holds the engine's hot-path metric handles so
// instrumentation sites pay one atomic add, not a registry lookup.
type dbMetrics struct {
	writes, writeBytes   *obs.Counter
	gets, getHits        *obs.Counter
	flushes, flushBytes  *obs.Counter
	compactions          *obs.Counter
	compactionReadBytes  *obs.Counter
	compactionWriteBytes *obs.Counter
	trivialMoves         *obs.Counter
	setsCreated          *obs.Counter
	setsDropped          *obs.Counter
	bandGCPasses         *obs.Counter
	bandGCMoves          *obs.Counter
	bandGCBytes          *obs.Counter
	walRotations         *obs.Counter
	walReplaySkipped     *obs.Counter
	degraded             *obs.Counter
	sstableCorrupt       *obs.Counter

	// Value-log (key–value separation) accounting (vlog.go).
	vlogAppends     *obs.Counter
	vlogAppendBytes *obs.Counter
	vlogReads       *obs.Counter
	vlogRotations   *obs.Counter
	vlogDeadBytes   *obs.Counter
	vlogGCRuns      *obs.Counter
	vlogGCRelocated *obs.Counter
	vlogGCReclaimed *obs.Counter
	vlogGCSkipped   *obs.Counter

	// Tracer accounting (trace.go).
	traceOps        *obs.Counter
	traceSampled    *obs.Counter
	traceSlowOps    *obs.Counter
	traceIOs        *obs.Counter
	traceIOBytes    *obs.Counter
	traceCacheHits  *obs.Counter
	traceDroppedIOs *obs.Counter

	// Per-level amplification accounting: logical bytes written into
	// and read out of each level by flushes and compactions.
	levelWriteBytes []*obs.Counter
	levelReadBytes  []*obs.Counter

	writeLatency      *obs.Histogram
	readLatency       *obs.Histogram
	flushLatency      *obs.Histogram
	compactionLatency *obs.Histogram

	// Per-stage latency breakdown, in simulated device nanoseconds;
	// observed only while tracing is enabled.
	stageWALNS      *obs.Histogram
	stageMemtableNS *obs.Histogram
	stageStallNS    *obs.Histogram
	stageReadMemNS  *obs.Histogram
	stageReadLevel  []*obs.Histogram
}

// initObs builds the DB's metrics registry and event journal and
// wires the device stack's observers into them. Called once from
// OpenDevice, before recovery (so recovery flushes are journaled).
func (d *DB) initObs() {
	d.reg = obs.NewRegistry()
	d.journal = obs.NewJournal(d.cfg.journalCapacity(), func() int64 {
		return int64(d.disk.Stats().BusyTime)
	})

	m := &d.metrics
	m.writes = d.reg.Counter("sealdb_writes_total")
	m.writeBytes = d.reg.Counter("sealdb_write_bytes_total")
	m.gets = d.reg.Counter("sealdb_gets_total")
	m.getHits = d.reg.Counter("sealdb_get_hits_total")
	m.flushes = d.reg.Counter("sealdb_flush_total")
	m.flushBytes = d.reg.Counter("sealdb_flush_bytes_total")
	m.compactions = d.reg.Counter("sealdb_compaction_total")
	m.compactionReadBytes = d.reg.Counter("sealdb_compaction_read_bytes_total")
	m.compactionWriteBytes = d.reg.Counter("sealdb_compaction_write_bytes_total")
	m.trivialMoves = d.reg.Counter("sealdb_trivial_move_total")
	m.setsCreated = d.reg.Counter("sealdb_sets_created_total")
	m.setsDropped = d.reg.Counter("sealdb_sets_dropped_total")
	m.bandGCPasses = d.reg.Counter("sealdb_band_gc_passes_total")
	m.bandGCMoves = d.reg.Counter("sealdb_band_gc_moves_total")
	m.bandGCBytes = d.reg.Counter("sealdb_band_gc_bytes_total")
	m.walRotations = d.reg.Counter("sealdb_wal_rotations_total")
	m.walReplaySkipped = d.reg.Counter("sealdb_wal_replay_skipped_bytes_total")
	m.degraded = d.reg.Counter("sealdb_degraded_total")
	m.sstableCorrupt = d.reg.Counter("sealdb_sstable_corrupt_blocks_total")
	m.vlogAppends = d.reg.Counter("sealdb_vlog_appends_total")
	m.vlogAppendBytes = d.reg.Counter("sealdb_vlog_append_bytes_total")
	m.vlogReads = d.reg.Counter("sealdb_vlog_reads_total")
	m.vlogRotations = d.reg.Counter("sealdb_vlog_rotations_total")
	m.vlogDeadBytes = d.reg.Counter("sealdb_vlog_dead_bytes_total")
	m.vlogGCRuns = d.reg.Counter("sealdb_vlog_gc_runs_total")
	m.vlogGCRelocated = d.reg.Counter("sealdb_vlog_gc_relocated_bytes_total")
	m.vlogGCReclaimed = d.reg.Counter("sealdb_vlog_gc_reclaimed_bytes_total")
	m.vlogGCSkipped = d.reg.Counter("sealdb_vlog_gc_skipped_total")
	m.writeLatency = d.reg.Histogram("sealdb_write_latency_ns")
	m.readLatency = d.reg.Histogram("sealdb_read_latency_ns")
	m.flushLatency = d.reg.Histogram("sealdb_flush_latency_ns")
	m.compactionLatency = d.reg.Histogram("sealdb_compaction_latency_ns")

	m.traceOps = d.reg.Counter("sealdb_trace_ops_total")
	m.traceSampled = d.reg.Counter("sealdb_trace_sampled_total")
	m.traceSlowOps = d.reg.Counter("sealdb_trace_slow_ops_total")
	m.traceIOs = d.reg.Counter("sealdb_trace_ios_total")
	m.traceIOBytes = d.reg.Counter("sealdb_trace_io_bytes_total")
	m.traceCacheHits = d.reg.Counter("sealdb_trace_cache_hits_total")
	m.traceDroppedIOs = d.reg.Counter("sealdb_trace_dropped_ios_total")

	m.stageWALNS = d.reg.Histogram("sealdb_stage_wal_append_ns")
	m.stageMemtableNS = d.reg.Histogram("sealdb_stage_memtable_ns")
	m.stageStallNS = d.reg.Histogram("sealdb_stage_compaction_stall_ns")
	m.stageReadMemNS = d.reg.Histogram("sealdb_stage_read_memtable_ns")
	m.stageReadLevel = make([]*obs.Histogram, d.cfg.NumLevels)
	m.levelWriteBytes = make([]*obs.Counter, d.cfg.NumLevels)
	m.levelReadBytes = make([]*obs.Counter, d.cfg.NumLevels)
	for l := 0; l < d.cfg.NumLevels; l++ {
		m.stageReadLevel[l] = d.reg.Histogram(fmt.Sprintf("sealdb_stage_read_level_%d_ns", l))
		m.levelWriteBytes[l] = d.reg.Counter(fmt.Sprintf("sealdb_level_%d_write_bytes_total", l))
		m.levelReadBytes[l] = d.reg.Counter(fmt.Sprintf("sealdb_level_%d_read_bytes_total", l))
	}

	// Media corruption detected on the read path: count it and
	// journal the damaged block's location so operators can map it
	// back to a table file without re-reading the device.
	d.cache.SetCorruptObserver(func(file, offset uint64) {
		m.sstableCorrupt.Inc()
		d.journal.Record("sstable_corrupt_block", map[string]int64{
			"file": int64(file), "offset": int64(offset),
		})
	})

	d.tracer.init(d)
	d.runtime = obs.NewRuntimeSampler()
	d.runtime.Register(d.reg)
	d.registerLockGauges()
	d.registerGauges()
	d.installDeviceObservers()
}

// registerLockGauges bridges the process-global lock-contention
// profile (obs.Mutex sites) into the registry as aggregate gauges, so
// /metrics shows at a glance whether lock waits matter; per-site
// wait/hold histograms live at /debug/contention.
func (d *DB) registerLockGauges() {
	reg := d.reg
	sum := func(pick func(obs.LockSiteSnapshot) int64) float64 {
		var n int64
		for _, s := range obs.ContentionProfile() {
			n += pick(s)
		}
		return float64(n)
	}
	reg.GaugeFunc("sealdb_lock_acquisitions", func() float64 {
		return sum(func(s obs.LockSiteSnapshot) int64 { return s.Acquisitions })
	})
	reg.GaugeFunc("sealdb_lock_contentions", func() float64 {
		return sum(func(s obs.LockSiteSnapshot) int64 { return s.Contentions })
	})
	reg.GaugeFunc("sealdb_lock_wait_ns", func() float64 {
		return sum(func(s obs.LockSiteSnapshot) int64 { return s.TotalWaitNS })
	})
	reg.GaugeFunc("sealdb_lock_hold_ns", func() float64 {
		return sum(func(s obs.LockSiteSnapshot) int64 { return s.TotalHoldNS })
	})
}

// journalCapacity returns the event-journal ring bound.
func (c *Config) journalCapacity() int {
	if c.JournalCapacity > 0 {
		return c.JournalCapacity
	}
	return 4096
}

// registerGauges wires pull gauges over every subsystem's existing
// counters. Gauge functions run at snapshot time and may take the
// DB and subsystem locks; nothing calls MetricsSnapshot while holding
// d.mu.
func (d *DB) registerGauges() {
	reg := d.reg

	// Block cache and bloom-filter effectiveness (satellite: formerly
	// private to sstable/cache.go).
	reg.GaugeFunc("sealdb_cache_hits", func() float64 { return float64(d.cache.Stats().Hits) })
	reg.GaugeFunc("sealdb_cache_misses", func() float64 { return float64(d.cache.Stats().Misses) })
	reg.GaugeFunc("sealdb_cache_hit_ratio", func() float64 { return d.cache.Stats().HitRatio })
	reg.GaugeFunc("sealdb_cache_used_bytes", func() float64 { return float64(d.cache.Stats().UsedBytes) })
	reg.GaugeFunc("sealdb_bloom_negatives", func() float64 { return float64(d.cache.Stats().BloomNegatives) })
	reg.GaugeFunc("sealdb_bloom_true_positives", func() float64 { return float64(d.cache.Stats().BloomTruePositives) })
	reg.GaugeFunc("sealdb_bloom_false_positives", func() float64 { return float64(d.cache.Stats().BloomFalsePositives) })

	// Device (platter) counters.
	reg.GaugeFunc("sealdb_device_bytes_read", func() float64 { return float64(d.disk.Stats().BytesRead) })
	reg.GaugeFunc("sealdb_device_bytes_written", func() float64 { return float64(d.disk.Stats().BytesWritten) })
	reg.GaugeFunc("sealdb_device_read_ops", func() float64 { return float64(d.disk.Stats().ReadOps) })
	reg.GaugeFunc("sealdb_device_write_ops", func() float64 { return float64(d.disk.Stats().WriteOps) })
	reg.GaugeFunc("sealdb_device_seeks", func() float64 { return float64(d.disk.Stats().Seeks) })
	reg.GaugeFunc("sealdb_device_busy_seconds", func() float64 { return d.disk.Stats().BusyTime.Seconds() })

	// Drive-level amplification (the paper's Table I, live).
	reg.GaugeFunc("sealdb_host_bytes_written", func() float64 { return float64(d.drive.HostBytesWritten()) })
	reg.GaugeFunc("sealdb_wa", func() float64 { return d.Amplification().WA })
	reg.GaugeFunc("sealdb_awa", func() float64 { return d.Amplification().AWA })
	reg.GaugeFunc("sealdb_mwa", func() float64 { return d.Amplification().MWA })

	// Storage backend activity.
	reg.GaugeFunc("sealdb_storage_files", func() float64 { return float64(d.backend.NumFiles()) })
	reg.GaugeFunc("sealdb_storage_files_written", func() float64 { return float64(d.backend.Stats().FilesWritten) })
	reg.GaugeFunc("sealdb_storage_file_bytes", func() float64 { return float64(d.backend.Stats().FileBytes) })
	reg.GaugeFunc("sealdb_storage_group_writes", func() float64 { return float64(d.backend.Stats().GroupWrites) })
	reg.GaugeFunc("sealdb_storage_group_bytes", func() float64 { return float64(d.backend.Stats().GroupBytes) })
	reg.GaugeFunc("sealdb_storage_removes", func() float64 { return float64(d.backend.Stats().Removes) })
	reg.GaugeFunc("sealdb_storage_extent_frees", func() float64 { return float64(d.backend.Stats().ExtentFrees) })

	// Engine state under d.mu: memtable, WAL, snapshots, sets, levels.
	reg.GaugeFunc("sealdb_memtable_bytes", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.mem.ApproximateSize())
	})
	reg.GaugeFunc("sealdb_wal_size_bytes", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.walW == nil {
			return 0
		}
		return float64(d.walW.Size())
	})
	reg.GaugeFunc("sealdb_wal_records", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.walW == nil {
			return 0
		}
		return float64(d.walW.Records())
	})
	reg.GaugeFunc("sealdb_open_snapshots", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.snapshots))
	})
	// Value-log segment table (its own lock, ordered after d.mu, so
	// these never take the DB mutex).
	if d.cfg.vlogEnabled() {
		reg.GaugeFunc("sealdb_vlog_segments", func() float64 {
			_, _, n := d.vlog.tab.Totals()
			return float64(n)
		})
		reg.GaugeFunc("sealdb_vlog_live_bytes", func() float64 {
			live, _, _ := d.vlog.tab.Totals()
			return float64(live)
		})
		reg.GaugeFunc("sealdb_vlog_dead_bytes", func() float64 {
			_, dead, _ := d.vlog.tab.Totals()
			return float64(dead)
		})
	}
	reg.GaugeFunc("sealdb_live_sets", func() float64 { return float64(d.SetProfile().LiveSets) })
	reg.GaugeFunc("sealdb_set_live_members", func() float64 { return float64(d.SetProfile().LiveMembers) })
	reg.GaugeFunc("sealdb_set_invalid_members", func() float64 { return float64(d.SetProfile().InvalidMembers) })
	for l := 0; l < d.cfg.NumLevels; l++ {
		level := l
		reg.GaugeFunc(fmt.Sprintf("sealdb_level_%d_files", level), func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.vs.Current().NumFiles(level))
		})
		reg.GaugeFunc(fmt.Sprintf("sealdb_level_%d_bytes", level), func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.vs.Current().LevelBytes(level))
		})
	}

	// Mode-specific device state.
	if mgr := d.dev.DBand; mgr != nil {
		reg.GaugeFunc("sealdb_dband_frontier_bytes", func() float64 { return float64(mgr.Frontier()) })
		reg.GaugeFunc("sealdb_dband_free_bytes", func() float64 { return float64(mgr.FreeBytes()) })
		reg.GaugeFunc("sealdb_dband_allocated_bytes", func() float64 { return float64(mgr.AllocatedBytes()) })
		threshold := d.cfg.SSTableSize + d.cfg.GuardSize
		reg.GaugeFunc("sealdb_dband_fragment_bytes", func() float64 { return float64(mgr.FragmentBytes(threshold)) })
		reg.GaugeFunc("sealdb_dband_bands", func() float64 { return float64(len(mgr.Bands())) })
		reg.GaugeFunc("sealdb_dband_appends", func() float64 { return float64(mgr.Stats().Appends) })
		reg.GaugeFunc("sealdb_dband_inserts", func() float64 { return float64(mgr.Stats().Inserts) })
		reg.GaugeFunc("sealdb_dband_frees", func() float64 { return float64(mgr.Stats().Frees) })
		reg.GaugeFunc("sealdb_dband_coalesces", func() float64 { return float64(mgr.Stats().Coalesces) })

		// Storage-surface observatory (surface.go): per-band live/dead
		// accounting, free-list fragmentation, and the continuous
		// space-amplification counter next to WA/AWA above.
		reg.GaugeFunc("sealdb_band_live_bytes", func() float64 {
			phys, dead := d.surface.totals()
			return float64(phys - dead)
		})
		reg.GaugeFunc("sealdb_band_dead_bytes", func() float64 {
			_, dead := d.surface.totals()
			return float64(dead)
		})
		reg.GaugeFunc("sealdb_band_heat_max", func() float64 {
			return d.surface.maxHeat(d.deviceNow())
		})
		reg.GaugeFunc("sealdb_band_frag_holes", func() float64 {
			return float64(mgr.FragProfile().Holes)
		})
		reg.GaugeFunc("sealdb_band_frag_largest_free", func() float64 {
			return float64(mgr.FragProfile().LargestFree)
		})
		reg.GaugeFunc("sealdb_band_frag_index", func() float64 {
			return mgr.FragProfile().Index
		})
		reg.GaugeFunc("sealdb_space_physical_bytes", func() float64 {
			phys, _ := d.surface.totals()
			return float64(phys)
		})
		reg.GaugeFunc("sealdb_space_live_bytes", func() float64 {
			return float64(d.SpaceProfile().LogicalLiveBytes)
		})
		reg.GaugeFunc("sealdb_space_amplification", func() float64 {
			return d.SpaceProfile().SpaceAmplification
		})
	}
	if fbd, ok := smr.Base(d.drive).(*smr.FixedBandDrive); ok {
		reg.GaugeFunc("sealdb_media_cache_cleans", func() float64 { return float64(fbd.MediaCacheStats().Cleans) })
		reg.GaugeFunc("sealdb_media_cache_clean_bytes", func() float64 { return float64(fbd.MediaCacheStats().CleanBytes) })
		reg.GaugeFunc("sealdb_media_cache_staged_writes", func() float64 { return float64(fbd.MediaCacheStats().StagedWrites) })
		reg.GaugeFunc("sealdb_media_cache_staged_bytes", func() float64 { return float64(fbd.MediaCacheStats().StagedBytes) })
		reg.GaugeFunc("sealdb_media_cache_dirty_bands", func() float64 { return float64(fbd.MediaCacheStats().DirtyBands) })
	}
	if rd := d.retryDrive(); rd != nil {
		reg.GaugeFunc("sealdb_write_retries", func() float64 { return float64(rd.Stats().Retried) })
		reg.GaugeFunc("sealdb_write_retry_recovered", func() float64 { return float64(rd.Stats().Recovered) })
		reg.GaugeFunc("sealdb_write_retry_exhausted", func() float64 { return float64(rd.Stats().Exhausted) })
	}
}

// retryDrive finds the retry middleware in the drive chain, if any.
func (d *DB) retryDrive() *smr.RetryDrive {
	drv := d.drive
	for {
		if rd, ok := drv.(*smr.RetryDrive); ok {
			return rd
		}
		u, ok := drv.(smr.Unwrapper)
		if !ok {
			return nil
		}
		drv = u.Unwrap()
	}
}

// installDeviceObservers journals the device-stack events the
// registry's gauges can only aggregate: media-cache cleaning RMWs and
// dynamic-band allocator activity.
func (d *DB) installDeviceObservers() {
	if rd := d.retryDrive(); rd != nil {
		rd.SetObserver(func(attempt int, err error, recovered bool) {
			d.journal.Record("write_retry", map[string]int64{
				"attempt": int64(attempt), "recovered": boolToInt64(recovered),
			})
		})
	}
	if fbd, ok := smr.Base(d.drive).(*smr.FixedBandDrive); ok {
		fbd.SetCleanObserver(func(band, bytes int64, dur time.Duration) {
			d.journal.Record("media_cache_clean", map[string]int64{
				"band": band, "bytes": bytes, "device_ns": int64(dur),
			})
		})
	}
	if mgr := d.dev.DBand; mgr != nil {
		mgr.SetObserver(func(op string, e dband.Extent) {
			d.journal.Record("dband_"+op, map[string]int64{
				"off": e.Off, "len": e.Len,
			})
			// Feed the storage-surface observatory: the allocator
			// observer sees the complete extent lifecycle (every
			// grant and free flows through the dynamic band manager).
			// Runs with dband_manager_mu held; the surface lock is a
			// leaf below it.
			switch op {
			case "free":
				d.surface.free(e.Off)
			default: // alloc_append, alloc_insert
				d.surface.alloc(e.Off, e.Len, int64(d.disk.Stats().BusyTime))
			}
		})
	}
}

// ObsRegistry returns the DB's metrics registry so colocated layers
// (the network server) can register their own series alongside the
// engine's; everything lands in one /metrics snapshot. Callers must
// follow the obsreg contract: literal snake_case names, one
// registration site each.
func (d *DB) ObsRegistry() *obs.Registry { return d.reg }

// MetricsSnapshot captures every metric — engine counters and
// latency histograms plus the pull gauges over the device stack — at
// one point in time. It is the same data the /metrics endpoint
// serves. Do not call while holding the DB's own callbacks.
func (d *DB) MetricsSnapshot() *obs.Snapshot {
	return d.reg.Snapshot()
}

// Events returns the journaled engine events (flushes, compactions,
// set migrations, band GC, media-cache cleans, dynamic-band allocator
// activity), oldest first. Timestamps are simulated device
// nanoseconds.
func (d *DB) Events() []obs.Event {
	return d.journal.Events()
}

// JournalDropped returns how many events the journal ring has
// evicted; offline analyzers use it to tell a complete event record
// from a truncated one.
func (d *DB) JournalDropped() int64 {
	return d.journal.Dropped()
}

// FaultProfile is the /debug/faults payload: degraded-mode state,
// retry-layer counters, injected-fault counters (when a fault
// injector is in the drive chain), and what the last recovery found.
type FaultProfile struct {
	Degraded      bool             `json:"degraded"`
	DegradedCause string           `json:"degraded_cause,omitempty"`
	Retry         *smr.RetryStats  `json:"retry,omitempty"`
	Injected      map[string]int64 `json:"injected,omitempty"`
	Recovery      RecoveryInfo     `json:"recovery"`
}

// FaultProfile reports the DB's fault, retry and recovery state.
func (d *DB) FaultProfile() FaultProfile {
	p := FaultProfile{Recovery: d.Recovery()}
	if err := d.Degraded(); err != nil {
		p.Degraded = true
		p.DegradedCause = err.Error()
	}
	if rd := d.retryDrive(); rd != nil {
		st := rd.Stats()
		p.Retry = &st
	}
	// A fault injector anywhere in the drive chain exposes its
	// counters without lsm importing the injection package.
	drv := d.drive
	for drv != nil {
		if fi, ok := drv.(interface{ FaultStats() map[string]int64 }); ok {
			p.Injected = fi.FaultStats()
			break
		}
		u, ok := drv.(smr.Unwrapper)
		if !ok {
			break
		}
		drv = u.Unwrap()
	}
	return p
}

// ContentionProfile reports the process-wide lock-contention profile
// (every obs.Mutex site, ranked by total wait). Empty histograms mean
// lock profiling is off — enable it with obs.SetLockProfiling(true)
// or the /debug/contention?profile=on control.
func (d *DB) ContentionProfile() []obs.LockSiteSnapshot {
	return obs.ContentionProfile()
}

// RuntimeProfile reports Go runtime telemetry (goroutines, GC pauses,
// scheduler latency, heap sizes), the /debug/runtime payload.
func (d *DB) RuntimeProfile() obs.RuntimeProfile {
	return d.runtime.Profile()
}

// ObsHandler returns the observability HTTP handler: /metrics
// (Prometheus text, or JSON with ?format=json), /debug/levels,
// /debug/sets, /debug/events, /debug/faults, /debug/amplification,
// /debug/bands (per-band heat/live/dead plus vlog segment occupancy),
// /debug/space (the space-amplification counter and its inputs),
// /debug/contention (?profile=on|off toggles lock profiling),
// /debug/runtime, and the /debug/pprof/* suite. The cmd drivers mount
// it behind their -serve flag.
func (d *DB) ObsHandler() http.Handler {
	m := obs.NewMux()
	m.HandleMetrics("/metrics", d.MetricsSnapshot)
	m.HandleJSON("/debug/levels", func() any { return d.LevelProfile() })
	m.HandleJSON("/debug/sets", func() any { return d.SetProfile() })
	m.HandleJSON("/debug/events", func() any { return d.Events() })
	m.HandleJSON("/debug/faults", func() any { return d.FaultProfile() })
	m.HandleJSON("/debug/amplification", func() any { return d.AmplificationProfile() })
	m.HandleJSON("/debug/bands", func() any { return d.BandProfile() })
	m.HandleJSON("/debug/space", func() any { return d.SpaceProfile() })
	m.HandleContention("/debug/contention")
	m.HandleJSON("/debug/runtime", func() any { return d.RuntimeProfile() })
	m.HandlePprof()
	return m
}
