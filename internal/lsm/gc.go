package lsm

import (
	"fmt"
	"io"
	"sort"

	"sealdb/internal/storage"
	"sealdb/internal/version"
)

// GCResult reports one DefragmentBands pass.
type GCResult struct {
	// SetsMoved is how many sets were relocated.
	SetsMoved int
	// BytesMoved is the live data rewritten to move them.
	BytesMoved int64
	// FragmentsBefore and FragmentsAfter are the unusable free bytes
	// (free regions too small to serve any insert) before and after.
	FragmentsBefore int64
	FragmentsAfter  int64
}

// DefragmentBands is the garbage-collection supplement the paper's
// §IV-C leaves as future work: small free fragments — regions that
// cannot hold even one SSTable plus a guard — are reclaimed by
// relocating the set downstream of each fragment to fresh space, so
// the fragment coalesces with the freed set extent into a usable
// region (or folds into the append frontier).
//
// The pass is explicit (call it from a maintenance window); each
// relocation costs one sequential read and one sequential write of
// the set's live members. maxMoves bounds the pass; <= 0 means no
// bound. Only meaningful in ModeSEALDB.
func (d *DB) DefragmentBands(maxMoves int) (GCResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var res GCResult
	if err := d.writeAllowed(); err != nil {
		return res, err
	}
	mgr := d.dev.DBand
	if mgr == nil {
		return res, fmt.Errorf("lsm: DefragmentBands requires dynamic bands (mode %v)", d.cfg.Mode)
	}
	// A fragment is a free region that cannot serve the smallest
	// useful insert: one SSTable plus its guard (Equation 1).
	threshold := d.cfg.SSTableSize + d.cfg.GuardSize
	res.FragmentsBefore = mgr.FragmentBytes(threshold)
	sp := d.journal.Begin("band_gc", 0)
	sp.Set("fragments_before", res.FragmentsBefore)

	// Index live sets by their extent start, and member files by set.
	records := d.vs.Sets()
	byOff := map[int64]version.SetRecord{}
	for _, rec := range records {
		byOff[rec.Off] = rec
	}
	members := map[uint64][]*version.FileMeta{}
	levels := map[uint64]map[uint64]int{} // set -> file num -> level
	v := d.vs.Current()
	for l := 0; l < d.cfg.NumLevels; l++ {
		for _, f := range v.Files[l] {
			if f.SetID == 0 {
				continue
			}
			members[f.SetID] = append(members[f.SetID], f)
			if levels[f.SetID] == nil {
				levels[f.SetID] = map[uint64]int{}
			}
			levels[f.SetID][f.Num] = l
		}
	}

	// Walk the fragments in address order and relocate each one's
	// downstream set. The free list changes as we go, so collect the
	// victims first.
	type victim struct {
		rec version.SetRecord
	}
	var victims []victim
	seen := map[uint64]bool{}
	for _, fr := range mgr.FreeRegions() {
		if fr.Len >= threshold {
			continue
		}
		rec, ok := byOff[fr.End()]
		if !ok || seen[rec.ID] {
			continue // neighbour is an ungrouped file or already queued
		}
		seen[rec.ID] = true
		victims = append(victims, victim{rec: rec})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].rec.Off < victims[j].rec.Off })

	for _, vic := range victims {
		if maxMoves > 0 && res.SetsMoved >= maxMoves {
			break
		}
		moved, err := d.relocateSet(vic.rec, members[vic.rec.ID], levels[vic.rec.ID], sp.ID())
		if err != nil {
			return res, err
		}
		res.SetsMoved++
		res.BytesMoved += moved
	}
	res.FragmentsAfter = mgr.FragmentBytes(threshold)
	d.metrics.bandGCPasses.Inc()
	d.metrics.bandGCMoves.Add(int64(res.SetsMoved))
	d.metrics.bandGCBytes.Add(res.BytesMoved)
	sp.Set("sets_moved", int64(res.SetsMoved))
	sp.Set("bytes_moved", res.BytesMoved)
	sp.Set("fragments_after", res.FragmentsAfter)
	sp.End()
	return res, nil
}

// relocateSet rewrites a set's live members into a fresh contiguous
// extent and frees the old one, letting the adjacent fragment
// coalesce. parent links the migration span to its band-GC pass.
// Caller holds d.mu.
func (d *DB) relocateSet(rec version.SetRecord, files []*version.FileMeta, levelOf map[uint64]int, parent uint64) (int64, error) {
	if len(files) == 0 {
		return 0, fmt.Errorf("lsm: relocating set %d with no live members", rec.ID)
	}
	msp := d.journal.Begin("set_migration", parent)
	msp.Set("set", int64(rec.ID))
	// Read the members in physical order (one sequential pass over
	// the old extent).
	sorted := append([]*version.FileMeta(nil), files...)
	sort.Slice(sorted, func(i, j int) bool {
		ei, _ := d.backend.FileExtent(sorted[i].Num)
		ej, _ := d.backend.FileExtent(sorted[j].Num)
		return ei.Off < ej.Off
	})
	nums := make([]uint64, len(sorted))
	datas := make([][]byte, len(sorted))
	var moved int64
	for i, f := range sorted {
		size, err := d.backend.FileSize(f.Num)
		if err != nil {
			return 0, err
		}
		buf := make([]byte, size)
		if _, err := d.backend.ReadFileAt(f.Num, buf, 0); err != nil && err != io.EOF {
			return 0, err
		}
		nums[i] = f.Num
		datas[i] = buf
		moved += size
	}

	// Drop the old placements (grouped: mapping only), then write the
	// group to fresh space and install the new set record.
	for _, f := range sorted {
		d.sets.fileInvalid(f.Num)
		d.dropTable(f.Num)
		if err := d.backend.Remove(f.Num); err != nil {
			return 0, err
		}
	}
	ext, grouped, err := d.backend.WriteGroup(nums, datas)
	if err != nil {
		return 0, err
	}
	if !grouped {
		return 0, fmt.Errorf("lsm: relocation backend refused group placement")
	}
	newID := d.vs.NewFileNum()
	newRec := version.SetRecord{ID: newID, Off: ext.Off, Len: ext.Len, Members: len(nums)}
	d.sets.register(newRec, nums)
	d.surfaceClaim(ext.Off, newID, moved)

	// One atomic edit: retire the old set, introduce the new one, and
	// repoint every member's SetID.
	edit := &version.Edit{
		DropSets: []uint64{rec.ID},
		NewSets:  []version.SetRecord{newRec},
	}
	for _, f := range sorted {
		nf := *f
		nf.SetID = newID
		lvl := levelOf[f.Num]
		edit.Deleted = append(edit.Deleted, version.DeletedFile{Level: lvl, Num: f.Num})
		edit.Added = append(edit.Added, version.AddedFile{Level: lvl, Meta: &nf})
	}
	if err := d.vs.LogAndApply(edit); err != nil {
		return 0, err
	}
	if err := d.backend.FreeExtent(storage.Extent{Off: rec.Off, Len: rec.Len}); err != nil {
		return 0, err
	}
	d.stats.GCMoves++
	d.stats.GCBytes += moved
	msp.Set("new_set", int64(newID))
	msp.Set("bytes", moved)
	msp.Set("members", int64(len(nums)))
	msp.End()
	return moved, nil
}
