package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestReverseFullScan: SeekToLast + Prev must yield exactly the
// forward scan reversed, across every mode.
func TestReverseFullScan(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			d, err := Open(tinyConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			ref := loadRandom(t, d, 3000, 411)
			keys := make([]string, 0, len(ref))
			for k := range ref {
				keys = append(keys, k)
			}
			sort.Strings(keys)

			it := d.NewIterator()
			defer it.Close()
			i := len(keys) - 1
			for it.SeekToLast(); it.Valid(); it.Prev() {
				if i < 0 {
					t.Fatalf("reverse scan yielded extra key %q", it.Key())
				}
				if string(it.Key()) != keys[i] {
					t.Fatalf("reverse position %d: got %q, want %q", i, it.Key(), keys[i])
				}
				if !bytes.Equal(it.Value(), []byte(ref[keys[i]])) {
					t.Fatalf("reverse value mismatch at %q", keys[i])
				}
				i--
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}
			if i != -1 {
				t.Fatalf("reverse scan stopped at index %d", i)
			}
		})
	}
}

// TestBidirectionalRandomWalk: a random Next/Prev/Seek walk must track
// a sorted reference exactly, including direction switches.
func TestBidirectionalRandomWalk(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadRandom(t, d, 3000, 413)
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	it := d.NewIterator()
	defer it.Close()
	rng := rand.New(rand.NewSource(17))
	pos := -1 // reference index; -1 = invalid
	for step := 0; step < 4000; step++ {
		switch rng.Intn(6) {
		case 0:
			it.SeekToFirst()
			pos = 0
			if len(keys) == 0 {
				pos = -1
			}
		case 1:
			it.SeekToLast()
			pos = len(keys) - 1
		case 2:
			target := fmt.Sprintf("key%07d", rng.Intn(4000))
			it.Seek([]byte(target))
			pos = sort.SearchStrings(keys, target)
			if pos == len(keys) {
				pos = -1
			}
		case 3, 4:
			if pos >= 0 {
				it.Next()
				pos++
				if pos >= len(keys) {
					pos = -1
				}
			}
		default:
			if pos >= 0 {
				it.Prev()
				pos--
			}
		}
		if pos < 0 || pos >= len(keys) {
			if it.Valid() {
				t.Fatalf("step %d: iterator valid at %q, reference invalid", step, it.Key())
			}
			pos = -1
			continue
		}
		if !it.Valid() {
			t.Fatalf("step %d: iterator invalid, reference at %q (idx %d)", step, keys[pos], pos)
		}
		if string(it.Key()) != keys[pos] {
			t.Fatalf("step %d: iterator at %q, reference at %q", step, it.Key(), keys[pos])
		}
		if !bytes.Equal(it.Value(), []byte(ref[keys[pos]])) {
			t.Fatalf("step %d: value mismatch at %q", step, it.Key())
		}
	}
}

// TestPrevSkipsTombstonesAndOldVersions: reverse iteration must
// resolve multi-version keys to the newest visible version and skip
// deleted keys entirely.
func TestPrevSkipsTombstonesAndOldVersions(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Overwrite each key several times, delete every third, and churn
	// so versions spread across memtable and several levels.
	for round := 0; round < 5; round++ {
		for i := 0; i < 300; i++ {
			d.Put([]byte(fmt.Sprintf("r%04d", i)), []byte(fmt.Sprintf("round%d-%d", round, i)))
		}
		d.FlushMemtable()
	}
	for i := 0; i < 300; i += 3 {
		d.Delete([]byte(fmt.Sprintf("r%04d", i)))
	}

	it := d.NewIterator()
	defer it.Close()
	seen := 0
	for it.SeekToLast(); it.Valid(); it.Prev() {
		var i int
		fmt.Sscanf(string(it.Key()), "r%d", &i)
		if i%3 == 0 {
			t.Fatalf("deleted key %q surfaced in reverse scan", it.Key())
		}
		want := fmt.Sprintf("round4-%d", i)
		if string(it.Value()) != want {
			t.Fatalf("key %q: got %q, want newest version %q", it.Key(), it.Value(), want)
		}
		seen++
	}
	if want := 300 - 100; seen != want {
		t.Fatalf("reverse scan saw %d keys, want %d", seen, want)
	}
}

// TestSeekThenPrev: the classic direction-switch pattern "find the
// largest key < target".
func TestSeekThenPrev(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	for i := 0; i < 1000; i += 2 {
		d.Put([]byte(fmt.Sprintf("e%04d", i)), []byte("v"))
	}
	d.FlushMemtable()
	it := d.NewIterator()
	defer it.Close()

	it.Seek([]byte("e0501")) // between e0500 and e0502
	if !it.Valid() || string(it.Key()) != "e0502" {
		t.Fatalf("seek landed on %q", it.Key())
	}
	it.Prev()
	if !it.Valid() || string(it.Key()) != "e0500" {
		t.Fatalf("prev landed on %q", it.Key())
	}
	it.Next()
	if !it.Valid() || string(it.Key()) != "e0502" {
		t.Fatalf("next after prev landed on %q", it.Key())
	}
	// Prev past the beginning invalidates.
	it.Seek([]byte("e0000"))
	it.Prev()
	if it.Valid() {
		t.Fatalf("prev before first key should invalidate, at %q", it.Key())
	}
}

func TestScanReverse(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	ref := loadRandom(t, d, 2000, 911)
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// From the top.
	got, err := d.ScanReverse(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := keys[len(keys)-1-i]
		if string(got[i].Key) != want {
			t.Fatalf("reverse[%d] = %q, want %q", i, got[i].Key, want)
		}
	}

	// From a midpoint that is an existing key: inclusive.
	mid := keys[len(keys)/2]
	got, err = d.ScanReverse([]byte(mid), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || string(got[0].Key) != mid {
		t.Fatalf("reverse from %q started at %v", mid, got)
	}

	// From a key between two existing keys: starts below it.
	between := mid + "!"
	got, _ = d.ScanReverse([]byte(between), 1)
	if len(got) != 1 || string(got[0].Key) != mid {
		t.Fatalf("reverse from %q started at %v, want %q", between, got, mid)
	}

	// From below the smallest key: empty.
	got, _ = d.ScanReverse([]byte("a"), 5)
	if len(got) != 0 {
		t.Fatalf("reverse below smallest returned %v", got)
	}
}
