package lsm

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"sealdb/internal/obs"
)

// TestContentionProfileRanksBigMutexFirst runs a concurrent
// YCSB-A-style mix (50/50 read/update, zipf-ish key reuse) against
// one DB with lock profiling on and checks the lsm.DB big mutex
// accumulates more wait than any other site — the measurement that
// motivates (and will validate) splitting it. Deltas against the
// process-global profile keep the test immune to wait accrued by
// other tests in this binary.
func TestContentionProfileRanksBigMutexFirst(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Preload so reads hit existing keys.
	const records = 400
	for i := 0; i < records; i++ {
		k := []byte(fmt.Sprintf("user%07d", i))
		if err := d.Put(k, []byte(fmt.Sprintf("v%07d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// On a single-core box GOMAXPROCS=1 serializes the clients and the
	// mutex is never observably contended; give the scheduler real
	// parallelism so lock waits actually occur.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}

	before := map[string]int64{}
	for _, s := range obs.ContentionProfile() {
		before[s.Name] = s.TotalWaitNS
	}
	obs.SetLockProfiling(true)
	defer obs.SetLockProfiling(false)

	const goroutines, opsPer = 8, 3000
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPer; i++ {
				k := []byte(fmt.Sprintf("user%07d", rng.Intn(records)))
				if rng.Intn(2) == 0 {
					if _, err := d.Get(k); err != nil && err != ErrNotFound {
						errs <- err
						return
					}
				} else {
					if err := d.Put(k, []byte(fmt.Sprintf("u%07d", i))); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var top string
	var topWait, dbWait int64
	for _, s := range obs.ContentionProfile() {
		delta := s.TotalWaitNS - before[s.Name]
		if s.Name == "lsm_db_mu" {
			dbWait = delta
		}
		if delta > topWait {
			top, topWait = s.Name, delta
		}
	}
	if dbWait <= 0 {
		t.Fatal("lsm_db_mu accrued no wait under 8-way YCSB-A load")
	}
	if top != "lsm_db_mu" {
		t.Errorf("top contention site = %s (%dns), want lsm_db_mu (%dns)", top, topWait, dbWait)
	}
}
