package lsm

import (
	"fmt"
	"math/rand"
	"testing"
)

// Engine micro-benchmarks (wall-clock CPU cost of the host software
// stack; device time is simulated separately).

func benchDB(b *testing.B, mode Mode) *DB {
	b.Helper()
	d, err := Open(tinyConfig(mode))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() }) // double-close is a harmless ErrClosed
	return d
}

// putBenchConfig gives the Put benchmark disk headroom: the sets
// ablation's contiguous group extents rarely fit the ext4-like
// allocator's holes, so it consumes fresh space at its full
// write-amplification rate between recycles.
func putBenchConfig(mode Mode) Config {
	cfg := tinyConfig(mode)
	cfg.DiskCapacity = 1 << 30
	return cfg
}

func BenchmarkEnginePut(b *testing.B) {
	for _, mode := range allModes() {
		b.Run(mode.String(), func(b *testing.B) {
			d, err := Open(putBenchConfig(mode))
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Recycle the store periodically: the benchmark disk
				// is small, and on it the baselines consume fresh
				// space at their write-amplification rate (SMRDB's
				// overlapped level retains dead versions by design;
				// the ext4-like allocator rarely fits a whole set
				// into a hole).
				if i > 0 && i%15000 == 0 {
					b.StopTimer()
					d.Close()
					d, err = Open(putBenchConfig(mode))
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := d.Put(fmt.Appendf(nil, "key%09d", i%20000), val); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d.Close()
			b.SetBytes(1024)
		})
	}
}

func BenchmarkEngineGet(b *testing.B) {
	for _, mode := range allModes() {
		b.Run(mode.String(), func(b *testing.B) {
			d := benchDB(b, mode)
			val := make([]byte, 1024)
			const n = 20000
			for i := 0; i < n; i++ {
				d.Put(fmt.Appendf(nil, "key%09d", i), val)
			}
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Get(fmt.Appendf(nil, "key%09d", rng.Intn(n))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineScan100(b *testing.B) {
	d := benchDB(b, ModeSEALDB)
	val := make([]byte, 1024)
	const n = 20000
	for i := 0; i < n; i++ {
		d.Put(fmt.Appendf(nil, "key%09d", i), val)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kvs, err := d.Scan(fmt.Appendf(nil, "key%09d", rng.Intn(n-200)), 100)
		if err != nil || len(kvs) != 100 {
			b.Fatal(len(kvs), err)
		}
	}
}

func BenchmarkEngineBatch100(b *testing.B) {
	d := benchDB(b, ModeSEALDB)
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := NewBatch()
		for j := 0; j < 100; j++ {
			batch.Put(fmt.Appendf(nil, "key%09d", (i*100+j)%100000), val)
		}
		if err := d.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(100 * 1024)
}
