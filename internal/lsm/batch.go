package lsm

import (
	"encoding/binary"
	"fmt"

	"sealdb/internal/kv"
)

// batchHeaderLen is 8 bytes of base sequence plus 4 bytes of count,
// LevelDB's write-batch header.
const batchHeaderLen = 12

// Batch collects mutations applied (and logged) atomically.
type Batch struct {
	rep   []byte
	count uint32
	bytes int64 // key+value payload, for stats
}

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	return &Batch{rep: make([]byte, batchHeaderLen)}
}

// Put queues a key/value write.
func (b *Batch) Put(key, value []byte) {
	b.rep = append(b.rep, byte(kv.KindSet))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
	b.rep = binary.AppendUvarint(b.rep, uint64(len(value)))
	b.rep = append(b.rep, value...)
	b.count++
	b.bytes += int64(len(key) + len(value))
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.rep = append(b.rep, byte(kv.KindDelete))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
	b.count++
	b.bytes += int64(len(key))
}

// Len returns the number of queued mutations.
func (b *Batch) Len() int { return int(b.count) }

// Size returns the encoded size in bytes.
func (b *Batch) Size() int64 { return int64(len(b.rep)) }

// Reset clears the batch for reuse, keeping the backing buffer's
// capacity. The server's group-commit hot path cycles batches through
// a pool on the strength of this guarantee: after a warm-up period a
// pooled batch serves steady-state traffic without reallocating.
func (b *Batch) Reset() {
	b.rep = b.rep[:batchHeaderLen]
	b.count = 0
	b.bytes = 0
}

// Cap returns the capacity of the batch's backing buffer. Pools use
// it to drop batches that ballooned past their size bound instead of
// pinning the memory forever.
func (b *Batch) Cap() int { return cap(b.rep) }

func (b *Batch) setSeq(seq kv.SeqNum) {
	binary.LittleEndian.PutUint64(b.rep[0:8], uint64(seq))
	binary.LittleEndian.PutUint32(b.rep[8:12], b.count)
}

// decodeBatch iterates an encoded batch, calling fn for each entry
// with its assigned sequence number. Used by WAL replay and Apply.
func decodeBatch(rep []byte, fn func(seq kv.SeqNum, kind kv.Kind, key, value []byte) error) (kv.SeqNum, int, error) {
	if len(rep) < batchHeaderLen {
		return 0, 0, fmt.Errorf("lsm: batch too short (%d bytes)", len(rep))
	}
	base := kv.SeqNum(binary.LittleEndian.Uint64(rep[0:8]))
	count := binary.LittleEndian.Uint32(rep[8:12])
	p := rep[batchHeaderLen:]
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return 0, 0, fmt.Errorf("lsm: batch truncated at entry %d", i)
		}
		kind := kv.Kind(p[0])
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < klen {
			return 0, 0, fmt.Errorf("lsm: bad key length at entry %d", i)
		}
		key := p[n : n+int(klen)]
		p = p[n+int(klen):]
		var value []byte
		if kind == kv.KindSet {
			vlen, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)-n) < vlen {
				return 0, 0, fmt.Errorf("lsm: bad value length at entry %d", i)
			}
			value = p[n : n+int(vlen)]
			p = p[n+int(vlen):]
		} else if kind != kv.KindDelete {
			return 0, 0, fmt.Errorf("lsm: unknown batch entry kind %d", kind)
		}
		if err := fn(base+kv.SeqNum(i), kind, key, value); err != nil {
			return 0, 0, err
		}
	}
	if len(p) != 0 {
		return 0, 0, fmt.Errorf("lsm: %d trailing bytes in batch", len(p))
	}
	return base + kv.SeqNum(count) - 1, int(count), nil
}

// batchBaseSeq peeks the base sequence number of an encoded batch
// without decoding its entries. Replay uses it to check sequence
// continuity before applying a record.
func batchBaseSeq(rep []byte) (kv.SeqNum, bool) {
	if len(rep) < batchHeaderLen {
		return 0, false
	}
	return kv.SeqNum(binary.LittleEndian.Uint64(rep[0:8])), true
}
