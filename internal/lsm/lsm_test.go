package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sealdb/internal/kv"
	"sealdb/internal/smr"
	"sealdb/internal/sstable"
)

// tinyConfig returns a geometry small enough that a few thousand keys
// exercise flushes and multi-level compactions quickly.
func tinyConfig(mode Mode) Config {
	cfg := Config{Mode: mode, Seed: 1}
	cfg.Geometry = Geometry{
		SSTableSize:        16 * kv.KiB,
		BandSize:           160 * kv.KiB,
		GuardSize:          16 * kv.KiB,
		MemtableSize:       16 * kv.KiB,
		L0CompactTrigger:   4,
		BaseLevelBytes:     160 * kv.KiB,
		LevelMultiplier:    10,
		NumLevels:          7,
		MaxCompactionFiles: 8,
		DiskCapacity:       256 * kv.MiB,
		ManifestSize:       2 * kv.MiB,
		BlockCacheSize:     1 * kv.MiB,
	}
	cfg.applyMode()
	return cfg
}

func allModes() []Mode {
	return []Mode{ModeLevelDB, ModeLevelDBSets, ModeSMRDB, ModeSEALDB}
}

// loadRandom writes n random keys (with some overwrites and deletes)
// and returns the reference state.
func loadRandom(t *testing.T, d *DB, n int, seed int64) map[string]string {
	t.Helper()
	ref := map[string]string{}
	loadRandomInto(t, d, n, seed, ref)
	return ref
}

// loadRandomInto is loadRandom mutating a shared reference map, so
// that deletes performed by a second load phase are reflected in the
// first phase's expectations.
func loadRandomInto(t *testing.T, d *DB, n int, seed int64, ref map[string]string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%07d", rng.Intn(n))
		switch {
		case rng.Intn(10) == 0 && len(ref) > 0:
			if err := d.Delete([]byte(k)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
			delete(ref, k)
		default:
			v := fmt.Sprintf("value-%d-%d-%032d", i, rng.Int63(), i)
			if err := d.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			ref[k] = v
		}
	}
}

func verifyAll(t *testing.T, d *DB, ref map[string]string) {
	t.Helper()
	for k, want := range ref {
		got, err := d.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("Get(%q) = %q, want %q", k, got, want)
		}
	}
	// A few absent keys.
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("absent%07d", i)
		if _, err := d.Get([]byte(k)); err != ErrNotFound {
			t.Fatalf("Get(%q) err = %v, want ErrNotFound", k, err)
		}
	}
}

func TestBasicCRUDAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			d, err := Open(tinyConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if err := d.Put([]byte("a"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			if v, _ := d.Get([]byte("a")); string(v) != "1" {
				t.Fatalf("got %q", v)
			}
			if err := d.Put([]byte("a"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			if v, _ := d.Get([]byte("a")); string(v) != "2" {
				t.Fatalf("overwrite: got %q", v)
			}
			if err := d.Delete([]byte("a")); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Get([]byte("a")); err != ErrNotFound {
				t.Fatalf("after delete: %v", err)
			}
			if _, err := d.Get([]byte("never")); err != ErrNotFound {
				t.Fatalf("missing key: %v", err)
			}
		})
	}
}

func TestLoadAndReadBackAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			d, err := Open(tinyConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			ref := loadRandom(t, d, 4000, 42)
			if st := d.Stats(); st.FlushCount == 0 {
				t.Error("load did not trigger flushes")
			}
			verifyAll(t, d, ref)
		})
	}
}

func TestCompactionsReachDeepLevels(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadRandom(t, d, 8000, 7)
	st := d.Stats()
	if st.CompactionCount == 0 {
		t.Fatal("no compactions ran")
	}
	v := d.vs.Current()
	if v.NumFiles(2) == 0 {
		t.Errorf("no files reached L2; level sizes: %v", levelSizes(d))
	}
	verifyAll(t, d, ref)
}

func levelSizes(d *DB) []int {
	v := d.vs.Current()
	out := make([]int, d.cfg.NumLevels)
	for l := range out {
		out[l] = v.NumFiles(l)
	}
	return out
}

func TestSMRDBUsesTwoLevels(t *testing.T) {
	d, err := Open(tinyConfig(ModeSMRDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadRandom(t, d, 6000, 3)
	v := d.vs.Current()
	for l := 2; l < 7; l++ {
		if v.NumFiles(l) != 0 {
			t.Errorf("SMRDB has files at L%d", l)
		}
	}
	if v.NumFiles(1) == 0 {
		t.Error("SMRDB never compacted into L1")
	}
	verifyAll(t, d, ref)
}

func TestSEALDBZeroAuxiliaryWriteAmplification(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadRandom(t, d, 6000, 5)
	if awa := smr.AWA(d.drive); awa != 1.0 {
		t.Errorf("SEALDB AWA = %v, want exactly 1.0", awa)
	}
	amp := d.Amplification()
	if amp.WA <= 1 {
		t.Errorf("WA = %v, expected > 1 after compactions", amp.WA)
	}
	if amp.AWA != 1.0 {
		t.Errorf("AWA = %v", amp.AWA)
	}
}

func TestLevelDBOnSMRHasAuxiliaryAmplification(t *testing.T) {
	d, err := Open(tinyConfig(ModeLevelDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadRandom(t, d, 8000, 5)
	if awa := smr.AWA(d.drive); awa <= 1.05 {
		t.Errorf("LevelDB-on-SMR AWA = %v, expected well above 1 from band RMW", awa)
	}
}

func TestSEALDBSetsAreContiguous(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadRandom(t, d, 8000, 11)
	// Every file at level >= 2 belongs to a set, and the files of a
	// set occupy one contiguous extent in file order.
	v := d.vs.Current()
	setFiles := map[uint64][]uint64{}
	deepFiles := 0
	for l := 2; l < 7; l++ {
		for _, f := range v.Files[l] {
			deepFiles++
			if f.SetID == 0 {
				continue // trivially moved files keep no set
			}
			setFiles[f.SetID] = append(setFiles[f.SetID], f.Num)
		}
	}
	if deepFiles == 0 {
		t.Fatal("no deep files; load too small")
	}
	if len(setFiles) == 0 {
		t.Fatal("no sets formed")
	}
	for id, files := range setFiles {
		type ext struct{ off, end int64 }
		var exts []ext
		for _, num := range files {
			e, err := d.backend.FileExtent(num)
			if err != nil {
				t.Fatalf("set %d file %d: %v", id, num, err)
			}
			exts = append(exts, ext{e.Off, e.End()})
		}
		sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
		for i := 1; i < len(exts); i++ {
			// Members may have gaps where dead members lived, but
			// all must fall inside the registered set extent.
			_ = i
		}
		rec, ok := d.vs.Sets()[id]
		if !ok {
			t.Fatalf("set %d not in manifest records", id)
		}
		for _, e := range exts {
			if e.off < rec.Off || e.end > rec.Off+rec.Len {
				t.Fatalf("set %d member extent [%d,%d) outside set extent [%d,%d)",
					id, e.off, e.end, rec.Off, rec.Off+rec.Len)
			}
		}
	}
}

func TestCompactionWritesAreSequentialInSEALDB(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.disk.EnableTrace()
	loadRandom(t, d, 6000, 13)
	trace := d.disk.DisableTrace()
	// Group writes by compaction tag; within a compaction that
	// produced a set (output level >= 2) the writes must form one
	// ascending contiguous run.
	grouped := map[int64]bool{}
	for _, ci := range d.Stats().Compactions {
		if !ci.Flush && !ci.TrivialMove && ci.ToLevel >= 2 && ci.OutputFiles > 0 {
			grouped[int64(ci.ID)] = true
		}
	}
	runs := map[int64][]int64{} // tag -> offsets in order
	lens := map[int64]int64{}
	for _, e := range trace {
		if !e.Write || !grouped[e.Tag] {
			continue
		}
		runs[e.Tag] = append(runs[e.Tag], e.Offset)
		lens[e.Tag] += int64(e.Length)
	}
	if len(runs) == 0 {
		t.Fatal("no tagged set-producing compaction writes")
	}
	for tag, offs := range runs {
		for i := 1; i < len(offs); i++ {
			if offs[i] < offs[i-1] {
				t.Fatalf("compaction %d wrote backwards: %v", tag, offs)
			}
		}
		span := offs[len(offs)-1] - offs[0]
		if span >= lens[tag]+4096 {
			t.Fatalf("compaction %d writes span %d bytes for %d written: not contiguous",
				tag, span, lens[tag])
		}
	}
}

func TestBatchAtomicityAndSequencing(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	b := NewBatch()
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	b.Delete([]byte("x"))
	if err := d.Apply(b); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get([]byte("x")); err != ErrNotFound {
		t.Error("delete within batch not applied last")
	}
	if v, _ := d.Get([]byte("y")); string(v) != "2" {
		t.Error("batch put lost")
	}
	if d.Seq() != 3 {
		t.Errorf("seq = %d, want 3", d.Seq())
	}
	// Empty batch is a no-op.
	if err := d.Apply(NewBatch()); err != nil {
		t.Fatal(err)
	}
	if d.Seq() != 3 {
		t.Error("empty batch consumed sequence numbers")
	}
}

func TestReopenRecoversEverything(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := tinyConfig(mode)
			d, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := loadRandom(t, d, 3000, 17)
			// A few writes that only live in the WAL.
			for i := 0; i < 10; i++ {
				k := fmt.Sprintf("wal-only-%d", i)
				if err := d.Put([]byte(k), []byte("fresh")); err != nil {
					t.Fatal(err)
				}
				ref[k] = "fresh"
			}
			seqBefore := d.Seq()
			dev := d.Device()
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			d2, err := OpenDevice(cfg, dev)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer d2.Close()
			if d2.Seq() < seqBefore {
				t.Errorf("sequence went backwards: %d < %d", d2.Seq(), seqBefore)
			}
			verifyAll(t, d2, ref)
			// The store keeps working after recovery.
			loadRandomInto(t, d2, 1000, 18, ref)
			verifyAll(t, d2, ref)
		})
	}
}

func TestReopenTwiceWithSets(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	d, _ := Open(cfg)
	ref := loadRandom(t, d, 5000, 23)
	dev := d.Device()
	d.Close()
	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	// Push more data through so recovered sets get compacted away.
	loadRandomInto(t, d2, 5000, 24, ref)
	d2.Close()
	d3, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	verifyAll(t, d3, ref)
	if awa := smr.AWA(d3.drive); awa != 1.0 {
		t.Errorf("AWA after recovery cycles = %v", awa)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put([]byte("k"), []byte("old"))
	snap := d.NewSnapshot()
	d.Put([]byte("k"), []byte("new"))
	d.Delete([]byte("gone"))

	if v, err := d.GetAt([]byte("k"), snap); err != nil || string(v) != "old" {
		t.Fatalf("snapshot read = %q, %v", v, err)
	}
	if v, _ := d.Get([]byte("k")); string(v) != "new" {
		t.Error("latest read wrong")
	}

	// Churn hard so compactions run; the snapshot must still see
	// the old value afterwards.
	loadRandom(t, d, 5000, 31)
	if v, err := d.GetAt([]byte("k"), snap); err != nil || string(v) != "old" {
		t.Fatalf("snapshot read after compactions = %q, %v", v, err)
	}
	snap.Release()
	snap.Release() // double release is a no-op
}

func TestIteratorMatchesReference(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			d, err := Open(tinyConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			ref := loadRandom(t, d, 4000, 51)
			keys := make([]string, 0, len(ref))
			for k := range ref {
				keys = append(keys, k)
			}
			sort.Strings(keys)

			it := d.NewIterator()
			defer it.Close()
			i := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if i >= len(keys) {
					t.Fatalf("iterator yielded extra key %q", it.Key())
				}
				if string(it.Key()) != keys[i] {
					t.Fatalf("position %d: got %q, want %q", i, it.Key(), keys[i])
				}
				if string(it.Value()) != ref[keys[i]] {
					t.Fatalf("value mismatch at %q", keys[i])
				}
				i++
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}
			if i != len(keys) {
				t.Fatalf("iterated %d keys, want %d", i, len(keys))
			}
		})
	}
}

func TestScan(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadRandom(t, d, 3000, 61)
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	start := keys[len(keys)/2]
	got, err := d.Scan([]byte(start), 50)
	if err != nil {
		t.Fatal(err)
	}
	want := keys[len(keys)/2:]
	if len(want) > 50 {
		want = want[:50]
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d, want %d", len(got), len(want))
	}
	for i := range got {
		if string(got[i].Key) != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i].Key, want[i])
		}
		if !bytes.Equal(got[i].Value, []byte(ref[want[i]])) {
			t.Fatalf("scan value mismatch at %q", want[i])
		}
	}
}

func TestTombstonesSurviveCompactionUntilBase(t *testing.T) {
	// A delete must shadow older versions even after the tombstone's
	// level compacts, across every mode (the overlapped-level mode is
	// the risky one).
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			d, err := Open(tinyConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			// Write the victim key early so it sinks deep.
			d.Put([]byte("victim"), []byte("alive"))
			loadRandom(t, d, 3000, 71)
			// Delete it, then churn to push the tombstone down.
			d.Delete([]byte("victim"))
			loadRandom(t, d, 3000, 72)
			if _, err := d.Get([]byte("victim")); err != ErrNotFound {
				t.Fatalf("deleted key resurrected: %v", err)
			}
		})
	}
}

func TestClosedDBRejectsOps(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	d.Put([]byte("a"), []byte("b"))
	d.Close()
	if err := d.Put([]byte("x"), []byte("y")); err != ErrClosed {
		t.Errorf("Put after close: %v", err)
	}
	if _, err := d.Get([]byte("a")); err != ErrClosed {
		t.Errorf("Get after close: %v", err)
	}
	if err := d.Close(); err != ErrClosed {
		t.Errorf("double close: %v", err)
	}
}

func TestLargeValues(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// A value larger than the memtable threshold.
	big := bytes.Repeat([]byte("B"), 64*1024)
	if err := d.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	d.Put([]byte("after"), []byte("ok"))
	got, err := d.Get([]byte("big"))
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large value: err=%v len=%d", err, len(got))
	}
	if v, _ := d.Get([]byte("after")); string(v) != "ok" {
		t.Error("write after large value lost")
	}
}

func TestStatsAccounting(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	loadRandom(t, d, 3000, 81)
	st := d.Stats()
	if st.UserBytes == 0 || st.UserWrites == 0 {
		t.Error("user write stats empty")
	}
	if st.FlushBytes == 0 || st.CompactionWriteBytes == 0 {
		t.Errorf("flush/compaction stats empty: %+v", st)
	}
	if len(st.Compactions) == 0 {
		t.Error("no compaction trace")
	}
	for _, ci := range st.Compactions {
		if !ci.Flush && !ci.TrivialMove && ci.Latency <= 0 {
			t.Errorf("compaction %d has no simulated latency", ci.ID)
		}
	}
	amp := d.Amplification()
	if amp.MWA < amp.WA {
		t.Errorf("MWA %v < WA %v", amp.MWA, amp.WA)
	}
}

func TestSetRegistryReclaimsExtents(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	loadRandom(t, d, 10000, 91)
	// Sets must come and go: the registry should not grow without
	// bound, and the dynamic band manager must have reclaimed space.
	mgr := d.dev.DBand
	if mgr.Stats().Frees == 0 {
		t.Error("no set extents were ever freed")
	}
	live, total := d.sets.memberStats()
	if live > total {
		t.Errorf("registry corrupt: %d live > %d total", live, total)
	}
	// Freed space must actually be reused: inserts into reclaimed
	// regions happen, and the free list is not growing without bound.
	if mgr.Stats().Inserts == 0 {
		t.Error("no allocations ever reused freed set space")
	}
	if free, frontier := mgr.FreeBytes(), mgr.Frontier(); frontier > 0 && free > frontier*9/10 {
		t.Errorf("free list holds %d of %d frontier bytes: space never reused", free, frontier)
	}
}

func TestCompressedStoreEndToEnd(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	cfg.Compression = sstable.FlateCompression
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Compressible values (the loadRandom values are fairly regular).
	ref := loadRandom(t, d, 5000, 101)
	verifyAll(t, d, ref)
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Recovery with compressed tables.
	dev := d.Device()
	d.Close()
	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	verifyAll(t, d2, ref)

	// A same-load uncompressed store must use more table space.
	plain, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	loadRandom(t, plain, 5000, 101)
	var compBytes, plainBytes int64
	for _, li := range d2.LevelProfile() {
		compBytes += li.Bytes
	}
	for _, li := range plain.LevelProfile() {
		plainBytes += li.Bytes
	}
	if compBytes >= plainBytes {
		t.Errorf("compressed store %d bytes >= plain %d", compBytes, plainBytes)
	}
}
