package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sealdb/internal/kv"
)

// vlogConfig is the tiny SEALDB geometry with key–value separation
// on: values of 256 bytes and up move to the log, and the small
// segment class forces rotations within a few hundred writes.
func vlogConfig() Config {
	cfg := tinyConfig(ModeSEALDB)
	cfg.ValueThreshold = 256
	cfg.VlogSegSize = 8 * kv.KiB
	return cfg
}

// bigValue builds a deterministic separable value.
func bigValue(tag string, n int) []byte {
	v := make([]byte, n)
	seed := []byte(tag)
	for i := range v {
		v[i] = seed[i%len(seed)] ^ byte(i)
	}
	return v
}

func TestVlogBasicReadWrite(t *testing.T) {
	d, err := Open(vlogConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ref := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("key%05d", rng.Intn(200))
		var v []byte
		if rng.Intn(2) == 0 {
			v = bigValue(k, 256+rng.Intn(1024)) // separated
		} else {
			v = bigValue(k, 1+rng.Intn(200)) // inline
		}
		if err := d.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	check := func(d *DB) {
		t.Helper()
		for k, want := range ref {
			got, err := d.Get([]byte(k))
			if err != nil {
				t.Fatalf("Get(%q): %v", k, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Get(%q) = %d bytes, want %d", k, len(got), len(want))
			}
		}
	}
	check(d)
	if err := d.FlushMemtable(); err != nil {
		t.Fatal(err)
	}
	check(d)
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	st := d.Stats()
	if st.VlogAppendBytes == 0 {
		t.Fatal("no bytes attributed to the value log")
	}
	a := d.Amplification()
	if a.StoreBytes < st.VlogAppendBytes {
		t.Fatalf("StoreBytes %d omits vlog appends %d", a.StoreBytes, st.VlogAppendBytes)
	}

	// Iterators chase pointers too, forward and backward.
	it := d.NewIterator()
	defer it.Close()
	seen := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if want, ok := ref[string(it.Key())]; !ok || !bytes.Equal(it.Value(), want) {
			t.Fatalf("iterator at %q: wrong value", it.Key())
		}
		seen++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if seen != len(ref) {
		t.Fatalf("iterator saw %d keys, want %d", seen, len(ref))
	}
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if want := ref[string(it.Key())]; !bytes.Equal(it.Value(), want) {
			t.Fatalf("reverse iterator at %q: wrong value", it.Key())
		}
	}
}

func TestVlogDisabledIsByteIdentical(t *testing.T) {
	// With the threshold at zero no tagging may happen: the stored
	// representation must match a plain put bit for bit so existing
	// modes are untouched by the feature.
	cfg := tinyConfig(ModeSEALDB)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	stored, _, ok, err := d.getStoredLocked([]byte("k"))
	d.mu.Unlock()
	if err != nil || !ok {
		t.Fatalf("getStoredLocked: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(stored, []byte("v")) {
		t.Fatalf("stored = %q, want untagged %q", stored, "v")
	}
}

func TestVlogRecovery(t *testing.T) {
	cfg := vlogConfig()
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string][]byte{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key%05d", i%120)
		v := bigValue(k, 300+i)
		if err := d.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	if err := d.FlushMemtable(); err != nil {
		t.Fatal(err)
	}
	// A few separated writes that live only in the WAL + vlog.
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("wal-only-%d", i)
		v := bigValue(k, 512)
		if err := d.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	dev := d.Device()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Recovery().VlogSegments == 0 {
		t.Fatal("recovery reports no vlog segments")
	}
	for k, want := range ref {
		got, err := d2.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q) after reopen: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) after reopen: wrong value", k)
		}
	}
	if err := d2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after reopen: %v", err)
	}
	// The store keeps separating after recovery.
	before := d2.Stats().VlogAppendBytes
	if err := d2.Put([]byte("post"), bigValue("post", 1024)); err != nil {
		t.Fatal(err)
	}
	if d2.Stats().VlogAppendBytes <= before {
		t.Fatal("no vlog append after recovery")
	}
}

// loadVlogGarbage fills the store with separated values and then
// overwrites two thirds of them, compacting in between so the drops
// charge dead bytes to their segments. A third of each early segment
// stays live, so qualifying victims still hold records to relocate.
// Returns the surviving reference.
func loadVlogGarbage(t *testing.T, d *DB) map[string][]byte {
	t.Helper()
	ref := map[string][]byte{}
	for round := 0; round < 4; round++ {
		for i := 0; i < 60; i++ {
			if round > 0 && i%3 == 0 {
				continue // these keys keep their round-0 records live
			}
			k := fmt.Sprintf("key%05d", i)
			v := bigValue(fmt.Sprintf("%s-%d", k, round), 400)
			if err := d.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		}
		if err := d.FlushMemtable(); err != nil {
			t.Fatal(err)
		}
	}
	// Force full compaction so the shadowed versions drop and their
	// log records go dead.
	if err := d.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestVlogGCCollectsDeadSegments(t *testing.T) {
	d, err := Open(vlogConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadVlogGarbage(t, d)

	live, dead, segs := d.vlog.tab.Totals()
	if dead == 0 {
		t.Fatalf("no dead bytes charged (live=%d segs=%d)", live, segs)
	}

	// Drain every qualifying victim.
	collected := 0
	for {
		res, err := d.VlogGC()
		if err != nil {
			t.Fatal(err)
		}
		if res.Victim == 0 {
			break
		}
		collected++
		if res.ReclaimedBytes == 0 {
			t.Fatalf("victim %d reclaimed nothing", res.Victim)
		}
	}
	if collected == 0 {
		t.Fatal("GC never found a victim despite dead segments")
	}
	if d.Stats().VlogGCRuns != int64(collected) {
		t.Fatalf("stats report %d GC runs, want %d", d.Stats().VlogGCRuns, collected)
	}
	for k, want := range ref {
		got, err := d.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q) after GC: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) after GC: wrong value", k)
		}
	}
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after GC: %v", err)
	}
}

func TestVlogGCRefusesUnderSnapshot(t *testing.T) {
	d, err := Open(vlogConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadVlogGarbage(t, d)

	snap := d.NewSnapshot()
	res, err := d.VlogGC()
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim != 0 {
		t.Fatalf("GC ran under a snapshot (victim %d)", res.Victim)
	}
	snap.Release()
	res, err = d.VlogGC()
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim == 0 {
		t.Fatal("GC still refused after the snapshot was released")
	}
}

func TestVlogGCSkipsMovedPointers(t *testing.T) {
	// The conditional re-put: a pointer that moves between the GC scan
	// and the relocation is skipped, not clobbered with a stale value.
	d, err := Open(vlogConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadVlogGarbage(t, d)

	movedVal := bigValue("raced", 700)
	fired := false
	d.mu.Lock()
	d.vlog.gcHook = func(keys [][]byte) {
		if fired || len(keys) == 0 {
			return
		}
		fired = true
		// Overwrite one candidate mid-pass through the internal re-put
		// path (the public Apply would deadlock on d.mu and recurse
		// into GC). Its old record is now stale: the collector's
		// re-check must skip it.
		moved := append([]byte(nil), keys[0]...)
		b := NewBatch()
		b.Put(moved, movedVal)
		if _, err := d.reputLocked(b); err != nil {
			t.Errorf("hook re-put: %v", err)
		}
		ref[string(moved)] = movedVal
	}
	d.mu.Unlock()

	sawSkip := false
	for {
		res, err := d.VlogGC()
		if err != nil {
			t.Fatal(err)
		}
		if res.Victim == 0 {
			break
		}
		if res.SkippedMoved > 0 {
			sawSkip = true
		}
	}
	if !fired {
		t.Fatal("gc hook never ran (no GC pass happened)")
	}
	if !sawSkip {
		t.Fatal("no pass skipped the moved pointer")
	}
	for k, want := range ref {
		got, err := d.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) = stale value after raced GC", k)
		}
	}
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
}

func TestVlogLiveRatioAccounting(t *testing.T) {
	// Dead-byte accounting: overwriting every separated value and
	// compacting must mark the old records dead, and the totals must
	// never exceed the appended bytes.
	d, err := Open(vlogConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for round := 0; round < 2; round++ {
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("key%05d", i)
			if err := d.Put([]byte(k), bigValue(fmt.Sprintf("%s-%d", k, round), 500)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.FlushMemtable(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}

	live, dead, _ := d.vlog.tab.Totals()
	appended := d.Stats().VlogAppendBytes
	if live+dead > appended {
		t.Fatalf("accounted bytes %d+%d exceed appended %d", live, dead, appended)
	}
	// Every first-round record (40 overwrites × ~500B) should be dead.
	if dead < 40*500 {
		t.Fatalf("dead=%d, want at least %d after full overwrite round", dead, 40*500)
	}
	for _, s := range d.vlog.tab.Segments() {
		if s.Dead > s.Bytes {
			t.Fatalf("segment %d: dead %d > bytes %d", s.Num, s.Dead, s.Bytes)
		}
	}
}

func TestVlogMaybeGCOpportunistic(t *testing.T) {
	// Without explicit VlogGC calls, ordinary writes trigger collection
	// once a segment crosses the dead-ratio threshold.
	d, err := Open(vlogConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadVlogGarbage(t, d)
	// Keep writing until the opportunistic pass fires.
	for i := 0; i < 200 && d.Stats().VlogGCRuns == 0; i++ {
		k := fmt.Sprintf("extra%05d", i)
		v := bigValue(k, 400)
		if err := d.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	if d.Stats().VlogGCRuns == 0 {
		t.Fatal("opportunistic GC never ran")
	}
	for k, want := range ref {
		got, err := d.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%q): wrong value", k)
		}
	}
}

func TestVlogOversizedValue(t *testing.T) {
	// A value bigger than the segment class gets a segment of its own.
	d, err := Open(vlogConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	huge := bigValue("huge", int(64*kv.KiB)) // 8× the segment class
	if err := d.Put([]byte("huge"), huge); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get([]byte("huge"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, huge) {
		t.Fatalf("oversized value corrupted: %d bytes, want %d", len(got), len(huge))
	}
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestVlogConfigValidation(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	cfg.ValueThreshold = vlogPointerLen // too small: separation would grow entries
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open accepted a threshold at the pointer size")
	}
	cfg = tinyConfig(ModeSEALDB)
	cfg.ValueThreshold = 256
	cfg.VlogSegSize = 128 // smaller than a threshold record
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open accepted a segment class below the threshold")
	}
}
