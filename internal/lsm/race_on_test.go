//go:build race

package lsm

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation accounting behaves differently there, so the
// zero-alloc hot-path test only runs without it.
const raceEnabled = true
