package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestModelBasedRandomOps drives a long random schedule of puts,
// deletes, batches, gets, scans, snapshots, reopens, manual
// compactions and (in SEALDB mode) GC passes against a map-based
// model, across every mode. This is the repository's main
// metamorphic/stress test.
func TestModelBasedRandomOps(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			testModelBasedRandomOps(t, mode)
		})
	}
}

func testModelBasedRandomOps(t *testing.T, mode Mode) {
	cfg := tinyConfig(mode)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { d.Close() }()

	rng := rand.New(rand.NewSource(int64(mode)*977 + 5))
	model := map[string]string{}
	type snap struct {
		s     *Snapshot
		state map[string]string
	}
	var snaps []snap
	keyOf := func() string { return fmt.Sprintf("mk%06d", rng.Intn(3000)) }

	const steps = 6000
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 45: // put
			k := keyOf()
			v := fmt.Sprintf("v%d-%d", step, rng.Int63())
			if err := d.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			model[k] = v
		case op < 55: // delete
			k := keyOf()
			if err := d.Delete([]byte(k)); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(model, k)
		case op < 62: // batch of mixed ops
			b := NewBatch()
			type pend struct {
				k, v string
				del  bool
			}
			var pends []pend
			for i := 0; i < 1+rng.Intn(20); i++ {
				k := keyOf()
				if rng.Intn(4) == 0 {
					b.Delete([]byte(k))
					pends = append(pends, pend{k: k, del: true})
				} else {
					v := fmt.Sprintf("b%d-%d", step, i)
					b.Put([]byte(k), []byte(v))
					pends = append(pends, pend{k: k, v: v})
				}
			}
			if err := d.Apply(b); err != nil {
				t.Fatalf("step %d batch: %v", step, err)
			}
			for _, p := range pends {
				if p.del {
					delete(model, p.k)
				} else {
					model[p.k] = p.v
				}
			}
		case op < 80: // get
			k := keyOf()
			got, err := d.Get([]byte(k))
			want, ok := model[k]
			if ok {
				if err != nil || string(got) != want {
					t.Fatalf("step %d get(%q) = (%q, %v), want %q", step, k, got, err, want)
				}
			} else if err != ErrNotFound {
				t.Fatalf("step %d get(%q) = (%q, %v), want ErrNotFound", step, k, got, err)
			}
		case op < 85: // short scan vs model
			start := keyOf()
			got, err := d.Scan([]byte(start), 10)
			if err != nil {
				t.Fatalf("step %d scan: %v", step, err)
			}
			var keys []string
			for k := range model {
				if k >= start {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			if len(keys) > 10 {
				keys = keys[:10]
			}
			if len(got) != len(keys) {
				t.Fatalf("step %d scan(%q): %d results, want %d", step, start, len(got), len(keys))
			}
			for i := range got {
				if string(got[i].Key) != keys[i] || string(got[i].Value) != model[keys[i]] {
					t.Fatalf("step %d scan(%q)[%d] = %q, want %q", step, start, i, got[i].Key, keys[i])
				}
			}
		case op < 88: // take a snapshot
			if len(snaps) < 3 {
				st := make(map[string]string, len(model))
				for k, v := range model {
					st[k] = v
				}
				snaps = append(snaps, snap{s: d.NewSnapshot(), state: st})
			}
		case op < 92: // check + release a snapshot
			if len(snaps) > 0 {
				i := rng.Intn(len(snaps))
				sn := snaps[i]
				for j := 0; j < 5; j++ {
					k := keyOf()
					got, err := d.GetAt([]byte(k), sn.s)
					want, ok := sn.state[k]
					if ok && (err != nil || string(got) != want) {
						t.Fatalf("step %d snapshot get(%q) = (%q, %v), want %q", step, k, got, err, want)
					}
					if !ok && err != ErrNotFound {
						t.Fatalf("step %d snapshot get(%q) err = %v, want ErrNotFound", step, k, err)
					}
				}
				sn.s.Release()
				snaps = append(snaps[:i], snaps[i+1:]...)
			}
		case op < 94: // manual compaction
			if err := d.CompactRange(nil, nil); err != nil {
				t.Fatalf("step %d compact: %v", step, err)
			}
		case op < 96: // GC pass (sealdb only)
			if mode == ModeSEALDB {
				if _, err := d.DefragmentBands(2); err != nil {
					t.Fatalf("step %d gc: %v", step, err)
				}
			}
		default: // reopen (drops snapshots, which do not survive restarts)
			for _, sn := range snaps {
				sn.s.Release()
			}
			snaps = nil
			dev := d.Device()
			if err := d.Close(); err != nil {
				t.Fatalf("step %d close: %v", step, err)
			}
			d, err = OpenDevice(cfg, dev)
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
		}
	}

	// Final sweep: every model key readable, every absent prefix miss,
	// full iterator agrees with the model, integrity holds.
	for k, v := range model {
		got, err := d.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("final get(%q) = (%q, %v), want %q", k, got, err, v)
		}
	}
	it := d.NewIterator()
	defer it.Close()
	var keys []string
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if i >= len(keys) || string(it.Key()) != keys[i] {
			t.Fatalf("final iterator position %d: %q", i, it.Key())
		}
		if !bytes.Equal(it.Value(), []byte(model[keys[i]])) {
			t.Fatalf("final iterator value mismatch at %q", keys[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("final iterator saw %d keys, want %d", i, len(keys))
	}
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatalf("final integrity: %v", err)
	}
	if mode == ModeSEALDB {
		if amp := d.Amplification(); amp.AWA != 1.0 {
			t.Fatalf("final AWA = %v", amp.AWA)
		}
	}
}

// TestIteratorSnapshotStability: an iterator's view must not change
// while writes land underneath it.
func TestIteratorSnapshotStability(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 500; i++ {
		d.Put([]byte(fmt.Sprintf("s%04d", i)), []byte(fmt.Sprintf("old%d", i)))
	}
	it := d.NewIterator()
	defer it.Close()
	it.SeekToFirst()
	// Mutate heavily while iterating.
	count := 0
	for it.Valid() {
		if count%10 == 0 {
			k := fmt.Sprintf("s%04d", count)
			d.Put([]byte(k), []byte("NEW"))
			d.Delete([]byte(fmt.Sprintf("s%04d", count+1)))
			d.Put([]byte(fmt.Sprintf("zz%04d", count)), []byte("late")) // past the cursor but > snapshot
		}
		if string(it.Value()) == "NEW" {
			t.Fatalf("iterator saw a write made after its snapshot at %q", it.Key())
		}
		if bytes.HasPrefix(it.Key(), []byte("zz")) {
			t.Fatalf("iterator saw key %q inserted after its snapshot", it.Key())
		}
		count++
		it.Next()
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("iterator saw %d keys, want the original 500", count)
	}
}
