package lsm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sealdb/internal/kv"
)

// sliceIter is a reference kv.Iterator over a sorted slice of
// internal keys, for isolating mergingIter's logic.
type sliceIter struct {
	keys []kv.InternalKey
	vals [][]byte
	pos  int
}

func newSliceIter(entries map[string]string, seq kv.SeqNum) *sliceIter {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it := &sliceIter{pos: -1}
	for _, k := range keys {
		it.keys = append(it.keys, kv.MakeInternalKey(nil, []byte(k), seq, kv.KindSet))
		it.vals = append(it.vals, []byte(entries[k]))
	}
	return it
}

func (s *sliceIter) Valid() bool  { return s.pos >= 0 && s.pos < len(s.keys) }
func (s *sliceIter) Error() error { return nil }
func (s *sliceIter) SeekToFirst() { s.pos = 0 }
func (s *sliceIter) SeekToLast()  { s.pos = len(s.keys) - 1 }
func (s *sliceIter) Seek(t kv.InternalKey) {
	s.pos = sort.Search(len(s.keys), func(i int) bool {
		return kv.CompareInternal(s.keys[i], t) >= 0
	})
}
func (s *sliceIter) Next() { s.pos++ }
func (s *sliceIter) Prev() {
	if s.pos >= len(s.keys) {
		s.pos = len(s.keys)
	}
	s.pos--
}
func (s *sliceIter) Key() kv.InternalKey { return s.keys[s.pos] }
func (s *sliceIter) Value() []byte       { return s.vals[s.pos] }

var _ kv.Iterator = (*sliceIter)(nil)

// TestMergingIterBidirectionalAgainstReference fuzzes Next/Prev/Seek
// schedules over several disjoint and interleaved children.
func TestMergingIterBidirectionalAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Three children with interleaved keys, distinct sequences so
	// internal keys never collide.
	all := map[string]string{}
	var children []kv.Iterator
	for c := 0; c < 3; c++ {
		part := map[string]string{}
		for i := 0; i < 120; i++ {
			k := fmt.Sprintf("m%04d", rng.Intn(1000))
			if _, dup := all[k]; dup {
				continue
			}
			v := fmt.Sprintf("c%d-%d", c, i)
			part[k] = v
			all[k] = v
		}
		children = append(children, newSliceIter(part, kv.SeqNum(10+c)))
	}
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	m := newMergingIter(children...)
	ref := -1
	for step := 0; step < 6000; step++ {
		switch rng.Intn(7) {
		case 0:
			m.SeekToFirst()
			ref = 0
		case 1:
			m.SeekToLast()
			ref = len(keys) - 1
		case 2:
			target := fmt.Sprintf("m%04d", rng.Intn(1100))
			m.Seek(kv.MakeSearchKey(nil, []byte(target), kv.MaxSeqNum))
			ref = sort.SearchStrings(keys, target)
		case 3, 4:
			if ref >= 0 && ref < len(keys) {
				m.Next()
				ref++
			} else {
				continue
			}
		default:
			if ref >= 0 && ref < len(keys) {
				m.Prev()
				ref--
				if ref < 0 {
					if m.Valid() {
						t.Fatalf("step %d: Prev past start at %s", step, m.Key())
					}
					ref = -1
					continue
				}
			} else {
				continue
			}
		}
		if ref < 0 || ref >= len(keys) {
			if m.Valid() {
				t.Fatalf("step %d: merging iter valid at %s, reference exhausted", step, m.Key())
			}
			ref = -1
			continue
		}
		if !m.Valid() {
			t.Fatalf("step %d: merging iter invalid, reference at %q", step, keys[ref])
		}
		if got := string(m.Key().UserKey()); got != keys[ref] {
			t.Fatalf("step %d: at %q, want %q", step, got, keys[ref])
		}
		if string(m.Value()) != all[keys[ref]] {
			t.Fatalf("step %d: value mismatch at %q", step, keys[ref])
		}
	}
}

// TestMergingIterDuplicateUserKeys: children carrying different
// versions of the same user key must interleave in seq-desc order in
// both directions.
func TestMergingIterDuplicateUserKeys(t *testing.T) {
	mkChild := func(seq kv.SeqNum, keys ...string) kv.Iterator {
		m := map[string]string{}
		for _, k := range keys {
			m[k] = fmt.Sprintf("%s@%d", k, seq)
		}
		return newSliceIter(m, seq)
	}
	m := newMergingIter(
		mkChild(30, "a", "b", "c"),
		mkChild(20, "b", "c", "d"),
		mkChild(10, "a", "c", "e"),
	)
	var forward []string
	for m.SeekToFirst(); m.Valid(); m.Next() {
		forward = append(forward, m.Key().String())
	}
	want := []string{
		`"a"#30,SET`, `"a"#10,SET`,
		`"b"#30,SET`, `"b"#20,SET`,
		`"c"#30,SET`, `"c"#20,SET`, `"c"#10,SET`,
		`"d"#20,SET`, `"e"#10,SET`,
	}
	if len(forward) != len(want) {
		t.Fatalf("forward: %v", forward)
	}
	for i := range want {
		if forward[i] != want[i] {
			t.Fatalf("forward[%d] = %s, want %s", i, forward[i], want[i])
		}
	}
	var backward []string
	for m.SeekToLast(); m.Valid(); m.Prev() {
		backward = append(backward, m.Key().String())
	}
	for i := range want {
		if backward[len(want)-1-i] != want[i] {
			t.Fatalf("backward reversed[%d] = %s, want %s", i, backward[len(want)-1-i], want[i])
		}
	}
}

// TestMergingIterEmptyChildren: empty and exhausted children must not
// disturb the merge.
func TestMergingIterEmptyChildren(t *testing.T) {
	m := newMergingIter(
		newSliceIter(map[string]string{}, 1),
		newSliceIter(map[string]string{"x": "1"}, 2),
		newSliceIter(map[string]string{}, 3),
	)
	m.SeekToFirst()
	if !m.Valid() || string(m.Key().UserKey()) != "x" {
		t.Fatalf("merge over sparse children: %v", m.Valid())
	}
	m.Next()
	if m.Valid() {
		t.Fatal("exhaustion not reached")
	}
	m.SeekToLast()
	if !m.Valid() || string(m.Key().UserKey()) != "x" {
		t.Fatal("SeekToLast over sparse children")
	}
	m.Prev()
	if m.Valid() {
		t.Fatal("Prev past start")
	}

	empty := newMergingIter(newSliceIter(map[string]string{}, 1))
	empty.SeekToFirst()
	empty.SeekToLast()
	if empty.Valid() {
		t.Fatal("empty merge valid")
	}
}
