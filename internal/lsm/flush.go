package lsm

import (
	"sealdb/internal/memtable"
	"sealdb/internal/sstable"
	"sealdb/internal/version"
)

// flushMemtable writes a memtable to a level-0 SSTable and logs the
// edit. newLogNum, when nonzero, is recorded so recovery replays only
// the fresh WAL. Caller holds d.mu.
func (d *DB) flushMemtable(mem *memtable.MemTable, newLogNum uint64) error {
	if mem.Empty() {
		return nil
	}
	startBusy := d.disk.Stats().BusyTime
	hostStart := d.drive.HostBytesWritten()
	devStart := d.disk.Stats().BytesWritten
	sp := d.journal.Begin("flush", 0)

	b := sstable.NewBuilder().SetCompression(d.cfg.Compression)
	it := mem.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		b.Add(it.Key(), it.Value())
	}
	data, meta, err := b.Finish()
	if err != nil {
		return err
	}
	num := d.vs.NewFileNum()
	if err := d.backend.WriteFile(num, data); err != nil {
		return err
	}
	fm := &version.FileMeta{
		Num:      num,
		Size:     meta.Size,
		Smallest: meta.Smallest,
		Largest:  meta.Largest,
	}
	edit := &version.Edit{
		Added:      []version.AddedFile{{Level: 0, Meta: fm}},
		HasLastSeq: true, LastSeq: d.seq,
	}
	if newLogNum != 0 {
		edit.HasLogNum, edit.LogNum = true, newLogNum
	}
	if err := d.vs.LogAndApply(edit); err != nil {
		return err
	}

	lat := d.disk.Stats().BusyTime - startBusy
	d.compID++
	d.stats.FlushCount++
	d.stats.FlushBytes += meta.Size
	d.stats.Compactions = append(d.stats.Compactions, CompactionInfo{
		ID:          d.compID,
		FromLevel:   -1,
		ToLevel:     0,
		OutputBytes: meta.Size,
		OutputFiles: 1,
		Latency:     lat,
		HostBytes:   d.drive.HostBytesWritten() - hostStart,
		DeviceBytes: d.disk.Stats().BytesWritten - devStart,
		Flush:       true,
	})
	d.metrics.flushes.Inc()
	d.metrics.flushBytes.Add(meta.Size)
	d.metrics.flushLatency.Observe(int64(lat))
	d.metrics.levelWriteBytes[0].Add(meta.Size)
	sp.Set("table", int64(num))
	sp.Set("bytes", meta.Size)
	sp.End()
	return nil
}
