package lsm

import (
	"fmt"
	"testing"

	"sealdb/internal/invariant"
	"sealdb/internal/obs"
)

// TestGetHotPathAllocsTracingOff is the tracing-overhead acceptance
// check: with tracing disabled, a memtable-hit Get performs exactly
// the one allocation it always did (the returned value copy) — the
// tracer's presence costs one atomic load and nothing on the heap.
// Allocation accounting is unreliable under the race detector, so the
// test is gated like the server's batch-pool check.
func TestGetHotPathAllocsTracingOff(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	if invariant.Enabled {
		t.Skip("lock-order watchdog allocates on profiled acquisitions")
	}
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	key, val := []byte("hot-key"), []byte("hot-value")
	if err := d.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if d.TracingEnabled() {
		t.Fatal("tracing unexpectedly on")
	}
	if n := testing.AllocsPerRun(500, func() {
		if _, err := d.Get(key); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("memtable-hit Get allocates %.1f times per op, want <= 1 (value copy)", n)
	}
}

// TestTraceSpanTreeAttribution drives a table-reading Get with tracing
// on and every operation sampled, then checks the journal holds the
// full causal chain: an op_get root carrying the caller's request id
// and I/O totals, stage children for the levels visited, and at least
// one io child attributing a physical access with its byte length.
func TestTraceSpanTreeAttribution(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	cfg.Trace = TraceConfig{Enabled: true, SampleEvery: 1}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Push enough data through the memtable that early keys live in
	// SSTables and a Get must touch the platter.
	val := make([]byte, 512)
	for i := 0; i < 200; i++ {
		if err := d.Put([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.GetCtx([]byte("key-0000"), OpContext{ReqID: 42}); err != nil {
		t.Fatal(err)
	}

	var root *obs.SpanNode
	for _, n := range obs.SpanTrees(d.Events()) {
		if n.Type == "op_get" && n.Fields["req_id"] == 42 {
			root = n
		}
	}
	if root == nil {
		t.Fatal("no op_get span with req_id 42 in the journal")
	}
	if root.Fields["reads"] == 0 || root.Fields["read_bytes"] == 0 {
		t.Errorf("op_get totals = %v, want physical reads attributed", root.Fields)
	}
	var ios, stages int
	for _, c := range root.Children {
		switch {
		case c.Type == "io":
			ios++
			if c.Fields["length"] <= 0 {
				t.Errorf("io span without byte length: %v", c.Fields)
			}
			if c.StartNS < root.StartNS || c.EndNS > root.EndNS {
				t.Errorf("io span %d..%d outside op %d..%d",
					c.StartNS, c.EndNS, root.StartNS, root.EndNS)
			}
		case len(c.Type) > 6 && c.Type[:6] == "stage_":
			stages++
		}
	}
	if ios == 0 {
		t.Error("op_get has no attributed io children")
	}
	if stages == 0 {
		t.Error("op_get has no stage children")
	}
}
