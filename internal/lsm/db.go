package lsm

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sealdb/internal/dband"
	"sealdb/internal/extfs"
	"sealdb/internal/kv"
	"sealdb/internal/memtable"
	"sealdb/internal/obs"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
	"sealdb/internal/sstable"
	"sealdb/internal/storage"
	"sealdb/internal/version"
	"sealdb/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database is closed")

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("lsm: key not found")

// Device bundles the emulated drive stack a DB runs on. It survives
// DB close, playing the role of the physical disk: reopening a DB on
// the same Device exercises MANIFEST and WAL recovery against the
// bytes that were actually written.
type Device struct {
	Disk    *platter.Disk
	Drive   smr.Drive
	Backend *storage.Backend
	// DBand is the dynamic band manager (SEALDB mode only).
	DBand *dband.Manager
	// ExtFS is the file-system-like allocator (LevelDB modes only).
	ExtFS *extfs.Allocator
}

// NewDevice builds the per-mode drive stack described in DESIGN.md.
func NewDevice(cfg Config) *Device {
	pcfg := platter.DefaultConfig(cfg.DiskCapacity)
	if s := cfg.DeviceTimeScale; s > 0 {
		pcfg.SeekTime = time.Duration(float64(pcfg.SeekTime) * s)
		pcfg.SettleTime = time.Duration(float64(pcfg.SettleTime) * s)
		pcfg.RotationalLatency = time.Duration(float64(pcfg.RotationalLatency) * s)
	}
	disk := platter.New(pcfg)
	dev := &Device{Disk: disk}
	switch cfg.Mode {
	case ModeLevelDB:
		drive := smr.NewFixedBand(disk, cfg.BandSize)
		dev.Drive = drive
		dev.ExtFS = extfs.New(drive.Capacity())
		dev.Backend = storage.NewBackend(drive, dev.ExtFS)
	case ModeLevelDBSets:
		drive := smr.NewFixedBand(disk, cfg.BandSize)
		dev.Drive = drive
		dev.ExtFS = extfs.New(drive.Capacity()).EnableGroups()
		dev.Backend = storage.NewBackend(drive, dev.ExtFS)
	case ModeSMRDB:
		drive := smr.NewFixedBand(disk, cfg.BandSize)
		dev.Drive = drive
		dev.Backend = storage.NewBackend(drive, storage.NewBandAllocator(drive))
	case ModeSEALDB:
		drive := smr.NewRaw(disk, cfg.GuardSize)
		dev.Drive = drive
		dev.DBand = dband.New(cfg.DiskCapacity, cfg.SSTableSize, cfg.GuardSize)
		dev.Backend = storage.NewBackend(drive, storage.NewDynamicBandAllocator(dev.DBand))
	default:
		panic(fmt.Sprintf("lsm: unknown mode %v", cfg.Mode))
	}
	return dev
}

// DB is the key-value engine. The public wrapper package sealdb
// re-exports it; see the package comment for the modes.
//
// Concurrency model: one big mutex, LevelDB style, with flushes and
// compactions running synchronously on the writer's goroutine. The
// experiments measure simulated device time, which is unaffected by
// host threading.
type DB struct {
	cfg Config
	dev *Device

	disk    *platter.Disk
	drive   smr.Drive
	backend *storage.Backend
	cache   *sstable.Cache
	vs      *version.Set

	// reg, journal and metrics are internally synchronized; they are
	// written once by initObs and safe to use without d.mu.
	reg     *obs.Registry
	journal *obs.Journal
	metrics dbMetrics

	mu        sync.Mutex
	tableLRU  []uint64 // open-table recency, most recent last
	mem       *memtable.MemTable
	walW      *wal.Writer
	walFile   *storage.AppendFile
	walLimit  int64
	walNum    uint64
	seq       kv.SeqNum
	memSeed   int64
	tables    map[uint64]*sstable.Table
	sets      *setRegistry
	snapshots map[kv.SeqNum]int
	stats     Stats
	compID    int
	closed    bool

	// Iterator pinning (see pins.go): live iterators defer reclamation
	// of the table files they may still read.
	iterEpoch uint64
	iterPins  map[uint64]int
	reclaims  []pendingReclaim
}

// Open creates a fresh database on a new emulated device.
func Open(cfg Config) (*DB, error) {
	cfg.applyMode()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return OpenDevice(cfg, NewDevice(cfg))
}

// OpenDevice opens (or reopens) a database on an existing device.
// If the device holds a previous instance's state, it is recovered:
// the MANIFEST replays the file layout and the WAL replays the
// mutations that had not reached an SSTable.
func OpenDevice(cfg Config, dev *Device) (*DB, error) {
	cfg.applyMode()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DB{
		cfg:       cfg,
		dev:       dev,
		disk:      dev.Disk,
		drive:     dev.Drive,
		backend:   dev.Backend,
		cache:     sstable.NewCache(cfg.BlockCacheSize),
		tables:    map[uint64]*sstable.Table{},
		sets:      newSetRegistry(),
		snapshots: map[kv.SeqNum]int{},
		iterPins:  map[uint64]int{},
		memSeed:   cfg.Seed,
	}
	d.mem = memtable.New(d.nextMemSeed())
	d.initObs()

	vcfg := version.Config{
		Backend:      d.backend,
		ManifestSize: cfg.ManifestSize,
		SortedLevel:  cfg.sortedLevel,
	}
	if _, err := d.backend.FileSize(version.CurrentFileNum); err == nil {
		vs, err := version.Recover(vcfg)
		if err != nil {
			return nil, err
		}
		d.vs = vs
		d.seq = vs.LastSeq()
		if err := d.recoverSetsAndWAL(); err != nil {
			return nil, err
		}
	} else {
		vs, err := version.Create(vcfg)
		if err != nil {
			return nil, err
		}
		d.vs = vs
	}
	if err := d.newWAL(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *DB) nextMemSeed() int64 {
	d.memSeed++
	return d.memSeed
}

// Mode returns the engine's mode.
func (d *DB) Mode() Mode { return d.cfg.Mode }

// Config returns the configuration the DB was opened with.
func (d *DB) Config() Config { return d.cfg }

// Device returns the drive stack, for experiments that inspect
// placement, amplification and timing.
func (d *DB) Device() *Device { return d.dev }

// Seq returns the last assigned sequence number.
func (d *DB) Seq() kv.SeqNum {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// recoverSetsAndWAL rebuilds the set registry and replays the WAL.
func (d *DB) recoverSetsAndWAL() error {
	orphans := d.sets.rebuild(d.vs.Sets(), d.vs.Current())
	if len(orphans) > 0 {
		// Sets that lost their last member without being dropped
		// (crash window): log the drops, then free the extents.
		e := &version.Edit{}
		for _, rec := range orphans {
			e.DropSets = append(e.DropSets, rec.ID)
		}
		if err := d.vs.LogAndApply(e); err != nil {
			return err
		}
		for _, rec := range orphans {
			if err := d.backend.FreeExtent(storage.Extent{Off: rec.Off, Len: rec.Len}); err != nil {
				return err
			}
		}
	}

	logNum := d.vs.LogNum()
	if logNum == 0 {
		return nil
	}
	size, err := d.backend.FileSize(logNum)
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil // already flushed and removed
		}
		return err
	}
	buf := make([]byte, size)
	if _, err := d.backend.ReadFileAt(logNum, buf, 0); err != nil && err != io.EOF {
		return err
	}
	r := wal.NewReader(&sliceReader{b: buf})
	replayed := 0
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("lsm: WAL replay: %w", err)
		}
		last, n, err := decodeBatch(rec, func(seq kv.SeqNum, kind kv.Kind, key, value []byte) error {
			d.mem.Add(seq, kind, key, value)
			return nil
		})
		if err != nil {
			return fmt.Errorf("lsm: WAL replay: %w", err)
		}
		replayed += n
		if last > d.seq {
			d.seq = last
		}
	}
	// Persist the replayed mutations as an L0 table so the old WAL
	// can be dropped, as LevelDB recovery does.
	if !d.mem.Empty() {
		if err := d.flushMemtable(d.mem, 0); err != nil {
			return err
		}
		d.mem = memtable.New(d.nextMemSeed())
	}
	d.backend.Remove(logNum)
	return nil
}

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// newWAL starts a fresh write-ahead log and records its number in the
// MANIFEST (so recovery knows which log to replay).
func (d *DB) newWAL() error {
	num := d.vs.NewFileNum()
	f, err := d.backend.CreateAppend(num, d.cfg.walSize())
	if err != nil {
		return err
	}
	old := d.walNum
	d.walNum = num
	d.walFile = f
	d.walLimit = d.cfg.walSize()
	d.walW = wal.NewWriter(f)
	if err := d.vs.LogAndApply(&version.Edit{HasLogNum: true, LogNum: num, HasLastSeq: true, LastSeq: d.seq}); err != nil {
		return err
	}
	if old != 0 {
		d.backend.Remove(old)
	}
	return nil
}

// Close shuts the database down. Buffered writes stay in the WAL on
// the device and are recovered by the next OpenDevice.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	// No iterator can read past Close; run anything they deferred so
	// the device holds no unreachable files.
	d.iterPins = map[uint64]int{}
	d.runReclaims()
	d.tables = map[uint64]*sstable.Table{}
	return nil
}

// maxOpenTables returns the table-reader cache bound.
func (d *DB) maxOpenTables() int {
	if n := d.cfg.MaxOpenTables; n > 0 {
		return n
	}
	return 1000
}

// openTable returns (opening if needed) the reader for a table file,
// tracking recency and evicting the least recently used reader when
// the cache exceeds its bound. Caller holds d.mu.
func (d *DB) openTable(f *version.FileMeta) (*sstable.Table, error) {
	if t, ok := d.tables[f.Num]; ok {
		d.touchTable(f.Num)
		return t, nil
	}
	size, err := d.backend.FileSize(f.Num)
	if err != nil {
		return nil, fmt.Errorf("lsm: opening table %d: %w", f.Num, err)
	}
	t, err := sstable.Open(d.backend.Handle(f.Num), size, f.Num, d.cache)
	if err != nil {
		return nil, err
	}
	d.tables[f.Num] = t
	d.tableLRU = append(d.tableLRU, f.Num)
	for len(d.tables) > d.maxOpenTables() && len(d.tableLRU) > 0 {
		victim := d.tableLRU[0]
		d.tableLRU = d.tableLRU[1:]
		if victim == f.Num {
			d.tableLRU = append(d.tableLRU, victim)
			continue
		}
		delete(d.tables, victim)
	}
	return t, nil
}

// touchTable moves a table to the recent end of the LRU order.
// Caller holds d.mu. Linear, but the list is bounded and short.
func (d *DB) touchTable(num uint64) {
	for i, n := range d.tableLRU {
		if n == num {
			copy(d.tableLRU[i:], d.tableLRU[i+1:])
			d.tableLRU[len(d.tableLRU)-1] = num
			return
		}
	}
}

// dropTable forgets a deleted file's reader and cached blocks.
// Caller holds d.mu.
func (d *DB) dropTable(num uint64) {
	if _, ok := d.tables[num]; ok {
		delete(d.tables, num)
		for i, n := range d.tableLRU {
			if n == num {
				d.tableLRU = append(d.tableLRU[:i], d.tableLRU[i+1:]...)
				break
			}
		}
	}
	d.cache.EvictFile(num)
}
